// pick_block_size: the fused pipeline's default block geometry.  Pins
// the heuristic's choices on the repo's reference workloads (so a
// change to the formula is a deliberate, visible decision), checks its
// structural invariants, and verifies the evaluators actually consume
// it as the default.

#include <gtest/gtest.h>

#include "core/pipelined_evaluator.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;
using core::pick_block_size;

TEST(BlockHeuristic, FullGridsGetOneWarp) {
  // Once the batch covers the 14 Fermi SMs, inter-block parallelism
  // already hides latency; the narrow block minimizes per-block cost.
  EXPECT_EQ(pick_block_size(16, 22, 9, 16), 32u);   // bench_batch dim 16
  EXPECT_EQ(pick_block_size(32, 22, 9, 16), 32u);   // bench_batch dim 32
  EXPECT_EQ(pick_block_size(16, 22, 9, 256), 32u);  // bench_sharding batches
  EXPECT_EQ(pick_block_size(8, 6, 4, 14), 32u);     // boundary: batch == SMs
}

TEST(BlockHeuristic, UnderFullGridsWiden) {
  // Small batches leave SMs idle, so the block widens to move
  // parallelism inside the point.
  EXPECT_EQ(pick_block_size(16, 22, 9, 1), 64u);   // single-point tracker
  EXPECT_EQ(pick_block_size(16, 4, 2, 8), 64u);    // pipeline micro-chunks
  EXPECT_EQ(pick_block_size(8, 6, 4, 4), 32u);     // small system stays narrow
  EXPECT_EQ(pick_block_size(32, 22, 9, 1), 160u);  // wide system, lone point
}

TEST(BlockHeuristic, SpecAwareSeedUsesTheDeviceSmCount) {
  // The 5-arg form takes the SM count from the owning DeviceSpec
  // instead of hard-coding Fermi's 14: the same batch that widens on a
  // 14-SM part stays narrow on a 4-SM part (batch >= SMs) and widens
  // on a 30-SM part (batch < SMs).
  EXPECT_EQ(pick_block_size(16, 22, 9, 16), pick_block_size(16, 22, 9, 16, 14));
  EXPECT_EQ(pick_block_size(16, 22, 9, 8, 4), 32u);    // 8 >= 4 SMs: one warp
  EXPECT_EQ(pick_block_size(16, 22, 9, 8, 14), 64u);   // 8 < 14 SMs: widened
  EXPECT_EQ(pick_block_size(16, 22, 9, 16, 30), 64u);  // 16 < 30 SMs: widened
  EXPECT_EQ(pick_block_size(16, 22, 9, 16, 0), 32u);   // degenerate spec clamps
}

TEST(BlockHeuristic, CapsAndClamps) {
  // Never wider than 256, never narrower than one warp, and never
  // wider than the narrower per-point loop can feed.
  EXPECT_EQ(pick_block_size(64, 60, 9, 1), 256u);
  EXPECT_EQ(pick_block_size(1, 1, 1, 1), 32u);
  EXPECT_EQ(pick_block_size(2, 2, 1, 1), 32u);
  for (const unsigned n : {1u, 4u, 16u, 64u})
    for (const unsigned m : {1u, 8u, 32u})
      for (const unsigned k : {1u, 4u, 9u})
        for (const unsigned batch : {1u, 8u, 64u}) {
          const unsigned block = pick_block_size(n, m, k, batch);
          EXPECT_GE(block, 32u) << n << "," << m << "," << k << "," << batch;
          EXPECT_LE(block, 256u) << n << "," << m << "," << k << "," << batch;
          EXPECT_EQ(block % 32u, 0u) << n << "," << m << "," << k << "," << batch;
        }
}

TEST(BlockHeuristic, EvaluatorsUseItAsTheHeuristicSeed) {
  // Under TuningMode::kHeuristic the evaluators resolve their auto
  // geometry with pick_block_size exactly (the pinned escape hatch);
  // the default kMeasured mode is exercised in test_tune.cpp.
  poly::SystemSpec spec;
  spec.dimension = 8;
  spec.monomials_per_polynomial = 6;
  spec.variables_per_monomial = 4;
  spec.max_exponent = 3;
  const auto sys = poly::make_random_system(spec);

  {
    simt::Device device;
    core::FusedGpuEvaluator<double>::Options opt;
    opt.tuning = tune::TuningMode::kHeuristic;
    core::FusedGpuEvaluator<double> fused(device, sys, 4, opt);
    EXPECT_EQ(fused.options().block_size,
              pick_block_size(8, 6, 4, 4, device.spec().multiprocessors));
    EXPECT_EQ(fused.options().interchange, core::InterchangeLayout::kAoS);
  }
  {
    // The pipelined evaluator launches micro-chunk grids, so its
    // default comes from the micro-chunk, not the batch capacity; its
    // heuristic stream count is the historical two.
    simt::Device device;
    core::PipelinedFusedEvaluator<double>::Options opt;
    opt.micro_chunk = 2;
    opt.tuning = tune::TuningMode::kHeuristic;
    core::PipelinedFusedEvaluator<double> pipelined(device, sys, 16, opt);
    EXPECT_EQ(pipelined.options().block_size,
              pick_block_size(8, 6, 4, 2, device.spec().multiprocessors));
    EXPECT_EQ(pipelined.streams(), 2u);
  }
  {
    // An explicit block size still wins, and pinning it also pins the
    // layout to the heuristic seed even in measured mode (a half-pinned
    // key would poison the tune cache).
    simt::Device device;
    core::FusedGpuEvaluator<double>::Options opt;
    opt.block_size = 128;
    core::FusedGpuEvaluator<double> fused(device, sys, 4, opt);
    EXPECT_EQ(fused.options().block_size, 128u);
    EXPECT_EQ(fused.options().interchange, core::InterchangeLayout::kAoS);
  }
}

TEST(BlockHeuristic, MeasuredDefaultResolvesToALegalGeometry) {
  // The default (kMeasured) route may pick any probed candidate, but
  // the resolved options must always be concrete and launchable.
  poly::SystemSpec spec;
  spec.dimension = 8;
  spec.monomials_per_polynomial = 6;
  spec.variables_per_monomial = 4;
  spec.max_exponent = 3;
  const auto sys = poly::make_random_system(spec);

  simt::Device device;
  core::FusedGpuEvaluator<double> fused(device, sys, 4);
  EXPECT_GE(fused.options().block_size, 32u);
  EXPECT_LE(fused.options().block_size, 256u);
  EXPECT_EQ(fused.options().block_size % 32u, 0u);
  EXPECT_TRUE(fused.options().interchange.has_value());
}

}  // namespace
