// The three-kernel pipeline end to end: functional agreement with the
// naive oracle over a parameter sweep and all precisions, the paper's
// per-thread multiplication counts, memory-behaviour assertions
// (coalescing, zero padding), the constant-memory failure at 2048
// monomials, and both encodings / Mons layouts.

#include <gtest/gtest.h>

#include <random>

#include "ad/cpu_evaluator.hpp"
#include "core/gpu_evaluator.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;
using core::ExponentEncoding;
using core::GpuEvaluator;
using core::MonsLayout;
using prec::DoubleDouble;
using prec::QuadDouble;

poly::PolynomialSystem make(unsigned n, unsigned m, unsigned k, unsigned d,
                            std::uint64_t seed = 7) {
  poly::SystemSpec spec;
  spec.dimension = n;
  spec.monomials_per_polynomial = m;
  spec.variables_per_monomial = k;
  spec.max_exponent = d;
  spec.seed = seed;
  return poly::make_random_system(spec);
}

struct SweepParam {
  unsigned n, m, k, d, block;
};

class GpuSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GpuSweep, MatchesNaiveOracle) {
  const auto [n, m, k, d, block] = GetParam();
  const auto sys = make(n, m, k, d, 11 + n + m);
  const auto x = poly::make_random_point<double>(n, 23);

  poly::EvalResult<double> naive(n);
  sys.evaluate_naive<double>(x, naive.values, naive.jacobian);

  simt::Device device;
  GpuEvaluator<double>::Options opts;
  opts.block_size = block;
  GpuEvaluator<double> gpu(device, sys, opts);
  const auto got = gpu.evaluate(std::span<const cplx::Complex<double>>(x));

  EXPECT_LT(poly::max_abs_diff(naive, got), 1e-9);
}

TEST_P(GpuSweep, ThreadWorkMatchesPaperCounts) {
  const auto [n, m, k, d, block] = GetParam();
  const auto sys = make(n, m, k, d, 13 + k + d);
  const auto x = poly::make_random_point<double>(n, 29);

  simt::Device device;
  GpuEvaluator<double>::Options opts;
  opts.block_size = block;
  GpuEvaluator<double> gpu(device, sys, opts);
  (void)gpu.evaluate(std::span<const cplx::Complex<double>>(x));

  const auto& kernels = gpu.last_log().kernels;
  ASSERT_EQ(kernels.size(), 3u);
  const auto& k1 = kernels[0];
  const auto& k2 = kernels[1];
  const auto& k3 = kernels[2];

  // Kernel 2: every monomial thread performs exactly 5k-4 complex
  // multiplications (3 for k = 1), and nothing else multiplies.
  EXPECT_EQ(k2.complex_mul_per_thread_max, ad::formulas::kernel2_mults(k));
  EXPECT_EQ(k2.complex_mul_total,
            std::uint64_t{n} * m * ad::formulas::kernel2_mults(k));

  // Kernel 1 phase 2: k-1 multiplications per monomial; phase 1 adds the
  // power table (d-2 per variable per block when d >= 3).
  const std::uint64_t blocks1 = k1.blocks;
  EXPECT_EQ(k1.complex_mul_total,
            std::uint64_t{n} * m * ad::formulas::common_factor_mults(k) +
                blocks1 * n * ad::formulas::power_table_mults(d));

  // Kernel 3: n^2+n threads, m-1 additions each, no multiplications.
  EXPECT_EQ(k3.complex_mul_total, 0u);
  EXPECT_EQ(k3.complex_add_per_thread_max, std::uint64_t{m} - 1);
  EXPECT_EQ(k3.complex_add_total, ad::formulas::evaluation_adds_gpu(n, m));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GpuSweep,
    ::testing::Values(SweepParam{2, 1, 1, 1, 32}, SweepParam{3, 2, 2, 2, 32},
                      SweepParam{4, 3, 2, 5, 32}, SweepParam{6, 4, 3, 3, 32},
                      SweepParam{8, 8, 4, 2, 32}, SweepParam{10, 6, 5, 7, 16},
                      SweepParam{16, 12, 8, 2, 64}, SweepParam{16, 5, 16, 4, 32},
                      SweepParam{32, 8, 9, 2, 32}, SweepParam{32, 8, 16, 10, 32},
                      SweepParam{40, 10, 20, 6, 32}, SweepParam{7, 5, 3, 2, 8}),
    [](const auto& info) {
      const auto p = info.param;
      return "n" + std::to_string(p.n) + "m" + std::to_string(p.m) + "k" +
             std::to_string(p.k) + "d" + std::to_string(p.d) + "B" +
             std::to_string(p.block);
    });

// Fuzz: random workload shapes derived from the seed, GPU vs naive.
class GpuSeedFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GpuSeedFuzz, AgreesWithNaiveOracle) {
  const std::uint64_t seed = GetParam();
  std::mt19937_64 rng(seed);
  poly::SystemSpec spec;
  spec.dimension = 2 + static_cast<unsigned>(rng() % 30);          // 2..31
  spec.monomials_per_polynomial = 1 + static_cast<unsigned>(rng() % 12);
  spec.variables_per_monomial =
      1 + static_cast<unsigned>(rng() % spec.dimension);
  spec.max_exponent = 1 + static_cast<unsigned>(rng() % 9);
  spec.seed = seed;
  const auto sys = poly::make_random_system(spec);
  const auto x = poly::make_random_point<double>(spec.dimension, seed ^ 0xabcddcba);

  poly::EvalResult<double> naive(spec.dimension);
  sys.evaluate_naive<double>(x, naive.values, naive.jacobian);

  simt::Device device;
  GpuEvaluator<double>::Options opts;
  opts.block_size = 8u << (rng() % 4);  // 8, 16, 32, 64
  GpuEvaluator<double> gpu(device, sys, opts);
  const auto got = gpu.evaluate(std::span<const cplx::Complex<double>>(x));

  // tolerance scales with the workload's term magnitudes
  double scale = 1.0;
  for (const auto& v : naive.values)
    scale = std::max(scale, std::abs(v.re()) + std::abs(v.im()));
  EXPECT_LT(poly::max_abs_diff(naive, got), 1e-11 * scale)
      << "n=" << spec.dimension << " m=" << spec.monomials_per_polynomial
      << " k=" << spec.variables_per_monomial << " d=" << spec.max_exponent;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpuSeedFuzz,
                         ::testing::Range<std::uint64_t>(1000, 1024));

TEST(GpuEvaluator, DoubleDoubleMatchesCpuBitForBit) {
  // Same algorithm, same order of operations: GPU (simulated) and CPU
  // reference agree exactly in double-double as well.
  const auto sys = make(8, 6, 4, 3);
  const auto x = poly::make_random_point<DoubleDouble>(8, 31);

  ad::CpuEvaluator<DoubleDouble> cpu(sys);
  const auto want = cpu.evaluate(std::span<const cplx::Complex<DoubleDouble>>(x));

  simt::Device device;
  GpuEvaluator<DoubleDouble> gpu(device, sys);
  const auto got = gpu.evaluate(std::span<const cplx::Complex<DoubleDouble>>(x));

  EXPECT_LT(poly::max_abs_diff(want, got), 1e-30);
}

TEST(GpuEvaluator, QuadDoubleAgainstNaive) {
  const auto sys = make(4, 4, 2, 3);
  const auto x = poly::make_random_point<QuadDouble>(4, 37);

  poly::EvalResult<QuadDouble> naive(4);
  sys.evaluate_naive<QuadDouble>(x, naive.values, naive.jacobian);

  simt::Device device;
  GpuEvaluator<QuadDouble> gpu(device, sys);
  const auto got = gpu.evaluate(std::span<const cplx::Complex<QuadDouble>>(x));
  EXPECT_LT(poly::max_abs_diff(naive, got), 1e-55);
}

TEST(GpuEvaluator, MonsZeroSlotsStayZero) {
  const auto sys = make(6, 4, 3, 2);
  const auto x = poly::make_random_point<double>(6, 41);

  simt::Device device;
  GpuEvaluator<double> gpu(device, sys);
  (void)gpu.evaluate(std::span<const cplx::Complex<double>>(x));
  (void)gpu.evaluate(std::span<const cplx::Complex<double>>(x));  // twice: "kept zero"

  const auto mons = gpu.debug_mons();
  const auto& layout = gpu.layout();
  const auto& packed = gpu.packed();

  std::vector<bool> written(mons.size(), false);
  for (std::uint64_t t = 0; t < layout.total_monomials(); ++t) {
    written[layout.mons_value_index(t)] = true;
    for (unsigned j = 0; j < packed.structure.k; ++j)
      written[layout.mons_deriv_index(
          t, packed.positions[layout.support_index(t, j)])] = true;
  }
  std::uint64_t zeros = 0;
  for (std::size_t i = 0; i < mons.size(); ++i) {
    if (!written[i]) {
      EXPECT_EQ(mons[i], cplx::Complex<double>{}) << "slot " << i;
      ++zeros;
    }
  }
  EXPECT_EQ(zeros, layout.mons_zero_slots());
}

TEST(GpuEvaluator, CoalescingContractOfThePaper) {
  // n = 32, block 32, m multiple of block: uniform warps.
  const auto sys = make(32, 32, 9, 2);
  const auto x = poly::make_random_point<double>(32, 43);

  simt::Device device;
  GpuEvaluator<double> gpu(device, sys);
  (void)gpu.evaluate(std::span<const cplx::Complex<double>>(x));
  const auto& kernels = gpu.last_log().kernels;
  const auto& k1 = kernels[0];
  const auto& k2 = kernels[1];
  const auto& k3 = kernels[2];

  // Complex<double> is 16 bytes: a perfectly coalesced 32-lane request
  // spans 512 bytes = 4 segments of 128.
  const double ideal = 1.0 / 4.0;

  // Kernel 1: loads (x into shared) and stores (common factors) coalesce.
  EXPECT_GE(k1.load_coalescing_ratio(), ideal);
  EXPECT_GE(k1.store_coalescing_ratio(), ideal);

  // Kernel 3: reads are coalesced by the transposed layout -- the design
  // goal of section 3.3.
  EXPECT_GE(k3.load_coalescing_ratio(), ideal);
  EXPECT_GE(k3.store_coalescing_ratio(), ideal);

  // Kernel 2: loads (x, common factors, Coeffs portions) coalesce, but
  // the Mons writes are scattered -- the accepted price.  Scattered means
  // about one transaction per lane: ratio near 1/32.
  EXPECT_GE(k2.load_coalescing_ratio(), ideal);
  EXPECT_LT(k2.store_coalescing_ratio(), 0.08);
}

TEST(GpuEvaluator, NoDivergenceOnUniformWorkload) {
  // M divisible by the block size and n == block: every lane active in
  // every phase ("each thread of the second kernel will go through the
  // same path of execution").
  const auto sys = make(32, 32, 9, 2);
  const auto x = poly::make_random_point<double>(32, 47);
  simt::Device device;
  GpuEvaluator<double> gpu(device, sys);
  (void)gpu.evaluate(std::span<const cplx::Complex<double>>(x));
  for (const auto& k : gpu.last_log().kernels)
    EXPECT_EQ(k.inactive_lane_phases, 0u) << k.kernel;
}

TEST(GpuEvaluator, TailLanesGoInactiveWhenNotDivisible) {
  const auto sys = make(6, 5, 3, 2);  // 30 monomials, block 32
  const auto x = poly::make_random_point<double>(6, 53);
  simt::Device device;
  GpuEvaluator<double> gpu(device, sys);
  (void)gpu.evaluate(std::span<const cplx::Complex<double>>(x));
  const auto& k1 = gpu.last_log().kernels[0];
  EXPECT_GT(k1.inactive_lane_phases, 0u);
}

TEST(GpuEvaluator, ConstantMemoryOverflowAt2048Monomials) {
  // Section 4: "Increasing the number of monomials to 2,048 ... the
  // capacity of the constant memory was not sufficient."
  const auto sys = make(32, 64, 16, 10);  // 2048 monomials
  simt::Device device;
  EXPECT_THROW((void)GpuEvaluator<double>(device, sys),
               simt::ConstantMemoryOverflow);
}

TEST(GpuEvaluator, PackedEncodingLifts2048Cap) {
  const auto sys = make(32, 64, 16, 10);
  const auto x = poly::make_random_point<double>(32, 59);

  simt::Device device;
  GpuEvaluator<double>::Options opts;
  opts.encoding = ExponentEncoding::kPacked4Bit;
  GpuEvaluator<double> gpu(device, sys, opts);
  const auto got = gpu.evaluate(std::span<const cplx::Complex<double>>(x));

  poly::EvalResult<double> naive(32);
  sys.evaluate_naive<double>(x, naive.values, naive.jacobian);
  EXPECT_LT(poly::max_abs_diff(naive, got), 1e-8);
}

TEST(GpuEvaluator, PackedEncodingMatchesCharEncoding) {
  const auto sys = make(8, 6, 4, 5);
  const auto x = poly::make_random_point<double>(8, 61);

  simt::Device d1, d2;
  GpuEvaluator<double> gpu_char(d1, sys);
  GpuEvaluator<double>::Options opts;
  opts.encoding = ExponentEncoding::kPacked4Bit;
  GpuEvaluator<double> gpu_packed(d2, sys, opts);

  const auto a = gpu_char.evaluate(std::span<const cplx::Complex<double>>(x));
  const auto b = gpu_packed.evaluate(std::span<const cplx::Complex<double>>(x));
  EXPECT_EQ(poly::max_abs_diff(a, b), 0.0);  // same arithmetic, same order
}

TEST(GpuEvaluator, OutputMajorLayoutMatchesFunctionally) {
  const auto sys = make(8, 6, 4, 3);
  const auto x = poly::make_random_point<double>(8, 67);

  simt::Device d1, d2;
  GpuEvaluator<double> transposed(d1, sys);
  GpuEvaluator<double>::Options opts;
  opts.mons_layout = MonsLayout::kOutputMajor;
  GpuEvaluator<double> output_major(d2, sys, opts);

  const auto a = transposed.evaluate(std::span<const cplx::Complex<double>>(x));
  const auto b = output_major.evaluate(std::span<const cplx::Complex<double>>(x));
  EXPECT_EQ(poly::max_abs_diff(a, b), 0.0);
}

TEST(GpuEvaluator, OutputMajorTradesReadCoalescingForWrites) {
  const auto sys = make(32, 32, 9, 2);
  const auto x = poly::make_random_point<double>(32, 71);

  simt::Device d1, d2;
  GpuEvaluator<double> transposed(d1, sys);
  GpuEvaluator<double>::Options opts;
  opts.mons_layout = MonsLayout::kOutputMajor;
  GpuEvaluator<double> output_major(d2, sys, opts);

  (void)transposed.evaluate(std::span<const cplx::Complex<double>>(x));
  (void)output_major.evaluate(std::span<const cplx::Complex<double>>(x));

  // The paper's tradeoff, quantified: the transposed layout pays in
  // kernel-2 store transactions and wins them back (more) in kernel-3
  // load transactions.
  const auto& t2 = transposed.last_log().kernels[1];
  const auto& t3 = transposed.last_log().kernels[2];
  const auto& o2 = output_major.last_log().kernels[1];
  const auto& o3 = output_major.last_log().kernels[2];
  EXPECT_LT(t3.global_load_transactions, o3.global_load_transactions);
  EXPECT_GE(t2.global_store_transactions, o2.global_store_transactions);
}

TEST(GpuEvaluator, RepeatedEvaluationUploadsOnlyThePoint) {
  const auto sys = make(8, 6, 4, 3);
  const auto x = poly::make_random_point<double>(8, 73);
  simt::Device device;
  GpuEvaluator<double> gpu(device, sys);
  (void)gpu.evaluate(std::span<const cplx::Complex<double>>(x));
  const auto& t = gpu.last_log().transfers;
  // one upload (the point: n * 16 bytes), one download (outputs)
  EXPECT_EQ(t.transfers_to_device, 1u);
  EXPECT_EQ(t.transfers_from_device, 1u);
  EXPECT_EQ(t.bytes_to_device, 8u * sizeof(cplx::Complex<double>));
  EXPECT_EQ(t.bytes_from_device, (8u * 8u + 8u) * sizeof(cplx::Complex<double>));
}

TEST(GpuEvaluator, RejectsWrongPointDimension) {
  const auto sys = make(6, 4, 3, 2);
  simt::Device device;
  GpuEvaluator<double> gpu(device, sys);
  std::vector<cplx::Complex<double>> x(5);
  poly::EvalResult<double> out;
  EXPECT_THROW(gpu.evaluate(std::span<const cplx::Complex<double>>(x), out),
               std::invalid_argument);
}

TEST(GpuEvaluator, ValuesOnlyMatchesFullEvaluation) {
  const auto sys = make(8, 6, 4, 3);
  const auto x = poly::make_random_point<double>(8, 87);
  simt::Device device;
  GpuEvaluator<double> gpu(device, sys);

  const auto full = gpu.evaluate(std::span<const cplx::Complex<double>>(x));
  std::vector<cplx::Complex<double>> values(8);
  gpu.evaluate_values(std::span<const cplx::Complex<double>>(x),
                      std::span<cplx::Complex<double>>(values));
  for (unsigned p = 0; p < 8; ++p) {
    // same powers/common factors, different multiplication order for the
    // product itself -> equal to roundoff
    EXPECT_LT(cplx::max_abs_diff(values[p], full.values[p]), 1e-12) << p;
  }
}

TEST(GpuEvaluator, ValuesOnlyIsCheaper) {
  const auto sys = make(32, 32, 9, 2);
  const auto x = poly::make_random_point<double>(32, 88);
  simt::Device device;
  GpuEvaluator<double> gpu(device, sys);

  (void)gpu.evaluate(std::span<const cplx::Complex<double>>(x));
  std::uint64_t full_mults = 0;
  for (const auto& k : gpu.last_log().kernels) full_mults += k.complex_mul_total;
  const auto full_down = gpu.last_log().transfers.bytes_from_device;

  std::vector<cplx::Complex<double>> values(32);
  gpu.evaluate_values(std::span<const cplx::Complex<double>>(x),
                      std::span<cplx::Complex<double>>(values));
  std::uint64_t value_mults = 0;
  for (const auto& k : gpu.last_log().kernels) value_mults += k.complex_mul_total;

  // values-only: (k-1) + 2 mults per monomial in its main kernel vs 5k-4
  EXPECT_LT(value_mults, full_mults / 2);
  // and only n values come back instead of n^2+n
  EXPECT_EQ(gpu.last_log().transfers.bytes_from_device, full_down / 33);
}

TEST(GpuEvaluator, ValuesOnlyDoesNotCorruptNextFullEvaluation) {
  const auto sys = make(6, 5, 3, 2);
  const auto x1 = poly::make_random_point<double>(6, 90);
  const auto x2 = poly::make_random_point<double>(6, 91);
  simt::Device device;
  GpuEvaluator<double> gpu(device, sys);

  const auto before = gpu.evaluate(std::span<const cplx::Complex<double>>(x2));
  std::vector<cplx::Complex<double>> values(6);
  gpu.evaluate_values(std::span<const cplx::Complex<double>>(x1),
                      std::span<cplx::Complex<double>>(values));
  const auto after = gpu.evaluate(std::span<const cplx::Complex<double>>(x2));
  EXPECT_EQ(poly::max_abs_diff(before, after), 0.0);
}

TEST(GpuEvaluator, SeparatePowersKernelMatches) {
  // The section-3.1 ablation: a dedicated powers kernel writing global
  // memory must produce identical results, with one extra launch and
  // extra global traffic in the common-factor stage.
  const auto sys = make(8, 6, 4, 5);
  const auto x = poly::make_random_point<double>(8, 89);

  simt::Device d1, d2;
  GpuEvaluator<double> fused(d1, sys);
  GpuEvaluator<double>::Options opts;
  opts.powers = GpuEvaluator<double>::PowersStrategy::kSeparateKernel;
  GpuEvaluator<double> separate(d2, sys, opts);

  const auto a = fused.evaluate(std::span<const cplx::Complex<double>>(x));
  const auto b = separate.evaluate(std::span<const cplx::Complex<double>>(x));
  EXPECT_EQ(poly::max_abs_diff(a, b), 0.0);

  ASSERT_EQ(fused.last_log().kernels.size(), 3u);
  ASSERT_EQ(separate.last_log().kernels.size(), 4u);
  EXPECT_EQ(separate.last_log().kernels[0].kernel, "powers_global");

  // The fused variant touches global memory only for x and the common
  // factors in the CF stage; the separate variant also round-trips the
  // powers table.
  const auto traffic = [](const simt::KernelStats& k) {
    return k.global_load_transactions + k.global_store_transactions;
  };
  const auto fused_cf = traffic(fused.last_log().kernels[0]);
  const auto separate_cf =
      traffic(separate.last_log().kernels[0]) + traffic(separate.last_log().kernels[1]);
  EXPECT_GT(separate_cf, fused_cf);
}

TEST(GpuEvaluator, SeparatePowersRepeatedMultiplicationsDiffer) {
  // Fused: every block recomputes the powers (blocks * n * (d-2) mults);
  // separate: the powers are computed once (n * (d-2)).
  const auto sys = make(16, 8, 4, 10);  // 128 monomials -> 4 blocks
  const auto x = poly::make_random_point<double>(16, 91);

  simt::Device d1, d2;
  GpuEvaluator<double> fused(d1, sys);
  GpuEvaluator<double>::Options opts;
  opts.powers = GpuEvaluator<double>::PowersStrategy::kSeparateKernel;
  GpuEvaluator<double> separate(d2, sys, opts);
  (void)fused.evaluate(std::span<const cplx::Complex<double>>(x));
  (void)separate.evaluate(std::span<const cplx::Complex<double>>(x));

  const std::uint64_t per_table = 16u * ad::formulas::power_table_mults(10);
  const std::uint64_t blocks = fused.last_log().kernels[0].blocks;
  const std::uint64_t cf = 128u * ad::formulas::common_factor_mults(4);
  EXPECT_EQ(fused.last_log().kernels[0].complex_mul_total, blocks * per_table + cf);
  EXPECT_EQ(separate.last_log().kernels[0].complex_mul_total, per_table);
  EXPECT_EQ(separate.last_log().kernels[1].complex_mul_total, cf);
}

TEST(GpuEvaluator, SharedMemoryBudgetOfSection32) {
  // "we could increase precision ... and still work with dimensions up
  //  to 70, as long as k <= n/2": dd complex, n = 70, k = 35, B = 32
  //  needs 32*36*32 + 70*32 bytes < 48 KB.
  const auto sys = make(70, 4, 35, 3);
  const auto x = poly::make_random_point<DoubleDouble>(70, 79);
  simt::Device device;
  GpuEvaluator<DoubleDouble> gpu(device, sys);
  EXPECT_NO_THROW((void)gpu.evaluate(std::span<const cplx::Complex<DoubleDouble>>(x)));

  // but k = n at dimension 70 blows the budget
  const auto big = make(70, 4, 70, 2);
  simt::Device device2;
  EXPECT_THROW(
      {
        GpuEvaluator<DoubleDouble> gpu2(device2, big);
        const auto y = poly::make_random_point<DoubleDouble>(70, 83);
        (void)gpu2.evaluate(std::span<const cplx::Complex<DoubleDouble>>(y));
      },
      simt::LaunchError);
}

}  // namespace
