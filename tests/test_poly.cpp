// Polynomial representation: monomial validation, naive evaluation,
// derivatives, the builder's merging, and uniform-structure detection.

#include <gtest/gtest.h>

#include "poly/polynomial.hpp"
#include "poly/system.hpp"

namespace {

using namespace polyeval;
using cplx::Complex;
using poly::Monomial;
using poly::Polynomial;
using poly::PolynomialBuilder;
using poly::PolynomialSystem;
using poly::VarPower;

using Cd = Complex<double>;

TEST(Monomial, SortsFactorsByVariable) {
  const Monomial m(Cd{2.0, 0.0}, {{3, 1}, {0, 2}, {1, 5}});
  ASSERT_EQ(m.support_size(), 3u);
  EXPECT_EQ(m.factors()[0], (VarPower{0, 2}));
  EXPECT_EQ(m.factors()[1], (VarPower{1, 5}));
  EXPECT_EQ(m.factors()[2], (VarPower{3, 1}));
}

TEST(Monomial, RejectsZeroExponent) {
  EXPECT_THROW(Monomial(Cd{1.0, 0.0}, {{0, 0}}), std::invalid_argument);
}

TEST(Monomial, RejectsDuplicateVariable) {
  EXPECT_THROW(Monomial(Cd{1.0, 0.0}, {{2, 1}, {2, 3}}), std::invalid_argument);
}

TEST(Monomial, DegreeQueries) {
  const Monomial m(Cd{1.0, 0.0}, {{0, 3}, {2, 7}, {5, 1}});
  EXPECT_EQ(m.max_exponent(), 7u);
  EXPECT_EQ(m.total_degree(), 11u);
  EXPECT_EQ(m.min_dimension(), 6u);
  EXPECT_TRUE(m.contains(2));
  EXPECT_FALSE(m.contains(1));
  EXPECT_EQ(m.exponent_of(0), 3u);
  EXPECT_EQ(m.exponent_of(4), 0u);
}

TEST(Monomial, EvaluatesKnownValue) {
  // 2 * x0^2 * x1 at (3, 5) = 2*9*5 = 90
  const Monomial m(Cd{2.0, 0.0}, {{0, 2}, {1, 1}});
  const std::vector<Cd> x = {{3.0, 0.0}, {5.0, 0.0}};
  const Cd v = m.evaluate<double>(x);
  EXPECT_DOUBLE_EQ(v.re(), 90.0);
  EXPECT_DOUBLE_EQ(v.im(), 0.0);
}

TEST(Monomial, EvaluatesComplexPoint) {
  // x0^2 at i = -1
  const Monomial m(Cd{1.0, 0.0}, {{0, 2}}) ;
  const std::vector<Cd> x = {{0.0, 1.0}};
  const Cd v = m.evaluate<double>(x);
  EXPECT_DOUBLE_EQ(v.re(), -1.0);
  EXPECT_NEAR(v.im(), 0.0, 1e-15);
}

TEST(Monomial, DerivativeKnownValue) {
  // d/dx0 (2 x0^3 x1^2) = 6 x0^2 x1^2; at (2, 3): 6*4*9 = 216
  const Monomial m(Cd{2.0, 0.0}, {{0, 3}, {1, 2}});
  const std::vector<Cd> x = {{2.0, 0.0}, {3.0, 0.0}};
  EXPECT_DOUBLE_EQ(m.evaluate_derivative<double>(x, 0).re(), 216.0);
  // d/dx1 = 4 x0^3 x1: 4*8*3 = 96
  EXPECT_DOUBLE_EQ(m.evaluate_derivative<double>(x, 1).re(), 96.0);
  // absent variable -> zero
  EXPECT_EQ(m.evaluate_derivative<double>(x, 5).re(), 0.0);
}

TEST(Monomial, ConstantMonomialHasEmptySupport) {
  const Monomial c(Cd{4.0, 0.0}, {});
  EXPECT_EQ(c.support_size(), 0u);
  EXPECT_EQ(c.total_degree(), 0u);
  const std::vector<Cd> x = {{9.0, 0.0}};
  EXPECT_DOUBLE_EQ(c.evaluate<double>(x).re(), 4.0);
}

TEST(Polynomial, DegreeIsMaxTotalDegree) {
  const Polynomial p(3, {Monomial(Cd{1.0, 0.0}, {{0, 2}, {1, 3}}),
                         Monomial(Cd{1.0, 0.0}, {{2, 4}})});
  EXPECT_EQ(p.degree(), 5u);
  EXPECT_EQ(p.num_monomials(), 2u);
}

TEST(Polynomial, RejectsOutOfRangeVariable) {
  EXPECT_THROW(Polynomial(2, {Monomial(Cd{1.0, 0.0}, {{5, 1}})}),
               std::invalid_argument);
}

TEST(Polynomial, EvaluatesSum) {
  // x0^2 + 2 x1 at (3, 4) = 9 + 8 = 17
  const Polynomial p(2, {Monomial(Cd{1.0, 0.0}, {{0, 2}}),
                         Monomial(Cd{2.0, 0.0}, {{1, 1}})});
  const std::vector<Cd> x = {{3.0, 0.0}, {4.0, 0.0}};
  EXPECT_DOUBLE_EQ(p.evaluate<double>(x).re(), 17.0);
  EXPECT_DOUBLE_EQ(p.evaluate_derivative<double>(x, 0).re(), 6.0);
  EXPECT_DOUBLE_EQ(p.evaluate_derivative<double>(x, 1).re(), 2.0);
}

TEST(PolynomialBuilder, MergesDuplicateSupports) {
  PolynomialBuilder b(2);
  b.add_term({1.0, 0.0}, {1, 1});
  b.add_term({2.5, 0.0}, {1, 1});
  b.add_term({1.0, 0.0}, {0, 2});
  const Polynomial p = b.build();
  EXPECT_EQ(p.num_monomials(), 2u);
  const std::vector<Cd> x = {{1.0, 0.0}, {1.0, 0.0}};
  EXPECT_DOUBLE_EQ(p.evaluate<double>(x).re(), 4.5);
}

TEST(PolynomialBuilder, DropsExactCancellation) {
  PolynomialBuilder b(1);
  b.add_term({1.0, 0.0}, {2});
  b.add_term({-1.0, 0.0}, {2});
  b.add_constant({3.0, 0.0});
  const Polynomial p = b.build();
  EXPECT_EQ(p.num_monomials(), 1u);  // only the constant survives
}

TEST(PolynomialBuilder, RejectsWrongArity) {
  PolynomialBuilder b(2);
  EXPECT_THROW(b.add_term({1.0, 0.0}, {1, 2, 3}), std::invalid_argument);
}

TEST(PolynomialSystem, RequiresSquare) {
  const Polynomial p(2, {Monomial(Cd{1.0, 0.0}, {{0, 1}})});
  EXPECT_THROW(PolynomialSystem({p}), std::invalid_argument);  // 1 poly, 2 vars
  EXPECT_THROW(PolynomialSystem({}), std::invalid_argument);
}

TEST(PolynomialSystem, UniformStructureDetected) {
  // 2 polynomials, 2 monomials each, every monomial 2 variables, max exp 3
  const auto mono = [](double c, unsigned v0, unsigned e0, unsigned v1, unsigned e1) {
    return Monomial(Cd{c, 0.0}, {{v0, e0}, {v1, e1}});
  };
  const Polynomial p0(2, {mono(1.0, 0, 1, 1, 2), mono(2.0, 0, 3, 1, 1)});
  const Polynomial p1(2, {mono(3.0, 0, 2, 1, 2), mono(4.0, 0, 1, 1, 1)});
  const PolynomialSystem sys({p0, p1});
  const auto s = sys.uniform_structure();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->n, 2u);
  EXPECT_EQ(s->m, 2u);
  EXPECT_EQ(s->k, 2u);
  EXPECT_EQ(s->d, 3u);
  EXPECT_EQ(s->total_monomials(), 4u);
}

TEST(PolynomialSystem, NonUniformRejected) {
  const Polynomial p0(2, {Monomial(Cd{1.0, 0.0}, {{0, 1}, {1, 1}})});
  const Polynomial p1(2, {Monomial(Cd{1.0, 0.0}, {{0, 1}})});  // k differs
  const PolynomialSystem sys({p0, p1});
  EXPECT_FALSE(sys.uniform_structure().has_value());
}

TEST(PolynomialSystem, DegreesVector) {
  const Polynomial p0(2, {Monomial(Cd{1.0, 0.0}, {{0, 2}, {1, 1}})});
  const Polynomial p1(2, {Monomial(Cd{1.0, 0.0}, {{1, 4}})});
  const PolynomialSystem sys({p0, p1});
  EXPECT_EQ(sys.degrees(), (std::vector<unsigned>{3, 4}));
}

TEST(PolynomialSystem, NaiveEvaluationFillsJacobian) {
  // f0 = x0 x1, f1 = x0^2 - x1  (built with builder for the constant-free case)
  PolynomialBuilder b0(2), b1(2);
  b0.add_term({1.0, 0.0}, {1, 1});
  b1.add_term({1.0, 0.0}, {2, 0});
  b1.add_term({-1.0, 0.0}, {0, 1});
  const PolynomialSystem sys({b0.build(), b1.build()});
  const std::vector<Cd> x = {{2.0, 0.0}, {3.0, 0.0}};
  std::vector<Cd> values(2);
  std::vector<Cd> jac(4);
  sys.evaluate_naive<double>(x, values, jac);
  EXPECT_DOUBLE_EQ(values[0].re(), 6.0);
  EXPECT_DOUBLE_EQ(values[1].re(), 1.0);
  EXPECT_DOUBLE_EQ(jac[0].re(), 3.0);   // df0/dx0 = x1
  EXPECT_DOUBLE_EQ(jac[1].re(), 2.0);   // df0/dx1 = x0
  EXPECT_DOUBLE_EQ(jac[2].re(), 4.0);   // df1/dx0 = 2 x0
  EXPECT_DOUBLE_EQ(jac[3].re(), -1.0);  // df1/dx1 = -1
}

}  // namespace
