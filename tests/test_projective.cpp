// Projective tracking and the Cauchy endgame: homogenization and patch
// algebra against naive oracles, at-infinity classification (where the
// affine tracker stalls), winding-number measurement on singular
// endpoints, bitwise lockstep-vs-scalar parity for projective mode
// across shard counts, the shared step-control arithmetic, and the
// empty-mask launch contract of newton::refine_batch.

#include <gtest/gtest.h>

#include "core/fused_evaluator.hpp"
#include "homotopy/sharded_solver.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;
using Cd = cplx::Complex<double>;
using CpuProjective = homotopy::ProjectiveHomotopy<double, ad::CpuEvaluator<double>>;

poly::PolynomialSystem uniform_target(unsigned dim = 3, std::uint64_t seed = 99) {
  poly::SystemSpec spec;
  spec.dimension = dim;
  spec.monomials_per_polynomial = 3;
  spec.variables_per_monomial = 2;
  spec.max_exponent = 2;
  spec.seed = seed;
  return poly::make_random_system(spec);
}

/// (x0 - 1)^k as a builder system (non-uniform: exercised on the CPU).
poly::PolynomialSystem binomial_power(unsigned k) {
  poly::PolynomialBuilder b(1);
  double coeff = 1.0, sign = 1.0;
  for (unsigned j = 0; j <= k; ++j) {
    // binomial coefficients of (x - 1)^k, highest power first
    b.add_term({sign * coeff, 0.0}, {k - j});
    coeff = coeff * static_cast<double>(k - j) / static_cast<double>(j + 1);
    sign = -sign;
  }
  return poly::PolynomialSystem({b.build()});
}

std::vector<Cd> widen(const std::vector<cplx::Complex<double>>& v) { return v; }

// -- homogenization algebra ---------------------------------------------

TEST(Homogenize, PolynomialBecomesHomogeneousAndRestricts) {
  const auto sys = uniform_target();
  const auto degrees = sys.degrees();
  for (unsigned i = 0; i < sys.dimension(); ++i) {
    const auto hom = homotopy::homogenize_polynomial(sys.polynomial(i), degrees[i]);
    EXPECT_EQ(hom.num_vars(), sys.dimension() + 1);
    for (const auto& mono : hom.monomials())
      EXPECT_EQ(mono.total_degree(), degrees[i]) << "polynomial " << i;

    // Restriction to the affine chart z_n = 1 recovers the original.
    const auto x = poly::make_random_point<double>(sys.dimension(), 7);
    std::vector<Cd> z(x.begin(), x.end());
    z.push_back(Cd(1.0));
    const auto want = sys.polynomial(i).evaluate(std::span<const Cd>(x));
    const auto got = hom.evaluate(std::span<const Cd>(z));
    EXPECT_LT(cplx::max_abs_diff(want, got), 1e-12);
  }
}

TEST(Homogenize, EulerIdentityHolds) {
  // z . grad F = d * F for every homogenized row, at a random point.
  const auto sys = uniform_target();
  const auto degrees = sys.degrees();
  const auto z = poly::make_random_point<double>(sys.dimension() + 1, 11);
  for (unsigned i = 0; i < sys.dimension(); ++i) {
    const auto hom = homotopy::homogenize_polynomial(sys.polynomial(i), degrees[i]);
    Cd dot{};
    for (unsigned j = 0; j <= sys.dimension(); ++j)
      dot += z[j] * hom.evaluate_derivative(std::span<const Cd>(z), j);
    const auto scaled =
        hom.evaluate(std::span<const Cd>(z)) * static_cast<double>(degrees[i]);
    EXPECT_LT(cplx::max_abs_diff(dot, scaled), 1e-10) << "row " << i;
  }
}

TEST(Homogenize, RandomPatchDeterministicUnitModulus) {
  const auto a = homotopy::random_patch(5, 13);
  const auto b = homotopy::random_patch(5, 13);
  ASSERT_EQ(a.size(), 5u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
    EXPECT_NEAR(cplx::norm_sqr(a[i]), 1.0, 1e-12);
  }
  EXPECT_NE(homotopy::random_patch(5, 14)[0], a[0]);
}

TEST(Homogenize, PatchPolynomialIsAffineHyperplane) {
  const auto c = homotopy::random_patch(4, 3);
  const auto patch = homotopy::patch_polynomial(std::span<const Cd>(c));
  const auto z = poly::make_random_point<double>(4, 17);
  Cd want{-1.0, 0.0};
  for (unsigned j = 0; j < 4; ++j) want += c[j] * z[j];
  EXPECT_LT(cplx::max_abs_diff(patch.evaluate(std::span<const Cd>(z)), want), 1e-13);
}

TEST(Homogenize, EmbedLandsOnPatchAndRoundtrips) {
  const auto c = homotopy::random_patch(4, 5);
  std::vector<Cd> patch(c.begin(), c.end());
  const auto x = poly::make_random_point<double>(3, 23);
  const auto z = homotopy::embed_in_patch<double>(std::span<const Cd>(x),
                                                  std::span<const Cd>(patch));
  ASSERT_EQ(z.size(), 4u);
  Cd dot{};
  for (unsigned j = 0; j < 4; ++j) dot += patch[j] * z[j];
  EXPECT_LT(cplx::max_abs_diff(dot, Cd(1.0)), 1e-12);
  const auto back = homotopy::dehomogenize<double>(std::span<const Cd>(z));
  for (unsigned i = 0; i < 3; ++i)
    EXPECT_LT(cplx::max_abs_diff(back[i], x[i]), 1e-12) << "coordinate " << i;
}

// -- the projective homotopy against the naive homogenized oracle --------

TEST(ProjectiveHomotopy, MatchesNaiveHomogenizedBlend) {
  // H rows must equal the gamma blend of the naive homogenized start
  // and target systems, row-scaled by 1 / ||z||_inf^{d_i} (the lift's
  // scale-invariance convention, m frozen per evaluation).
  const auto sys = uniform_target();
  const unsigned n = sys.dimension();
  const homotopy::TotalDegreeStart start(sys);
  const auto gamma = homotopy::random_gamma(3);
  const auto patch = homotopy::random_patch(n + 1, 5);
  const auto degrees = sys.degrees();

  ad::CpuEvaluator<double> f(sys);
  CpuProjective h(f, sys, start.system(), gamma, std::span<const Cd>(patch));
  ASSERT_EQ(h.dimension(), n + 1);

  const auto fhat_sys = homotopy::homogenize(sys, std::span<const Cd>(patch));
  const auto ghat_sys =
      homotopy::homogenize(start.system(), std::span<const Cd>(patch));

  const auto z = poly::make_random_point<double>(n + 1, 31);
  const double t = 0.41;
  h.set_t(t);
  poly::EvalResult<double> got(n + 1);
  h.evaluate(std::span<const Cd>(z), got);

  std::vector<Cd> fv(n + 1), gv(n + 1), fj((n + 1) * (n + 1)), gj((n + 1) * (n + 1));
  fhat_sys.evaluate_naive<double>(std::span<const Cd>(z), fv, fj);
  ghat_sys.evaluate_naive<double>(std::span<const Cd>(z), gv, gj);

  double m = 0.0;
  for (unsigned j = 0; j <= n; ++j) m = std::max(m, cplx::norm1(z[j]));
  const Cd gamma_c(gamma.re(), gamma.im());
  const Cd a = gamma_c * Cd(1.0 - t);
  for (unsigned i = 0; i < n; ++i) {
    const double scale = 1.0 / std::pow(m, static_cast<double>(degrees[i]));
    const Cd want = (a * gv[i] + Cd(t) * fv[i]) * scale;
    EXPECT_LT(cplx::max_abs_diff(got.values[i], want), 1e-10) << "row " << i;
    for (unsigned j = 0; j <= n; ++j) {
      const Cd wj = (a * gj[i * (n + 1) + j] + Cd(t) * fj[i * (n + 1) + j]) * scale;
      EXPECT_LT(cplx::max_abs_diff(got.jac(i, j), wj), 1e-9)
          << "row " << i << ", column " << j;
    }
  }
  // Patch row: c . z - 1, Jacobian = c, independent of t.
  Cd want_patch{-1.0, 0.0};
  for (unsigned j = 0; j <= n; ++j) want_patch += patch[j] * z[j];
  EXPECT_LT(cplx::max_abs_diff(got.values[n], want_patch), 1e-12);
  for (unsigned j = 0; j <= n; ++j)
    EXPECT_LT(cplx::max_abs_diff(got.jac(n, j), Cd(patch[j].re(), patch[j].im())),
              1e-13);
}

// -- classification -----------------------------------------------------

TEST(Projective, ParallelLinesClassifyAtInfinityWhereAffineStalls) {
  // Two parallel lines have no finite intersection: the single
  // total-degree path runs to infinity.  Projective tracking classifies
  // it (the homogenized lines meet at z_2 = 0); the affine escape hatch
  // stalls as before.
  poly::PolynomialBuilder l1(2), l2(2);
  l1.add_term({1.0, 0.0}, {1, 0}).add_term({1.0, 0.0}, {0, 1}).add_constant({-1.0, 0.0});
  l2.add_term({1.0, 0.0}, {1, 0}).add_term({1.0, 0.0}, {0, 1}).add_constant({-2.0, 0.0});
  const poly::PolynomialSystem lines({l1.build(), l2.build()});
  const homotopy::TotalDegreeStart start(lines);
  ASSERT_EQ(start.num_paths(), 1u);
  const auto gamma = homotopy::random_gamma(20120102);
  const auto root = widen(start.start_root(0));

  homotopy::TrackOptions topt;
  topt.max_steps = 3000;

  // Projective: classified at infinity.
  const auto patch = homotopy::random_patch(3, 20120717);
  std::vector<Cd> patch_s(patch.begin(), patch.end());
  ad::CpuEvaluator<double> f(lines);
  CpuProjective h(f, lines, start.system(), gamma, std::span<const Cd>(patch));
  homotopy::PathTracker<double, CpuProjective> tracker(h, topt);
  const auto z0 = homotopy::embed_in_patch<double>(std::span<const Cd>(root),
                                                   std::span<const Cd>(patch_s));
  const auto r = tracker.track(std::span<const Cd>(z0));
  EXPECT_EQ(r.status, homotopy::PathStatus::kAtInfinity);
  EXPECT_TRUE(r.classified());
  EXPECT_FALSE(r.success);
  // The endpoint's homogeneous coordinate has collapsed.
  EXPECT_LT(h.infinity_ratio(std::span<const Cd>(r.solution)), 1e-4);

  // Affine: the same path stalls (or diverges), never classified.
  ad::CpuEvaluator<double> fa(lines), ga(start.system());
  homotopy::Homotopy<double, ad::CpuEvaluator<double>, ad::CpuEvaluator<double>> ha(
      fa, ga, gamma);
  homotopy::PathTracker<double, ad::CpuEvaluator<double>, ad::CpuEvaluator<double>>
      affine(ha, topt);
  const auto ra = affine.track(std::span<const Cd>(root));
  EXPECT_FALSE(ra.classified());
  EXPECT_TRUE(ra.status == homotopy::PathStatus::kStalled ||
              ra.status == homotopy::PathStatus::kDiverged);
}

TEST(Projective, TripleRootWindingNumberMeasured) {
  // (x - 1)^3 against the start system x^3 - 1: near t = 1 one branch
  // approaches the triple root with winding 1 and the other two as a
  // winding-2 cycle -- the Cauchy endgame must measure w = 2 on those
  // and still land every endpoint on x = 1.
  const auto sys = binomial_power(3);
  const homotopy::TotalDegreeStart start(sys);
  ASSERT_EQ(start.num_paths(), 3u);
  const auto gamma = homotopy::random_gamma(20120102);
  const auto patch = homotopy::random_patch(2, 20120717);
  std::vector<Cd> patch_s(patch.begin(), patch.end());

  ad::CpuEvaluator<double> f(sys);
  CpuProjective h(f, sys, start.system(), gamma, std::span<const Cd>(patch));
  homotopy::TrackOptions topt;
  topt.max_steps = 3000;
  homotopy::PathTracker<double, CpuProjective> tracker(h, topt);

  unsigned wound = 0;
  for (std::uint64_t p = 0; p < 3; ++p) {
    const auto root = widen(start.start_root(p));
    const auto z0 = homotopy::embed_in_patch<double>(std::span<const Cd>(root),
                                                     std::span<const Cd>(patch_s));
    const auto r = tracker.track(std::span<const Cd>(z0));
    EXPECT_EQ(r.status, homotopy::PathStatus::kConverged) << "path " << p;
    const auto x = homotopy::dehomogenize<double>(std::span<const Cd>(r.solution));
    EXPECT_LT(cplx::max_abs_diff(x[0], Cd(1.0)), 1e-4) << "path " << p;
    if (r.winding > 0) {
      EXPECT_EQ(r.winding, 2u) << "path " << p;
      ++wound;
    }
  }
  EXPECT_GE(wound, 1u);  // the endgame really ran and measured the cycle
}

TEST(Projective, StatusEnumAndSuccessAgree) {
  const auto sys = uniform_target();
  homotopy::ShardedSolveOptions opt;
  opt.shards = 1;
  opt.max_paths = 6;
  opt.track.max_steps = 4000;
  const auto summary = homotopy::solve_total_degree_sharded<double>(sys, opt);
  EXPECT_EQ(summary.attempted, 6u);
  EXPECT_EQ(summary.classified(), 6u);  // this workload fully classifies
  for (const auto& p : summary.paths) {
    EXPECT_EQ(p.success, p.status == homotopy::PathStatus::kConverged);
    if (p.status == homotopy::PathStatus::kAtInfinity) EXPECT_FALSE(p.success);
  }
}

// -- lockstep-vs-scalar parity in projective mode ------------------------

template <prec::RealScalar S>
void expect_paths_bitwise(const homotopy::SolveSummary<S>& want,
                          const homotopy::SolveSummary<S>& got, const char* label) {
  ASSERT_EQ(want.paths.size(), got.paths.size()) << label;
  EXPECT_EQ(want.successes, got.successes) << label;
  EXPECT_EQ(want.at_infinity, got.at_infinity) << label;
  for (std::size_t p = 0; p < want.paths.size(); ++p) {
    const auto& a = want.paths[p];
    const auto& b = got.paths[p];
    EXPECT_EQ(a.status, b.status) << label << ", path " << p;
    EXPECT_EQ(a.winding, b.winding) << label << ", path " << p;
    EXPECT_EQ(a.steps, b.steps) << label << ", path " << p;
    EXPECT_EQ(a.rejections, b.rejections) << label << ", path " << p;
    EXPECT_EQ(a.final_residual, b.final_residual) << label << ", path " << p;
    EXPECT_EQ(a.t_reached, b.t_reached) << label << ", path " << p;
    ASSERT_EQ(a.solution.size(), b.solution.size()) << label << ", path " << p;
    for (std::size_t i = 0; i < a.solution.size(); ++i)
      EXPECT_EQ(cplx::max_abs_diff(a.solution[i], b.solution[i]), 0.0)
          << label << ", path " << p << ", coordinate " << i;
  }
}

template <prec::RealScalar S>
void run_projective_parity(std::initializer_list<unsigned> shard_counts) {
  const auto sys = uniform_target();
  homotopy::ShardedSolveOptions opt;
  opt.shards = 1;
  opt.workers_per_shard = 1;
  opt.chunk_paths = 1;
  opt.max_paths = 6;
  opt.track.max_steps = 4000;
  opt.mode = homotopy::ShardTrackMode::kPerPath;  // scalar projective tracker
  const auto want = homotopy::solve_total_degree_sharded<S>(sys, opt);
  ASSERT_EQ(want.attempted, 6u);
  EXPECT_GE(want.classified(), 5u);

  opt.mode = homotopy::ShardTrackMode::kLockstep;
  for (const unsigned shards : shard_counts) {
    opt.shards = shards;
    const auto got = homotopy::solve_total_degree_sharded<S>(sys, opt);
    expect_paths_bitwise(want, got,
                         (std::string("projective lockstep, ") +
                          std::to_string(shards) + " shard(s)")
                             .c_str());
  }
}

TEST(ProjectiveParity, LockstepMatchesScalarAcrossShardCounts) {
  run_projective_parity<double>({1u, 2u, 4u});
}

TEST(ProjectiveParity, LockstepMatchesScalarDoubleDouble) {
  run_projective_parity<prec::DoubleDouble>({1u, 2u});
}

TEST(ProjectiveParity, PipelinedBackendBitwiseIdentical) {
  const auto sys = uniform_target();
  homotopy::ShardedSolveOptions opt;
  opt.shards = 2;
  opt.max_paths = 6;
  opt.track.max_steps = 4000;
  const auto fused = homotopy::solve_total_degree_sharded<double>(sys, opt);
  opt.backend = homotopy::ShardEvalBackend::kPipelined;
  const auto piped = homotopy::solve_total_degree_sharded<double>(sys, opt);
  expect_paths_bitwise(fused, piped, "projective pipelined backend");
}

// -- the shared step-control arithmetic ----------------------------------

TEST(StepControl, StreakResetsOnRejection) {
  homotopy::TrackOptions o;
  o.initial_step = 0.1;
  o.growth_after = 2;
  o.step_growth = 2.0;
  o.max_step = 10.0;
  o.step_shrink = 0.5;
  auto st = homotopy::detail::initial_step_state(o);
  EXPECT_EQ(st.step, 0.1);

  homotopy::detail::accept_step(st, 0.1, o);
  EXPECT_EQ(st.streak, 1u);
  EXPECT_EQ(st.step, 0.1);  // growth needs growth_after consecutive accepts
  homotopy::detail::reject_step(st, o);
  EXPECT_EQ(st.streak, 0u) << "a rejection must reset the growth streak";
  EXPECT_EQ(st.step, 0.05);
  EXPECT_EQ(st.rejections, 1u);
  // One accept after the rejection must NOT grow the step...
  homotopy::detail::accept_step(st, 0.2, o);
  EXPECT_EQ(st.step, 0.05);
  // ...but the second consecutive one does.
  homotopy::detail::accept_step(st, 0.3, o);
  EXPECT_EQ(st.step, 0.1);
  EXPECT_EQ(st.streak, 0u);
  EXPECT_EQ(st.steps, 3u);
}

TEST(StepControl, StepNeverOvershootsTEnd) {
  homotopy::detail::StepState st;
  // Adversarial sweep: for any (t, step) the clamped target never
  // exceeds 1, and a full-width step lands exactly on 1.
  for (const double t : {0.0, 0.1, 0.3, 0.49999999, 0.5, 0.7, 0.875,
                         0.9999999999999999, 1.0 - 1e-12}) {
    for (const double step : {1e-8, 1e-3, 0.05, 0.2, 0.5, 1.0}) {
      st.t = t;
      st.step = step;
      const double dt = homotopy::detail::clamped_dt(st);
      EXPECT_LE(dt, step);
      const double target = homotopy::detail::step_target(st, dt);
      EXPECT_LE(target, 1.0) << "t " << t << ", step " << step;
      if (step >= 1.0 - t)
        EXPECT_EQ(target, 1.0) << "t " << t << ", step " << step;
    }
  }
}

TEST(StepControl, EndgameRearmHalvesTrigger) {
  homotopy::TrackOptions o;
  o.endgame.trigger_t = 0.9;
  o.endgame.trigger_step = 1e-3;
  auto st = homotopy::detail::initial_step_state(o);
  st.t = 0.95;
  st.step = 5e-4;
  EXPECT_TRUE(homotopy::detail::endgame_triggered(st, o));
  homotopy::detail::endgame_failed(st);
  EXPECT_FALSE(homotopy::detail::endgame_triggered(st, o))
      << "a failed attempt must not immediately re-arm at the same radius";
  st.step = 2.4e-4;  // below half the failing step
  EXPECT_TRUE(homotopy::detail::endgame_triggered(st, o));
  st.t = 0.5;  // too far from t = 1
  EXPECT_FALSE(homotopy::detail::endgame_triggered(st, o));
}

TEST(StepControl, ZeroSamplesPerLoopRejectedAtConstruction) {
  // samples_per_loop = 0 would divide by zero in the endgame's sample
  // parameter; both trackers must reject it up front.
  const auto sys = uniform_target();
  const homotopy::TotalDegreeStart start(sys);
  const auto gamma = homotopy::random_gamma(1);
  const auto patch = homotopy::random_patch(4, 2);
  ad::CpuEvaluator<double> f(sys);
  CpuProjective h(f, sys, start.system(), gamma, std::span<const Cd>(patch));
  homotopy::TrackOptions bad;
  bad.endgame.samples_per_loop = 0;
  EXPECT_THROW((homotopy::PathTracker<double, CpuProjective>(h, bad)),
               std::invalid_argument);
  bad.endgame.enabled = false;  // disabled endgame never samples: allowed
  EXPECT_NO_THROW((homotopy::PathTracker<double, CpuProjective>(h, bad)));

  simt::Device device;
  core::FusedGpuEvaluator<double> fd(device, sys, 2);
  homotopy::BatchedProjectiveHomotopy<double, core::FusedGpuEvaluator<double>> hb(
      fd, sys, start.system(), gamma, std::span<const Cd>(patch));
  bad.endgame.enabled = true;
  EXPECT_THROW(
      (homotopy::BatchPathTracker<
          double,
          homotopy::BatchedProjectiveHomotopy<double, core::FusedGpuEvaluator<double>>>(
          device, hb, bad, 2)),
      std::invalid_argument);
}

// -- refine_batch's empty-mask launch contract ---------------------------

TEST(RefineBatch, AllConvergedMaskSkipsJacobianLaunches) {
  // A batch whose every path already satisfies the tolerance at entry
  // must cost exactly ONE values probe launch and ZERO full (Jacobian)
  // launches -- the all-false active mask after the probe skips the
  // Jacobian stage entirely.
  const auto sys = uniform_target();
  const unsigned n = sys.dimension();
  const homotopy::TotalDegreeStart start(sys);
  simt::Device device;
  core::FusedGpuEvaluator<double> f(device, sys, 4);
  ad::CpuEvaluator<double> g(start.system());
  homotopy::BatchedHomotopy<double, core::FusedGpuEvaluator<double>> h(
      f, g, homotopy::random_gamma(1));

  // At t = 0 the start roots are exact zeros of h = gamma g.
  std::vector<std::vector<Cd>> x;
  std::vector<Cd> ts(4, Cd(0.0));
  for (std::uint64_t p = 0; p < 4; ++p) x.push_back(widen(start.start_root(p)));

  linalg::LuArena<double> arena;
  arena.resize(n, 4);
  newton::RefineBatchScratch<double> scratch;
  scratch.reserve(n, 4, 4);
  std::vector<newton::BatchPathStatus> status(4);

  newton::NewtonOptions opts;
  opts.max_iterations = 8;
  opts.residual_tolerance = 1e-9;

  device.clear_log();
  newton::refine_batch<double>(h, x, std::span<const Cd>(ts), 4, opts, arena,
                               scratch, std::span<newton::BatchPathStatus>(status));
  unsigned values_launches = 0, full_launches = 0;
  for (const auto& k : device.log().kernels) {
    if (k.kernel == "fused_values") ++values_launches;
    if (k.kernel == "fused_eval") ++full_launches;
  }
  EXPECT_EQ(values_launches, 1u);
  EXPECT_EQ(full_launches, 0u);
  for (const auto& s : status) {
    EXPECT_TRUE(s.converged);
    EXPECT_EQ(s.iterations, 0u);
  }
}

TEST(RefineBatch, EmptyBatchTouchesNothing) {
  const auto sys = uniform_target();
  const unsigned n = sys.dimension();
  const homotopy::TotalDegreeStart start(sys);
  simt::Device device;
  core::FusedGpuEvaluator<double> f(device, sys, 4);
  ad::CpuEvaluator<double> g(start.system());
  homotopy::BatchedHomotopy<double, core::FusedGpuEvaluator<double>> h(
      f, g, homotopy::random_gamma(1));

  std::vector<std::vector<Cd>> x;
  std::vector<Cd> ts;
  linalg::LuArena<double> arena;
  arena.resize(n, 1);
  newton::RefineBatchScratch<double> scratch;
  scratch.reserve(n, 1, 1);
  std::vector<newton::BatchPathStatus> status;

  device.clear_log();
  newton::refine_batch<double>(h, x, std::span<const Cd>(ts), 0, {}, arena, scratch,
                               std::span<newton::BatchPathStatus>(status));
  EXPECT_EQ(device.log().kernels.size(), 0u);
  EXPECT_EQ(device.log().transfers.transfers_to_device, 0u);
  EXPECT_EQ(device.log().transfers.transfers_from_device, 0u);
}

}  // namespace
