// Cross-module integration: the GPU pipeline inside Newton inside a
// path tracker, the quality-up scenario end to end on the paper's
// workload shape, and consistency of all four evaluation routes.

#include <gtest/gtest.h>

#include "ad/cpu_evaluator.hpp"
#include "core/gpu_evaluator.hpp"
#include "homotopy/solver.hpp"
#include "newton/newton.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"

namespace {

using namespace polyeval;
using prec::DoubleDouble;

template <class T>
using C = cplx::Complex<T>;

TEST(Integration, FourEvaluationRoutesAgree) {
  // naive, CPU reference, GPU char encoding, GPU packed encoding
  poly::SystemSpec spec;
  spec.dimension = 16;
  spec.monomials_per_polynomial = 10;
  spec.variables_per_monomial = 6;
  spec.max_exponent = 4;
  const auto sys = poly::make_random_system(spec);
  const auto x = poly::make_random_point<double>(16, 3);

  poly::EvalResult<double> naive(16);
  sys.evaluate_naive<double>(x, naive.values, naive.jacobian);

  ad::CpuEvaluator<double> cpu(sys);
  const auto r_cpu = cpu.evaluate(std::span<const C<double>>(x));

  simt::Device d1, d2;
  core::GpuEvaluator<double> gpu1(d1, sys);
  core::GpuEvaluator<double>::Options opts;
  opts.encoding = core::ExponentEncoding::kPacked4Bit;
  core::GpuEvaluator<double> gpu2(d2, sys, opts);
  const auto r_g1 = gpu1.evaluate(std::span<const C<double>>(x));
  const auto r_g2 = gpu2.evaluate(std::span<const C<double>>(x));

  EXPECT_LT(poly::max_abs_diff(naive, r_cpu), 1e-9);
  EXPECT_LT(poly::max_abs_diff(naive, r_g1), 1e-9);
  EXPECT_EQ(poly::max_abs_diff(r_cpu, r_g1), 0.0);  // same algorithm
  EXPECT_EQ(poly::max_abs_diff(r_g1, r_g2), 0.0);
}

TEST(Integration, GpuCorrectorTracksPath) {
  // Uniform random target system, GPU evaluator as the f-evaluator of
  // the homotopy corrector; start system evaluated on CPU.
  poly::SystemSpec spec;
  spec.dimension = 4;
  spec.monomials_per_polynomial = 3;
  spec.variables_per_monomial = 2;
  spec.max_exponent = 2;
  spec.unit_coefficients = true;
  const auto sys = poly::make_random_system(spec);

  const homotopy::TotalDegreeStart start(sys);
  simt::Device device;
  core::GpuEvaluator<double> f(device, sys);
  ad::CpuEvaluator<double> g(start.system());
  homotopy::Homotopy<double, core::GpuEvaluator<double>, ad::CpuEvaluator<double>> h(
      f, g, homotopy::random_gamma(11));
  homotopy::PathTracker<double, core::GpuEvaluator<double>, ad::CpuEvaluator<double>>
      tracker(h);

  unsigned successes = 0;
  const auto paths = std::min<std::uint64_t>(start.num_paths(), 6);
  for (std::uint64_t p = 0; p < paths; ++p) {
    const auto root = start.start_root(p);
    std::vector<C<double>> x0;
    for (const auto& z : root) x0.push_back({z.re(), z.im()});
    const auto r = tracker.track(std::span<const C<double>>(x0));
    if (r.success) {
      ++successes;
      // endpoint solves the target (checked with the naive oracle)
      std::vector<C<double>> values(4), jac(16);
      sys.evaluate_naive<double>(r.solution, values, jac);
      for (const auto& v : values)
        EXPECT_LT(std::abs(v.re()) + std::abs(v.im()), 1e-8);
    }
  }
  // Sparse targets have fewer finite roots than the Bezout count, so
  // some total-degree paths legitimately diverge; at least one must land.
  EXPECT_GE(successes, 1u);
}

TEST(Integration, QualityUpOnPaperWorkload) {
  // Dimension-32 Table-1 workload with a planted regular root: double
  // Newton stalls at ~1e-14 residual, the dd refinement (the arithmetic
  // the GPU is bought for) reaches ~1e-27.
  poly::SystemSpec spec;
  spec.dimension = 32;
  spec.monomials_per_polynomial = 22;
  spec.variables_per_monomial = 9;
  spec.max_exponent = 2;
  const auto [sys, planted_root] = poly::make_random_system_with_root(spec);

  // Start near the planted root, converge in double first.
  std::vector<C<double>> x0 = planted_root;
  for (auto& z : x0) z += C<double>(1e-4, -1e-4);
  ad::CpuEvaluator<double> cpu_d(sys);
  newton::NewtonOptions opts;
  opts.max_iterations = 20;
  opts.residual_tolerance = 1e-13;
  const auto rd = newton::refine<double>(cpu_d, std::span<const C<double>>(x0), opts);
  ASSERT_TRUE(rd.converged) << rd.final_residual;

  simt::Device device;
  core::GpuEvaluator<DoubleDouble> gpu_dd(device, sys);
  const auto x_dd = newton::widen_point<DoubleDouble, double>(rd.solution);
  newton::NewtonOptions opts_dd;
  opts_dd.max_iterations = 4;
  opts_dd.residual_tolerance = 1e-27;
  const auto rdd =
      newton::refine<DoubleDouble>(gpu_dd, std::span<const C<DoubleDouble>>(x_dd), opts_dd);
  EXPECT_TRUE(rdd.converged);
  EXPECT_LT(rdd.final_residual, 1e-27);
}

TEST(Integration, TimingModelOnBothTableWorkloads) {
  // One evaluation of each table's largest workload: the modeled speedup
  // lands in the paper's double-digit band.
  const simt::DeviceSpec dspec;
  const simt::GpuCostModel gmodel;
  const simt::CpuCostModel cmodel;

  for (const auto& [k, d] : {std::pair{9u, 2u}, std::pair{16u, 10u}}) {
    poly::SystemSpec spec;
    spec.dimension = 32;
    spec.monomials_per_polynomial = 48;  // 1536 monomials
    spec.variables_per_monomial = k;
    spec.max_exponent = d;
    const auto sys = poly::make_random_system(spec);
    const auto x = poly::make_random_point<double>(32, 17);

    simt::Device device;
    core::GpuEvaluator<double> gpu(device, sys);
    (void)gpu.evaluate(std::span<const C<double>>(x));
    const double gpu_us = simt::estimate_log_us(gpu.last_log(), dspec, gmodel);

    ad::CpuEvaluator<double> cpu(sys);
    (void)cpu.evaluate(std::span<const C<double>>(x));
    const auto& ops = cpu.last_op_counts();
    const double cpu_us = simt::estimate_cpu_us(ops.complex_mul, ops.complex_add, cmodel);

    const double speedup = cpu_us / gpu_us;
    EXPECT_GT(speedup, 8.0) << "k=" << k;
    EXPECT_LT(speedup, 40.0) << "k=" << k;
  }
}

TEST(Integration, RepeatedEvaluationsAreStateless) {
  // 50 evaluations at 50 points: each must match a fresh evaluator's
  // answer (no state leaks across calls through Mons or the logs).
  poly::SystemSpec spec;
  spec.dimension = 8;
  spec.monomials_per_polynomial = 6;
  spec.variables_per_monomial = 4;
  spec.max_exponent = 3;
  const auto sys = poly::make_random_system(spec);

  simt::Device device;
  core::GpuEvaluator<double> persistent(device, sys);
  for (unsigned i = 0; i < 50; ++i) {
    const auto x = poly::make_random_point<double>(8, 100 + i);
    const auto a = persistent.evaluate(std::span<const C<double>>(x));
    simt::Device fresh_device;
    core::GpuEvaluator<double> fresh(fresh_device, sys);
    const auto b = fresh.evaluate(std::span<const C<double>>(x));
    ASSERT_EQ(poly::max_abs_diff(a, b), 0.0) << "evaluation " << i;
  }
}

}  // namespace
