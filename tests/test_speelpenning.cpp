// The example of Speelpenning: the forward/backward gradient equals the
// naive all-but-one products for every k, at the paper's advertised
// multiplication count 3k-6.

#include <gtest/gtest.h>

#include "ad/op_count.hpp"
#include "ad/speelpenning.hpp"
#include "cplx/complex.hpp"

namespace {

using namespace polyeval;
using Cd = cplx::Complex<double>;
using Cdd = cplx::Complex<prec::DoubleDouble>;

class SpeelpenningSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SpeelpenningSweep, MatchesNaiveGradient) {
  const unsigned k = GetParam();
  cplx::UniformComplex<double> gen(1000 + k);
  std::vector<Cd> v(k);
  for (auto& z : v) z = gen();

  std::vector<Cd> fast(k), naive(k);
  const auto fast_mults = ad::speelpenning_gradient(std::span<const Cd>(v), std::span<Cd>(fast));
  (void)ad::speelpenning_gradient_naive(std::span<const Cd>(v), std::span<Cd>(naive));

  for (unsigned j = 0; j < k; ++j)
    EXPECT_LT(cplx::max_abs_diff(fast[j], naive[j]), 1e-12) << "k=" << k << " j=" << j;
  EXPECT_EQ(fast_mults, ad::formulas::speelpenning_mults(k));
}

TEST_P(SpeelpenningSweep, MultiplicationCountsAreTight) {
  const unsigned k = GetParam();
  // the closed forms of the paper
  if (k >= 3) {
    EXPECT_EQ(ad::formulas::speelpenning_mults(k), 3u * k - 6u);
    EXPECT_EQ(ad::formulas::kernel2_mults(k), 5u * k - 4u);
  }
  // naive costs k*(k-2) multiplications for k >= 2: strictly worse for k > 4
  if (k > 4) {
    std::vector<Cd> v(k, Cd{1.0, 0.0}), out(k);
    const auto naive =
        ad::speelpenning_gradient_naive(std::span<const Cd>(v), std::span<Cd>(out));
    EXPECT_GT(naive, ad::formulas::speelpenning_mults(k));
  }
}

INSTANTIATE_TEST_SUITE_P(AllK, SpeelpenningSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 12u,
                                           16u, 24u, 33u));

TEST(Speelpenning, GradientOfKnownProduct) {
  // v = (2, 3, 5): product 30; gradient (15, 10, 6).
  const std::vector<Cd> v = {{2.0, 0.0}, {3.0, 0.0}, {5.0, 0.0}};
  std::vector<Cd> g(3);
  (void)ad::speelpenning_gradient(std::span<const Cd>(v), std::span<Cd>(g));
  EXPECT_DOUBLE_EQ(g[0].re(), 15.0);
  EXPECT_DOUBLE_EQ(g[1].re(), 10.0);
  EXPECT_DOUBLE_EQ(g[2].re(), 6.0);
}

TEST(Speelpenning, SingleFactorGradientIsOne) {
  const std::vector<Cd> v = {{7.0, 0.0}};
  std::vector<Cd> g(1);
  EXPECT_EQ(ad::speelpenning_gradient(std::span<const Cd>(v), std::span<Cd>(g)), 0u);
  EXPECT_DOUBLE_EQ(g[0].re(), 1.0);
}

TEST(Speelpenning, TwoFactorsSwap) {
  const std::vector<Cd> v = {{2.0, 1.0}, {-3.0, 4.0}};
  std::vector<Cd> g(2);
  EXPECT_EQ(ad::speelpenning_gradient(std::span<const Cd>(v), std::span<Cd>(g)), 0u);
  EXPECT_EQ(g[0], v[1]);
  EXPECT_EQ(g[1], v[0]);
}

TEST(Speelpenning, WorksInDoubleDouble) {
  // values 1 + tiny: gradient entries are products of k-1 factors whose
  // tiny parts only double-double can hold.
  const unsigned k = 6;
  std::vector<Cdd> v(k), g(k), naive(k);
  for (unsigned i = 0; i < k; ++i)
    v[i] = Cdd(prec::DoubleDouble(1.0) + (i + 1) * 0x1p-70, prec::DoubleDouble(0.0));
  (void)ad::speelpenning_gradient(std::span<const Cdd>(v), std::span<Cdd>(g));
  (void)ad::speelpenning_gradient_naive(std::span<const Cdd>(v), std::span<Cdd>(naive));
  for (unsigned j = 0; j < k; ++j)
    EXPECT_LT(cplx::max_abs_diff(g[j], naive[j]), 1e-30);
  // and the perturbations really survived
  EXPECT_GT((g[0].re() - 1.0).to_double(), 0x1p-70);
}

TEST(OpCountFormulas, EvaluationTotals) {
  using namespace ad::formulas;
  // n=32, m=32, k=9, d=2 (Table 1, 1024 monomials):
  // powers: d=2 -> none; per monomial: (k-1) + (5k-4) = 8 + 41.
  EXPECT_EQ(evaluation_mults(32, 32, 9, 2), 1024u * 49u);
  // Table 2: k=16, d=10: powers 32*8, per monomial 15 + 76.
  EXPECT_EQ(evaluation_mults(32, 32, 16, 10), 32u * 8u + 1024u * 91u);
  // CPU adds skip zeros; GPU adds cover all n^2+n outputs.
  EXPECT_EQ(evaluation_adds_cpu(32, 32, 9), 1024u * 10u);
  EXPECT_EQ(evaluation_adds_gpu(32, 32), (32u * 32u + 32u) * 31u);
}

}  // namespace
