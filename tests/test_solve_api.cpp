// The unified request/response surface: solve::Options validates and
// round-trips against the legacy ShardedSolveOptions spelling, the
// deprecated aliases stay compilable, solve::Report tallies per-status
// counts/extremes and converts to the legacy summary, and the enum
// to_string helpers cover every value.

#include <gtest/gtest.h>

#include "service/request.hpp"
#include "solve/options.hpp"
#include "solve/report.hpp"

namespace {

using namespace polyeval;

TEST(SolveOptions, DefaultsValidate) {
  const solve::Options opt;
  EXPECT_NO_THROW(opt.validate());
  EXPECT_EQ(opt.tracking.geometry, solve::Geometry::kProjective);
  EXPECT_EQ(opt.tracking.mode, solve::TrackMode::kLockstep);
  EXPECT_EQ(opt.sharding.backend, solve::EvalBackend::kFused);
  EXPECT_EQ(opt.tuning.mode, solve::TuningMode::kMeasured);
}

TEST(SolveOptions, ValidationRejectsNonsense) {
  {
    solve::Options o;
    o.sharding.shards = 0;
    EXPECT_THROW(o.validate(), std::invalid_argument);
  }
  {
    solve::Options o;
    o.sharding.workers_per_shard = 0;
    EXPECT_THROW(o.validate(), std::invalid_argument);
  }
  {
    solve::Options o;
    o.sharding.lockstep_batch = 0;
    EXPECT_THROW(o.validate(), std::invalid_argument);
  }
  {
    solve::Options o;
    o.tracking.track.initial_step = 0.0;
    EXPECT_THROW(o.validate(), std::invalid_argument);
  }
  {
    solve::Options o;
    o.tracking.track.step_shrink = 1.5;  // must shrink
    EXPECT_THROW(o.validate(), std::invalid_argument);
  }
  {
    solve::Options o;
    o.tracking.track.max_steps = 0;
    EXPECT_THROW(o.validate(), std::invalid_argument);
  }
}

TEST(SolveOptions, RoundTripsThroughLegacySpelling) {
  solve::Options opt;
  opt.tracking.geometry = solve::Geometry::kAffine;
  opt.tracking.mode = solve::TrackMode::kPerPath;
  opt.tracking.patch_seed = 7;
  opt.tracking.track.max_steps = 123;
  opt.tuning.mode = solve::TuningMode::kHeuristic;
  opt.tuning.block_size = 96;
  opt.tuning.detect_races = true;
  opt.sharding.shards = 5;
  opt.sharding.workers_per_shard = 3;
  opt.sharding.chunk_paths = 4;
  opt.sharding.max_paths = 17;
  opt.sharding.backend = solve::EvalBackend::kPipelined;
  opt.sharding.lockstep_batch = 9;
  opt.gamma_seed = 99;

  const auto legacy = opt.to_sharded();
  EXPECT_EQ(legacy.geometry, homotopy::TrackGeometry::kAffine);
  EXPECT_EQ(legacy.mode, homotopy::ShardTrackMode::kPerPath);
  EXPECT_EQ(legacy.shards, 5u);
  EXPECT_EQ(legacy.block_size, 96u);
  EXPECT_EQ(legacy.track.max_steps, 123u);

  const auto back = solve::Options::from_sharded(legacy);
  EXPECT_EQ(back, opt);  // defaulted operator== over every section
}

TEST(SolveOptions, DeprecatedAliasesCompile) {
  // The old spellings still name the same types (one release of grace).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  static_assert(std::is_same_v<solve::TrackGeometry, homotopy::TrackGeometry>);
  static_assert(
      std::is_same_v<solve::ShardTrackMode, homotopy::ShardTrackMode>);
  static_assert(
      std::is_same_v<solve::ShardEvalBackend, homotopy::ShardEvalBackend>);
  static_assert(
      std::is_same_v<solve::ShardedSolveOptions, homotopy::ShardedSolveOptions>);
#pragma GCC diagnostic pop
}

TEST(SolveReport, RetallyCountsEveryStatus) {
  solve::Report<double> r;
  r.paths.resize(5);
  r.paths[0].status = homotopy::PathStatus::kConverged;
  r.paths[0].steps = 10;
  r.paths[0].winding = 2;
  r.paths[0].final_residual = 1e-12;
  r.paths[1].status = homotopy::PathStatus::kAtInfinity;
  r.paths[1].rejections = 3;
  r.paths[2].status = homotopy::PathStatus::kStalled;
  r.paths[3].status = homotopy::PathStatus::kDiverged;
  r.paths[4].status = homotopy::PathStatus::kCancelled;
  r.retally();

  EXPECT_EQ(r.attempted, 5u);
  EXPECT_EQ(r.successes(), 1u);
  EXPECT_EQ(r.at_infinity(), 1u);
  EXPECT_EQ(r.cancelled(), 1u);
  EXPECT_EQ(r.classified(), 2u);
  EXPECT_EQ(r.by_status[homotopy::PathStatus::kStalled], 1u);
  EXPECT_EQ(r.by_status[homotopy::PathStatus::kDiverged], 1u);
  EXPECT_EQ(r.max_winding, 2u);
  EXPECT_EQ(r.max_final_residual, 1e-12);
  EXPECT_EQ(r.total_steps, 10u);
  EXPECT_EQ(r.total_rejections, 3u);

  const auto summary = r.to_summary();
  EXPECT_EQ(summary.attempted, 5u);
  EXPECT_EQ(summary.successes, 1u);
  EXPECT_EQ(summary.at_infinity, 1u);
  EXPECT_EQ(summary.paths.size(), 5u);

  const auto back = solve::make_report(summary);
  EXPECT_EQ(back.successes(), 1u);
  EXPECT_EQ(back.cancelled(), 1u);
  EXPECT_EQ(back.attempted, 5u);
}

TEST(SolveReport, ToStringPrintsEveryTimingAndMetricsField) {
  // The human rendering is pinned: every Timing field and every
  // scheduling-metrics field prints, zero or not -- a consumer reading
  // a report dump must never have to guess whether a missing field was
  // zero or just omitted.
  solve::Report<double> r;
  r.paths.resize(3);
  r.paths[0].status = homotopy::PathStatus::kConverged;
  r.paths[0].steps = 12;
  r.paths[0].winding = 2;
  r.paths[0].final_residual = 0.25;
  r.paths[1].status = homotopy::PathStatus::kAtInfinity;
  r.paths[1].rejections = 4;
  r.paths[2].status = homotopy::PathStatus::kCancelled;
  r.retally();
  r.timing.queue_wall_us = 1.5;
  r.timing.track_wall_us = 200.25;
  r.timing.total_wall_us = 210.5;
  r.timing.modeled_us = 1234.5;
  r.timing.rounds = 17;
  r.metrics.shared_rounds = 9;
  r.metrics.peak_tenants = 3;
  r.metrics.steals = 2;
  r.metrics.queue_pulls = 5;

  EXPECT_EQ(r.to_string(),
            "solve report v2: 3 paths (converged=1, at_infinity=1, "
            "stalled=0, diverged=0, cancelled=1)\n"
            "  extremes: max_winding=2 max_final_residual=0.25 steps=12 "
            "rejections=4\n"
            "  timing: queue_wall_us=1.5 track_wall_us=200.25 "
            "total_wall_us=210.5 modeled_us=1234.5 rounds=17\n"
            "  scheduling: shared_rounds=9 peak_tenants=3 steals=2 "
            "queue_pulls=5\n");

  // A default report still prints the full timing block (all zeros).
  const solve::Report<double> empty;
  EXPECT_NE(empty.to_string().find(
                "timing: queue_wall_us=0 track_wall_us=0 total_wall_us=0 "
                "modeled_us=0 rounds=0"),
            std::string::npos);
  EXPECT_EQ(solve::Report<double>::kVersion, 2u);
}

TEST(SolveReport, StatusToStringCoversEveryValue) {
  using homotopy::PathStatus;
  EXPECT_STREQ(homotopy::to_string(PathStatus::kConverged), "converged");
  EXPECT_STREQ(homotopy::to_string(PathStatus::kAtInfinity), "at_infinity");
  EXPECT_STREQ(homotopy::to_string(PathStatus::kStalled), "stalled");
  EXPECT_STREQ(homotopy::to_string(PathStatus::kDiverged), "diverged");
  EXPECT_STREQ(homotopy::to_string(PathStatus::kCancelled), "cancelled");

  using service::AdmissionVerdict;
  EXPECT_STREQ(to_string(AdmissionVerdict::kAdmitted), "admitted");
  EXPECT_STREQ(to_string(AdmissionVerdict::kQueueFull), "queue_full");
  EXPECT_STREQ(to_string(AdmissionVerdict::kPathBudgetExceeded),
               "path_budget_exceeded");
  EXPECT_STREQ(to_string(AdmissionVerdict::kInvalid), "invalid");

  using service::RequestStatus;
  EXPECT_STREQ(to_string(RequestStatus::kRejected), "rejected");
  EXPECT_STREQ(to_string(RequestStatus::kQueued), "queued");
  EXPECT_STREQ(to_string(RequestStatus::kTracking), "tracking");
  EXPECT_STREQ(to_string(RequestStatus::kDone), "done");
}

}  // namespace
