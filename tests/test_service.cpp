// The persistent solve service: cross-request coalescing onto shared
// lockstep rounds with bitwise parity against standalone solves,
// structure-keyed caching (colliding hashes must never alias), work
// stealing between shards, cooperative cancellation and deadlines,
// admission control verdicts, and the async submit/poll/cancel surface
// (the TSan job drives the threaded test).

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>

#include "core/multitenant_evaluator.hpp"
#include "homotopy/sharded_solver.hpp"
#include "newton/batch.hpp"
#include "poly/random_system.hpp"
#include "service/solve_service.hpp"

namespace {

using namespace polyeval;
using Cd = cplx::Complex<double>;

poly::PolynomialSystem small_system(std::uint32_t seed, unsigned dimension = 3) {
  poly::SystemSpec spec;
  spec.dimension = dimension;
  spec.monomials_per_polynomial = 3;
  spec.variables_per_monomial = 2;
  spec.max_exponent = 2;
  spec.seed = seed;
  return poly::make_random_system(spec);
}

solve::Options small_options(std::uint64_t max_paths = 6) {
  solve::Options opt;
  opt.sharding.max_paths = max_paths;
  opt.tracking.track.max_steps = 4000;
  return opt;
}

/// The standalone reference: the PIPELINED lockstep loop, an engine the
/// service never touches (the service is the fused path), bitwise equal
/// to fused tracking by the evaluator parity guarantee.
homotopy::SolveSummary<double> standalone(const poly::PolynomialSystem& sys,
                                          const solve::Options& opt) {
  auto legacy = opt.to_sharded();
  legacy.backend = homotopy::ShardEvalBackend::kPipelined;
  return homotopy::solve_total_degree_sharded<double>(sys, legacy);
}

/// Parses the Prometheus exposition text for one histogram family and
/// returns its p99 as the upper bound of the bucket containing the
/// 99th-percentile observation (cumulative `le` semantics).  This is
/// the same quantile a scrape-side `histogram_quantile` would report,
/// so gating on it exercises the surface operators actually watch.
double histogram_p99_from_exposition(const std::string& text,
                                     const std::string& family) {
  const std::string prefix = family + "_bucket{le=\"";
  std::istringstream in(text);
  std::string line;
  std::vector<std::pair<double, std::uint64_t>> cumulative;  // (bound, count<=)
  std::uint64_t total = 0;
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) != 0) continue;
    const std::size_t close = line.find('"', prefix.size());
    const std::string le = line.substr(prefix.size(), close - prefix.size());
    const double bound = le == "+Inf"
                             ? std::numeric_limits<double>::infinity()
                             : std::stod(le);
    const std::uint64_t cum = std::stoull(line.substr(line.find('}') + 1));
    cumulative.emplace_back(bound, cum);
    total = std::max(total, cum);
  }
  if (total == 0) return 0.0;
  const auto need = static_cast<std::uint64_t>(
      std::ceil(0.99 * static_cast<double>(total)));
  for (const auto& [bound, cum] : cumulative)
    if (cum >= std::max<std::uint64_t>(need, 1)) return bound;
  return std::numeric_limits<double>::infinity();
}

void expect_paths_bitwise_equal(const std::vector<homotopy::TrackResult<double>>& a,
                                const std::vector<homotopy::TrackResult<double>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(a[p].status, b[p].status) << "path " << p;
    EXPECT_EQ(a[p].steps, b[p].steps) << "path " << p;
    EXPECT_EQ(a[p].rejections, b[p].rejections) << "path " << p;
    EXPECT_EQ(a[p].winding, b[p].winding) << "path " << p;
    EXPECT_EQ(a[p].final_residual, b[p].final_residual) << "path " << p;
    ASSERT_EQ(a[p].solution.size(), b[p].solution.size()) << "path " << p;
    for (std::size_t i = 0; i < a[p].solution.size(); ++i)
      EXPECT_EQ(cplx::max_abs_diff(a[p].solution[i], b[p].solution[i]), 0.0)
          << "path " << p << ", coordinate " << i;
  }
}

TEST(SolveService, CoalescesSameStructureRequestsWithBitwiseParity) {
  // Two systems, same uniform structure, different coefficients: they
  // must share lockstep rounds (coalesced_rounds observes it) and every
  // request's endpoints must match its standalone solve bit for bit.
  const auto sys_a = small_system(99);
  const auto sys_b = small_system(1234);
  const auto opt = small_options();

  service::SolveService<double>::Config config;
  config.shards = 2;
  service::SolveService<double> svc(std::move(config));

  auto ta = svc.submit({sys_a, opt, {}, 0, 0.0});
  auto tb = svc.submit({sys_b, opt, {}, 0, 0.0});
  ASSERT_TRUE(ta.admitted());
  ASSERT_TRUE(tb.admitted());
  svc.drain();
  ASSERT_TRUE(ta.done());
  ASSERT_TRUE(tb.done());

  const auto stats = svc.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_GE(stats.coalesced_rounds, 1u) << "requests never shared a round";
  EXPECT_GE(stats.max_tenants_in_round, 2u);
  EXPECT_EQ(stats.cache_misses, 2u);  // distinct coefficient tables

  expect_paths_bitwise_equal(ta.report().paths, standalone(sys_a, opt).paths);
  expect_paths_bitwise_equal(tb.report().paths, standalone(sys_b, opt).paths);

  // The report's tallies and progress surface agree with the paths.
  const auto& ra = ta.report();
  EXPECT_EQ(ra.attempted, 6u);
  EXPECT_EQ(ra.classified(), ra.successes() + ra.at_infinity());
  EXPECT_GT(ra.timing.rounds, 0u);
  EXPECT_GT(ra.timing.modeled_us, 0.0);
  const auto pa = ta.poll();
  EXPECT_EQ(pa.status, service::RequestStatus::kDone);
  EXPECT_EQ(pa.paths_retired, 6u);
}

TEST(SolveService, ModeledClockRewardsCoalescingOverSequentialSolves) {
  // The tentpole throughput claim at test scale: two same-structure
  // requests solved through one service (shared rounds amortize launch
  // overhead) must cost no more modeled device time than the same two
  // requests solved back to back through fresh services.
  const auto sys_a = small_system(99);
  const auto sys_b = small_system(1234);
  const auto opt = small_options();

  const auto run = [&](std::initializer_list<const poly::PolynomialSystem*> order) {
    service::SolveService<double>::Config config;
    config.shards = 2;
    service::SolveService<double> svc(std::move(config));
    for (const auto* sys : order) {
      auto t = svc.submit({*sys, opt, {}, 0, 0.0});
      EXPECT_TRUE(t.admitted());
    }
    svc.drain();
    return svc.stats().total_modeled_us;
  };

  const double batched = run({&sys_a, &sys_b});
  double sequential = 0.0;
  sequential += run({&sys_a});
  sequential += run({&sys_b});
  EXPECT_LE(batched, sequential);
}

TEST(SolveService, CollidingHashesNeverAliasDistinctStructures) {
  // A constant-hash SystemCache buckets everything together; the full
  // content scan must still keep distinct systems (here: different
  // dimensions) apart, and they must never coalesce into one group.
  const auto sys_a = small_system(99, 3);
  const auto sys_b = small_system(77, 4);

  service::SolveService<double>::Config config;
  config.shards = 2;
  config.hasher = [](const core::PackedSystem&) { return std::uint64_t{7}; };
  service::SolveService<double> svc(std::move(config));

  auto ta = svc.submit({sys_a, small_options(4), {}, 0, 0.0});
  auto tb = svc.submit({sys_b, small_options(4), {}, 0, 0.0});
  ASSERT_TRUE(ta.admitted());
  ASSERT_TRUE(tb.admitted());
  svc.drain();

  const auto stats = svc.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.cache_misses, 2u);  // two entries despite one bucket
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_LE(stats.max_tenants_in_round, 1u) << "distinct structures coalesced";
  EXPECT_EQ(stats.coalesced_rounds, 0u);

  // Both still solve correctly against their own standalone runs.
  expect_paths_bitwise_equal(ta.report().paths,
                             standalone(sys_a, small_options(4)).paths);
  expect_paths_bitwise_equal(tb.report().paths,
                             standalone(sys_b, small_options(4)).paths);
}

TEST(SolveService, SystemCacheReusesEntriesAcrossRequests) {
  const auto sys = small_system(99);
  service::SolveService<double> svc;
  for (int i = 0; i < 3; ++i) {
    auto t = svc.submit({sys, small_options(4), {}, 0, 0.0});
    ASSERT_TRUE(t.admitted());
    svc.drain();
    ASSERT_TRUE(t.done());
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 2u);
}

TEST(SolveService, CancellationMidSolvePreservesSurvivorParity) {
  // Cancel request A after its first tracking tick; B keeps riding the
  // (now A-free) rounds and must stay bitwise equal to its standalone
  // solve.  A's paths all end kCancelled or already-classified.
  const auto sys_a = small_system(99);
  const auto sys_b = small_system(1234);
  const auto opt = small_options();

  service::SolveService<double>::Config config;
  config.shards = 2;
  service::SolveService<double> svc(std::move(config));
  auto ta = svc.submit({sys_a, opt, {}, 0, 0.0});
  auto tb = svc.submit({sys_b, opt, {}, 0, 0.0});
  ASSERT_TRUE(ta.admitted() && tb.admitted());

  (void)svc.step();  // both activate and ride one round
  ta.cancel();
  svc.drain();

  ASSERT_TRUE(ta.done());
  ASSERT_TRUE(tb.done());
  const auto& ra = ta.report();
  EXPECT_GE(ra.cancelled(), 1u) << "cancel arrived after completion";
  for (const auto& p : ra.paths)
    EXPECT_TRUE(p.status == homotopy::PathStatus::kCancelled || p.classified())
        << "cancelled request leaked status " << homotopy::to_string(p.status);
  EXPECT_GE(svc.stats().cancelled_requests, 1u);

  expect_paths_bitwise_equal(tb.report().paths, standalone(sys_b, opt).paths);
}

TEST(SolveService, DeadlineExpiryReportsCancelledNotDiverged) {
  // A one-tick round budget cannot finish this workload: the request
  // completes with kCancelled paths -- never kDiverged/kStalled, which
  // would misreport a scheduling decision as a numerical verdict.
  const auto sys = small_system(99);
  service::SolveService<double> svc;
  auto t = svc.submit({sys, small_options(), {}, /*round_budget=*/1, 0.0});
  ASSERT_TRUE(t.admitted());
  svc.drain();
  ASSERT_TRUE(t.done());

  const auto& r = t.report();
  EXPECT_GE(r.cancelled(), 1u);
  EXPECT_EQ(r.by_status[homotopy::PathStatus::kDiverged], 0u);
  EXPECT_EQ(r.by_status[homotopy::PathStatus::kStalled], 0u);
  for (const auto& p : r.paths)
    EXPECT_TRUE(p.status == homotopy::PathStatus::kCancelled || p.classified());
}

TEST(SolveService, AdmissionControlVerdicts) {
  const auto sys = small_system(99);

  {  // Non-lockstep / non-fused modes belong to the one-shot API.
    service::SolveService<double> svc;
    auto opt = small_options();
    opt.tracking.mode = solve::TrackMode::kPerPath;
    auto t = svc.submit({sys, opt, {}, 0, 0.0});
    EXPECT_EQ(t.verdict(), service::AdmissionVerdict::kInvalid);
    EXPECT_TRUE(t.done());
    EXPECT_EQ(t.poll().status, service::RequestStatus::kRejected);
    EXPECT_THROW((void)t.report(), std::logic_error);

    opt = small_options();
    opt.sharding.backend = solve::EvalBackend::kPipelined;
    EXPECT_EQ(svc.submit({sys, opt, {}, 0, 0.0}).verdict(),
              service::AdmissionVerdict::kInvalid);

    opt = small_options();
    opt.sharding.shards = 0;  // fails Options::validate
    EXPECT_EQ(svc.submit({sys, opt, {}, 0, 0.0}).verdict(),
              service::AdmissionVerdict::kInvalid);
  }
  {  // Path budget.
    service::SolveService<double>::Config config;
    config.max_paths_per_request = 2;
    service::SolveService<double> svc(std::move(config));
    auto t = svc.submit({sys, small_options(6), {}, 0, 0.0});
    EXPECT_EQ(t.verdict(), service::AdmissionVerdict::kPathBudgetExceeded);
    EXPECT_EQ(svc.stats().rejected_budget, 1u);
    // Trimmed under the budget, the same system is admitted.
    EXPECT_TRUE(svc.submit({sys, small_options(2), {}, 0, 0.0}).admitted());
  }
  {  // Bounded queue backpressure.
    service::SolveService<double>::Config config;
    config.max_queued = 1;
    service::SolveService<double> svc(std::move(config));
    auto t1 = svc.submit({sys, small_options(2), {}, 0, 0.0});
    auto t2 = svc.submit({sys, small_options(2), {}, 0, 0.0});
    EXPECT_TRUE(t1.admitted());
    EXPECT_EQ(t2.verdict(), service::AdmissionVerdict::kQueueFull);
    EXPECT_EQ(svc.stats().rejected_queue_full, 1u);
    svc.drain();  // the admitted one still completes
    EXPECT_TRUE(t1.done());
  }
}

TEST(SolveService, StealsLivePathsIntoIdleShards) {
  // 5 paths over 2 shards with 4 slots each: shard 0 fills to 4, shard
  // 1 gets 1, the pending queue is empty -- the very first rebalance
  // must move a path (4,1) -> (3,2), and endpoints stay bitwise equal
  // to the standalone solve (trajectories are schedule-independent).
  const auto sys = small_system(99);
  const auto opt = small_options(5);

  service::SolveService<double>::Config config;
  config.shards = 2;
  config.slots_per_shard = 4;
  service::SolveService<double> svc(std::move(config));
  auto t = svc.submit({sys, opt, {}, 0, 0.0});
  ASSERT_TRUE(t.admitted());
  svc.drain();
  ASSERT_TRUE(t.done());

  EXPECT_GE(svc.stats().live_steals, 1u);
  expect_paths_bitwise_equal(t.report().paths, standalone(sys, opt).paths);
}

TEST(SolveService, FairnessLetsSmallRequestsFinishPastAHugeOne) {
  // The starvation scenario the fairness knob exists for: one huge
  // request and a chain of small ones share a group with scarce slots
  // (2 shards x 2) and scarce tenants (2).  FIFO fill parks every
  // small-request path behind the huge run's backlog, so the smalls
  // complete (and release their tenant to the next small) only near
  // the end of the huge solve.  Deficit-round-robin fill interleaves
  // them, so the last small finishes strictly earlier -- a
  // deterministic tick-count gate -- and the operator-visible
  // queue-wall p99 (existing obs histogram) must not get worse.
  // Endpoints stay bitwise equal either way: fairness shapes placement
  // order, never arithmetic.
  const auto huge_sys = small_system(7);
  const auto small_sys = small_system(4242);
  const auto huge_opt = small_options(48);
  const auto small_opt = small_options(2);
  constexpr std::size_t kSmalls = 4;

  struct Outcome {
    std::uint64_t last_small_done_tick = 0;
    double queue_wall_p99 = 0.0;
  };
  const auto run = [&](std::uint64_t fairness) {
    service::SolveService<double>::Config config;
    config.shards = 2;
    config.slots_per_shard = 2;
    config.max_tenants = 2;
    config.fairness = fairness;
    service::SolveService<double> svc(std::move(config));

    auto huge = svc.submit({huge_sys, huge_opt, {}, 0, 0.0});
    std::array<service::SolveTicket<double>, kSmalls> smalls;
    for (auto& t : smalls) t = svc.submit({small_sys, small_opt, {}, 0, 0.0});
    EXPECT_TRUE(huge.admitted());
    for (auto& t : smalls) EXPECT_TRUE(t.admitted());

    Outcome out;
    std::array<std::uint64_t, kSmalls> done_tick{};
    std::uint64_t tick = 0;
    bool more = true;
    while (more) {
      more = svc.step();
      ++tick;
      for (std::size_t i = 0; i < kSmalls; ++i)
        if (done_tick[i] == 0 && smalls[i].done()) done_tick[i] = tick;
    }
    EXPECT_TRUE(huge.done());
    for (std::size_t i = 0; i < kSmalls; ++i) {
      EXPECT_TRUE(smalls[i].done());
      out.last_small_done_tick =
          std::max(out.last_small_done_tick, done_tick[i]);
    }
    // The premise: the huge request really dwarfs the smalls, so FIFO
    // has something to starve them behind.
    EXPECT_GE(huge.report().attempted, 16u);

    expect_paths_bitwise_equal(huge.report().paths,
                               standalone(huge_sys, huge_opt).paths);
    expect_paths_bitwise_equal(smalls[0].report().paths,
                               standalone(small_sys, small_opt).paths);

    std::ostringstream os;
    svc.metrics().expose(os);
    out.queue_wall_p99 = histogram_p99_from_exposition(
        os.str(), "polyeval_request_queue_wall_us");
    return out;
  };

  const Outcome fifo = run(0);
  const Outcome fair = run(1);
  EXPECT_LT(fair.last_small_done_tick, fifo.last_small_done_tick)
      << "deficit-round-robin fill must retire the small requests "
         "strictly before FIFO fill does";
  EXPECT_LE(fair.queue_wall_p99, fifo.queue_wall_p99)
      << "fairness must not worsen the queue-wall p99 the obs "
         "histogram reports";
}

TEST(SolveService, HeterogeneousFleetKeepsBitwiseParityAndChargesEveryDevice) {
  // A 2x-asymmetric fleet through the service front door: weights come
  // out 1.0 / 0.5, endpoints stay bitwise equal to the standalone
  // solve (weighted placement moves paths, never arithmetic), and the
  // per-device busy ledger shows both devices actually worked.
  const auto sys = small_system(99);
  const auto opt = small_options(6);

  service::SolveService<double>::Config config;
  config.specs = {simt::DeviceSpec::tesla_c2050(),
                  simt::DeviceSpec::tesla_c2050().derated(
                      0.5, "half-clock C2050 (simulated)")};
  service::SolveService<double> svc(std::move(config));

  ASSERT_EQ(svc.weights().size(), 2u);
  EXPECT_DOUBLE_EQ(svc.weights()[0], 1.0);
  EXPECT_DOUBLE_EQ(svc.weights()[1], 0.5);

  auto t = svc.submit({sys, opt, {}, 0, 0.0});
  ASSERT_TRUE(t.admitted());
  svc.drain();
  ASSERT_TRUE(t.done());

  expect_paths_bitwise_equal(t.report().paths, standalone(sys, opt).paths);

  const auto stats = svc.stats();
  ASSERT_EQ(stats.device_busy_us.size(), 2u);
  EXPECT_GT(stats.device_busy_us[0], 0.0)
      << "the fast device never ran a round";
  EXPECT_GT(stats.device_busy_us[1], 0.0)
      << "weighted fill starved the slow device entirely";
  // Weighted fill biases toward the fast device: it must carry at
  // least as much modeled busy time as the half-clock one earns
  // credit for.
  EXPECT_GE(stats.device_busy_us[0], stats.device_busy_us[1] * 0.5);
}

TEST(SolveService, AsyncSubmitPollCancelFromClientThreads) {
  // The concurrency surface the TSan job exercises: a background
  // scheduler thread ticking rounds while client threads submit, poll
  // and cancel through tickets.
  const auto sys_a = small_system(99);
  const auto sys_b = small_system(1234);
  const auto opt = small_options(4);

  service::SolveService<double>::Config config;
  config.shards = 2;
  config.async = true;
  service::SolveService<double> svc(std::move(config));

  std::vector<service::SolveTicket<double>> tickets(3);
  std::thread client_a([&] {
    tickets[0] = svc.submit({sys_a, opt, {}, 0, 0.0});
    while (!tickets[0].done()) std::this_thread::yield();
  });
  std::thread client_b([&] {
    tickets[1] = svc.submit({sys_b, opt, {}, 0, 0.0});
    tickets[2] = svc.submit({sys_a, opt, {}, 0, 0.0});
    tickets[2].cancel();  // may land before or after completion: both legal
    while (!tickets[1].done() || !tickets[2].done()) std::this_thread::yield();
  });
  client_a.join();
  client_b.join();
  svc.wait_idle();

  for (auto& t : tickets) {
    ASSERT_TRUE(t.valid());
    ASSERT_TRUE(t.admitted());
    ASSERT_TRUE(t.done());
    EXPECT_EQ(t.report().attempted, t.poll().paths_total);
  }
  // The un-cancelled requests still match their standalone solves.
  expect_paths_bitwise_equal(tickets[0].report().paths,
                             standalone(sys_a, opt).paths);
  expect_paths_bitwise_equal(tickets[1].report().paths,
                             standalone(sys_b, opt).paths);
}

TEST(MultiTenantEvaluator, MatchesSingleTenantEvaluatorsBitwise) {
  // The coalescing primitive: one multi-tenant launch over interleaved
  // tenant ids must reproduce each tenant's single-tenant evaluator bit
  // for bit (same fold, same kernel arithmetic, tables selected by id).
  const auto sys_a = small_system(99);
  const auto sys_b = small_system(1234);
  const unsigned batch = 6;

  std::vector<std::vector<Cd>> points;
  for (unsigned p = 0; p < batch; ++p)
    points.push_back(poly::make_random_point<double>(3, 500 + p));

  simt::Device dev_mt, dev_a, dev_b;
  core::FusedGpuEvaluator<double> eval_a(dev_a, sys_a, batch);
  core::FusedGpuEvaluator<double> eval_b(dev_b, sys_b, batch);
  std::vector<poly::EvalResult<double>> want_a, want_b;
  eval_a.evaluate(points, want_a);
  eval_b.evaluate(points, want_b);

  core::MultiTenantFusedEvaluator<double> mt(
      dev_mt, core::pack_system(sys_a).structure, /*max_tenants=*/2, batch);
  mt.set_tenant(0, sys_a);
  mt.set_tenant(1, sys_b);
  const std::vector<unsigned> tenants = {0, 1, 1, 0, 1, 0};
  mt.bind_tenants(std::span<const unsigned>(tenants));

  std::vector<poly::EvalResult<double>> got(batch);
  mt.evaluate_range(points, 0, batch, std::span<poly::EvalResult<double>>(got));
  for (unsigned p = 0; p < batch; ++p) {
    const auto& want = tenants[p] == 0 ? want_a[p] : want_b[p];
    EXPECT_EQ(poly::max_abs_diff(want, got[p]), 0.0) << "point " << p;
  }

  // Structure mismatch is rejected at install time.
  EXPECT_THROW(mt.set_tenant(1, small_system(5, 4)), std::invalid_argument);
}

TEST(SolveService, MetricsExpositionCoversEveryInstrumentedLayer) {
  // One multi-request run (two admitted + one rejected) must leave
  // nonzero samples from EVERY instrumented layer on the exposition
  // page: service admission/lifecycle, scheduler rounds, the lockstep
  // tracker, the Newton layer, the caches and the per-kernel launch
  // accounting.  This is the contract consumers scrape against.
  service::SolveService<double>::Config config;
  config.shards = 2;
  config.max_paths_per_request = 8;
  service::SolveService<double> svc(std::move(config));

  auto ta = svc.submit({small_system(99), small_options(), {}, 0, 0.0});
  auto tb = svc.submit({small_system(1234), small_options(), {}, 0, 0.0});
  ASSERT_TRUE(ta.admitted());
  ASSERT_TRUE(tb.admitted());
  // Over the per-request path budget: rejected at admission.
  auto tr = svc.submit({small_system(7), small_options(16), {}, 0, 0.0});
  EXPECT_EQ(tr.verdict(), service::AdmissionVerdict::kPathBudgetExceeded);
  svc.drain();
  ASSERT_TRUE(ta.done());
  ASSERT_TRUE(tb.done());

  std::ostringstream os;
  svc.metrics().expose(os);
  const std::string text = os.str();

  const auto sample = [&](const std::string& name) {
    std::istringstream in(text);
    for (std::string line; std::getline(in, line);)
      if (line.rfind(name + " ", 0) == 0)
        return std::stod(line.substr(name.size() + 1));
    ADD_FAILURE() << "sample '" << name << "' missing from exposition";
    return -1.0;
  };

  // Service lifecycle + admission.
  EXPECT_EQ(sample("polyeval_requests_submitted_total"), 3.0);
  EXPECT_EQ(sample("polyeval_requests_admitted_total"), 2.0);
  EXPECT_EQ(sample("polyeval_requests_completed_total"), 2.0);
  EXPECT_EQ(sample("polyeval_requests_rejected_total"
                   "{reason=\"path_budget_exceeded\"}"), 1.0);
  EXPECT_GT(sample("polyeval_service_ticks_total"), 0.0);
  EXPECT_GT(sample("polyeval_shard_rounds_total"), 0.0);
  EXPECT_GT(sample("polyeval_queue_pulls_total"), 0.0);
  EXPECT_GT(sample("polyeval_modeled_us_total"), 0.0);
  EXPECT_EQ(sample("polyeval_request_queue_wall_us_count"), 2.0);

  // Tracker layer.
  EXPECT_GT(sample("polyeval_tracker_rounds_total"), 0.0);
  EXPECT_GT(sample("polyeval_tracker_steps_accepted_total"), 0.0);
  EXPECT_EQ(sample("polyeval_paths_retired_total{status=\"converged\"}") +
                sample("polyeval_paths_retired_total{status=\"at_infinity\"}") +
                sample("polyeval_paths_retired_total{status=\"stalled\"}") +
                sample("polyeval_paths_retired_total{status=\"diverged\"}") +
                sample("polyeval_paths_retired_total{status=\"cancelled\"}"),
            12.0);
  EXPECT_EQ(sample("polyeval_path_steps_count"), 12.0);

  // Newton layer.
  EXPECT_GT(sample("polyeval_newton_calls_total"), 0.0);
  EXPECT_GT(sample("polyeval_newton_iterations_total"), 0.0);
  EXPECT_GT(sample("polyeval_newton_iterations_per_path_count"), 0.0);

  // Caches (gauges refreshed by metrics()).  Admission resolves the
  // cache entry BEFORE the path-budget check, so the rejected request's
  // distinct system also counts one miss: three in total.
  EXPECT_EQ(sample("polyeval_system_cache_misses"), 3.0);
  EXPECT_EQ(sample("polyeval_service_queue_depth"), 0.0);
  EXPECT_EQ(sample("polyeval_service_active_requests"), 0.0);

  // Per-kernel launch accounting + DMA directions.
  EXPECT_NE(text.find("polyeval_kernel_launches_total{kernel="),
            std::string::npos);
  EXPECT_NE(text.find("polyeval_kernel_modeled_us_total{kernel="),
            std::string::npos);
  EXPECT_GT(sample("polyeval_dma_bytes_total{direction=\"h2d\"}"), 0.0);
  EXPECT_GT(sample("polyeval_dma_bytes_total{direction=\"d2h\"}"), 0.0);

  // The per-request scheduling metrics surface in the report too.
  EXPECT_GT(ta.report().metrics.queue_pulls, 0u);
  EXPECT_GE(ta.report().metrics.peak_tenants, 1u);
}

TEST(RefineBatch, AllMaskedPathsSkipEveryLaunch) {
  // Satellite fix: when cancellation masks out every path mid-round,
  // refine_batch must return before any staging or device work -- the
  // launch log stays empty, exactly like count == 0.
  const auto sys = small_system(99);
  const homotopy::TotalDegreeStart start(sys);
  const auto gamma = homotopy::random_gamma(1);

  simt::Device device;
  core::FusedGpuEvaluator<double> f(device, sys, 4);
  ad::CpuEvaluator<double> g(start.system());
  homotopy::BatchedHomotopy<double, core::FusedGpuEvaluator<double>> h(f, g,
                                                                       gamma);

  std::vector<std::vector<Cd>> x;
  std::vector<Cd> ts;
  for (unsigned p = 0; p < 4; ++p) {
    auto rd = start.start_root(p);
    std::vector<Cd> r;
    for (const auto& z : rd) r.push_back(z);
    x.push_back(std::move(r));
    ts.push_back(Cd::from_double(0.5));
  }

  linalg::LuArena<double> arena(3, 4);
  newton::RefineBatchScratch<double> scratch;
  scratch.reserve(3, 4, 4);
  std::vector<newton::BatchPathStatus> status(4);
  newton::NewtonOptions nopt;

  const std::vector<unsigned char> all_masked(4, 1);
  device.clear_log();
  newton::refine_batch(h, x, std::span<const Cd>(ts), 4, nopt, arena, scratch,
                       std::span<newton::BatchPathStatus>(status),
                       std::span<const std::size_t>(),
                       std::span<const unsigned char>(all_masked));
  EXPECT_TRUE(device.log().kernels.empty()) << "all-masked refine launched";
  EXPECT_EQ(device.log().transfers.transfers_to_device, 0u);

  // Sanity: with the mask lifted the same call does real device work.
  newton::refine_batch(h, x, std::span<const Cd>(ts), 4, nopt, arena, scratch,
                       std::span<newton::BatchPathStatus>(status),
                       std::span<const std::size_t>(),
                       std::span<const unsigned char>());
  EXPECT_FALSE(device.log().kernels.empty());
}

}  // namespace
