// Text I/O: parsing, formatting, round trips (including the classic
// families), and error reporting with positions.

#include <gtest/gtest.h>

#include "poly/eval_result.hpp"
#include "poly/families.hpp"
#include "poly/io.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;
using Cd = cplx::Complex<double>;

TEST(PolyIo, ParsesSimplePolynomial) {
  const auto p = poly::parse_polynomial("2*x0^2*x1 + 3*x2 - x0", 3);
  ASSERT_EQ(p.num_monomials(), 3u);
  const std::vector<Cd> x = {{2.0, 0.0}, {3.0, 0.0}, {5.0, 0.0}};
  // 2*4*3 + 15 - 2 = 37
  EXPECT_DOUBLE_EQ(p.evaluate<double>(x).re(), 37.0);
}

TEST(PolyIo, ParsesComplexCoefficients) {
  const auto p = poly::parse_polynomial("(1.5,-2)*x0 + (0,1)", 1);
  const std::vector<Cd> x = {{1.0, 0.0}};
  const auto v = p.evaluate<double>(x);
  EXPECT_DOUBLE_EQ(v.re(), 1.5);
  EXPECT_DOUBLE_EQ(v.im(), -1.0);
}

TEST(PolyIo, ParsesConstantsAndBareVariables) {
  const auto p = poly::parse_polynomial("x1 + 5", 2);
  const std::vector<Cd> x = {{9.0, 0.0}, {4.0, 0.0}};
  EXPECT_DOUBLE_EQ(p.evaluate<double>(x).re(), 9.0);
}

TEST(PolyIo, WhitespaceAndScientificNotation) {
  const auto p = poly::parse_polynomial("  1.5e2 * x0 ^ 2\n - 2.5e-1 ", 1);
  const std::vector<Cd> x = {{2.0, 0.0}};
  EXPECT_DOUBLE_EQ(p.evaluate<double>(x).re(), 600.0 - 0.25);
}

TEST(PolyIo, LeadingSign) {
  const auto p = poly::parse_polynomial("-x0 + 1", 1);
  const std::vector<Cd> x = {{3.0, 0.0}};
  EXPECT_DOUBLE_EQ(p.evaluate<double>(x).re(), -2.0);
}

TEST(PolyIo, ParsesSystem) {
  const auto sys = poly::parse_system("x0^2 + x1^2 - 5;\nx0*x1 - 2;");
  EXPECT_EQ(sys.dimension(), 2u);
  const std::vector<Cd> x = {{1.0, 0.0}, {2.0, 0.0}};
  std::vector<Cd> values(2), jac(4);
  sys.evaluate_naive<double>(x, values, jac);
  EXPECT_NEAR(values[0].re(), 0.0, 1e-15);
  EXPECT_NEAR(values[1].re(), 0.0, 1e-15);
}

TEST(PolyIo, FormatRoundTripsRandomSystems) {
  poly::SystemSpec spec;
  spec.dimension = 6;
  spec.monomials_per_polynomial = 5;
  spec.variables_per_monomial = 3;
  spec.max_exponent = 4;
  const auto sys = poly::make_random_system(spec);
  const auto text = poly::format(sys);
  const auto parsed = poly::parse_system(text);
  ASSERT_EQ(parsed.dimension(), sys.dimension());

  // identical evaluation at a random point
  const auto x = poly::make_random_point<double>(6, 5);
  poly::EvalResult<double> a(6), b(6);
  sys.evaluate_naive<double>(x, a.values, a.jacobian);
  parsed.evaluate_naive<double>(x, b.values, b.jacobian);
  EXPECT_LT(poly::max_abs_diff(a, b), 1e-13);
}

TEST(PolyIo, FormatRoundTripsFamilies) {
  for (const auto& sys : {poly::cyclic(4), poly::katsura(3), poly::noon(3)}) {
    const auto parsed = poly::parse_system(poly::format(sys));
    ASSERT_EQ(parsed.dimension(), sys.dimension());
    const auto x = poly::make_random_point<double>(sys.dimension(), 7);
    poly::EvalResult<double> a(sys.dimension()), b(sys.dimension());
    sys.evaluate_naive<double>(x, a.values, a.jacobian);
    parsed.evaluate_naive<double>(x, b.values, b.jacobian);
    EXPECT_LT(poly::max_abs_diff(a, b), 1e-12);
  }
}

TEST(PolyIo, FormatsNegativeRealCoefficientsReadably) {
  poly::PolynomialBuilder b(2);
  b.add_term({1.0, 0.0}, {1, 1});
  b.add_term({-2.0, 0.0}, {2, 0});
  const auto text = poly::format(b.build());
  EXPECT_EQ(text.find("+ -"), std::string::npos) << text;
  EXPECT_NE(text.find(" - "), std::string::npos) << text;
}

TEST(PolyIo, ErrorsCarryOffsets) {
  try {
    (void)poly::parse_polynomial("x0 + @", 1);
    FAIL() << "expected ParseError";
  } catch (const poly::ParseError& e) {
    EXPECT_GE(e.offset(), 5u);
  }
}

TEST(PolyIo, RejectsBadInputs) {
  EXPECT_THROW((void)poly::parse_polynomial("", 1), poly::ParseError);
  EXPECT_THROW((void)poly::parse_polynomial("x5", 2), poly::ParseError);  // var range
  EXPECT_THROW((void)poly::parse_polynomial("x0^0", 1), poly::ParseError);  // exp 0
  EXPECT_THROW((void)poly::parse_polynomial("x0^", 1), poly::ParseError);
  EXPECT_THROW((void)poly::parse_polynomial("2*", 1), poly::ParseError);
  EXPECT_THROW((void)poly::parse_polynomial("(1,2", 1), poly::ParseError);
  EXPECT_THROW((void)poly::parse_polynomial("x0 x1", 2), poly::ParseError);  // no '*'
  EXPECT_THROW((void)poly::parse_system(""), poly::ParseError);
  EXPECT_THROW((void)poly::parse_system("x0 - 1; x0"), poly::ParseError);  // no final ';'
  EXPECT_THROW((void)poly::parse_system("x0*x0 - 1;"), std::invalid_argument);  // dup var
}

TEST(PolyIo, SystemDimensionIsPolynomialCount) {
  // two polynomials -> dimension 2, so x2 is out of range
  EXPECT_THROW((void)poly::parse_system("x0 - 1; x2 - 1;"), poly::ParseError);
}

TEST(PolyIo, UniformStructureSurvivesRoundTrip) {
  poly::SystemSpec spec;
  spec.dimension = 8;
  spec.monomials_per_polynomial = 4;
  spec.variables_per_monomial = 3;
  spec.max_exponent = 2;
  const auto sys = poly::make_random_system(spec);
  const auto parsed = poly::parse_system(poly::format(sys));
  EXPECT_EQ(parsed.uniform_structure(), sys.uniform_structure());
}

}  // namespace
