// evaluate_range edge cases across the evaluator stack (Fused, Batch,
// Pipelined, and the Sharded evaluator driving them): empty ranges are
// rejected, a single point matches the full-batch result bitwise, a
// range covering the whole batch matches evaluate(), and overlapping
// back-to-back ranges re-produce identical bits without disturbing
// neighbouring slots.

#include <gtest/gtest.h>

#include "core/batch_evaluator.hpp"
#include "core/pipelined_evaluator.hpp"
#include "core/sharded_evaluator.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;
using Cd = cplx::Complex<double>;

poly::PolynomialSystem make_system() {
  poly::SystemSpec spec;
  spec.dimension = 8;
  spec.monomials_per_polynomial = 6;
  spec.variables_per_monomial = 4;
  spec.max_exponent = 3;
  spec.seed = 1234;
  return poly::make_random_system(spec);
}

std::vector<std::vector<Cd>> make_points(unsigned batch) {
  std::vector<std::vector<Cd>> points;
  for (unsigned p = 0; p < batch; ++p)
    points.push_back(poly::make_random_point<double>(8, 600 + p));
  return points;
}

/// The shared edge-case battery, generic over any evaluator exposing
/// the evaluate / evaluate_range pair.
template <class Evaluator>
void run_range_edge_cases(Evaluator& gpu, const std::vector<std::vector<Cd>>& points) {
  const std::size_t batch = points.size();

  std::vector<poly::EvalResult<double>> want;
  gpu.evaluate(points, want);
  ASSERT_EQ(want.size(), batch);

  std::vector<poly::EvalResult<double>> got(batch);
  const std::span<poly::EvalResult<double>> out(got);

  // Empty range: rejected, buffers untouched.
  EXPECT_THROW(gpu.evaluate_range(points, 0, 0, out), std::invalid_argument);
  EXPECT_THROW(gpu.evaluate_range(points, batch, 0, out), std::invalid_argument);

  // Single point, every position: bitwise equal to its full-batch bits.
  for (std::size_t p = 0; p < batch; ++p) {
    gpu.evaluate_range(points, p, 1, out.subspan(p, 1));
    EXPECT_EQ(poly::max_abs_diff(want[p], got[p]), 0.0) << "single point " << p;
  }

  // Range == full batch: identical to evaluate().
  std::vector<poly::EvalResult<double>> full(batch);
  gpu.evaluate_range(points, 0, batch, std::span<poly::EvalResult<double>>(full));
  for (std::size_t p = 0; p < batch; ++p)
    EXPECT_EQ(poly::max_abs_diff(want[p], full[p]), 0.0) << "full batch " << p;

  // Overlapping back-to-back ranges: [0, 4) then [2, 6) -- the overlap
  // is recomputed to identical bits and the untouched tail keeps its
  // previous contents.
  ASSERT_GE(batch, 6u);
  gpu.evaluate_range(points, 0, 4, out.subspan(0, 4));
  gpu.evaluate_range(points, 2, 4, out.subspan(2, 4));
  for (std::size_t p = 0; p < 6; ++p)
    EXPECT_EQ(poly::max_abs_diff(want[p], got[p]), 0.0) << "overlap " << p;
}

TEST(EvaluateRange, FusedEvaluatorEdgeCases) {
  const auto sys = make_system();
  const auto points = make_points(7);
  simt::Device device;
  core::FusedGpuEvaluator<double> gpu(device, sys, 7);
  run_range_edge_cases(gpu, points);
}

TEST(EvaluateRange, BatchEvaluatorEdgeCases) {
  const auto sys = make_system();
  const auto points = make_points(7);
  simt::Device device;
  core::BatchGpuEvaluator<double> gpu(device, sys, 7);
  run_range_edge_cases(gpu, points);
}

TEST(EvaluateRange, PipelinedEvaluatorEdgeCases) {
  const auto sys = make_system();
  const auto points = make_points(7);
  simt::Device device;
  core::PipelinedFusedEvaluator<double>::Options opt;
  opt.micro_chunk = 3;  // ranges cross micro-chunk boundaries
  core::PipelinedFusedEvaluator<double> gpu(device, sys, 7, opt);
  run_range_edge_cases(gpu, points);
}

TEST(EvaluateRange, RangeBeyondCapacityRejected) {
  const auto sys = make_system();
  const auto points = make_points(6);
  simt::Device device;
  core::FusedGpuEvaluator<double> gpu(device, sys, 4);  // capacity < batch
  std::vector<poly::EvalResult<double>> got(6);
  const std::span<poly::EvalResult<double>> out(got);
  EXPECT_THROW(gpu.evaluate_range(points, 0, 6, out), std::invalid_argument);
  EXPECT_NO_THROW(gpu.evaluate_range(points, 2, 4, out.subspan(2, 4)));
  // Output slice smaller than the range: rejected before any work.
  EXPECT_THROW(gpu.evaluate_range(points, 0, 4, out.subspan(0, 3)),
               std::invalid_argument);
}

/// The values-only edge-case battery: bad ranges rejected, sub-ranges
/// bitwise equal to the full batch's values, untouched slots preserved.
template <class Evaluator>
void run_values_range_edge_cases(Evaluator& gpu,
                                 const std::vector<std::vector<Cd>>& points) {
  const std::size_t batch = points.size();
  const unsigned n = gpu.dimension();

  std::vector<poly::EvalResult<double>> full;
  gpu.evaluate(points, full);

  std::vector<Cd> want(batch * n);
  gpu.evaluate_values_range(points, 0, batch, std::span<Cd>(want));
  for (std::size_t p = 0; p < batch; ++p)
    for (unsigned q = 0; q < n; ++q)
      EXPECT_EQ(cplx::max_abs_diff(full[p].values[q], want[p * n + q]), 0.0)
          << "point " << p << ", value " << q;

  std::vector<Cd> got(batch * n, Cd(-9.0, -9.0));
  const std::span<Cd> out(got);
  EXPECT_THROW(gpu.evaluate_values_range(points, 0, 0, out), std::invalid_argument);
  EXPECT_THROW(gpu.evaluate_values_range(points, batch, 1, out),
               std::invalid_argument);
  EXPECT_THROW(gpu.evaluate_values_range(points, 0, 2, out.subspan(0, n)),
               std::invalid_argument);  // output slice too small

  // Sub-ranges land in the right slots with the full batch's bits; the
  // sentinel tail stays untouched.
  gpu.evaluate_values_range(points, 2, 3, out.subspan(0, 3 * n));
  for (std::size_t p = 0; p < 3; ++p)
    for (unsigned q = 0; q < n; ++q)
      EXPECT_EQ(cplx::max_abs_diff(want[(p + 2) * n + q], got[p * n + q]), 0.0)
          << "sub-range point " << p;
  EXPECT_EQ(got[3 * n].re(), -9.0);
}

TEST(EvaluateRange, FusedValuesRangeEdgeCases) {
  const auto sys = make_system();
  const auto points = make_points(7);
  simt::Device device;
  core::FusedGpuEvaluator<double> gpu(device, sys, 7);
  run_values_range_edge_cases(gpu, points);
}

TEST(EvaluateRange, PipelinedValuesRangeEdgeCases) {
  const auto sys = make_system();
  const auto points = make_points(7);
  simt::Device device;
  core::PipelinedFusedEvaluator<double>::Options opt;
  opt.micro_chunk = 3;  // values ranges cross micro-chunk boundaries
  core::PipelinedFusedEvaluator<double> gpu(device, sys, 7, opt);
  run_values_range_edge_cases(gpu, points);
}

TEST(EvaluateRange, ShardedEvaluatorEdgeBatches) {
  // The sharded layer walks arbitrary batch sizes through fixed-size
  // chunks; the chunk-cursor edge cases (batch smaller than a chunk,
  // exactly one chunk, partial tail) must all reproduce the reference
  // bits in point order.
  const auto sys = make_system();
  const auto all_points = make_points(11);

  std::vector<poly::EvalResult<double>> want;
  {
    simt::Device device;
    core::FusedGpuEvaluator<double> gpu(device, sys, 11);
    gpu.evaluate(all_points, want);
  }

  core::ShardedEvaluator<double>::Options opt;
  opt.shards = 2;
  opt.chunk_points = 4;
  core::ShardedEvaluator<double> sharded(sys, opt);

  for (const std::size_t batch : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                                  std::size_t{5}, std::size_t{11}}) {
    std::vector<std::vector<Cd>> points(all_points.begin(),
                                        all_points.begin() + batch);
    std::vector<poly::EvalResult<double>> got;
    sharded.evaluate(points, got);
    ASSERT_EQ(got.size(), batch);
    for (std::size_t p = 0; p < batch; ++p)
      EXPECT_EQ(poly::max_abs_diff(want[p], got[p]), 0.0)
          << "batch " << batch << ", point " << p;
  }
}

}  // namespace
