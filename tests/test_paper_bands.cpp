// Reproduction guard: the timing model's output must stay inside a band
// around the paper's published Tables 1 and 2.  This is the regression
// test for the calibration constants in src/simt/timing.cpp -- any
// change that breaks the tables' SHAPE (flat GPU column, linear CPU
// column, rising speedups, k-ordering) or drifts far from the absolute
// numbers fails here.

#include <gtest/gtest.h>

#include "ad/cpu_evaluator.hpp"
#include "benchutil/paper_data.hpp"
#include "core/gpu_evaluator.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"

namespace {

using namespace polyeval;

struct ModeledRow {
  double gpu_s = 0, cpu_s = 0, speedup = 0;
};

ModeledRow model_row(const benchutil::PaperWorkload& workload, unsigned monomials) {
  poly::SystemSpec spec;
  spec.dimension = workload.dimension;
  spec.monomials_per_polynomial = monomials / workload.dimension;
  spec.variables_per_monomial = workload.variables_per_monomial;
  spec.max_exponent = workload.max_exponent;
  spec.seed = 20120102 + monomials;
  const auto sys = poly::make_random_system(spec);
  const auto x = poly::make_random_point<double>(spec.dimension, 31);

  const simt::DeviceSpec dspec;
  const simt::GpuCostModel gmodel;
  const simt::CpuCostModel cmodel;
  const double evals = static_cast<double>(workload.evaluations);

  simt::Device device;
  core::GpuEvaluator<double> gpu(device, sys);
  poly::EvalResult<double> r(spec.dimension);
  gpu.evaluate(std::span<const cplx::Complex<double>>(x), r);

  ad::CpuEvaluator<double> cpu(sys);
  cpu.evaluate(std::span<const cplx::Complex<double>>(x), r);
  const auto& ops = cpu.last_op_counts();

  ModeledRow row;
  row.gpu_s = simt::estimate_log_us(gpu.last_log(), dspec, gmodel) * evals * 1e-6;
  row.cpu_s =
      simt::estimate_cpu_us(ops.complex_mul, ops.complex_add, cmodel) * evals * 1e-6;
  row.speedup = row.cpu_s / row.gpu_s;
  return row;
}

class PaperBand : public ::testing::TestWithParam<int> {};

TEST_P(PaperBand, EveryRowWithinBand) {
  const auto workload =
      GetParam() == 1 ? benchutil::paper_table1() : benchutil::paper_table2();
  for (const auto& paper : workload.rows) {
    const auto modeled = model_row(workload, paper.total_monomials);
    // absolute bands: GPU within 35%, CPU within 20%, speedup within 40%
    EXPECT_NEAR(modeled.gpu_s / paper.gpu_seconds, 1.0, 0.35)
        << "GPU, " << paper.total_monomials << " monomials";
    EXPECT_NEAR(modeled.cpu_s / paper.cpu_seconds, 1.0, 0.20)
        << "CPU, " << paper.total_monomials << " monomials";
    EXPECT_NEAR(modeled.speedup / paper.speedup, 1.0, 0.40)
        << "speedup, " << paper.total_monomials << " monomials";
  }
}

TEST_P(PaperBand, ShapeProperties) {
  const auto workload =
      GetParam() == 1 ? benchutil::paper_table1() : benchutil::paper_table2();
  const auto first = model_row(workload, workload.rows.front().total_monomials);
  const auto last = model_row(workload, workload.rows.back().total_monomials);
  const double mono_growth = double(workload.rows.back().total_monomials) /
                             workload.rows.front().total_monomials;

  // GPU sublinear (near-flat), CPU near-linear, speedup strictly rising
  EXPECT_LT(last.gpu_s / first.gpu_s, 0.6 * mono_growth);
  EXPECT_NEAR(last.cpu_s / first.cpu_s, mono_growth, 0.15 * mono_growth);
  EXPECT_GT(last.speedup, first.speedup);
}

INSTANTIATE_TEST_SUITE_P(Tables, PaperBand, ::testing::Values(1, 2),
                         [](const auto& info) {
                           return "Table" + std::to_string(info.param);
                         });

TEST(PaperBands, KOrderingAtEqualMonomialCount) {
  // Table 2's k = 16 beats Table 1's k = 9 at every monomial count.
  for (const unsigned monomials : {704u, 1024u, 1536u}) {
    const auto t1 = model_row(benchutil::paper_table1(), monomials);
    const auto t2 = model_row(benchutil::paper_table2(), monomials);
    EXPECT_GT(t2.speedup, t1.speedup) << monomials;
  }
}

TEST(PaperBands, PublishedDataSelfConsistent) {
  // The transcribed table data: speedup column == cpu/gpu, up to the
  // paper's own rounding (CPU times are printed to 0.1 s).
  for (const auto& workload : {benchutil::paper_table1(), benchutil::paper_table2()}) {
    for (const auto& row : workload.rows) {
      EXPECT_NEAR(row.cpu_seconds / row.gpu_seconds, row.speedup, 0.06)
          << row.total_monomials;
    }
  }
}

}  // namespace
