// Sharded-evaluation parity and behaviour: values and Jacobians must be
// BITWISE identical across shard counts 1/2/4/8 (and identical to the
// single-device paper pipeline) for double, double-double and
// quad-double; chunk boundaries, partial chunks, work stealing vs the
// static schedule, and the three-kernel backend must all preserve the
// bits.  Merged results land in the caller's buffers in point order.

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "core/batch_evaluator.hpp"
#include "core/gpu_evaluator.hpp"
#include "core/sharded_evaluator.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;

poly::PolynomialSystem make_system(unsigned n, unsigned m, unsigned k, unsigned d,
                                   std::uint64_t seed = 77) {
  poly::SystemSpec spec;
  spec.dimension = n;
  spec.monomials_per_polynomial = m;
  spec.variables_per_monomial = k;
  spec.max_exponent = d;
  spec.seed = seed;
  return poly::make_random_system(spec);
}

template <prec::RealScalar S>
std::vector<std::vector<cplx::Complex<S>>> points_for(unsigned batch, unsigned dim,
                                                      std::uint64_t seed) {
  std::vector<std::vector<cplx::Complex<S>>> points;
  for (unsigned p = 0; p < batch; ++p)
    points.push_back(poly::make_random_point<S>(dim, seed + p));
  return points;
}

/// Baseline: the paper's three-kernel single-point pipeline.
template <prec::RealScalar S>
std::vector<poly::EvalResult<S>> baseline(const poly::PolynomialSystem& sys,
                                          const std::vector<std::vector<cplx::Complex<S>>>& points) {
  simt::Device device;
  core::GpuEvaluator<S> gpu(device, sys);
  std::vector<poly::EvalResult<S>> results;
  for (const auto& x : points)
    results.push_back(gpu.evaluate(std::span<const cplx::Complex<S>>(x)));
  return results;
}

template <prec::RealScalar S>
void expect_bitwise(const std::vector<poly::EvalResult<S>>& want,
                    const std::vector<poly::EvalResult<S>>& got, const char* label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t p = 0; p < want.size(); ++p)
    EXPECT_EQ(poly::max_abs_diff(want[p], got[p]), 0.0) << label << ", point " << p;
}

/// Shard-count sweep: every count reproduces the single-device pipeline
/// bitwise, chunking chosen so every count exercises partial chunks and
/// more chunks than shards.
template <prec::RealScalar S>
void run_shard_parity(unsigned n, unsigned m, unsigned k, unsigned d, unsigned batch) {
  const auto sys = make_system(n, m, k, d);
  const auto points = points_for<S>(batch, n, 4200);
  const auto want = baseline<S>(sys, points);

  for (const unsigned shards : {1u, 2u, 4u, 8u}) {
    typename core::ShardedEvaluator<S>::Options opt;
    opt.shards = shards;
    opt.workers_per_shard = 1;
    opt.chunk_points = 3;  // batch % 3 != 0 -> a partial tail chunk
    opt.backend.detect_races = true;  // parity runs with the journals on
    core::ShardedEvaluator<S> sharded(sys, opt);
    std::vector<poly::EvalResult<S>> got;
    sharded.evaluate(points, got);
    expect_bitwise(want, got,
                   (std::string("shards=") + std::to_string(shards)).c_str());
  }
}

TEST(ShardedParity, DoubleAcrossShardCounts) { run_shard_parity<double>(8, 6, 4, 3, 10); }
TEST(ShardedParity, DoubleWideSystem) { run_shard_parity<double>(16, 10, 9, 2, 10); }
TEST(ShardedParity, DoubleDoubleAcrossShardCounts) {
  run_shard_parity<prec::DoubleDouble>(6, 4, 3, 2, 10);
}
TEST(ShardedParity, QuadDoubleAcrossShardCounts) {
  run_shard_parity<prec::QuadDouble>(5, 3, 2, 2, 10);
}

TEST(ShardedParity, StaticScheduleMatchesWorkStealing) {
  const auto sys = make_system(8, 6, 4, 3);
  const auto points = points_for<double>(13, 8, 900);

  core::ShardedEvaluator<double>::Options stealing;
  stealing.shards = 4;
  stealing.chunk_points = 2;
  core::ShardedEvaluator<double> a(sys, stealing);

  auto fixed = stealing;
  fixed.schedule = core::ShardSchedule::kStatic;
  core::ShardedEvaluator<double> b(sys, fixed);

  std::vector<poly::EvalResult<double>> ra, rb;
  a.evaluate(points, ra);
  b.evaluate(points, rb);
  expect_bitwise(ra, rb, "static vs stealing");
}

TEST(ShardedParity, ThreeKernelBackendMatchesBaseline) {
  const auto sys = make_system(8, 6, 4, 3);
  const auto points = points_for<double>(9, 8, 1500);
  const auto want = baseline<double>(sys, points);

  core::ShardedEvaluator<double, core::BatchGpuEvaluator<double>>::Options opt;
  opt.shards = 2;
  opt.chunk_points = 4;
  core::ShardedEvaluator<double, core::BatchGpuEvaluator<double>> sharded(sys, opt);
  std::vector<poly::EvalResult<double>> got;
  sharded.evaluate(points, got);
  expect_bitwise(want, got, "three-kernel backend");
}

TEST(ShardedParity, BatchLargerThanAnyShardCapacity) {
  // No batch-capacity ceiling: 40 points stream through 2 shards of
  // capacity 4, and repeated calls stay bitwise-stable.
  const auto sys = make_system(6, 4, 3, 2);
  const auto points = points_for<double>(40, 6, 7000);
  const auto want = baseline<double>(sys, points);

  core::ShardedEvaluator<double>::Options opt;
  opt.shards = 2;
  opt.chunk_points = 4;
  core::ShardedEvaluator<double> sharded(sys, opt);
  std::vector<poly::EvalResult<double>> got;
  sharded.evaluate(points, got);
  expect_bitwise(want, got, "streaming batch, call 1");
  sharded.evaluate(points, got);
  expect_bitwise(want, got, "streaming batch, call 2");
}

TEST(ShardedEvaluator, MergedLogCoversEveryChunk) {
  const auto sys = make_system(8, 6, 4, 3);
  const auto points = points_for<double>(10, 8, 333);

  core::ShardedEvaluator<double>::Options opt;
  opt.shards = 2;
  opt.chunk_points = 3;  // chunks: 3 + 3 + 3 + 1
  core::ShardedEvaluator<double> sharded(sys, opt);
  std::vector<poly::EvalResult<double>> results;
  sharded.evaluate(points, results);

  const auto& log = sharded.last_log();
  EXPECT_EQ(log.kernels.size(), 4u);  // one fused launch per chunk
  std::uint64_t blocks = 0;
  for (const auto& k : log.kernels) {
    EXPECT_EQ(k.kernel, "fused_eval");
    blocks += k.blocks;
  }
  EXPECT_EQ(blocks, 10u);  // one block per point, every point covered once
  EXPECT_EQ(log.transfers.transfers_to_device, 4u);
  EXPECT_EQ(log.transfers.transfers_from_device, 4u);
  EXPECT_EQ(log.transfers.bytes_to_device,
            10u * 8u * sizeof(cplx::Complex<double>));
}

TEST(ShardedEvaluator, EvaluateRangeValidatesBounds) {
  // The shard-facing range API rejects out-of-range windows, including
  // first values large enough to wrap first + count.
  const auto sys = make_system(6, 4, 3, 2);
  simt::Device device;
  core::FusedGpuEvaluator<double> fused(device, sys, 2);
  auto points = points_for<double>(2, 6, 10);
  std::vector<poly::EvalResult<double>> results(2);
  const std::span<poly::EvalResult<double>> out(results);
  EXPECT_THROW(fused.evaluate_range(points, std::numeric_limits<std::size_t>::max(),
                                    2, out),
               std::invalid_argument);
  EXPECT_THROW(fused.evaluate_range(points, 1, 2, out), std::invalid_argument);
  EXPECT_NO_THROW(fused.evaluate_range(points, 1, 1, out));
}

TEST(ShardedEvaluator, ValidatesArguments) {
  const auto sys = make_system(6, 4, 3, 2);
  {
    core::ShardedEvaluator<double>::Options opt;
    opt.shards = 0;
    EXPECT_THROW(core::ShardedEvaluator<double>(sys, opt), std::invalid_argument);
  }
  {
    core::ShardedEvaluator<double>::Options opt;
    opt.chunk_points = 0;
    EXPECT_THROW(core::ShardedEvaluator<double>(sys, opt), std::invalid_argument);
  }

  core::ShardedEvaluator<double> sharded(sys);
  std::vector<poly::EvalResult<double>> results;
  std::vector<std::vector<cplx::Complex<double>>> none;
  EXPECT_THROW(sharded.evaluate(none, results), std::invalid_argument);
  std::vector<std::vector<cplx::Complex<double>>> wrong_dim = {
      std::vector<cplx::Complex<double>>(5)};
  EXPECT_THROW(sharded.evaluate(wrong_dim, results), std::invalid_argument);
}

}  // namespace
