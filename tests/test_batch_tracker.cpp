// Lockstep batched tracking: per-path results must be BITWISE identical
// to the scalar PathTracker over the same evaluators -- across
// precisions (double/dd/qd), shard counts 1/2/4, both device backends,
// and through mid-run retirement (paths failing and finishing at
// different rounds while the survivors' batches compact around them).

#include <gtest/gtest.h>

#include <initializer_list>
#include <string>

#include "homotopy/sharded_solver.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;
using Cd = cplx::Complex<double>;

poly::PolynomialSystem uniform_target(unsigned dim = 3, std::uint64_t seed = 99) {
  poly::SystemSpec spec;
  spec.dimension = dim;
  spec.monomials_per_polynomial = 3;
  spec.variables_per_monomial = 2;
  spec.max_exponent = 2;
  spec.seed = seed;
  return poly::make_random_system(spec);
}

homotopy::ShardedSolveOptions base_options(unsigned shards,
                                           homotopy::ShardTrackMode mode) {
  homotopy::ShardedSolveOptions opt;
  opt.shards = shards;
  opt.workers_per_shard = 1;
  opt.chunk_paths = 1;
  opt.max_paths = 6;
  opt.track.max_steps = 4000;
  opt.mode = mode;
  return opt;
}

template <prec::RealScalar S>
void expect_paths_bitwise(const homotopy::SolveSummary<S>& want,
                          const homotopy::SolveSummary<S>& got, const char* label) {
  ASSERT_EQ(want.paths.size(), got.paths.size()) << label;
  EXPECT_EQ(want.successes, got.successes) << label;
  for (std::size_t p = 0; p < want.paths.size(); ++p) {
    const auto& a = want.paths[p];
    const auto& b = got.paths[p];
    EXPECT_EQ(a.success, b.success) << label << ", path " << p;
    EXPECT_EQ(a.steps, b.steps) << label << ", path " << p;
    EXPECT_EQ(a.rejections, b.rejections) << label << ", path " << p;
    EXPECT_EQ(a.final_residual, b.final_residual) << label << ", path " << p;
    EXPECT_EQ(a.t_reached, b.t_reached) << label << ", path " << p;
    ASSERT_EQ(a.solution.size(), b.solution.size()) << label << ", path " << p;
    for (std::size_t i = 0; i < a.solution.size(); ++i)
      EXPECT_EQ(cplx::max_abs_diff(a.solution[i], b.solution[i]), 0.0)
          << label << ", path " << p << ", coordinate " << i;
  }
}

template <prec::RealScalar S>
void run_mode_parity(std::initializer_list<unsigned> shard_counts) {
  const auto sys = uniform_target();
  const auto want = homotopy::solve_total_degree_sharded<S>(
      sys, base_options(1, homotopy::ShardTrackMode::kPerPath));
  ASSERT_EQ(want.attempted, 6u);
  EXPECT_GE(want.successes, 1u);

  for (const unsigned shards : shard_counts) {
    const auto got = homotopy::solve_total_degree_sharded<S>(
        sys, base_options(shards, homotopy::ShardTrackMode::kLockstep));
    expect_paths_bitwise(want, got,
                         (std::string("lockstep, ") + std::to_string(shards) +
                          " shard(s)")
                             .c_str());
  }
}

TEST(BatchTracker, LockstepMatchesPerPathAcrossShardCounts) {
  run_mode_parity<double>({1u, 2u, 4u});
}

TEST(BatchTracker, LockstepMatchesPerPathDoubleDouble) {
  run_mode_parity<prec::DoubleDouble>({1u, 2u});
}

TEST(BatchTracker, LockstepMatchesPerPathQuadDouble) {
  run_mode_parity<prec::QuadDouble>({1u, 2u});
}

TEST(BatchTracker, PipelinedBackendBitwiseIdentical) {
  // The pipelined evaluator micro-chunks the lockstep batches through
  // the two-stream schedule; results must not move a bit.
  const auto sys = uniform_target();
  auto opt = base_options(2, homotopy::ShardTrackMode::kLockstep);
  const auto fused = homotopy::solve_total_degree_sharded<double>(sys, opt);
  opt.backend = homotopy::ShardEvalBackend::kPipelined;
  const auto piped = homotopy::solve_total_degree_sharded<double>(sys, opt);
  expect_paths_bitwise(fused, piped, "pipelined backend");
}

TEST(BatchTracker, SmallLockstepBatchChunksLiveSet) {
  // lockstep_batch smaller than the live set forces every round to walk
  // multiple device batches; chunking must not move a bit either.
  const auto sys = uniform_target();
  const auto want = homotopy::solve_total_degree_sharded<double>(
      sys, base_options(1, homotopy::ShardTrackMode::kPerPath));
  auto opt = base_options(1, homotopy::ShardTrackMode::kLockstep);
  opt.lockstep_batch = 2;  // 6 paths -> 3 chunks per stage
  const auto got = homotopy::solve_total_degree_sharded<double>(sys, opt);
  expect_paths_bitwise(want, got, "lockstep_batch 2");
}

TEST(BatchTracker, MidRunRetirementCompactsAroundSurvivors) {
  // A batch mixing healthy start roots with garbage points: the garbage
  // paths reject until their steps underflow and retire mid-run, the
  // healthy paths keep tracking in the compacted batch, and every
  // result still matches the scalar tracker bitwise.
  const auto sys = uniform_target();
  const homotopy::TotalDegreeStart start(sys);
  const auto gamma = homotopy::random_gamma(42);

  std::vector<std::vector<Cd>> roots;
  for (const std::uint64_t p : {0ull, 1ull, 2ull, 3ull}) {
    const auto rd = start.start_root(p);
    std::vector<Cd> r;
    for (const auto& z : rd) r.push_back(z);
    roots.push_back(std::move(r));
  }
  // Garbage roots: far from any start root, so the first correctors
  // fail and the step halves to extinction.
  roots.insert(roots.begin() + 1,
               std::vector<Cd>(sys.dimension(), Cd(100.0, 100.0)));
  roots.push_back(std::vector<Cd>(sys.dimension(), Cd(-250.0, 75.0)));

  homotopy::TrackOptions topt;
  topt.max_steps = 4000;

  // Scalar baseline, path by path, over the same evaluator types.
  simt::Device device;
  core::FusedGpuEvaluator<double> f(device, sys, 1);
  ad::CpuEvaluator<double> g(start.system());
  homotopy::Homotopy<double, core::FusedGpuEvaluator<double>, ad::CpuEvaluator<double>>
      h(f, g, gamma);
  homotopy::PathTracker<double, core::FusedGpuEvaluator<double>,
                        ad::CpuEvaluator<double>>
      scalar(h, topt);

  // Lockstep batch over one shared device.
  simt::Device batch_device;
  core::FusedGpuEvaluator<double> fb(batch_device, sys, 4);
  ad::CpuEvaluator<double> gb(start.system());
  homotopy::BatchPathTracker<double, core::FusedGpuEvaluator<double>> tracker(
      batch_device, fb, gb, gamma, topt, roots.size());

  tracker.start(roots, 0, roots.size());
  ASSERT_EQ(tracker.live_paths(), roots.size());
  // The garbage paths must retire while others are still live: some
  // round shrinks the active set to a non-empty proper subset.
  bool shrank_mid_run = false;
  std::size_t live = tracker.live_paths();
  for (std::size_t now = tracker.round(); now > 0; now = tracker.round()) {
    if (now < live) shrank_mid_run = true;
    live = now;
  }
  EXPECT_TRUE(shrank_mid_run);
  EXPECT_GT(tracker.rounds(), 1u);

  unsigned successes = 0, failures = 0;
  for (std::size_t p = 0; p < roots.size(); ++p) {
    const auto want = scalar.track(std::span<const Cd>(roots[p]));
    const auto got = tracker.result(p);
    EXPECT_EQ(want.success, got.success) << "path " << p;
    EXPECT_EQ(want.steps, got.steps) << "path " << p;
    EXPECT_EQ(want.rejections, got.rejections) << "path " << p;
    EXPECT_EQ(want.final_residual, got.final_residual) << "path " << p;
    EXPECT_EQ(want.t_reached, got.t_reached) << "path " << p;
    ASSERT_EQ(want.solution.size(), got.solution.size());
    for (std::size_t i = 0; i < want.solution.size(); ++i)
      EXPECT_EQ(cplx::max_abs_diff(want.solution[i], got.solution[i]), 0.0)
          << "path " << p << ", coordinate " << i;
    (got.success ? successes : failures)++;
  }
  // The mix really exercised both retirement kinds.
  EXPECT_GE(successes, 1u);
  EXPECT_GE(failures, 2u);
}

TEST(BatchTracker, RestartReusesWarmState) {
  // start() on a warm tracker must reproduce the first run exactly
  // (state fully reset, buffers reused).
  const auto sys = uniform_target();
  const homotopy::TotalDegreeStart start(sys);
  const auto gamma = homotopy::random_gamma(7);

  std::vector<std::vector<Cd>> roots;
  for (std::uint64_t p = 0; p < 3; ++p) {
    const auto rd = start.start_root(p);
    std::vector<Cd> r;
    for (const auto& z : rd) r.push_back(z);
    roots.push_back(std::move(r));
  }

  simt::Device device;
  core::FusedGpuEvaluator<double> f(device, sys, 3);
  ad::CpuEvaluator<double> g(start.system());
  homotopy::TrackOptions topt;
  topt.max_steps = 4000;
  homotopy::BatchPathTracker<double, core::FusedGpuEvaluator<double>> tracker(
      device, f, g, gamma, topt, roots.size());

  tracker.start(roots, 0, roots.size());
  tracker.run();
  std::vector<homotopy::TrackResult<double>> first;
  for (std::size_t p = 0; p < roots.size(); ++p) first.push_back(tracker.result(p));

  tracker.start(roots, 0, roots.size());
  tracker.run();
  for (std::size_t p = 0; p < roots.size(); ++p) {
    const auto again = tracker.result(p);
    EXPECT_EQ(first[p].steps, again.steps) << "path " << p;
    EXPECT_EQ(first[p].final_residual, again.final_residual) << "path " << p;
    for (std::size_t i = 0; i < again.solution.size(); ++i)
      EXPECT_EQ(cplx::max_abs_diff(first[p].solution[i], again.solution[i]), 0.0)
          << "path " << p << ", coordinate " << i;
  }
}

}  // namespace
