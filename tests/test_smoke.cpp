// End-to-end smoke test: the GPU pipeline agrees with the naive oracle
// and the CPU reference on a small random uniform system.

#include <gtest/gtest.h>

#include "ad/cpu_evaluator.hpp"
#include "core/gpu_evaluator.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;

TEST(Smoke, GpuMatchesNaiveAndCpu) {
  poly::SystemSpec spec;
  spec.dimension = 8;
  spec.monomials_per_polynomial = 6;
  spec.variables_per_monomial = 4;
  spec.max_exponent = 3;
  spec.seed = 42;
  const auto system = poly::make_random_system(spec);
  ASSERT_TRUE(system.uniform_structure().has_value());

  const auto x = poly::make_random_point<double>(spec.dimension, 7);

  poly::EvalResult<double> naive(spec.dimension);
  system.evaluate_naive<double>(x, naive.values, naive.jacobian);

  ad::CpuEvaluator<double> cpu(system);
  const auto cpu_result = cpu.evaluate(std::span<const cplx::Complex<double>>(x));

  simt::Device device;
  core::GpuEvaluator<double> gpu(device, system);
  const auto gpu_result = gpu.evaluate(std::span<const cplx::Complex<double>>(x));

  EXPECT_LT(poly::max_abs_diff(naive, cpu_result), 1e-10);
  EXPECT_LT(poly::max_abs_diff(naive, gpu_result), 1e-10);
  EXPECT_EQ(gpu.last_log().kernels.size(), 3u);
}

}  // namespace
