// Complex arithmetic over all three scalar types: field identities,
// norms, Smith division robustness, and the multiprecision ladder.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "cplx/complex.hpp"

namespace {

using namespace polyeval;
using cplx::Complex;
using prec::DoubleDouble;
using prec::QuadDouble;
using prec::ScalarTraits;

template <class T>
class ComplexTypedTest : public ::testing::Test {};

using ScalarTypes = ::testing::Types<double, DoubleDouble, QuadDouble>;
TYPED_TEST_SUITE(ComplexTypedTest, ScalarTypes);

template <class T>
double tolerance() {
  return 64.0 * ScalarTraits<T>::epsilon;
}

TYPED_TEST(ComplexTypedTest, MultiplicationDefinition) {
  using C = Complex<TypeParam>;
  // (a+bi)(c+di) = (ac-bd) + (ad+bc)i, exact on small integers.
  const C z = C(TypeParam(2.0), TypeParam(3.0)) * C(TypeParam(5.0), TypeParam(-1.0));
  EXPECT_EQ(ScalarTraits<TypeParam>::to_double(z.re()), 13.0);
  EXPECT_EQ(ScalarTraits<TypeParam>::to_double(z.im()), 13.0);
}

TYPED_TEST(ComplexTypedTest, IUnitSquaresToMinusOne) {
  using C = Complex<TypeParam>;
  const C i(TypeParam(0.0), TypeParam(1.0));
  const C sq = i * i;
  EXPECT_EQ(ScalarTraits<TypeParam>::to_double(sq.re()), -1.0);
  EXPECT_EQ(ScalarTraits<TypeParam>::to_double(sq.im()), 0.0);
}

TYPED_TEST(ComplexTypedTest, DivisionRoundTrip) {
  using C = Complex<TypeParam>;
  cplx::UniformComplex<TypeParam> gen(31);
  for (int i = 0; i < 500; ++i) {
    const C a = gen();
    C b = gen();
    if (ScalarTraits<TypeParam>::to_double(cplx::norm_sqr(b)) < 1e-3)
      b += C(TypeParam(1.0), TypeParam(0.0));
    const C q = a / b;
    EXPECT_LT(cplx::max_abs_diff(q * b, a), tolerance<TypeParam>());
  }
}

TYPED_TEST(ComplexTypedTest, SmithDivisionHandlesDominantImaginary) {
  using C = Complex<TypeParam>;
  // denominator with |im| >> |re| exercises the second Smith branch
  const C a(TypeParam(1.0), TypeParam(2.0));
  const C b(TypeParam(1e-8), TypeParam(1e8));
  const C q = a / b;
  EXPECT_LT(cplx::max_abs_diff(q * b, a), 1e-12);
}

TYPED_TEST(ComplexTypedTest, ConjugateProperties) {
  using C = Complex<TypeParam>;
  cplx::UniformComplex<TypeParam> gen(32);
  for (int i = 0; i < 200; ++i) {
    const C z = gen();
    const C zz = z * cplx::conj(z);
    // z * conj(z) is real and equals |z|^2
    EXPECT_LT(ScalarTraits<TypeParam>::to_double(ScalarTraits<TypeParam>::abs(zz.im())),
              tolerance<TypeParam>());
    EXPECT_LT(ScalarTraits<TypeParam>::to_double(
                  ScalarTraits<TypeParam>::abs(zz.re() - cplx::norm_sqr(z))),
              tolerance<TypeParam>());
  }
}

TYPED_TEST(ComplexTypedTest, AbsOfUnitVectors) {
  using C = Complex<TypeParam>;
  const C z(TypeParam(3.0), TypeParam(4.0));
  EXPECT_NEAR(ScalarTraits<TypeParam>::to_double(cplx::abs(z)), 5.0, 1e-14);
}

TYPED_TEST(ComplexTypedTest, Norm1VsNormSqr) {
  using C = Complex<TypeParam>;
  const C z(TypeParam(-3.0), TypeParam(4.0));
  EXPECT_EQ(ScalarTraits<TypeParam>::to_double(cplx::norm1(z)), 7.0);
  EXPECT_EQ(ScalarTraits<TypeParam>::to_double(cplx::norm_sqr(z)), 25.0);
}

TYPED_TEST(ComplexTypedTest, DistributivityWithinPrecision) {
  using C = Complex<TypeParam>;
  cplx::UniformComplex<TypeParam> gen(33);
  for (int i = 0; i < 200; ++i) {
    const C a = gen(), b = gen(), c = gen();
    EXPECT_LT(cplx::max_abs_diff(a * (b + c), a * b + a * c), tolerance<TypeParam>());
  }
}

TYPED_TEST(ComplexTypedTest, WidenNarrowRoundTrip) {
  using C = Complex<TypeParam>;
  const Complex<double> zd(0.123456789, -0.987654321);
  const C z = C::from_double(zd);
  EXPECT_EQ(z.to_double(), zd);
}

TEST(Complex, DoubleDoubleResolvesTinyImaginary) {
  // double-double complex separates (1, 2^-80) from (1, 0); double cannot
  // even represent the perturbation after a multiply chain.
  using Cdd = Complex<DoubleDouble>;
  Cdd z(DoubleDouble(1.0), DoubleDouble(0x1p-80));
  Cdd w = z * z;  // im = 2 * 2^-80
  EXPECT_EQ(w.im().to_double(), 0x1p-79);
}

TEST(Complex, StreamOutput) {
  std::ostringstream os;
  os << Complex<double>(1.5, -2.5);
  EXPECT_EQ(os.str(), "(1.5 - 2.5*i)");
  std::ostringstream os2;
  os2 << Complex<double>(1.5, 2.5);
  EXPECT_EQ(os2.str(), "(1.5 + 2.5*i)");
}

TEST(Complex, ScalarMultiply) {
  const Complex<double> z(2.0, -3.0);
  EXPECT_EQ(z * 2.0, Complex<double>(4.0, -6.0));
  EXPECT_EQ(2.0 * z, Complex<double>(4.0, -6.0));
}

}  // namespace
