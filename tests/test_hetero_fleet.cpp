// Heterogeneous-fleet scheduling: per-device-spec registry
// construction, throughput weights ordered by clock x cores, the
// weighted_split primitive, bitwise parity of sharded evaluation across
// kWorkStealing / kStatic / kWeightedStatic on a mixed fleet (double,
// double-double, quad-double), weighted placement actually shifting
// work onto the fast device, and TuneCache sharing: a mixed registry
// probes once per DISTINCT DeviceSpec instead of aliasing shard 0's
// geometry onto everyone.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/gpu_evaluator.hpp"
#include "core/sharded_evaluator.hpp"
#include "core/weighted_schedule.hpp"
#include "poly/random_system.hpp"
#include "service/system_cache.hpp"
#include "tune/autotuner.hpp"

namespace {

using namespace polyeval;

poly::PolynomialSystem make_system(unsigned n, unsigned m, unsigned k, unsigned d,
                                   std::uint64_t seed = 77) {
  poly::SystemSpec spec;
  spec.dimension = n;
  spec.monomials_per_polynomial = m;
  spec.variables_per_monomial = k;
  spec.max_exponent = d;
  spec.seed = seed;
  return poly::make_random_system(spec);
}

template <prec::RealScalar S>
std::vector<std::vector<cplx::Complex<S>>> points_for(unsigned batch, unsigned dim,
                                                      std::uint64_t seed) {
  std::vector<std::vector<cplx::Complex<S>>> points;
  for (unsigned p = 0; p < batch; ++p)
    points.push_back(poly::make_random_point<S>(dim, seed + p));
  return points;
}

template <prec::RealScalar S>
void expect_bitwise(const std::vector<poly::EvalResult<S>>& want,
                    const std::vector<poly::EvalResult<S>>& got, const char* label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t p = 0; p < want.size(); ++p)
    EXPECT_EQ(poly::max_abs_diff(want[p], got[p]), 0.0) << label << ", point " << p;
}

/// The standard 2x-asymmetric two-device fleet: a full-clock card and a
/// half-clock derate of the same geometry.
std::vector<simt::DeviceSpec> asym_fleet() {
  const auto fast = simt::DeviceSpec::tesla_c2050();
  return {fast, fast.derated(0.5, "half-clock C2050 (simulated)")};
}

// ----- DeviceRegistry construction and weights -----------------------

TEST(DeviceRegistry, PerDeviceSpecsRoundTrip) {
  auto specs = asym_fleet();
  simt::DeviceRegistry registry(specs, 1);
  ASSERT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.spec(0).name, specs[0].name);
  EXPECT_EQ(registry.spec(1).name, specs[1].name);
  EXPECT_EQ(registry.spec(0), specs[0]);
  EXPECT_EQ(registry.spec(1), specs[1]);
  EXPECT_DOUBLE_EQ(registry.spec(1).core_clock_mhz,
                   specs[0].core_clock_mhz * 0.5);
  EXPECT_TRUE(registry.heterogeneous());

  simt::DeviceRegistry uniform(2, specs[0], 1);
  EXPECT_FALSE(uniform.heterogeneous());
  EXPECT_DOUBLE_EQ(uniform.throughput_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(uniform.throughput_weight(1), 1.0);
}

TEST(DeviceRegistry, ThroughputWeightOrderingMatchesClockTimesCores) {
  // Three specs whose clock x cores products are strictly ordered, and
  // not by clock alone: the middle one has the highest clock but the
  // fewest SMs.
  auto big = simt::DeviceSpec::tesla_c2050();     // 14 SM x 32 @ 1147
  auto small = big;
  small.multiprocessors = 4;                      // 4 SM x 32 @ 1400
  small.core_clock_mhz = 1400.0;
  small.name = "small-hot";
  auto mid = big.derated(0.75, "mid");            // 14 SM x 32 @ 860.25

  simt::DeviceRegistry registry({big, mid, small}, 1);
  EXPECT_DOUBLE_EQ(registry.throughput_weight(0), 1.0);  // fastest
  EXPECT_GT(registry.throughput_weight(1), registry.throughput_weight(2));
  // Weights are the normalized clock x cores products exactly.
  EXPECT_DOUBLE_EQ(registry.throughput_weight(1),
                   mid.modeled_throughput() / big.modeled_throughput());
  EXPECT_DOUBLE_EQ(registry.throughput_weight(2),
                   small.modeled_throughput() / big.modeled_throughput());
}

TEST(DeviceRegistry, RejectsEmptyFleet) {
  EXPECT_THROW(simt::DeviceRegistry(std::vector<simt::DeviceSpec>{}, 1),
               std::invalid_argument);
}

// ----- weighted_split -------------------------------------------------

TEST(WeightedSplit, ProportionalAndExhaustive) {
  const double w[] = {1.0, 0.5};
  const auto quota = core::weighted_split(12, w);
  ASSERT_EQ(quota.size(), 2u);
  EXPECT_EQ(quota[0] + quota[1], 12u);
  EXPECT_EQ(quota[0], 8u);  // 2:1 split
  EXPECT_EQ(quota[1], 4u);
}

TEST(WeightedSplit, RemainderMinimizesModeledFinishTime) {
  const double w[] = {1.0, 1.0, 1.0};
  const auto quota = core::weighted_split(10, w);
  EXPECT_EQ(quota[0] + quota[1] + quota[2], 10u);
  // floor(10/3) each, the leftover to the earliest-finishing (tie ->
  // lowest-index) shard.
  EXPECT_EQ(quota[0], 4u);
  EXPECT_EQ(quota[1], 3u);
  EXPECT_EQ(quota[2], 3u);

  // Two leftovers spread round-robin instead of piling onto shard 0.
  const auto q2 = core::weighted_split(11, w);
  EXPECT_EQ(q2[0], 4u);
  EXPECT_EQ(q2[1], 4u);
  EXPECT_EQ(q2[2], 3u);

  // Asymmetric fleet where the floored shares already favor the fast
  // shard: the leftover belongs on the SLOW shard, whose queue finishes
  // sooner (6/0.585 = 10.3 < 11/1.0).  Handing it to the heaviest
  // shard instead would stretch the modeled makespan by ~9%.
  const double asym[] = {1.0, 0.585};
  const auto q3 = core::weighted_split(16, asym);
  EXPECT_EQ(q3[0], 10u);
  EXPECT_EQ(q3[1], 6u);
}

TEST(WeightedSplit, RespectsCaps) {
  const double w[] = {1.0, 0.25};
  const std::size_t caps[] = {3, 100};
  const auto quota = core::weighted_split(20, w, caps);
  EXPECT_EQ(quota[0], 3u);   // capped
  EXPECT_EQ(quota[1], 17u);  // overflow lands on the only shard with room
}

TEST(WeightedSplit, UnderCappedTotalLeavesRemainder) {
  const double w[] = {1.0, 1.0};
  const std::size_t caps[] = {2, 2};
  const auto quota = core::weighted_split(10, w, caps);
  EXPECT_EQ(quota[0], 2u);
  EXPECT_EQ(quota[1], 2u);  // 6 items stay with the caller
}

// ----- sharded parity on a mixed fleet --------------------------------

/// All three schedules on a 2x-asymmetric fleet must reproduce the
/// single-device pipeline bitwise: placement moves timing, never bits.
template <prec::RealScalar S>
void run_mixed_fleet_parity(unsigned n, unsigned m, unsigned k, unsigned d,
                            unsigned batch) {
  const auto sys = make_system(n, m, k, d);
  const auto points = points_for<S>(batch, n, 4200);

  simt::Device device;
  core::GpuEvaluator<S> gpu(device, sys);
  std::vector<poly::EvalResult<S>> want;
  for (const auto& x : points)
    want.push_back(gpu.evaluate(std::span<const cplx::Complex<S>>(x)));

  for (const auto schedule :
       {core::ShardSchedule::kWorkStealing, core::ShardSchedule::kStatic,
        core::ShardSchedule::kWeightedStatic}) {
    typename core::ShardedEvaluator<S>::Options opt;
    opt.specs = asym_fleet();
    opt.chunk_points = 3;  // partial tail chunk
    opt.schedule = schedule;
    core::ShardedEvaluator<S> sharded(sys, opt);
    ASSERT_EQ(sharded.shard_count(), 2u);
    EXPECT_TRUE(sharded.registry().heterogeneous());
    std::vector<poly::EvalResult<S>> got;
    sharded.evaluate(points, got);
    expect_bitwise(want, got,
                   (std::string("schedule=") +
                    std::to_string(static_cast<int>(schedule)))
                       .c_str());
  }
}

TEST(MixedFleetParity, Double) { run_mixed_fleet_parity<double>(8, 6, 4, 3, 11); }
TEST(MixedFleetParity, DoubleDouble) {
  run_mixed_fleet_parity<prec::DoubleDouble>(6, 4, 3, 2, 10);
}
TEST(MixedFleetParity, QuadDouble) {
  run_mixed_fleet_parity<prec::QuadDouble>(5, 3, 2, 2, 10);
}

TEST(MixedFleet, WeightedStaticShiftsChunksToTheFastDevice) {
  const auto sys = make_system(8, 6, 4, 3);
  const auto points = points_for<double>(24, 8, 55);

  core::ShardedEvaluator<double>::Options opt;
  opt.specs = asym_fleet();
  opt.chunk_points = 2;  // 12 chunks over a 2:1 fleet -> 8 vs 4
  opt.schedule = core::ShardSchedule::kWeightedStatic;
  // Heuristic tuning pins the MODELED clock x cores weights {1, 0.5}:
  // this tiny workload is launch-overhead-bound, so measured weights
  // would (correctly) land near parity and split 6/6.  The subject
  // here is the schedule placing by weight, not the weight derivation
  // -- AutotunerProbesOncePerDistinctSpec covers the measured path.
  opt.backend.tuning = tune::TuningMode::kHeuristic;
  core::ShardedEvaluator<double> sharded(sys, opt);

  ASSERT_EQ(sharded.weights().size(), 2u);
  EXPECT_DOUBLE_EQ(sharded.weights()[0], 1.0);
  EXPECT_DOUBLE_EQ(sharded.weights()[1], 0.5);

  std::vector<poly::EvalResult<double>> got;
  sharded.evaluate(points, got);
  const auto fast_launches =
      sharded.registry().device(0).log().kernels.size();
  const auto slow_launches =
      sharded.registry().device(1).log().kernels.size();
  EXPECT_EQ(fast_launches + slow_launches, 12u);
  EXPECT_GT(fast_launches, slow_launches);
}

// ----- TuneCache sharing across a mixed fleet -------------------------

TEST(MixedFleet, AutotunerProbesOncePerDistinctSpec) {
  // Three shards, two DISTINCT specs: measured tuning must probe twice
  // (one miss per distinct device geometry) and serve the repeated spec
  // from the cache -- NOT probe once and alias shard 0's winner, and
  // NOT probe three times.
  auto& tuner = tune::Autotuner::global();
  tuner.cache().clear();
  const auto sys = make_system(8, 6, 4, 3, 99);
  auto fleet = asym_fleet();
  fleet.push_back(fleet[0]);  // {A, B, A}

  const std::size_t misses0 = tuner.misses();
  const std::size_t hits0 = tuner.hits();

  core::ShardedEvaluator<double>::Options opt;
  opt.specs = fleet;
  opt.chunk_points = 4;
  opt.backend.tuning = tune::TuningMode::kMeasured;
  core::ShardedEvaluator<double> sharded(sys, opt);

  EXPECT_EQ(tuner.misses() - misses0, 2u);  // one probe per distinct spec
  EXPECT_EQ(tuner.hits() - hits0, 1u);      // the repeated spec reuses it

  // A second identical fleet is all hits.
  core::ShardedEvaluator<double> again(sys, opt);
  EXPECT_EQ(tuner.misses() - misses0, 2u);
  EXPECT_EQ(tuner.hits() - hits0, 4u);

  // With every spec probed, the placement weights are the measured
  // refinement: still fastest-first, repeated specs weigh equally.
  const auto& w = sharded.weights();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[2], 1.0);
  EXPECT_LT(w[1], 1.0);
}

TEST(MixedFleet, SystemCacheResolvesGeometryPerSpec) {
  // The service-side fix for the same bug: an entry covers every spec
  // the lookup was made with, each probed on its OWN scratch device.
  auto& tuner = tune::Autotuner::global();
  tuner.cache().clear();
  service::SystemCache<double> cache;
  const auto sys = make_system(8, 6, 4, 3, 123);
  auto fleet = asym_fleet();
  fleet.push_back(fleet[0]);  // {A, B, A}

  const std::size_t misses0 = tuner.misses();
  const auto entry =
      cache.lookup(sys, 16, tune::TuningMode::kMeasured,
                   std::span<const simt::DeviceSpec>(fleet));
  ASSERT_EQ(entry->geometries.size(), 2u);  // distinct specs only
  EXPECT_NE(entry->geometry_for(fleet[0]), nullptr);
  EXPECT_NE(entry->geometry_for(fleet[1]), nullptr);
  EXPECT_EQ(entry->geometry_for(fleet[0]),
            entry->geometry_for(fleet[2]));  // same spec, same geometry
  EXPECT_EQ(tuner.misses() - misses0, 2u);

  // A content hit with the same fleet re-resolves nothing.
  const std::size_t misses1 = tuner.misses();
  const auto entry2 =
      cache.lookup(sys, 16, tune::TuningMode::kMeasured,
                   std::span<const simt::DeviceSpec>(fleet));
  EXPECT_EQ(entry.get(), entry2.get());
  EXPECT_EQ(tuner.misses(), misses1);
  EXPECT_EQ(cache.hits(), 1u);
}

}  // namespace
