// Constant-memory encodings: round trips, capacity arithmetic, and the
// paper's section-4 capacity story (1536 fits, 2048 does not; the
// future-work packing lifts the cap).

#include <gtest/gtest.h>

#include "core/encoding.hpp"
#include "simt/device_spec.hpp"

namespace {

using namespace polyeval;
using core::ExponentEncoding;

TEST(Encoding, CharIsIdentity) {
  const std::vector<unsigned char> exps = {0, 1, 9, 255};
  EXPECT_EQ(core::encode_exponents(ExponentEncoding::kChar, exps), exps);
}

TEST(Encoding, Packed4BitRoundTrips) {
  const std::vector<unsigned char> exps = {0, 1, 9, 15, 7, 3, 2};  // odd count
  const auto packed = core::encode_exponents(ExponentEncoding::kPacked4Bit, exps);
  EXPECT_EQ(packed.size(), 4u);
  for (std::size_t i = 0; i < exps.size(); ++i)
    EXPECT_EQ(core::decode_exponent(ExponentEncoding::kPacked4Bit, packed.data(), i),
              exps[i])
        << i;
}

TEST(Encoding, Packed4BitRejectsLargeExponents) {
  EXPECT_THROW(
      (void)core::encode_exponents(ExponentEncoding::kPacked4Bit, {16}),
      std::invalid_argument);
}

TEST(Encoding, CharDecodeMatches) {
  const std::vector<unsigned char> exps = {4, 200};
  EXPECT_EQ(core::decode_exponent(ExponentEncoding::kChar, exps.data(), 1), 200u);
}

TEST(Encoding, BytesRequired) {
  EXPECT_EQ(core::constant_bytes_required(ExponentEncoding::kChar, 1024, 16),
            2u * 1024 * 16);
  EXPECT_EQ(core::constant_bytes_required(ExponentEncoding::kPacked4Bit, 1024, 16),
            1024 * 16 + 1024 * 8);
}

TEST(Encoding, PaperCapacityStory) {
  // The usable budget on the simulated C2050: 64 KB minus the toolchain
  // reservation.
  const simt::DeviceSpec spec;
  const std::uint64_t budget = spec.constant_memory_bytes - spec.constant_reserved_bytes;

  // Table 2 workload (k = 16): 1536 monomials fit, 2048 do not
  // ("the capacity of the constant memory was not sufficient to hold the
  //  exponents and positions of all 2,048 monomials").
  EXPECT_LE(core::constant_bytes_required(ExponentEncoding::kChar, 1536, 16), budget);
  EXPECT_GT(core::constant_bytes_required(ExponentEncoding::kChar, 2048, 16), budget);

  // The compact encoding the paper plans ("a better compression strategy")
  // makes 2048 fit.
  EXPECT_LE(core::constant_bytes_required(ExponentEncoding::kPacked4Bit, 2048, 16),
            budget);
}

TEST(Encoding, MaxMonomialsForBudget) {
  const simt::DeviceSpec spec;
  const std::uint64_t budget = spec.constant_memory_bytes - spec.constant_reserved_bytes;
  const auto max_char =
      core::max_monomials_for_budget(ExponentEncoding::kChar, budget, 16);
  const auto max_packed =
      core::max_monomials_for_budget(ExponentEncoding::kPacked4Bit, budget, 16);
  EXPECT_GE(max_char, 1536u);
  EXPECT_LT(max_char, 2048u);
  EXPECT_GE(max_packed, 2048u);
  // consistency: the bound is tight
  EXPECT_LE(core::constant_bytes_required(ExponentEncoding::kChar, max_char, 16), budget);
  EXPECT_GT(core::constant_bytes_required(ExponentEncoding::kChar, max_char + 1, 16),
            budget);
}

TEST(Encoding, WorkingDimensionsOfSection31) {
  // "for dimension 30 we would have 900 monomials, with a need of
  //  900 x 2 x 15 <= 30,000 bytes; for dimension 40 we would have 1,600
  //  monomials, with a need of 1,600 x 2 x 20 = 64,000 bytes" -- i.e.
  //  the paper's working dimensions 30..40 fit the char encoding.
  const simt::DeviceSpec spec;
  const std::uint64_t budget = spec.constant_memory_bytes - spec.constant_reserved_bytes;
  EXPECT_LE(core::constant_bytes_required(ExponentEncoding::kChar, 900, 15), budget);
  EXPECT_LE(core::constant_bytes_required(ExponentEncoding::kChar, 1600, 20), budget);
  // dimension 48 with m = n, k = n/2 would not fit anymore
  EXPECT_GT(core::constant_bytes_required(ExponentEncoding::kChar, 48 * 48, 24), budget);
}

}  // namespace
