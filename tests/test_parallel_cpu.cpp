// The multicore host evaluator (the paper's PASCO-2010 predecessor):
// exact agreement with the sequential reference, determinism across
// worker counts, and all precisions.

#include <gtest/gtest.h>

#include "ad/parallel_cpu_evaluator.hpp"
#include "poly/families.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;
using prec::DoubleDouble;

template <class S>
void expect_matches_sequential(const poly::PolynomialSystem& sys, unsigned workers,
                               std::uint64_t seed) {
  using C = cplx::Complex<S>;
  const auto x = poly::make_random_point<S>(sys.dimension(), seed);

  ad::CpuEvaluator<S> sequential(sys);
  const auto want = sequential.evaluate(std::span<const C>(x));

  ad::ParallelCpuEvaluator<S> parallel(sys, workers);
  const auto got = parallel.evaluate(std::span<const C>(x));

  // identical per-polynomial accumulation order -> bit-identical results
  EXPECT_EQ(poly::max_abs_diff(want, got), 0.0);
}

TEST(ParallelCpu, MatchesSequentialUniform) {
  poly::SystemSpec spec;
  spec.dimension = 16;
  spec.monomials_per_polynomial = 10;
  spec.variables_per_monomial = 6;
  spec.max_exponent = 4;
  const auto sys = poly::make_random_system(spec);
  for (const unsigned workers : {1u, 2u, 4u, 7u})
    expect_matches_sequential<double>(sys, workers, 11);
}

TEST(ParallelCpu, MatchesSequentialIrregular) {
  expect_matches_sequential<double>(poly::cyclic(6), 3, 13);
  expect_matches_sequential<double>(poly::katsura(5), 3, 17);
  expect_matches_sequential<double>(poly::noon(5), 3, 19);
}

TEST(ParallelCpu, MatchesSequentialDoubleDouble) {
  poly::SystemSpec spec;
  spec.dimension = 8;
  spec.monomials_per_polynomial = 6;
  spec.variables_per_monomial = 4;
  spec.max_exponent = 3;
  const auto sys = poly::make_random_system(spec);
  expect_matches_sequential<DoubleDouble>(sys, 4, 23);
}

TEST(ParallelCpu, DeterministicAcrossRepeats) {
  poly::SystemSpec spec;
  spec.dimension = 12;
  spec.monomials_per_polynomial = 8;
  spec.variables_per_monomial = 5;
  spec.max_exponent = 3;
  const auto sys = poly::make_random_system(spec);
  const auto x = poly::make_random_point<double>(12, 29);

  ad::ParallelCpuEvaluator<double> eval(sys, 4);
  const auto first = eval.evaluate(std::span<const cplx::Complex<double>>(x));
  for (int i = 0; i < 10; ++i) {
    const auto again = eval.evaluate(std::span<const cplx::Complex<double>>(x));
    ASSERT_EQ(poly::max_abs_diff(first, again), 0.0) << "repeat " << i;
  }
}

TEST(ParallelCpu, ReportsWorkerCount) {
  poly::SystemSpec spec;
  spec.dimension = 4;
  spec.monomials_per_polynomial = 3;
  spec.variables_per_monomial = 2;
  spec.max_exponent = 2;
  const auto sys = poly::make_random_system(spec);
  ad::ParallelCpuEvaluator<double> eval(sys, 3);
  EXPECT_EQ(eval.workers(), 3u);
}

}  // namespace
