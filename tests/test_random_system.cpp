// The workload generator: specs are realized exactly, deterministically,
// and across the paper's parameter grid.

#include <gtest/gtest.h>

#include "poly/random_system.hpp"

namespace {

using namespace polyeval;
using poly::SystemSpec;

TEST(RandomSystem, RealizesSpecExactly) {
  SystemSpec spec;
  spec.dimension = 12;
  spec.monomials_per_polynomial = 7;
  spec.variables_per_monomial = 5;
  spec.max_exponent = 4;
  const auto sys = poly::make_random_system(spec);
  const auto s = sys.uniform_structure();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, spec.structure());
}

TEST(RandomSystem, DeterministicForSameSeed) {
  SystemSpec spec;
  spec.dimension = 6;
  spec.monomials_per_polynomial = 4;
  spec.variables_per_monomial = 3;
  spec.max_exponent = 2;
  spec.seed = 12345;
  const auto a = poly::make_random_system(spec);
  const auto b = poly::make_random_system(spec);
  for (unsigned p = 0; p < spec.dimension; ++p) {
    ASSERT_EQ(a.polynomial(p).monomials(), b.polynomial(p).monomials());
  }
}

TEST(RandomSystem, DifferentSeedsDiffer) {
  SystemSpec spec;
  spec.dimension = 6;
  spec.monomials_per_polynomial = 4;
  spec.variables_per_monomial = 3;
  spec.max_exponent = 2;
  spec.seed = 1;
  const auto a = poly::make_random_system(spec);
  spec.seed = 2;
  const auto b = poly::make_random_system(spec);
  bool any_diff = false;
  for (unsigned p = 0; p < spec.dimension && !any_diff; ++p)
    any_diff = !(a.polynomial(p).monomials() == b.polynomial(p).monomials());
  EXPECT_TRUE(any_diff);
}

TEST(RandomSystem, DistinctVariablesWithinMonomial) {
  SystemSpec spec;
  spec.dimension = 10;
  spec.monomials_per_polynomial = 20;
  spec.variables_per_monomial = 9;
  spec.max_exponent = 3;
  const auto sys = poly::make_random_system(spec);
  for (const auto& p : sys.polynomials()) {
    for (const auto& mono : p.monomials()) {
      const auto& f = mono.factors();
      for (std::size_t i = 1; i < f.size(); ++i) EXPECT_LT(f[i - 1].var, f[i].var);
      for (const auto& vp : f) {
        EXPECT_GE(vp.exp, 1u);
        EXPECT_LE(vp.exp, spec.max_exponent);
        EXPECT_LT(vp.var, spec.dimension);
      }
    }
  }
}

TEST(RandomSystem, UnitCoefficientsOnCircle) {
  SystemSpec spec;
  spec.dimension = 4;
  spec.monomials_per_polynomial = 5;
  spec.variables_per_monomial = 2;
  spec.max_exponent = 2;
  spec.unit_coefficients = true;
  const auto sys = poly::make_random_system(spec);
  for (const auto& p : sys.polynomials())
    for (const auto& mono : p.monomials())
      EXPECT_NEAR(cplx::norm_sqr(mono.coefficient()), 1.0, 1e-12);
}

TEST(RandomSystem, PaperWorkloadsRealizable) {
  // Table 1 and 2 shapes, including the largest (1536 monomials).
  for (const unsigned m : {22u, 32u, 48u}) {
    for (const auto& [k, d] : {std::pair{9u, 2u}, std::pair{16u, 10u}}) {
      SystemSpec spec;
      spec.dimension = 32;
      spec.monomials_per_polynomial = m;
      spec.variables_per_monomial = k;
      spec.max_exponent = d;
      const auto sys = poly::make_random_system(spec);
      const auto s = sys.uniform_structure();
      ASSERT_TRUE(s.has_value());
      EXPECT_EQ(s->total_monomials(), 32 * m);
      EXPECT_EQ(s->k, k);
      EXPECT_EQ(s->d, d);
    }
  }
}

TEST(RandomSystem, RejectsInvalidSpecs) {
  SystemSpec spec;
  spec.dimension = 4;
  spec.variables_per_monomial = 5;  // k > n
  EXPECT_THROW(poly::make_random_system(spec), std::invalid_argument);
  spec.variables_per_monomial = 0;
  EXPECT_THROW(poly::make_random_system(spec), std::invalid_argument);
}

TEST(RandomPoint, DeterministicAndNearUnitCircle) {
  const auto a = poly::make_random_point<double>(8, 5);
  const auto b = poly::make_random_point<double>(8, 5);
  ASSERT_EQ(a.size(), 8u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
    const double r2 = cplx::norm_sqr(a[i]);
    EXPECT_GT(r2, 0.7 * 0.7 - 1e-12);
    EXPECT_LT(r2, 1.3 * 1.3 + 1e-12);
  }
}

}  // namespace
