// Simulator memory spaces: allocation accounting, the 64 KB constant
// budget (with the toolchain reservation), alignment, and transfer
// tracking.

#include <gtest/gtest.h>

#include "simt/device.hpp"

namespace {

using namespace polyeval::simt;

TEST(GlobalMemory, AllocatesAndTracksUsage) {
  GlobalMemory mem(1 << 20);
  EXPECT_EQ(mem.used(), 0u);
  auto buf = mem.allocate<double>(100, "test");
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_GE(mem.used(), 800u);
  EXPECT_EQ(buf.name(), "test");
}

TEST(GlobalMemory, AddressesAre256Aligned) {
  GlobalMemory mem(1 << 20);
  auto a = mem.allocate<char>(3, "a");
  auto b = mem.allocate<char>(5, "b");
  EXPECT_EQ(a.device_address() % 256, 0u);
  EXPECT_EQ(b.device_address() % 256, 0u);
  EXPECT_NE(a.device_address(), b.device_address());
}

TEST(GlobalMemory, ThrowsWhenExhausted) {
  GlobalMemory mem(1024);
  (void)mem.allocate<double>(64, "fits");  // 512 bytes
  EXPECT_THROW((void)mem.allocate<double>(512, "too big"), OutOfMemory);
}

TEST(GlobalMemory, ResetReclaimsEverything) {
  GlobalMemory mem(1024);
  (void)mem.allocate<double>(64, "x");
  mem.reset();
  EXPECT_EQ(mem.used(), 0u);
  EXPECT_NO_THROW((void)mem.allocate<double>(64, "again"));
}

TEST(ConstantMemory, EnforcesBudgetExactly) {
  ConstantMemory cmem(100);
  (void)cmem.allocate<unsigned char>(60, "a");
  EXPECT_EQ(cmem.remaining(), 40u);
  EXPECT_THROW((void)cmem.allocate<unsigned char>(41, "b"), ConstantMemoryOverflow);
  EXPECT_NO_THROW((void)cmem.allocate<unsigned char>(40, "c"));
  EXPECT_EQ(cmem.remaining(), 0u);
}

TEST(ConstantMemory, OverflowMessageNamesTheBuffer) {
  ConstantMemory cmem(10);
  try {
    (void)cmem.allocate<unsigned char>(11, "Positions");
    FAIL() << "expected overflow";
  } catch (const ConstantMemoryOverflow& e) {
    EXPECT_NE(std::string(e.what()).find("Positions"), std::string::npos);
  }
}

TEST(Device, ConstantCapacityIsSpecMinusReserved) {
  Device device;  // Tesla C2050 defaults
  const auto& spec = device.spec();
  EXPECT_EQ(spec.constant_memory_bytes, 65536u);
  EXPECT_EQ(device.constant_bytes_remaining(),
            spec.constant_memory_bytes - spec.constant_reserved_bytes);
}

TEST(Device, TeslaC2050Defaults) {
  const auto spec = DeviceSpec::tesla_c2050();
  EXPECT_EQ(spec.multiprocessors, 14u);
  EXPECT_EQ(spec.cores_per_sm, 32u);
  EXPECT_EQ(spec.total_cores(), 448u);
  EXPECT_EQ(spec.warp_size, 32u);
  EXPECT_EQ(spec.shared_memory_per_block, 49152u);
  EXPECT_DOUBLE_EQ(spec.core_clock_mhz, 1147.0);
}

TEST(Device, UploadDownloadRoundTripAndAccounting) {
  Device device;
  auto buf = device.alloc_global<double>(8, "data");
  const std::vector<double> host = {1, 2, 3, 4, 5, 6, 7, 8};
  device.upload(buf, std::span<const double>(host));
  std::vector<double> back(8);
  device.download(buf, std::span<double>(back));
  EXPECT_EQ(host, back);
  EXPECT_EQ(device.log().transfers.bytes_to_device, 64u);
  EXPECT_EQ(device.log().transfers.bytes_from_device, 64u);
  EXPECT_EQ(device.log().transfers.transfers_to_device, 1u);
  EXPECT_EQ(device.log().transfers.transfers_from_device, 1u);
}

TEST(Device, FillIsNotPcieTraffic) {
  Device device;
  auto buf = device.alloc_global<int>(16, "zeros");
  device.fill(buf, 7);
  std::vector<int> back(16);
  device.download(buf, std::span<int>(back));
  for (const int v : back) EXPECT_EQ(v, 7);
  EXPECT_EQ(device.log().transfers.bytes_to_device, 0u);
}

TEST(Device, ConstantUploadRoundTrip) {
  Device device;
  auto buf = device.alloc_constant<unsigned char>(4, "enc");
  const std::vector<unsigned char> host = {9, 8, 7, 6};
  device.upload_constant(buf, std::span<const unsigned char>(host));
  EXPECT_EQ(buf.raw()[0], 9);
  EXPECT_EQ(buf.raw()[3], 6);
}

TEST(SharedSpace, BoundsAndAlignmentChecks) {
  SharedSpace shared(64);
  EXPECT_NO_THROW((void)shared.typed<double>(0, 8));
  EXPECT_THROW((void)shared.typed<double>(0, 9), LaunchError);
  EXPECT_THROW((void)shared.typed<double>(4, 1), LaunchError);  // misaligned
  EXPECT_NO_THROW((void)shared.typed<double>(56, 1));
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [&](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // pool still usable afterwards
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.parallel_for(0, [&](std::size_t) { FAIL(); }));
}

}  // namespace
