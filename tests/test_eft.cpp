// Error-free transforms: the identities s + err == a (op) b must hold
// EXACTLY, which we can verify in exact rational arithmetic for values
// where the double grid makes the checks representable.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "prec/eft.hpp"

namespace {

using namespace polyeval::prec;

TEST(Eft, TwoSumRecoversExactError) {
  double err = 0.0;
  const double s = two_sum(1.0, 0x1p-60, err);
  EXPECT_EQ(s, 1.0);        // 1 + tiny rounds to 1
  EXPECT_EQ(err, 0x1p-60);  // and the tiny part is the exact error
}

TEST(Eft, TwoSumIsExactForRepresentableSums) {
  double err = 0.0;
  const double s = two_sum(0.5, 0.25, err);
  EXPECT_EQ(s, 0.75);
  EXPECT_EQ(err, 0.0);
}

TEST(Eft, QuickTwoSumMatchesTwoSumWhenOrdered) {
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int i = 0; i < 1000; ++i) {
    const double a = dist(rng);
    const double b = dist(rng) * 0x1p-30;  // |b| << |a|
    double e1 = 0.0, e2 = 0.0;
    const double s1 = two_sum(a, b, e1);
    const double s2 = quick_two_sum(a, b, e2);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(e1, e2);
  }
}

TEST(Eft, TwoDiffMatchesTwoSumOfNegation) {
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> dist(-1e10, 1e10);
  for (int i = 0; i < 1000; ++i) {
    const double a = dist(rng), b = dist(rng);
    double e1 = 0.0, e2 = 0.0;
    const double d = two_diff(a, b, e1);
    const double s = two_sum(a, -b, e2);
    EXPECT_EQ(d, s);
    EXPECT_EQ(e1, e2);
  }
}

TEST(Eft, TwoProdCapturesRoundingError) {
  // (1 + 2^-30)^2 = 1 + 2^-29 + 2^-60: the last term is the error.
  const double a = 1.0 + 0x1p-30;
  double err = 0.0;
  const double p = two_prod(a, a, err);
  EXPECT_EQ(p, 1.0 + 0x1p-29);
  EXPECT_EQ(err, 0x1p-60);
}

TEST(Eft, TwoProdExactForSmallIntegers) {
  double err = 1.0;
  const double p = two_prod(3.0, 7.0, err);
  EXPECT_EQ(p, 21.0);
  EXPECT_EQ(err, 0.0);
}

TEST(Eft, TwoSqrMatchesTwoProd) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> dist(-1e5, 1e5);
  for (int i = 0; i < 1000; ++i) {
    const double a = dist(rng);
    double e1 = 0.0, e2 = 0.0;
    const double p1 = two_sqr(a, e1);
    const double p2 = two_prod(a, a, e2);
    EXPECT_EQ(p1, p2);
    EXPECT_EQ(e1, e2);
  }
}

// Property: reconstructing a*b from (p, err) in long double (64-bit
// significand) agrees with the long-double product for inputs whose
// product error fits.
TEST(Eft, TwoProdReconstructsInLongDouble) {
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int i = 0; i < 1000; ++i) {
    const double a = dist(rng), b = dist(rng);
    double err = 0.0;
    const double p = two_prod(a, b, err);
    const long double exact = static_cast<long double>(a) * static_cast<long double>(b);
    // p + err == a*b exactly in real arithmetic; in 80-bit arithmetic the
    // comparison is exact when the error term is representable.
    EXPECT_EQ(static_cast<long double>(p) + static_cast<long double>(err), exact);
  }
}

TEST(Eft, ThreeSumPreservesTotal) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int i = 0; i < 500; ++i) {
    double a = dist(rng), b = dist(rng) * 0x1p-20, c = dist(rng) * 0x1p-40;
    const long double total = static_cast<long double>(a) + b + c;
    three_sum(a, b, c);
    const long double after = static_cast<long double>(a) + b + c;
    // three_sum redistributes the same total; comparing in 80-bit
    // arithmetic leaves only long-double rounding (~1e-19 at |a| ~ 1).
    EXPECT_NEAR(static_cast<double>(after - total), 0.0, 1e-18);
    // leading term must carry (almost) the whole sum
    EXPECT_NEAR(static_cast<double>(total), a, std::abs(a) * 1e-15 + 1e-18);
  }
}

}  // namespace
