// Adaptive-precision Newton: escalation stops as soon as the target is
// met, stagnation at a precision's noise floor triggers the next level,
// and the ladder reaches quad-double when asked for ~60 digits.

#include <gtest/gtest.h>

#include "newton/adaptive.hpp"
#include "poly/io.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;
using newton::PrecisionLevel;
using Cd = cplx::Complex<double>;

// irrational regular root (the golden ratio pair)
poly::PolynomialSystem golden() {
  return poly::parse_system("x0^2 + x1^2 - 3; x0*x1 - 1;");
}

TEST(AdaptiveNewton, StopsAtDoubleWhenSufficient) {
  const auto sys = golden();
  const std::vector<Cd> x0 = {{1.6, 0.0}, {0.62, 0.0}};
  newton::AdaptiveOptions opts;
  opts.target_residual = 1e-10;
  const auto r = newton::adaptive_refine(sys, x0, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.level_reached, PrecisionLevel::kDouble);
  EXPECT_LT(r.final_residual, 1e-10);
  EXPECT_EQ(r.residual_per_level.size(), 1u);
}

TEST(AdaptiveNewton, EscalatesToDoubleDouble) {
  const auto sys = golden();
  const std::vector<Cd> x0 = {{1.6, 0.0}, {0.62, 0.0}};
  newton::AdaptiveOptions opts;
  opts.target_residual = 1e-24;  // beyond double, within dd
  const auto r = newton::adaptive_refine(sys, x0, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.level_reached, PrecisionLevel::kDoubleDouble);
  EXPECT_LT(r.final_residual, 1e-24);
  EXPECT_EQ(r.residual_per_level.size(), 2u);
  // level residuals are the ladder
  EXPECT_GT(r.residual_per_level[0], r.residual_per_level[1]);
}

// A small tiny-dimension system in double-double can land residuals far
// below its epsilon by lucky cancellation (the unevaluated-sum format
// has variable precision), so the qd-escalation tests use a 16-dim
// workload whose 16 values each sum 10 rounded terms: the dd floor is
// then reliably ~1e-28..1e-31, well above 1e-45.
poly::RootedSystem planted16() {
  poly::SystemSpec spec;
  spec.dimension = 16;
  spec.monomials_per_polynomial = 10;
  spec.variables_per_monomial = 6;
  spec.max_exponent = 2;
  return poly::make_random_system_with_root(spec);
}

TEST(AdaptiveNewton, EscalatesToQuadDouble) {
  const auto [sys, root] = planted16();
  std::vector<Cd> x0 = root;
  for (auto& z : x0) z += Cd(1e-5, -1e-5);
  newton::AdaptiveOptions opts;
  opts.target_residual = 1e-45;
  const auto r = newton::adaptive_refine(sys, x0, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.level_reached, PrecisionLevel::kQuadDouble);
  EXPECT_LT(r.final_residual, 1e-45);
  ASSERT_EQ(r.residual_per_level.size(), 3u);
  EXPECT_GT(r.residual_per_level[0], r.residual_per_level[1]);
  EXPECT_GT(r.residual_per_level[1], r.residual_per_level[2]);
}

TEST(AdaptiveNewton, RespectsMaxLevel) {
  const auto [sys, root] = planted16();
  std::vector<Cd> x0 = root;
  for (auto& z : x0) z += Cd(1e-5, -1e-5);
  newton::AdaptiveOptions opts;
  opts.target_residual = 1e-45;  // unreachable within dd on this workload
  opts.max_level = PrecisionLevel::kDoubleDouble;
  const auto r = newton::adaptive_refine(sys, x0, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.level_reached, PrecisionLevel::kDoubleDouble);
  EXPECT_LT(r.final_residual, 1e-24);  // still made it to the dd floor
}

TEST(AdaptiveNewton, PaperWorkloadWithPlantedRoot) {
  poly::SystemSpec spec;
  spec.dimension = 16;
  spec.monomials_per_polynomial = 10;
  spec.variables_per_monomial = 6;
  spec.max_exponent = 2;
  const auto [sys, root] = poly::make_random_system_with_root(spec);
  std::vector<Cd> x0 = root;
  for (auto& z : x0) z += Cd(1e-5, 1e-5);

  newton::AdaptiveOptions opts;
  opts.target_residual = 1e-26;
  const auto r = newton::adaptive_refine(sys, x0, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.level_reached, PrecisionLevel::kDoubleDouble);
  // endpoint stays near the planted root
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_NEAR(r.solution[i].re().to_double(), root[i].re(), 1e-6);
    EXPECT_NEAR(r.solution[i].im().to_double(), root[i].im(), 1e-6);
  }
}

TEST(AdaptiveNewton, LevelNames) {
  EXPECT_EQ(newton::to_string(PrecisionLevel::kDouble), "double");
  EXPECT_EQ(newton::to_string(PrecisionLevel::kDoubleDouble), "double-double");
  EXPECT_EQ(newton::to_string(PrecisionLevel::kQuadDouble), "quad-double");
}

}  // namespace
