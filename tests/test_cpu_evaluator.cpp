// The sequential reference evaluator: agreement with the naive oracle on
// uniform and irregular systems, in all precisions, with multiplication
// counts matching the paper's closed forms.

#include <gtest/gtest.h>

#include "ad/cpu_evaluator.hpp"
#include "poly/families.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;
using prec::DoubleDouble;
using prec::QuadDouble;

template <class S>
void expect_matches_naive(const poly::PolynomialSystem& sys, std::uint64_t seed,
                          double tol) {
  using C = cplx::Complex<S>;
  const auto x = poly::make_random_point<S>(sys.dimension(), seed);
  poly::EvalResult<S> naive(sys.dimension());
  sys.evaluate_naive<S>(x, naive.values, naive.jacobian);
  ad::CpuEvaluator<S> cpu(sys);
  const auto got = cpu.evaluate(std::span<const C>(x));
  EXPECT_LT(poly::max_abs_diff(naive, got), tol);
}

struct SweepParam {
  unsigned n, m, k, d;
};

class CpuEvaluatorSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CpuEvaluatorSweep, MatchesNaiveOracle) {
  const auto [n, m, k, d] = GetParam();
  poly::SystemSpec spec;
  spec.dimension = n;
  spec.monomials_per_polynomial = m;
  spec.variables_per_monomial = k;
  spec.max_exponent = d;
  spec.seed = 100 + n + m + k + d;
  const auto sys = poly::make_random_system(spec);
  expect_matches_naive<double>(sys, 1, 1e-9);
}

TEST_P(CpuEvaluatorSweep, OpCountsMatchClosedForms) {
  const auto [n, m, k, d] = GetParam();
  poly::SystemSpec spec;
  spec.dimension = n;
  spec.monomials_per_polynomial = m;
  spec.variables_per_monomial = k;
  spec.max_exponent = d;
  const auto sys = poly::make_random_system(spec);
  ad::CpuEvaluator<double> cpu(sys);
  const auto x = poly::make_random_point<double>(n, 3);
  (void)cpu.evaluate(std::span<const cplx::Complex<double>>(x));
  const auto& ops = cpu.last_op_counts();
  // The generator forces at least one exponent to reach d, so the powers
  // table has exactly d rows and the formulas apply verbatim.
  EXPECT_EQ(ops.complex_mul, ad::formulas::evaluation_mults(n, m, k, d));
  EXPECT_EQ(ops.complex_add, ad::formulas::evaluation_adds_cpu(n, m, k));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CpuEvaluatorSweep,
    ::testing::Values(SweepParam{2, 1, 1, 1}, SweepParam{3, 2, 2, 2},
                      SweepParam{4, 3, 2, 5}, SweepParam{6, 4, 3, 3},
                      SweepParam{8, 8, 4, 2}, SweepParam{10, 6, 5, 7},
                      SweepParam{16, 12, 8, 2}, SweepParam{16, 5, 16, 4},
                      SweepParam{32, 8, 9, 2}, SweepParam{32, 8, 16, 10}),
    [](const auto& info) {
      const auto p = info.param;
      return "n" + std::to_string(p.n) + "m" + std::to_string(p.m) + "k" +
             std::to_string(p.k) + "d" + std::to_string(p.d);
    });

TEST(CpuEvaluator, DoubleDoubleAgreesWithNaive) {
  poly::SystemSpec spec;
  spec.dimension = 6;
  spec.monomials_per_polynomial = 5;
  spec.variables_per_monomial = 3;
  spec.max_exponent = 4;
  const auto sys = poly::make_random_system(spec);
  expect_matches_naive<DoubleDouble>(sys, 2, 1e-28);
}

TEST(CpuEvaluator, QuadDoubleAgreesWithNaive) {
  poly::SystemSpec spec;
  spec.dimension = 4;
  spec.monomials_per_polynomial = 4;
  spec.variables_per_monomial = 2;
  spec.max_exponent = 3;
  const auto sys = poly::make_random_system(spec);
  expect_matches_naive<QuadDouble>(sys, 3, 1e-55);
}

TEST(CpuEvaluator, HandlesIrregularFamilies) {
  // Constant terms, k = 1 monomials, varying m: the general path.
  expect_matches_naive<double>(poly::cyclic(5), 4, 1e-10);
  expect_matches_naive<double>(poly::katsura(4), 5, 1e-10);
  expect_matches_naive<double>(poly::noon(4), 6, 1e-10);
}

TEST(CpuEvaluator, DoubleDoubleRefinesResidualStructure) {
  // Evaluating at a near-root in dd must expose structure below double's
  // noise floor: compare dd evaluation against double evaluation of the
  // same point -- they agree to ~1e-16 but dd carries more digits.
  poly::SystemSpec spec;
  spec.dimension = 5;
  spec.monomials_per_polynomial = 4;
  spec.variables_per_monomial = 3;
  spec.max_exponent = 2;
  const auto sys = poly::make_random_system(spec);

  const auto xd = poly::make_random_point<double>(5, 9);
  std::vector<cplx::Complex<DoubleDouble>> xdd;
  for (const auto& z : xd) xdd.push_back(cplx::Complex<DoubleDouble>::from_double(z));

  ad::CpuEvaluator<double> cpu_d(sys);
  ad::CpuEvaluator<DoubleDouble> cpu_dd(sys);
  const auto rd = cpu_d.evaluate(std::span<const cplx::Complex<double>>(xd));
  const auto rdd = cpu_dd.evaluate(std::span<const cplx::Complex<DoubleDouble>>(xdd));

  for (unsigned i = 0; i < 5; ++i) {
    EXPECT_NEAR(rd.values[i].re(), rdd.values[i].re().to_double(), 1e-13);
    EXPECT_NEAR(rd.values[i].im(), rdd.values[i].im().to_double(), 1e-13);
  }
}

template <class S>
void expect_values_only_bitwise(const poly::PolynomialSystem& sys,
                                std::uint64_t seed) {
  using C = cplx::Complex<S>;
  const auto x = poly::make_random_point<S>(sys.dimension(), seed);
  ad::CpuEvaluator<S> cpu(sys);
  const auto full = cpu.evaluate(std::span<const C>(x));
  std::vector<C> values(sys.dimension());
  cpu.evaluate_values(std::span<const C>(x), std::span<C>(values));
  for (unsigned q = 0; q < sys.dimension(); ++q)
    EXPECT_EQ(cplx::max_abs_diff(full.values[q], values[q]), 0.0) << "value " << q;
}

TEST(CpuEvaluator, ValuesOnlyBitwiseMatchesEvaluate) {
  // The values-only path (no derivative work) must repeat evaluate()'s
  // value arithmetic exactly -- across the k regimes the value
  // computation branches on, irregular systems, and precisions.
  poly::SystemSpec spec;
  spec.dimension = 6;
  spec.monomials_per_polynomial = 5;
  spec.max_exponent = 3;
  spec.seed = 2024;
  for (const unsigned k : {1u, 2u, 4u}) {
    spec.variables_per_monomial = k;
    expect_values_only_bitwise<double>(poly::make_random_system(spec), 300 + k);
  }
  expect_values_only_bitwise<DoubleDouble>(poly::make_random_system(spec), 310);
  expect_values_only_bitwise<QuadDouble>(poly::make_random_system(spec), 311);
  expect_values_only_bitwise<double>(poly::noon(3), 320);  // irregular, k mixed
}

TEST(CpuEvaluator, EmptySupportMonomialContributesConstant) {
  // A polynomial with a constant term: the k = 0 branch.
  poly::PolynomialBuilder b0(2), b1(2);
  b0.add_term({1.0, 0.0}, {1, 1});
  b0.add_constant({5.0, 0.0});
  b1.add_term({1.0, 0.0}, {2, 0});
  b1.add_constant({-2.0, 0.0});
  const poly::PolynomialSystem sys({b0.build(), b1.build()});
  ad::CpuEvaluator<double> cpu(sys);
  const std::vector<cplx::Complex<double>> x = {{2.0, 0.0}, {3.0, 0.0}};
  const auto r = cpu.evaluate(std::span<const cplx::Complex<double>>(x));
  EXPECT_DOUBLE_EQ(r.values[0].re(), 11.0);  // 2*3 + 5
  EXPECT_DOUBLE_EQ(r.values[1].re(), 2.0);   // 4 - 2
}

}  // namespace
