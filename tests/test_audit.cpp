// The kernel access auditor: every seeded-violation fixture must make
// its checker fire with correct attribution, production kernels must
// audit clean, and attaching the auditor must not change a single
// output bit (the audit path runs the same kernels serially).

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "audit/fixtures.hpp"
#include "audit/kernel_auditor.hpp"
#include "core/fused_evaluator.hpp"
#include "poly/random_system.hpp"
#include "service/solve_service.hpp"
#include "simt/device.hpp"

namespace {

using namespace polyeval;
using audit::FindingKind;
using audit::KernelAuditor;
using Cd = cplx::Complex<double>;

std::size_t count_kind(const KernelAuditor& a, FindingKind kind) {
  std::size_t n = 0;
  for (const auto& f : a.findings())
    if (f.kind == kind) ++n;
  return n;
}

TEST(AuditFixtures, StaleSlotReadFlaggedWithProvenance) {
  simt::Device device;
  KernelAuditor auditor;
  auditor.attach(device);
  audit::fixtures::run_stale_slot(auditor, device);

  ASSERT_EQ(count_kind(auditor, FindingKind::kStaleGlobalRead), 1u);
  const auto& f = auditor.findings().front();
  EXPECT_EQ(f.kind, FindingKind::kStaleGlobalRead);
  EXPECT_EQ(f.kernel, "fx_stale_slot");
  EXPECT_EQ(f.buffer, "FxMons");
  EXPECT_EQ(f.phase, 1u);  // the read phase, not the write phase
  // Tenant A's derivative word: element 1, 8 bytes in.
  EXPECT_EQ(f.offset, 8u);
  // Provenance names the previous epoch's device write.
  EXPECT_NE(f.provenance.find("epoch"), std::string::npos);
}

TEST(AuditFixtures, UninitReadsFlaggedGlobalAndShared) {
  simt::Device device;
  KernelAuditor auditor;
  auditor.attach(device);
  audit::fixtures::run_uninit_read(auditor, device);

  EXPECT_EQ(count_kind(auditor, FindingKind::kUninitGlobalRead), 1u);
  EXPECT_EQ(count_kind(auditor, FindingKind::kUninitSharedRead), 1u);
  for (const auto& f : auditor.findings()) {
    EXPECT_EQ(f.kernel, "fx_uninit_read");
    if (f.kind == FindingKind::kUninitGlobalRead) EXPECT_EQ(f.buffer, "FxNever");
  }
}

TEST(AuditFixtures, OutOfBoundsSquashedAndAttributed) {
  simt::Device device;
  KernelAuditor auditor;
  auditor.attach(device);
  // The fixture completing at all proves the squash: the overrun store
  // would land past the allocation's (unpadded) heap storage.
  audit::fixtures::run_out_of_bounds(auditor, device);

  ASSERT_EQ(count_kind(auditor, FindingKind::kGlobalOutOfBounds), 2u);
  for (const auto& f : auditor.findings()) {
    EXPECT_EQ(f.kernel, "fx_oob");
    EXPECT_EQ(f.buffer, "FxSmall");  // the buffer issued through, by name
    EXPECT_GE(f.offset, 32u);        // both past the 4-double extent
  }
}

TEST(AuditFixtures, LaneDivergenceFlaggedThreeWays) {
  simt::Device device;
  KernelAuditor auditor;
  auditor.attach(device);
  audit::fixtures::run_lane_divergence(auditor, device);

  EXPECT_EQ(count_kind(auditor, FindingKind::kAccessAfterInactive), 1u);
  EXPECT_EQ(count_kind(auditor, FindingKind::kFootprintDivergence), 1u);
  EXPECT_EQ(count_kind(auditor, FindingKind::kCountDivergence), 1u);
  for (const auto& f : auditor.findings()) {
    EXPECT_EQ(f.kernel, "fx_diverge");
    EXPECT_EQ(f.warp, 0u);
  }
}

TEST(AuditFixtures, NondeterministicAccumulationFlagged) {
  simt::Device device;
  KernelAuditor auditor;
  auditor.attach(device);
  audit::fixtures::run_nondeterministic_accumulation(auditor, device);

  ASSERT_EQ(count_kind(auditor, FindingKind::kNondeterministicAccumulation), 1u);
  const auto& f = auditor.findings().front();
  EXPECT_EQ(f.kernel, "fx_ndet_accum");
  EXPECT_EQ(f.buffer, "FxAcc");
  EXPECT_EQ(f.phase, 1u);  // the RMW store's phase
}

TEST(Audit, ProductionFusedKernelAuditsClean) {
  poly::SystemSpec spec;
  spec.dimension = 6;
  spec.monomials_per_polynomial = 6;
  spec.variables_per_monomial = 3;
  const auto system = poly::make_random_system(spec);

  simt::Device device;
  KernelAuditor auditor;
  auditor.attach(device);  // before construction: uploads are provenance

  core::FusedGpuEvaluator<double>::Options opt;
  opt.tuning = tune::TuningMode::kHeuristic;
  core::FusedGpuEvaluator<double> ev(device, system, 4, opt);

  std::vector<std::vector<Cd>> points;
  for (unsigned p = 0; p < 4; ++p)
    points.push_back(poly::make_random_point<double>(spec.dimension, 100 + p));
  std::vector<poly::EvalResult<double>> out(4, poly::EvalResult<double>(6));
  auditor.begin_epoch();
  ev.evaluate_range(points, 0, 4, std::span<poly::EvalResult<double>>(out));
  auditor.begin_epoch();
  ev.evaluate_range(points, 0, 4, std::span<poly::EvalResult<double>>(out));

  EXPECT_GE(auditor.launches_audited(), 2u);
  EXPECT_EQ(auditor.total_findings(), 0u)
      << audit::to_string(auditor.findings().front().kind) << ": "
      << auditor.findings().front().detail;
}

TEST(Audit, AttachedAuditorPreservesBitwiseOutputs) {
  poly::SystemSpec spec;
  spec.dimension = 5;
  spec.monomials_per_polynomial = 4;
  spec.variables_per_monomial = 3;
  const auto system = poly::make_random_system(spec);
  std::vector<std::vector<Cd>> points;
  for (unsigned p = 0; p < 3; ++p)
    points.push_back(poly::make_random_point<double>(spec.dimension, 55 + p));

  const auto run = [&](bool audited) {
    simt::Device device;
    KernelAuditor auditor;
    if (audited) auditor.attach(device);
    core::FusedGpuEvaluator<double>::Options opt;
    opt.tuning = tune::TuningMode::kHeuristic;
    core::FusedGpuEvaluator<double> ev(device, system, 3, opt);
    std::vector<poly::EvalResult<double>> out(3, poly::EvalResult<double>(5));
    ev.evaluate_range(points, 0, 3, std::span<poly::EvalResult<double>>(out));
    return out;
  };

  const auto plain = run(false);
  const auto audited = run(true);
  for (std::size_t p = 0; p < plain.size(); ++p)
    EXPECT_EQ(poly::max_abs_diff(plain[p], audited[p]), 0.0) << "point " << p;
}

TEST(Audit, ServiceAuditsFirstLaunchOfNewCacheEntries) {
  poly::SystemSpec spec;
  spec.dimension = 3;
  spec.monomials_per_polynomial = 3;
  spec.variables_per_monomial = 2;
  const auto sys_a = poly::make_random_system(spec);
  spec.seed += 1;
  const auto sys_b = poly::make_random_system(spec);

  service::SolveService<double>::Config config;
  config.shards = 1;
  config.audit_new_systems = true;
  service::SolveService<double> svc(std::move(config));

  solve::Options opt;
  opt.sharding.max_paths = 4;
  auto ta = svc.submit({sys_a, opt, {}, 0, 0.0});
  auto tb = svc.submit({sys_b, opt, {}, 0, 0.0});
  auto ta2 = svc.submit({sys_a, opt, {}, 0, 0.0});  // cache hit: no audit
  svc.drain();

  const auto stats = svc.stats();
  EXPECT_EQ(stats.audited_systems, 2u);  // one per distinct system
  EXPECT_EQ(stats.audit_findings, 0u);   // production kernels are clean
  (void)ta.report();
  (void)tb.report();
  (void)ta2.report();
}

}  // namespace
