// The stream/event subsystem: async copies move data, per-stream and
// device logs record every command, events order cross-stream work on
// the modeled clock, the engine clocks serialize kernels while letting
// copies overlap them, and the whole modeled timeline is deterministic.

#include <gtest/gtest.h>

#include <vector>

#include "simt/stream.hpp"

namespace {

using namespace polyeval::simt;

Kernel doubling_kernel(GlobalBuffer<double> buf) {
  return Kernel{"double",
                {[buf](ThreadContext& ctx) {
                  const std::size_t i = ctx.global_thread_index();
                  if (i < buf.size()) {
                    ctx.store(buf, i, 2.0 * ctx.load(buf, i));
                  } else {
                    ctx.mark_inactive();
                  }
                }}};
}

TEST(Stream, AsyncCopiesRoundTripThroughAKernel) {
  Device device;
  auto buf = device.alloc_global<double>(64, "data");
  Stream stream(device);

  std::vector<double> host(64);
  for (unsigned i = 0; i < 64; ++i) host[i] = i + 1.0;
  stream.copy_to_device_async(buf, std::span<const double>(host));
  (void)stream.launch(doubling_kernel(buf), {2, 32, 0});
  std::vector<double> back(64, 0.0);
  stream.copy_from_device_async(buf, std::span<double>(back));
  stream.synchronize();

  for (unsigned i = 0; i < 64; ++i) EXPECT_EQ(back[i], 2.0 * (i + 1.0));
}

TEST(Stream, PerStreamAndDeviceLogsRecordEveryCommand) {
  Device device;
  auto buf = device.alloc_global<double>(8, "data");
  Stream a(device), b(device);

  std::vector<double> host(8, 1.0);
  a.copy_to_device_async(buf, std::span<const double>(host));
  (void)b.launch(doubling_kernel(buf), {1, 32, 0});
  b.copy_from_device_async(buf, std::span<double>(host));

  // Per-stream slices.
  EXPECT_EQ(a.log().kernels.size(), 0u);
  EXPECT_EQ(a.log().transfers.transfers_to_device, 1u);
  EXPECT_EQ(a.log().transfers.bytes_to_device, 8 * sizeof(double));
  EXPECT_EQ(b.log().kernels.size(), 1u);
  EXPECT_EQ(b.log().transfers.transfers_from_device, 1u);

  // Device-wide union: stream traffic mirrors into the device log, so
  // sharded merges and the regression benches keep seeing everything.
  EXPECT_EQ(device.log().kernels.size(), 1u);
  EXPECT_EQ(device.log().transfers.transfers_to_device, 1u);
  EXPECT_EQ(device.log().transfers.transfers_from_device, 1u);
  EXPECT_EQ(device.log().transfers.bytes_to_device, 8 * sizeof(double));

  a.reset();
  EXPECT_EQ(a.log().transfers.transfers_to_device, 0u);
  EXPECT_EQ(a.timeline().size(), 0u);
  EXPECT_EQ(a.modeled_now_us(), 0.0);
}

TEST(Stream, ModeledClockAdvancesByCopyCost) {
  Device device;
  const GpuCostModel cost;
  auto buf = device.alloc_global<double>(1024, "data");
  Stream stream(device, cost);

  std::vector<double> host(1024, 0.0);
  stream.copy_to_device_async(buf, std::span<const double>(host));
  const double want = estimate_copy_us(1024 * sizeof(double), cost);
  EXPECT_DOUBLE_EQ(stream.modeled_now_us(), want);

  // Same-direction copies serialize on the H2D engine even from
  // another stream.
  Stream other(device, cost);
  other.copy_to_device_async(buf, std::span<const double>(host));
  EXPECT_DOUBLE_EQ(other.modeled_now_us(), 2.0 * want);
}

TEST(Stream, EventsOrderCrossStreamWork) {
  Device device;
  const GpuCostModel cost;
  auto buf = device.alloc_global<double>(256, "data");
  Stream producer(device, cost), consumer(device, cost);
  Event ready;

  EXPECT_FALSE(ready.recorded());
  // Waiting on a never-recorded event is a no-op (CUDA semantics).
  consumer.wait(ready);
  EXPECT_EQ(consumer.modeled_now_us(), 0.0);

  std::vector<double> host(256, 3.0);
  producer.copy_to_device_async(buf, std::span<const double>(host));
  producer.record(ready);
  EXPECT_TRUE(ready.recorded());
  EXPECT_EQ(ready.record_count(), 1u);
  EXPECT_DOUBLE_EQ(ready.modeled_time_us(), producer.modeled_now_us());

  consumer.wait(ready);
  EXPECT_DOUBLE_EQ(consumer.modeled_now_us(), ready.modeled_time_us());

  Event done;
  (void)consumer.launch(doubling_kernel(buf), {8, 32, 0});
  consumer.record(done);
  EXPECT_GT(done.modeled_elapsed_us(ready), 0.0);
}

TEST(Stream, KernelsSerializeOnTheComputeEngine) {
  // Two streams, two kernels: no concurrent kernels on Fermi, so the
  // modeled intervals must not overlap even without any event edge.
  Device device;
  auto buf = device.alloc_global<double>(32, "data");
  Stream a(device), b(device);
  (void)a.launch(doubling_kernel(buf), {1, 32, 0});
  (void)b.launch(doubling_kernel(buf), {1, 32, 0});

  ASSERT_EQ(a.timeline().size(), 1u);
  ASSERT_EQ(b.timeline().size(), 1u);
  EXPECT_EQ(a.timeline()[0].op, StreamOp::kKernel);
  EXPECT_GE(b.timeline()[0].start_us, a.timeline()[0].end_us);
}

TEST(Stream, CopiesOverlapComputeOnTheModeledClock) {
  // The point of the subsystem: a copy on one stream rides the DMA
  // engine while a kernel on another stream owns the compute engine.
  Device device;
  auto buf = device.alloc_global<double>(4096, "data");
  auto other = device.alloc_global<double>(4096, "other");
  Stream copy(device), compute(device);

  std::vector<double> host(4096, 1.0);
  (void)compute.launch(doubling_kernel(buf), {128, 32, 0});
  copy.copy_to_device_async(other, std::span<const double>(host));

  const auto& k = compute.timeline()[0];
  const auto& c = copy.timeline()[0];
  EXPECT_EQ(c.op, StreamOp::kCopyH2D);
  // The copy starts at modeled time zero, fully under the kernel.
  EXPECT_DOUBLE_EQ(c.start_us, 0.0);
  EXPECT_LT(c.end_us, k.end_us);
}

TEST(Stream, ModeledTimelineIsDeterministic) {
  const auto run = [] {
    Device device;
    auto buf = device.alloc_global<double>(512, "data");
    Stream copy(device), compute(device);
    Event up, done;
    std::vector<double> host(512, 2.0);
    std::vector<StreamTimelineEntry> all;
    for (int i = 0; i < 3; ++i) {
      copy.copy_to_device_async(buf, std::span<const double>(host));
      copy.record(up);
      compute.wait(up);
      (void)compute.launch(doubling_kernel(buf), {16, 32, 0});
      compute.record(done);
      copy.wait(done);
      copy.copy_from_device_async(buf, std::span<double>(host));
    }
    all = copy.timeline();
    all.insert(all.end(), compute.timeline().begin(), compute.timeline().end());
    return all;
  };

  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].op, second[i].op) << i;
    EXPECT_DOUBLE_EQ(first[i].start_us, second[i].start_us) << i;
    EXPECT_DOUBLE_EQ(first[i].end_us, second[i].end_us) << i;
  }
}

TEST(Stream, CopyCommandValidatesAgainstBufferSize) {
  Device device;
  auto buf = device.alloc_global<double>(4, "small");
  std::vector<double> big(8, 0.0);
  EXPECT_THROW(CopyCommand::h2d(buf, std::span<const double>(big)), DeviceError);
  EXPECT_THROW(CopyCommand::d2h(buf, std::span<double>(big)), DeviceError);
  std::vector<double> ok(4, 0.0);
  EXPECT_NO_THROW(CopyCommand::h2d(buf, std::span<const double>(ok)));
}

TEST(Stream, EngineClocksResetForFreshTimelines) {
  Device device;
  auto buf = device.alloc_global<double>(64, "data");
  Stream stream(device);
  std::vector<double> host(64, 0.0);
  stream.copy_to_device_async(buf, std::span<const double>(host));
  EXPECT_GT(device.engine_clocks().h2d_ready_us, 0.0);

  stream.reset();
  device.engine_clocks().reset();
  EXPECT_EQ(device.engine_clocks().h2d_ready_us, 0.0);
  stream.copy_to_device_async(buf, std::span<const double>(host));
  EXPECT_DOUBLE_EQ(stream.modeled_now_us(),
                   estimate_copy_us(64 * sizeof(double), stream.cost_model()));
}

}  // namespace
