// Parity tests for the fast paths: the fused single-launch pipeline and
// the SoA interchange layout must reproduce the three-kernel AoS
// baseline BITWISE (the arithmetic is identical in order and operation;
// only storage and scheduling differ) -- across double, double-double
// and quad-double.

#include <gtest/gtest.h>

#include "core/batch_evaluator.hpp"
#include "core/fused_evaluator.hpp"
#include "core/gpu_evaluator.hpp"
#include "core/pipelined_evaluator.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;

poly::PolynomialSystem make_system(unsigned n, unsigned m, unsigned k, unsigned d,
                                   std::uint64_t seed = 77) {
  poly::SystemSpec spec;
  spec.dimension = n;
  spec.monomials_per_polynomial = m;
  spec.variables_per_monomial = k;
  spec.max_exponent = d;
  spec.seed = seed;
  return poly::make_random_system(spec);
}

/// Baseline: the paper's three-kernel pipeline, AoS interchange.
template <prec::RealScalar S>
std::vector<poly::EvalResult<S>> baseline(const poly::PolynomialSystem& sys,
                                          const std::vector<std::vector<cplx::Complex<S>>>& points) {
  simt::Device device;
  core::GpuEvaluator<S> gpu(device, sys);
  std::vector<poly::EvalResult<S>> results;
  for (const auto& x : points)
    results.push_back(gpu.evaluate(std::span<const cplx::Complex<S>>(x)));
  return results;
}

template <prec::RealScalar S>
std::vector<std::vector<cplx::Complex<S>>> points_for(unsigned batch, unsigned dim,
                                                      std::uint64_t seed) {
  std::vector<std::vector<cplx::Complex<S>>> points;
  for (unsigned p = 0; p < batch; ++p)
    points.push_back(poly::make_random_point<S>(dim, seed + p));
  return points;
}

template <prec::RealScalar S>
void expect_bitwise(const std::vector<poly::EvalResult<S>>& want,
                    const std::vector<poly::EvalResult<S>>& got, const char* label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t p = 0; p < want.size(); ++p)
    EXPECT_EQ(poly::max_abs_diff(want[p], got[p]), 0.0) << label << ", point " << p;
}

template <prec::RealScalar S>
void run_parity(unsigned n, unsigned m, unsigned k, unsigned d) {
  const auto sys = make_system(n, m, k, d);
  const unsigned batch = 3;
  const auto points = points_for<S>(batch, n, 4200);
  const auto want = baseline<S>(sys, points);
  std::vector<poly::EvalResult<S>> got;

  {  // single-point pipeline, SoA interchange
    simt::Device device;
    typename core::GpuEvaluator<S>::Options opt;
    opt.interchange = core::InterchangeLayout::kSoA;
    core::GpuEvaluator<S> gpu(device, sys, opt);
    got.clear();
    for (const auto& x : points)
      got.push_back(gpu.evaluate(std::span<const cplx::Complex<S>>(x)));
    expect_bitwise(want, got, "GpuEvaluator SoA");
  }
  {  // batched three-kernel pipeline, AoS and SoA
    for (const auto layout :
         {core::InterchangeLayout::kAoS, core::InterchangeLayout::kSoA}) {
      simt::Device device;
      typename core::BatchGpuEvaluator<S>::Options opt;
      opt.interchange = layout;
      core::BatchGpuEvaluator<S> gpu(device, sys, batch, opt);
      gpu.evaluate(points, got);
      expect_bitwise(want, got,
                     layout == core::InterchangeLayout::kSoA ? "Batch SoA" : "Batch AoS");
    }
  }
  {  // fused single-launch pipeline, checked, AoS and SoA
    for (const auto layout :
         {core::InterchangeLayout::kAoS, core::InterchangeLayout::kSoA}) {
      simt::Device device;
      typename core::FusedGpuEvaluator<S>::Options opt;
      opt.detect_races = true;  // parity runs with the race journals on
      opt.interchange = layout;
      core::FusedGpuEvaluator<S> gpu(device, sys, batch, opt);
      gpu.evaluate(points, got);
      expect_bitwise(want, got,
                     layout == core::InterchangeLayout::kSoA ? "Fused SoA" : "Fused AoS");
      EXPECT_EQ(gpu.last_log().kernels.size(), 1u) << "fused pipeline must be one launch";
    }
  }
}

TEST(FusedParity, DoubleGeneralSystem) { run_parity<double>(8, 6, 4, 3); }
TEST(FusedParity, DoubleWideSystem) { run_parity<double>(16, 10, 9, 2); }
TEST(FusedParity, DoubleUnivariateMonomials) { run_parity<double>(6, 4, 1, 3); }
TEST(FusedParity, DoubleBivariateMonomials) { run_parity<double>(6, 4, 2, 2); }
TEST(FusedParity, DoubleDegreeOne) { run_parity<double>(6, 4, 3, 1); }

TEST(FusedParity, DoubleDouble) { run_parity<prec::DoubleDouble>(6, 4, 3, 2); }
TEST(FusedParity, QuadDouble) { run_parity<prec::QuadDouble>(5, 3, 2, 2); }

/// The values-only contract: evaluate_values_range must reproduce the
/// VALUES of a full evaluation bit for bit (the values kernel repeats
/// the full kernel's value arithmetic), over every k regime the value
/// path branches on, and in ONE launch downloading only batch*n values.
template <prec::RealScalar S>
void run_values_parity(unsigned n, unsigned m, unsigned k, unsigned d) {
  using C = cplx::Complex<S>;
  const auto sys = make_system(n, m, k, d);
  const unsigned batch = 3;
  const auto points = points_for<S>(batch, n, 4300);

  simt::Device device;
  typename core::FusedGpuEvaluator<S>::Options opt;
  opt.detect_races = true;
  core::FusedGpuEvaluator<S> fused(device, sys, batch, opt);

  std::vector<poly::EvalResult<S>> full;
  fused.evaluate(points, full);

  std::vector<C> values(std::size_t{batch} * n);
  fused.evaluate_values_range(points, 0, batch, std::span<C>(values));
  ASSERT_EQ(fused.last_log().kernels.size(), 1u) << "values path must be one launch";
  EXPECT_EQ(fused.last_log().kernels[0].kernel, "fused_values");
  EXPECT_EQ(fused.last_log().transfers.bytes_from_device,
            std::size_t{batch} * n * sizeof(C));

  for (unsigned p = 0; p < batch; ++p)
    for (unsigned q = 0; q < n; ++q)
      EXPECT_EQ(cplx::max_abs_diff(full[p].values[q], values[std::size_t{p} * n + q]),
                0.0)
          << "point " << p << ", value " << q;

  // The pipelined evaluator's micro-chunked values path: same bits.
  simt::Device pipe_device;
  typename core::PipelinedFusedEvaluator<S>::Options popt;
  popt.micro_chunk = 2;  // forces a partial tail chunk on batch 3
  core::PipelinedFusedEvaluator<S> piped(pipe_device, sys, batch, popt);
  std::vector<C> pvalues(std::size_t{batch} * n);
  piped.evaluate_values_range(points, 0, batch, std::span<C>(pvalues));
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_EQ(cplx::max_abs_diff(values[i], pvalues[i]), 0.0) << "entry " << i;

  // Single-point convenience on both evaluators: a batch of one, same
  // bits as the point's slot in the full batch.
  std::vector<C> single(n);
  fused.evaluate_values(std::span<const C>(points[1]), std::span<C>(single));
  for (unsigned q = 0; q < n; ++q)
    EXPECT_EQ(cplx::max_abs_diff(values[std::size_t{1} * n + q], single[q]), 0.0)
        << "fused single-point value " << q;
  piped.evaluate_values(std::span<const C>(points[2]), std::span<C>(single));
  for (unsigned q = 0; q < n; ++q)
    EXPECT_EQ(cplx::max_abs_diff(values[std::size_t{2} * n + q], single[q]), 0.0)
        << "pipelined single-point value " << q;
}

TEST(FusedValuesParity, DoubleGeneralSystem) { run_values_parity<double>(8, 6, 4, 3); }
TEST(FusedValuesParity, DoubleUnivariateMonomials) {
  run_values_parity<double>(6, 4, 1, 3);
}
TEST(FusedValuesParity, DoubleBivariateMonomials) {
  run_values_parity<double>(6, 4, 2, 2);
}
TEST(FusedValuesParity, DoubleDegreeOne) { run_values_parity<double>(6, 4, 3, 1); }
TEST(FusedValuesParity, DoubleDouble) { run_values_parity<prec::DoubleDouble>(6, 4, 3, 2); }
TEST(FusedValuesParity, QuadDouble) { run_values_parity<prec::QuadDouble>(5, 3, 2, 2); }

TEST(FusedParity, SinglePointApiMatchesBatchOfOne) {
  const auto sys = make_system(8, 6, 4, 3);
  const auto x = poly::make_random_point<double>(8, 31);
  simt::Device d1, d2;
  core::GpuEvaluator<double> single(d1, sys);
  core::FusedGpuEvaluator<double> fused(d2, sys, 1);
  const auto want = single.evaluate(std::span<const cplx::Complex<double>>(x));
  const auto got = fused.evaluate(std::span<const cplx::Complex<double>>(x));
  EXPECT_EQ(poly::max_abs_diff(want, got), 0.0);
}

TEST(FusedParity, OneUploadOneLaunchOneDownload) {
  const auto sys = make_system(8, 6, 4, 3);
  simt::Device device;
  core::FusedGpuEvaluator<double> fused(device, sys, 8);
  const auto points = points_for<double>(8, 8, 500);
  std::vector<poly::EvalResult<double>> results;
  fused.evaluate(points, results);

  const auto& log = fused.last_log();
  ASSERT_EQ(log.kernels.size(), 1u);
  EXPECT_EQ(log.kernels[0].kernel, "fused_eval");
  EXPECT_EQ(log.kernels[0].blocks, 8u);  // one block per point
  EXPECT_EQ(log.transfers.transfers_to_device, 1u);
  EXPECT_EQ(log.transfers.transfers_from_device, 1u);
  EXPECT_EQ(log.transfers.bytes_to_device,
            8u * 8u * sizeof(cplx::Complex<double>));
  EXPECT_EQ(log.transfers.bytes_from_device,
            8u * (8u * 8u + 8u) * sizeof(cplx::Complex<double>));
}

TEST(FusedParity, ValidatesArguments) {
  const auto sys = make_system(6, 4, 3, 2);
  simt::Device device;
  EXPECT_THROW(core::FusedGpuEvaluator<double>(device, sys, 0), std::invalid_argument);

  core::FusedGpuEvaluator<double> fused(device, sys, 2);
  std::vector<poly::EvalResult<double>> results;
  std::vector<std::vector<cplx::Complex<double>>> none;
  EXPECT_THROW(fused.evaluate(none, results), std::invalid_argument);
  auto too_many = points_for<double>(3, 6, 1);
  EXPECT_THROW(fused.evaluate(too_many, results), std::invalid_argument);
  std::vector<std::vector<cplx::Complex<double>>> wrong_dim = {
      std::vector<cplx::Complex<double>>(5)};
  EXPECT_THROW(fused.evaluate(wrong_dim, results), std::invalid_argument);
}

TEST(FusedParity, PartialBatchAllowed) {
  const auto sys = make_system(6, 4, 3, 2);
  simt::Device device;
  core::FusedGpuEvaluator<double> fused(device, sys, 8);
  const auto points = points_for<double>(2, 6, 600);
  std::vector<poly::EvalResult<double>> results;
  EXPECT_NO_THROW(fused.evaluate(points, results));
  EXPECT_EQ(results.size(), 2u);
}

}  // namespace
