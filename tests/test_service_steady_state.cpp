// Service steady-state memory: once a solve is warm (groups built,
// evaluators sized, metrics families registered, device logs at their
// high-water capacity), scheduler ticks must not touch the allocator
// except for path retirements (one endpoint copy into the report each),
// and the per-settle log watermark must plateau -- the fold-then-clear
// in run_rounds keeps the log vectors' capacity, so a stable watermark
// IS the steady-state memory bound.
//
// Own executable (CMake builds one per test file), so replacing the
// global allocator cannot collide with test_zero_alloc's.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "poly/random_system.hpp"
#include "service/solve_service.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) /
                                       static_cast<std::size_t>(align) *
                                       static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace polyeval;

poly::PolynomialSystem test_system() {
  poly::SystemSpec spec;
  spec.dimension = 4;
  spec.monomials_per_polynomial = 3;
  spec.variables_per_monomial = 2;
  spec.max_exponent = 2;
  spec.seed = 777;
  return poly::make_random_system(spec);
}

solve::Options test_options() {
  solve::Options opt;
  opt.sharding.max_paths = 12;
  opt.tracking.track.max_steps = 4000;
  return opt;
}

TEST(ServiceSteadyState, MidSolveTicksDoNotAllocate) {
  service::SolveService<double>::Config config;
  config.shards = 1;
  config.trace = obs::TraceLevel::kOff;
  service::SolveService<double> svc(std::move(config));
  const auto sys = test_system();
  const auto opt = test_options();

  // Warm-up solve: builds the structure group, shard evaluators,
  // trackers, race journals and every metrics family the settle fold
  // touches (per-kernel counters included).
  {
    auto warm = svc.submit({sys, opt, {}, 0, 0.0});
    svc.drain();
    ASSERT_TRUE(warm.done());
  }

  // Second solve of the same system: a cache hit riding warm state.
  auto ticket = svc.submit({sys, opt, {}, 0, 0.0});
  ASSERT_TRUE(svc.step());  // activation tick (tenant install, staging)

  // Per-tick contract: a tick that retires no path allocates NOTHING
  // (rounds, settle folds, watermark bookkeeping and log clears all ride
  // pre-sized storage); a retiring path may allocate exactly once (its
  // endpoint lands in the report).
  std::uint64_t prev_retired = ticket.poll().paths_retired;
  int quiet_ticks = 0;
  bool more = true;
  for (int i = 0; i < 40 && more; ++i) {
    const std::uint64_t before = g_allocations.load();
    more = svc.step();
    const std::uint64_t allocs = g_allocations.load() - before;
    const std::uint64_t retired = ticket.poll().paths_retired;
    const std::uint64_t retired_now = retired - prev_retired;
    prev_retired = retired;
    if (more) {  // the completion tick assembles the report
      EXPECT_LE(allocs, retired_now)
          << "tick " << i << ": " << allocs << " allocation(s), "
          << retired_now << " retirement(s)";
      if (retired_now == 0) ++quiet_ticks;
    }
  }
  // The window must actually have exercised steady-state ticks.
  EXPECT_GE(quiet_ticks, 10);

  svc.drain();
  ASSERT_TRUE(ticket.done());
}

TEST(ServiceSteadyState, LogKernelWatermarkPlateausAcrossIdenticalSolves) {
  service::SolveService<double>::Config config;
  config.shards = 1;
  service::SolveService<double> svc(std::move(config));
  const auto sys = test_system();
  const auto opt = test_options();

  auto t1 = svc.submit({sys, opt, {}, 0, 0.0});
  svc.drain();
  const auto w1 = svc.stats().log_kernel_watermark;
  EXPECT_GT(w1, 0u);  // rounds did launch kernels through the fold

  auto t2 = svc.submit({sys, opt, {}, 0, 0.0});
  svc.drain();
  const auto w2 = svc.stats().log_kernel_watermark;
  // Identical workload, warm log capacity: the high-water mark must not
  // move -- this is the "clear keeps capacity" steady-state contract.
  EXPECT_EQ(w2, w1);

  (void)t1.report();
  (void)t2.report();
}

}  // namespace
