// Transcendentals in extended precision: identities exp(log x) == x,
// log(exp x) == x, functional equations, agreement with hardware double
// in the leading digits, and precision floors near dd/qd epsilon.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "prec/math.hpp"

namespace {

using polyeval::prec::DoubleDouble;
using polyeval::prec::QuadDouble;

double dd_err(const DoubleDouble& a, const DoubleDouble& b) {
  const DoubleDouble d = abs(a - b);
  const DoubleDouble m = abs(b);
  return m.is_zero() ? d.to_double() : (d / m).to_double();
}
double qd_err(const QuadDouble& a, const QuadDouble& b) {
  const QuadDouble d = abs(a - b);
  const QuadDouble m = abs(b);
  return m.is_zero() ? d.to_double() : (d / m).to_double();
}

TEST(DoubleDoubleMath, ExpOfZeroOneAndLog2) {
  EXPECT_EQ(exp(DoubleDouble(0.0)), DoubleDouble(1.0));
  EXPECT_LT(dd_err(exp(DoubleDouble(1.0)), polyeval::prec::dd_e()), 1e-31);
  EXPECT_LT(dd_err(exp(polyeval::prec::dd_log2()), DoubleDouble(2.0)), 1e-31);
}

TEST(DoubleDoubleMath, ExpMatchesDoubleLeadingDigits) {
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> dist(-20.0, 20.0);
  for (int i = 0; i < 200; ++i) {
    const double x = dist(rng);
    const double lead = exp(DoubleDouble(x)).to_double();
    EXPECT_NEAR(lead / std::exp(x), 1.0, 1e-14) << x;
  }
}

TEST(DoubleDoubleMath, ExpAdditionTheorem) {
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> dist(-5.0, 5.0);
  for (int i = 0; i < 100; ++i) {
    const DoubleDouble a(dist(rng)), b(dist(rng));
    EXPECT_LT(dd_err(exp(a + b), exp(a) * exp(b)), 1e-29);
  }
}

TEST(DoubleDoubleMath, LogInvertsExp) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> dist(-30.0, 30.0);
  for (int i = 0; i < 100; ++i) {
    const DoubleDouble x(dist(rng));
    EXPECT_LT(dd_err(log(exp(x)), x), 1e-29);
  }
}

TEST(DoubleDoubleMath, ExpInvertsLog) {
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> dist(1e-6, 1e6);
  for (int i = 0; i < 100; ++i) {
    const DoubleDouble x(dist(rng));
    EXPECT_LT(dd_err(exp(log(x)), x), 1e-29);
  }
}

TEST(DoubleDoubleMath, LogRejectsNonPositive) {
  EXPECT_TRUE(log(DoubleDouble(0.0)).is_nan());
  EXPECT_TRUE(log(DoubleDouble(-1.0)).is_nan());
}

TEST(DoubleDoubleMath, ExpSaturates) {
  EXPECT_TRUE(exp(DoubleDouble(-800.0)).is_zero());
  EXPECT_TRUE(std::isinf(exp(DoubleDouble(800.0)).to_double()));
}

TEST(DoubleDoubleMath, PowAgreesWithNpwr) {
  const DoubleDouble base = DoubleDouble(1.5) + 0x1p-60;
  for (const int e : {2, 3, 7, 11}) {
    EXPECT_LT(dd_err(pow(base, DoubleDouble(static_cast<double>(e))), npwr(base, e)),
              1e-29)
        << e;
  }
}

TEST(DoubleDoubleMath, PowHalfIsSqrt) {
  const DoubleDouble x(7.25);
  EXPECT_LT(dd_err(pow(x, DoubleDouble(0.5)), sqrt(x)), 1e-29);
}

TEST(QuadDoubleMath, ExpOfZeroOneAndLog2) {
  EXPECT_EQ(exp(QuadDouble(0.0)), QuadDouble(1.0));
  EXPECT_LT(qd_err(exp(QuadDouble(1.0)), polyeval::prec::qd_e()), 1e-60);
  EXPECT_LT(qd_err(exp(polyeval::prec::qd_log2()), QuadDouble(2.0)), 1e-60);
}

TEST(QuadDoubleMath, ExpAdditionTheorem) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> dist(-5.0, 5.0);
  for (int i = 0; i < 50; ++i) {
    const QuadDouble a(dist(rng)), b(dist(rng));
    EXPECT_LT(qd_err(exp(a + b), exp(a) * exp(b)), 1e-57);
  }
}

TEST(QuadDoubleMath, LogInvertsExp) {
  std::mt19937_64 rng(6);
  std::uniform_real_distribution<double> dist(-30.0, 30.0);
  for (int i = 0; i < 50; ++i) {
    const QuadDouble x(dist(rng));
    EXPECT_LT(qd_err(log(exp(x)), x), 1e-57);
  }
}

TEST(QuadDoubleMath, ExpInvertsLog) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(1e-6, 1e6);
  for (int i = 0; i < 50; ++i) {
    const QuadDouble x(dist(rng));
    EXPECT_LT(qd_err(exp(log(x)), x), 1e-57);
  }
}

TEST(QuadDoubleMath, DeepLimbsParticipate) {
  // exp at 1 + 2^-150: the perturbation is invisible to dd but must
  // shift the qd result by e * 2^-150.
  QuadDouble x(1.0);
  x += 0x1p-150;
  const QuadDouble shifted = exp(x);
  const QuadDouble base = exp(QuadDouble(1.0));
  const QuadDouble diff = shifted - base;
  // diff ~ e * 2^-150 ~ 1.9e-45
  EXPECT_GT(diff.to_double(), 1e-46);
  EXPECT_LT(diff.to_double(), 1e-44);
}

TEST(QuadDoubleMath, PowGoldenRatioIdentity) {
  // phi^2 = phi + 1
  const QuadDouble phi = (QuadDouble(1.0) + sqrt(QuadDouble(5.0))) / 2.0;
  EXPECT_LT(qd_err(pow(phi, QuadDouble(2.0)), phi + 1.0), 1e-57);
}

TEST(PrecMath, ConstantsAreSelfConsistent) {
  // the dd constants are the qd constants truncated
  EXPECT_EQ(polyeval::prec::dd_log2().hi(), polyeval::prec::qd_log2()[0]);
  EXPECT_EQ(polyeval::prec::dd_e().hi(), polyeval::prec::qd_e()[0]);
  EXPECT_NEAR(polyeval::prec::dd_log2().to_double(), std::log(2.0), 1e-16);
  EXPECT_NEAR(polyeval::prec::dd_e().to_double(), std::exp(1.0), 1e-15);
}

}  // namespace
