// Tracker batches routed through device shards: path results must be
// bitwise reproducible across shard counts (every shard owns identical
// evaluators, and paths are independent jobs), land in deterministic
// path order, and agree with the CPU manager/worker solver on what the
// roots actually are.

#include <gtest/gtest.h>

#include "homotopy/sharded_solver.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;
using Cd = cplx::Complex<double>;

poly::PolynomialSystem uniform_target() {
  poly::SystemSpec spec;
  spec.dimension = 3;
  spec.monomials_per_polynomial = 3;
  spec.variables_per_monomial = 2;
  spec.max_exponent = 2;
  spec.seed = 99;
  return poly::make_random_system(spec);
}

homotopy::ShardedSolveOptions base_options(unsigned shards) {
  homotopy::ShardedSolveOptions opt;
  opt.shards = shards;
  opt.workers_per_shard = 1;
  opt.chunk_paths = 1;
  opt.max_paths = 6;
  opt.track.max_steps = 4000;
  return opt;
}

TEST(ShardedTracker, BitwiseReproducibleAcrossShardCounts) {
  const auto sys = uniform_target();
  const auto want = homotopy::solve_total_degree_sharded<double>(sys, base_options(1));
  ASSERT_EQ(want.attempted, 6u);

  for (const unsigned shards : {2u, 4u}) {
    const auto got = homotopy::solve_total_degree_sharded<double>(sys, base_options(shards));
    ASSERT_EQ(got.paths.size(), want.paths.size()) << shards << " shards";
    EXPECT_EQ(got.successes, want.successes) << shards << " shards";
    for (std::size_t p = 0; p < want.paths.size(); ++p) {
      const auto& a = want.paths[p];
      const auto& b = got.paths[p];
      EXPECT_EQ(a.success, b.success) << "path " << p;
      EXPECT_EQ(a.steps, b.steps) << "path " << p;
      EXPECT_EQ(a.rejections, b.rejections) << "path " << p;
      ASSERT_EQ(a.solution.size(), b.solution.size()) << "path " << p;
      for (std::size_t i = 0; i < a.solution.size(); ++i)
        EXPECT_EQ(cplx::max_abs_diff(a.solution[i], b.solution[i]), 0.0)
            << "path " << p << ", coordinate " << i;
    }
  }
}

TEST(ShardedTracker, EndpointsSolveTheTarget) {
  // Projective geometry (the default): converged endpoints are patched
  // projective points whose affine chart solves the target.
  const auto sys = uniform_target();
  const auto summary = homotopy::solve_total_degree_sharded<double>(sys, base_options(2));
  EXPECT_GE(summary.successes, 1u);
  for (const auto& p : summary.paths) {
    if (!p.success) continue;
    ASSERT_EQ(p.solution.size(), 4u);  // n + 1 patch coordinates
    const auto x = homotopy::dehomogenize<double>(std::span<const Cd>(p.solution));
    std::vector<Cd> values(3), jac(9);
    sys.evaluate_naive<double>(std::span<const Cd>(x), values, jac);
    for (const auto& v : values)
      EXPECT_LT(std::abs(v.re()) + std::abs(v.im()), 1e-7);
  }
}

TEST(ShardedTracker, EveryPathClassifiedInProjectiveMode) {
  // The tentpole contract: no path of this workload stalls -- every
  // endpoint is classified converged or at infinity.
  const auto sys = uniform_target();
  const auto summary = homotopy::solve_total_degree_sharded<double>(sys, base_options(2));
  EXPECT_EQ(summary.classified(), summary.attempted);
  for (const auto& p : summary.paths)
    EXPECT_TRUE(p.classified()) << "status " << static_cast<int>(p.status);
}

TEST(ShardedTracker, AffineEscapeHatchStillStalls) {
  // The affine geometry stays behind the enum with its historical
  // behavior: solutions are affine points and divergent paths stall.
  const auto sys = uniform_target();
  auto opt = base_options(2);
  opt.geometry = homotopy::TrackGeometry::kAffine;
  const auto summary = homotopy::solve_total_degree_sharded<double>(sys, opt);
  EXPECT_GE(summary.successes, 1u);
  EXPECT_EQ(summary.at_infinity, 0u);
  for (const auto& p : summary.paths) {
    ASSERT_EQ(p.solution.size(), 3u);
    if (!p.success) {
      EXPECT_TRUE(p.status == homotopy::PathStatus::kStalled ||
                  p.status == homotopy::PathStatus::kDiverged);
    }
  }
}

TEST(ShardedTracker, ExplicitStartRootsLandInOrder) {
  // track_paths_sharded with hand-picked start roots: result i must
  // correspond to root i (deterministic merge), independent of shards.
  const auto sys = uniform_target();
  const homotopy::TotalDegreeStart start(sys);
  const auto gamma = homotopy::random_gamma(42);

  std::vector<std::vector<Cd>> roots;
  for (const std::uint64_t p : {0ull, 3ull, 1ull}) {  // deliberately shuffled
    const auto rd = start.start_root(p);
    std::vector<Cd> r;
    for (const auto& z : rd) r.push_back(z);
    roots.push_back(std::move(r));
  }

  auto opt = base_options(2);
  const auto a = homotopy::track_paths_sharded<double>(sys, start.system(), roots,
                                                       gamma, opt);
  opt.shards = 1;
  const auto b = homotopy::track_paths_sharded<double>(sys, start.system(), roots,
                                                       gamma, opt);
  ASSERT_EQ(a.paths.size(), 3u);
  ASSERT_EQ(b.paths.size(), 3u);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(a.paths[p].success, b.paths[p].success);
    for (std::size_t i = 0; i < a.paths[p].solution.size(); ++i)
      EXPECT_EQ(cplx::max_abs_diff(a.paths[p].solution[i], b.paths[p].solution[i]), 0.0);
  }
}

TEST(ShardedTracker, EmptyBatchIsANoOp) {
  const auto sys = uniform_target();
  const homotopy::TotalDegreeStart start(sys);
  const std::vector<std::vector<Cd>> none;
  const auto summary = homotopy::track_paths_sharded<double>(
      sys, start.system(), none, homotopy::random_gamma(1), base_options(2));
  EXPECT_EQ(summary.attempted, 0u);
  EXPECT_EQ(summary.successes, 0u);
}

}  // namespace
