// The device data layouts of section 3.3: index algebra in both
// directions, portion-major Coeffs with folded exponents, transposed
// zero-padded Mons, and the packing of positions/exponents.

#include <gtest/gtest.h>

#include <set>

#include "core/encoding.hpp"
#include "core/layout.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;
using core::MonsLayout;
using core::SystemLayout;

TEST(SystemLayout, SizesMatchPaperFormulas) {
  // dim 32, m = 32, k = 16: 1024 monomials, Coeffs has nm(k+1) entries,
  // Mons has (n^2+n)m entries with (n^2+n)m - nm(k+1) zeros.
  const SystemLayout layout({32, 32, 16, 10});
  EXPECT_EQ(layout.total_monomials(), 1024u);
  EXPECT_EQ(layout.coeffs_size(), 1024u * 17u);
  EXPECT_EQ(layout.num_outputs(), 1056u);
  EXPECT_EQ(layout.mons_size(), 1056u * 32u);
  EXPECT_EQ(layout.mons_zero_slots(), 1056u * 32u - 1024u * 17u);
}

TEST(SystemLayout, SmOrderRoundTrips) {
  const SystemLayout layout({5, 7, 2, 3});
  for (unsigned p = 0; p < 5; ++p) {
    for (unsigned j = 0; j < 7; ++j) {
      const auto t = layout.sm_index(p, j);
      EXPECT_EQ(layout.monomial_poly(t), p);
      EXPECT_EQ(layout.monomial_slot(t), j);
    }
  }
  // first m entries belong to polynomial 0 (the paper's ordering)
  EXPECT_EQ(layout.monomial_poly(0), 0u);
  EXPECT_EQ(layout.monomial_poly(6), 0u);
  EXPECT_EQ(layout.monomial_poly(7), 1u);
}

TEST(SystemLayout, CoeffsPortionsArePaperOrder) {
  // "The first element of Coeffs is the coefficient of the derivative of
  //  the first monomial in Sm with respect to its first variable; ...
  //  the last (k+1)th portion contains the coefficients of the system."
  const SystemLayout layout({4, 3, 2, 2});
  const auto nm = layout.total_monomials();
  for (unsigned j = 0; j < 2; ++j)
    for (std::uint64_t t = 0; t < nm; ++t)
      EXPECT_EQ(layout.coeff_index(j, t), j * nm + t);
  EXPECT_EQ(layout.coeff_index(2, 0), 2 * nm);           // value portion
  EXPECT_EQ(layout.coeff_index(2, nm - 1), 3 * nm - 1);  // last entry overall
}

TEST(SystemLayout, MonsTransposedIndexing) {
  // "The first n^2+n elements of the array represent the first terms in
  //  each of n^2+n summations: the first n elements are the first
  //  monomials of the polynomials, the second n elements are the
  //  derivatives of the first monomials with respect to x1, ..."
  const unsigned n = 4, m = 3;
  const SystemLayout layout({n, m, 2, 2});
  const auto outputs = layout.num_outputs();

  // value of monomial j of polynomial p sits at j*(n^2+n) + p
  for (unsigned p = 0; p < n; ++p)
    for (unsigned j = 0; j < m; ++j)
      EXPECT_EQ(layout.mons_value_index(layout.sm_index(p, j)),
                std::uint64_t{j} * outputs + p);

  // derivative with respect to x_v sits at j*(n^2+n) + (v+1)*n + p
  for (unsigned p = 0; p < n; ++p)
    for (unsigned v = 0; v < n; ++v)
      for (unsigned j = 0; j < m; ++j)
        EXPECT_EQ(layout.mons_deriv_index(layout.sm_index(p, j), v),
                  std::uint64_t{j} * outputs + (v + 1u) * n + p);
}

TEST(SystemLayout, Kernel3ThreadReadsItsColumn) {
  // thread t sums Mons[t + j*(n^2+n)]: mons_index(out, j) must be exactly
  // that for the transposed layout.
  const SystemLayout layout({6, 5, 3, 2});
  const auto outputs = layout.num_outputs();
  for (std::uint64_t out = 0; out < outputs; ++out)
    for (unsigned j = 0; j < 5; ++j)
      EXPECT_EQ(layout.mons_index(out, j), out + j * outputs);
}

TEST(SystemLayout, OutputMajorAblationIndexing) {
  const SystemLayout layout({6, 5, 3, 2}, MonsLayout::kOutputMajor);
  for (std::uint64_t out = 0; out < layout.num_outputs(); ++out)
    for (unsigned j = 0; j < 5; ++j)
      EXPECT_EQ(layout.mons_index(out, j), out * 5 + j);
}

TEST(SystemLayout, MonsSlotsAreDisjointAcrossMonomials) {
  // No two (value/derivative) writes may collide: collect every index the
  // second kernel would write and assert uniqueness.
  poly::SystemSpec spec;
  spec.dimension = 6;
  spec.monomials_per_polynomial = 4;
  spec.variables_per_monomial = 3;
  spec.max_exponent = 2;
  const auto sys = poly::make_random_system(spec);
  const auto packed = core::pack_system(sys);
  const SystemLayout layout(packed.structure);

  std::set<std::uint64_t> used;
  for (std::uint64_t t = 0; t < layout.total_monomials(); ++t) {
    ASSERT_TRUE(used.insert(layout.mons_value_index(t)).second) << "value " << t;
    for (unsigned j = 0; j < packed.structure.k; ++j) {
      const unsigned var = packed.positions[layout.support_index(t, j)];
      ASSERT_TRUE(used.insert(layout.mons_deriv_index(t, var)).second)
          << "deriv " << t << " var " << var;
    }
  }
  EXPECT_EQ(used.size(), layout.total_monomials() * (packed.structure.k + 1));
  for (const auto idx : used) EXPECT_LT(idx, layout.mons_size());
}

TEST(PackSystem, PositionsExponentsAndFoldedCoefficients) {
  poly::SystemSpec spec;
  spec.dimension = 5;
  spec.monomials_per_polynomial = 3;
  spec.variables_per_monomial = 2;
  spec.max_exponent = 4;
  const auto sys = poly::make_random_system(spec);
  const auto packed = core::pack_system(sys);
  const SystemLayout layout(packed.structure);

  for (unsigned p = 0; p < spec.dimension; ++p) {
    for (unsigned j = 0; j < spec.monomials_per_polynomial; ++j) {
      const auto t = layout.sm_index(p, j);
      const auto& mono = sys.polynomial(p).monomials()[j];
      for (unsigned v = 0; v < spec.variables_per_monomial; ++v) {
        const auto& f = mono.factors()[v];
        EXPECT_EQ(packed.positions[layout.support_index(t, v)], f.var);
        EXPECT_EQ(packed.exponents[layout.support_index(t, v)] + 1u, f.exp);
        // derivative coefficient = c * a (the exponent factor)
        const auto dc = packed.coeffs[layout.coeff_index(v, t)];
        const auto expect = mono.coefficient() * static_cast<double>(f.exp);
        EXPECT_LT(cplx::max_abs_diff(dc, expect), 1e-15);
      }
      EXPECT_EQ(packed.coeffs[layout.coeff_index(spec.variables_per_monomial, t)],
                mono.coefficient());
    }
  }
}

TEST(PackSystem, RejectsNonUniform) {
  // cyclic systems are irregular
  poly::PolynomialBuilder b0(2), b1(2);
  b0.add_term({1.0, 0.0}, {1, 1});
  b1.add_term({1.0, 0.0}, {2, 0});
  b1.add_term({1.0, 0.0}, {0, 1});
  EXPECT_THROW((void)core::pack_system(poly::PolynomialSystem({b0.build(), b1.build()})),
               std::invalid_argument);
}

TEST(PackSystem, ConstantMemoryFootprintFormula) {
  // dimension 30 example from section 3.1: 900 monomials, k = 15:
  // 900*2*15 = 27000 bytes; dimension 40: 1600*2*20 = 64000 bytes.
  EXPECT_EQ(core::constant_bytes_required(core::ExponentEncoding::kChar, 900, 15),
            27000u);
  EXPECT_EQ(core::constant_bytes_required(core::ExponentEncoding::kChar, 1600, 20),
            64000u);
}

}  // namespace
