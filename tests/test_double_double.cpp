// Double-double arithmetic: exactness on representable cases, accuracy
// bounds near 2^-104 on random cases, algebraic identities, ordering,
// and decimal round-trips.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "prec/double_double.hpp"
#include "prec/random.hpp"
#include "prec/scalar_traits.hpp"

namespace {

using polyeval::prec::DoubleDouble;
using polyeval::prec::ScalarTraits;

constexpr double kEps = ScalarTraits<DoubleDouble>::epsilon;  // 2^-105

double rel_err(const DoubleDouble& actual, const DoubleDouble& expected) {
  const DoubleDouble diff = abs(actual - expected);
  const DoubleDouble mag = abs(expected);
  if (mag.is_zero()) return diff.to_double();
  return (diff / mag).to_double();
}

TEST(DoubleDouble, StoresTinyTailExactly) {
  const DoubleDouble a = DoubleDouble(1.0) + DoubleDouble(0x1p-80);
  EXPECT_EQ(a.hi(), 1.0);
  EXPECT_EQ(a.lo(), 0x1p-80);
  const DoubleDouble back = a - 1.0;
  EXPECT_EQ(back.hi(), 0x1p-80);
  EXPECT_EQ(back.lo(), 0.0);
}

TEST(DoubleDouble, AdditionIsExactWithinTwoLimbs) {
  // 1 + 2^-100 is exactly representable as hi=1, lo=2^-100.
  const DoubleDouble a(1.0);
  const DoubleDouble sum = a + 0x1p-100;
  EXPECT_EQ(((sum - 1.0) - DoubleDouble(0x1p-100)).to_double(), 0.0);
}

TEST(DoubleDouble, FromProdIsExact) {
  // pi-ish doubles: hi*lo product error must be captured exactly.
  const double a = 3.14159265358979323846;
  const double b = 2.71828182845904523536;
  const DoubleDouble p = DoubleDouble::from_prod(a, b);
  // two_prod exactness: p.hi + p.lo == a*b exactly; verify via fma.
  EXPECT_EQ(p.lo(), std::fma(a, b, -p.hi()));
}

TEST(DoubleDouble, MulAgainstExactSquares) {
  // (1 + 2^-52)^2 = 1 + 2^-51 + 2^-104: fits exactly in double-double.
  const DoubleDouble a(1.0 + 0x1p-52);
  const DoubleDouble sq = a * a;
  const DoubleDouble expected = DoubleDouble(1.0 + 0x1p-51) + 0x1p-104;
  EXPECT_EQ(sq, expected);
}

TEST(DoubleDouble, DivisionRoundTrip) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(-100.0, 100.0);
  for (int i = 0; i < 2000; ++i) {
    const DoubleDouble a = DoubleDouble(dist(rng)) + dist(rng) * 0x1p-55;
    DoubleDouble b = DoubleDouble(dist(rng)) + dist(rng) * 0x1p-55;
    if (std::fabs(b.to_double()) < 1e-3) b += 1.0;
    const DoubleDouble q = a / b;
    EXPECT_LT(rel_err(q * b, a), 8 * kEps) << "iteration " << i;
  }
}

TEST(DoubleDouble, AdditionAssociativityDefect) {
  // (1 + 2^-70) - 1 must recover 2^-70 exactly -- the core property plain
  // doubles lack.
  const DoubleDouble r = (DoubleDouble(1.0) + 0x1p-70) - DoubleDouble(1.0);
  EXPECT_EQ(r.to_double(), 0x1p-70);
}

TEST(DoubleDouble, SqrtSquares) {
  std::mt19937_64 rng(12);
  std::uniform_real_distribution<double> dist(1e-6, 1e6);
  for (int i = 0; i < 2000; ++i) {
    const DoubleDouble a = DoubleDouble(dist(rng)) + dist(rng) * 1e-20;
    const DoubleDouble r = sqrt(a);
    EXPECT_LT(rel_err(r * r, a), 8 * kEps);
  }
}

TEST(DoubleDouble, SqrtOfZeroAndNegative) {
  EXPECT_TRUE(sqrt(DoubleDouble(0.0)).is_zero());
  EXPECT_TRUE(sqrt(DoubleDouble(-1.0)).is_nan());
}

TEST(DoubleDouble, NpwrMatchesRepeatedMultiplication) {
  const DoubleDouble x = DoubleDouble(1.0) + 0x1p-60;
  DoubleDouble by_mult(1.0);
  for (int i = 0; i < 13; ++i) by_mult *= x;
  EXPECT_LT(rel_err(npwr(x, 13), by_mult), 8 * kEps);
}

TEST(DoubleDouble, NpwrNegativeExponent) {
  const DoubleDouble x(3.0);
  EXPECT_LT(rel_err(npwr(x, -2) * 9.0, DoubleDouble(1.0)), 8 * kEps);
}

TEST(DoubleDouble, NpwrZeroExponentIsOne) {
  EXPECT_EQ(npwr(DoubleDouble(42.0), 0), DoubleDouble(1.0));
}

TEST(DoubleDouble, FloorBehaviour) {
  EXPECT_EQ(floor(DoubleDouble(2.5)), DoubleDouble(2.0));
  EXPECT_EQ(floor(DoubleDouble(-2.5)), DoubleDouble(-3.0));
  // high word integral, low word fractional
  const DoubleDouble x = DoubleDouble(0x1p60) + 0.5;
  EXPECT_EQ(floor(x), DoubleDouble(0x1p60));
}

TEST(DoubleDouble, ComparisonsAreLexicographic) {
  const DoubleDouble one(1.0);
  const DoubleDouble one_plus = one + 0x1p-80;
  EXPECT_LT(one, one_plus);
  EXPECT_GT(one_plus, one);
  EXPECT_LE(one, one);
  EXPECT_NE(one, one_plus);
  EXPECT_LT(-one_plus, -one);
}

TEST(DoubleDouble, LdexpScalesExactly) {
  const DoubleDouble x = DoubleDouble(1.5) + 0x1p-70;
  const DoubleDouble y = ldexp(x, 10);
  EXPECT_EQ(y.hi(), 1536.0);
  EXPECT_EQ(y.lo(), 0x1p-60);
}

TEST(DoubleDouble, MulPwr2IsExact) {
  const DoubleDouble x = DoubleDouble(3.0) + 0x1p-60;
  EXPECT_EQ(mul_pwr2(x, 0.5), DoubleDouble(1.5) + 0x1p-61);
}

TEST(DoubleDouble, ToStringRoundTrips) {
  const DoubleDouble values[] = {
      DoubleDouble(1.0) / 3.0,
      DoubleDouble(2.0).is_zero() ? DoubleDouble(0.0) : sqrt(DoubleDouble(2.0)),
      DoubleDouble(-12345.6789) + 1e-20,
      DoubleDouble(1e-30) + 1e-47,
  };
  for (const auto& v : values) {
    DoubleDouble parsed;
    ASSERT_TRUE(from_string(to_string(v), parsed)) << to_string(v);
    EXPECT_LT(rel_err(parsed, v), 1e-30) << to_string(v);
  }
}

TEST(DoubleDouble, ToStringKnownDigits) {
  // 1/3 to 32 digits.
  EXPECT_EQ(to_string(DoubleDouble(1.0) / 3.0, 10), "3.333333333e-01");
  EXPECT_EQ(to_string(DoubleDouble(0.0)), "0.0000000000000000000000000000000e+00");
  EXPECT_EQ(to_string(DoubleDouble(-2.0), 4), "-2.000e+00");
}

TEST(DoubleDouble, FromStringRejectsGarbage) {
  DoubleDouble out;
  EXPECT_FALSE(from_string("", out));
  EXPECT_FALSE(from_string("abc", out));
  EXPECT_FALSE(from_string("1.5x", out));
  EXPECT_FALSE(from_string("1e", out));
  EXPECT_TRUE(from_string("-1.25e2", out));
  EXPECT_EQ(out, DoubleDouble(-125.0));
}

TEST(DoubleDouble, ParseTenthHasTinyError) {
  DoubleDouble tenth;
  ASSERT_TRUE(from_string("0.1", tenth));
  // 0.1 is not binary-representable; ten tenths must differ from 1 by
  // less than a few dd ulps but generally not exactly.
  DoubleDouble sum(0.0);
  for (int i = 0; i < 10; ++i) sum += tenth;
  EXPECT_LT(abs(sum - 1.0).to_double(), 1e-30);
}

TEST(DoubleDouble, DecimalRoundTripFuzz) {
  // render -> parse must preserve ~30 digits across magnitudes
  std::mt19937_64 rng(31337);
  std::uniform_real_distribution<double> mant(-1.0, 1.0);
  std::uniform_int_distribution<int> expo(-40, 40);
  for (int i = 0; i < 300; ++i) {
    DoubleDouble v =
        (DoubleDouble(mant(rng)) + mant(rng) * 0x1p-53) * std::pow(10.0, expo(rng));
    if (v.is_zero()) continue;
    DoubleDouble parsed;
    ASSERT_TRUE(from_string(to_string(v), parsed)) << to_string(v);
    const double rel = (abs(parsed - v) / abs(v)).to_double();
    EXPECT_LT(rel, 1e-29) << to_string(v);
  }
}

TEST(DoubleDouble, RandomGeneratorFillsLowLimb) {
  polyeval::prec::UniformScalar<DoubleDouble> gen(99);
  bool some_low = false;
  for (int i = 0; i < 32; ++i) {
    const DoubleDouble v = gen();
    EXPECT_LE(std::fabs(v.to_double()), 1.0 + 0x1p-50);
    if (v.lo() != 0.0) some_low = true;
  }
  EXPECT_TRUE(some_low);
}

// Precision ladder: the dd error of a dot-product-like computation should
// be ~2^-104, far below double's 2^-53.
TEST(DoubleDouble, PrecisionBeatsDoubleOnCancellation) {
  // sum of (x + eps) - x over many random x recovers n*eps in dd.
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> dist(1.0, 2.0);
  const double eps = 0x1p-70;
  DoubleDouble acc(0.0);
  double acc_d = 0.0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const double x = dist(rng);
    acc += (DoubleDouble(x) + eps) - x;
    acc_d += (x + eps) - x;
  }
  EXPECT_LT(std::fabs((acc / (n * eps)).to_double() - 1.0), 1e-25);
  EXPECT_EQ(acc_d, 0.0);  // double lost every contribution
}

}  // namespace
