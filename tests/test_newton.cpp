// Newton's method over the evaluators: quadratic convergence on known
// roots, GPU/CPU interchangeability, the quality-up refinement ladder
// (double -> double-double -> quad-double), and failure reporting.

#include <gtest/gtest.h>

#include "ad/cpu_evaluator.hpp"
#include "core/gpu_evaluator.hpp"
#include "newton/newton.hpp"
#include "poly/families.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;
using prec::DoubleDouble;
using prec::QuadDouble;

template <class T>
using C = cplx::Complex<T>;

// f(x, y) = (x^2 + y^2 - 5, x y - 2): four REGULAR roots
// (1,2), (2,1), (-1,-2), (-2,-1) -- the circle crosses the hyperbola
// transversally, so Newton converges quadratically.
poly::PolynomialSystem circle_hyperbola() {
  poly::PolynomialBuilder b0(2), b1(2);
  b0.add_term({1.0, 0.0}, {2, 0});
  b0.add_term({1.0, 0.0}, {0, 2});
  b0.add_constant({-5.0, 0.0});
  b1.add_term({1.0, 0.0}, {1, 1});
  b1.add_constant({-2.0, 0.0});
  return poly::PolynomialSystem({b0.build(), b1.build()});
}

TEST(Newton, ConvergesToKnownRoot) {
  const auto sys = circle_hyperbola();
  ad::CpuEvaluator<double> eval(sys);
  const std::vector<C<double>> x0 = {{1.2, 0.1}, {1.9, -0.1}};
  const auto r = newton::refine<double>(eval, std::span<const C<double>>(x0));
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.final_residual, 1e-12);
  EXPECT_NEAR(r.solution[0].re(), 1.0, 1e-8);
  EXPECT_NEAR(r.solution[0].im(), 0.0, 1e-8);
  EXPECT_NEAR(r.solution[1].re(), 2.0, 1e-8);
}

TEST(Newton, QuadraticConvergenceObserved) {
  const auto sys = circle_hyperbola();
  ad::CpuEvaluator<double> eval(sys);
  const std::vector<C<double>> x0 = {{1.05, 0.0}, {1.95, 0.0}};
  newton::NewtonOptions opts;
  opts.residual_tolerance = 1e-14;
  const auto r = newton::refine<double>(eval, std::span<const C<double>>(x0), opts);
  ASSERT_TRUE(r.converged);
  // residual roughly squares each step until the noise floor
  ASSERT_GE(r.residual_history.size(), 3u);
  for (std::size_t i = 1; i + 1 < r.residual_history.size(); ++i) {
    const double prev = r.residual_history[i - 1];
    const double cur = r.residual_history[i];
    if (prev < 1e-1 && cur > 1e-15) {
      EXPECT_LT(cur, prev * prev * 50.0) << "step " << i;
    }
  }
}

TEST(Newton, GpuEvaluatorPlugsIn) {
  // a uniform random system: refine a perturbed point back to the same
  // solution with CPU and GPU evaluators, identical results.
  poly::SystemSpec spec;
  spec.dimension = 8;
  spec.monomials_per_polynomial = 8;
  spec.variables_per_monomial = 4;
  spec.max_exponent = 2;
  const auto sys = poly::make_random_system(spec);

  const auto x0 = poly::make_random_point<double>(8, 5);
  newton::NewtonOptions opts;
  opts.max_iterations = 6;
  opts.residual_tolerance = 0.0;  // run all 6, compare trajectories

  ad::CpuEvaluator<double> cpu(sys);
  const auto rc = newton::refine<double>(cpu, std::span<const C<double>>(x0), opts);

  simt::Device device;
  core::GpuEvaluator<double> gpu(device, sys);
  const auto rg = newton::refine<double>(gpu, std::span<const C<double>>(x0), opts);

  ASSERT_EQ(rc.solution.size(), rg.solution.size());
  for (std::size_t i = 0; i < rc.solution.size(); ++i)
    EXPECT_LT(cplx::max_abs_diff(rc.solution[i], rg.solution[i]), 1e-12);
}

TEST(Newton, QualityUpLadder) {
  // Refine in double (stalls near 1e-15), widen, refine in dd
  // (~1e-30), widen, refine in qd (~1e-60): the paper's reason to buy
  // GPU cycles for software arithmetic.  The root must be irrational so
  // every precision leaves a nonzero residual: use
  // f = (x^2 + y^2 - 3, x y - 1), whose positive real root is the
  // golden ratio pair (phi, 1/phi).
  poly::PolynomialBuilder b0(2), b1(2);
  b0.add_term({1.0, 0.0}, {2, 0});
  b0.add_term({1.0, 0.0}, {0, 2});
  b0.add_constant({-3.0, 0.0});
  b1.add_term({1.0, 0.0}, {1, 1});
  b1.add_constant({-1.0, 0.0});
  const poly::PolynomialSystem sys({b0.build(), b1.build()});

  ad::CpuEvaluator<double> eval_d(sys);
  const std::vector<C<double>> x0 = {{1.6, 0.05}, {0.63, -0.05}};
  newton::NewtonOptions opts;
  opts.residual_tolerance = 0.0;
  opts.max_iterations = 12;
  const auto rd = newton::refine<double>(eval_d, std::span<const C<double>>(x0), opts);
  EXPECT_LT(rd.final_residual, 1e-14);

  ad::CpuEvaluator<DoubleDouble> eval_dd(sys);
  const auto x_dd = newton::widen_point<DoubleDouble, double>(rd.solution);
  newton::NewtonOptions opts_dd;
  opts_dd.residual_tolerance = 0.0;
  opts_dd.max_iterations = 4;
  const auto rdd =
      newton::refine<DoubleDouble>(eval_dd, std::span<const C<DoubleDouble>>(x_dd), opts_dd);
  EXPECT_LT(rdd.final_residual, 1e-28);

  ad::CpuEvaluator<QuadDouble> eval_qd(sys);
  std::vector<C<QuadDouble>> x_qd;
  for (const auto& z : rdd.solution)
    x_qd.emplace_back(QuadDouble(z.re()), QuadDouble(z.im()));
  newton::NewtonOptions opts_qd;
  opts_qd.residual_tolerance = 0.0;
  opts_qd.max_iterations = 4;
  const auto rqd =
      newton::refine<QuadDouble>(eval_qd, std::span<const C<QuadDouble>>(x_qd), opts_qd);
  EXPECT_LT(rqd.final_residual, 1e-55);

  // the dd rung actually gained precision over double; dd vs qd are both
  // at their respective noise floors (a lucky dd evaluation can land
  // arbitrarily close to zero, so no strict ordering between them).
  EXPECT_LT(rdd.final_residual, rd.final_residual);
}

TEST(Newton, ReportsSingularJacobian) {
  // f = (x^2, y^2) has a singular Jacobian at the double root (0,0);
  // starting exactly on the axis x=y makes J singular immediately...
  // actually J = diag(2x, 2y) is singular only at 0; start there.
  poly::PolynomialBuilder b0(2), b1(2);
  b0.add_term({1.0, 0.0}, {2, 0});
  b1.add_term({1.0, 0.0}, {0, 2});
  const poly::PolynomialSystem sys({b0.build(), b1.build()});
  ad::CpuEvaluator<double> eval(sys);
  const std::vector<C<double>> x0 = {{0.0, 0.0}, {1.0, 0.0}};
  const auto r = newton::refine<double>(eval, std::span<const C<double>>(x0));
  EXPECT_TRUE(r.singular);
  EXPECT_FALSE(r.converged);
}

TEST(Newton, UpdateToleranceStopsEarly) {
  const auto sys = circle_hyperbola();
  ad::CpuEvaluator<double> eval(sys);
  const std::vector<C<double>> x0 = {{1.001, 0.0}, {1.999, 0.0}};
  newton::NewtonOptions opts;
  opts.residual_tolerance = 1e-300;  // unreachable
  opts.update_tolerance = 1e-10;
  opts.max_iterations = 50;
  const auto r = newton::refine<double>(eval, std::span<const C<double>>(x0), opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations, 10u);
}

TEST(Newton, ZeroIterationsReportsInitialResidual) {
  const auto sys = circle_hyperbola();
  ad::CpuEvaluator<double> eval(sys);
  const std::vector<C<double>> x0 = {{1.0, 0.0}, {2.0, 0.0}};  // exact root
  const auto r = newton::refine<double>(eval, std::span<const C<double>>(x0));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_LT(r.final_residual, 1e-14);
}

TEST(Newton, NoonRootRefinement) {
  // noon(3) admits a root near the symmetric solution of
  // 2 s^3 - 1.1 s + 1 = 0 (real negative branch s ~ -1.02); polish it.
  const auto sys = poly::noon(3);
  ad::CpuEvaluator<double> eval(sys);
  // crude bisection seed for 2s^3 - 1.1 s + 1
  double s = -1.0;
  for (int i = 0; i < 30; ++i) {
    const double f = 2 * s * s * s - 1.1 * s + 1.0;
    s -= f / (6 * s * s - 1.1);
  }
  const std::vector<C<double>> x0(3, C<double>(s + 0.01));
  const auto r = newton::refine<double>(eval, std::span<const C<double>>(x0));
  ASSERT_TRUE(r.converged);
  for (const auto& z : r.solution) EXPECT_NEAR(z.re(), s, 1e-6);
}

}  // namespace
