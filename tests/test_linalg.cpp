// Dense complex LU with partial pivoting over all three precisions:
// known systems, random round trips, pivoting necessity, singularity
// detection, and the residual ladder that motivates multiprecision.

#include <gtest/gtest.h>

#include "cplx/complex.hpp"
#include "linalg/lu.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;
using linalg::Matrix;
using prec::DoubleDouble;
using prec::QuadDouble;

template <class T>
using C = cplx::Complex<T>;

TEST(Matrix, MultiplyKnown) {
  Matrix<double> a(2, 2);
  a(0, 0) = {1.0, 0.0};
  a(0, 1) = {2.0, 0.0};
  a(1, 0) = {3.0, 0.0};
  a(1, 1) = {4.0, 0.0};
  const std::vector<C<double>> x = {{1.0, 0.0}, {1.0, 0.0}};
  const auto y = a.multiply(x);
  EXPECT_DOUBLE_EQ(y[0].re(), 3.0);
  EXPECT_DOUBLE_EQ(y[1].re(), 7.0);
}

TEST(Matrix, FromRowMajorValidatesSize) {
  std::vector<C<double>> data(3);
  EXPECT_THROW((void)Matrix<double>::from_row_major(2, 2, data), std::invalid_argument);
}

TEST(Lu, SolvesKnownRealSystem) {
  // [2 1; 1 3] x = [3; 5] -> x = (4/5, 7/5)
  Matrix<double> a(2, 2);
  a(0, 0) = {2.0, 0.0};
  a(0, 1) = {1.0, 0.0};
  a(1, 0) = {1.0, 0.0};
  a(1, 1) = {3.0, 0.0};
  const std::vector<C<double>> b = {{3.0, 0.0}, {5.0, 0.0}};
  const auto x = linalg::lu_solve(a, std::span<const C<double>>(b));
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0].re(), 0.8, 1e-14);
  EXPECT_NEAR((*x)[1].re(), 1.4, 1e-14);
}

TEST(Lu, SolvesComplexSystem) {
  // i * x = 1  ->  x = -i
  Matrix<double> a(1, 1);
  a(0, 0) = {0.0, 1.0};
  const std::vector<C<double>> b = {{1.0, 0.0}};
  const auto x = linalg::lu_solve(a, std::span<const C<double>>(b));
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0].re(), 0.0, 1e-15);
  EXPECT_NEAR((*x)[0].im(), -1.0, 1e-15);
}

TEST(Lu, RequiresPivoting) {
  // zero top-left pivot: fails without row exchange
  Matrix<double> a(2, 2);
  a(0, 0) = {0.0, 0.0};
  a(0, 1) = {1.0, 0.0};
  a(1, 0) = {1.0, 0.0};
  a(1, 1) = {1.0, 0.0};
  const std::vector<C<double>> b = {{2.0, 0.0}, {3.0, 0.0}};
  const auto x = linalg::lu_solve(a, std::span<const C<double>>(b));
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0].re(), 1.0, 1e-14);
  EXPECT_NEAR((*x)[1].re(), 2.0, 1e-14);
}

TEST(Lu, DetectsSingular) {
  Matrix<double> a(2, 2);
  a(0, 0) = {1.0, 0.0};
  a(0, 1) = {2.0, 0.0};
  a(1, 0) = {2.0, 0.0};
  a(1, 1) = {4.0, 0.0};  // rank 1
  const std::vector<C<double>> b = {{1.0, 0.0}, {1.0, 0.0}};
  EXPECT_FALSE(linalg::lu_solve(a, std::span<const C<double>>(b)).has_value());
}

template <class T>
void random_round_trip(unsigned n, double tol, std::uint64_t seed) {
  cplx::UniformComplex<T> gen(seed);
  Matrix<T> a(n, n);
  std::vector<C<T>> x_true(n);
  for (unsigned r = 0; r < n; ++r) {
    x_true[r] = gen();
    for (unsigned c = 0; c < n; ++c) a(r, c) = gen();
  }
  const auto b = a.multiply(x_true);
  const auto x = linalg::lu_solve(a, std::span<const C<T>>(b));
  ASSERT_TRUE(x.has_value());
  double worst = 0.0;
  for (unsigned i = 0; i < n; ++i)
    worst = std::max(worst, cplx::max_abs_diff((*x)[i], x_true[i]));
  EXPECT_LT(worst, tol);
}

template <class T>
void arena_matches_lu_solve(unsigned n, std::uint64_t seed) {
  // LuArena repeats LuFactorization's arithmetic on pre-allocated slots;
  // the solutions must agree BITWISE with the allocating lu_solve.
  cplx::UniformComplex<T> gen(seed);
  const std::size_t batch = 5;
  std::vector<C<T>> a(batch * n * n), b(batch * n), x(batch * n);
  std::vector<unsigned char> singular(batch);
  for (auto& z : a) z = gen();
  for (auto& z : b) z = gen();

  linalg::LuArena<T> arena(n, batch);
  linalg::lu_solve_batch(arena, batch, std::span<const C<T>>(a),
                         std::span<const C<T>>(b), std::span<C<T>>(x),
                         std::span<unsigned char>(singular));

  for (std::size_t i = 0; i < batch; ++i) {
    EXPECT_EQ(singular[i], 0u) << "system " << i;
    const auto mat = Matrix<T>::from_row_major(
        n, n, std::span<const C<T>>(a).subspan(i * n * n, std::size_t{n} * n));
    const auto want =
        linalg::lu_solve(mat, std::span<const C<T>>(b).subspan(i * n, n));
    ASSERT_TRUE(want.has_value()) << "system " << i;
    for (unsigned v = 0; v < n; ++v)
      EXPECT_EQ(cplx::max_abs_diff((*want)[v], x[i * n + v]), 0.0)
          << "system " << i << ", row " << v;
  }
}

TEST(LuArena, BitwiseMatchesLuSolveDouble) { arena_matches_lu_solve<double>(9, 301); }
TEST(LuArena, BitwiseMatchesLuSolveDoubleDouble) {
  arena_matches_lu_solve<DoubleDouble>(6, 302);
}
TEST(LuArena, BitwiseMatchesLuSolveQuadDouble) {
  arena_matches_lu_solve<QuadDouble>(4, 303);
}

TEST(LuArena, FlagsSingularSystemsAndLeavesOthersAlone) {
  // A batch mixing a rank-1 system with healthy ones: only the singular
  // slot is flagged, and its x slice is left untouched.
  const unsigned n = 2;
  cplx::UniformComplex<double> gen(304);
  std::vector<C<double>> a(3 * n * n), b(3 * n);
  std::vector<C<double>> x(3 * n, C<double>{-7.0, -7.0});
  std::vector<unsigned char> singular(3);
  for (auto& z : a) z = gen();
  for (auto& z : b) z = gen();
  a[1 * n * n + 0] = {1.0, 0.0};
  a[1 * n * n + 1] = {2.0, 0.0};
  a[1 * n * n + 2] = {2.0, 0.0};
  a[1 * n * n + 3] = {4.0, 0.0};  // rank 1

  linalg::LuArena<double> arena(n, 3);
  linalg::lu_solve_batch(arena, 3, std::span<const C<double>>(a),
                         std::span<const C<double>>(b), std::span<C<double>>(x),
                         std::span<unsigned char>(singular));
  EXPECT_EQ(singular[0], 0u);
  EXPECT_EQ(singular[1], 1u);
  EXPECT_EQ(singular[2], 0u);
  EXPECT_EQ(x[n].re(), -7.0);  // singular slice untouched
  EXPECT_EQ(x[n].im(), -7.0);
}

TEST(LuArena, ValidatesSlotAndSizes) {
  linalg::LuArena<double> arena(2, 1);
  std::vector<C<double>> a(4), b(2), x(2);
  EXPECT_THROW((void)arena.solve(1, a, b, x), std::invalid_argument);  // bad slot
  EXPECT_THROW((void)arena.solve(0, std::span<const C<double>>(a).subspan(0, 3), b, x),
               std::invalid_argument);
}

TEST(Lu, RandomRoundTripDouble) { random_round_trip<double>(20, 1e-10, 101); }
TEST(Lu, RandomRoundTripDoubleDouble) {
  random_round_trip<DoubleDouble>(12, 1e-26, 102);
}
TEST(Lu, RandomRoundTripQuadDouble) { random_round_trip<QuadDouble>(6, 1e-55, 103); }

TEST(Lu, FactorizationReusableForMultipleRhs) {
  cplx::UniformComplex<double> gen(104);
  Matrix<double> a(8, 8);
  for (unsigned r = 0; r < 8; ++r)
    for (unsigned c = 0; c < 8; ++c) a(r, c) = gen();
  const Matrix<double> a_copy = a;
  auto f = linalg::LuFactorization<double>::factor(std::move(a));
  ASSERT_TRUE(f.has_value());
  for (int rhs = 0; rhs < 3; ++rhs) {
    std::vector<C<double>> b(8);
    for (auto& z : b) z = gen();
    const auto x = f->solve(b);
    const auto back = a_copy.multiply(x);
    for (unsigned i = 0; i < 8; ++i)
      EXPECT_LT(cplx::max_abs_diff(back[i], b[i]), 1e-10);
  }
}

TEST(Lu, ResidualLadderAcrossPrecisions) {
  // Identical ill-conditioned system; the solve residual drops by ~16
  // orders from double to double-double: the numeric core of quality up.
  const unsigned n = 10;
  const auto build = [&](auto tag) {
    using T = decltype(tag);
    Matrix<T> a(n, n);
    for (unsigned r = 0; r < n; ++r)
      for (unsigned c = 0; c < n; ++c)
        a(r, c) = C<T>(T(1.0) / T(static_cast<double>(r + c + 1)));  // Hilbert
    return a;
  };
  const std::vector<C<double>> ones_d(n, C<double>(1.0));

  // double
  Matrix<double> ad = build(double{});
  const auto xd = linalg::lu_solve(ad, std::span<const C<double>>(ones_d));
  ASSERT_TRUE(xd.has_value());
  // solution error vs dd solution is what matters; compute dd version
  Matrix<DoubleDouble> add = build(DoubleDouble{});
  std::vector<C<DoubleDouble>> ones_dd(n, C<DoubleDouble>(DoubleDouble(1.0)));
  const auto xdd = linalg::lu_solve(add, std::span<const C<DoubleDouble>>(ones_dd));
  ASSERT_TRUE(xdd.has_value());

  // Hilbert 10x10 has condition ~1e13: double keeps ~3 digits, dd ~19.
  double disagreement = 0.0;
  for (unsigned i = 0; i < n; ++i) {
    const auto dd_as_d = (*xdd)[i].to_double();
    disagreement = std::max(disagreement, cplx::max_abs_diff((*xd)[i], dd_as_d));
  }
  EXPECT_GT(disagreement, 1e-8);  // double visibly corrupted
  // dd self-consistency: residual in dd arithmetic is tiny relative to
  // the ~1e4-magnitude solution entries.
  std::vector<C<DoubleDouble>> back = add.multiply(*xdd);
  double res_dd = 0.0;
  for (unsigned i = 0; i < n; ++i)
    res_dd = std::max(res_dd, cplx::max_abs_diff(back[i], ones_dd[i]));
  EXPECT_LT(res_dd, 1e-18);
}

TEST(MaxNorm, ComplexVectors) {
  const std::vector<C<double>> v = {{1.0, -2.0}, {0.5, 0.5}, {-3.0, 0.0}};
  EXPECT_DOUBLE_EQ(linalg::max_norm_d<double>(v), 3.0);
}

}  // namespace
