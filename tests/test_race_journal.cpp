// Race journal semantics: SharedRaceJournal epoch/clear behaviour and
// conflicting-thread reporting, GlobalRaceJournal shard growth and
// cross-shard concurrent writes (the TSan CI leg exercises the
// mutex-per-shard locking for real), and the enriched LaunchError a
// detected race produces (kernel name, phase, both thread ids).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "simt/device.hpp"
#include "simt/kernel.hpp"

namespace {

using namespace polyeval::simt;

TEST(SharedRaceJournal, WriteThenForeignReadIsHazardWithBothThreads) {
  detail::SharedRaceJournal journal;
  journal.prepare(8);
  journal.clear();

  EXPECT_FALSE(journal.record(3, /*thread=*/0, /*is_write=*/true));
  unsigned other = ~0u;
  EXPECT_TRUE(journal.record(3, /*thread=*/1, /*is_write=*/false, &other));
  EXPECT_EQ(other, 0u);  // the conflicting first accessor
}

TEST(SharedRaceJournal, ReadersOnlyNeverHazardUntilAWriteArrives) {
  detail::SharedRaceJournal journal;
  journal.prepare(4);
  journal.clear();

  EXPECT_FALSE(journal.record(0, 0, false));
  EXPECT_FALSE(journal.record(0, 1, false));
  EXPECT_FALSE(journal.record(0, 2, false));
  unsigned other = ~0u;
  EXPECT_TRUE(journal.record(0, 3, true, &other));
  EXPECT_NE(other, 3u);  // one of the earlier readers
}

TEST(SharedRaceJournal, ClearExpiresEntriesInConstantTime) {
  detail::SharedRaceJournal journal;
  journal.prepare(2);
  journal.clear();

  EXPECT_FALSE(journal.record(1, 0, true));
  journal.clear();  // phase barrier: epoch bump, no table walk
  // Same word, different thread, new epoch: no hazard -- the previous
  // phase's write is ordered before this one by the barrier.
  EXPECT_FALSE(journal.record(1, 1, true));
  journal.clear();
  // Same-thread accesses never conflict with themselves either.
  EXPECT_FALSE(journal.record(1, 7, true));
  EXPECT_FALSE(journal.record(1, 7, false));
}

TEST(GlobalRaceJournal, ShardGrowsPastInitialCapacityWithoutFalseHazards) {
  detail::GlobalRaceJournal::Shard shard;
  shard.begin_launch();
  // 1000 distinct addresses from one thread: more than the 256 initial
  // slots, so the open-addressing table must grow (and rehash) at least
  // twice without inventing a hazard.
  for (std::uint64_t a = 0; a < 1000; ++a)
    EXPECT_FALSE(shard.record_write(0x1000 + a * 8, /*global_thread=*/0));
  // Re-writing every address from the SAME thread stays clean.
  for (std::uint64_t a = 0; a < 1000; ++a)
    EXPECT_FALSE(shard.record_write(0x1000 + a * 8, 0));
  // A second thread hitting an existing address is the hazard, and the
  // out-param names the prior writer.
  std::uint64_t other = ~0ull;
  EXPECT_TRUE(shard.record_write(0x1000 + 500 * 8, 1, &other));
  EXPECT_EQ(other, 0u);
}

TEST(GlobalRaceJournal, BeginLaunchExpiresPreviousLaunchWrites) {
  detail::GlobalRaceJournal journal;
  journal.begin_launch();
  EXPECT_FALSE(journal.record_write(0xABCD00, 0));
  journal.begin_launch();
  // New launch: the same address by a different thread is NOT a hazard.
  EXPECT_FALSE(journal.record_write(0xABCD00, 1));
}

TEST(GlobalRaceJournal, ConcurrentDisjointWritersAcrossShardsStayClean) {
  detail::GlobalRaceJournal journal;
  journal.begin_launch();

  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 2000;
  std::atomic<std::uint64_t> hazards{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&journal, &hazards, t] {
      // Strided addresses spread every writer over all 16 shards.
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t address = (i * kThreads + t) * 8;
        if (journal.record_write(address, t)) hazards.fetch_add(1);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(hazards.load(), 0u);

  // And a deliberate collision after the storm is still caught.
  std::uint64_t other = ~0ull;
  EXPECT_TRUE(journal.record_write(/*address=*/0, /*global_thread=*/99, &other));
  EXPECT_EQ(other, 0u);  // thread 0 wrote address 0 (i=0, t=0)
}

TEST(GlobalRaceJournal, ConcurrentSameAddressWritersReportExactlyOnePerPair) {
  detail::GlobalRaceJournal journal;
  journal.begin_launch();

  constexpr unsigned kThreads = 4;
  std::atomic<std::uint64_t> hazards{0};
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&journal, &hazards, t] {
      if (journal.record_write(0x42 * 8, t)) hazards.fetch_add(1);
    });
  }
  for (auto& th : pool) th.join();
  // First writer claims the slot; every later distinct thread is a hazard.
  EXPECT_EQ(hazards.load(), kThreads - 1);
}

TEST(RaceDetection, LaunchErrorNamesKernelPhaseAndBothThreads) {
  Device device;
  auto buf = device.alloc_global<double>(4, "RaceBuf");
  device.fill(buf, 0.0);

  Kernel k;
  k.name = "race_probe";
  k.phases.emplace_back([](ThreadContext&) {});  // phase 0: quiet
  k.phases.push_back([buf](ThreadContext& ctx) {
    ctx.store(buf, 0, static_cast<double>(ctx.thread_index()));
  });

  LaunchConfig cfg;
  cfg.grid_blocks = 1;
  cfg.block_threads = 2;
  cfg.detect_races = true;
  try {
    (void)device.launch(k, cfg);
    FAIL() << "double-write went undetected";
  } catch (const LaunchError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("race_probe"), std::string::npos) << msg;
    EXPECT_NE(msg.find("phase 1"), std::string::npos) << msg;
    // The hazard-completing store leads: thread 1 collided with 0's write.
    EXPECT_NE(msg.find("threads 1 and 0"), std::string::npos) << msg;
  }
}

TEST(RaceDetection, SharedHazardReportsBlockAndWord) {
  Device device;

  Kernel k;
  k.name = "shared_race_probe";
  k.phases.push_back([](ThreadContext& ctx) {
    auto tile = ctx.shared_array<double>(0, 2);
    tile.set(0, 1.0);  // every thread writes word 0, same phase
  });

  LaunchConfig cfg;
  cfg.grid_blocks = 1;
  cfg.block_threads = 2;
  cfg.shared_bytes = 2 * sizeof(double);
  cfg.detect_races = true;
  try {
    (void)device.launch(k, cfg);
    FAIL() << "shared double-write went undetected";
  } catch (const LaunchError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("shared_race_probe"), std::string::npos) << msg;
    EXPECT_NE(msg.find("phase 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("block 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("shared word"), std::string::npos) << msg;
  }
}

}  // namespace
