// The batched evaluator: exact agreement with per-point evaluation,
// launch accounting (one upload, three launches, one download per
// batch), argument validation, and the amortization property the
// extension exists for.

#include <gtest/gtest.h>

#include "core/batch_evaluator.hpp"
#include "core/gpu_evaluator.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"

namespace {

using namespace polyeval;
using Cd = cplx::Complex<double>;
using Cdd = cplx::Complex<prec::DoubleDouble>;

poly::PolynomialSystem make(unsigned n, unsigned m, unsigned k, unsigned d) {
  poly::SystemSpec spec;
  spec.dimension = n;
  spec.monomials_per_polynomial = m;
  spec.variables_per_monomial = k;
  spec.max_exponent = d;
  spec.seed = 97;
  return poly::make_random_system(spec);
}

TEST(BatchEvaluator, MatchesPerPointEvaluationExactly) {
  const auto sys = make(8, 6, 4, 3);
  simt::Device d1, d2;
  core::GpuEvaluator<double> single(d1, sys);
  core::BatchGpuEvaluator<double> batch(d2, sys, 5);

  std::vector<std::vector<Cd>> points;
  for (unsigned p = 0; p < 5; ++p)
    points.push_back(poly::make_random_point<double>(8, 200 + p));

  std::vector<poly::EvalResult<double>> batched;
  batch.evaluate(points, batched);
  ASSERT_EQ(batched.size(), 5u);

  for (unsigned p = 0; p < 5; ++p) {
    const auto want = single.evaluate(std::span<const Cd>(points[p]));
    EXPECT_EQ(poly::max_abs_diff(want, batched[p]), 0.0) << "point " << p;
  }
}

TEST(BatchEvaluator, WorksInDoubleDouble) {
  const auto sys = make(6, 4, 3, 2);
  simt::Device d1, d2;
  core::GpuEvaluator<prec::DoubleDouble> single(d1, sys);
  core::BatchGpuEvaluator<prec::DoubleDouble> batch(d2, sys, 3);

  std::vector<std::vector<Cdd>> points;
  for (unsigned p = 0; p < 3; ++p)
    points.push_back(poly::make_random_point<prec::DoubleDouble>(6, 300 + p));

  std::vector<poly::EvalResult<prec::DoubleDouble>> batched;
  batch.evaluate(points, batched);
  for (unsigned p = 0; p < 3; ++p) {
    const auto want = single.evaluate(std::span<const Cdd>(points[p]));
    EXPECT_EQ(poly::max_abs_diff(want, batched[p]), 0.0) << "point " << p;
  }
}

TEST(BatchEvaluator, OneUploadThreeLaunchesOneDownload) {
  const auto sys = make(8, 6, 4, 3);
  simt::Device device;
  core::BatchGpuEvaluator<double> batch(device, sys, 16);
  std::vector<std::vector<Cd>> points;
  for (unsigned p = 0; p < 16; ++p)
    points.push_back(poly::make_random_point<double>(8, 400 + p));
  std::vector<poly::EvalResult<double>> results;
  batch.evaluate(points, results);

  const auto& log = batch.last_log();
  EXPECT_EQ(log.kernels.size(), 3u);
  EXPECT_EQ(log.transfers.transfers_to_device, 1u);
  EXPECT_EQ(log.transfers.transfers_from_device, 1u);
  EXPECT_EQ(log.transfers.bytes_to_device, 16u * 8u * sizeof(Cd));
  EXPECT_EQ(log.transfers.bytes_from_device, 16u * (8u * 8u + 8u) * sizeof(Cd));
}

TEST(BatchEvaluator, GridScalesWithBatch) {
  const auto sys = make(8, 8, 4, 2);  // 64 monomials: 2 blocks of 32
  simt::Device device;
  core::BatchGpuEvaluator<double> batch(device, sys, 4);
  std::vector<std::vector<Cd>> points;
  for (unsigned p = 0; p < 4; ++p)
    points.push_back(poly::make_random_point<double>(8, 500 + p));
  std::vector<poly::EvalResult<double>> results;
  batch.evaluate(points, results);

  EXPECT_EQ(batch.last_log().kernels[0].blocks, 4u * 2u);
  EXPECT_EQ(batch.last_log().kernels[1].blocks, 4u * 2u);
}

TEST(BatchEvaluator, PartialBatchAllowed) {
  const auto sys = make(6, 4, 3, 2);
  simt::Device device;
  core::BatchGpuEvaluator<double> batch(device, sys, 8);
  std::vector<std::vector<Cd>> points = {poly::make_random_point<double>(6, 600),
                                         poly::make_random_point<double>(6, 601)};
  std::vector<poly::EvalResult<double>> results;
  EXPECT_NO_THROW(batch.evaluate(points, results));
  EXPECT_EQ(results.size(), 2u);
}

TEST(BatchEvaluator, ValidatesArguments) {
  const auto sys = make(6, 4, 3, 2);
  simt::Device device;
  EXPECT_THROW(core::BatchGpuEvaluator<double>(device, sys, 0), std::invalid_argument);

  core::BatchGpuEvaluator<double> batch(device, sys, 2);
  std::vector<poly::EvalResult<double>> results;
  std::vector<std::vector<Cd>> none;
  EXPECT_THROW(batch.evaluate(none, results), std::invalid_argument);
  std::vector<std::vector<Cd>> too_many(3, poly::make_random_point<double>(6, 1));
  EXPECT_THROW(batch.evaluate(too_many, results), std::invalid_argument);
  std::vector<std::vector<Cd>> wrong_dim = {std::vector<Cd>(5)};
  EXPECT_THROW(batch.evaluate(wrong_dim, results), std::invalid_argument);
}

TEST(BatchEvaluator, AmortizesTheLaunchFloor) {
  const auto sys = make(32, 22, 9, 2);  // Table 1, 704 monomials
  const simt::DeviceSpec dspec;
  const simt::GpuCostModel gmodel;

  const auto per_eval_us = [&](unsigned batch_size) {
    simt::Device device;
    core::BatchGpuEvaluator<double> batch(device, sys, batch_size);
    std::vector<std::vector<Cd>> points;
    for (unsigned p = 0; p < batch_size; ++p)
      points.push_back(poly::make_random_point<double>(32, 700 + p));
    std::vector<poly::EvalResult<double>> results;
    batch.evaluate(points, results);
    return simt::estimate_log_us(batch.last_log(), dspec, gmodel) / batch_size;
  };

  const double t1 = per_eval_us(1);
  const double t16 = per_eval_us(16);
  EXPECT_LT(t16, 0.5 * t1);  // the fixed floor dominates t1
}

TEST(BatchEvaluator, BatchOfOneMatchesSingleEvaluator) {
  const auto sys = make(8, 6, 4, 3);
  simt::Device d1, d2;
  core::GpuEvaluator<double> single(d1, sys);
  core::BatchGpuEvaluator<double> batch(d2, sys, 1);
  const auto x = poly::make_random_point<double>(8, 800);
  std::vector<poly::EvalResult<double>> results;
  batch.evaluate({x}, results);
  const auto want = single.evaluate(std::span<const Cd>(x));
  EXPECT_EQ(poly::max_abs_diff(want, results[0]), 0.0);
}

}  // namespace
