// Homotopy continuation: start systems, the gamma trick, adaptive path
// tracking, and the all-paths solver on systems with known root counts.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "homotopy/solver.hpp"
#include "poly/families.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;

template <class T>
using C = cplx::Complex<T>;

TEST(StartSystem, DegreesAndBezout) {
  // degrees (1, 2, 3) -> 6 paths
  const auto target = poly::cyclic(3);
  const homotopy::TotalDegreeStart start(target);
  EXPECT_EQ(start.degrees(), (std::vector<unsigned>{1, 2, 3}));
  EXPECT_EQ(start.num_paths(), 6u);
}

TEST(StartSystem, RootsSolveStartSystem) {
  const auto target = poly::cyclic(3);
  const homotopy::TotalDegreeStart start(target);
  for (std::uint64_t p = 0; p < start.num_paths(); ++p) {
    const auto root = start.start_root(p);
    std::vector<C<double>> values(3), jac(9);
    start.system().evaluate_naive<double>(root, values, jac);
    for (const auto& v : values) {
      EXPECT_NEAR(v.re(), 0.0, 1e-12);
      EXPECT_NEAR(v.im(), 0.0, 1e-12);
    }
  }
}

TEST(StartSystem, RootsAreDistinct) {
  const auto target = poly::cyclic(3);
  const homotopy::TotalDegreeStart start(target);
  std::set<std::pair<long, long>> seen;
  for (std::uint64_t p = 0; p < start.num_paths(); ++p) {
    const auto root = start.start_root(p);
    long key1 = 0, key2 = 0;
    for (const auto& z : root) {
      key1 = key1 * 1000003 + std::lround(z.re() * 1e6);
      key2 = key2 * 1000003 + std::lround(z.im() * 1e6);
    }
    EXPECT_TRUE(seen.insert({key1, key2}).second) << "path " << p;
  }
  EXPECT_THROW((void)start.start_root(start.num_paths()), std::out_of_range);
}

TEST(Gamma, DeterministicUnitModulus) {
  const auto g1 = homotopy::random_gamma(7);
  const auto g2 = homotopy::random_gamma(7);
  EXPECT_EQ(g1, g2);
  EXPECT_NEAR(cplx::norm_sqr(g1), 1.0, 1e-12);
  EXPECT_NE(homotopy::random_gamma(8), g1);
}

TEST(Homotopy, EndpointsMatchFAndG) {
  const auto f_sys = poly::noon(3);
  const homotopy::TotalDegreeStart start(f_sys);
  ad::CpuEvaluator<double> f(f_sys);
  ad::CpuEvaluator<double> g(start.system());
  const auto gamma = homotopy::random_gamma(3);
  homotopy::Homotopy<double, ad::CpuEvaluator<double>, ad::CpuEvaluator<double>> h(
      f, g, gamma);

  const auto x = poly::make_random_point<double>(3, 17);
  poly::EvalResult<double> at_t(3), want(3);

  h.set_t(0.0);  // h = gamma * g
  h.evaluate(std::span<const C<double>>(x), at_t);
  g.evaluate(std::span<const C<double>>(x), want);
  const auto gamma_c = C<double>(gamma.re(), gamma.im());
  for (unsigned i = 0; i < 3; ++i)
    EXPECT_LT(cplx::max_abs_diff(at_t.values[i], gamma_c * want.values[i]), 1e-13);

  h.set_t(1.0);  // h = f
  h.evaluate(std::span<const C<double>>(x), at_t);
  f.evaluate(std::span<const C<double>>(x), want);
  EXPECT_LT(poly::max_abs_diff(at_t, want), 1e-13);
}

TEST(Homotopy, DtIsTargetMinusGammaStart) {
  const auto f_sys = poly::noon(3);
  const homotopy::TotalDegreeStart start(f_sys);
  ad::CpuEvaluator<double> f(f_sys);
  ad::CpuEvaluator<double> g(start.system());
  const auto gamma = homotopy::random_gamma(4);
  homotopy::Homotopy<double, ad::CpuEvaluator<double>, ad::CpuEvaluator<double>> h(
      f, g, gamma);

  const auto x = poly::make_random_point<double>(3, 19);
  poly::EvalResult<double> scratch(3), fv(3), gv(3);
  h.set_t(0.37);
  h.evaluate(std::span<const C<double>>(x), scratch);
  const auto dt = h.dt_from_last();
  f.evaluate(std::span<const C<double>>(x), fv);
  g.evaluate(std::span<const C<double>>(x), gv);
  const auto gamma_c = C<double>(gamma.re(), gamma.im());
  for (unsigned i = 0; i < 3; ++i)
    EXPECT_LT(cplx::max_abs_diff(dt[i], fv.values[i] - gamma_c * gv.values[i]), 1e-13);
}

TEST(Tracker, TracksSingleQuadraticPath) {
  // f(x) = x^2 - 4: start system x^2 - 1, paths from 1 and -1 to 2, -2.
  poly::PolynomialBuilder b(1);
  b.add_term({1.0, 0.0}, {2});
  b.add_constant({-4.0, 0.0});
  const poly::PolynomialSystem f_sys({b.build()});
  const homotopy::TotalDegreeStart start(f_sys);
  ASSERT_EQ(start.num_paths(), 2u);

  ad::CpuEvaluator<double> f(f_sys);
  ad::CpuEvaluator<double> g(start.system());
  homotopy::Homotopy<double, ad::CpuEvaluator<double>, ad::CpuEvaluator<double>> h(
      f, g, homotopy::random_gamma(5));
  homotopy::PathTracker<double, ad::CpuEvaluator<double>, ad::CpuEvaluator<double>>
      tracker(h);

  std::set<int> endpoints;
  for (std::uint64_t p = 0; p < 2; ++p) {
    const auto root = start.start_root(p);
    std::vector<C<double>> x0 = {C<double>(root[0].re(), root[0].im())};
    const auto r = tracker.track(std::span<const C<double>>(x0));
    ASSERT_TRUE(r.success) << "path " << p;
    EXPECT_LT(r.final_residual, 1e-12);
    EXPECT_NEAR(std::abs(r.solution[0].re()), 2.0, 1e-8);
    EXPECT_NEAR(r.solution[0].im(), 0.0, 1e-8);
    endpoints.insert(r.solution[0].re() > 0 ? 1 : -1);
  }
  EXPECT_EQ(endpoints.size(), 2u);  // both roots found
}

TEST(Solver, FindsAllRootsOfDecoupledQuadrics) {
  // f = (x^2 - 1, y^2 - 4): four roots (+-1, +-2).
  poly::PolynomialBuilder b0(2), b1(2);
  b0.add_term({1.0, 0.0}, {2, 0});
  b0.add_constant({-1.0, 0.0});
  b1.add_term({1.0, 0.0}, {0, 2});
  b1.add_constant({-4.0, 0.0});
  const poly::PolynomialSystem sys({b0.build(), b1.build()});

  const auto summary = homotopy::solve_total_degree<double>(sys);
  EXPECT_EQ(summary.attempted, 4u);
  EXPECT_EQ(summary.successes, 4u);
  const auto roots = summary.distinct_solutions();
  ASSERT_EQ(roots.size(), 4u);
  for (const auto& r : roots) {
    EXPECT_NEAR(std::abs(r[0].re()), 1.0, 1e-8);
    EXPECT_NEAR(std::abs(r[1].re()), 2.0, 1e-8);
  }
}

TEST(Solver, SolvesCyclic3Completely) {
  const auto sys = poly::cyclic(3);
  const auto summary = homotopy::solve_total_degree<double>(sys);
  EXPECT_EQ(summary.attempted, 6u);
  EXPECT_EQ(summary.successes, 6u);
  // cyclic-3 has 6 isolated solutions (all regular)
  EXPECT_EQ(summary.distinct_solutions(1e-6).size(), 6u);
  // verify each claimed solution against the naive evaluator
  for (const auto& p : summary.paths) {
    std::vector<C<double>> values(3), jac(9);
    sys.evaluate_naive<double>(p.solution, values, jac);
    for (const auto& v : values)
      EXPECT_LT(std::abs(v.re()) + std::abs(v.im()), 1e-9);
  }
}

TEST(Solver, WorkerPoolMatchesSequential) {
  const auto sys = poly::cyclic(3);
  homotopy::SolveOptions seq;
  seq.workers = 1;
  homotopy::SolveOptions par;
  par.workers = 4;
  const auto a = homotopy::solve_total_degree<double>(sys, seq);
  const auto b = homotopy::solve_total_degree<double>(sys, par);
  ASSERT_EQ(a.paths.size(), b.paths.size());
  for (std::size_t i = 0; i < a.paths.size(); ++i) {
    ASSERT_EQ(a.paths[i].success, b.paths[i].success);
    for (std::size_t j = 0; j < a.paths[i].solution.size(); ++j)
      EXPECT_LT(cplx::max_abs_diff(a.paths[i].solution[j], b.paths[i].solution[j]),
                1e-12);
  }
}

TEST(Solver, MaxPathsLimitsWork) {
  const auto sys = poly::cyclic(3);
  homotopy::SolveOptions opts;
  opts.max_paths = 2;
  const auto summary = homotopy::solve_total_degree<double>(sys, opts);
  EXPECT_EQ(summary.attempted, 2u);
  EXPECT_EQ(summary.paths.size(), 2u);
}

TEST(Solver, DoubleDoubleEndgamePolish) {
  // Track in double-double end to end: residuals land near dd epsilon.
  poly::PolynomialBuilder b(1);
  b.add_term({1.0, 0.0}, {2});
  b.add_constant({-2.0, 0.0});
  const poly::PolynomialSystem sys({b.build()});
  homotopy::SolveOptions opts;
  opts.track.end_tolerance = 1e-25;
  const auto summary = homotopy::solve_total_degree<prec::DoubleDouble>(sys, opts);
  EXPECT_EQ(summary.successes, 2u);
  for (const auto& p : summary.paths) {
    EXPECT_LT(p.final_residual, 1e-25);
    EXPECT_NEAR(std::fabs(p.solution[0].re().to_double()), std::sqrt(2.0), 1e-14);
  }
}

}  // namespace
