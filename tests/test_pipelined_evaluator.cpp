// The double-buffered stream pipeline: results BITWISE identical to the
// synchronous FusedGpuEvaluator for double, double-double and
// quad-double across micro-chunk sizes and shard counts 1/2/4, the
// modeled schedule overlaps copies under kernels deterministically, and
// the sharded tracker reproduces its solutions under the pipelined
// backend.

#include <gtest/gtest.h>

#include <string>

#include "core/pipelined_evaluator.hpp"
#include "core/sharded_evaluator.hpp"
#include "homotopy/sharded_solver.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;

poly::PolynomialSystem make_system(unsigned n, unsigned m, unsigned k, unsigned d,
                                   std::uint64_t seed = 77) {
  poly::SystemSpec spec;
  spec.dimension = n;
  spec.monomials_per_polynomial = m;
  spec.variables_per_monomial = k;
  spec.max_exponent = d;
  spec.seed = seed;
  return poly::make_random_system(spec);
}

template <prec::RealScalar S>
std::vector<std::vector<cplx::Complex<S>>> points_for(unsigned batch, unsigned dim,
                                                      std::uint64_t seed) {
  std::vector<std::vector<cplx::Complex<S>>> points;
  for (unsigned p = 0; p < batch; ++p)
    points.push_back(poly::make_random_point<S>(dim, seed + p));
  return points;
}

template <prec::RealScalar S>
void expect_bitwise(const std::vector<poly::EvalResult<S>>& want,
                    const std::vector<poly::EvalResult<S>>& got, const char* label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t p = 0; p < want.size(); ++p)
    EXPECT_EQ(poly::max_abs_diff(want[p], got[p]), 0.0) << label << ", point " << p;
}

/// Pipelined vs synchronous fused, same device class, across micro-chunks.
template <prec::RealScalar S>
void run_chunk_parity(unsigned n, unsigned m, unsigned k, unsigned d, unsigned batch) {
  const auto sys = make_system(n, m, k, d);
  const auto points = points_for<S>(batch, n, 4200);

  std::vector<poly::EvalResult<S>> want;
  {
    simt::Device device;
    typename core::FusedGpuEvaluator<S>::Options opt;
    opt.detect_races = true;
    core::FusedGpuEvaluator<S> fused(device, sys, batch, opt);
    fused.evaluate(points, want);
  }

  for (const unsigned micro : {1u, 2u, 3u, 5u, 8u, batch}) {
    simt::Device device;
    typename core::PipelinedFusedEvaluator<S>::Options opt;
    opt.micro_chunk = micro;
    opt.detect_races = true;  // parity runs with the journals on
    core::PipelinedFusedEvaluator<S> pipelined(device, sys, batch, opt);
    std::vector<poly::EvalResult<S>> got;
    pipelined.evaluate(points, got);
    expect_bitwise(want, got,
                   (std::string("micro_chunk=") + std::to_string(micro)).c_str());
  }
}

TEST(PipelinedParity, DoubleAcrossMicroChunks) { run_chunk_parity<double>(8, 6, 4, 3, 10); }
TEST(PipelinedParity, DoubleWideSystem) { run_chunk_parity<double>(16, 10, 9, 2, 12); }
TEST(PipelinedParity, DoubleDoubleAcrossMicroChunks) {
  run_chunk_parity<prec::DoubleDouble>(6, 4, 3, 2, 10);
}
TEST(PipelinedParity, QuadDoubleAcrossMicroChunks) {
  run_chunk_parity<prec::QuadDouble>(5, 3, 2, 2, 10);
}

TEST(PipelinedParity, AsShardedBackendAcrossShardCounts) {
  // The sharded evaluator drives the pipelined evaluator through the
  // same evaluate_range contract; every shard count must reproduce the
  // synchronous fused results bitwise.
  const auto sys = make_system(8, 6, 4, 3);
  const auto points = points_for<double>(22, 8, 9100);

  std::vector<poly::EvalResult<double>> want;
  {
    simt::Device device;
    core::FusedGpuEvaluator<double> fused(device, sys, 22);
    fused.evaluate(points, want);
  }

  for (const unsigned shards : {1u, 2u, 4u}) {
    using Sharded = core::ShardedEvaluator<double, core::PipelinedFusedEvaluator<double>>;
    Sharded::Options opt;
    opt.shards = shards;
    opt.chunk_points = 5;       // partial tail chunk (22 = 4*5 + 2)
    opt.backend.micro_chunk = 2;  // several pipeline stages per chunk
    Sharded sharded(sys, opt);
    std::vector<poly::EvalResult<double>> got;
    sharded.evaluate(points, got);
    expect_bitwise(want, got,
                   (std::string("shards=") + std::to_string(shards)).c_str());
  }
}

TEST(Pipelined, ModeledScheduleOverlapsAndIsDeterministic) {
  // Transfer-heavy structure (few shallow monomials, full Jacobian
  // download): the pipelined makespan must beat the synchronous
  // schedule, repeat to the bit, and the claimed overlap must match
  // the timelines.
  const auto sys = make_system(16, 4, 2, 2);
  const auto points = points_for<double>(32, 16, 55);

  simt::Device device;
  core::PipelinedFusedEvaluator<double>::Options opt;
  opt.micro_chunk = 8;
  core::PipelinedFusedEvaluator<double> pipelined(device, sys, 32, opt);

  std::vector<poly::EvalResult<double>> results;
  pipelined.evaluate(points, results);
  const double first_pipe = pipelined.modeled_pipelined_us();
  const double first_sync = pipelined.modeled_synchronous_us();
  EXPECT_GT(first_pipe, 0.0);
  EXPECT_GT(first_sync, first_pipe);  // overlap hides transfer latency
  EXPECT_GT(pipelined.modeled_overlap(), 1.0);

  device.clear_log();
  pipelined.evaluate(points, results);
  EXPECT_DOUBLE_EQ(pipelined.modeled_pipelined_us(), first_pipe);
  EXPECT_DOUBLE_EQ(pipelined.modeled_synchronous_us(), first_sync);

  // The makespan is the max end over both stream timelines.
  double max_end = 0.0;
  for (const auto& e : pipelined.copy_stream().timeline())
    max_end = std::max(max_end, e.end_us);
  for (const auto& e : pipelined.compute_stream().timeline())
    max_end = std::max(max_end, e.end_us);
  EXPECT_DOUBLE_EQ(max_end, first_pipe);
}

TEST(Pipelined, LogsCoverEveryMicroChunk) {
  const auto sys = make_system(8, 6, 4, 3);
  const auto points = points_for<double>(10, 8, 77);

  simt::Device device;
  core::PipelinedFusedEvaluator<double>::Options opt;
  opt.micro_chunk = 3;  // chunks: 3 + 3 + 3 + 1
  core::PipelinedFusedEvaluator<double> pipelined(device, sys, 10, opt);
  EXPECT_EQ(pipelined.launches_per_batch(), 4u);

  std::vector<poly::EvalResult<double>> results;
  pipelined.evaluate(points, results);

  const auto& log = pipelined.last_log();
  EXPECT_EQ(log.kernels.size(), 4u);
  std::uint64_t blocks = 0;
  for (const auto& k : log.kernels) {
    EXPECT_EQ(k.kernel, "fused_eval");
    blocks += k.blocks;
  }
  EXPECT_EQ(blocks, 10u);  // one block per point, every point once
  EXPECT_EQ(log.transfers.transfers_to_device, 4u);
  EXPECT_EQ(log.transfers.transfers_from_device, 4u);
  EXPECT_EQ(log.transfers.bytes_to_device,
            10u * 8u * sizeof(cplx::Complex<double>));

  // Streams split the traffic: uploads+downloads on the copy stream,
  // kernels on the compute stream.
  EXPECT_EQ(pipelined.copy_stream().log().transfers.transfers_to_device, 4u);
  EXPECT_EQ(pipelined.copy_stream().log().transfers.transfers_from_device, 4u);
  EXPECT_EQ(pipelined.copy_stream().log().kernels.size(), 0u);
  EXPECT_EQ(pipelined.compute_stream().log().kernels.size(), 4u);
}

TEST(Pipelined, SinglePointAndEvaluateRangeContracts) {
  const auto sys = make_system(6, 4, 3, 2);
  const auto points = points_for<double>(6, 6, 31);

  simt::Device ref_device;
  core::FusedGpuEvaluator<double> fused(ref_device, sys, 6);
  std::vector<poly::EvalResult<double>> want;
  fused.evaluate(points, want);

  simt::Device device;
  core::PipelinedFusedEvaluator<double>::Options opt;
  opt.micro_chunk = 2;
  core::PipelinedFusedEvaluator<double> pipelined(device, sys, 6, opt);

  // Single-point convenience (the tracker-corrector interface).
  poly::EvalResult<double> one;
  pipelined.evaluate(std::span<const cplx::Complex<double>>(points[3]), one);
  EXPECT_EQ(poly::max_abs_diff(want[3], one), 0.0);

  // Sub-ranges write only their slice of the caller's buffer.
  std::vector<poly::EvalResult<double>> got(6);
  pipelined.evaluate_range(points, 2, 3, std::span<poly::EvalResult<double>>(got).subspan(2, 3));
  for (unsigned p = 2; p < 5; ++p)
    EXPECT_EQ(poly::max_abs_diff(want[p], got[p]), 0.0) << p;
}

TEST(Pipelined, ValidatesArguments) {
  const auto sys = make_system(6, 4, 3, 2);
  simt::Device device;
  EXPECT_THROW(core::PipelinedFusedEvaluator<double>(device, sys, 0),
               std::invalid_argument);
  {
    core::PipelinedFusedEvaluator<double>::Options opt;
    opt.micro_chunk = 0;
    EXPECT_THROW(core::PipelinedFusedEvaluator<double>(device, sys, 4, opt),
                 std::invalid_argument);
  }

  core::PipelinedFusedEvaluator<double> pipelined(device, sys, 4);
  std::vector<std::vector<cplx::Complex<double>>> none;
  std::vector<poly::EvalResult<double>> results;
  EXPECT_THROW(pipelined.evaluate(none, results), std::invalid_argument);
  auto points = points_for<double>(5, 6, 3);
  EXPECT_THROW(pipelined.evaluate(points, results), std::invalid_argument);  // > capacity
  std::vector<std::vector<cplx::Complex<double>>> wrong_dim = {
      std::vector<cplx::Complex<double>>(5)};
  EXPECT_THROW(pipelined.evaluate(wrong_dim, results), std::invalid_argument);
}

TEST(PipelinedTracker, ShardedSolverReproducesUnderPipelinedBackend) {
  // The sharded tracker's solutions must be bitwise independent of the
  // per-shard evaluator backend (both run the same fused kernel).
  const auto target = make_system(3, 3, 2, 2, 5);

  homotopy::ShardedSolveOptions fused_opt;
  fused_opt.shards = 2;
  fused_opt.max_paths = 4;
  const auto want = homotopy::solve_total_degree_sharded<double>(target, fused_opt);

  auto piped_opt = fused_opt;
  piped_opt.backend = homotopy::ShardEvalBackend::kPipelined;
  const auto got = homotopy::solve_total_degree_sharded<double>(target, piped_opt);

  ASSERT_EQ(want.paths.size(), got.paths.size());
  EXPECT_EQ(want.successes, got.successes);
  for (std::size_t p = 0; p < want.paths.size(); ++p) {
    ASSERT_EQ(want.paths[p].success, got.paths[p].success) << p;
    ASSERT_EQ(want.paths[p].solution.size(), got.paths[p].solution.size()) << p;
    for (std::size_t i = 0; i < want.paths[p].solution.size(); ++i) {
      EXPECT_EQ(want.paths[p].solution[i].re(), got.paths[p].solution[i].re())
          << p << "," << i;
      EXPECT_EQ(want.paths[p].solution[i].im(), got.paths[p].solution[i].im())
          << p << "," << i;
    }
  }
}

}  // namespace
