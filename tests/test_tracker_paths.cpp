// Path-tracker control flow: step adaptation, failure modes (min-step
// exhaustion, step caps), and option plumbing -- the paths not covered
// by the happy-path solver tests.

#include <gtest/gtest.h>

#include "homotopy/solver.hpp"
#include "poly/families.hpp"
#include "poly/io.hpp"

namespace {

using namespace polyeval;
using Cd = cplx::Complex<double>;
using Eval = ad::CpuEvaluator<double>;

struct Fixture {
  poly::PolynomialSystem target;
  homotopy::TotalDegreeStart start;
  Eval f, g;
  homotopy::Homotopy<double, Eval, Eval> h;

  explicit Fixture(const poly::PolynomialSystem& sys, std::uint64_t gamma_seed = 5)
      : target(sys),
        start(target),
        f(target),
        g(start.system()),
        h(f, g, homotopy::random_gamma(gamma_seed)) {}
};

std::vector<Cd> widen(const std::vector<Cd>& v) { return v; }

TEST(TrackerPaths, MaxStepsCapsWork) {
  Fixture fx(poly::parse_system("x0^2 - 4;"));
  homotopy::TrackOptions opts;
  opts.max_steps = 3;
  opts.initial_step = 1e-4;  // far too small to reach t = 1 in 3 steps
  homotopy::PathTracker<double, Eval, Eval> tracker(fx.h, opts);
  const auto root = fx.start.start_root(0);
  const auto r = tracker.track(std::span<const Cd>(widen(root)));
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.status, homotopy::PathStatus::kStalled);
  EXPECT_FALSE(r.classified());
  EXPECT_LT(r.t_reached, 1.0);
  EXPECT_LE(r.steps + r.rejections, 3u);
}

TEST(TrackerPaths, StepGrowthReducesStepCount) {
  Fixture fx(poly::parse_system("x0^2 - 4;"));
  homotopy::TrackOptions fast;
  fast.initial_step = 0.01;
  fast.step_growth = 2.0;
  fast.growth_after = 1;
  fast.max_step = 0.5;
  homotopy::TrackOptions slow = fast;
  slow.step_growth = 1.0;  // never grows: ~100 fixed steps

  homotopy::PathTracker<double, Eval, Eval> t_fast(fx.h, fast);
  homotopy::PathTracker<double, Eval, Eval> t_slow(fx.h, slow);
  const auto root = fx.start.start_root(0);
  const auto r_fast = t_fast.track(std::span<const Cd>(widen(root)));
  const auto r_slow = t_slow.track(std::span<const Cd>(widen(root)));
  ASSERT_TRUE(r_fast.success);
  ASSERT_TRUE(r_slow.success);
  EXPECT_LT(r_fast.steps, r_slow.steps / 2);
  EXPECT_GE(r_slow.steps, 90u);
}

TEST(TrackerPaths, TightCorrectorToleranceStillConverges) {
  Fixture fx(poly::parse_system("x0^2 - 4;"));
  homotopy::TrackOptions opts;
  opts.corrector_tolerance = 1e-13;
  opts.corrector_iterations = 8;
  homotopy::PathTracker<double, Eval, Eval> tracker(fx.h, opts);
  const auto root = fx.start.start_root(1);
  const auto r = tracker.track(std::span<const Cd>(widen(root)));
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.status, homotopy::PathStatus::kConverged);
  EXPECT_TRUE(r.classified());
  EXPECT_LT(r.final_residual, 1e-12);
}

TEST(TrackerPaths, RejectionsAreCounted) {
  // A very loose corrector budget with a huge initial step forces
  // rejections before the halving finds a workable step.
  Fixture fx(poly::parse_system("x0^4 - 16;"), 11);
  homotopy::TrackOptions opts;
  opts.initial_step = 0.9;
  opts.max_step = 0.9;
  opts.corrector_iterations = 2;
  opts.corrector_tolerance = 1e-11;
  homotopy::PathTracker<double, Eval, Eval> tracker(fx.h, opts);
  unsigned total_rejections = 0;
  for (std::uint64_t p = 0; p < fx.start.num_paths(); ++p) {
    const auto root = fx.start.start_root(p);
    const auto r = tracker.track(std::span<const Cd>(widen(root)));
    total_rejections += r.rejections;
    if (r.success) {
      EXPECT_NEAR(std::abs(r.solution[0].re()) + std::abs(r.solution[0].im()), 2.0,
                  1e-6);
    }
  }
  EXPECT_GT(total_rejections, 0u);
}

TEST(TrackerPaths, DivergedPolishKeepsTrackedPoint) {
  // An endgame forced to fail (one Newton step against an impossible
  // tolerance) must NOT replace the tracked point with the diverged
  // iterate: the result equals a no-polish run bit for bit, and the
  // reported residual is the tracked point's residual at t = 1.  The
  // root is irrational, so no double iterate ever reaches residual 0.
  Fixture fx(poly::parse_system("x0^2 - 2;"));
  homotopy::TrackOptions no_polish;
  no_polish.end_iterations = 0;
  no_polish.end_tolerance = 0.0;  // unreachable: polish can never converge
  homotopy::TrackOptions bad_polish = no_polish;
  bad_polish.end_iterations = 1;  // one step that moves the point, then fails

  const auto root = fx.start.start_root(0);
  homotopy::PathTracker<double, Eval, Eval> t_none(fx.h, no_polish);
  homotopy::PathTracker<double, Eval, Eval> t_bad(fx.h, bad_polish);
  const auto r_none = t_none.track(std::span<const Cd>(widen(root)));
  const auto r_bad = t_bad.track(std::span<const Cd>(widen(root)));

  EXPECT_FALSE(r_none.success);
  EXPECT_FALSE(r_bad.success);
  // Reached t = 1 but failed the residual test: diverged, not stalled.
  EXPECT_EQ(r_none.status, homotopy::PathStatus::kDiverged);
  EXPECT_EQ(r_bad.status, homotopy::PathStatus::kDiverged);
  ASSERT_EQ(r_none.solution.size(), r_bad.solution.size());
  for (std::size_t i = 0; i < r_none.solution.size(); ++i)
    EXPECT_EQ(cplx::max_abs_diff(r_none.solution[i], r_bad.solution[i]), 0.0)
        << "coordinate " << i;
  EXPECT_EQ(r_none.final_residual, r_bad.final_residual);
  EXPECT_GT(r_bad.final_residual, 0.0);
  // The kept point is still an (unpolished) root of x^2 = 2.
  EXPECT_NEAR(std::abs(r_bad.solution[0].re()) + std::abs(r_bad.solution[0].im()),
              std::sqrt(2.0), 1e-6);
}

TEST(TrackerPaths, MidTrackExitReportsResidual) {
  // A path dying before t = 1 (max_steps exhaustion) reports the
  // residual of where it stopped instead of the former 0.0 placeholder.
  Fixture fx(poly::parse_system("x0^2 - 4;"));
  homotopy::TrackOptions opts;
  opts.max_steps = 3;
  opts.initial_step = 1e-4;
  homotopy::PathTracker<double, Eval, Eval> tracker(fx.h, opts);
  const auto root = fx.start.start_root(0);
  const auto r = tracker.track(std::span<const Cd>(widen(root)));
  ASSERT_FALSE(r.success);
  EXPECT_EQ(r.status, homotopy::PathStatus::kStalled);
  ASSERT_LT(r.t_reached, 1.0);
  EXPECT_GT(r.final_residual, 0.0);
  EXPECT_LT(r.final_residual, 1.0);  // the corrector kept it on the path
}

TEST(TrackerPaths, QuarticRootsAllFound) {
  // x^4 = 16: roots 2, -2, 2i, -2i; all four paths land on distinct ones.
  const auto sys = poly::parse_system("x0^4 - 16;");
  const auto summary = homotopy::solve_total_degree<double>(sys);
  EXPECT_EQ(summary.attempted, 4u);
  EXPECT_EQ(summary.successes, 4u);
  EXPECT_EQ(summary.distinct_solutions(1e-6).size(), 4u);
}

TEST(TrackerPaths, NoonSystemSolves) {
  // noon(2): f_i = x_i x_j^2 - 1.1 x_i + 1, Bezout 9.
  const auto sys = poly::noon(2);
  homotopy::SolveOptions opts;
  opts.track.max_steps = 5000;
  const auto summary = homotopy::solve_total_degree<double>(sys, opts);
  EXPECT_EQ(summary.attempted, 9u);
  EXPECT_GE(summary.successes, 5u);  // noon(2) has fewer finite roots than 9
  // every success really solves the system
  for (const auto& p : summary.paths) {
    if (!p.success) continue;
    std::vector<Cd> values(2), jac(4);
    sys.evaluate_naive<double>(p.solution, values, jac);
    for (const auto& v : values)
      EXPECT_LT(std::abs(v.re()) + std::abs(v.im()), 1e-9);
  }
}

}  // namespace
