// The SIMT engine: launch geometry, phase barriers, coalescing analysis,
// shared-memory bank conflicts, divergence accounting and occupancy.

#include <gtest/gtest.h>

#include <numeric>

#include "simt/device.hpp"

namespace {

using namespace polyeval::simt;

TEST(Launch, ValidatesConfiguration) {
  Device device;
  Kernel noop{"noop", {[](ThreadContext&) {}}};
  EXPECT_THROW((void)device.launch(noop, {0, 32, 0}), LaunchError);
  EXPECT_THROW((void)device.launch(noop, {1, 0, 0}), LaunchError);
  EXPECT_THROW((void)device.launch(noop, {1, 2048, 0}), LaunchError);  // > 1024
  EXPECT_THROW((void)device.launch(noop, {1, 32, 50000}), LaunchError);  // > 48K shared
  EXPECT_NO_THROW((void)device.launch(noop, {1, 32, 49152}));
}

TEST(Launch, ThreadIdentitiesCoverTheGrid) {
  Device device;
  auto buf = device.alloc_global<int>(4 * 64, "ids");
  device.fill(buf, -1);
  Kernel kernel{"ids",
                {[buf](ThreadContext& ctx) {
                  ctx.store(buf, ctx.global_thread_index(),
                            static_cast<int>(ctx.block_index() * 1000 + ctx.thread_index()));
                }}};
  (void)device.launch(kernel, {4, 64, 0});
  std::vector<int> host(4 * 64);
  device.download(buf, std::span<int>(host));
  for (unsigned b = 0; b < 4; ++b)
    for (unsigned t = 0; t < 64; ++t)
      EXPECT_EQ(host[b * 64 + t], static_cast<int>(b * 1000 + t));
}

TEST(Launch, LaneAndWarpDerivedFromThread) {
  Device device;
  auto lanes = device.alloc_global<unsigned>(64, "lanes");
  auto warps = device.alloc_global<unsigned>(64, "warps");
  Kernel kernel{"lanes",
                {[lanes, warps](ThreadContext& ctx) {
                  ctx.store(lanes, ctx.thread_index(), ctx.lane());
                  ctx.store(warps, ctx.thread_index(), ctx.warp());
                }}};
  (void)device.launch(kernel, {1, 64, 0});
  for (unsigned t = 0; t < 64; ++t) {
    EXPECT_EQ(lanes.raw()[t], t % 32);
    EXPECT_EQ(warps.raw()[t], t / 32);
  }
}

TEST(Launch, PhasesActAsBarriers) {
  // Phase 1 writes shared; phase 2 reads a *different* thread's slot.
  // Without a barrier between phases this would read garbage.
  Device device;
  const unsigned b = 32;
  auto out = device.alloc_global<int>(b, "out");
  Kernel kernel{"barrier",
                {
                    [](ThreadContext& ctx) {
                      auto sh = ctx.shared_array<int>(0, 32);
                      sh.set(ctx.thread_index(), static_cast<int>(ctx.thread_index()) + 100);
                    },
                    [out](ThreadContext& ctx) {
                      auto sh = ctx.shared_array<int>(0, 32);
                      const unsigned other = 31 - ctx.thread_index();
                      ctx.store(out, ctx.thread_index(), sh.get(other));
                    },
                }};
  (void)device.launch(kernel, {1, b, 32 * sizeof(int)});
  for (unsigned t = 0; t < b; ++t) EXPECT_EQ(out.raw()[t], static_cast<int>(131 - t));
}

TEST(Launch, SharedMemoryIsPerBlock) {
  // Each block writes its block index into shared and reads it back;
  // blocks must not see each other's values.
  Device device;
  auto out = device.alloc_global<int>(8 * 32, "out");
  Kernel kernel{"per_block",
                {
                    [](ThreadContext& ctx) {
                      auto sh = ctx.shared_array<int>(0, 1);
                      if (ctx.thread_index() == 0)
                        sh.set(0, static_cast<int>(ctx.block_index()));
                    },
                    [out](ThreadContext& ctx) {
                      auto sh = ctx.shared_array<int>(0, 1);
                      ctx.store(out, ctx.global_thread_index(), sh.get(0));
                    },
                }};
  (void)device.launch(kernel, {8, 32, sizeof(int)});
  for (unsigned b = 0; b < 8; ++b)
    for (unsigned t = 0; t < 32; ++t)
      EXPECT_EQ(out.raw()[b * 32 + t], static_cast<int>(b));
}

TEST(Stats, OpCountsAndPerThreadMax) {
  Device device;
  Kernel kernel{"ops", {[](ThreadContext& ctx) {
                  ctx.op_cmul(ctx.thread_index() + 1);  // thread t: t+1 muls
                  ctx.op_cadd(2);
                }}};
  const auto stats = device.launch(kernel, {1, 4, 0});
  EXPECT_EQ(stats.complex_mul_total, 1u + 2 + 3 + 4);
  EXPECT_EQ(stats.complex_add_total, 8u);
  EXPECT_EQ(stats.complex_mul_per_thread_max, 4u);
  EXPECT_EQ(stats.complex_add_per_thread_max, 2u);
}

TEST(Coalescing, ConsecutiveDoublesAreMinimal) {
  // 32 lanes x 8 bytes consecutive = 256 bytes = 2 segments of 128.
  Device device;
  auto buf = device.alloc_global<double>(32, "data");
  Kernel kernel{"coalesced", {[buf](ThreadContext& ctx) {
                  (void)ctx.load(buf, ctx.thread_index());
                }}};
  const auto stats = device.launch(kernel, {1, 32, 0});
  EXPECT_EQ(stats.global_load_requests, 1u);
  EXPECT_EQ(stats.global_load_transactions, 2u);
  EXPECT_EQ(stats.global_bytes_loaded, 256u);
}

TEST(Coalescing, StridedAccessExplodes) {
  // stride of 128 bytes: every lane touches its own segment.
  Device device;
  auto buf = device.alloc_global<double>(32 * 16, "data");
  Kernel kernel{"strided", {[buf](ThreadContext& ctx) {
                  (void)ctx.load(buf, std::size_t{ctx.thread_index()} * 16);
                }}};
  const auto stats = device.launch(kernel, {1, 32, 0});
  EXPECT_EQ(stats.global_load_requests, 1u);
  EXPECT_EQ(stats.global_load_transactions, 32u);
  EXPECT_LT(stats.load_coalescing_ratio(), 0.04);
}

TEST(Coalescing, BroadcastIsOneTransaction) {
  Device device;
  auto buf = device.alloc_global<double>(4, "data");
  Kernel kernel{"broadcast",
                {[buf](ThreadContext& ctx) { (void)ctx.load(buf, 0); }}};
  const auto stats = device.launch(kernel, {1, 32, 0});
  EXPECT_EQ(stats.global_load_transactions, 1u);
}

TEST(Coalescing, StoresTrackedSeparately) {
  Device device;
  auto buf = device.alloc_global<double>(64, "data");
  Kernel kernel{"stores", {[buf](ThreadContext& ctx) {
                  ctx.store(buf, ctx.thread_index(), 1.0);
                  ctx.store(buf, 32 + ctx.thread_index(), 2.0);
                }}};
  const auto stats = device.launch(kernel, {1, 32, 0});
  EXPECT_EQ(stats.global_store_requests, 2u);
  EXPECT_EQ(stats.global_store_transactions, 4u);  // 2 coalesced stores
  EXPECT_EQ(stats.global_load_requests, 0u);
}

TEST(Coalescing, OrdinalGroupingSeparatesInstructions) {
  // Two loads per lane at very different addresses: must form TWO
  // requests (grouped by ordinal), each coalesced -- not one scattered
  // request.
  Device device;
  auto buf = device.alloc_global<double>(1024, "data");
  Kernel kernel{"two_loads", {[buf](ThreadContext& ctx) {
                  (void)ctx.load(buf, ctx.thread_index());
                  (void)ctx.load(buf, 512 + ctx.thread_index());
                }}};
  const auto stats = device.launch(kernel, {1, 32, 0});
  EXPECT_EQ(stats.global_load_requests, 2u);
  EXPECT_EQ(stats.global_load_transactions, 4u);
}

TEST(BankConflicts, ConflictFreeUnitStride) {
  // lane i accesses word i: all 32 banks hit once.
  Device device;
  Kernel kernel{"unit", {[](ThreadContext& ctx) {
                  auto sh = ctx.shared_array<float>(0, 32);
                  sh.set(ctx.thread_index(), 1.0f);
                }}};
  const auto stats = device.launch(kernel, {1, 32, 32 * sizeof(float)});
  EXPECT_EQ(stats.shared_requests, 1u);
  EXPECT_EQ(stats.shared_cycles, 1u);
  EXPECT_EQ(stats.bank_conflict_cycles(), 0u);
}

TEST(BankConflicts, Stride32IsWorstCase) {
  // lane i accesses word 32*i: all lanes in bank 0 -> 32-way conflict.
  Device device;
  Kernel kernel{"worst", {[](ThreadContext& ctx) {
                  auto sh = ctx.shared_array<float>(0, 32 * 32);
                  sh.set(std::size_t{ctx.thread_index()} * 32, 1.0f);
                }}};
  const auto stats = device.launch(kernel, {1, 32, 32 * 32 * sizeof(float)});
  EXPECT_EQ(stats.shared_requests, 1u);
  EXPECT_EQ(stats.shared_cycles, 32u);
  EXPECT_EQ(stats.bank_conflict_cycles(), 31u);
}

TEST(BankConflicts, SameWordBroadcasts) {
  Device device;
  Kernel kernel{"bcast", {[](ThreadContext& ctx) {
                  auto sh = ctx.shared_array<float>(0, 32);
                  (void)ctx.thread_index();
                  (void)sh.get(7);
                }}};
  const auto stats = device.launch(kernel, {1, 32, 32 * sizeof(float)});
  EXPECT_EQ(stats.shared_cycles, 1u);  // broadcast, no serialization
}

TEST(Divergence, InactiveLanesAreCounted) {
  Device device;
  Kernel kernel{"tail", {[](ThreadContext& ctx) {
                  if (ctx.global_thread_index() >= 40) ctx.mark_inactive();
                }}};
  const auto stats = device.launch(kernel, {2, 32, 0});  // 64 threads, 40 active
  EXPECT_EQ(stats.inactive_lane_phases, 24u);
}

TEST(Occupancy, SharedMemoryLimitsResidency) {
  Device device;
  Kernel noop{"noop", {[](ThreadContext&) {}}};
  // 20 KB per block: only 2 blocks fit in 48 KB.
  auto stats = device.launch(noop, {28, 32, 20 * 1024});
  EXPECT_EQ(stats.concurrent_blocks_per_sm, 2u);
  EXPECT_EQ(stats.waves, 1u);  // 28 blocks <= 14 SMs * 2
  // tiny blocks: the Fermi max of 8 applies
  stats = device.launch(noop, {1000, 32, 0});
  EXPECT_EQ(stats.concurrent_blocks_per_sm, 8u);
  EXPECT_EQ(stats.waves, 9u);  // ceil(1000 / 112)
}

TEST(Occupancy, ThreadLimitCapsResidency) {
  Device device;
  Kernel noop{"noop", {[](ThreadContext&) {}}};
  // 1024-thread blocks: 1536/1024 -> 1 resident block per SM.
  const auto stats = device.launch(noop, {14, 1024, 0});
  EXPECT_EQ(stats.concurrent_blocks_per_sm, 1u);
  EXPECT_EQ(stats.warps_per_block, 32u);
}

TEST(Occupancy, BusiestSmSerialization) {
  Device device;
  Kernel noop{"noop", {[](ThreadContext&) {}}};
  // 22 blocks of one warp each over 14 SMs: busiest SM has 2 warps.
  const auto stats = device.launch(noop, {22, 32, 0});
  EXPECT_EQ(stats.warps_on_busiest_sm, 2u);
}

TEST(Launch, DeterministicAcrossRuns) {
  // Blocks run on a pool: results and stats must not depend on timing.
  Device device;
  auto buf = device.alloc_global<double>(256, "acc");
  Kernel kernel{"work", {[buf](ThreadContext& ctx) {
                  const auto i = ctx.global_thread_index();
                  ctx.store(buf, i, static_cast<double>(i) * 1.5);
                  ctx.op_cmul(3);
                }}};
  const auto s1 = device.launch(kernel, {8, 32, 0});
  std::vector<double> first(256);
  device.download(buf, std::span<double>(first));
  const auto s2 = device.launch(kernel, {8, 32, 0});
  std::vector<double> second(256);
  device.download(buf, std::span<double>(second));
  EXPECT_EQ(first, second);
  EXPECT_EQ(s1.complex_mul_total, s2.complex_mul_total);
  EXPECT_EQ(s1.global_store_transactions, s2.global_store_transactions);
}

TEST(Launch, LogAccumulatesKernels) {
  Device device;
  Kernel noop{"first", {[](ThreadContext&) {}}};
  Kernel noop2{"second", {[](ThreadContext&) {}}};
  (void)device.launch(noop, {1, 32, 0});
  (void)device.launch(noop2, {1, 32, 0});
  ASSERT_EQ(device.log().kernels.size(), 2u);
  EXPECT_EQ(device.log().kernels[0].kernel, "first");
  EXPECT_EQ(device.log().kernels[1].kernel, "second");
  device.clear_log();
  EXPECT_TRUE(device.log().kernels.empty());
}

TEST(RaceDetection, SharedWriteWriteHazardThrows) {
  // every thread writes shared word 0 in the same phase
  Device device;
  Kernel racy{"racy_shared", {[](ThreadContext& ctx) {
                auto sh = ctx.shared_array<int>(0, 1);
                sh.set(0, static_cast<int>(ctx.thread_index()));
              }}};
  EXPECT_THROW((void)device.launch(racy, {1, 32, sizeof(int)}), LaunchError);
}

TEST(RaceDetection, SharedReadWriteHazardThrows) {
  // thread 0 writes the word every other thread reads, no barrier between
  Device device;
  Kernel racy{"racy_rw", {[](ThreadContext& ctx) {
                auto sh = ctx.shared_array<int>(0, 1);
                if (ctx.thread_index() == 0)
                  sh.set(0, 7);
                else
                  (void)sh.get(0);
              }}};
  EXPECT_THROW((void)device.launch(racy, {1, 32, sizeof(int)}), LaunchError);
}

TEST(RaceDetection, BarrierSeparatedAccessesAreClean) {
  // the same pattern split across phases is the CORRECT idiom
  Device device;
  Kernel clean{"clean",
               {
                   [](ThreadContext& ctx) {
                     auto sh = ctx.shared_array<int>(0, 1);
                     if (ctx.thread_index() == 0) sh.set(0, 7);
                   },
                   [](ThreadContext& ctx) {
                     auto sh = ctx.shared_array<int>(0, 1);
                     (void)sh.get(0);
                   },
               }};
  EXPECT_NO_THROW((void)device.launch(clean, {1, 32, sizeof(int)}));
}

TEST(RaceDetection, GlobalDoubleWriteThrows) {
  Device device;
  auto buf = device.alloc_global<int>(4, "shared_slot");
  Kernel racy{"racy_global", {[buf](ThreadContext& ctx) {
                ctx.store(buf, 0, static_cast<int>(ctx.global_thread_index()));
              }}};
  EXPECT_THROW((void)device.launch(racy, {2, 32, 0}), LaunchError);
}

TEST(RaceDetection, GlobalDoubleWriteAcrossBlocksDetected) {
  // blocks write overlapping ranges: thread t of each block writes t
  Device device;
  auto buf = device.alloc_global<int>(32, "overlap");
  Kernel racy{"racy_blocks", {[buf](ThreadContext& ctx) {
                ctx.store(buf, ctx.thread_index(), 1);
              }}};
  EXPECT_THROW((void)device.launch(racy, {2, 32, 0}), LaunchError);
  // the same kernel with one block is fine
  EXPECT_NO_THROW((void)device.launch(racy, {1, 32, 0}));
}

TEST(RaceDetection, OptOutRecordsInsteadOfThrowing) {
  Device device;
  Kernel racy{"racy_shared", {[](ThreadContext& ctx) {
                auto sh = ctx.shared_array<int>(0, 1);
                sh.set(0, static_cast<int>(ctx.thread_index()));
              }}};
  LaunchConfig cfg{1, 32, sizeof(int)};
  cfg.detect_races = false;
  EXPECT_NO_THROW((void)device.launch(racy, cfg));
}

TEST(RaceDetection, SameThreadRepeatedWritesAreClean) {
  Device device;
  Kernel clean{"accumulate", {[](ThreadContext& ctx) {
                 auto sh = ctx.shared_array<int>(0, 32);
                 for (int i = 0; i < 4; ++i) sh.set(ctx.thread_index(), i);
               }}};
  EXPECT_NO_THROW((void)device.launch(clean, {1, 32, 32 * sizeof(int)}));
}

TEST(Launch, PartialLastWarpStillGrouped) {
  // 40 threads = one full warp + one 8-lane warp; accesses still coalesce
  // within each warp.
  Device device;
  auto buf = device.alloc_global<double>(64, "data");
  Kernel kernel{"partial", {[buf](ThreadContext& ctx) {
                  (void)ctx.load(buf, ctx.thread_index());
                }}};
  const auto stats = device.launch(kernel, {1, 40, 0});
  EXPECT_EQ(stats.global_load_requests, 2u);   // two warps
  EXPECT_EQ(stats.global_load_transactions, 3u);  // 2 + 1 segments
}

}  // namespace
