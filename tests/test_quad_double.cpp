// Quad-double arithmetic: renormalization invariants, ~2^-209 accuracy
// on algebraic identities, and interaction with double-double.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "prec/quad_double.hpp"
#include "prec/random.hpp"
#include "prec/scalar_traits.hpp"

namespace {

using polyeval::prec::DoubleDouble;
using polyeval::prec::QuadDouble;
using polyeval::prec::ScalarTraits;

double rel_err(const QuadDouble& actual, const QuadDouble& expected) {
  const QuadDouble diff = abs(actual - expected);
  const QuadDouble mag = abs(expected);
  if (mag.is_zero()) return diff.to_double();
  return (diff / mag).to_double();
}

QuadDouble random_qd(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  QuadDouble q(dist(rng));
  q += dist(rng) * 0x1p-53;
  q += dist(rng) * 0x1p-106;
  q += dist(rng) * 0x1p-159;
  return q;
}

TEST(QuadDouble, StoresFourLimbs) {
  QuadDouble q(1.0);
  q += 0x1p-60;
  q += 0x1p-120;
  q += 0x1p-180;
  EXPECT_EQ(q[0], 1.0);
  EXPECT_EQ(q[1], 0x1p-60);
  EXPECT_EQ(q[2], 0x1p-120);
  EXPECT_EQ(q[3], 0x1p-180);
}

TEST(QuadDouble, RenormalizationMergesOverlappingLimbs) {
  // renorm requires roughly-decreasing inputs (quick_two_sum
  // preconditions); overlapping components must merge into the minimal
  // representation.
  const QuadDouble q = QuadDouble::renormed(1.0, 0.5, 0.25, 0.125);
  EXPECT_EQ(q[0], 1.875);
  EXPECT_EQ(q[1], 0.0);
  EXPECT_EQ(q[2], 0.0);
  EXPECT_EQ(q[3], 0.0);

  const QuadDouble r = QuadDouble::renormed(1.0, 0x1p-60, 0x1p-120, 0x1p-180);
  EXPECT_EQ(r[0], 1.0);
  EXPECT_EQ(r[1], 0x1p-60);
  EXPECT_EQ(r[2], 0x1p-120);
  EXPECT_EQ(r[3], 0x1p-180);
}

TEST(QuadDouble, CancellationAcrossAllLimbs) {
  QuadDouble q(1.0);
  q += 0x1p-200;
  const QuadDouble r = q - 1.0;
  EXPECT_EQ(r[0], 0x1p-200);
  EXPECT_EQ(r[1], 0.0);
}

TEST(QuadDouble, AdditionAccuracy) {
  std::mt19937_64 rng(21);
  for (int i = 0; i < 1000; ++i) {
    const QuadDouble a = random_qd(rng);
    const QuadDouble b = random_qd(rng);
    // (a + b) - b == a to qd accuracy
    EXPECT_LT(rel_err((a + b) - b, a), 1e-58);
  }
}

TEST(QuadDouble, MultiplicationDivisionRoundTrip) {
  std::mt19937_64 rng(22);
  for (int i = 0; i < 1000; ++i) {
    const QuadDouble a = random_qd(rng);
    QuadDouble b = random_qd(rng);
    if (std::fabs(b.to_double()) < 1e-3) b += 1.0;
    EXPECT_LT(rel_err((a * b) / b, a), 1e-57);
  }
}

TEST(QuadDouble, MulByDoubleMatchesFullMul) {
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> dist(-10.0, 10.0);
  for (int i = 0; i < 1000; ++i) {
    const QuadDouble a = random_qd(rng);
    const double b = dist(rng);
    EXPECT_LT(rel_err(a * b, a * QuadDouble(b)), 1e-60);
  }
}

TEST(QuadDouble, SqrtSquares) {
  std::mt19937_64 rng(24);
  std::uniform_real_distribution<double> dist(1e-3, 1e3);
  for (int i = 0; i < 500; ++i) {
    QuadDouble a(dist(rng));
    a += dist(rng) * 0x1p-55;
    const QuadDouble r = sqrt(a);
    EXPECT_LT(rel_err(r * r, a), 1e-60);
  }
}

TEST(QuadDouble, SqrtTwoSquaredMinusTwo) {
  const QuadDouble r = sqrt(QuadDouble(2.0));
  const QuadDouble err = abs(r * r - 2.0);
  EXPECT_LT(err.to_double(), 1e-62);
  EXPECT_GT(err.to_double(), 0.0);  // irrational: some residue remains
}

TEST(QuadDouble, NpwrBinaryExponentiation) {
  const QuadDouble x = QuadDouble(1.0) + 0x1p-100;
  QuadDouble by_mult(1.0);
  for (int i = 0; i < 11; ++i) by_mult *= x;
  EXPECT_LT(rel_err(npwr(x, 11), by_mult), 1e-58);
  EXPECT_EQ(npwr(x, 0), QuadDouble(1.0));
  EXPECT_LT(rel_err(npwr(x, -3) * npwr(x, 3), QuadDouble(1.0)), 1e-58);
}

TEST(QuadDouble, FloorDeepLimbs) {
  EXPECT_EQ(floor(QuadDouble(3.7)), QuadDouble(3.0));
  EXPECT_EQ(floor(QuadDouble(-3.7)), QuadDouble(-4.0));
  QuadDouble x(0x1p80);
  x += 0.25;
  EXPECT_EQ(floor(x), QuadDouble(0x1p80));
}

TEST(QuadDouble, ComparisonLadder) {
  QuadDouble a(1.0);
  QuadDouble b = a + 0x1p-180;
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, QuadDouble(1.0));
  EXPECT_LT(-b, -a);
}

TEST(QuadDouble, ToDoubleDoubleTruncates) {
  QuadDouble q(1.0);
  q += 0x1p-60;
  q += 0x1p-120;
  const DoubleDouble dd = q.to_double_double();
  EXPECT_EQ(dd.hi(), 1.0);
  EXPECT_EQ(dd.lo(), 0x1p-60);
}

TEST(QuadDouble, FromDoubleDoubleWidens) {
  const DoubleDouble dd = DoubleDouble(1.0) + 0x1p-70;
  const QuadDouble q(dd);
  EXPECT_EQ(q[0], 1.0);
  EXPECT_EQ(q[1], 0x1p-70);
  EXPECT_EQ(q[2], 0.0);
}

TEST(QuadDouble, StringRoundTrip) {
  std::mt19937_64 rng(25);
  for (int i = 0; i < 20; ++i) {
    const QuadDouble v = random_qd(rng);
    QuadDouble parsed;
    ASSERT_TRUE(from_string(to_string(v), parsed));
    EXPECT_LT(rel_err(parsed, v), 1e-60);
  }
}

TEST(QuadDouble, ParseThirdTimesThree) {
  QuadDouble third;
  ASSERT_TRUE(from_string(
      "0.33333333333333333333333333333333333333333333333333333333333333333",
      third));
  EXPECT_LT(abs(third * 3.0 - 1.0).to_double(), 1e-62);
}

TEST(QuadDouble, PrecisionLadderAgainstDoubleDouble) {
  // A double-double holds 1 + 2^-150 exactly (its low limb is an
  // arbitrary double), but 1 + 2^-60 + 2^-150 needs three limbs: the
  // 2^-150 term falls off dd's second limb while qd keeps it.
  QuadDouble q(1.0);
  q += 0x1p-60;
  q += 0x1p-150;
  EXPECT_EQ(((q - 1.0) - 0x1p-60).to_double(), 0x1p-150);

  DoubleDouble d(1.0);
  d += 0x1p-60;
  d += 0x1p-150;
  EXPECT_EQ(((d - 1.0) - 0x1p-60).to_double(), 0.0);
}

TEST(QuadDouble, EpsilonOrdering) {
  EXPECT_LT(ScalarTraits<QuadDouble>::epsilon, ScalarTraits<DoubleDouble>::epsilon);
  EXPECT_LT(ScalarTraits<DoubleDouble>::epsilon, ScalarTraits<double>::epsilon);
}

TEST(QuadDouble, RandomGeneratorFillsDeepLimbs) {
  polyeval::prec::UniformScalar<QuadDouble> gen(77);
  bool deep = false;
  for (int i = 0; i < 32; ++i) {
    const QuadDouble v = gen();
    if (v[2] != 0.0 || v[3] != 0.0) deep = true;
  }
  EXPECT_TRUE(deep);
}

}  // namespace
