// The observability layer: metrics registry semantics (counter /
// gauge / float-counter / fixed-bucket histogram, labeled families,
// Prometheus text exposition), span tracing with TraceLevel gating,
// the Chrome trace-event exporter's structure, and the end-to-end
// guarantees the telemetry rides on: status labels pinned to the ONE
// PathStatus spelling, bitwise-identical endpoints with tracing off
// and on, launch accounting identical at every level, and exact
// agreement between request spans and solve::Report::Timing.

#include <gtest/gtest.h>

#include <array>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>

#include "homotopy/tracker.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "poly/random_system.hpp"
#include "service/solve_service.hpp"

namespace {

using namespace polyeval;

// ----- exposition parsing helper -------------------------------------

/// The numeric value of sample line `sample` (full name including any
/// {label="..."} selector) in a Prometheus text exposition, or NaN.
double sample_value(const std::string& exposition, const std::string& sample) {
  std::istringstream in(exposition);
  for (std::string line; std::getline(in, line);) {
    if (line.rfind(sample + " ", 0) == 0)
      return std::stod(line.substr(sample.size() + 1));
  }
  return std::numeric_limits<double>::quiet_NaN();
}

std::string expose(const obs::MetricsRegistry& registry) {
  std::ostringstream os;
  registry.expose(os);
  return os.str();
}

// ----- registry units -------------------------------------------------

TEST(Metrics, CounterGaugeFloatCounterRoundTrip) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("polyeval_test_total", "a counter");
  obs::Gauge& g = registry.gauge("polyeval_test_depth", "a gauge");
  obs::FloatCounter& f = registry.float_counter("polyeval_test_us_total");

  c.inc();
  c.inc(4);
  g.set(2.5);
  g.add(-0.5);
  f.add(1.25);
  f.add(0.25);

  EXPECT_EQ(c.value(), 5u);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(f.value(), 1.5);

  // Re-resolving the same name returns the same instrument.
  EXPECT_EQ(&registry.counter("polyeval_test_total"), &c);

  const std::string text = expose(registry);
  EXPECT_NE(text.find("# HELP polyeval_test_total a counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE polyeval_test_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE polyeval_test_depth gauge"), std::string::npos);
  EXPECT_EQ(sample_value(text, "polyeval_test_total"), 5.0);
  EXPECT_EQ(sample_value(text, "polyeval_test_depth"), 2.0);
  EXPECT_EQ(sample_value(text, "polyeval_test_us_total"), 1.5);
}

TEST(Metrics, LabeledFamilyExposesEveryLabelValue) {
  obs::MetricsRegistry registry;
  registry.counter("polyeval_launches_total", "kernel", "fused", "launches")
      .inc(3);
  registry.counter("polyeval_launches_total", "kernel", "probe").inc(1);
  // Label-value hit path returns the same instrument.
  EXPECT_EQ(
      registry.counter("polyeval_launches_total", "kernel", "fused").value(),
      3u);

  const std::string text = expose(registry);
  EXPECT_EQ(sample_value(text, "polyeval_launches_total{kernel=\"fused\"}"),
            3.0);
  EXPECT_EQ(sample_value(text, "polyeval_launches_total{kernel=\"probe\"}"),
            1.0);
}

TEST(Metrics, HistogramBucketsFollowPrometheusLeSemantics) {
  obs::MetricsRegistry registry;
  static constexpr std::array<double, 3> bounds = {1.0, 5.0, 10.0};
  obs::Histogram& h =
      registry.histogram("polyeval_test_hist", bounds, "a histogram");

  h.observe(0.5);   // le 1
  h.observe(1.0);   // le 1 (boundary lands in its bucket)
  h.observe(3.0);   // le 5
  h.observe(10.5);  // +Inf

  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);

  // Exposition: cumulative buckets plus _sum / _count.
  const std::string text = expose(registry);
  EXPECT_EQ(sample_value(text, "polyeval_test_hist_bucket{le=\"1\"}"), 2.0);
  EXPECT_EQ(sample_value(text, "polyeval_test_hist_bucket{le=\"5\"}"), 3.0);
  EXPECT_EQ(sample_value(text, "polyeval_test_hist_bucket{le=\"10\"}"), 3.0);
  EXPECT_EQ(sample_value(text, "polyeval_test_hist_bucket{le=\"+Inf\"}"), 4.0);
  EXPECT_EQ(sample_value(text, "polyeval_test_hist_sum"), 15.0);
  EXPECT_EQ(sample_value(text, "polyeval_test_hist_count"), 4.0);
}

TEST(Metrics, TypeMismatchOnReRegistrationThrows) {
  obs::MetricsRegistry registry;
  registry.counter("polyeval_test_total");
  EXPECT_THROW(registry.gauge("polyeval_test_total"), std::logic_error);
  EXPECT_THROW(registry.float_counter("polyeval_test_total"),
               std::logic_error);
}

TEST(Metrics, TrackerStatusLabelsPinnedToPathStatusSpelling) {
  // The retired-by-status counters index by static_cast<size_t>(status);
  // their exposition labels must stay the ONE spelling
  // homotopy::to_string defines, in enum order.
  obs::MetricsRegistry registry;
  obs::TrackerMetrics m = obs::TrackerMetrics::from_registry(registry);
  static constexpr homotopy::PathStatus kAll[] = {
      homotopy::PathStatus::kConverged, homotopy::PathStatus::kAtInfinity,
      homotopy::PathStatus::kStalled, homotopy::PathStatus::kDiverged,
      homotopy::PathStatus::kCancelled};
  for (std::size_t s = 0; s < obs::TrackerMetrics::kStatuses; ++s)
    m.retired_by_status[s]->inc(s + 1);

  const std::string text = expose(registry);
  for (std::size_t s = 0; s < obs::TrackerMetrics::kStatuses; ++s) {
    const std::string sample = "polyeval_paths_retired_total{status=\"" +
                               std::string(homotopy::to_string(kAll[s])) +
                               "\"}";
    EXPECT_EQ(sample_value(text, sample), static_cast<double>(s + 1))
        << sample;
  }
}

// ----- tracer units ---------------------------------------------------

TEST(Tracer, LevelGatesRecording) {
  obs::Tracer tracer(obs::TraceLevel::kRequests);
  EXPECT_TRUE(tracer.enabled(obs::TraceLevel::kRequests));
  EXPECT_FALSE(tracer.enabled(obs::TraceLevel::kRounds));

  const std::size_t kept = tracer.begin_span("track", "request", 0, 1.0,
                                             obs::TraceLevel::kRequests);
  const std::size_t dropped =
      tracer.begin_span("tick", "round", 0, 1.0, obs::TraceLevel::kRounds);
  EXPECT_NE(kept, obs::Tracer::npos);
  EXPECT_EQ(dropped, obs::Tracer::npos);
  tracer.span_args(kept, 41.5, 6, 9);
  tracer.end_span(kept, 42.0);
  tracer.end_span(dropped, 42.0);  // no-op handle

  ASSERT_EQ(tracer.spans().size(), 1u);
  const obs::Tracer::Span& s = tracer.spans()[0];
  EXPECT_STREQ(s.name, "track");
  EXPECT_STREQ(s.cat, "request");
  EXPECT_FALSE(s.open);
  EXPECT_DOUBLE_EQ(s.modeled_start_us, 1.0);
  EXPECT_DOUBLE_EQ(s.modeled_end_us, 42.0);
  EXPECT_DOUBLE_EQ(s.arg_modeled_us, 41.5);
  EXPECT_GE(s.host_end_us, s.host_start_us);
}

TEST(Tracer, ChromeExportRendersTracksSpansAndSlices) {
  obs::Tracer tracer(obs::TraceLevel::kFull);
  tracer.set_devices(2);
  const std::size_t q =
      tracer.begin_span("queued", "queue", 3, 0.0, obs::TraceLevel::kRequests);
  tracer.end_span(q, 10.0);
  const std::size_t r =
      tracer.begin_span("track", "request", 3, 10.0,
                        obs::TraceLevel::kRequests);
  tracer.span_args(r, 90.0, 6, 2);
  tracer.end_span(r, 100.0);
  const std::size_t t =
      tracer.begin_span("tick", "round", 0, 10.0, obs::TraceLevel::kRounds);
  tracer.end_span(t, 100.0);
  using Engine = obs::Tracer::DeviceSlice::Engine;
  tracer.add_device_slice(0, Engine::kDmaH2D, "h2d", 10.0, 18.0, 4096);
  tracer.add_device_slice(0, Engine::kCompute, "fused_full", 18.0, 95.0, 0);
  tracer.add_device_slice(1, Engine::kDmaD2H, "d2h", 20.0, 28.0, 2048);

  std::ostringstream os;
  obs::write_chrome_trace(os, tracer);
  const std::string json = os.str();

  // Track metadata: service, scheduler, the request row, both devices.
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"solve service\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"scheduler\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"request 3\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"device 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"dma h2d\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"dma d2h\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
  // Spans carry both clocks: modeled ts/dur plus host wall in args.
  EXPECT_NE(json.find("\"name\":\"track\",\"cat\":\"request\""),
            std::string::npos);
  EXPECT_NE(json.find("\"modeled_us\":90"), std::string::npos);
  EXPECT_NE(json.find("\"host_wall_us\":"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"tick\",\"cat\":\"round\""),
            std::string::npos);
  // Device slices land on their engine tids with byte payloads.
  EXPECT_NE(json.find("\"name\":\"fused_full\",\"cat\":\"kernel\""),
            std::string::npos);
  EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
}

TEST(Tracer, OpenSpansAreSkippedByTheExporter) {
  obs::Tracer tracer(obs::TraceLevel::kRequests);
  tracer.begin_span("queued", "queue", 0, 0.0, obs::TraceLevel::kRequests);
  std::ostringstream os;
  obs::write_chrome_trace(os, tracer);
  // The metadata row exists (the request was seen) but no X event.
  EXPECT_EQ(os.str().find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(os.str().find("\"request 0\""), std::string::npos);
}

// ----- end-to-end: tracing must observe, never perturb ----------------

poly::PolynomialSystem obs_system(std::uint32_t seed) {
  poly::SystemSpec spec;
  spec.dimension = 3;
  spec.monomials_per_polynomial = 3;
  spec.variables_per_monomial = 2;
  spec.max_exponent = 2;
  spec.seed = seed;
  return poly::make_random_system(spec);
}

solve::Options obs_options() {
  solve::Options opt;
  opt.sharding.max_paths = 6;
  opt.tracking.track.max_steps = 4000;
  return opt;
}

struct LeveledRun {
  std::vector<std::vector<homotopy::TrackResult<double>>> paths;
  std::vector<double> modeled_us;  ///< per request, from the report
  double kernel_launches = 0.0;    ///< from the metrics exposition
  double spans_modeled_sum = -1.0; ///< request spans' args sum (traced)
  std::size_t spans = 0, slices = 0;
};

LeveledRun run_at_level(obs::TraceLevel level) {
  service::SolveService<double>::Config config;
  config.shards = 2;
  config.trace = level;
  service::SolveService<double> svc(std::move(config));
  auto ta = svc.submit({obs_system(99), obs_options(), {}, 0, 0.0});
  auto tb = svc.submit({obs_system(1234), obs_options(), {}, 0, 0.0});
  EXPECT_TRUE(ta.admitted());
  EXPECT_TRUE(tb.admitted());
  svc.drain();

  LeveledRun out;
  out.paths.push_back(ta.report().paths);
  out.paths.push_back(tb.report().paths);
  out.modeled_us = {ta.report().timing.modeled_us,
                    tb.report().timing.modeled_us};
  const std::string text = expose(svc.metrics());
  // Sum the per-kernel launch family across label values.
  double launches = 0.0;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) {
    if (line.rfind("polyeval_kernel_launches_total{", 0) == 0)
      launches += std::stod(line.substr(line.rfind(' ') + 1));
  }
  out.kernel_launches = launches;

  out.spans = svc.tracer().spans().size();
  double span_sum = 0.0;
  for (const auto& s : svc.tracer().spans())
    if (std::string_view(s.cat) == "request" && s.arg_modeled_us >= 0.0)
      span_sum += s.arg_modeled_us;
  out.spans_modeled_sum = span_sum;
  for (std::size_t d = 0; d < svc.tracer().device_count(); ++d)
    out.slices += svc.tracer().device_slices(d).size();
  return out;
}

TEST(ObsEndToEnd, TracingPreservesBitwiseEndpointsAndLaunchAccounting) {
  const LeveledRun off = run_at_level(obs::TraceLevel::kOff);
  const LeveledRun rounds = run_at_level(obs::TraceLevel::kRounds);
  const LeveledRun full = run_at_level(obs::TraceLevel::kFull);

  // Endpoints are bitwise identical at every level.
  for (const LeveledRun* traced : {&rounds, &full}) {
    ASSERT_EQ(traced->paths.size(), off.paths.size());
    for (std::size_t r = 0; r < off.paths.size(); ++r) {
      ASSERT_EQ(traced->paths[r].size(), off.paths[r].size());
      for (std::size_t p = 0; p < off.paths[r].size(); ++p) {
        const auto& x = off.paths[r][p];
        const auto& y = traced->paths[r][p];
        EXPECT_EQ(x.status, y.status);
        EXPECT_EQ(x.steps, y.steps);
        EXPECT_EQ(x.final_residual, y.final_residual);
        for (std::size_t i = 0; i < x.solution.size(); ++i)
          EXPECT_EQ(cplx::max_abs_diff(x.solution[i], y.solution[i]), 0.0);
      }
      // The modeled accounting is identical too (tracing observes the
      // clock, it never feeds it).
      EXPECT_EQ(traced->modeled_us[r], off.modeled_us[r]);
    }
    // Same launches at every level: the tracer adds zero work.
    EXPECT_EQ(traced->kernel_launches, off.kernel_launches);
  }
  EXPECT_GT(off.kernel_launches, 0.0);

  // kOff records nothing; enabled levels record the lifecycle.
  EXPECT_EQ(off.spans, 0u);
  EXPECT_EQ(off.slices, 0u);
  EXPECT_GT(rounds.spans, 0u);
  EXPECT_GT(rounds.slices, 0u);
  EXPECT_GE(full.slices, rounds.slices);

  // The request spans carry exactly the reports' modeled shares.
  const double report_sum = off.modeled_us[0] + off.modeled_us[1];
  EXPECT_DOUBLE_EQ(full.spans_modeled_sum, report_sum);
  EXPECT_DOUBLE_EQ(rounds.spans_modeled_sum, report_sum);
}

TEST(ObsEndToEnd, ChromeExportOfServiceRunIsWellFormed) {
  service::SolveService<double>::Config config;
  config.shards = 2;
  config.trace = obs::TraceLevel::kFull;
  service::SolveService<double> svc(std::move(config));
  auto ticket = svc.submit({obs_system(7), obs_options(), {}, 0, 0.0});
  ASSERT_TRUE(ticket.admitted());
  svc.drain();

  std::ostringstream os;
  svc.export_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"solve service\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"round\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"dma\""), std::string::npos);
}

}  // namespace
