// Allocation-counting regression tests: the evaluation hot path must be
// allocation-free in steady state.  The global operator new/delete are
// replaced with counting versions, warm-up calls size every persistent
// buffer (engine scratch, race journals, staging vectors), and then the
// measured region asserts the allocator was never touched -- including
// by the pool's worker threads, which share the global counter.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/batch_evaluator.hpp"
#include "core/fused_evaluator.hpp"
#include "core/pipelined_evaluator.hpp"
#include "core/sharded_evaluator.hpp"
#include "homotopy/batch_tracker.hpp"
#include "homotopy/start_system.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "poly/random_system.hpp"
#include "simt/thread_pool.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) /
                                       static_cast<std::size_t>(align) *
                                       static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace polyeval;
using Cd = cplx::Complex<double>;

poly::PolynomialSystem make_system(unsigned n, unsigned m, unsigned k, unsigned d) {
  poly::SystemSpec spec;
  spec.dimension = n;
  spec.monomials_per_polynomial = m;
  spec.variables_per_monomial = k;
  spec.max_exponent = d;
  spec.seed = 1234;
  return poly::make_random_system(spec);
}

std::vector<std::vector<Cd>> make_points(unsigned batch, unsigned dim) {
  std::vector<std::vector<Cd>> points;
  for (unsigned p = 0; p < batch; ++p)
    points.push_back(poly::make_random_point<double>(dim, 900 + p));
  return points;
}

TEST(ZeroAlloc, ParallelForDoesNotAllocatePerIndex) {
  simt::ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  // warm-up (thread creation happened in the constructor)
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });

  const std::uint64_t before = g_allocations.load();
  pool.parallel_for(100000, [&](std::size_t i) { sum.fetch_add(i); });
  pool.parallel_for_chunked(100000, 64, [&](std::size_t i) { sum.fetch_add(i); });
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "parallel_for allocated " << (after - before) << " times for 200k indices";
}

TEST(ZeroAlloc, BatchEvaluatorSteadyStateEvaluate) {
  const auto sys = make_system(8, 6, 4, 3);
  simt::Device device;
  core::BatchGpuEvaluator<double> gpu(device, sys, 4);
  const auto points = make_points(4, 8);
  std::vector<poly::EvalResult<double>> results;

  // Warm-up: sizes the staging vectors, the engine scratch, the race
  // journals and the log.
  for (int i = 0; i < 3; ++i) {
    device.clear_log();
    gpu.evaluate(points, results);
  }

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 10; ++i) {
    device.clear_log();  // keeps capacity; long-running users do the same
    gpu.evaluate(points, results);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "steady-state BatchGpuEvaluator::evaluate allocated " << (after - before)
      << " times over 10 calls";
}

TEST(ZeroAlloc, FusedEvaluatorSteadyStateEvaluate) {
  const auto sys = make_system(8, 6, 4, 3);
  simt::Device device;
  core::FusedGpuEvaluator<double> gpu(device, sys, 4);
  const auto points = make_points(4, 8);
  std::vector<poly::EvalResult<double>> results;

  for (int i = 0; i < 3; ++i) {
    device.clear_log();
    gpu.evaluate(points, results);
  }

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 10; ++i) {
    device.clear_log();
    gpu.evaluate(points, results);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "steady-state FusedGpuEvaluator::evaluate allocated " << (after - before)
      << " times over 10 calls";
}

TEST(ZeroAlloc, ShardedEvaluatorSteadyStateEvaluate) {
  // The sharding layer preserves the guarantee end to end: the manager
  // pool's chunk cursor, the per-shard staging, every device's engine
  // scratch (pre-warmed at construction) and the merged log all stay
  // off the allocator in steady state -- under BOTH schedules, so the
  // nondeterministic claim patterns of work stealing cannot smuggle an
  // allocation in.
  const auto sys = make_system(8, 6, 4, 3);
  for (const auto schedule :
       {core::ShardSchedule::kWorkStealing, core::ShardSchedule::kStatic}) {
    core::ShardedEvaluator<double>::Options opt;
    opt.shards = 2;
    opt.workers_per_shard = 1;
    opt.chunk_points = 2;
    opt.schedule = schedule;
    core::ShardedEvaluator<double> sharded(sys, opt);
    const auto points = make_points(8, 8);
    std::vector<poly::EvalResult<double>> results;

    for (int i = 0; i < 5; ++i) sharded.evaluate(points, results);

    const std::uint64_t before = g_allocations.load();
    for (int i = 0; i < 10; ++i) sharded.evaluate(points, results);
    const std::uint64_t after = g_allocations.load();
    EXPECT_EQ(after - before, 0u)
        << "steady-state ShardedEvaluator::evaluate allocated " << (after - before)
        << " times over 10 calls (schedule "
        << (schedule == core::ShardSchedule::kStatic ? "static" : "stealing") << ")";
  }
}

TEST(ZeroAlloc, PipelinedEvaluatorSteadyStateEvaluate) {
  // The stream pipeline preserves the guarantee: the double-buffered
  // staging, the stream logs/timelines (reset keeps capacity), the
  // event stamps and the engine clocks are all allocation-free once the
  // warm-up calls have sized them.
  const auto sys = make_system(8, 6, 4, 3);
  simt::Device device;
  core::PipelinedFusedEvaluator<double>::Options opt;
  opt.micro_chunk = 3;  // partial tail chunk: 3 + 3 + 2
  core::PipelinedFusedEvaluator<double> gpu(device, sys, 8, opt);
  const auto points = make_points(8, 8);
  std::vector<poly::EvalResult<double>> results;

  for (int i = 0; i < 3; ++i) {
    device.clear_log();
    gpu.evaluate(points, results);
  }

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 10; ++i) {
    device.clear_log();
    gpu.evaluate(points, results);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "steady-state PipelinedFusedEvaluator::evaluate allocated "
      << (after - before) << " times over 10 calls";
}

TEST(ZeroAlloc, FusedValuesRangeSteadyState) {
  // The values-only fused path shares the zero-alloc guarantee: staging,
  // the values buffer and the kernel are all constructor-built.
  const auto sys = make_system(8, 6, 4, 3);
  simt::Device device;
  core::FusedGpuEvaluator<double> gpu(device, sys, 4);
  const auto points = make_points(4, 8);
  std::vector<Cd> values(4 * 8);

  for (int i = 0; i < 3; ++i) {
    device.clear_log();
    gpu.evaluate_values_range(points, 0, 4, std::span<Cd>(values));
  }

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 10; ++i) {
    device.clear_log();
    gpu.evaluate_values_range(points, 0, 4, std::span<Cd>(values));
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "steady-state evaluate_values_range allocated " << (after - before)
      << " times over 10 calls";
}

TEST(ZeroAlloc, BatchPathTrackerSteadyStateRounds) {
  // The lockstep tracker's rounds -- batched predictor, masked batched
  // corrector, LU arena solves, retirement probes, endgame polish and
  // active-set compaction -- must all run off pre-sized storage.  A
  // first full run warms every buffer (and the device's collector
  // scratch); the second run's rounds are then measured end to end.
  poly::SystemSpec spec;
  spec.dimension = 3;
  spec.monomials_per_polynomial = 3;
  spec.variables_per_monomial = 2;
  spec.max_exponent = 2;
  spec.seed = 99;
  const auto sys = poly::make_random_system(spec);
  const homotopy::TotalDegreeStart start(sys);
  const auto gamma = homotopy::random_gamma(42);

  std::vector<std::vector<Cd>> roots;
  for (std::uint64_t p = 0; p < 4; ++p) {
    const auto rd = start.start_root(p);
    std::vector<Cd> r;
    for (const auto& z : rd) r.push_back(z);
    roots.push_back(std::move(r));
  }

  simt::Device device;
  core::FusedGpuEvaluator<double> f(device, sys, 4);
  ad::CpuEvaluator<double> g(start.system());
  homotopy::TrackOptions topt;
  topt.max_steps = 4000;
  homotopy::BatchPathTracker<double, core::FusedGpuEvaluator<double>> tracker(
      device, f, g, gamma, topt, roots.size());

  tracker.start(roots, 0, roots.size());
  tracker.run();  // warm-up: sizes every buffer along the whole trajectory

  tracker.start(roots, 0, roots.size());
  const std::uint64_t before = g_allocations.load();
  tracker.run();
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "steady-state lockstep rounds allocated " << (after - before)
      << " times over " << tracker.rounds() << " rounds";
  EXPECT_GT(tracker.rounds(), 1u);
}

TEST(ZeroAlloc, ProjectiveBatchTrackerWithEndgameSteadyStateRounds) {
  // The projective lockstep rounds add the pullback staging, the lift
  // scratch, patch renormalization, the at-infinity probes and the
  // Cauchy endgame stage (circle correctors, sample sums, closure
  // tests, re-arm bookkeeping) -- all must run off pre-sized storage.
  // The dim-3 workload drives several paths through the endgame (the
  // winding-2/3 endpoints) and one to an at-infinity retirement.
  poly::SystemSpec spec;
  spec.dimension = 3;
  spec.monomials_per_polynomial = 3;
  spec.variables_per_monomial = 2;
  spec.max_exponent = 2;
  spec.seed = 99;
  const auto sys = poly::make_random_system(spec);
  const homotopy::TotalDegreeStart start(sys);
  const auto gamma = homotopy::random_gamma(20120102);
  const auto patch = homotopy::random_patch(4, 20120717);
  std::vector<Cd> patch_s(patch.begin(), patch.end());

  std::vector<std::vector<Cd>> roots;
  for (std::uint64_t p = 0; p < 6; ++p) {
    const auto rd = start.start_root(p);
    roots.push_back(homotopy::embed_in_patch<double>(
        std::span<const Cd>(std::vector<Cd>(rd.begin(), rd.end())),
        std::span<const Cd>(patch_s)));
  }

  simt::Device device;
  core::FusedGpuEvaluator<double> f(device, sys, 6);
  ad::CpuEvaluator<double> g(start.system());
  homotopy::BatchedProjectiveHomotopy<double, core::FusedGpuEvaluator<double>> h(
      f, sys, start.system(), gamma, std::span<const Cd>(patch));
  homotopy::TrackOptions topt;
  topt.max_steps = 4000;
  homotopy::BatchPathTracker<
      double, homotopy::BatchedProjectiveHomotopy<double, core::FusedGpuEvaluator<double>>>
      tracker(device, h, topt, roots.size());

  tracker.start(roots, 0, roots.size());
  tracker.run();  // warm-up: sizes every buffer along the whole trajectory
  unsigned endgame_paths = 0, at_infinity = 0;
  for (std::size_t p = 0; p < roots.size(); ++p) {
    const auto r = tracker.result(p);
    if (r.winding > 0) ++endgame_paths;
    if (r.status == homotopy::PathStatus::kAtInfinity) ++at_infinity;
  }
  // The measured run must really exercise the endgame machinery.
  EXPECT_GE(endgame_paths, 1u);
  EXPECT_GE(at_infinity, 1u);

  tracker.start(roots, 0, roots.size());
  const std::uint64_t before = g_allocations.load();
  tracker.run();
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "steady-state projective lockstep rounds (incl. endgame) allocated "
      << (after - before) << " times over " << tracker.rounds() << " rounds";
}

TEST(ZeroAlloc, BatchPathTrackerWithMetricsSteadyStateRounds) {
  // The metrics-instrumented tracker keeps the zero-alloc guarantee:
  // registration (from_registry, which MAY allocate) happens once up
  // front, after which every round's counter incs and histogram
  // observes go through pre-resolved handles -- relaxed atomics, no
  // lookup, no allocation.
  poly::SystemSpec spec;
  spec.dimension = 3;
  spec.monomials_per_polynomial = 3;
  spec.variables_per_monomial = 2;
  spec.max_exponent = 2;
  spec.seed = 99;
  const auto sys = poly::make_random_system(spec);
  const homotopy::TotalDegreeStart start(sys);
  const auto gamma = homotopy::random_gamma(42);

  std::vector<std::vector<Cd>> roots;
  for (std::uint64_t p = 0; p < 4; ++p) {
    const auto rd = start.start_root(p);
    std::vector<Cd> r;
    for (const auto& z : rd) r.push_back(z);
    roots.push_back(std::move(r));
  }

  simt::Device device;
  core::FusedGpuEvaluator<double> f(device, sys, 4);
  ad::CpuEvaluator<double> g(start.system());
  homotopy::TrackOptions topt;
  topt.max_steps = 4000;
  homotopy::BatchPathTracker<double, core::FusedGpuEvaluator<double>> tracker(
      device, f, g, gamma, topt, roots.size());

  obs::MetricsRegistry registry;
  obs::TrackerMetrics metrics = obs::TrackerMetrics::from_registry(registry);
  tracker.set_metrics(&metrics);

  tracker.start(roots, 0, roots.size());
  tracker.run();  // warm-up: sizes every buffer along the whole trajectory

  tracker.start(roots, 0, roots.size());
  const std::uint64_t before = g_allocations.load();
  tracker.run();
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "instrumented lockstep rounds allocated " << (after - before)
      << " times over " << tracker.rounds() << " rounds";
  // The instrumentation really observed the run (both runs counted).
  EXPECT_GE(metrics.rounds->value(), 2 * tracker.rounds());
  EXPECT_GT(metrics.steps_accepted->value(), 0u);
  EXPECT_GT(metrics.newton_iterations->value(), 0u);
  std::uint64_t retired = 0;
  for (const obs::Counter* c : metrics.retired_by_status)
    retired += c->value();
  EXPECT_EQ(retired, 2 * roots.size());
}

TEST(ZeroAlloc, TracerOffIsNoOpAndAllocationFree) {
  // A kOff tracer is the default on every service: every recording
  // entry point must return immediately without touching the allocator
  // or retaining anything -- this is what lets Config::trace default on
  // without costing the zero-alloc / bitwise gates anything.
  obs::Tracer tracer;  // default level: kOff
  EXPECT_FALSE(tracer.enabled(obs::TraceLevel::kRequests));

  const std::uint64_t before = g_allocations.load();
  tracer.set_devices(4);
  for (int i = 0; i < 100; ++i) {
    const std::size_t span = tracer.begin_span(
        "track", "request", 7, 0.0, obs::TraceLevel::kRequests);
    EXPECT_EQ(span, obs::Tracer::npos);
    tracer.span_args(span, 1.0, 2, 3);
    tracer.end_span(span, 10.0);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "kOff tracer allocated " << (after - before) << " times";
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.device_count(), 0u);
}

TEST(ZeroAlloc, RefineBatchEmptyMaskSkipsLaunchAndAllocator) {
  // An all-false active mask (count == 0) must neither launch, nor
  // transfer, nor touch the allocator -- the empty-range staging used
  // to pay a launch/upload round.
  const auto sys = make_system(4, 3, 2, 2);
  const homotopy::TotalDegreeStart start(sys);
  simt::Device device;
  core::FusedGpuEvaluator<double> f(device, sys, 2);
  ad::CpuEvaluator<double> g(start.system());
  homotopy::BatchedHomotopy<double, core::FusedGpuEvaluator<double>> h(
      f, g, homotopy::random_gamma(1));

  std::vector<std::vector<Cd>> x;
  std::vector<Cd> ts;
  linalg::LuArena<double> arena;
  arena.resize(4, 1);
  newton::RefineBatchScratch<double> scratch;
  scratch.reserve(4, 1, 1);
  std::vector<newton::BatchPathStatus> status;

  device.clear_log();
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 10; ++i)
    newton::refine_batch<double>(h, x, std::span<const Cd>(ts), 0, {}, arena,
                                 scratch,
                                 std::span<newton::BatchPathStatus>(status));
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(device.log().kernels.size(), 0u);
  EXPECT_EQ(device.log().transfers.transfers_to_device, 0u);
  EXPECT_EQ(device.log().transfers.transfers_from_device, 0u);
}

TEST(ZeroAlloc, FusedEvaluatorWithRaceCheckingSteadyState) {
  // The race journals are epoch-stamped and persist across launches, so
  // even the checked configuration is allocation-free once warm.
  const auto sys = make_system(8, 6, 4, 3);
  simt::Device device;
  core::FusedGpuEvaluator<double>::Options opt;
  opt.detect_races = true;
  core::FusedGpuEvaluator<double> gpu(device, sys, 4, opt);
  const auto points = make_points(4, 8);
  std::vector<poly::EvalResult<double>> results;

  for (int i = 0; i < 3; ++i) {
    device.clear_log();
    gpu.evaluate(points, results);
  }

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 10; ++i) {
    device.clear_log();
    gpu.evaluate(points, results);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u);
}

}  // namespace
