// The analytic timing model: structural properties that make the paper's
// tables come out right -- near-flat GPU times dominated by launch
// overhead, linear CPU times, speedups growing with monomial count and
// with k, and sane behaviour of every term.

#include <gtest/gtest.h>

#include "core/gpu_evaluator.hpp"
#include "ad/cpu_evaluator.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"

namespace {

using namespace polyeval;

simt::LaunchLog eval_log(unsigned n, unsigned m, unsigned k, unsigned d) {
  poly::SystemSpec spec;
  spec.dimension = n;
  spec.monomials_per_polynomial = m;
  spec.variables_per_monomial = k;
  spec.max_exponent = d;
  const auto sys = poly::make_random_system(spec);
  const auto x = poly::make_random_point<double>(n, 3);
  simt::Device device;
  core::GpuEvaluator<double> gpu(device, sys);
  (void)gpu.evaluate(std::span<const cplx::Complex<double>>(x));
  return gpu.last_log();
}

ad::OpCounts cpu_ops(unsigned n, unsigned m, unsigned k, unsigned d) {
  return {ad::formulas::evaluation_mults(n, m, k, d),
          ad::formulas::evaluation_adds_cpu(n, m, k)};
}

TEST(TimingModel, LaunchOverheadDominatesSmallGrids) {
  const simt::DeviceSpec spec;
  const simt::GpuCostModel model;
  const auto log = eval_log(32, 22, 9, 2);
  const double total = simt::estimate_log_us(log, spec, model);
  // three launches at 40 us each: at least 120 of the total
  EXPECT_GE(total, 3 * model.launch_overhead_us);
  EXPECT_LT(total, 3 * model.launch_overhead_us + 150.0);
}

TEST(TimingModel, GpuTimeNearlyFlatInMonomialCount) {
  // Table shape: doubling monomials must grow GPU time by far less than 2x.
  const simt::DeviceSpec spec;
  const simt::GpuCostModel model;
  const double t704 = simt::estimate_log_us(eval_log(32, 22, 9, 2), spec, model);
  const double t1536 = simt::estimate_log_us(eval_log(32, 48, 9, 2), spec, model);
  EXPECT_GT(t1536, t704);
  EXPECT_LT(t1536 / t704, 1.5);
}

TEST(TimingModel, CpuTimeLinearInMonomialCount) {
  const simt::CpuCostModel model;
  const auto t704 = simt::estimate_cpu_us(cpu_ops(32, 22, 9, 2).complex_mul,
                                          cpu_ops(32, 22, 9, 2).complex_add, model);
  const auto t1408 = simt::estimate_cpu_us(cpu_ops(32, 44, 9, 2).complex_mul,
                                           cpu_ops(32, 44, 9, 2).complex_add, model);
  EXPECT_NEAR(t1408 / t704, 2.0, 0.01);
}

TEST(TimingModel, SpeedupGrowsWithMonomialCount) {
  const simt::DeviceSpec spec;
  const simt::GpuCostModel gmodel;
  const simt::CpuCostModel cmodel;
  double last = 0.0;
  for (const unsigned m : {22u, 32u, 48u}) {
    const double gpu = simt::estimate_log_us(eval_log(32, m, 9, 2), spec, gmodel);
    const auto ops = cpu_ops(32, m, 9, 2);
    const double cpu = simt::estimate_cpu_us(ops.complex_mul, ops.complex_add, cmodel);
    const double speedup = cpu / gpu;
    EXPECT_GT(speedup, last);
    last = speedup;
  }
  EXPECT_GT(last, 5.0);   // double-digit territory at 1536 monomials
  EXPECT_LT(last, 40.0);  // but not absurd
}

TEST(TimingModel, LargerKGivesLargerSpeedup) {
  // Table 2 vs Table 1 at equal monomial count.
  const simt::DeviceSpec spec;
  const simt::GpuCostModel gmodel;
  const simt::CpuCostModel cmodel;
  const auto speedup = [&](unsigned k, unsigned d) {
    const double gpu = simt::estimate_log_us(eval_log(32, 32, k, d), spec, gmodel);
    const auto ops = cpu_ops(32, 32, k, d);
    return simt::estimate_cpu_us(ops.complex_mul, ops.complex_add, cmodel) / gpu;
  };
  EXPECT_GT(speedup(16, 10), speedup(9, 2));
}

TEST(TimingModel, ScalarCostFactorScalesCpuLinearly) {
  simt::CpuCostModel dd;
  dd.scalar_cost_factor = 8.0;  // the paper's double-double factor
  const simt::CpuCostModel d;
  EXPECT_DOUBLE_EQ(simt::estimate_cpu_us(1000, 100, dd),
                   8.0 * simt::estimate_cpu_us(1000, 100, d));
}

TEST(TimingModel, ScalarCostFactorDoesNotScaleLaunchOverhead) {
  // GPU quality-up: the dd factor applies to issue cycles, not to the
  // fixed overheads, so the GPU's dd penalty is *less* than 8x.
  const simt::DeviceSpec spec;
  simt::GpuCostModel dd;
  dd.scalar_cost_factor = 8.0;
  const simt::GpuCostModel d;
  const auto log = eval_log(32, 32, 9, 2);
  const double t_dd = simt::estimate_log_us(log, spec, dd);
  const double t_d = simt::estimate_log_us(log, spec, d);
  EXPECT_GT(t_dd, t_d);
  EXPECT_LT(t_dd / t_d, 8.0);
}

TEST(TimingModel, TransferTermCountsCallsAndBytes) {
  simt::TransferStats t;
  t.transfers_to_device = 2;
  t.transfers_from_device = 1;
  t.bytes_to_device = 5500;
  t.bytes_from_device = 0;
  const simt::GpuCostModel model;
  EXPECT_DOUBLE_EQ(simt::estimate_transfer_us(t, model),
                   3 * model.transfer_latency_us + 1.0);
}

TEST(TimingModel, MoreResidentWarpsHideLatency) {
  simt::KernelStats few;
  few.complex_mul_per_thread_max = 100;
  few.warps_per_block = 1;
  few.concurrent_blocks_per_sm = 1;
  few.warps_on_busiest_sm = 1;

  simt::KernelStats many = few;
  many.concurrent_blocks_per_sm = 8;
  many.warps_on_busiest_sm = 8;

  const simt::DeviceSpec spec;
  const simt::GpuCostModel model;
  const double t_few = simt::estimate_kernel_compute_us(few, spec, model);
  const double t_many = simt::estimate_kernel_compute_us(many, spec, model);
  // 8 warps do 8x the work in less than 8x the time of one warp's work.
  EXPECT_LT(t_many, 8.0 * t_few);
  EXPECT_GT(t_many, t_few);
}

TEST(TimingModel, BandwidthBoundKernelsChargedByTraffic) {
  simt::KernelStats k;
  k.warps_per_block = 1;
  k.concurrent_blocks_per_sm = 8;
  k.warps_on_busiest_sm = 1;
  k.complex_mul_per_thread_max = 0;  // no arithmetic at all
  k.global_load_transactions = 1000000;
  const simt::DeviceSpec spec;
  const simt::GpuCostModel model;
  const double t = simt::estimate_kernel_compute_us(k, spec, model);
  const double expected_cycles = 1000000.0 * 128.0 / model.global_bytes_per_cycle;
  EXPECT_NEAR(t, expected_cycles / spec.core_clock_mhz, 1e-9);
}

TEST(TimingModel, MoreMultiprocessorsShortenComputeBoundKernels) {
  simt::KernelStats k;
  k.warps_per_block = 1;
  k.concurrent_blocks_per_sm = 8;
  k.complex_mul_per_thread_max = 100;
  const simt::GpuCostModel model;

  simt::DeviceSpec small;        // 14 SMs
  simt::DeviceSpec big = small;  // double the SMs: busiest SM halves
  big.multiprocessors = 28;

  // 56 one-warp blocks: 4 per SM on the small device, 2 on the big one.
  k.warps_on_busiest_sm = 4;
  const double t_small = simt::estimate_kernel_compute_us(k, small, model);
  k.warps_on_busiest_sm = 2;
  const double t_big = simt::estimate_kernel_compute_us(k, big, model);
  EXPECT_LT(t_big, t_small);
}

TEST(TimingModel, ClockScalesComputeInversely) {
  simt::KernelStats k;
  k.warps_per_block = 1;
  k.concurrent_blocks_per_sm = 1;
  k.warps_on_busiest_sm = 1;
  k.complex_mul_per_thread_max = 1000;
  const simt::GpuCostModel model;
  simt::DeviceSpec base;
  simt::DeviceSpec fast = base;
  fast.core_clock_mhz = 2.0 * base.core_clock_mhz;
  EXPECT_NEAR(simt::estimate_kernel_compute_us(k, base, model) /
                  simt::estimate_kernel_compute_us(k, fast, model),
              2.0, 1e-9);
}

TEST(TimingModel, ValuesOnlyEvaluationIsModeledCheaper) {
  // The values-only pipeline launches 3 cheaper kernels and downloads n
  // instead of n^2+n entries.
  poly::SystemSpec spec;
  spec.dimension = 32;
  spec.monomials_per_polynomial = 32;
  spec.variables_per_monomial = 9;
  spec.max_exponent = 2;
  const auto sys = poly::make_random_system(spec);
  const auto x = poly::make_random_point<double>(32, 3);
  simt::Device device;
  core::GpuEvaluator<double> gpu(device, sys);
  poly::EvalResult<double> full(32);
  gpu.evaluate(std::span<const cplx::Complex<double>>(x), full);
  const simt::DeviceSpec dspec;
  const simt::GpuCostModel gmodel;
  const double t_full = simt::estimate_log_us(gpu.last_log(), dspec, gmodel);

  std::vector<cplx::Complex<double>> values(32);
  gpu.evaluate_values(std::span<const cplx::Complex<double>>(x),
                      std::span<cplx::Complex<double>>(values));
  const double t_values = simt::estimate_log_us(gpu.last_log(), dspec, gmodel);
  EXPECT_LT(t_values, t_full);
}

TEST(TimingModel, BankConflictsAddCycles) {
  simt::KernelStats k;
  k.warps_per_block = 1;
  k.concurrent_blocks_per_sm = 1;
  k.warps_on_busiest_sm = 1;
  k.shared_requests = 1000;
  k.shared_cycles = 33000;  // 32-way conflicts
  const simt::DeviceSpec spec;
  const simt::GpuCostModel model;
  simt::KernelStats clean = k;
  clean.shared_cycles = 1000;
  EXPECT_GT(simt::estimate_kernel_compute_us(k, spec, model),
            simt::estimate_kernel_compute_us(clean, spec, model));
}

}  // namespace
