// The chunked thread pool: full index coverage under every chunk size,
// contiguous range handout, participant identification, exception
// propagation, and the degenerate configurations.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include "simt/thread_pool.hpp"

namespace {

using namespace polyeval::simt;

TEST(ThreadPoolChunked, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                                  std::size_t{1000}, std::size_t{5000}}) {
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for_chunked(hits.size(), chunk,
                              [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolChunked, RangesAreContiguousAndCoverTheSpace) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.parallel_for_ranges(1003, 64, [&](unsigned, std::size_t begin, std::size_t end) {
    ASSERT_LT(begin, end);
    const std::lock_guard lock(mutex);
    ranges.emplace_back(begin, end);
  });
  std::sort(ranges.begin(), ranges.end());
  std::size_t expected = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, expected);
    EXPECT_LE(end - begin, 64u);
    expected = end;
  }
  EXPECT_EQ(expected, 1003u);
}

TEST(ThreadPoolChunked, ParticipantIdsStayInRange) {
  ThreadPool pool(3);
  std::atomic<bool> bad{false};
  pool.parallel_for_ranges(500, 8, [&](unsigned participant, std::size_t, std::size_t) {
    if (participant > pool.worker_count()) bad = true;
  });
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(pool.participant_count(), 4u);
}

TEST(ThreadPoolChunked, CallerParticipates) {
  // With zero-size chunking pressure on a single worker, the caller
  // thread must still help drain the job (no deadlock, full coverage).
  ThreadPool pool(1);
  std::atomic<std::size_t> count{0};
  pool.parallel_for_chunked(10000, 1, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10000u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, MutableCallablesAreAccepted) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  int local = 5;
  pool.parallel_for(10, [&sum, local](std::size_t) mutable {
    ++local;
    sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 10);
}

TEST(ThreadPool, PropagatesTheFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [](std::size_t i) {
                          if (i % 7 == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // the pool survives and runs the next job normally
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.parallel_for(0, [&](std::size_t) { FAIL(); }));
}

TEST(ThreadPool, DefaultChunkIsSaneAcrossCounts) {
  ThreadPool pool(2);
  EXPECT_GE(pool.default_chunk(0), 1u);
  EXPECT_GE(pool.default_chunk(1), 1u);
  const std::size_t chunk = pool.default_chunk(100000);
  EXPECT_GE(chunk, 1u);
  EXPECT_LE(chunk, 100000u);
  // enough chunks for every participant to get work
  EXPECT_GE(100000u / chunk, pool.participant_count());
}

TEST(ThreadPool, SequentialJobsReuseThePool) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> count{0};
    pool.parallel_for(round + 1, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), static_cast<std::size_t>(round) + 1);
  }
}

}  // namespace
