// Classic benchmark families: structural checks and known root
// verification (cyclic-3 has closed-form roots; noon admits symmetric
// solutions on the real line).

#include <gtest/gtest.h>

#include <cmath>

#include "poly/families.hpp"

namespace {

using namespace polyeval;
using Cd = cplx::Complex<double>;

TEST(Cyclic, StructureOfCyclic4) {
  const auto sys = poly::cyclic(4);
  EXPECT_EQ(sys.dimension(), 4u);
  // f0 = x0+x1+x2+x3 (degree 1), f1 degree 2, f2 degree 3, f3 = x0x1x2x3 - 1
  EXPECT_EQ(sys.degrees(), (std::vector<unsigned>{1, 2, 3, 4}));
  EXPECT_EQ(sys.polynomial(0).num_monomials(), 4u);
  EXPECT_EQ(sys.polynomial(3).num_monomials(), 2u);
}

TEST(Cyclic, KnownRootOfCyclic3) {
  // (1, w, w^2) with w a primitive cube root of unity solves cyclic-3:
  // sums of powers vanish and the product is w^3 = 1.
  const double c = std::cos(2.0 * M_PI / 3.0), s = std::sin(2.0 * M_PI / 3.0);
  const std::vector<Cd> x = {{1.0, 0.0}, {c, s}, {c, -s}};
  const auto sys = poly::cyclic(3);
  std::vector<Cd> values(3), jac(9);
  sys.evaluate_naive<double>(x, values, jac);
  for (const auto& v : values) {
    EXPECT_NEAR(v.re(), 0.0, 1e-12);
    EXPECT_NEAR(v.im(), 0.0, 1e-12);
  }
}

TEST(Cyclic, RejectsTiny) { EXPECT_THROW(poly::cyclic(1), std::invalid_argument); }

TEST(Katsura, StructureOfKatsura3) {
  const auto sys = poly::katsura(3);
  EXPECT_EQ(sys.dimension(), 4u);  // u0..u3
  // quadratic equations plus one linear normalization
  const auto degs = sys.degrees();
  EXPECT_EQ(degs.back(), 1u);
  for (unsigned i = 0; i + 1 < degs.size(); ++i) EXPECT_EQ(degs[i], 2u);
}

TEST(Katsura, NormalizationRowSumsToOne) {
  // u = (1/2, 1/4, ...) style check: evaluate the last equation at
  // u0 = 1, rest 0: u0 + 2*sum(u_l) - 1 = 0.
  const auto sys = poly::katsura(3);
  const std::vector<Cd> x = {{1.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}};
  std::vector<Cd> values(4), jac(16);
  sys.evaluate_naive<double>(x, values, jac);
  EXPECT_NEAR(values[3].re(), 0.0, 1e-14);
  // and the first equation: sum u_|l| u_|m-l| - u_0 at this point is
  // u0^2 - u0 = 0.
  EXPECT_NEAR(values[0].re(), 0.0, 1e-14);
}

TEST(Noon, StructureAndSymmetricEvaluation) {
  const auto sys = poly::noon(3);
  EXPECT_EQ(sys.dimension(), 3u);
  EXPECT_EQ(sys.degrees(), (std::vector<unsigned>{3, 3, 3}));
  // at the symmetric point x_i = s the equations read
  // s*(2 s^2) - 1.1 s + 1; check the evaluator agrees with the formula.
  const double s = 0.4;
  const std::vector<Cd> x(3, Cd{s, 0.0});
  std::vector<Cd> values(3), jac(9);
  sys.evaluate_naive<double>(x, values, jac);
  const double expected = s * (2.0 * s * s) - 1.1 * s + 1.0;
  for (const auto& v : values) EXPECT_NEAR(v.re(), expected, 1e-13);
}

TEST(Noon, JacobianMatchesHandDerivative) {
  // f0 = x0(x1^2 + x2^2) - 1.1 x0 + 1
  // df0/dx0 = x1^2 + x2^2 - 1.1, df0/dx1 = 2 x0 x1
  const auto sys = poly::noon(3);
  const std::vector<Cd> x = {{2.0, 0.0}, {3.0, 0.0}, {5.0, 0.0}};
  std::vector<Cd> values(3), jac(9);
  sys.evaluate_naive<double>(x, values, jac);
  EXPECT_NEAR(jac[0].re(), 9.0 + 25.0 - 1.1, 1e-12);
  EXPECT_NEAR(jac[1].re(), 2.0 * 2.0 * 3.0, 1e-12);
  EXPECT_NEAR(jac[2].re(), 2.0 * 2.0 * 5.0, 1e-12);
}

TEST(Families, NoneAreUniform) {
  // The classic families violate the (n, m, k, d) regularity and thus
  // exercise only the general CPU paths.
  EXPECT_FALSE(poly::cyclic(4).uniform_structure().has_value());
  EXPECT_FALSE(poly::katsura(3).uniform_structure().has_value());
  EXPECT_FALSE(poly::noon(3).uniform_structure().has_value());
}

}  // namespace
