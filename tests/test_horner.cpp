// Nested Horner forms: agreement with the naive oracle on sparse and
// dense systems, classic univariate optimality (d multiplications),
// derivatives, and all precisions.

#include <gtest/gtest.h>

#include "poly/horner.hpp"
#include "poly/families.hpp"
#include "poly/io.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;
using Cd = cplx::Complex<double>;

TEST(Horner, UnivariateDenseIsOptimal) {
  // p = 3x^4 + 2x^3 - x^2 + 5x - 7: Horner must use exactly 4 mults.
  const auto p = poly::parse_polynomial("3*x0^4 + 2*x0^3 - x0^2 + 5*x0 - 7", 1);
  const poly::HornerPolynomial h(p);
  EXPECT_EQ(h.value_multiplications(), 4u);
  const std::vector<Cd> x = {{2.0, 0.0}};
  // 48 + 16 - 4 + 10 - 7 = 63
  EXPECT_DOUBLE_EQ(h.evaluate<double>(x).re(), 63.0);
  // p' = 12x^3 + 6x^2 - 2x + 5 at 2: 96 + 24 - 4 + 5 = 121
  EXPECT_DOUBLE_EQ(h.evaluate_derivative<double>(x, 0).re(), 121.0);
}

TEST(Horner, SparseGapsCollapse) {
  // x^9 + 1 needs 9 multiplications via the tail/gap powers, not 9 terms.
  const auto p = poly::parse_polynomial("x0^9 + 1", 1);
  const poly::HornerPolynomial h(p);
  EXPECT_EQ(h.value_multiplications(), 9u);
  const std::vector<Cd> x = {{2.0, 0.0}};
  EXPECT_DOUBLE_EQ(h.evaluate<double>(x).re(), 513.0);
}

TEST(Horner, MultivariateKnownValue) {
  // p = x0 x1^2 + 2 x0^2 + x1 at (2, 3): 18 + 8 + 3 = 29
  const auto p = poly::parse_polynomial("x0*x1^2 + 2*x0^2 + x1", 2);
  const poly::HornerPolynomial h(p);
  const std::vector<Cd> x = {{2.0, 0.0}, {3.0, 0.0}};
  EXPECT_DOUBLE_EQ(h.evaluate<double>(x).re(), 29.0);
  // dp/dx0 = x1^2 + 4 x0 = 17; dp/dx1 = 2 x0 x1 + 1 = 13
  EXPECT_DOUBLE_EQ(h.evaluate_derivative<double>(x, 0).re(), 17.0);
  EXPECT_DOUBLE_EQ(h.evaluate_derivative<double>(x, 1).re(), 13.0);
}

TEST(Horner, MatchesNaiveOnRandomSystems) {
  poly::SystemSpec spec;
  spec.dimension = 8;
  spec.monomials_per_polynomial = 10;
  spec.variables_per_monomial = 4;
  spec.max_exponent = 5;
  const auto sys = poly::make_random_system(spec);
  const auto x = poly::make_random_point<double>(8, 3);

  poly::EvalResult<double> naive(8), horner(8);
  sys.evaluate_naive<double>(x, naive.values, naive.jacobian);
  const poly::HornerSystem hs(sys);
  hs.evaluate<double>(x, horner);
  EXPECT_LT(poly::max_abs_diff(naive, horner), 1e-9);
}

TEST(Horner, MatchesNaiveOnFamilies) {
  for (const auto& sys : {poly::cyclic(5), poly::katsura(4), poly::noon(4)}) {
    const auto x = poly::make_random_point<double>(sys.dimension(), 7);
    poly::EvalResult<double> naive(sys.dimension()), horner(sys.dimension());
    sys.evaluate_naive<double>(x, naive.values, naive.jacobian);
    const poly::HornerSystem hs(sys);
    hs.evaluate<double>(x, horner);
    EXPECT_LT(poly::max_abs_diff(naive, horner), 1e-10);
  }
}

TEST(Horner, DoubleDoublePrecision) {
  poly::SystemSpec spec;
  spec.dimension = 5;
  spec.monomials_per_polynomial = 6;
  spec.variables_per_monomial = 3;
  spec.max_exponent = 3;
  const auto sys = poly::make_random_system(spec);
  using Cdd = cplx::Complex<prec::DoubleDouble>;
  const auto x = poly::make_random_point<prec::DoubleDouble>(5, 11);

  poly::EvalResult<prec::DoubleDouble> naive(5), horner(5);
  sys.evaluate_naive<prec::DoubleDouble>(std::span<const Cdd>(x), naive.values,
                                         naive.jacobian);
  const poly::HornerSystem hs(sys);
  hs.evaluate<prec::DoubleDouble>(std::span<const Cdd>(x), horner);
  EXPECT_LT(poly::max_abs_diff(naive, horner), 1e-28);
}

TEST(Horner, FewerMultiplicationsThanNaiveOnDense) {
  // a dense-ish polynomial in 3 variables, all exponent combos <= 2
  poly::PolynomialBuilder b(3);
  for (unsigned e0 = 0; e0 <= 2; ++e0)
    for (unsigned e1 = 0; e1 <= 2; ++e1)
      for (unsigned e2 = 0; e2 <= 2; ++e2)
        b.add_term({1.0 + e0 + 2.0 * e1 + 3.0 * e2, 0.0}, {e0, e1, e2});
  const auto p = b.build();
  const poly::HornerPolynomial h(p);

  // naive: every monomial multiplies coefficient and repeated variables:
  // sum over monomials of total_degree (value only, coefficient product
  // excluded on both sides for fairness)
  std::uint64_t naive = 0;
  for (const auto& mono : p.monomials()) naive += mono.total_degree();
  EXPECT_LT(h.value_multiplications(), naive / 2);

  // and the value still matches
  const std::vector<Cd> x = {{1.1, 0.2}, {0.8, -0.3}, {1.05, 0.15}};
  EXPECT_LT(cplx::max_abs_diff(h.evaluate<double>(x), p.evaluate<double>(x)), 1e-12);
}

TEST(Horner, EmptyPolynomialIsZero) {
  const poly::Polynomial zero(3, {});
  const poly::HornerPolynomial h(zero);
  const std::vector<Cd> x(3, Cd{2.0, 1.0});
  EXPECT_EQ(h.evaluate<double>(x), Cd{});
  EXPECT_EQ(h.evaluate_derivative<double>(x, 1), Cd{});
}

TEST(Horner, DerivativeOfAbsentVariableIsZero) {
  const auto p = poly::parse_polynomial("x0^2 + 1", 3);
  const poly::HornerPolynomial h(p);
  const std::vector<Cd> x(3, Cd{2.0, 0.0});
  EXPECT_EQ(h.evaluate_derivative<double>(x, 2), Cd{});
}

}  // namespace
