// The measured autotuner (src/tune/): cache hit/miss semantics,
// deterministic JSON persistence with stale-hash rejection, and the
// load-bearing invariant of the whole layer -- tuning may change
// MODELED TIMING, never values.  Tuned-vs-heuristic evaluations are
// bitwise identical across double / double-double / quad-double and
// across shard counts, and the 2- vs 3-stream pipeline schedules agree
// bitwise while the 3-stream makespan never loses.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipelined_evaluator.hpp"
#include "core/sharded_evaluator.hpp"
#include "poly/random_system.hpp"
#include "prec/double_double.hpp"
#include "prec/quad_double.hpp"
#include "tune/autotuner.hpp"

namespace {

using namespace polyeval;

poly::PolynomialSystem make_system(unsigned n, unsigned m, unsigned k, unsigned d,
                                   std::uint64_t seed = 2012) {
  poly::SystemSpec spec;
  spec.dimension = n;
  spec.monomials_per_polynomial = m;
  spec.variables_per_monomial = k;
  spec.max_exponent = d;
  spec.seed = seed;
  return poly::make_random_system(spec);
}

tune::TuneKey key_for(unsigned n, unsigned batch = 8) {
  poly::UniformStructure s;
  s.n = n;
  s.m = 5;
  s.k = 3;
  s.d = 3;
  return tune::TuneKey::make(tune::TunedSchedule::kFused, s, batch, 0, 1,
                             simt::DeviceSpec::tesla_c2050());
}

/// A synthetic probe whose score is a function of the candidate; counts
/// invocations so hit/miss behaviour is observable.
struct FakeProbe {
  int* calls;
  std::optional<tune::ProbeOutcome> operator()(const tune::TuneCandidate& c) const {
    ++*calls;
    tune::ProbeOutcome out;
    // 64-thread blocks score best; SoA shaves a little more.
    out.modeled_us = 100.0 + (c.block_size == 64 ? -20.0 : 0.0) +
                     (c.interchange == core::InterchangeLayout::kSoA ? -5.0 : 0.0);
    simt::KernelStats k;
    k.kernel = "fake";
    k.global_load_requests = 10;
    k.global_load_transactions = 10;
    out.log.kernels.push_back(k);
    return out;
  }
};

TEST(TuneCache, MissProbesEveryCandidateAndHitProbesNone) {
  tune::Autotuner tuner;
  const auto key = key_for(8);
  const unsigned blocks[] = {32, 64, 128};
  const unsigned streams[] = {2};
  const auto candidates = tune::standard_candidates(32, blocks, streams);
  // Seed (32, AoS) + {AoS, SoA} x {32, 64, 128} with the seed deduped.
  ASSERT_EQ(candidates.size(), 6u);

  int calls = 0;
  const auto first = tuner.tune(key, candidates, FakeProbe{&calls});
  EXPECT_EQ(calls, 6);
  EXPECT_EQ(tuner.misses(), 1u);
  EXPECT_EQ(tuner.hits(), 0u);
  EXPECT_EQ(first.choice.block_size, 64u);
  EXPECT_EQ(first.choice.interchange, core::InterchangeLayout::kSoA);
  EXPECT_DOUBLE_EQ(first.modeled_us, 75.0);
  EXPECT_DOUBLE_EQ(first.heuristic_us, 100.0);  // candidate 0 = the seed
  EXPECT_GE(first.speedup(), 1.0);

  const auto second = tuner.tune(key, candidates, FakeProbe{&calls});
  EXPECT_EQ(calls, 6) << "a cache hit must not probe";
  EXPECT_EQ(tuner.hits(), 1u);
  EXPECT_EQ(second.choice, first.choice);
  EXPECT_DOUBLE_EQ(second.modeled_us, first.modeled_us);

  // A different key misses again.
  (void)tuner.tune(key_for(9), candidates, FakeProbe{&calls});
  EXPECT_EQ(tuner.misses(), 2u);
  EXPECT_EQ(calls, 12);
}

TEST(TuneCache, ExactTiesFallToTheProfileThenTheEarlierCandidate) {
  tune::Autotuner tuner;
  std::vector<tune::TuneCandidate> candidates(3);
  candidates[0].block_size = 32;
  candidates[1].block_size = 64;
  candidates[2].block_size = 96;

  // All candidates price identically; candidate 1 touches fewer global
  // segments, so the profile breaks the tie in its favour; candidate 2
  // matches 1 and must NOT displace it (earlier wins).
  const auto probe = [](const tune::TuneCandidate& c)
      -> std::optional<tune::ProbeOutcome> {
    tune::ProbeOutcome out;
    out.modeled_us = 50.0;
    simt::KernelStats k;
    k.kernel = "fake";
    k.global_load_transactions = c.block_size == 32 ? 40 : 20;
    out.log.kernels.push_back(k);
    return out;
  };
  const auto decision = tuner.tune(key_for(10), candidates, probe);
  EXPECT_EQ(decision.choice.block_size, 64u);
}

TEST(TuneCache, InfeasibleCandidatesAreSkippedAndAllInfeasibleThrows) {
  tune::Autotuner tuner;
  std::vector<tune::TuneCandidate> candidates(2);
  candidates[0].block_size = 32;
  candidates[1].block_size = 64;

  // The seed itself is infeasible: the winner doubles as the reference.
  const auto probe = [](const tune::TuneCandidate& c)
      -> std::optional<tune::ProbeOutcome> {
    if (c.block_size == 32) return std::nullopt;
    tune::ProbeOutcome out;
    out.modeled_us = 80.0;
    return out;
  };
  const auto decision = tuner.tune(key_for(11), candidates, probe);
  EXPECT_EQ(decision.choice.block_size, 64u);
  EXPECT_DOUBLE_EQ(decision.heuristic_us, decision.modeled_us);

  const auto never = [](const tune::TuneCandidate&)
      -> std::optional<tune::ProbeOutcome> { return std::nullopt; };
  EXPECT_THROW((void)tuner.tune(key_for(12), candidates, never),
               std::runtime_error);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

tune::TuneDecision decision_of(unsigned block, core::InterchangeLayout layout,
                               double modeled, double heuristic) {
  tune::TuneDecision d;
  d.choice.block_size = block;
  d.choice.interchange = layout;
  d.modeled_us = modeled;
  d.heuristic_us = heuristic;
  d.note = "block " + std::to_string(block);
  return d;
}

TEST(TuneCache, JsonRoundTripIsByteStableAndLossless) {
  tune::TuneCache cache;
  cache.insert(key_for(8), decision_of(64, core::InterchangeLayout::kSoA, 75.5, 100.25));
  cache.insert(key_for(16), decision_of(32, core::InterchangeLayout::kAoS, 42.0, 42.0));
  cache.insert(key_for(16, 777), decision_of(128, core::InterchangeLayout::kAoS, 9.5, 19.0));

  const std::string path1 = "test_tune_cache_1.json";
  const std::string path2 = "test_tune_cache_2.json";
  ASSERT_TRUE(cache.save(path1));

  tune::TuneCache reloaded;
  const auto result = reloaded.load(path1);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.accepted, 3u);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(reloaded.size(), 3u);

  // Lossless: every decision survives the trip.
  const tune::TuneDecision* d = reloaded.find(key_for(8));
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->choice.block_size, 64u);
  EXPECT_EQ(d->choice.interchange, core::InterchangeLayout::kSoA);
  EXPECT_DOUBLE_EQ(d->modeled_us, 75.5);
  EXPECT_DOUBLE_EQ(d->heuristic_us, 100.25);
  EXPECT_EQ(d->note, "block 64");

  // Byte-stable: save -> load -> save reproduces the file exactly.
  ASSERT_TRUE(reloaded.save(path2));
  EXPECT_EQ(slurp(path1), slurp(path2));
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(TuneCache, StaleOrTamperedEntriesAreRejected) {
  tune::TuneCache cache;
  cache.insert(key_for(8), decision_of(64, core::InterchangeLayout::kSoA, 75.0, 100.0));
  cache.insert(key_for(16, 777), decision_of(32, core::InterchangeLayout::kAoS, 50.0, 50.0));
  const std::string path = "test_tune_cache_stale.json";
  ASSERT_TRUE(cache.save(path));

  // Hand-edit one key field; its stored hash can no longer reproduce,
  // so the loader must drop that entry and keep the other.
  std::string text = slurp(path);
  const auto pos = text.find("\"batch\":777");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 11, "\"batch\":778");
  {
    std::ofstream out(path);
    out << text;
  }

  tune::TuneCache reloaded;
  const auto result = reloaded.load(path);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.accepted, 1u);
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_NE(reloaded.find(key_for(8)), nullptr);
  EXPECT_EQ(reloaded.find(key_for(16, 777)), nullptr);
  EXPECT_EQ(reloaded.find(key_for(16, 778)), nullptr);
  std::remove(path.c_str());
}

TEST(TuneCache, InMemoryDecisionsWinOverLoadedOnes) {
  tune::TuneCache file_cache;
  file_cache.insert(key_for(8), decision_of(64, core::InterchangeLayout::kSoA, 75.0, 100.0));
  const std::string path = "test_tune_cache_merge.json";
  ASSERT_TRUE(file_cache.save(path));

  tune::TuneCache cache;
  cache.insert(key_for(8), decision_of(96, core::InterchangeLayout::kAoS, 70.0, 100.0));
  const auto result = cache.load(path);
  EXPECT_TRUE(result.ok);
  const tune::TuneDecision* d = cache.find(key_for(8));
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->choice.block_size, 96u) << "a file entry must not shadow a measurement";
  std::remove(path.c_str());
}

TEST(TuneCache, NonCacheFilesAreReportedNotOk) {
  tune::TuneCache cache;
  EXPECT_FALSE(cache.load("does_not_exist_tune.json").ok);

  const std::string path = "test_tune_cache_bogus.json";
  {
    std::ofstream out(path);
    out << "{\"schema\":\"something-else\",\"entries\":[]}";
  }
  EXPECT_FALSE(cache.load(path).ok);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// The bitwise contract: tuning changes timing, never values.

template <prec::RealScalar S>
void expect_tuned_matches_heuristic_sharded(unsigned shards) {
  const auto sys = make_system(6, 5, 3, 3);
  std::vector<std::vector<cplx::Complex<S>>> points;
  for (unsigned p = 0; p < 12; ++p)
    points.push_back(poly::make_random_point<S>(6, 4200 + p));

  const auto run = [&](tune::TuningMode mode) {
    typename core::ShardedEvaluator<S>::Options opt;
    opt.shards = shards;
    opt.chunk_points = 4;
    opt.schedule = core::ShardSchedule::kStatic;
    opt.backend.tuning = mode;
    core::ShardedEvaluator<S> eval(sys, opt);
    std::vector<poly::EvalResult<S>> results;
    eval.evaluate(points, results);
    return results;
  };

  const auto tuned = run(tune::TuningMode::kMeasured);
  const auto heuristic = run(tune::TuningMode::kHeuristic);
  ASSERT_EQ(tuned.size(), heuristic.size());
  for (std::size_t p = 0; p < tuned.size(); ++p)
    EXPECT_EQ(poly::max_abs_diff(tuned[p], heuristic[p]), 0.0)
        << "shards " << shards << ", point " << p;
}

TEST(TuneParity, TunedMatchesHeuristicBitwiseDouble) {
  for (const unsigned shards : {1u, 2u, 4u})
    expect_tuned_matches_heuristic_sharded<double>(shards);
}

TEST(TuneParity, TunedMatchesHeuristicBitwiseDoubleDouble) {
  for (const unsigned shards : {1u, 2u, 4u})
    expect_tuned_matches_heuristic_sharded<prec::DoubleDouble>(shards);
}

TEST(TuneParity, TunedMatchesHeuristicBitwiseQuadDouble) {
  for (const unsigned shards : {1u, 2u, 4u})
    expect_tuned_matches_heuristic_sharded<prec::QuadDouble>(shards);
}

TEST(TuneParity, ThreeStreamPipelineIsBitwiseAndNeverModeledSlower) {
  // Transfer-heavy shape (small m, k: little arithmetic per byte
  // moved), where the download stream has actual queueing to dodge.
  const auto sys = make_system(16, 4, 2, 3);
  std::vector<std::vector<cplx::Complex<double>>> points;
  for (unsigned p = 0; p < 64; ++p)
    points.push_back(poly::make_random_point<double>(16, 7700 + p));

  const auto run = [&](unsigned streams, double& makespan_us) {
    simt::Device device;
    core::PipelinedFusedEvaluator<double>::Options opt;
    opt.block_size = 64;  // pinned: identical launches, only the
    opt.interchange = core::InterchangeLayout::kAoS;  // schedule differs
    opt.streams = streams;
    opt.micro_chunk = 8;
    core::PipelinedFusedEvaluator<double> eval(device, sys, 64, opt);
    std::vector<poly::EvalResult<double>> results;
    eval.evaluate(points, results);
    makespan_us = eval.modeled_pipelined_us();
    EXPECT_EQ(eval.streams(), streams);
    return results;
  };

  double makespan2 = 0.0, makespan3 = 0.0;
  const auto two = run(2, makespan2);
  const auto three = run(3, makespan3);
  ASSERT_EQ(two.size(), three.size());
  for (std::size_t p = 0; p < two.size(); ++p)
    EXPECT_EQ(poly::max_abs_diff(two[p], three[p]), 0.0) << "point " << p;
  EXPECT_GT(makespan2, 0.0);
  EXPECT_LE(makespan3, makespan2)
      << "a dedicated download stream can only relax FIFO constraints";
}

TEST(TuneParity, MeasuredResolutionIsDeterministicAcrossColdRuns) {
  // Two cold runs of the same workload must resolve the same geometry
  // and serialize byte-identical caches (the reproducibility half of
  // the acceptance bar).  The global tuner is cleared to force both
  // runs cold; decisions are re-measured from scratch.
  const auto sys = make_system(8, 6, 4, 3);
  const auto resolve = [&]() {
    tune::Autotuner::global().cache().clear();
    simt::Device device;
    core::FusedGpuEvaluator<double> fused(device, sys, 6);
    return fused.options();
  };

  const auto first = resolve();
  const std::string path1 = "test_tune_cold_1.json";
  ASSERT_TRUE(tune::Autotuner::global().cache().save(path1));

  const auto second = resolve();
  const std::string path2 = "test_tune_cold_2.json";
  ASSERT_TRUE(tune::Autotuner::global().cache().save(path2));

  EXPECT_EQ(first.block_size, second.block_size);
  EXPECT_EQ(first.interchange, second.interchange);
  EXPECT_EQ(slurp(path1), slurp(path2));
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(TuneProfile, ReportsFoldLaunchesAndDiagnose) {
  simt::LaunchLog log;
  simt::KernelStats a;
  a.kernel = "fused_eval";
  a.blocks = 4;
  a.threads = 128;
  a.global_load_requests = 10;
  a.global_load_transactions = 40;  // scattered: 4 segments per request
  a.shared_requests = 100;
  a.shared_cycles = 100;
  a.waves = 1;
  log.kernels.push_back(a);
  log.kernels.push_back(a);  // second launch of the same kernel folds in

  const auto report = tune::ProfileReport::from_log(log);
  ASSERT_EQ(report.kernels.size(), 1u);
  const auto& k = report.kernels.front();
  EXPECT_EQ(k.launches, 2u);
  EXPECT_EQ(k.load_requests, 20u);
  EXPECT_EQ(k.load_transactions, 80u);
  EXPECT_DOUBLE_EQ(k.load_transactions_per_request(), 4.0);
  EXPECT_NE(k.diagnosis().find("scatter"), std::string::npos);
  EXPECT_EQ(report.total_transactions(), 80u);
  EXPECT_NE(report.summary().find("fused_eval"), std::string::npos);
}

}  // namespace
