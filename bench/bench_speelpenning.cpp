// Claim C3 / ablation: the forward/backward Speelpenning gradient costs
// 3k-6 multiplications against the naive k(k-2); google-benchmark
// microbenchmarks measure the real effect on this host in double and
// double-double, and the op-count table verifies the closed forms.

#include <benchmark/benchmark.h>

#include <iostream>
#include <random>

#include "ad/speelpenning.hpp"
#include "benchutil/table.hpp"
#include "cplx/complex.hpp"
#include "prec/double_double.hpp"

namespace {

using namespace polyeval;

template <class S>
std::vector<cplx::Complex<S>> random_factors(std::size_t k) {
  cplx::UniformComplex<S> gen(2012);
  std::vector<cplx::Complex<S>> v(k);
  for (auto& z : v) z = gen();
  return v;
}

template <class S>
void BM_SpeelpenningForwardBackward(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto v = random_factors<S>(k);
  std::vector<cplx::Complex<S>> g(k);
  for (auto _ : state) {
    (void)ad::speelpenning_gradient(std::span<const cplx::Complex<S>>(v),
                                    std::span<cplx::Complex<S>>(g));
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(k));
}

template <class S>
void BM_SpeelpenningNaive(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto v = random_factors<S>(k);
  std::vector<cplx::Complex<S>> g(k);
  for (auto _ : state) {
    (void)ad::speelpenning_gradient_naive(std::span<const cplx::Complex<S>>(v),
                                          std::span<cplx::Complex<S>>(g));
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(k));
}

BENCHMARK(BM_SpeelpenningForwardBackward<double>)->Arg(4)->Arg(9)->Arg(16)->Arg(32);
BENCHMARK(BM_SpeelpenningNaive<double>)->Arg(4)->Arg(9)->Arg(16)->Arg(32);
BENCHMARK(BM_SpeelpenningForwardBackward<prec::DoubleDouble>)->Arg(9)->Arg(16);
BENCHMARK(BM_SpeelpenningNaive<prec::DoubleDouble>)->Arg(9)->Arg(16);

void print_op_table() {
  std::cout << "=== Speelpenning multiplication counts (claim C3) ===\n";
  benchutil::Table table(
      {"k", "fwd/bwd (3k-6)", "naive (k(k-2))", "kernel-2 total (5k-4)"});
  for (const unsigned k : {3u, 4u, 9u, 16u, 24u, 32u}) {
    std::vector<cplx::Complex<double>> v(k, cplx::Complex<double>(1.0)), g(k);
    const auto fast = ad::speelpenning_gradient(
        std::span<const cplx::Complex<double>>(v), std::span<cplx::Complex<double>>(g));
    const auto naive = ad::speelpenning_gradient_naive(
        std::span<const cplx::Complex<double>>(v), std::span<cplx::Complex<double>>(g));
    table.add_row({std::to_string(k), std::to_string(fast), std::to_string(naive),
                   std::to_string(ad::formulas::kernel2_mults(k))});
  }
  std::cout << table.to_string() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_op_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
