// Ablation: the paper fixes the block size at the warp size (32),
// citing the shared-memory budget of kernel 2 (B*(k+1) locations per
// block).  Sweep B and report the shared footprint, occupancy and
// modeled time; larger blocks raise arithmetic per block but choke
// residency, and past the budget the launch fails outright.
//
// Emits BENCH_block_size.json alongside the table.  All timing fields
// are on the modeled clock (named modeled_*), so the regression gate's
// host-wall categories ignore them; this bench is descriptive, not
// gated, and always exits 0.

#include <iostream>
#include <string>

#include "benchutil/json.hpp"
#include "benchutil/stamp.hpp"
#include "benchutil/table.hpp"
#include "core/gpu_evaluator.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"

namespace {

using namespace polyeval;

void sweep(unsigned k, unsigned d, const char* label, const char* json_name,
           benchutil::JsonWriter& json) {
  poly::SystemSpec spec;
  spec.dimension = 32;
  spec.monomials_per_polynomial = 48;
  spec.variables_per_monomial = k;
  spec.max_exponent = d;
  const auto sys = poly::make_random_system(spec);
  const auto x = poly::make_random_point<double>(32, 3);

  std::cout << label << " (1536 monomials):\n";
  benchutil::Table table({"block size", "K2 shared bytes", "K2 blocks/SM", "K2 waves",
                          "total us/eval", "status"});
  json.begin_object()
      .field("name", json_name)
      .field("dimension", spec.dimension)
      .field("monomials_per_polynomial", spec.monomials_per_polynomial)
      .field("variables_per_monomial", k)
      .field("max_exponent", d)
      .key("sweep");
  json.begin_array();
  for (const unsigned b : {16u, 32u, 64u, 128u, 256u, 512u}) {
    simt::Device device;
    core::GpuEvaluator<double>::Options opts;
    opts.block_size = b;
    core::GpuEvaluator<double> gpu(device, sys, opts);
    poly::EvalResult<double> r(32);
    try {
      gpu.evaluate(std::span<const cplx::Complex<double>>(x), r);
    } catch (const simt::LaunchError&) {
      table.add_row({std::to_string(b), "-", "-", "-", "-",
                     "infeasible (shared > 48KB)"});
      json.begin_object()
          .field("block_size", b)
          .field("feasible", false)
          .end_object();
      continue;
    }
    const simt::DeviceSpec dspec;
    const simt::GpuCostModel gmodel;
    const auto& k2 = gpu.last_log().kernels[1];
    const double modeled_us = simt::estimate_log_us(gpu.last_log(), dspec, gmodel);
    table.add_row({std::to_string(b), std::to_string(k2.shared_bytes_per_block),
                   std::to_string(k2.concurrent_blocks_per_sm),
                   std::to_string(k2.waves),
                   benchutil::format_fixed(modeled_us, 1), "ok"});
    json.begin_object()
        .field("block_size", b)
        .field("feasible", true)
        .field("k2_shared_bytes_per_block", k2.shared_bytes_per_block)
        .field("k2_concurrent_blocks_per_sm", k2.concurrent_blocks_per_sm)
        .field("k2_waves", k2.waves)
        .field("modeled_total_us", modeled_us)
        .end_object();
  }
  json.end_array().end_object();
  std::cout << table.to_string() << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Block-size ablation (the paper's B = 32 choice) ===\n\n";
  benchutil::JsonWriter json;
  json.begin_object().field("bench", "block_size");
  polyeval::benchutil::emit_stamp(json);
  json.key("workloads");
  json.begin_array();
  sweep(9, 2, "Table 1 workload, k = 9", "table1_k9", json);
  sweep(16, 10, "Table 2 workload, k = 16", "table2_k16", json);
  json.end_array().end_object();
  std::cout << "\"we try to keep the block size of the second kernel equal to 32,\n"
               " because of described above shared memory limited capacity\n"
               " considerations\" (section 3.3): kernel 2 needs B*(k+1) complex\n"
               "locations plus the n variable values per block, so large blocks\n"
               "first lose residency and then stop fitting at all.\n";
  if (json.write_file("BENCH_block_size.json"))
    std::cout << "\nwrote BENCH_block_size.json\n";
  return 0;
}
