// Ablation: the paper fixes the block size at the warp size (32),
// citing the shared-memory budget of kernel 2 (B*(k+1) locations per
// block).  Sweep B and report the shared footprint, occupancy and
// modeled time; larger blocks raise arithmetic per block but choke
// residency, and past the budget the launch fails outright.

#include <iostream>

#include "benchutil/table.hpp"
#include "core/gpu_evaluator.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"

namespace {

using namespace polyeval;

void sweep(unsigned k, unsigned d, const char* label) {
  poly::SystemSpec spec;
  spec.dimension = 32;
  spec.monomials_per_polynomial = 48;
  spec.variables_per_monomial = k;
  spec.max_exponent = d;
  const auto sys = poly::make_random_system(spec);
  const auto x = poly::make_random_point<double>(32, 3);

  std::cout << label << " (1536 monomials):\n";
  benchutil::Table table({"block size", "K2 shared bytes", "K2 blocks/SM", "K2 waves",
                          "total us/eval", "status"});
  for (const unsigned b : {16u, 32u, 64u, 128u, 256u, 512u}) {
    simt::Device device;
    core::GpuEvaluator<double>::Options opts;
    opts.block_size = b;
    core::GpuEvaluator<double> gpu(device, sys, opts);
    poly::EvalResult<double> r(32);
    try {
      gpu.evaluate(std::span<const cplx::Complex<double>>(x), r);
    } catch (const simt::LaunchError&) {
      table.add_row({std::to_string(b), "-", "-", "-", "-",
                     "infeasible (shared > 48KB)"});
      continue;
    }
    const simt::DeviceSpec dspec;
    const simt::GpuCostModel gmodel;
    const auto& k2 = gpu.last_log().kernels[1];
    table.add_row({std::to_string(b), std::to_string(k2.shared_bytes_per_block),
                   std::to_string(k2.concurrent_blocks_per_sm),
                   std::to_string(k2.waves),
                   benchutil::format_fixed(
                       simt::estimate_log_us(gpu.last_log(), dspec, gmodel), 1),
                   "ok"});
  }
  std::cout << table.to_string() << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Block-size ablation (the paper's B = 32 choice) ===\n\n";
  sweep(9, 2, "Table 1 workload, k = 9");
  sweep(16, 10, "Table 2 workload, k = 16");
  std::cout << "\"we try to keep the block size of the second kernel equal to 32,\n"
               " because of described above shared memory limited capacity\n"
               " considerations\" (section 3.3): kernel 2 needs B*(k+1) complex\n"
               "locations plus the n variable values per block, so large blocks\n"
               "first lose residency and then stop fitting at all.\n";
  return 0;
}
