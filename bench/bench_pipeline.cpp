// Stream-pipelined double-buffered evaluation: how much of the PCIe
// round trip the two-stream upload(i+1)/compute(i)/download(i-1)
// schedule hides, against the synchronous per-chunk schedule doing the
// same micro-chunked work.
//
// Two clocks, as everywhere in this repo (docs/ARCHITECTURE.md):
//
//   * the MODELED DEVICE CLOCK is where the pipelining lives: the
//     stream timeline overlaps copies (DMA engines) under kernels
//     (compute engine), and the overlap ratio -- synchronous schedule
//     cost / pipelined makespan -- is deterministic and gated >= 1.3x
//     on the transfer-bound dim-16 workload.  The compute-bound Table-1
//     workload is reported unGated: its transfers are a few percent of
//     the kernel time, so pipelining rightly buys little -- the bench
//     shows WHERE the technique pays, not just that it can.
//   * the HOST WALL CLOCK: stream commands execute eagerly, so the
//     pipelined evaluator should cost what the synchronous micro-chunk
//     path costs.  The <= 1.25x gate binds on full runs on >= 4 cores
//     (the bench_sharding policy); quick mode reports without gating.
//
// Results are checked bitwise against the synchronous path on every
// workload -- the determinism half of the stream contract.
//
// Emits BENCH_pipeline.json; `--quick` is the CI smoke configuration.

#include <cstring>
#include <iostream>
#include <thread>

#include "benchutil/json.hpp"
#include "benchutil/stamp.hpp"
#include "benchutil/table.hpp"
#include "benchutil/timer.hpp"
#include "core/pipelined_evaluator.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;
using Cd = cplx::Complex<double>;

struct Workload {
  const char* name;
  unsigned m, k;  ///< monomials per polynomial, variables per monomial
  bool gate_overlap;
};

struct Row {
  const char* name = nullptr;
  double wall_pipelined_us = 0.0;
  double wall_sync_us = 0.0;
  double modeled_pipelined_us = 0.0;
  double modeled_sync_us = 0.0;
  double overlap = 0.0;
  bool bitwise_identical = true;
};

poly::PolynomialSystem workload_system(unsigned dim, const Workload& w) {
  poly::SystemSpec spec;
  spec.dimension = dim;
  spec.monomials_per_polynomial = w.m;
  spec.variables_per_monomial = w.k;
  spec.max_exponent = 2;
  return poly::make_random_system(spec);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const unsigned dim = 16;
  const unsigned batch = quick ? 64 : 128;
  const unsigned micro_chunk = 8;
  const double min_seconds = quick ? 0.05 : 0.5;
  const unsigned host_cores = std::thread::hardware_concurrency();

  // Table-1 structure (compute-bound) and a Jacobian-download-bound
  // structure: same dimension and output volume, a fraction of the
  // arithmetic, so the PCIe term dominates and pipelining has latency
  // to hide.
  const Workload workloads[] = {
      {"table1_m22_k9", 22, 9, false},
      {"jacobian_bound_m4_k2", 4, 2, true},
  };

  std::cout << "=== Stream-pipelined double-buffered evaluation ===\n"
            << "dim " << dim << ", batch " << batch << ", micro-chunks of "
            << micro_chunk << " points, two streams (copy + compute)\n"
            << "host cores: " << host_cores << "\n\n";

  std::vector<std::vector<Cd>> points;
  for (unsigned p = 0; p < batch; ++p)
    points.push_back(poly::make_random_point<double>(dim, 100 + p));

  benchutil::Table table({"workload", "wall pipe us", "wall sync us", "wall ratio",
                          "modeled pipe us", "modeled sync us", "overlap",
                          "bitwise"});
  benchutil::JsonWriter json;
  json.begin_object();
  json.field("bench", "pipeline");
  polyeval::benchutil::emit_stamp(json);
  json.key("workload");
  json.begin_object()
      .field("dimension", dim)
      .field("batch", batch)
      .field("micro_chunk", micro_chunk)
      .field("max_exponent", 2u)
      .field("quick", quick)
      .end_object();
  json.field("host_hardware_concurrency", std::uint64_t{host_cores});
  json.key("workloads");
  json.begin_array();

  bool all_bitwise = true;
  double gated_overlap = 0.0;
  double gated_wall_ratio = 0.0;
  for (const auto& w : workloads) {
    const auto sys = workload_system(dim, w);
    Row row;
    row.name = w.name;

    // Synchronous per-chunk baseline: the pre-stream schedule, one
    // upload-launch-download round per micro-chunk.
    simt::Device sync_device;
    core::FusedGpuEvaluator<double> sync(sync_device, sys, micro_chunk);
    std::vector<poly::EvalResult<double>> sync_results(batch);
    const std::span<poly::EvalResult<double>> sync_out(sync_results);
    const auto run_sync = [&] {
      sync_device.clear_log();
      for (unsigned first = 0; first < batch; first += micro_chunk) {
        const unsigned count = std::min(micro_chunk, batch - first);
        sync.evaluate_range(points, first, count, sync_out.subspan(first, count));
      }
    };

    simt::Device pipe_device;
    core::PipelinedFusedEvaluator<double>::Options opt;
    opt.micro_chunk = micro_chunk;
    core::PipelinedFusedEvaluator<double> pipelined(pipe_device, sys, batch, opt);
    std::vector<poly::EvalResult<double>> pipe_results;
    const auto run_pipe = [&] {
      pipe_device.clear_log();
      pipelined.evaluate(points, pipe_results);
    };

    run_sync();
    run_pipe();
    for (unsigned p = 0; p < batch; ++p)
      if (poly::max_abs_diff(sync_results[p], pipe_results[p]) != 0.0) {
        row.bitwise_identical = false;
        break;
      }

    row.modeled_pipelined_us = pipelined.modeled_pipelined_us();
    row.modeled_sync_us = pipelined.modeled_synchronous_us();
    row.overlap = pipelined.modeled_overlap();
    row.wall_sync_us = benchutil::time_per_call(run_sync, min_seconds) * 1e6;
    row.wall_pipelined_us = benchutil::time_per_call(run_pipe, min_seconds) * 1e6;

    const double wall_ratio = row.wall_pipelined_us / row.wall_sync_us;
    if (w.gate_overlap) {
      gated_overlap = row.overlap;
      gated_wall_ratio = wall_ratio;
    }
    all_bitwise = all_bitwise && row.bitwise_identical;

    table.add_row({row.name, benchutil::format_fixed(row.wall_pipelined_us, 1),
                   benchutil::format_fixed(row.wall_sync_us, 1),
                   benchutil::format_fixed(wall_ratio, 2),
                   benchutil::format_fixed(row.modeled_pipelined_us, 1),
                   benchutil::format_fixed(row.modeled_sync_us, 1),
                   benchutil::format_speedup(row.overlap),
                   row.bitwise_identical ? "yes" : "NO"});
    json.begin_object()
        .field("name", row.name)
        .field("monomials_per_polynomial", w.m)
        .field("variables_per_monomial", w.k)
        .field("wall_us_per_batch_pipelined", row.wall_pipelined_us)
        .field("wall_us_per_batch_sync", row.wall_sync_us)
        .field("wall_ratio_pipelined_vs_sync", wall_ratio)
        .field("modeled_pipelined_us", row.modeled_pipelined_us)
        .field("modeled_synchronous_us", row.modeled_sync_us)
        .field("modeled_overlap", row.overlap)
        .field("overlap_gated", w.gate_overlap)
        .field("bitwise_identical_to_sync", row.bitwise_identical)
        .end_object();
  }
  json.end_array();

  // Gates.  Bitwise identity and the modeled overlap are deterministic
  // and bind in every mode; the host wall ratio is noise-prone on
  // shared CI hardware, so -- the bench_sharding policy -- it only
  // FAILS full runs on >= 4 cores and is reported otherwise.
  const double overlap_target = 1.3;
  const double wall_ratio_limit = 1.25;
  const bool overlap_ok = gated_overlap >= overlap_target;
  const bool wall_gate_applicable = !quick && host_cores >= 4;
  const bool wall_ok = !wall_gate_applicable || gated_wall_ratio <= wall_ratio_limit;
  json.field("overlap_target", overlap_target);
  json.field("overlap_achieved", gated_overlap);
  json.field("wall_ratio_limit", wall_ratio_limit);
  json.field("wall_gate_applicable", wall_gate_applicable);
  json.field("bitwise_identical_all", all_bitwise);
  json.field("gates_met", all_bitwise && overlap_ok && wall_ok);
  json.end_object();

  const char* out_path = "BENCH_pipeline.json";
  if (json.write_file(out_path))
    std::cout << table.to_string() << "\nwrote " << out_path << "\n";
  else
    std::cout << table.to_string() << "\nWARNING: could not write " << out_path << "\n";

  if (!all_bitwise) std::cout << "FAIL: pipelined results differ from synchronous\n";
  if (!overlap_ok)
    std::cout << "FAIL: modeled overlap " << gated_overlap << " < " << overlap_target
              << " on the transfer-bound workload\n";
  if (!wall_ok)
    std::cout << "FAIL: pipelined host wall " << gated_wall_ratio
              << "x the synchronous path (> " << wall_ratio_limit << ")\n";
  else if (!wall_gate_applicable)
    std::cout << "note: host wall gate waived ("
              << (quick ? "quick mode is a smoke run on shared hardware"
                        : "fewer than 4 cores")
              << "); bitwise and modeled-overlap gates still bind\n";

  return (all_bitwise && overlap_ok && wall_ok) ? 0 : 1;
}
