// Sparse pipeline vs nested Horner (the section-2 contrast): the paper
// recommends its common-factor + Speelpenning pipeline for SPARSE
// systems and defers dense ones to nested Horner schemes [Kojima 2008].
// This harness counts value-evaluation multiplications for both across
// a density sweep: few monomials of many variables (sparse regime, the
// paper's tables) to all-monomials-present (dense regime).

#include <iostream>

#include "ad/op_count.hpp"
#include "benchutil/table.hpp"
#include "poly/horner.hpp"
#include "poly/random_system.hpp"

namespace {

using namespace polyeval;

/// Dense system: every polynomial carries ALL monomials with exponents
/// <= d in k fixed variables (dense in a k-subset).
poly::PolynomialSystem make_dense(unsigned n, unsigned k, unsigned d) {
  std::vector<poly::Polynomial> polys;
  for (unsigned p = 0; p < n; ++p) {
    poly::PolynomialBuilder b(n);
    std::vector<unsigned> exps(n, 0);
    // iterate the full (d+1)^k grid over variables p, p+1, .., p+k-1 mod n
    std::vector<unsigned> digits(k, 0);
    for (;;) {
      std::fill(exps.begin(), exps.end(), 0u);
      bool all_zero = true;
      for (unsigned j = 0; j < k; ++j) {
        exps[(p + j) % n] = digits[j];
        if (digits[j] > 0) all_zero = false;
      }
      if (!all_zero)
        b.add_term({1.0 + static_cast<double>(digits[0]), 0.1}, exps);
      unsigned carry = 0;
      for (; carry < k; ++carry) {
        if (++digits[carry] <= d) break;
        digits[carry] = 0;
      }
      if (carry == k) break;
    }
    polys.push_back(b.build());
  }
  return poly::PolynomialSystem(std::move(polys));
}

/// Value-only multiplication cost of the paper's pipeline for a uniform
/// (n, m, k, d) system: powers table + common factors + (k-1)+2 per
/// monomial (see make_values_kernel).
std::uint64_t pipeline_value_mults(unsigned n, unsigned m, unsigned k, unsigned d) {
  const std::uint64_t monomials = std::uint64_t{n} * m;
  return n * ad::formulas::power_table_mults(d) +
         monomials * ad::formulas::common_factor_mults(k) + monomials * (k - 1 + 2);
}

}  // namespace

int main() {
  std::cout << "=== Sparse pipeline vs nested Horner (value evaluation) ===\n\n";

  std::cout << "Sparse regime (the paper's): n = 32, random supports\n";
  benchutil::Table sparse({"m/poly", "k", "d", "pipeline mults", "Horner mults",
                           "winner"});
  for (const auto& [m, k, d] :
       {std::tuple{22u, 9u, 2u}, std::tuple{32u, 9u, 2u}, std::tuple{22u, 16u, 10u},
        std::tuple{32u, 16u, 10u}}) {
    poly::SystemSpec spec;
    spec.dimension = 32;
    spec.monomials_per_polynomial = m;
    spec.variables_per_monomial = k;
    spec.max_exponent = d;
    const auto sys = poly::make_random_system(spec);
    const poly::HornerSystem horner(sys);
    const auto pipe = pipeline_value_mults(32, m, k, d);
    const auto horn = horner.value_multiplications();
    sparse.add_row({std::to_string(m), std::to_string(k), std::to_string(d),
                    std::to_string(pipe), std::to_string(horn),
                    pipe < horn ? "pipeline" : "Horner"});
  }
  std::cout << sparse.to_string() << "\n";

  std::cout << "Dense regime: n = 6, every monomial with exponents <= d in a\n"
               "k-variable window present ((d+1)^k - 1 monomials per polynomial)\n";
  benchutil::Table dense({"k", "d", "#monomials/poly", "naive mults", "Horner mults"});
  for (const auto& [k, d] : {std::tuple{2u, 3u}, std::tuple{3u, 2u}, std::tuple{3u, 3u},
                            std::tuple{4u, 2u}}) {
    const auto sys = make_dense(6, k, d);
    const poly::HornerSystem horner(sys);
    std::uint64_t naive = 0;
    for (const auto& p : sys.polynomials())
      for (const auto& mono : p.monomials()) naive += mono.total_degree();
    dense.add_row({std::to_string(k), std::to_string(d),
                   std::to_string(sys.polynomial(0).num_monomials()),
                   std::to_string(naive),
                   std::to_string(horner.value_multiplications())});
  }
  std::cout << dense.to_string() << "\n";

  std::cout
      << "Reading: for VALUES ONLY the Horner form is competitive at small d\n"
         "(it even wins the k = 9, d <= 2 workload) but loses at k = 16,\n"
         "d <= 10, where the pipeline's shared powers table pays off.  The\n"
         "pipeline's decisive advantages are elsewhere: it delivers ALL k\n"
         "derivatives for 3k-6 extra multiplications (Horner pays a full\n"
         "re-evaluation per variable), and its per-monomial threads are\n"
         "SIMT-uniform, while the recursive Horner form serializes.  On dense\n"
         "blocks Horner approaches one multiplication per term -- the regime\n"
         "the paper defers to nested Horner schemes.\n";
  return 0;
}
