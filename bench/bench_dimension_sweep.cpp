// Extension experiment: the paper's "working dimensions" discussion
// (sections 3.1-3.2) predicts dimensions 30-40 under the char encoding,
// more with compact encodings, and double-double up to dimension ~70
// when k <= n/2.  Sweep the dimension with m = n, k = n/2 and report
// constant-memory feasibility, shared-memory feasibility and the
// modeled speedup.

#include <iostream>

#include "ad/cpu_evaluator.hpp"
#include "benchutil/table.hpp"
#include "core/gpu_evaluator.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"

namespace {

using namespace polyeval;

struct Row {
  unsigned n = 0;
  std::uint64_t monomials = 0;
  bool char_fits = false;
  bool packed_fits = false;
  double speedup = 0.0;
  std::string status = "ok";
};

Row sweep_dim(unsigned n) {
  Row row;
  row.n = n;
  const unsigned m = n, k = n / 2, d = 4;
  row.monomials = std::uint64_t{n} * m;

  const simt::DeviceSpec dspec;
  const auto budget = dspec.constant_memory_bytes - dspec.constant_reserved_bytes;
  row.char_fits =
      core::constant_bytes_required(core::ExponentEncoding::kChar, row.monomials, k) <=
      budget;
  row.packed_fits = core::constant_bytes_required(core::ExponentEncoding::kPacked4Bit,
                                                  row.monomials, k) <= budget;

  poly::SystemSpec spec;
  spec.dimension = n;
  spec.monomials_per_polynomial = m;
  spec.variables_per_monomial = k;
  spec.max_exponent = d;
  const auto sys = poly::make_random_system(spec);
  const auto x = poly::make_random_point<double>(n, 3);

  simt::Device device;
  core::GpuEvaluator<double>::Options opts;
  opts.encoding = row.char_fits ? core::ExponentEncoding::kChar
                                : core::ExponentEncoding::kPacked4Bit;
  try {
    core::GpuEvaluator<double> gpu(device, sys, opts);
    poly::EvalResult<double> r(n);
    gpu.evaluate(std::span<const cplx::Complex<double>>(x), r);

    const simt::GpuCostModel gmodel;
    const simt::CpuCostModel cmodel;
    const double gpu_us = simt::estimate_log_us(gpu.last_log(), dspec, gmodel);
    ad::CpuEvaluator<double> cpu(sys);
    cpu.evaluate(std::span<const cplx::Complex<double>>(x), r);
    const auto& ops = cpu.last_op_counts();
    row.speedup =
        simt::estimate_cpu_us(ops.complex_mul, ops.complex_add, cmodel) / gpu_us;
  } catch (const simt::DeviceError& e) {
    row.status = "infeasible";
  }
  return row;
}

}  // namespace

int main() {
  std::cout << "=== Dimension sweep (m = n, k = n/2, d = 4, double) ===\n\n";
  benchutil::Table table(
      {"n", "#monomials", "char fits", "packed fits", "model speedup", "status"});
  for (const unsigned n : {16u, 24u, 32u, 40u, 44u, 48u, 56u, 64u}) {
    const auto row = sweep_dim(n);
    table.add_row({std::to_string(row.n), std::to_string(row.monomials),
                   row.char_fits ? "yes" : "NO", row.packed_fits ? "yes" : "NO",
                   row.status == "ok" ? benchutil::format_speedup(row.speedup) : "-",
                   row.status});
  }
  std::cout << table.to_string() << "\n";
  std::cout
      << "The char encoding runs out of constant memory just past dimension 40\n"
         "(the paper's working range); the 4-bit packing extends the range.  The\n"
         "modeled speedup keeps growing with the dimension because the monomial\n"
         "count (n*m = n^2) outgrows the fixed per-evaluation costs.\n";
  return 0;
}
