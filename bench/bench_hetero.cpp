// Heterogeneity-aware scheduling on a 2x-asymmetric two-device fleet:
// a full-clock Tesla C2050 next to a half-clock derate of the same
// geometry.  The identical-treatment scheduler (kStatic: chunk c ->
// shard c % 2) gives both cards the same work, so the modeled batch
// makespan is bound by the slow card; the throughput-weighted schedule
// (kWeightedStatic) sizes each card's quota by its weight -- measured
// kernel-us once the autotuner has probed both specs, modeled
// clock x cores before -- and the makespan drops toward the balanced
// optimum.
//
// Gates (all deterministic, bind in quick mode too):
//   * modeled-makespan improvement of weighted over identical-treatment
//     >= 1.3x for the compute-dominated scalars (double-double and
//     quad-double; plain double is reported but not gated -- at small
//     chunk sizes its kernels are launch-overhead-bound and no
//     placement can beat the overhead floor);
//   * bitwise parity: every schedule on the mixed fleet, and the solve
//     service driving the same fleet end to end, must reproduce the
//     single-device results bit for bit.  Placement moves timing,
//     never arithmetic.
//
// The per-device utilization leaves (utilization_min/_max) are
// reported for trend-watching, not gated: they move with the integer
// quota split at small chunk counts.
//
// Emits BENCH_hetero.json; `--quick` is the CI smoke configuration.

#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "benchutil/json.hpp"
#include "benchutil/stamp.hpp"
#include "benchutil/table.hpp"
#include "benchutil/timer.hpp"
#include "core/gpu_evaluator.hpp"
#include "core/sharded_evaluator.hpp"
#include "homotopy/sharded_solver.hpp"
#include "poly/random_system.hpp"
#include "service/solve_service.hpp"
#include "simt/timing.hpp"

namespace {

using namespace polyeval;

poly::PolynomialSystem table1_system(unsigned dim) {
  poly::SystemSpec spec;
  spec.dimension = dim;
  spec.monomials_per_polynomial = 22;  // Table 1 structure
  spec.variables_per_monomial = 9;
  spec.max_exponent = 2;
  return poly::make_random_system(spec);
}

/// The fleet under test: one full-clock card, one half-clock derate.
std::vector<simt::DeviceSpec> asym_fleet() {
  const auto fast = simt::DeviceSpec::tesla_c2050();
  return {fast, fast.derated(0.5, "half-clock C2050 (simulated)")};
}

struct ScheduleRow {
  const char* name = "";
  core::ShardSchedule schedule = core::ShardSchedule::kStatic;
  double modeled_makespan_us = 0.0;  ///< slowest device bounds the batch
  double modeled_sum_us = 0.0;
  double utilization_min = 0.0;  ///< device busy / makespan
  double utilization_max = 0.0;
  double wall_us_per_batch = 0.0;
  bool bitwise_identical = true;
};

struct ScalarResult {
  const char* scalar = "";
  std::vector<ScheduleRow> rows;
  double improvement_weighted_vs_static = 0.0;
  double improvement_stealing_vs_static = 0.0;
  bool parity_ok = true;
};

template <prec::RealScalar S>
ScalarResult run_scalar(const char* name, const poly::PolynomialSystem& sys,
                        unsigned dim, unsigned batch, unsigned chunk_points,
                        double min_seconds) {
  ScalarResult result;
  result.scalar = name;

  std::vector<std::vector<cplx::Complex<S>>> points;
  for (unsigned p = 0; p < batch; ++p)
    points.push_back(poly::make_random_point<S>(dim, 100 + p));

  // Single full-clock device: the bitwise reference every schedule and
  // both fleet members must reproduce.
  simt::Device reference_device;
  core::GpuEvaluator<S> reference(reference_device, sys);
  std::vector<poly::EvalResult<S>> want;
  want.reserve(batch);
  for (const auto& x : points)
    want.push_back(reference.evaluate(std::span<const cplx::Complex<S>>(x)));

  // Cost the logs the way the autotuner scores its probes: the scalar
  // cost factor makes double-double/quad-double kernels compute-bound,
  // which is exactly the regime where weighted placement pays.
  simt::GpuCostModel gmodel;
  gmodel.scalar_cost_factor = simt::scalar_cost_factor_for_width(
      static_cast<unsigned>(sizeof(S) / sizeof(double)));
  const ScheduleRow shapes[] = {
      {"static", core::ShardSchedule::kStatic},
      {"weighted_static", core::ShardSchedule::kWeightedStatic},
      {"work_stealing", core::ShardSchedule::kWorkStealing},
  };
  for (const auto& shape : shapes) {
    typename core::ShardedEvaluator<S>::Options opt;
    opt.specs = asym_fleet();
    opt.chunk_points = chunk_points;
    opt.schedule = shape.schedule;
    core::ShardedEvaluator<S> sharded(sys, opt);

    ScheduleRow row = shape;
    std::vector<poly::EvalResult<S>> got;
    sharded.evaluate(points, got);  // warm + correctness snapshot
    for (unsigned p = 0; p < batch; ++p)
      if (poly::max_abs_diff(want[p], got[p]) != 0.0) {
        row.bitwise_identical = false;
        result.parity_ok = false;
        break;
      }

    // A clean measured pass for the modeled numbers: construction-time
    // autotuner probes also launched on these devices, so the warm
    // run's logs are polluted.  Each device's log is costed with its
    // OWN spec -- that is the whole point of the fleet.
    sharded.registry().clear_logs();
    sharded.evaluate(points, got);
    double busy_min = 0.0, busy_max = 0.0;
    for (unsigned d = 0; d < sharded.registry().size(); ++d) {
      const double us = simt::estimate_log_us(sharded.registry().device(d).log(),
                                              sharded.registry().spec(d), gmodel);
      row.modeled_sum_us += us;
      if (d == 0) busy_min = busy_max = us;
      busy_min = std::min(busy_min, us);
      busy_max = std::max(busy_max, us);
    }
    row.modeled_makespan_us = busy_max;
    row.utilization_min = busy_max > 0.0 ? busy_min / busy_max : 0.0;
    row.utilization_max = busy_max > 0.0 ? 1.0 : 0.0;

    const double sec = benchutil::time_per_call(
        [&] { sharded.evaluate(points, got); }, min_seconds);
    row.wall_us_per_batch = sec * 1e6;
    result.rows.push_back(row);
  }

  const double base = result.rows[0].modeled_makespan_us;
  result.improvement_weighted_vs_static =
      base > 0.0 && result.rows[1].modeled_makespan_us > 0.0
          ? base / result.rows[1].modeled_makespan_us
          : 0.0;
  result.improvement_stealing_vs_static =
      base > 0.0 && result.rows[2].modeled_makespan_us > 0.0
          ? base / result.rows[2].modeled_makespan_us
          : 0.0;
  return result;
}

poly::PolynomialSystem request_system(std::uint32_t seed) {
  poly::SystemSpec spec;
  spec.dimension = 3;
  spec.monomials_per_polynomial = 3;
  spec.variables_per_monomial = 2;
  spec.max_exponent = 2;
  spec.seed = seed;
  return poly::make_random_system(spec);
}

bool paths_bitwise_equal(const std::vector<homotopy::TrackResult<double>>& a,
                         const std::vector<homotopy::TrackResult<double>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t p = 0; p < a.size(); ++p) {
    const auto& x = a[p];
    const auto& y = b[p];
    if (x.status != y.status || x.steps != y.steps ||
        x.rejections != y.rejections || x.winding != y.winding ||
        x.final_residual != y.final_residual ||
        x.solution.size() != y.solution.size())
      return false;
    for (std::size_t i = 0; i < x.solution.size(); ++i)
      if (cplx::max_abs_diff(x.solution[i], y.solution[i]) != 0.0) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const unsigned dim = 16;
  const unsigned batch = quick ? 64 : 128;
  const unsigned chunk_points = 4;  // 16 / 32 chunks over the 2-card fleet
  const double min_seconds = quick ? 0.02 : 0.2;
  const double target = 1.3;
  const auto sys = table1_system(dim);
  const auto fleet = asym_fleet();
  const simt::DeviceRegistry fleet_registry(fleet, 1);

  std::cout << "=== Heterogeneous fleet: weighted placement vs identical "
               "treatment ===\n"
            << "Table-1 structure, dim " << dim << ", batch " << batch
            << ", chunks of " << chunk_points << " points, fleet: "
            << fleet[0].name << " + " << fleet[1].name << " (weights ";
  for (unsigned d = 0; d < fleet_registry.size(); ++d)
    std::cout << (d ? " / " : "")
              << benchutil::format_fixed(fleet_registry.throughput_weight(d), 3);
  std::cout << ")\n\n";

  std::vector<ScalarResult> scalars;
  scalars.push_back(run_scalar<double>("double", sys, dim, batch, chunk_points,
                                       min_seconds));
  scalars.push_back(run_scalar<prec::DoubleDouble>(
      "double_double", sys, dim, batch, chunk_points, min_seconds));
  scalars.push_back(run_scalar<prec::QuadDouble>(
      "quad_double", sys, dim, quick ? 48 : 96, chunk_points, min_seconds));

  // -- the service front door on the same fleet: weighted slot fill ----
  // Same-structure requests through a mixed-fleet SolveService must
  // match their standalone solves bitwise, and the per-device busy
  // ledger yields end-to-end utilization.
  const unsigned num_requests = quick ? 2 : 4;
  solve::Options ropt;
  ropt.sharding.max_paths = 6;
  ropt.tracking.track.max_steps = 3000;
  std::vector<poly::PolynomialSystem> systems;
  for (unsigned r = 0; r < num_requests; ++r)
    systems.push_back(request_system(2000 + 13 * r));

  bool service_parity = true;
  service::ServiceStats service_stats;
  {
    service::SolveService<double>::Config config;
    config.specs = asym_fleet();
    service::SolveService<double> svc(std::move(config));
    std::vector<service::SolveTicket<double>> tickets;
    for (const auto& s : systems) tickets.push_back(svc.submit({s, ropt, {}, 0, 0.0}));
    svc.drain();
    service_stats = svc.stats();
    for (unsigned r = 0; r < num_requests; ++r) {
      const auto standalone = homotopy::solve_total_degree_sharded<double>(
          systems[r], ropt.to_sharded());
      if (!tickets[r].done() ||
          !paths_bitwise_equal(tickets[r].report().paths, standalone.paths)) {
        std::cout << "FAIL: service request " << r
                  << " differs from its standalone solve\n";
        service_parity = false;
      }
    }
  }
  double service_util_min = 0.0, service_util_max = 0.0;
  if (!service_stats.device_busy_us.empty() &&
      service_stats.total_modeled_us > 0.0) {
    service_util_min = service_util_max =
        service_stats.device_busy_us[0] / service_stats.total_modeled_us;
    for (const double busy : service_stats.device_busy_us) {
      const double u = busy / service_stats.total_modeled_us;
      service_util_min = std::min(service_util_min, u);
      service_util_max = std::max(service_util_max, u);
    }
  }

  // -- report and gates ------------------------------------------------
  benchutil::Table table({"scalar", "schedule", "modeled makespan us",
                          "modeled sum us", "util min", "improvement",
                          "bitwise"});
  bool parity_all = service_parity;
  for (const auto& s : scalars) {
    parity_all = parity_all && s.parity_ok;
    for (const auto& r : s.rows) {
      const double improvement =
          r.schedule == core::ShardSchedule::kWeightedStatic
              ? s.improvement_weighted_vs_static
          : r.schedule == core::ShardSchedule::kWorkStealing
              ? s.improvement_stealing_vs_static
              : 1.0;
      table.add_row({s.scalar, r.name,
                     benchutil::format_fixed(r.modeled_makespan_us, 1),
                     benchutil::format_fixed(r.modeled_sum_us, 1),
                     benchutil::format_fixed(r.utilization_min, 3),
                     benchutil::format_speedup(improvement),
                     r.bitwise_identical ? "yes" : "NO"});
    }
  }
  std::cout << table.to_string() << "\n";

  // The makespan gate binds on the compute-dominated scalars; plain
  // double at this chunk size is launch-overhead-bound and reported
  // only.
  bool makespan_gate_ok = true;
  for (const auto& s : scalars) {
    if (std::strcmp(s.scalar, "double") == 0) continue;
    if (s.improvement_weighted_vs_static < target) {
      std::cout << "FAIL: " << s.scalar << " weighted improvement "
                << benchutil::format_fixed(s.improvement_weighted_vs_static, 3)
                << " < " << target << "\n";
      makespan_gate_ok = false;
    }
  }
  if (!parity_all)
    std::cout << "FAIL: a schedule or the service diverged from the "
                 "single-device reference\n";

  benchutil::JsonWriter json;
  json.begin_object();
  json.field("bench", "hetero");
  polyeval::benchutil::emit_stamp(json);
  json.key("workload");
  json.begin_object()
      .field("dimension", dim)
      .field("monomials_per_polynomial", 22u)
      .field("variables_per_monomial", 9u)
      .field("max_exponent", 2u)
      .field("batch", batch)
      .field("chunk_points", chunk_points)
      .field("quick", quick)
      .end_object();
  json.key("fleet");
  json.begin_array();
  for (unsigned d = 0; d < fleet_registry.size(); ++d)
    json.begin_object()
        .field("name", fleet_registry.spec(d).name)
        .field("core_clock_mhz", fleet_registry.spec(d).core_clock_mhz)
        .field("multiprocessors", fleet_registry.spec(d).multiprocessors)
        .field("throughput_weight", fleet_registry.throughput_weight(d))
        .end_object();
  json.end_array();
  json.key("scalars");
  json.begin_array();
  for (const auto& s : scalars) {
    json.begin_object();
    json.field("scalar", s.scalar);
    json.key("schedules");
    json.begin_array();
    for (const auto& r : s.rows)
      json.begin_object()
          .field("schedule", r.name)
          .field("modeled_makespan_us", r.modeled_makespan_us)
          .field("modeled_sum_device_us", r.modeled_sum_us)
          .field("utilization_min", r.utilization_min)
          .field("utilization_max", r.utilization_max)
          .field("wall_us_per_batch", r.wall_us_per_batch)
          .field("bitwise_identical", r.bitwise_identical)
          .end_object();
    json.end_array();
    json.field("improvement_weighted_vs_static",
               s.improvement_weighted_vs_static);
    json.field("improvement_stealing_vs_static",
               s.improvement_stealing_vs_static);
    json.field("gated", std::strcmp(s.scalar, "double") != 0);
    json.end_object();
  }
  json.end_array();
  json.key("service");
  json.begin_object()
      .field("requests", num_requests)
      .field("bitwise_parity_vs_standalone", service_parity)
      .field("total_modeled_us", service_stats.total_modeled_us)
      .field("weighted_steals", service_stats.weighted_steals)
      .field("live_steals", service_stats.live_steals)
      .field("utilization_min", service_util_min)
      .field("utilization_max", service_util_max)
      .end_object();
  json.field("improvement_target", target);
  json.field("bitwise_parity_everywhere", parity_all);
  json.field("gates_met", parity_all && makespan_gate_ok);
  json.end_object();

  const char* out_path = "BENCH_hetero.json";
  if (json.write_file(out_path))
    std::cout << "wrote " << out_path << "\n";
  else
    std::cout << "WARNING: could not write " << out_path << "\n";

  return (parity_all && makespan_gate_ok) ? 0 : 1;
}
