// Ablation of the section-3.3 tradeoff: the paper stores the second
// kernel's output transposed so the third kernel's reads coalesce, at
// the price of scattered writes.  This harness runs both layouts on the
// Table-1 and Table-2 workloads and prices them with the timing model.

#include <iostream>

#include "benchutil/table.hpp"
#include "core/gpu_evaluator.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"

namespace {

using namespace polyeval;

struct LayoutRun {
  std::uint64_t k2_store_tx = 0;
  std::uint64_t k3_load_tx = 0;
  double k2_us = 0, k3_us = 0, total_us = 0;
};

LayoutRun run(const poly::PolynomialSystem& sys, core::MonsLayout layout) {
  simt::Device device;
  core::GpuEvaluator<double>::Options opts;
  opts.mons_layout = layout;
  core::GpuEvaluator<double> gpu(device, sys, opts);
  const auto x = poly::make_random_point<double>(gpu.dimension(), 3);
  poly::EvalResult<double> r(gpu.dimension());
  gpu.evaluate(std::span<const cplx::Complex<double>>(x), r);

  const simt::DeviceSpec dspec;
  const simt::GpuCostModel gmodel;
  const auto& ks = gpu.last_log().kernels;
  LayoutRun out;
  out.k2_store_tx = ks[1].global_store_transactions;
  out.k3_load_tx = ks[2].global_load_transactions;
  out.k2_us = simt::estimate_kernel_compute_us(ks[1], dspec, gmodel);
  out.k3_us = simt::estimate_kernel_compute_us(ks[2], dspec, gmodel);
  out.total_us = simt::estimate_log_us(gpu.last_log(), dspec, gmodel);
  return out;
}

void compare(unsigned k, unsigned d, const char* label) {
  poly::SystemSpec spec;
  spec.dimension = 32;
  spec.monomials_per_polynomial = 48;
  spec.variables_per_monomial = k;
  spec.max_exponent = d;
  const auto sys = poly::make_random_system(spec);

  const auto transposed = run(sys, core::MonsLayout::kTransposed);
  const auto output_major = run(sys, core::MonsLayout::kOutputMajor);

  std::cout << label << " (1536 monomials):\n";
  benchutil::Table table({"Mons layout", "K2 store tx", "K3 load tx", "K2 us",
                          "K3 us", "total us/eval"});
  table.add_row({"transposed (paper)", std::to_string(transposed.k2_store_tx),
                 std::to_string(transposed.k3_load_tx),
                 benchutil::format_fixed(transposed.k2_us, 2),
                 benchutil::format_fixed(transposed.k3_us, 2),
                 benchutil::format_fixed(transposed.total_us, 1)});
  table.add_row({"output-major (ablation)", std::to_string(output_major.k2_store_tx),
                 std::to_string(output_major.k3_load_tx),
                 benchutil::format_fixed(output_major.k2_us, 2),
                 benchutil::format_fixed(output_major.k3_us, 2),
                 benchutil::format_fixed(output_major.total_us, 1)});
  std::cout << table.to_string() << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Mons layout ablation (the tradeoff of section 3.3) ===\n\n";
  compare(9, 2, "Table 1 workload, k = 9, d <= 2");
  compare(16, 10, "Table 2 workload, k = 16, d <= 10");
  std::cout
      << "The paper chose coalesced kernel-3 reads at the price of scattered\n"
         "kernel-2 writes.  The transaction counts quantify both sides; the\n"
         "kernel-3 read volume (m terms per output, every evaluation) outweighs\n"
         "the one-time k+1 writes per monomial, which favours the transposed\n"
         "layout as m grows.\n";
  return 0;
}
