// Ablation of the section-3.3 tradeoff: the paper stores the second
// kernel's output transposed so the third kernel's reads coalesce, at
// the price of scattered writes.  This harness runs both layouts on the
// Table-1 and Table-2 workloads and prices them with the timing model.
//
// Emits BENCH_memory_layout.json alongside the table.  All timing
// fields are on the modeled clock (named modeled_*), so the regression
// gate's host-wall categories ignore them; this bench is descriptive,
// not gated, and always exits 0.

#include <iostream>
#include <string>

#include "benchutil/json.hpp"
#include "benchutil/stamp.hpp"
#include "benchutil/table.hpp"
#include "core/gpu_evaluator.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"

namespace {

using namespace polyeval;

struct LayoutRun {
  std::uint64_t k2_store_tx = 0;
  std::uint64_t k3_load_tx = 0;
  double k2_us = 0, k3_us = 0, total_us = 0;
};

LayoutRun run(const poly::PolynomialSystem& sys, core::MonsLayout layout) {
  simt::Device device;
  core::GpuEvaluator<double>::Options opts;
  opts.mons_layout = layout;
  core::GpuEvaluator<double> gpu(device, sys, opts);
  const auto x = poly::make_random_point<double>(gpu.dimension(), 3);
  poly::EvalResult<double> r(gpu.dimension());
  gpu.evaluate(std::span<const cplx::Complex<double>>(x), r);

  const simt::DeviceSpec dspec;
  const simt::GpuCostModel gmodel;
  const auto& ks = gpu.last_log().kernels;
  LayoutRun out;
  out.k2_store_tx = ks[1].global_store_transactions;
  out.k3_load_tx = ks[2].global_load_transactions;
  out.k2_us = simt::estimate_kernel_compute_us(ks[1], dspec, gmodel);
  out.k3_us = simt::estimate_kernel_compute_us(ks[2], dspec, gmodel);
  out.total_us = simt::estimate_log_us(gpu.last_log(), dspec, gmodel);
  return out;
}

void emit_layout(benchutil::JsonWriter& json, const char* key, const LayoutRun& r) {
  json.key(key)
      .begin_object()
      .field("k2_store_transactions", r.k2_store_tx)
      .field("k3_load_transactions", r.k3_load_tx)
      .field("modeled_k2_us", r.k2_us)
      .field("modeled_k3_us", r.k3_us)
      .field("modeled_total_us", r.total_us)
      .end_object();
}

void compare(unsigned k, unsigned d, const char* label, const char* json_name,
             benchutil::JsonWriter& json) {
  poly::SystemSpec spec;
  spec.dimension = 32;
  spec.monomials_per_polynomial = 48;
  spec.variables_per_monomial = k;
  spec.max_exponent = d;
  const auto sys = poly::make_random_system(spec);

  const auto transposed = run(sys, core::MonsLayout::kTransposed);
  const auto output_major = run(sys, core::MonsLayout::kOutputMajor);

  std::cout << label << " (1536 monomials):\n";
  benchutil::Table table({"Mons layout", "K2 store tx", "K3 load tx", "K2 us",
                          "K3 us", "total us/eval"});
  table.add_row({"transposed (paper)", std::to_string(transposed.k2_store_tx),
                 std::to_string(transposed.k3_load_tx),
                 benchutil::format_fixed(transposed.k2_us, 2),
                 benchutil::format_fixed(transposed.k3_us, 2),
                 benchutil::format_fixed(transposed.total_us, 1)});
  table.add_row({"output-major (ablation)", std::to_string(output_major.k2_store_tx),
                 std::to_string(output_major.k3_load_tx),
                 benchutil::format_fixed(output_major.k2_us, 2),
                 benchutil::format_fixed(output_major.k3_us, 2),
                 benchutil::format_fixed(output_major.total_us, 1)});
  std::cout << table.to_string() << "\n";

  json.begin_object()
      .field("name", json_name)
      .field("dimension", spec.dimension)
      .field("monomials_per_polynomial", spec.monomials_per_polynomial)
      .field("variables_per_monomial", k)
      .field("max_exponent", d);
  emit_layout(json, "transposed", transposed);
  emit_layout(json, "output_major", output_major);
  json.field("modeled_transposed_advantage",
             output_major.total_us > 0.0 ? output_major.total_us / transposed.total_us
                                         : 1.0)
      .end_object();
}

}  // namespace

int main() {
  std::cout << "=== Mons layout ablation (the tradeoff of section 3.3) ===\n\n";
  benchutil::JsonWriter json;
  json.begin_object().field("bench", "memory_layout");
  polyeval::benchutil::emit_stamp(json);
  json.key("workloads");
  json.begin_array();
  compare(9, 2, "Table 1 workload, k = 9, d <= 2", "table1_k9", json);
  compare(16, 10, "Table 2 workload, k = 16, d <= 10", "table2_k16", json);
  json.end_array().end_object();
  std::cout
      << "The paper chose coalesced kernel-3 reads at the price of scattered\n"
         "kernel-2 writes.  The transaction counts quantify both sides; the\n"
         "kernel-3 read volume (m terms per output, every evaluation) outweighs\n"
         "the one-time k+1 writes per monomial, which favours the transposed\n"
         "layout as m grows.\n";
  if (json.write_file("BENCH_memory_layout.json"))
    std::cout << "\nwrote BENCH_memory_layout.json\n";
  return 0;
}
