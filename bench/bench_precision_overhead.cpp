// Claim C2 / quality up: "the cost factor in the overhead of using
// double double arithmetic is around 8" (section 1), and the GPU can
// buy that overhead back.  This harness MEASURES the factor on this
// host with the real evaluators in double, double-double and
// quad-double, then prices the same workloads on the modeled GPU to
// show the quality-up crossover: GPU double-double vs one CPU core in
// double.

#include <iostream>

#include "ad/cpu_evaluator.hpp"
#include "benchutil/table.hpp"
#include "benchutil/timer.hpp"
#include "core/gpu_evaluator.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"

namespace {

using namespace polyeval;

template <class S>
double host_eval_seconds(const poly::PolynomialSystem& sys) {
  ad::CpuEvaluator<S> cpu(sys);
  const auto x = poly::make_random_point<S>(sys.dimension(), 3);
  poly::EvalResult<S> r(sys.dimension());
  return benchutil::time_per_call(
      [&] { cpu.evaluate(std::span<const cplx::Complex<S>>(x), r); }, 0.3);
}

template <class S>
double model_gpu_us(const poly::PolynomialSystem& sys, double cost_factor) {
  simt::Device device;
  core::GpuEvaluator<S> gpu(device, sys);
  const auto x = poly::make_random_point<S>(sys.dimension(), 3);
  poly::EvalResult<S> r(sys.dimension());
  gpu.evaluate(std::span<const cplx::Complex<S>>(x), r);
  simt::GpuCostModel gmodel;
  gmodel.scalar_cost_factor = cost_factor;
  return simt::estimate_log_us(gpu.last_log(), simt::DeviceSpec{}, gmodel);
}

}  // namespace

int main() {
  using prec::DoubleDouble;
  using prec::QuadDouble;
  std::cout << "=== Precision overhead and quality up (claim C2) ===\n"
            << "Workload: Table 1 shape (n = 32, m = 22, k = 9, d = 2).\n\n";

  poly::SystemSpec spec;
  spec.dimension = 32;
  spec.monomials_per_polynomial = 22;
  spec.variables_per_monomial = 9;
  spec.max_exponent = 2;
  const auto sys = poly::make_random_system(spec);

  const double t_d = host_eval_seconds<double>(sys);
  const double t_dd = host_eval_seconds<DoubleDouble>(sys);
  const double t_qd = host_eval_seconds<QuadDouble>(sys);

  benchutil::Table host({"precision", "host us/eval", "factor vs double"});
  host.add_row({"double", benchutil::format_fixed(t_d * 1e6, 1), "1.00"});
  host.add_row({"double-double", benchutil::format_fixed(t_dd * 1e6, 1),
                benchutil::format_fixed(t_dd / t_d, 2)});
  host.add_row({"quad-double", benchutil::format_fixed(t_qd * 1e6, 1),
                benchutil::format_fixed(t_qd / t_d, 2)});
  std::cout << host.to_string() << "\n";
  std::cout << "paper (section 1, citing the PASCO 2010 measurements): the double-\n"
               "double factor is 'around 8'.  Measured here: "
            << benchutil::format_fixed(t_dd / t_d, 2)
            << "x.  The factor is hardware-\n"
               "dependent: modern cores pipeline the 4 hardware multiplies of a\n"
               "complex double, while the error-free transforms of double-double\n"
               "form one long dependency chain, so the gap widens on newer CPUs --\n"
               "which only strengthens the paper's case for buying the overhead\n"
               "back with parallel hardware.\n\n";

  // Quality up: price the pipeline on the modeled C2050 with the
  // measured cost factors.
  const double factor_dd = t_dd / t_d;
  const double factor_qd = t_qd / t_d;
  const double gpu_d = model_gpu_us<double>(sys, 1.0);
  const double gpu_dd = model_gpu_us<DoubleDouble>(sys, factor_dd);
  const double gpu_qd = model_gpu_us<QuadDouble>(sys, factor_qd);

  const simt::CpuCostModel cmodel;
  ad::CpuEvaluator<double> cpu(sys);
  const auto x = poly::make_random_point<double>(32, 3);
  poly::EvalResult<double> r(32);
  cpu.evaluate(std::span<const cplx::Complex<double>>(x), r);
  const auto& ops = cpu.last_op_counts();
  const double cpu_d_us =
      simt::estimate_cpu_us(ops.complex_mul, ops.complex_add, cmodel);

  benchutil::Table qual({"configuration", "model us/eval", "vs 1 CPU core double"});
  qual.add_row({"1 CPU core, double", benchutil::format_fixed(cpu_d_us, 1), "1.00"});
  qual.add_row({"1 CPU core, double-double",
                benchutil::format_fixed(cpu_d_us * factor_dd, 1),
                benchutil::format_fixed(factor_dd, 2)});
  qual.add_row({"GPU (modeled), double", benchutil::format_fixed(gpu_d, 1),
                benchutil::format_fixed(gpu_d / cpu_d_us, 2)});
  qual.add_row({"GPU (modeled), double-double", benchutil::format_fixed(gpu_dd, 1),
                benchutil::format_fixed(gpu_dd / cpu_d_us, 2)});
  qual.add_row({"GPU (modeled), quad-double", benchutil::format_fixed(gpu_qd, 1),
                benchutil::format_fixed(gpu_qd / cpu_d_us, 2)});
  std::cout << qual.to_string() << "\n";

  std::cout << "quality up: the modeled GPU evaluates in double-double ";
  if (gpu_dd <= cpu_d_us)
    std::cout << "FASTER than\none CPU core evaluates in double ("
              << benchutil::format_fixed(cpu_d_us / gpu_dd, 2)
              << "x margin) -- extra precision at no wall-clock cost.\n";
  else
    std::cout << "within " << benchutil::format_fixed(gpu_dd / cpu_d_us, 2)
              << "x of\none CPU core in double.\n";
  return 0;
}
