// Ablation A2 (section 3.1): per-block recomputation of the powers
// table in shared memory (the paper's choice) vs a dedicated powers
// kernel writing global memory (the alternative the paper argues
// against: an extra launch plus global-memory round trips).  The
// recomputation costs (d-2) multiplications per variable per block, so
// the comparison shifts as d grows.

#include <iostream>

#include "benchutil/table.hpp"
#include "core/gpu_evaluator.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"

namespace {

using namespace polyeval;

struct Run {
  bool feasible = true;
  double total_us = 0;
  double k1_us = 0;  // powers-related kernels (K0 if present + K1)
  std::uint64_t powers_mults = 0;
  std::uint64_t global_tx = 0;
  unsigned launches = 0;
};

Run run(const poly::PolynomialSystem& sys,
        core::GpuEvaluator<double>::PowersStrategy strategy) {
  simt::Device device;
  core::GpuEvaluator<double>::Options opts;
  opts.powers = strategy;
  core::GpuEvaluator<double> gpu(device, sys, opts);
  const auto x = poly::make_random_point<double>(gpu.dimension(), 3);
  poly::EvalResult<double> r(gpu.dimension());
  try {
    gpu.evaluate(std::span<const cplx::Complex<double>>(x), r);
  } catch (const simt::LaunchError&) {
    // the fused strategy's shared Powers array (n*d complex values) can
    // outgrow the 48 KB block budget at large d
    return {false};
  }

  const simt::DeviceSpec dspec;
  const simt::GpuCostModel gmodel;
  Run out;
  out.total_us = simt::estimate_log_us(gpu.last_log(), dspec, gmodel);
  const auto& ks = gpu.last_log().kernels;
  out.launches = static_cast<unsigned>(ks.size());
  // All kernels before the Speelpenning one produce the common factors.
  for (const auto& k : ks) {
    if (k.kernel == "speelpenning") break;
    out.k1_us += simt::estimate_kernel_us(k, dspec, gmodel);
    out.powers_mults += k.complex_mul_total;
    out.global_tx += k.global_load_transactions + k.global_store_transactions;
  }
  return out;
}

void compare(unsigned d) {
  poly::SystemSpec spec;
  spec.dimension = 32;
  spec.monomials_per_polynomial = 48;
  spec.variables_per_monomial = 9;
  spec.max_exponent = d;
  const auto sys = poly::make_random_system(spec);

  const auto fused = run(sys, core::GpuEvaluator<double>::PowersStrategy::kPerBlockShared);
  const auto separate =
      run(sys, core::GpuEvaluator<double>::PowersStrategy::kSeparateKernel);

  std::cout << "d = " << d << " (1536 monomials, k = 9):\n";
  benchutil::Table table({"strategy", "launches", "CF-stage us", "CF-stage mults",
                          "CF-stage global tx", "total us/eval"});
  const auto add = [&](const char* name, const Run& run) {
    if (!run.feasible) {
      table.add_row({name, "-", "-", "-", "-", "infeasible (shared > 48KB)"});
      return;
    }
    table.add_row({name, std::to_string(run.launches),
                   benchutil::format_fixed(run.k1_us, 1),
                   std::to_string(run.powers_mults), std::to_string(run.global_tx),
                   benchutil::format_fixed(run.total_us, 1)});
  };
  add("per-block shared (paper)", fused);
  add("separate kernel + global", separate);
  std::cout << table.to_string() << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Powers-table strategy ablation (section 3.1) ===\n\n";
  for (const unsigned d : {2u, 10u, 30u, 100u}) compare(d);
  std::cout
      << "The paper's per-block recomputation repeats (d-2) multiplications per\n"
         "variable in every block but saves a kernel launch and the global-\n"
         "memory round trip; the separate kernel pays both.  'The degree d is\n"
         "in most cases not that high', so the fused strategy wins the paper's\n"
         "working range; only at large d does the balance shift.\n";
  return 0;
}
