// End-to-end path-tracking throughput: tracked paths per second for the
// lockstep batched tracker against the per-path baseline on Table-1
// style total-degree workloads -- the repo's first end-to-end number,
// and the workload the fused one-block-per-point schedule was built
// for.
//
// Two geometries ride the same harness.  The PROJECTIVE rows (the
// production default) report solved_frac -- the fraction of paths with
// a CLASSIFIED endpoint (converged or at infinity); the projective
// tracker + Cauchy endgame must classify > 90% of the dim-16 double
// workload (gated, and regression-gated against the committed
// baseline).  The AFFINE rows keep the historical escape-hatch
// behavior: random dense total-degree paths mostly stall just short of
// t = 1 (roots at infinity), but every path still runs its full
// predictor-corrector life either way, and the two modes are checked
// BITWISE identical path by path, so the work compared is exactly
// equal.  Projective results are additionally checked bitwise across
// lockstep/per-path modes and shard counts 1/2/4.
//
// Two clocks, as everywhere in this repo (docs/ARCHITECTURE.md):
//
//   * the MODELED DEVICE CLOCK is where the batching argument is
//     deterministic: the per-path tracker feeds the device one-block
//     grids (13 of 14 SMs idle, one launch per corrector stage), the
//     lockstep tracker sends the whole live set per launch.  Each
//     tracker's per-round launch logs are costed with the timing model;
//     the >= 2x gate on the dim-16 workload binds in every mode (the
//     measured ratio is far higher).
//   * the HOST WALL CLOCK end to end (track_paths_sharded with shards
//     and device workers): the lockstep mode keeps every device worker
//     busy inside each launch while the per-path mode leaves them
//     spinning at one block per launch.  The gated pair runs both
//     modes on ONE shard with four host threads (1 manager + 3 device
//     workers) -- identical resources, so the ratio isolates what
//     batching buys: per-path single-block launches can occupy only
//     one of the four threads, lockstep fills all of them.  The >= 2x
//     tracked-paths/sec gate binds on full runs on >= 4 cores (the
//     bench_sharding policy); quick mode and small hosts report
//     without gating.  The 2-shard configuration is reported
//     ungated alongside.
//
// Emits BENCH_tracking.json; `--quick` is the CI smoke configuration.

#include <cstring>
#include <iostream>
#include <thread>

#include "benchutil/json.hpp"
#include "benchutil/stamp.hpp"
#include "benchutil/table.hpp"
#include "benchutil/timer.hpp"
#include "homotopy/sharded_solver.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"

namespace {

using namespace polyeval;

poly::PolynomialSystem table1_system(unsigned dim) {
  poly::SystemSpec spec;
  spec.dimension = dim;
  spec.monomials_per_polynomial = 22;  // Table 1 structure
  spec.variables_per_monomial = 9;
  spec.max_exponent = 2;
  spec.seed = 42;
  return poly::make_random_system(spec);
}

template <prec::RealScalar S>
bool summaries_bitwise_equal(const homotopy::SolveSummary<S>& a,
                             const homotopy::SolveSummary<S>& b) {
  if (a.paths.size() != b.paths.size() || a.successes != b.successes ||
      a.at_infinity != b.at_infinity)
    return false;
  for (std::size_t p = 0; p < a.paths.size(); ++p) {
    const auto& x = a.paths[p];
    const auto& y = b.paths[p];
    if (x.success != y.success || x.status != y.status || x.winding != y.winding ||
        x.steps != y.steps ||
        x.rejections != y.rejections || x.final_residual != y.final_residual ||
        x.t_reached != y.t_reached || x.solution.size() != y.solution.size())
      return false;
    for (std::size_t i = 0; i < x.solution.size(); ++i)
      if (cplx::max_abs_diff(x.solution[i], y.solution[i]) != 0.0) return false;
  }
  return true;
}

struct ModeRow {
  double wall_us_per_path = 0.0;
  double paths_per_sec = 0.0;
  std::uint64_t successes = 0;
  std::uint64_t at_infinity = 0;
  double solved_frac = 0.0;  ///< classified endpoints / paths
  std::uint64_t steps = 0;
  std::uint64_t rejections = 0;
};

/// One end-to-end track_paths_sharded timing of `paths` total-degree
/// paths in the given mode (construction included: this is the number a
/// fresh solve pays).
template <prec::RealScalar S>
ModeRow run_mode(const poly::PolynomialSystem& sys, std::uint64_t paths,
                 homotopy::ShardTrackMode mode, homotopy::ShardEvalBackend backend,
                 unsigned shards, unsigned workers_per_shard, double min_seconds,
                 homotopy::SolveSummary<S>* out = nullptr,
                 unsigned max_steps = 3000,
                 homotopy::TrackGeometry geometry = homotopy::TrackGeometry::kAffine) {
  homotopy::ShardedSolveOptions opt;
  opt.shards = shards;
  opt.workers_per_shard = workers_per_shard;
  opt.max_paths = paths;
  opt.track.max_steps = max_steps;
  opt.mode = mode;
  opt.backend = backend;
  opt.geometry = geometry;

  ModeRow row;
  homotopy::SolveSummary<S> summary;
  const double sec = benchutil::time_per_call(
      [&] { summary = homotopy::solve_total_degree_sharded<S>(sys, opt); },
      min_seconds);
  if (summary.attempted != paths)
    std::cout << "WARNING: attempted " << summary.attempted << " of " << paths
              << " paths\n";
  row.wall_us_per_path = sec * 1e6 / static_cast<double>(paths);
  row.paths_per_sec = static_cast<double>(paths) / sec;
  row.successes = summary.successes;
  row.at_infinity = summary.at_infinity;
  row.solved_frac =
      static_cast<double>(summary.classified()) / static_cast<double>(paths);
  for (const auto& p : summary.paths) {
    row.steps += p.steps;
    row.rejections += p.rejections;
  }
  if (out) *out = std::move(summary);
  return row;
}

/// Modeled device time of the LOCKSTEP tracker: a single-shard direct
/// run, each round's launch log costed with the timing model (round()
/// clears the log on entry, so after it returns the log is exactly that
/// round's launches).
double modeled_lockstep_us(const poly::PolynomialSystem& sys, std::uint64_t paths) {
  using Cd = cplx::Complex<double>;
  const homotopy::TotalDegreeStart start(sys);
  const auto gamma = homotopy::random_gamma(20120102);
  std::vector<std::vector<Cd>> roots;
  for (std::uint64_t p = 0; p < paths; ++p) {
    const auto rd = start.start_root(p);
    std::vector<Cd> r;
    for (const auto& z : rd) r.push_back(z);
    roots.push_back(std::move(r));
  }

  simt::Device device;
  core::FusedGpuEvaluator<double> f(device, sys, static_cast<unsigned>(paths));
  ad::CpuEvaluator<double> g(start.system());
  homotopy::TrackOptions topt;
  topt.max_steps = 3000;
  homotopy::BatchPathTracker<double, core::FusedGpuEvaluator<double>> tracker(
      device, f, g, gamma, topt, paths);

  const simt::GpuCostModel cost;
  double total = 0.0;
  tracker.start(roots, 0, roots.size());
  for (;;) {
    const std::size_t live = tracker.round();
    total += simt::estimate_log_us(device.log(), device.spec(), cost);
    if (live == 0) break;
  }
  return total;
}

/// Modeled device time of the PER-PATH tracker: the scalar PathTracker
/// over a capacity-1 fused evaluator, one device log per path.
double modeled_perpath_us(const poly::PolynomialSystem& sys, std::uint64_t paths) {
  using Cd = cplx::Complex<double>;
  const homotopy::TotalDegreeStart start(sys);
  const auto gamma = homotopy::random_gamma(20120102);

  simt::Device device;
  core::FusedGpuEvaluator<double> f(device, sys, 1);
  ad::CpuEvaluator<double> g(start.system());
  homotopy::Homotopy<double, core::FusedGpuEvaluator<double>, ad::CpuEvaluator<double>>
      h(f, g, gamma);
  homotopy::TrackOptions topt;
  topt.max_steps = 3000;
  homotopy::PathTracker<double, core::FusedGpuEvaluator<double>,
                        ad::CpuEvaluator<double>>
      tracker(h, topt);

  const simt::GpuCostModel cost;
  double total = 0.0;
  for (std::uint64_t p = 0; p < paths; ++p) {
    const auto rd = start.start_root(p);
    std::vector<Cd> root;
    for (const auto& z : rd) root.push_back(z);
    device.clear_log();
    (void)tracker.track(std::span<const Cd>(root));
    total += simt::estimate_log_us(device.log(), device.spec(), cost);
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const unsigned shards = 2;
  const unsigned host_cores = std::thread::hardware_concurrency();
  const double min_seconds = 0.01;  // one tracking run is itself seconds

  const std::uint64_t paths16 = quick ? 6 : 16;
  /// The modeled batching win scales with the batch (B blocks fill B of
  /// the 14 SMs); 8 paths is comfortably past the 2x gate while staying
  /// smoke-test sized.
  const std::uint64_t paths_modeled = 8;

  std::cout << "=== Lockstep batched tracking throughput (tracked paths/sec) ===\n"
            << "Table-1 structure, total-degree start; gated pair: 1 shard x 4 "
               "host threads, reported pairs: "
            << shards << " shards x 2 threads\n"
            << "host cores: " << host_cores << "\n\n";

  benchutil::Table table({"workload", "mode", "wall us/path", "paths/sec",
                          "ok", "inf", "solved", "steps", "rej"});
  benchutil::JsonWriter json;
  json.begin_object();
  json.field("bench", "tracking");
  polyeval::benchutil::emit_stamp(json);
  json.key("workload");
  json.begin_object()
      .field("monomials_per_polynomial", 22u)
      .field("variables_per_monomial", 9u)
      .field("max_exponent", 2u)
      .field("shards", shards)
      .field("workers_per_shard", 1u)
      .field("max_steps", 3000u)
      .field("quick", quick)
      .end_object();
  json.field("host_hardware_concurrency", std::uint64_t{host_cores});
  json.key("rows");
  json.begin_array();

  const auto emit = [&](const char* workload, const char* mode, const ModeRow& r) {
    table.add_row({workload, mode, benchutil::format_fixed(r.wall_us_per_path, 1),
                   benchutil::format_fixed(r.paths_per_sec, 3),
                   std::to_string(r.successes), std::to_string(r.at_infinity),
                   benchutil::format_fixed(r.solved_frac, 3),
                   std::to_string(r.steps), std::to_string(r.rejections)});
    json.begin_object()
        .field("workload", workload)
        .field("mode", mode)
        .field("wall_us_per_path", r.wall_us_per_path)
        .field("paths_per_sec", r.paths_per_sec)
        .field("successes", r.successes)
        .field("at_infinity", r.at_infinity)
        .field("solved_frac", r.solved_frac)
        .field("steps", r.steps)
        .field("rejections", r.rejections)
        .end_object();
  };

  // -- dim 16, double: the gated pair -----------------------------------
  // One shard, four host threads (manager + 3 device workers) for BOTH
  // modes: identical resources, so tracked-paths/sec isolates the
  // launch-level parallelism batching buys.
  const auto sys16 = table1_system(16);
  homotopy::SolveSummary<double> lockstep16, perpath16;
  const auto row_lock16 =
      run_mode<double>(sys16, paths16, homotopy::ShardTrackMode::kLockstep,
                       homotopy::ShardEvalBackend::kFused, 1, 3, min_seconds,
                       &lockstep16);
  emit("table1_dim16", "lockstep_fused_1x4", row_lock16);
  const auto row_path16 =
      run_mode<double>(sys16, paths16, homotopy::ShardTrackMode::kPerPath,
                       homotopy::ShardEvalBackend::kFused, 1, 3, min_seconds,
                       &perpath16);
  emit("table1_dim16", "perpath_fused_1x4", row_path16);
  bool bitwise16 = summaries_bitwise_equal(lockstep16, perpath16);

  // The 2-shard configuration (1 worker each), reported ungated.
  {
    homotopy::SolveSummary<double> lock2, path2;
    emit("table1_dim16", "lockstep_fused_2x2",
         run_mode<double>(sys16, paths16, homotopy::ShardTrackMode::kLockstep,
                          homotopy::ShardEvalBackend::kFused, shards, 1,
                          min_seconds, &lock2));
    emit("table1_dim16", "perpath_fused_2x2",
         run_mode<double>(sys16, paths16, homotopy::ShardTrackMode::kPerPath,
                          homotopy::ShardEvalBackend::kFused, shards, 1,
                          min_seconds, &path2));
    bitwise16 = bitwise16 && summaries_bitwise_equal(lock2, path2) &&
                summaries_bitwise_equal(lockstep16, lock2);
  }

  // -- dim 16, double, PROJECTIVE: the solved-paths rows ----------------
  // The tentpole numbers: the projective tracker + Cauchy endgame must
  // CLASSIFY > 90% of the same workload whose affine rows report ~0
  // successes, and projective lockstep results must be bitwise
  // identical to the scalar (per-path) projective tracker and across
  // shard counts 1/2/4.
  homotopy::SolveSummary<double> proj_lock, proj_path;
  const auto row_proj_lock =
      run_mode<double>(sys16, paths16, homotopy::ShardTrackMode::kLockstep,
                       homotopy::ShardEvalBackend::kFused, 1, 3, min_seconds,
                       &proj_lock, 3000, homotopy::TrackGeometry::kProjective);
  emit("table1_dim16_proj", "lockstep_fused_1x4", row_proj_lock);
  const auto row_proj_path =
      run_mode<double>(sys16, paths16, homotopy::ShardTrackMode::kPerPath,
                       homotopy::ShardEvalBackend::kFused, 1, 3, min_seconds,
                       &proj_path, 3000, homotopy::TrackGeometry::kProjective);
  emit("table1_dim16_proj", "perpath_fused_1x4", row_proj_path);
  bool proj_bitwise = summaries_bitwise_equal(proj_lock, proj_path);
  for (const unsigned proj_shards : {2u, 4u}) {
    homotopy::SolveSummary<double> proj_s;
    emit("table1_dim16_proj",
         proj_shards == 2 ? "lockstep_fused_2shard" : "lockstep_fused_4shard",
         run_mode<double>(sys16, paths16, homotopy::ShardTrackMode::kLockstep,
                          homotopy::ShardEvalBackend::kFused, proj_shards, 1,
                          min_seconds, &proj_s, 3000,
                          homotopy::TrackGeometry::kProjective));
    proj_bitwise = proj_bitwise && summaries_bitwise_equal(proj_lock, proj_s);
  }
  const double proj_solved_frac = row_proj_lock.solved_frac;

  // Modeled device clock, single shard: deterministic on any host.
  const double modeled_lock_us = modeled_lockstep_us(sys16, paths_modeled);
  const double modeled_path_us = modeled_perpath_us(sys16, paths_modeled);
  const double modeled_speedup =
      modeled_lock_us > 0.0 ? modeled_path_us / modeled_lock_us : 0.0;

  // Pipelined backend: the corrector batches finally give the streams
  // transfers to hide (reported; parity is covered by the test suite).
  homotopy::SolveSummary<double> piped16;
  const auto row_pipe16 =
      run_mode<double>(sys16, paths16, homotopy::ShardTrackMode::kLockstep,
                       homotopy::ShardEvalBackend::kPipelined, shards, 1,
                       min_seconds, &piped16);
  emit("table1_dim16", "lockstep_pipelined", row_pipe16);
  bool bitwise_all = bitwise16 && summaries_bitwise_equal(lockstep16, piped16);

  // -- extended precision: the quality-up rows ---------------------------
  const std::uint64_t paths_dd = 2;
  emit("table1_dim16_dd", "lockstep_fused",
       run_mode<prec::DoubleDouble>(sys16, paths_dd,
                                    homotopy::ShardTrackMode::kLockstep,
                                    homotopy::ShardEvalBackend::kFused, shards, 1,
                                    min_seconds));
  if (!quick) {
    emit("table1_dim16_dd", "perpath_fused",
         run_mode<prec::DoubleDouble>(sys16, paths_dd,
                                      homotopy::ShardTrackMode::kPerPath,
                                      homotopy::ShardEvalBackend::kFused, shards, 1,
                                      min_seconds));
    // qd arithmetic is ~40x double; cap the row's step budget so the
    // full bench stays minutes-free (report-only row either way).
    emit("table1_dim16_qd", "lockstep_fused",
         run_mode<prec::QuadDouble>(sys16, 1, homotopy::ShardTrackMode::kLockstep,
                                    homotopy::ShardEvalBackend::kFused, shards, 1,
                                    min_seconds, nullptr, 300));

    // -- dim 32: the larger Table-1 column -------------------------------
    const auto sys32 = table1_system(32);
    homotopy::SolveSummary<double> lockstep32, perpath32;
    const auto row_lock32 =
        run_mode<double>(sys32, 4, homotopy::ShardTrackMode::kLockstep,
                         homotopy::ShardEvalBackend::kFused, shards, 1,
                         min_seconds, &lockstep32);
    emit("table1_dim32", "lockstep_fused", row_lock32);
    const auto row_path32 =
        run_mode<double>(sys32, 4, homotopy::ShardTrackMode::kPerPath,
                         homotopy::ShardEvalBackend::kFused, shards, 1,
                         min_seconds, &perpath32);
    emit("table1_dim32", "perpath_fused", row_path32);
    if (!summaries_bitwise_equal(lockstep32, perpath32)) {
      std::cout << "FAIL: dim-32 lockstep results differ from per-path\n";
      bitwise_all = false;
    }
  }
  json.end_array();

  const double host_speedup = row_lock16.paths_per_sec / row_path16.paths_per_sec;

  // Gates.  Bitwise identity across modes and the modeled batching
  // speedup are deterministic and bind in every mode.  The host
  // tracked-paths/sec gate needs cores to back the shard threads, so --
  // the bench_sharding policy -- it binds on full runs on >= 4 cores
  // and is reported otherwise.
  const double target = 2.0;
  const double solved_target = 0.9;
  const bool host_gate_applicable = !quick && host_cores >= 4;
  const bool host_gate_ok = !host_gate_applicable || host_speedup >= target;
  const bool modeled_gate_ok = modeled_speedup >= target;
  const bool bitwise_ok = bitwise_all;
  const bool solved_gate_ok = proj_solved_frac > solved_target;
  const bool proj_bitwise_ok = proj_bitwise;
  json.field("speedup_target", target);
  json.field("host_speedup_lockstep_vs_perpath", host_speedup);
  json.field("host_gate_applicable", host_gate_applicable);
  json.field("modeled_perpath_us", modeled_path_us);
  json.field("modeled_lockstep_us", modeled_lock_us);
  json.field("modeled_speedup_lockstep_vs_perpath", modeled_speedup);
  json.field("bitwise_identical_across_modes", bitwise_ok);
  json.field("solved_frac_target", solved_target);
  json.field("projective_solved_frac", proj_solved_frac);
  json.field("projective_bitwise_modes_and_shards", proj_bitwise_ok);
  json.field("gates_met", bitwise_ok && host_gate_ok && modeled_gate_ok &&
                              solved_gate_ok && proj_bitwise_ok);
  json.end_object();

  std::cout << table.to_string() << "\n"
            << "host lockstep/per-path tracked-paths/sec: "
            << benchutil::format_speedup(host_speedup) << "\n"
            << "modeled device clock, " << paths_modeled
            << " paths, 1 shard: per-path "
            << benchutil::format_fixed(modeled_path_us, 1) << " us -> lockstep "
            << benchutil::format_fixed(modeled_lock_us, 1) << " us ("
            << benchutil::format_speedup(modeled_speedup) << ")\n";

  const char* out_path = "BENCH_tracking.json";
  if (json.write_file(out_path))
    std::cout << "wrote " << out_path << "\n";
  else
    std::cout << "WARNING: could not write " << out_path << "\n";

  std::cout << "projective solved_frac (dim-16 double): "
            << benchutil::format_fixed(proj_solved_frac, 3) << " (target > "
            << benchutil::format_fixed(solved_target, 2) << ")\n";
  if (!bitwise_ok) std::cout << "FAIL: lockstep results differ from per-path\n";
  if (!solved_gate_ok)
    std::cout << "FAIL: projective solved_frac " << proj_solved_frac
              << " below " << solved_target << "\n";
  if (!proj_bitwise_ok)
    std::cout << "FAIL: projective results differ across modes/shard counts\n";
  if (!modeled_gate_ok)
    std::cout << "FAIL: modeled lockstep speedup " << modeled_speedup << " < "
              << target << "\n";
  if (!host_gate_ok)
    std::cout << "FAIL: host tracked-paths/sec speedup " << host_speedup << " < "
              << target << " with " << host_cores << " cores\n";
  else if (!host_gate_applicable)
    std::cout << "note: host throughput gate waived ("
              << (quick ? "quick mode is a smoke run on shared hardware"
                        : "fewer than 4 cores")
              << "); bitwise and modeled gates still bind\n";

  return (bitwise_ok && host_gate_ok && modeled_gate_ok && solved_gate_ok &&
          proj_bitwise_ok)
             ? 0
             : 1;
}
