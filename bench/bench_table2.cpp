// Reproduces Table 2 of the paper: wall clock times and speedups for
// 100,000 evaluations of a polynomial system and its Jacobian matrix of
// dimension 32; each monomial has 16 variables with nonzero power of at
// most 10; 704 / 1024 / 1536 monomials in total.

#include "benchutil/table_repro.hpp"

int main() {
  using namespace polyeval::benchutil;
  const auto repro = reproduce_table(paper_table2());
  print_table_repro(repro,
                    "=== Table 2 reproduction: k = 16 variables, d <= 10 ===");
  return 0;
}
