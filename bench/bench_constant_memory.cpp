// Claim C1 (section 4): "Increasing the number of monomials to 2,048
// would have yielded a speedup of more than 20, but the capacity of the
// constant memory was not sufficient to hold the exponents and
// positions of all 2,048 monomials."  This harness sweeps the monomial
// count under the char encoding until the 64 KB budget breaks, then
// shows the paper's announced compact encoding lifting the cap, with
// the modeled speedup the paper extrapolated.

#include <iostream>

#include "benchutil/table.hpp"
#include "core/gpu_evaluator.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"
#include "ad/cpu_evaluator.hpp"

namespace {

using namespace polyeval;

struct Attempt {
  unsigned monomials;
  core::ExponentEncoding encoding;
  bool fits = false;
  std::uint64_t const_bytes = 0;
  double model_speedup = 0.0;
  std::string note;
};

Attempt attempt(unsigned total_monomials, core::ExponentEncoding enc) {
  Attempt a;
  a.monomials = total_monomials;
  a.encoding = enc;
  a.const_bytes = core::constant_bytes_required(enc, total_monomials, 16);

  poly::SystemSpec spec;
  spec.dimension = 32;
  spec.monomials_per_polynomial = total_monomials / 32;
  spec.variables_per_monomial = 16;
  spec.max_exponent = 10;
  const auto sys = poly::make_random_system(spec);
  const auto x = poly::make_random_point<double>(32, 3);

  simt::Device device;
  core::GpuEvaluator<double>::Options opts;
  opts.encoding = enc;
  try {
    core::GpuEvaluator<double> gpu(device, sys, opts);
    poly::EvalResult<double> r(32);
    gpu.evaluate(std::span<const cplx::Complex<double>>(x), r);
    a.fits = true;

    const simt::DeviceSpec dspec;
    const simt::GpuCostModel gmodel;
    const simt::CpuCostModel cmodel;
    const double gpu_us = simt::estimate_log_us(gpu.last_log(), dspec, gmodel);
    ad::CpuEvaluator<double> cpu(sys);
    cpu.evaluate(std::span<const cplx::Complex<double>>(x), r);
    const auto& ops = cpu.last_op_counts();
    a.model_speedup =
        simt::estimate_cpu_us(ops.complex_mul, ops.complex_add, cmodel) / gpu_us;
  } catch (const simt::ConstantMemoryOverflow& e) {
    a.note = e.what();
  }
  return a;
}

}  // namespace

int main() {
  using benchutil::Table;
  std::cout << "=== Constant-memory capacity (claim C1, section 4) ===\n"
            << "Workload: dimension 32, k = 16, d <= 10 (Table 2 shape).\n\n";

  Table table({"#monomials", "encoding", "const bytes", "fits 64KB?", "model speedup"});
  for (const unsigned m : {704u, 1024u, 1536u, 2048u}) {
    for (const auto enc :
         {core::ExponentEncoding::kChar, core::ExponentEncoding::kPacked4Bit}) {
      const auto a = attempt(m, enc);
      table.add_row({std::to_string(a.monomials),
                     enc == core::ExponentEncoding::kChar ? "char (paper)"
                                                          : "packed 4-bit",
                     std::to_string(a.const_bytes), a.fits ? "yes" : "NO",
                     a.fits ? benchutil::format_speedup(a.model_speedup) : "-"});
    }
  }
  std::cout << table.to_string() << "\n";

  const simt::DeviceSpec spec;
  const auto budget = spec.constant_memory_bytes - spec.constant_reserved_bytes;
  std::cout << "usable constant memory: " << budget << " bytes ("
            << spec.constant_memory_bytes << " minus " << spec.constant_reserved_bytes
            << " reserved by the toolchain)\n";
  for (const unsigned k : {9u, 15u, 16u, 20u, 24u}) {
    std::cout << "  k = " << k << ": max monomials char = "
              << core::max_monomials_for_budget(core::ExponentEncoding::kChar, budget, k)
              << ", packed = "
              << core::max_monomials_for_budget(core::ExponentEncoding::kPacked4Bit,
                                                budget, k)
              << "\n";
  }
  std::cout << "\nPaper: 1536 fits, 2048 does not (char); the compact encoding the\n"
               "paper plans as future work ('a better compression strategy') makes\n"
               "2048 monomials fit and sustains the >20x speedup trend.\n";
  return 0;
}
