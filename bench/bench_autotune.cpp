// Measured autotuning vs the pick_block_size heuristic: for every
// schedule the repo ships (fused single-launch, three-kernel batch
// grid, stream-pipelined micro-chunks), resolve the launch geometry
// both ways on the paper's workloads and compare MODELED wall-clock.
//
// The gates are deterministic (the modeled clock is exact):
//   * tuned_speedup_modeled >= 1.0 on EVERY workload -- the heuristic
//     seed is always candidate zero, so a measured winner can never be
//     modeled-slower than the heuristic it replaces;
//   * tuned strictly faster on AT LEAST ONE workload -- the tuner must
//     earn its keep, not just match the seed (the transfer-bound
//     pipeline shape, where the third stream wins, guarantees this);
//   * tuned and heuristic results bitwise identical on every workload
//     -- tuning changes timing, never values.
//
// Emits BENCH_autotune.json, PROFILE_autotune.txt (the tuner's
// memory-behaviour dump for CI triage) and tune_cache.json (the
// persisted decisions; bench/tune/README.md explains how the committed
// copy under bench/tune/ is regenerated from it).  `--quick` runs the
// identical gated set (everything here is modeled, so quick == full
// except for skipping nothing); it exists for CLI symmetry with the
// other benches.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "benchutil/json.hpp"
#include "benchutil/stamp.hpp"
#include "benchutil/table.hpp"
#include "core/batch_evaluator.hpp"
#include "core/pipelined_evaluator.hpp"
#include "poly/random_system.hpp"
#include "tune/autotuner.hpp"

namespace {

using namespace polyeval;
using Cd = cplx::Complex<double>;

poly::PolynomialSystem make_system(unsigned n, unsigned m, unsigned k, unsigned d) {
  poly::SystemSpec spec;
  spec.dimension = n;
  spec.monomials_per_polynomial = m;
  spec.variables_per_monomial = k;
  spec.max_exponent = d;
  return poly::make_random_system(spec);
}

std::vector<std::vector<Cd>> points_for(unsigned batch, unsigned dim) {
  std::vector<std::vector<Cd>> points;
  for (unsigned p = 0; p < batch; ++p)
    points.push_back(poly::make_random_point<double>(dim, 500 + p));
  return points;
}

struct Row {
  std::string name;
  std::string schedule;
  unsigned n = 0, m = 0, k = 0, batch = 0, chunk = 0;
  unsigned heuristic_block = 0;
  unsigned tuned_block = 0;
  std::string tuned_layout;
  unsigned tuned_streams = 0;
  double heuristic_modeled_us = 0.0;
  double tuned_modeled_us = 0.0;
  bool bitwise = true;

  [[nodiscard]] double speedup() const {
    return tuned_modeled_us > 0.0 ? heuristic_modeled_us / tuned_modeled_us : 1.0;
  }
};

/// Evaluate `points` through `eval` and return the modeled cost of the
/// resulting launch log under the default (double-precision) model.
template <class Eval>
double modeled_us_of(simt::Device& device, Eval& eval,
                     const std::vector<std::vector<Cd>>& points,
                     std::vector<poly::EvalResult<double>>& results) {
  results.resize(points.size());
  eval.evaluate_range(points, 0, points.size(),
                      std::span<poly::EvalResult<double>>(results));
  return simt::estimate_log_us(eval.last_log(), device.spec(), simt::GpuCostModel{});
}

bool bitwise_equal(const std::vector<poly::EvalResult<double>>& a,
                   const std::vector<poly::EvalResult<double>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t p = 0; p < a.size(); ++p)
    if (poly::max_abs_diff(a[p], b[p]) != 0.0) return false;
  return true;
}

/// Fused-schedule workload: heuristic vs tuned resolution of the same
/// (system, batch) pair.
Row run_fused(const char* name, unsigned n, unsigned m, unsigned k, unsigned batch) {
  Row row;
  row.name = name;
  row.schedule = "fused";
  row.n = n;
  row.m = m;
  row.k = k;
  row.batch = batch;
  const auto sys = make_system(n, m, k, 2);
  const auto points = points_for(batch, n);

  std::vector<poly::EvalResult<double>> heuristic_results, tuned_results;
  {
    simt::Device device;
    core::FusedGpuEvaluator<double>::Options opt;
    opt.tuning = tune::TuningMode::kHeuristic;
    core::FusedGpuEvaluator<double> eval(device, sys, batch, opt);
    row.heuristic_block = eval.options().block_size;
    row.heuristic_modeled_us = modeled_us_of(device, eval, points, heuristic_results);
  }
  {
    simt::Device device;
    core::FusedGpuEvaluator<double> eval(device, sys, batch);
    row.tuned_block = eval.options().block_size;
    row.tuned_layout =
        eval.options().interchange == core::InterchangeLayout::kSoA ? "soa" : "aos";
    row.tuned_streams = 0;
    row.tuned_modeled_us = modeled_us_of(device, eval, points, tuned_results);
  }
  row.bitwise = bitwise_equal(heuristic_results, tuned_results);
  return row;
}

/// Batch-schedule workload (three-kernel monomial-strided grid).
Row run_batch(const char* name, unsigned n, unsigned m, unsigned k, unsigned batch) {
  Row row;
  row.name = name;
  row.schedule = "batch";
  row.n = n;
  row.m = m;
  row.k = k;
  row.batch = batch;
  const auto sys = make_system(n, m, k, 2);
  const auto points = points_for(batch, n);

  std::vector<poly::EvalResult<double>> heuristic_results, tuned_results;
  {
    simt::Device device;
    core::BatchGpuEvaluator<double>::Options opt;
    opt.tuning = tune::TuningMode::kHeuristic;
    core::BatchGpuEvaluator<double> eval(device, sys, batch, opt);
    row.heuristic_block = eval.options().block_size;
    row.heuristic_modeled_us = modeled_us_of(device, eval, points, heuristic_results);
  }
  {
    simt::Device device;
    core::BatchGpuEvaluator<double> eval(device, sys, batch);
    row.tuned_block = eval.options().block_size;
    row.tuned_layout =
        *eval.options().interchange == core::InterchangeLayout::kSoA ? "soa" : "aos";
    row.tuned_streams = 0;
    row.tuned_modeled_us = modeled_us_of(device, eval, points, tuned_results);
  }
  row.bitwise = bitwise_equal(heuristic_results, tuned_results);
  return row;
}

/// Pipelined-schedule workload: the makespan is the score, so the
/// heuristic (two-stream) and tuned (possibly three-stream) schedules
/// are compared on the quantity streams exist to shrink.
Row run_pipelined(const char* name, unsigned n, unsigned m, unsigned k,
                  unsigned batch, unsigned micro) {
  Row row;
  row.name = name;
  row.schedule = "pipelined";
  row.n = n;
  row.m = m;
  row.k = k;
  row.batch = batch;
  row.chunk = micro;
  const auto sys = make_system(n, m, k, 2);
  const auto points = points_for(batch, n);

  std::vector<poly::EvalResult<double>> heuristic_results, tuned_results;
  {
    simt::Device device;
    core::PipelinedFusedEvaluator<double>::Options opt;
    opt.micro_chunk = micro;
    opt.tuning = tune::TuningMode::kHeuristic;
    core::PipelinedFusedEvaluator<double> eval(device, sys, batch, opt);
    row.heuristic_block = eval.options().block_size;
    eval.evaluate(points, heuristic_results);
    row.heuristic_modeled_us = eval.modeled_pipelined_us();
  }
  {
    simt::Device device;
    core::PipelinedFusedEvaluator<double>::Options opt;
    opt.micro_chunk = micro;
    core::PipelinedFusedEvaluator<double> eval(device, sys, batch, opt);
    row.tuned_block = eval.options().block_size;
    row.tuned_layout =
        *eval.options().interchange == core::InterchangeLayout::kSoA ? "soa" : "aos";
    row.tuned_streams = eval.streams();
    eval.evaluate(points, tuned_results);
    row.tuned_modeled_us = eval.modeled_pipelined_us();
  }
  row.bitwise = bitwise_equal(heuristic_results, tuned_results);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  std::cout << "=== Measured autotuner vs pick_block_size heuristic ===\n"
            << "all comparisons on the MODELED clock (deterministic); the\n"
            << "gated set is identical in --quick and full mode\n\n";

  // The repo's reference workloads, one per schedule family: the
  // Table-1 structure at both paper dimensions, the sharded solver's
  // chunk shape, the single-point tracker probe, the lockstep live-set
  // batch, and the transfer-bound pipeline shape from bench_pipeline.
  std::vector<Row> rows;
  rows.push_back(run_fused("fused_dim16_table1", 16, 22, 9, 16));
  rows.push_back(run_fused("fused_dim32_table1", 32, 22, 9, 16));
  rows.push_back(run_fused("fused_sharding_chunk", 16, 22, 9, 8));
  rows.push_back(run_fused("fused_single_point", 16, 22, 9, 1));
  rows.push_back(run_fused("fused_lockstep_batch", 16, 22, 9, 64));
  rows.push_back(run_batch("batch_grid_dim16", 16, 22, 9, 16));
  rows.push_back(run_pipelined("pipeline_m4_k2", 16, 4, 2, 64, 8));
  rows.push_back(run_pipelined("pipeline_table1", 16, 22, 9, 64, 8));

  benchutil::Table table({"workload", "schedule", "heur block", "tuned block",
                          "layout", "streams", "heur model us", "tuned model us",
                          "speedup", "bitwise"});
  benchutil::JsonWriter json;
  json.begin_object();
  json.field("bench", "autotune");
  polyeval::benchutil::emit_stamp(json);
  json.field("quick", quick);
  json.key("workloads");
  json.begin_array();

  bool all_bitwise = true;
  bool all_no_slower = true;
  bool any_strictly_faster = false;
  double min_speedup = 1e300;
  for (const auto& row : rows) {
    const double speedup = row.speedup();
    min_speedup = std::min(min_speedup, speedup);
    all_bitwise = all_bitwise && row.bitwise;
    // Exact comparison is safe: the tuner scored the SAME modeled
    // quantity it is being graded on, so a winner is never worse.
    all_no_slower = all_no_slower && row.tuned_modeled_us <= row.heuristic_modeled_us;
    any_strictly_faster =
        any_strictly_faster || row.tuned_modeled_us < row.heuristic_modeled_us;

    table.add_row(
        {row.name, row.schedule, std::to_string(row.heuristic_block),
         std::to_string(row.tuned_block), row.tuned_layout,
         row.tuned_streams == 0 ? "-" : std::to_string(row.tuned_streams),
         benchutil::format_fixed(row.heuristic_modeled_us, 1),
         benchutil::format_fixed(row.tuned_modeled_us, 1),
         benchutil::format_speedup(speedup), row.bitwise ? "yes" : "NO"});
    json.begin_object()
        .field("name", row.name)
        .field("schedule", row.schedule)
        .field("dimension", row.n)
        .field("monomials_per_polynomial", row.m)
        .field("variables_per_monomial", row.k)
        .field("batch", row.batch)
        .field("micro_chunk", row.chunk)
        .field("heuristic_block_size", row.heuristic_block)
        .field("tuned_block_size", row.tuned_block)
        .field("tuned_interchange", row.tuned_layout)
        .field("tuned_streams", row.tuned_streams)
        .field("heuristic_modeled_us", row.heuristic_modeled_us)
        .field("tuned_modeled_us", row.tuned_modeled_us)
        .field("tuned_speedup_modeled", row.speedup())
        .field("bitwise_identical_to_heuristic", row.bitwise)
        .end_object();
  }
  json.end_array();

  auto& tuner = tune::Autotuner::global();
  json.field("cache_entries", std::uint64_t{tuner.cache().size()});
  json.field("cache_misses", std::uint64_t{tuner.misses()});
  json.field("cache_hits", std::uint64_t{tuner.hits()});
  json.field("min_tuned_speedup_modeled", min_speedup);
  json.field("bitwise_identical_all", all_bitwise);
  json.field("any_strictly_faster", any_strictly_faster);
  const bool gates_met = all_bitwise && all_no_slower && any_strictly_faster;
  json.field("gates_met", gates_met);
  json.end_object();

  const char* out_path = "BENCH_autotune.json";
  if (json.write_file(out_path))
    std::cout << table.to_string() << "\nwrote " << out_path << "\n";
  else
    std::cout << table.to_string() << "\nWARNING: could not write " << out_path
              << "\n";

  // The persisted decision cache (bench/tune/README.md documents how
  // the committed copy is refreshed from this file).
  if (tuner.cache().save("tune_cache.json"))
    std::cout << "wrote tune_cache.json (" << tuner.cache().size()
              << " measured decisions)\n";

  // The memory-behaviour dump CI uploads for triage.
  {
    std::ofstream profile("PROFILE_autotune.txt");
    profile << tuner.profile_dump();
    if (profile) std::cout << "wrote PROFILE_autotune.txt\n";
  }

  if (!all_bitwise)
    std::cout << "FAIL: tuned results differ bitwise from heuristic results\n";
  if (!all_no_slower)
    std::cout << "FAIL: a tuned geometry is modeled-slower than its heuristic seed\n";
  if (!any_strictly_faster)
    std::cout << "FAIL: tuning matched the heuristic everywhere (no measured win)\n";
  return gates_met ? 0 : 1;
}
