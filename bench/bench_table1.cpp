// Reproduces Table 1 of the paper: wall clock times and speedups for
// 100,000 evaluations of a polynomial system and its Jacobian matrix of
// dimension 32; each monomial has 9 variables with nonzero power of at
// most 2; 704 / 1024 / 1536 monomials in total.

#include "benchutil/table_repro.hpp"

int main() {
  using namespace polyeval::benchutil;
  const auto repro = reproduce_table(paper_table1());
  print_table_repro(repro,
                    "=== Table 1 reproduction: k = 9 variables, d <= 2 ===");
  return 0;
}
