// Sustained solve throughput of the persistent solve service under a
// seeded Poisson-style arrival mix of small same-structure requests --
// the cross-request batching claim, end to end.
//
// The BATCHED run drives ONE SolveService in sync mode: requests
// arrive on a seeded exponential inter-arrival schedule (in scheduler
// ticks, so the mix is deterministic on any host) and overlapping
// requests coalesce onto shared lockstep rounds through the
// multi-tenant evaluators.  The SEQUENTIAL reference solves the same
// requests one at a time through fresh service instances -- the
// one-request-per-service world the front end replaces.
//
// Gates (both deterministic):
//   * modeled throughput: the batched run's modeled device makespan
//     must not exceed the sequential sum -- merged rounds amortize the
//     fixed launch overhead that per-request rounds each pay.
//   * bitwise parity: every request's endpoints must equal its
//     standalone solve_total_degree_sharded solve bit for bit (path
//     trajectories are schedule-independent, so coalescing must not
//     perturb a single ulp).
//
// The host wall rows (solves_per_sec; HIGHER is better) move with the
// runner and are regression-gated at the coarse 2x ratio like every
// other wall number.  Emits BENCH_service.json; `--quick` is the CI
// smoke configuration.

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <thread>
#include <vector>

#include "benchutil/json.hpp"
#include "benchutil/stamp.hpp"
#include "benchutil/table.hpp"
#include "homotopy/sharded_solver.hpp"
#include "poly/random_system.hpp"
#include "service/solve_service.hpp"

namespace {

using namespace polyeval;

poly::PolynomialSystem request_system(std::uint32_t seed) {
  poly::SystemSpec spec;
  spec.dimension = 3;
  spec.monomials_per_polynomial = 3;
  spec.variables_per_monomial = 2;
  spec.max_exponent = 2;
  spec.seed = seed;
  return poly::make_random_system(spec);
}

solve::Options request_options(std::uint64_t max_paths) {
  solve::Options opt;
  opt.sharding.max_paths = max_paths;
  opt.tracking.track.max_steps = 3000;
  return opt;
}

service::SolveService<double>::Config service_config() {
  service::SolveService<double>::Config config;
  config.shards = 2;
  return config;
}

bool paths_bitwise_equal(const std::vector<homotopy::TrackResult<double>>& a,
                         const std::vector<homotopy::TrackResult<double>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t p = 0; p < a.size(); ++p) {
    const auto& x = a[p];
    const auto& y = b[p];
    if (x.status != y.status || x.steps != y.steps ||
        x.rejections != y.rejections || x.winding != y.winding ||
        x.final_residual != y.final_residual ||
        x.solution.size() != y.solution.size())
      return false;
    for (std::size_t i = 0; i < x.solution.size(); ++i)
      if (cplx::max_abs_diff(x.solution[i], y.solution[i]) != 0.0) return false;
  }
  return true;
}

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  const char* trace_out = nullptr;    // --trace-out FILE: Chrome trace JSON
  const char* metrics_out = nullptr;  // --metrics-out FILE: Prometheus text
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc)
      trace_out = argv[++i];
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc)
      metrics_out = argv[++i];
  }
  // Tracing rides along at full detail when an export was requested;
  // the gates below are unchanged either way (the tracer observes the
  // modeled clock, it never feeds it).
  const auto trace_level =
      (trace_out != nullptr || metrics_out != nullptr)
          ? obs::TraceLevel::kFull
          : obs::TraceLevel::kOff;

  const unsigned num_requests = quick ? 3 : 6;
  const std::uint64_t paths_per_request = quick ? 4 : 6;
  const double mean_interarrival_ticks = 2.0;

  std::cout << "=== Solve service: sustained solves/sec under a Poisson "
               "arrival mix ===\n"
            << "requests: " << num_requests << " x " << paths_per_request
            << " paths, one uniform structure, 2 shards\n\n";

  std::vector<poly::PolynomialSystem> systems;
  for (unsigned r = 0; r < num_requests; ++r)
    systems.push_back(request_system(1000 + 17 * r));
  const auto opt = request_options(paths_per_request);

  // Seeded exponential inter-arrival schedule, quantized to scheduler
  // ticks: deterministic on every host, Poisson-shaped in expectation.
  std::mt19937_64 rng(20120102);
  std::exponential_distribution<double> gap(1.0 / mean_interarrival_ticks);
  std::vector<std::uint64_t> arrival_tick(num_requests);
  double arrival = 0.0;
  for (unsigned r = 0; r < num_requests; ++r) {
    arrival_tick[r] = static_cast<std::uint64_t>(arrival);
    arrival += gap(rng);
  }

  // -- the batched run: one persistent service, arrivals interleaved --
  std::vector<service::SolveTicket<double>> tickets(num_requests);
  service::ServiceStats batched_stats;
  const auto t0 = std::chrono::steady_clock::now();
  {
    auto config = service_config();
    config.trace = trace_level;
    service::SolveService<double> svc(config);
    unsigned next = 0;
    bool more = true;
    while (more || next < num_requests) {
      while (next < num_requests &&
             svc.stats().ticks >= arrival_tick[next]) {
        tickets[next] = svc.submit({systems[next], opt, {}, 0, 0.0});
        if (!tickets[next].admitted()) {
          std::cout << "FAIL: request " << next << " rejected: "
                    << to_string(tickets[next].verdict()) << "\n";
          return 1;
        }
        ++next;
      }
      more = svc.step();
    }
    batched_stats = svc.stats();
    if (trace_out != nullptr) {
      std::ofstream out(trace_out);
      svc.export_trace(out);
      std::cout << (out ? "wrote " : "WARNING: could not write ")
                << trace_out << "\n";
    }
    if (metrics_out != nullptr) {
      std::ofstream out(metrics_out);
      svc.metrics().expose(out);
      std::cout << (out ? "wrote " : "WARNING: could not write ")
                << metrics_out << "\n";
    }
  }
  const double batched_sec = wall_seconds_since(t0);

  // -- the sequential reference: fresh service per request, no overlap --
  double sequential_modeled_us = 0.0;
  const auto t1 = std::chrono::steady_clock::now();
  for (unsigned r = 0; r < num_requests; ++r) {
    service::SolveService<double> svc(service_config());
    auto ticket = svc.submit({systems[r], opt, {}, 0, 0.0});
    svc.drain();
    if (!ticket.done()) {
      std::cout << "FAIL: sequential request " << r << " never completed\n";
      return 1;
    }
    sequential_modeled_us += svc.stats().total_modeled_us;
  }
  const double sequential_sec = wall_seconds_since(t1);

  // -- parity: every request against its standalone one-shot solve ----
  bool parity_ok = true;
  for (unsigned r = 0; r < num_requests; ++r) {
    const auto standalone =
        homotopy::solve_total_degree_sharded<double>(systems[r], opt.to_sharded());
    if (!paths_bitwise_equal(tickets[r].report().paths, standalone.paths)) {
      std::cout << "FAIL: request " << r
                << " endpoints differ from the standalone solve\n";
      parity_ok = false;
    }
  }

  const double batched_solves_per_sec =
      static_cast<double>(num_requests) / batched_sec;
  const double sequential_solves_per_sec =
      static_cast<double>(num_requests) / sequential_sec;
  const double modeled_speedup =
      batched_stats.total_modeled_us > 0.0
          ? sequential_modeled_us / batched_stats.total_modeled_us
          : 0.0;
  const bool modeled_gate_ok =
      batched_stats.total_modeled_us <= sequential_modeled_us;
  const bool coalesced = batched_stats.coalesced_rounds > 0;

  benchutil::Table table({"run", "solves/sec", "wall s", "modeled us",
                          "coalesced rounds", "steals", "cache hits"});
  table.add_row({"batched", benchutil::format_fixed(batched_solves_per_sec, 3),
                 benchutil::format_fixed(batched_sec, 2),
                 benchutil::format_fixed(batched_stats.total_modeled_us, 1),
                 std::to_string(batched_stats.coalesced_rounds),
                 std::to_string(batched_stats.live_steals),
                 std::to_string(batched_stats.cache_hits)});
  table.add_row({"sequential",
                 benchutil::format_fixed(sequential_solves_per_sec, 3),
                 benchutil::format_fixed(sequential_sec, 2),
                 benchutil::format_fixed(sequential_modeled_us, 1), "0", "0",
                 "-"});
  std::cout << table.to_string() << "\n"
            << "modeled sequential/batched: "
            << benchutil::format_speedup(modeled_speedup) << "\n";

  benchutil::JsonWriter json;
  json.begin_object();
  json.field("bench", "service");
  polyeval::benchutil::emit_stamp(json);
  json.key("workload");
  json.begin_object()
      .field("requests", num_requests)
      .field("paths_per_request", paths_per_request)
      .field("mean_interarrival_ticks", mean_interarrival_ticks)
      .field("shards", 2u)
      .field("quick", quick)
      .end_object();
  json.field("batched_solves_per_sec", batched_solves_per_sec);
  json.field("sequential_solves_per_sec", sequential_solves_per_sec);
  json.field("batched_wall_us", batched_sec * 1e6);
  json.field("sequential_wall_us", sequential_sec * 1e6);
  json.field("modeled_batched_us", batched_stats.total_modeled_us);
  json.field("modeled_sequential_us", sequential_modeled_us);
  json.field("modeled_speedup_batched_vs_sequential", modeled_speedup);
  json.field("coalesced_rounds", batched_stats.coalesced_rounds);
  json.field("max_tenants_in_round",
             std::uint64_t{batched_stats.max_tenants_in_round});
  json.field("live_steals", batched_stats.live_steals);
  json.field("queue_pulls", batched_stats.queue_pulls);
  json.field("cache_hits", std::uint64_t{batched_stats.cache_hits});
  json.field("cache_misses", std::uint64_t{batched_stats.cache_misses});
  json.field("weighted_steals", batched_stats.weighted_steals);
  // Per-device modeled busy time and utilization (busy / makespan):
  // on this uniform 2-shard fleet the devices should track each other,
  // and on a mixed fleet (bench_hetero) the same leaves show the
  // weighted fill keeping the fast card loaded.  Reported, not gated.
  json.key("devices");
  json.begin_array();
  for (std::size_t d = 0; d < batched_stats.device_busy_us.size(); ++d)
    json.begin_object()
        .field("device", static_cast<std::uint64_t>(d))
        .field("modeled_busy_us", batched_stats.device_busy_us[d])
        .field("utilization", batched_stats.total_modeled_us > 0.0
                                  ? batched_stats.device_busy_us[d] /
                                        batched_stats.total_modeled_us
                                  : 0.0)
        .end_object();
  json.end_array();
  json.field("bitwise_parity_vs_standalone", parity_ok);
  json.field("gates_met", parity_ok && modeled_gate_ok);
  json.end_object();

  const char* out_path = "BENCH_service.json";
  if (json.write_file(out_path))
    std::cout << "wrote " << out_path << "\n";
  else
    std::cout << "WARNING: could not write " << out_path << "\n";

  if (!modeled_gate_ok)
    std::cout << "FAIL: batched modeled makespan "
              << batched_stats.total_modeled_us << " us exceeds sequential "
              << sequential_modeled_us << " us\n";
  if (!coalesced)
    std::cout << "note: arrival mix produced no coalesced rounds this run\n";
  if (!parity_ok)
    std::cout << "FAIL: endpoints differ from standalone solves\n";

  return (parity_ok && modeled_gate_ok) ? 0 : 1;
}
