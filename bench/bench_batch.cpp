// Extension: batched evaluation.  The kernel-breakdown bench shows the
// fixed floor (3 launches + PCIe) dominates one evaluation; evaluating
// B points per launch divides that floor by B.  This harness sweeps the
// batch size on the Table-1 workload and reports the modeled time per
// evaluation and the resulting speedup over one CPU core.

#include <iostream>

#include "ad/cpu_evaluator.hpp"
#include "benchutil/table.hpp"
#include "core/batch_evaluator.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"

int main() {
  using namespace polyeval;
  using Cd = cplx::Complex<double>;

  poly::SystemSpec spec;
  spec.dimension = 32;
  spec.monomials_per_polynomial = 22;  // Table 1, 704 monomials
  spec.variables_per_monomial = 9;
  spec.max_exponent = 2;
  const auto sys = poly::make_random_system(spec);

  const simt::DeviceSpec dspec;
  const simt::GpuCostModel gmodel;
  const simt::CpuCostModel cmodel;

  ad::CpuEvaluator<double> cpu(sys);
  poly::EvalResult<double> scratch(32);
  const auto x0 = poly::make_random_point<double>(32, 3);
  cpu.evaluate(std::span<const Cd>(x0), scratch);
  const auto& ops = cpu.last_op_counts();
  const double cpu_us = simt::estimate_cpu_us(ops.complex_mul, ops.complex_add, cmodel);

  std::cout << "=== Batched evaluation (launch-floor amortization) ===\n"
            << "Workload: Table 1, 704 monomials; 1 CPU core (modeled): "
            << benchutil::format_fixed(cpu_us, 1) << " us/eval\n\n";

  benchutil::Table table({"batch size", "GPU us/batch", "GPU us/eval", "speedup",
                          "fixed share"});
  for (const unsigned batch : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    simt::Device device;
    core::BatchGpuEvaluator<double> gpu(device, sys, batch);
    std::vector<std::vector<Cd>> points;
    for (unsigned p = 0; p < batch; ++p)
      points.push_back(poly::make_random_point<double>(32, 100 + p));
    std::vector<poly::EvalResult<double>> results;
    gpu.evaluate(points, results);

    const double total_us = simt::estimate_log_us(gpu.last_log(), dspec, gmodel);
    const double per_eval = total_us / batch;
    const double fixed =
        3 * gmodel.launch_overhead_us +
        simt::estimate_transfer_us(gpu.last_log().transfers, gmodel);
    table.add_row({std::to_string(batch), benchutil::format_fixed(total_us, 1),
                   benchutil::format_fixed(per_eval, 1),
                   benchutil::format_speedup(cpu_us / per_eval),
                   benchutil::format_fixed(100.0 * fixed / total_us, 1) + "%"});
  }
  std::cout << table.to_string() << "\n";
  std::cout << "The paper evaluates one point per pipeline pass (its Newton\n"
               "corrector is sequential in the iteration); batching is the\n"
               "natural extension for trackers that advance many paths in\n"
               "lockstep, and it converts the launch floor into throughput.\n";
  return 0;
}
