// Extension: batched evaluation.  The kernel-breakdown bench shows the
// fixed floor (3 launches + PCIe) dominates one evaluation; evaluating
// B points per launch divides that floor by B, and fusing the three
// kernels into one launch removes the rest of it.  This harness
//
//   * sweeps the batch size on the Table-1 workload and reports the
//     modeled time per evaluation (the paper-facing story), and
//   * races the three-kernel pipeline against the fused single-launch
//     pipeline at dimension >= 16, measuring HOST WALL-CLOCK of the
//     simulator hot path -- the number the zero-allocation work targets.
//
// Results land in BENCH_batch.json so the perf trajectory is tracked
// across PRs.  `--quick` runs a reduced configuration (CI smoke).

#include <cstring>
#include <iostream>

#include "ad/cpu_evaluator.hpp"
#include "benchutil/json.hpp"
#include "benchutil/stamp.hpp"
#include "benchutil/table.hpp"
#include "benchutil/timer.hpp"
#include "core/batch_evaluator.hpp"
#include "core/fused_evaluator.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"

namespace {

using namespace polyeval;
using Cd = cplx::Complex<double>;

// Seed-repo wall-clock of the three-kernel batch path (batch 16, Table-1
// monomial structure), measured with this harness's loop on the PR-1
// build machine before the zero-allocation/fused work landed.  Kept for
// trajectory context; the in-binary three_kernel rows below are the
// apples-to-apples baseline on the current machine.
constexpr double kSeedUsPerEvalDim16 = 5715.1;
constexpr double kSeedUsPerEvalDim32 = 13697.8;

struct PathResult {
  std::string name;
  double wall_us_per_eval = 0.0;
  double modeled_us_per_eval = 0.0;
  std::uint64_t launches = 0;
};

poly::PolynomialSystem table1_system(unsigned dim) {
  poly::SystemSpec spec;
  spec.dimension = dim;
  spec.monomials_per_polynomial = 22;  // Table 1 structure
  spec.variables_per_monomial = 9;
  spec.max_exponent = 2;
  return poly::make_random_system(spec);
}

std::vector<std::vector<Cd>> random_points(unsigned batch, unsigned dim) {
  std::vector<std::vector<Cd>> points;
  for (unsigned p = 0; p < batch; ++p)
    points.push_back(poly::make_random_point<double>(dim, 100 + p));
  return points;
}

template <class Evaluator>
PathResult measure_path(std::string name, Evaluator& gpu,
                        const std::vector<std::vector<Cd>>& points,
                        double min_seconds) {
  const simt::DeviceSpec dspec;
  const simt::GpuCostModel gmodel;
  std::vector<poly::EvalResult<double>> results;
  gpu.evaluate(points, results);  // warm-up: sizes every persistent buffer

  PathResult r;
  r.name = std::move(name);
  const double sec =
      benchutil::time_per_call([&] { gpu.evaluate(points, results); }, min_seconds);
  r.wall_us_per_eval = sec * 1e6 / static_cast<double>(points.size());
  r.modeled_us_per_eval = simt::estimate_log_us(gpu.last_log(), dspec, gmodel) /
                          static_cast<double>(points.size());
  r.launches = gpu.last_log().kernels.size();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const simt::DeviceSpec dspec;
  const simt::GpuCostModel gmodel;
  const simt::CpuCostModel cmodel;
  const double min_seconds = quick ? 0.02 : 0.5;

  // -- Part 1: the paper-facing batch-size sweep (modeled time) ---------
  const auto sys32 = table1_system(32);
  ad::CpuEvaluator<double> cpu(sys32);
  poly::EvalResult<double> scratch(32);
  const auto x0 = poly::make_random_point<double>(32, 3);
  cpu.evaluate(std::span<const Cd>(x0), scratch);
  const auto& ops = cpu.last_op_counts();
  const double cpu_us = simt::estimate_cpu_us(ops.complex_mul, ops.complex_add, cmodel);

  std::cout << "=== Batched evaluation (launch-floor amortization) ===\n"
            << "Workload: Table 1, 704 monomials; 1 CPU core (modeled): "
            << benchutil::format_fixed(cpu_us, 1) << " us/eval\n\n";

  benchutil::Table sweep({"batch size", "GPU us/batch", "GPU us/eval", "speedup",
                          "fixed share"});
  const std::vector<unsigned> batches =
      quick ? std::vector<unsigned>{1u, 8u} : std::vector<unsigned>{1u, 2u, 4u, 8u, 16u, 32u, 64u};
  for (const unsigned batch : batches) {
    simt::Device device;
    core::BatchGpuEvaluator<double> gpu(device, sys32, batch);
    auto points = random_points(batch, 32);
    std::vector<poly::EvalResult<double>> results;
    gpu.evaluate(points, results);

    const double total_us = simt::estimate_log_us(gpu.last_log(), dspec, gmodel);
    const double per_eval = total_us / batch;
    const double fixed =
        3 * gmodel.launch_overhead_us +
        simt::estimate_transfer_us(gpu.last_log().transfers, gmodel);
    sweep.add_row({std::to_string(batch), benchutil::format_fixed(total_us, 1),
                   benchutil::format_fixed(per_eval, 1),
                   benchutil::format_speedup(cpu_us / per_eval),
                   benchutil::format_fixed(100.0 * fixed / total_us, 1) + "%"});
  }
  std::cout << sweep.to_string() << "\n";

  // -- Part 2: three-kernel vs fused pipelines, host wall-clock ---------
  std::cout << "=== Pipeline shootout (host wall-clock of the simulator) ===\n"
            << "batch 16, Table-1 monomial structure\n\n";

  benchutil::JsonWriter json;
  json.begin_object();
  json.field("bench", "batch");
  polyeval::benchutil::emit_stamp(json);
  json.key("workload");
  json.begin_object()
      .field("monomials_per_polynomial", 22u)
      .field("variables_per_monomial", 9u)
      .field("max_exponent", 2u)
      .field("batch", 16u)
      .field("quick", quick)
      .end_object();
  json.key("seed_wall_us_per_eval");
  json.begin_object()
      .field("dim16", kSeedUsPerEvalDim16)
      .field("dim32", kSeedUsPerEvalDim32)
      .end_object();
  json.key("dimensions");
  json.begin_array();

  const std::vector<unsigned> dims =
      quick ? std::vector<unsigned>{16u} : std::vector<unsigned>{16u, 32u};
  bool all_speedups_ok = true;
  for (const unsigned dim : dims) {
    const auto sys = table1_system(dim);
    const unsigned batch = 16;
    const auto points = random_points(batch, dim);

    std::vector<PathResult> rows;
    {
      simt::Device device;
      core::BatchGpuEvaluator<double> gpu(device, sys, batch);
      rows.push_back(measure_path("three_kernel", gpu, points, min_seconds));
    }
    {
      simt::Device device;
      core::BatchGpuEvaluator<double>::Options opt;
      opt.interchange = core::InterchangeLayout::kSoA;
      core::BatchGpuEvaluator<double> gpu(device, sys, batch, opt);
      rows.push_back(measure_path("three_kernel_soa", gpu, points, min_seconds));
    }
    {
      simt::Device device;
      core::FusedGpuEvaluator<double>::Options opt;
      opt.detect_races = true;
      core::FusedGpuEvaluator<double> gpu(device, sys, batch, opt);
      rows.push_back(measure_path("fused_checked", gpu, points, min_seconds));
    }
    {
      simt::Device device;
      core::FusedGpuEvaluator<double> gpu(device, sys, batch);
      rows.push_back(measure_path("fused", gpu, points, min_seconds));
    }

    const double base_wall = rows.front().wall_us_per_eval;
    benchutil::Table table({"pipeline", "launches/eval-batch", "wall us/eval",
                            "modeled us/eval", "speedup vs three_kernel"});
    json.begin_object();
    json.field("dimension", dim);
    json.key("pipelines");
    json.begin_array();
    for (const auto& r : rows) {
      table.add_row({r.name, std::to_string(r.launches),
                     benchutil::format_fixed(r.wall_us_per_eval, 1),
                     benchutil::format_fixed(r.modeled_us_per_eval, 1),
                     benchutil::format_speedup(base_wall / r.wall_us_per_eval)});
      json.begin_object()
          .field("name", r.name)
          .field("launches", r.launches)
          .field("wall_us_per_eval", r.wall_us_per_eval)
          .field("modeled_us_per_eval", r.modeled_us_per_eval)
          .field("speedup_vs_three_kernel", base_wall / r.wall_us_per_eval)
          .end_object();
    }
    json.end_array();  // pipelines
    const double fused_wall = rows.back().wall_us_per_eval;
    const double speedup = base_wall / fused_wall;
    all_speedups_ok = all_speedups_ok && speedup >= 2.0;
    json.field("fused_speedup_vs_three_kernel", speedup);
    const double seed_us =
        dim == 16 ? kSeedUsPerEvalDim16 : (dim == 32 ? kSeedUsPerEvalDim32 : 0.0);
    if (seed_us > 0.0) json.field("fused_speedup_vs_seed", seed_us / fused_wall);
    json.end_object();

    std::cout << "dimension " << dim << ":\n" << table.to_string() << "\n";
    if (seed_us > 0.0)
      std::cout << "  (seed three-kernel path on the PR-1 machine: "
                << benchutil::format_fixed(seed_us, 1) << " us/eval -> fused is "
                << benchutil::format_speedup(seed_us / fused_wall) << ")\n\n";
  }
  json.end_array();
  json.field("fused_speedup_target", 2.0);
  json.field("fused_speedup_met", all_speedups_ok);
  json.end_object();

  const char* out_path = "BENCH_batch.json";
  if (json.write_file(out_path))
    std::cout << "wrote " << out_path << "\n\n";
  else
    std::cout << "WARNING: could not write " << out_path << "\n\n";

  std::cout << "The paper evaluates one point per pipeline pass (its Newton\n"
               "corrector is sequential in the iteration); batching is the\n"
               "natural extension for trackers that advance many paths in\n"
               "lockstep, and fusing the three kernels into one launch takes\n"
               "the paper's own powers-fusion argument one level up: the\n"
               "common factors never round-trip through global memory.\n";
  // Quick mode is a CI smoke run on shared hardware; the perf gate only
  // binds on the full run.
  return (quick || all_speedups_ok) ? 0 : 1;
}
