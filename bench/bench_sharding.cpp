// Multi-device sharding: scaling efficiency of the ShardedEvaluator
// across shard counts 1/2/4/8 on the Table-1 workload at dimension 16.
//
// Two clocks, as everywhere in this repo (docs/ARCHITECTURE.md):
//
//   * the HOST WALL CLOCK -- each shard occupies (workers_per_shard + 1)
//     host threads, so wall-clock scaling needs the cores to back it;
//     the >= 1.5x @ 4 shards gate binds on full runs on >= 4 cores
//     (quick mode reports the number without gating on it, the
//     bench_batch convention), and the JSON records applicability;
//   * the MODELED DEVICE CLOCK -- per-device launch logs are costed with
//     the timing model and the slowest device bounds the batch (devices
//     run concurrently); this scaling is deterministic and is gated on
//     every machine.
//
// The static schedule (chunk c -> shard c % shards) keeps the per-device
// logs reproducible for the modeled numbers.  Results are checked
// bitwise against the 1-shard pipeline at every shard count -- the
// determinism half of the sharding contract.
//
// Emits BENCH_sharding.json; `--quick` is the CI smoke configuration.

#include <cstring>
#include <iostream>
#include <thread>

#include "benchutil/json.hpp"
#include "benchutil/stamp.hpp"
#include "benchutil/table.hpp"
#include "benchutil/timer.hpp"
#include "core/sharded_evaluator.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"

namespace {

using namespace polyeval;
using Cd = cplx::Complex<double>;

poly::PolynomialSystem table1_system(unsigned dim) {
  poly::SystemSpec spec;
  spec.dimension = dim;
  spec.monomials_per_polynomial = 22;  // Table 1 structure
  spec.variables_per_monomial = 9;
  spec.max_exponent = 2;
  return poly::make_random_system(spec);
}

struct ShardRow {
  unsigned shards = 0;
  double wall_us_per_batch = 0.0;
  double modeled_max_device_us = 0.0;  ///< slowest device = batch bound
  double modeled_sum_device_us = 0.0;
  bool bitwise_identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const unsigned dim = 16;
  const unsigned batch = quick ? 64 : 256;
  const unsigned chunk_points = 8;
  const double min_seconds = quick ? 0.05 : 0.5;
  const unsigned host_cores = std::thread::hardware_concurrency();
  const auto sys = table1_system(dim);

  std::vector<std::vector<Cd>> points;
  for (unsigned p = 0; p < batch; ++p)
    points.push_back(poly::make_random_point<double>(dim, 100 + p));

  const simt::DeviceSpec dspec;
  const simt::GpuCostModel gmodel;

  std::cout << "=== Multi-device sharded evaluation (scaling efficiency) ===\n"
            << "Table-1 structure, dim " << dim << ", batch " << batch << ", chunks of "
            << chunk_points << " points, 1 device worker per shard, static schedule\n"
            << "host cores: " << host_cores << "\n\n";

  std::vector<poly::EvalResult<double>> reference;
  std::vector<ShardRow> rows;
  for (const unsigned shards : {1u, 2u, 4u, 8u}) {
    core::ShardedEvaluator<double>::Options opt;
    opt.shards = shards;
    opt.workers_per_shard = 1;
    opt.chunk_points = chunk_points;
    opt.schedule = core::ShardSchedule::kStatic;
    core::ShardedEvaluator<double> sharded(sys, opt);

    ShardRow row;
    row.shards = shards;

    std::vector<poly::EvalResult<double>> results;
    sharded.evaluate(points, results);  // warm + correctness snapshot
    if (shards == 1) {
      reference = results;
    } else {
      for (unsigned p = 0; p < batch; ++p)
        if (poly::max_abs_diff(reference[p], results[p]) != 0.0) {
          row.bitwise_identical = false;
          break;
        }
    }

    const double sec = benchutil::time_per_call(
        [&] { sharded.evaluate(points, results); }, min_seconds);
    row.wall_us_per_batch = sec * 1e6;

    // The last evaluate's per-device logs: concurrent devices, so the
    // modeled batch time is the slowest device, not the sum.
    for (unsigned i = 0; i < shards; ++i) {
      const double us =
          simt::estimate_log_us(sharded.registry().device(i).log(), dspec, gmodel);
      row.modeled_max_device_us = std::max(row.modeled_max_device_us, us);
      row.modeled_sum_device_us += us;
    }
    rows.push_back(row);
  }

  const double wall_1 = rows.front().wall_us_per_batch;
  const double modeled_1 = rows.front().modeled_max_device_us;

  benchutil::Table table({"shards", "wall us/batch", "host speedup", "host eff",
                          "modeled us/batch", "modeled speedup", "modeled eff",
                          "bitwise"});
  benchutil::JsonWriter json;
  json.begin_object();
  json.field("bench", "sharding");
  polyeval::benchutil::emit_stamp(json);
  json.key("workload");
  json.begin_object()
      .field("dimension", dim)
      .field("monomials_per_polynomial", 22u)
      .field("variables_per_monomial", 9u)
      .field("max_exponent", 2u)
      .field("batch", batch)
      .field("chunk_points", chunk_points)
      .field("workers_per_shard", 1u)
      .field("quick", quick)
      .end_object();
  json.field("host_hardware_concurrency", std::uint64_t{host_cores});
  json.key("shard_counts");
  json.begin_array();

  bool all_bitwise = true;
  double host_speedup_4 = 0.0, modeled_speedup_4 = 0.0;
  for (const auto& r : rows) {
    const double host_speedup = wall_1 / r.wall_us_per_batch;
    const double modeled_speedup = modeled_1 / r.modeled_max_device_us;
    if (r.shards == 4) {
      host_speedup_4 = host_speedup;
      modeled_speedup_4 = modeled_speedup;
    }
    all_bitwise = all_bitwise && r.bitwise_identical;
    table.add_row({std::to_string(r.shards),
                   benchutil::format_fixed(r.wall_us_per_batch, 1),
                   benchutil::format_speedup(host_speedup),
                   benchutil::format_fixed(100.0 * host_speedup / r.shards, 1) + "%",
                   benchutil::format_fixed(r.modeled_max_device_us, 1),
                   benchutil::format_speedup(modeled_speedup),
                   benchutil::format_fixed(100.0 * modeled_speedup / r.shards, 1) + "%",
                   r.bitwise_identical ? "yes" : "NO"});
    json.begin_object()
        .field("shards", r.shards)
        .field("wall_us_per_batch", r.wall_us_per_batch)
        .field("wall_us_per_eval", r.wall_us_per_batch / batch)
        .field("host_speedup_vs_1shard", host_speedup)
        .field("host_efficiency", host_speedup / r.shards)
        .field("modeled_max_device_us", r.modeled_max_device_us)
        .field("modeled_sum_device_us", r.modeled_sum_device_us)
        .field("modeled_speedup_vs_1shard", modeled_speedup)
        .field("modeled_efficiency", modeled_speedup / r.shards)
        .field("bitwise_identical_to_1shard", r.bitwise_identical)
        .end_object();
  }
  json.end_array();

  // Gates.  The bitwise and modeled gates are deterministic and bind in
  // every mode.  Host wall-clock scaling is physics-bound by the core
  // count (4 shards occupy 8 host threads) and noisy on shared CI
  // hardware, so -- like bench_batch's wall gate -- it only FAILS the
  // full run, and only where at least 4 cores exist; quick mode reports
  // it in the JSON without gating on it.
  const double target = 1.5;
  const bool host_gate_applicable = !quick && host_cores >= 4;
  const bool host_gate_ok = !host_gate_applicable || host_speedup_4 >= target;
  const bool modeled_gate_ok = modeled_speedup_4 >= target;
  json.field("speedup_target_4shards", target);
  json.field("host_gate_applicable", host_gate_applicable);
  json.field("host_speedup_4shards", host_speedup_4);
  json.field("modeled_speedup_4shards", modeled_speedup_4);
  json.field("bitwise_identical_across_shards", all_bitwise);
  json.field("gates_met", all_bitwise && host_gate_ok && modeled_gate_ok);
  json.end_object();

  const char* out_path = "BENCH_sharding.json";
  if (json.write_file(out_path))
    std::cout << table.to_string() << "\nwrote " << out_path << "\n";
  else
    std::cout << table.to_string() << "\nWARNING: could not write " << out_path << "\n";

  if (!all_bitwise) std::cout << "FAIL: results differ across shard counts\n";
  if (!modeled_gate_ok)
    std::cout << "FAIL: modeled speedup at 4 shards " << modeled_speedup_4 << " < "
              << target << "\n";
  if (!host_gate_ok)
    std::cout << "FAIL: host wall-clock speedup at 4 shards " << host_speedup_4
              << " < " << target << " with " << host_cores << " cores\n";
  else if (!host_gate_applicable)
    std::cout << "note: host wall-clock gate waived ("
              << (quick ? "quick mode is a smoke run on shared hardware"
                        : "too few cores to host 4 shards")
              << "); bitwise and modeled gates still bind\n";

  return (all_bitwise && host_gate_ok && modeled_gate_ok) ? 0 : 1;
}
