// Where the modeled evaluation time goes: per-kernel compute, launch
// overhead and transfers, for both table workloads across the monomial
// counts.  Shows why the GPU column of the tables is nearly flat: the
// fixed costs dominate until the grids grow.  Also records the host
// wall-clock the simulator itself spends per evaluation, and emits
// BENCH_kernel_breakdown.json for cross-PR tracking.

#include <cstring>
#include <iostream>

#include "benchutil/json.hpp"
#include "benchutil/stamp.hpp"
#include "benchutil/table.hpp"
#include "benchutil/timer.hpp"
#include "core/gpu_evaluator.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"

namespace {

using namespace polyeval;

void breakdown(unsigned k, unsigned d, const char* label, double min_seconds,
               benchutil::JsonWriter& json) {
  std::cout << label << ":\n";
  benchutil::Table table({"#monomials", "K1 us", "K2 us", "K3 us", "launches us",
                          "PCIe us", "total us/eval", "fixed share", "host wall us"});
  json.begin_object();
  json.field("label", label);
  json.field("variables_per_monomial", k);
  json.field("max_exponent", d);
  json.key("rows");
  json.begin_array();
  for (const unsigned m : {22u, 32u, 48u}) {
    poly::SystemSpec spec;
    spec.dimension = 32;
    spec.monomials_per_polynomial = m;
    spec.variables_per_monomial = k;
    spec.max_exponent = d;
    const auto sys = poly::make_random_system(spec);
    const auto x = poly::make_random_point<double>(32, 3);

    simt::Device device;
    core::GpuEvaluator<double> gpu(device, sys);
    poly::EvalResult<double> r(32);
    gpu.evaluate(std::span<const cplx::Complex<double>>(x), r);
    const double wall_us =
        1e6 * benchutil::time_per_call(
                  [&] { gpu.evaluate(std::span<const cplx::Complex<double>>(x), r); },
                  min_seconds);

    const simt::DeviceSpec dspec;
    const simt::GpuCostModel gmodel;
    const auto& ks = gpu.last_log().kernels;
    const double k1 = simt::estimate_kernel_compute_us(ks[0], dspec, gmodel);
    const double k2 = simt::estimate_kernel_compute_us(ks[1], dspec, gmodel);
    const double k3 = simt::estimate_kernel_compute_us(ks[2], dspec, gmodel);
    const double launches = 3 * gmodel.launch_overhead_us;
    const double pcie = simt::estimate_transfer_us(gpu.last_log().transfers, gmodel);
    const double total = simt::estimate_log_us(gpu.last_log(), dspec, gmodel);
    table.add_row({std::to_string(32 * m), benchutil::format_fixed(k1, 2),
                   benchutil::format_fixed(k2, 2), benchutil::format_fixed(k3, 2),
                   benchutil::format_fixed(launches, 1),
                   benchutil::format_fixed(pcie, 2),
                   benchutil::format_fixed(total, 1),
                   benchutil::format_fixed(100.0 * (launches + pcie) / total, 1) + "%",
                   benchutil::format_fixed(wall_us, 1)});
    json.begin_object()
        .field("monomials", 32u * m)
        .field("k1_us", k1)
        .field("k2_us", k2)
        .field("k3_us", k3)
        .field("launch_us", launches)
        .field("pcie_us", pcie)
        .field("modeled_total_us", total)
        .field("host_wall_us", wall_us)
        .end_object();
  }
  json.end_array();
  json.end_object();
  std::cout << table.to_string() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  const double min_seconds = quick ? 0.02 : 0.2;

  benchutil::JsonWriter json;
  json.begin_object();
  json.field("bench", "kernel_breakdown");
  polyeval::benchutil::emit_stamp(json);
  json.field("quick", quick);
  json.key("workloads");
  json.begin_array();

  std::cout << "=== Modeled per-kernel breakdown of one evaluation ===\n\n";
  breakdown(9, 2, "Table 1 workload (k = 9, d <= 2)", min_seconds, json);
  breakdown(16, 10, "Table 2 workload (k = 16, d <= 10)", min_seconds, json);

  json.end_array();
  json.end_object();
  const char* out_path = "BENCH_kernel_breakdown.json";
  if (json.write_file(out_path))
    std::cout << "wrote " << out_path << "\n\n";
  else
    std::cout << "WARNING: could not write " << out_path << "\n\n";

  std::cout << "The three kernel launches plus the point upload / Jacobian\n"
               "readback form a fixed floor per evaluation; the near-flat GPU\n"
               "column of the paper's tables is this floor.  Kernel 2 (the\n"
               "Speelpenning kernel, 5k-4 multiplications per monomial) is the\n"
               "dominant compute term and grows with k.\n";
  return 0;
}
