// Quickstart: build a small uniform polynomial system, evaluate it and
// its Jacobian on the simulated GPU with the paper's three-kernel
// pipeline, cross-check against the naive evaluator, and inspect what
// the device did.
//
//   f0 = (1+2i) x0^2 x1 + 3 x1 x2
//   f1 = -x0 x2^2 + (0.5-i) x0 x1
//   f2 = 2 x1^2 x2 + x0 x2
//
// (every polynomial has m = 2 monomials with k = 2 variables, exponents
// at most d = 2 -- the regularity the pipeline requires).

#include <iostream>

#include "core/gpu_evaluator.hpp"
#include "poly/system.hpp"

int main() {
  using namespace polyeval;
  using Cd = cplx::Complex<double>;

  // --- build the system --------------------------------------------------
  const auto mono = [](Cd c, std::vector<poly::VarPower> f) {
    return poly::Monomial(c, std::move(f));
  };
  std::vector<poly::Polynomial> polys;
  polys.emplace_back(3, std::vector<poly::Monomial>{
                            mono({1.0, 2.0}, {{0, 2}, {1, 1}}),
                            mono({3.0, 0.0}, {{1, 1}, {2, 1}}),
                        });
  polys.emplace_back(3, std::vector<poly::Monomial>{
                            mono({-1.0, 0.0}, {{0, 1}, {2, 2}}),
                            mono({0.5, -1.0}, {{0, 1}, {1, 1}}),
                        });
  polys.emplace_back(3, std::vector<poly::Monomial>{
                            mono({2.0, 0.0}, {{1, 2}, {2, 1}}),
                            mono({1.0, 0.0}, {{0, 1}, {2, 1}}),
                        });
  const poly::PolynomialSystem system(std::move(polys));

  const auto structure = system.uniform_structure();
  std::cout << "uniform structure: n=" << structure->n << " m=" << structure->m
            << " k=" << structure->k << " d=" << structure->d << "\n\n";

  // --- evaluate on the simulated Tesla C2050 -----------------------------
  simt::Device device;  // 14 SMs x 32 cores, 64 KB constant, 48 KB shared
  core::GpuEvaluator<double> gpu(device, system);

  const std::vector<Cd> x = {{0.5, 0.5}, {1.0, -1.0}, {-0.5, 0.25}};
  const auto result = gpu.evaluate(std::span<const Cd>(x));

  std::cout << "f(x):\n";
  for (unsigned p = 0; p < 3; ++p)
    std::cout << "  f" << p << " = " << result.values[p] << "\n";
  std::cout << "Jacobian:\n";
  for (unsigned p = 0; p < 3; ++p) {
    std::cout << " ";
    for (unsigned v = 0; v < 3; ++v) std::cout << " " << result.jac(p, v);
    std::cout << "\n";
  }

  // --- cross-check against the naive oracle ------------------------------
  poly::EvalResult<double> naive(3);
  system.evaluate_naive<double>(x, naive.values, naive.jacobian);
  std::cout << "\nmax |gpu - naive| = " << poly::max_abs_diff(result, naive) << "\n\n";

  // --- what the device did ------------------------------------------------
  std::cout << "kernel launches:\n";
  for (const auto& k : gpu.last_log().kernels) {
    std::cout << "  " << k.kernel << ": " << k.blocks << " block(s), "
              << k.complex_mul_total << " complex mults, " << k.complex_add_total
              << " adds, " << k.global_load_transactions << " load tx, "
              << k.global_store_transactions << " store tx\n";
  }
  std::cout << "constant memory used: " << device.constant_bytes_used() << " bytes\n";
  return 0;
}
