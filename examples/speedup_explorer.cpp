// What-if explorer for the timing model: sweep the number of monomials
// per polynomial and the variables per monomial on the dimension-32
// workload and print the modeled GPU time, CPU time and speedup --
// the grid the paper's two tables sample at (m, k) = ({22,32,48}, {9,16}).

#include <iostream>

#include "ad/cpu_evaluator.hpp"
#include "benchutil/table.hpp"
#include "core/gpu_evaluator.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"

int main() {
  using namespace polyeval;
  using Cd = cplx::Complex<double>;

  const simt::DeviceSpec dspec;
  const simt::GpuCostModel gmodel;
  const simt::CpuCostModel cmodel;

  std::cout << "=== Modeled speedups, dimension 32, exponents <= 4 ===\n\n";
  benchutil::Table table({"m/poly", "#monomials", "k", "GPU us/eval", "CPU us/eval",
                          "speedup"});
  for (const unsigned m : {8u, 16u, 22u, 32u, 48u, 60u}) {
    for (const unsigned k : {4u, 9u, 16u}) {
      poly::SystemSpec spec;
      spec.dimension = 32;
      spec.monomials_per_polynomial = m;
      spec.variables_per_monomial = k;
      spec.max_exponent = 4;
      const auto system = poly::make_random_system(spec);
      const auto x = poly::make_random_point<double>(32, 3);

      simt::Device device;
      core::GpuEvaluator<double> gpu(device, system);
      poly::EvalResult<double> r(32);
      gpu.evaluate(std::span<const Cd>(x), r);
      const double gpu_us = simt::estimate_log_us(gpu.last_log(), dspec, gmodel);

      ad::CpuEvaluator<double> cpu(system);
      cpu.evaluate(std::span<const Cd>(x), r);
      const auto& ops = cpu.last_op_counts();
      const double cpu_us =
          simt::estimate_cpu_us(ops.complex_mul, ops.complex_add, cmodel);

      table.add_row({std::to_string(m), std::to_string(32 * m), std::to_string(k),
                     benchutil::format_fixed(gpu_us, 1),
                     benchutil::format_fixed(cpu_us, 1),
                     benchutil::format_speedup(cpu_us / gpu_us)});
    }
  }
  std::cout << table.to_string() << "\n";
  std::cout << "Reading guide: speedup grows with the total monomial count (the\n"
               "fixed launch + transfer floor amortizes) and with k (more work\n"
               "per thread); this is the shape of the paper's Tables 1 and 2.\n";
  return 0;
}
