// Quality up (the paper's motivation): a path tracker needs more
// precision on a hard step, and the GPU pipeline makes double-double
// evaluation affordable.  This example plants a known root in a
// dimension-32 Table-1 workload, lets double Newton converge to its
// ~1e-14 floor, then continues on the GPU evaluator in double-double
// and quad-double, printing the residual ladder and the modeled cost of
// each configuration.

#include <iostream>

#include "ad/cpu_evaluator.hpp"
#include "benchutil/table.hpp"
#include "core/gpu_evaluator.hpp"
#include "newton/newton.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"

namespace {

using namespace polyeval;
using prec::DoubleDouble;
using prec::QuadDouble;

template <class T>
using C = cplx::Complex<T>;

}  // namespace

int main() {
  // A dimension-32 workload in the shape of Table 1, with a planted
  // regular root.
  poly::SystemSpec spec;
  spec.dimension = 32;
  spec.monomials_per_polynomial = 22;
  spec.variables_per_monomial = 9;
  spec.max_exponent = 2;
  const auto [system, root] = poly::make_random_system_with_root(spec);

  std::cout << "workload: n=32, m=22, k=9, d=2 (704 monomials), planted root\n\n";

  // --- stage 1: double precision Newton (CPU reference evaluator) -------
  std::vector<C<double>> x0 = root;
  for (auto& z : x0) z += C<double>(3e-5, -2e-5);  // a predictor's error

  ad::CpuEvaluator<double> cpu_d(system);
  newton::NewtonOptions opts_d;
  opts_d.max_iterations = 10;
  opts_d.residual_tolerance = 0.0;  // run to the double floor
  const auto r_d = newton::refine<double>(cpu_d, std::span<const C<double>>(x0), opts_d);

  std::cout << "double Newton residuals:";
  for (const double r : r_d.residual_history) std::cout << " " << r;
  std::cout << "\n  -> stalls at ~" << r_d.final_residual
            << " (the double noise floor)\n\n";

  // --- stage 2: double-double on the simulated GPU ----------------------
  simt::Device device;
  core::GpuEvaluator<DoubleDouble> gpu_dd(device, system);
  const auto x_dd = newton::widen_point<DoubleDouble, double>(r_d.solution);
  newton::NewtonOptions opts_dd;
  opts_dd.max_iterations = 4;
  opts_dd.residual_tolerance = 0.0;
  const auto r_dd =
      newton::refine<DoubleDouble>(gpu_dd, std::span<const C<DoubleDouble>>(x_dd), opts_dd);

  std::cout << "double-double Newton (GPU pipeline) residuals:";
  for (const double r : r_dd.residual_history) std::cout << " " << r;
  std::cout << "\n  -> " << r_dd.final_residual << "\n\n";

  // --- stage 3: quad-double for the really hard steps -------------------
  simt::Device device_qd;
  core::GpuEvaluator<QuadDouble> gpu_qd(device_qd, system);
  std::vector<C<QuadDouble>> x_qd;
  for (const auto& z : r_dd.solution)
    x_qd.emplace_back(QuadDouble(z.re()), QuadDouble(z.im()));
  newton::NewtonOptions opts_qd;
  opts_qd.max_iterations = 3;
  opts_qd.residual_tolerance = 0.0;
  const auto r_qd =
      newton::refine<QuadDouble>(gpu_qd, std::span<const C<QuadDouble>>(x_qd), opts_qd);

  std::cout << "quad-double Newton (GPU pipeline) residuals:";
  for (const double r : r_qd.residual_history) std::cout << " " << r;
  std::cout << "\n  -> " << r_qd.final_residual << "\n\n";

  // --- the quality-up accounting -----------------------------------------
  const simt::DeviceSpec dspec;
  simt::GpuCostModel g_dd;
  g_dd.scalar_cost_factor = 8.0;  // the paper's double-double factor
  const simt::CpuCostModel cmodel;

  ad::CpuEvaluator<double> counter(system);
  poly::EvalResult<double> scratch(32);
  counter.evaluate(std::span<const C<double>>(root), scratch);
  const auto& ops = counter.last_op_counts();
  const double cpu_d_us =
      simt::estimate_cpu_us(ops.complex_mul, ops.complex_add, cmodel);
  const double gpu_dd_us = simt::estimate_log_us(gpu_dd.last_log(), dspec, g_dd);

  std::cout << "modeled cost per evaluation:\n"
            << "  1 CPU core, double:        " << benchutil::format_fixed(cpu_d_us, 1)
            << " us\n"
            << "  GPU pipeline, double-double: "
            << benchutil::format_fixed(gpu_dd_us, 1) << " us\n"
            << "=> quality up: " << benchutil::format_fixed(cpu_d_us / gpu_dd_us, 2)
            << "x -- twice the digits, still faster than one core in double.\n";
  return 0;
}
