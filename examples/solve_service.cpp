// Solve service end to end: submit several total-degree solve requests
// to one persistent service through the unified solve::Options /
// solve::Report surface, watch them coalesce onto shared device
// rounds, poll progress, cancel one, and read the versioned reports.
//
// The one-shot spelling of the same thing is
// homotopy::solve_total_degree_sharded(target, options.to_sharded()) --
// in its default (lockstep x fused) configuration that call routes
// through a throwaway service instance, and the service promises the
// endpoints are bitwise identical either way.

#include <iostream>

#include "poly/random_system.hpp"
#include "service/solve_service.hpp"

int main() {
  using namespace polyeval;

  // --- three random systems sharing one uniform structure ----------------
  // Same (n, m, k, d) means their requests can share multi-tenant
  // device launches; the coefficients (and hence the solutions) differ.
  const auto make = [](std::uint32_t seed) {
    poly::SystemSpec spec;
    spec.dimension = 3;
    spec.monomials_per_polynomial = 3;
    spec.variables_per_monomial = 2;
    spec.max_exponent = 2;
    spec.seed = seed;
    return poly::make_random_system(spec);
  };

  // --- the unified options surface ---------------------------------------
  solve::Options options;                       // validated defaults
  options.sharding.max_paths = 8;               // keep the demo small
  options.tracking.track.max_steps = 3000;
  options.validate();

  // --- one persistent service, three concurrent requests -----------------
  service::SolveService<double>::Config config;
  config.shards = 2;
  service::SolveService<double> service(std::move(config));

  std::vector<service::SolveTicket<double>> tickets;
  for (std::uint32_t seed : {7u, 8u, 9u}) {
    tickets.push_back(service.submit({make(seed), options,
                                      /*start=*/{}, /*round_budget=*/0,
                                      /*modeled_deadline_us=*/0.0}));
    std::cout << "request " << tickets.back().id() << ": "
              << to_string(tickets.back().verdict()) << "\n";
  }

  // Cancel the third request after a few scheduler ticks: its live
  // paths retire as kCancelled at the next round boundary, its
  // unstarted paths never cost a launch.
  for (int tick = 0; tick < 3; ++tick) service.step();
  tickets[2].cancel();

  std::uint64_t last_retired = ~std::uint64_t{0};
  while (service.step()) {
    const auto progress = tickets[0].poll();
    if (progress.paths_retired == last_retired) continue;
    last_retired = progress.paths_retired;
    std::cout << "  request 1: " << progress.paths_retired << "/"
              << progress.paths_total << " paths retired ("
              << to_string(progress.status) << ")\n";
  }

  // --- versioned reports --------------------------------------------------
  for (auto& ticket : tickets) {
    const auto& report = ticket.report();  // kDone by now: never throws
    std::cout << "request " << ticket.id() << ": " << report.successes()
              << " converged, " << report.at_infinity() << " at infinity, "
              << report.cancelled() << " cancelled of " << report.attempted
              << " paths in " << report.timing.rounds << " rounds, modeled "
              << report.timing.modeled_us << " us\n";
    for (const auto& path : report.paths)
      if (path.status == homotopy::PathStatus::kConverged)
        std::cout << "    residual " << path.final_residual << " after "
                  << path.steps << " steps\n";
  }

  // --- what the batching bought ------------------------------------------
  const auto stats = service.stats();
  std::cout << "\ncoalesced rounds: " << stats.coalesced_rounds
            << " (max " << stats.max_tenants_in_round
            << " requests sharing a launch), " << stats.live_steals
            << " paths stolen between shards, cache " << stats.cache_hits
            << " hits / " << stats.cache_misses << " misses\n";
  return 0;
}
