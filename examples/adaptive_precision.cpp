// Parse a system from its text form, then refine a root with the
// adaptive-precision Newton ladder: the tool a path tracker reaches for
// when one hard step needs more digits than hardware doubles carry.

#include <iostream>

#include "newton/adaptive.hpp"
#include "newton/newton.hpp"
#include "poly/io.hpp"

int main() {
  using namespace polyeval;
  using Cd = cplx::Complex<double>;

  // The intersection of a circle and a hyperbola; the positive real
  // solution is the golden ratio pair (phi, 1/phi) -- irrational, so
  // every precision level leaves a measurable residual.
  const auto system = poly::parse_system(
      "x0^2 + x1^2 - 3;"
      "x0*x1 - 1;");

  std::cout << "system:\n" << poly::format(system) << "\n";

  const std::vector<Cd> x0 = {{1.6, 0.0}, {0.6, 0.0}};

  for (const double target : {1e-10, 1e-24, 1e-50}) {
    newton::AdaptiveOptions options;
    options.target_residual = target;
    const auto result = newton::adaptive_refine(system, x0, options);

    std::cout << "target " << target << ": reached "
              << newton::to_string(result.level_reached) << ", residual "
              << result.final_residual << ", converged "
              << (result.converged ? "yes" : "no") << "\n";
  }

  // On tiny systems double-double can represent a residual of exactly
  // zero (the unevaluated-sum format has variable precision), so the
  // escalation may stop early, as seen above.  To display the digits
  // quad-double carries, pin the final rung explicitly.
  newton::AdaptiveOptions options;
  options.target_residual = 1e-24;
  const auto dd_result = newton::adaptive_refine(system, x0, options);

  ad::CpuEvaluator<prec::QuadDouble> eval_qd(system);
  newton::NewtonOptions qd_opts;
  qd_opts.max_iterations = 3;
  qd_opts.residual_tolerance = 0.0;
  const auto qd_result = newton::refine<prec::QuadDouble>(
      eval_qd, std::span<const cplx::Complex<prec::QuadDouble>>(dd_result.solution),
      qd_opts);

  std::cout << "\nx0 = " << prec::to_string(qd_result.solution[0].re(), 55) << "\n"
            << "     (the golden ratio is\n"
            << "     1.618033988749894848204586834365638117720309179805762862...)\n";
  return 0;
}
