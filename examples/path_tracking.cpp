// Homotopy continuation end to end: solve the cyclic-3 benchmark system
// by tracking all six total-degree paths with the predictor-corrector
// tracker (the application the paper's evaluator accelerates), then
// verify every root against the naive evaluator.

#include <iostream>

#include "benchutil/table.hpp"
#include "homotopy/solver.hpp"
#include "poly/families.hpp"

int main() {
  using namespace polyeval;
  using Cd = cplx::Complex<double>;

  const auto system = poly::cyclic(3);
  std::cout << "target: cyclic-3 (degrees 1, 2, 3; Bezout number 6)\n\n";

  homotopy::SolveOptions options;
  options.workers = 2;  // manager/worker path distribution
  const auto summary = homotopy::solve_total_degree<double>(system, options);

  std::cout << "paths tracked: " << summary.attempted
            << ", successful: " << summary.successes << "\n\n";

  benchutil::Table table({"path", "steps", "rejections", "residual", "endpoint"});
  for (std::size_t p = 0; p < summary.paths.size(); ++p) {
    const auto& r = summary.paths[p];
    std::ostringstream endpoint;
    if (r.success) {
      endpoint << "(";
      for (std::size_t i = 0; i < r.solution.size(); ++i) {
        if (i) endpoint << ", ";
        endpoint << benchutil::format_fixed(r.solution[i].re(), 3) << (r.solution[i].im() < 0 ? "-" : "+")
                 << benchutil::format_fixed(std::abs(r.solution[i].im()), 3) << "i";
      }
      endpoint << ")";
    } else {
      endpoint << "diverged (t = " << benchutil::format_fixed(r.t_reached, 3) << ")";
    }
    table.add_row({std::to_string(p), std::to_string(r.steps),
                   std::to_string(r.rejections),
                   r.success ? benchutil::format_fixed(r.final_residual * 1e15, 2) + "e-15"
                             : "-",
                   endpoint.str()});
  }
  std::cout << table.to_string() << "\n";

  const auto roots = summary.distinct_solutions();
  std::cout << "distinct solutions: " << roots.size() << "\n";

  // Verify each solution with the independent naive evaluator.
  double worst = 0.0;
  for (const auto& root : roots) {
    std::vector<Cd> values(3), jac(9);
    system.evaluate_naive<double>(root, values, jac);
    for (const auto& v : values)
      worst = std::max(worst, std::abs(v.re()) + std::abs(v.im()));
  }
  std::cout << "largest |f| over all claimed roots (naive check): " << worst << "\n";
  return 0;
}
