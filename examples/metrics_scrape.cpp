// The observability layer end to end: run a few solve requests through
// one persistent service with lifecycle tracing enabled, then harvest
// every telemetry surface it offers --
//
//   1. the Prometheus-style metrics exposition
//      (SolveService::metrics().expose): counters and histograms from
//      every instrumented layer -- admission, scheduler, lockstep
//      tracker, Newton, caches, per-kernel launch accounting;
//   2. the per-request metrics snapshot on each versioned report
//      (solve::Report::Metrics) and the pinned human rendering
//      (Report::to_string);
//   3. the Chrome trace-event export of the MODELED device timeline
//      (SolveService::export_trace) -- drop metrics_scrape_trace.json
//      into https://ui.perfetto.dev to see requests riding shared
//      rounds and each round's compute/DMA decomposition.
//
// Tracing and metrics observe the solve; they never perturb it.  The
// same run with Config::trace = kOff (the default) produces bitwise
// identical endpoints and modeled accounting -- test_obs pins that.

#include <fstream>
#include <iostream>
#include <sstream>

#include "poly/random_system.hpp"
#include "service/solve_service.hpp"

int main() {
  using namespace polyeval;

  const auto make = [](std::uint32_t seed) {
    poly::SystemSpec spec;
    spec.dimension = 3;
    spec.monomials_per_polynomial = 3;
    spec.variables_per_monomial = 2;
    spec.max_exponent = 2;
    spec.seed = seed;
    return poly::make_random_system(spec);
  };

  solve::Options options;
  options.sharding.max_paths = 8;
  options.tracking.track.max_steps = 3000;
  options.validate();

  // --- a traced service ---------------------------------------------------
  // TraceLevel::kFull records request/round spans plus per-launch
  // kernel slices.  Tracing is a diagnostic mode: leave the default
  // kOff in production hot paths and scrape metrics only -- metrics
  // observation is allocation-free and always on.
  service::SolveService<double>::Config config;
  config.shards = 2;
  config.trace = obs::TraceLevel::kFull;
  service::SolveService<double> service(std::move(config));

  std::vector<service::SolveTicket<double>> tickets;
  for (std::uint32_t seed : {7u, 8u, 9u})
    tickets.push_back(service.submit({make(seed), options, {}, 0, 0.0}));
  service.drain();

  // --- 1. the exposition page --------------------------------------------
  // metrics() refreshes the gauges (queue depth, cache hit counts) and
  // folds any newly measured autotuner profiles, then expose() writes
  // the Prometheus text format.  In a long-running process this is the
  // scrape endpoint's body.
  std::ostringstream exposition;
  service.metrics().expose(exposition);
  const std::string page = exposition.str();

  // Print the headline families; the full page is ~40 families deep.
  std::istringstream lines(page);
  std::cout << "=== selected metrics ===\n";
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("polyeval_requests_", 0) == 0 ||
        line.rfind("polyeval_tracker_rounds_total", 0) == 0 ||
        line.rfind("polyeval_newton_iterations_total", 0) == 0 ||
        line.rfind("polyeval_paths_retired_total", 0) == 0 ||
        line.rfind("polyeval_kernel_launches_total", 0) == 0 ||
        line.rfind("polyeval_coalesced_rounds_total", 0) == 0)
      std::cout << line << "\n";
  }

  // --- 2. per-request snapshots -------------------------------------------
  std::cout << "\n=== per-request reports ===\n";
  for (auto& ticket : tickets) {
    const auto& report = ticket.report();
    std::cout << report.to_string();  // full timing + scheduling, pinned
  }

  // --- 3. the modeled timeline --------------------------------------------
  const char* trace_path = "metrics_scrape_trace.json";
  std::ofstream trace(trace_path);
  service.export_trace(trace);
  std::cout << "\nwrote " << trace_path
            << " -- open https://ui.perfetto.dev and drop it in\n";

  // The trace and the reports agree by construction: every request
  // span's args.modeled_us is the same number as its report's
  // timing.modeled_us.
  double span_sum = 0.0;
  for (const auto& span : service.tracer().spans())
    if (std::string_view(span.cat) == "request" && span.arg_modeled_us >= 0)
      span_sum += span.arg_modeled_us;
  double report_sum = 0.0;
  for (auto& ticket : tickets)
    report_sum += ticket.report().timing.modeled_us;
  std::cout << "request spans sum to " << span_sum << " modeled us, reports to "
            << report_sum << "\n";
  return 0;
}
