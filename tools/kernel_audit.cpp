/// \file kernel_audit.cpp
/// CI gate over the kernel access auditor (src/audit).
///
/// Two passes, both required for a zero exit:
///
///  1. **Fixture gate** -- every seeded-violation fixture must make its
///     checker fire with the expected kernel/buffer attribution.  A
///     checker that stops firing would silently turn the production
///     sweep into a rubber stamp.
///  2. **Production sweep** -- every production kernel builder (fused,
///     values-only, batch triple, pipelined, multi-tenant, Newton
///     refinement) runs audited across Table-1-shaped systems x
///     {double, dd, qd} x representative geometries.  Any finding fails
///     the run.
///
/// Results land in AUDIT_kernels.json (override with --out).  --quick
/// trims the matrix for pre-commit runs; CI runs the full sweep.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "audit/fixtures.hpp"
#include "audit/kernel_auditor.hpp"
#include "core/batch_evaluator.hpp"
#include "core/fused_evaluator.hpp"
#include "core/multitenant_evaluator.hpp"
#include "core/pipelined_evaluator.hpp"
#include "linalg/lu.hpp"
#include "newton/batch.hpp"
#include "poly/random_system.hpp"
#include "prec/double_double.hpp"
#include "prec/quad_double.hpp"

namespace {

using polyeval::audit::Finding;
using polyeval::audit::FindingKind;
using polyeval::audit::KernelAuditor;

struct SweepEntry {
  std::string evaluator;
  std::string precision;
  std::string shape;
  std::string geometry;
  std::size_t launches = 0;
  std::vector<Finding> findings;
};

struct FixtureEntry {
  std::string name;
  bool passed = false;
  std::string detail;
  std::vector<Finding> findings;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_finding(std::ostream& os, const Finding& f, const char* indent) {
  os << indent << "{\"kind\": \"" << polyeval::audit::to_string(f.kind)
     << "\", \"kernel\": \"" << json_escape(f.kernel) << "\", \"phase\": " << f.phase
     << ", \"block\": " << f.block << ", \"warp\": " << f.warp
     << ", \"lane\": " << f.lane << ", \"thread\": " << f.thread
     << ", \"buffer\": \"" << json_escape(f.buffer) << "\", \"offset\": " << f.offset
     << ", \"provenance\": \"" << json_escape(f.provenance)
     << "\", \"detail\": \"" << json_escape(f.detail) << "\"}";
}

// ---------------------------------------------------------------------------
// Production sweep
// ---------------------------------------------------------------------------

/// Adapter giving FusedGpuEvaluator the BatchEvaluator shape refine_batch
/// wants: the homotopy parameter is ignored (direct system evaluation),
/// which is fine for an access audit -- the kernels launched are exactly
/// the production fused/values kernels the trackers drive.
template <polyeval::prec::RealScalar S>
struct DirectBatchEval {
  using C = polyeval::cplx::Complex<S>;
  polyeval::core::FusedGpuEvaluator<S>& ev;
  std::vector<polyeval::poly::EvalResult<S>> results;

  void evaluate_range(const std::vector<std::vector<C>>& points,
                      std::span<const C> /*ts*/, std::size_t first,
                      std::size_t count, std::span<C> values,
                      std::span<C> jacobians) {
    const unsigned n = ev.dimension();
    results.resize(count, polyeval::poly::EvalResult<S>(n));
    ev.evaluate_range(points, first, count,
                      std::span<polyeval::poly::EvalResult<S>>(results));
    for (std::size_t i = 0; i < count; ++i) {
      std::copy(results[i].values.begin(), results[i].values.end(),
                values.begin() + static_cast<std::ptrdiff_t>(i * n));
      std::copy(results[i].jacobian.begin(), results[i].jacobian.end(),
                jacobians.begin() + static_cast<std::ptrdiff_t>(i * n * n));
    }
  }
  void evaluate_values_range(const std::vector<std::vector<C>>& points,
                             std::span<const C> /*ts*/, std::size_t first,
                             std::size_t count, std::span<C> values) {
    ev.evaluate_values_range(points, first, count, values);
  }
  [[nodiscard]] std::size_t max_batch() const { return ev.batch_capacity(); }
  [[nodiscard]] unsigned dimension() const { return ev.dimension(); }
};

struct Geometry {
  std::string name;
  unsigned block_size = 0;  // 0 = heuristic auto
  std::optional<polyeval::core::InterchangeLayout> interchange;
};

struct SweepContext {
  std::vector<SweepEntry>& entries;
  const polyeval::poly::SystemSpec& spec;
  const std::string shape_name;
  const Geometry& geo;
  const char* precision;
};

/// Run `body(device, auditor)` with a fresh device and attached auditor,
/// then record what the auditor saw.  The auditor attaches BEFORE the
/// body constructs its evaluator so construction-time uploads and fills
/// register as host-initialized provenance.
template <class Body>
void audited(SweepContext& ctx, const char* evaluator, Body&& body) {
  polyeval::simt::Device device;
  KernelAuditor auditor;
  auditor.attach(device);
  body(device, auditor);
  SweepEntry entry;
  entry.evaluator = evaluator;
  entry.precision = ctx.precision;
  entry.shape = ctx.shape_name;
  entry.geometry = ctx.geo.name;
  entry.launches = auditor.launches_audited();
  entry.findings.assign(auditor.findings().begin(), auditor.findings().end());
  ctx.entries.push_back(std::move(entry));
  auditor.detach();
}

template <polyeval::prec::RealScalar S>
void sweep_precision(std::vector<SweepEntry>& entries, const char* precision,
                     const polyeval::poly::SystemSpec& spec,
                     const std::string& shape_name, const Geometry& geo,
                     bool quick) {
  namespace core = polyeval::core;
  namespace poly = polyeval::poly;
  using C = polyeval::cplx::Complex<S>;

  const auto system = poly::make_random_system(spec);
  constexpr unsigned kBatch = 4;
  std::vector<std::vector<C>> points;
  points.reserve(kBatch);
  for (unsigned p = 0; p < kBatch; ++p)
    points.push_back(poly::make_random_point<S>(spec.dimension, 7000 + p));
  std::vector<poly::EvalResult<S>> results(kBatch,
                                           poly::EvalResult<S>(spec.dimension));

  SweepContext ctx{entries, spec, shape_name, geo, precision};

  // The measured autotuner would launch dozens of probe geometries per
  // construction; kHeuristic keeps the sweep about the production
  // kernels themselves while the geometry axis covers the tuned shapes.
  audited(ctx, "fused", [&](polyeval::simt::Device& dev, KernelAuditor& aud) {
    typename core::FusedGpuEvaluator<S>::Options opt;
    opt.block_size = geo.block_size;
    opt.interchange = geo.interchange;
    opt.tuning = polyeval::tune::TuningMode::kHeuristic;
    core::FusedGpuEvaluator<S> ev(dev, system, kBatch, opt);
    aud.begin_epoch();
    ev.evaluate_range(points, 0, kBatch, std::span<poly::EvalResult<S>>(results));
    std::vector<C> values(std::size_t{kBatch} * spec.dimension);
    aud.begin_epoch();
    ev.evaluate_values_range(points, 0, kBatch, std::span<C>(values));
  });

  audited(ctx, "batch", [&](polyeval::simt::Device& dev, KernelAuditor& aud) {
    typename core::BatchGpuEvaluator<S>::Options opt;
    opt.block_size = geo.block_size;
    opt.interchange = geo.interchange;
    opt.tuning = polyeval::tune::TuningMode::kHeuristic;
    core::BatchGpuEvaluator<S> ev(dev, system, kBatch, opt);
    aud.begin_epoch();
    ev.evaluate_range(points, 0, kBatch, std::span<poly::EvalResult<S>>(results));
    aud.begin_epoch();
    ev.evaluate_range(points, 0, kBatch, std::span<poly::EvalResult<S>>(results));
  });

  audited(ctx, "pipelined", [&](polyeval::simt::Device& dev, KernelAuditor& aud) {
    typename core::PipelinedFusedEvaluator<S>::Options opt;
    opt.block_size = geo.block_size;
    opt.interchange = geo.interchange;
    opt.micro_chunk = 2;
    opt.tuning = polyeval::tune::TuningMode::kHeuristic;
    core::PipelinedFusedEvaluator<S> ev(dev, system, kBatch, opt);
    aud.begin_epoch();
    ev.evaluate_range(points, 0, kBatch, std::span<poly::EvalResult<S>>(results));
    std::vector<C> values(std::size_t{kBatch} * spec.dimension);
    aud.begin_epoch();
    ev.evaluate_values_range(points, 0, kBatch, std::span<C>(values));
  });

  audited(ctx, "multi_tenant", [&](polyeval::simt::Device& dev, KernelAuditor& aud) {
    typename core::MultiTenantFusedEvaluator<S>::Options opt;
    opt.block_size = geo.block_size;
    opt.interchange = geo.interchange;
    core::MultiTenantFusedEvaluator<S> ev(dev, spec.structure(), /*max_tenants=*/2,
                                          kBatch, opt);
    poly::SystemSpec other = spec;
    other.seed += 1;
    ev.set_tenant(0, system);
    ev.set_tenant(1, poly::make_random_system(other));
    const std::vector<unsigned> tenants = {0, 1, 1, 0};
    ev.bind_tenants(std::span<const unsigned>(tenants));
    aud.begin_epoch();
    ev.evaluate_range(points, 0, kBatch, std::span<poly::EvalResult<S>>(results));
    // A second epoch over swapped routing: exactly the cross-tenant
    // slot-reuse pattern the stale-read checker exists for.
    const std::vector<unsigned> swapped = {1, 0, 0, 1};
    ev.bind_tenants(std::span<const unsigned>(swapped));
    aud.begin_epoch();
    std::vector<C> values(std::size_t{kBatch} * spec.dimension);
    ev.evaluate_values_range(points, 0, kBatch, std::span<C>(values));
  });

  if (quick) return;

  audited(ctx, "newton_refine", [&](polyeval::simt::Device& dev, KernelAuditor& aud) {
    typename core::FusedGpuEvaluator<S>::Options opt;
    opt.block_size = geo.block_size;
    opt.interchange = geo.interchange;
    opt.tuning = polyeval::tune::TuningMode::kHeuristic;
    core::FusedGpuEvaluator<S> ev(dev, system, kBatch, opt);
    DirectBatchEval<S> batch{ev, {}};

    std::vector<std::vector<C>> x = points;
    std::vector<C> ts(kBatch, C{});
    polyeval::newton::NewtonOptions nopt;
    nopt.max_iterations = 2;
    polyeval::linalg::LuArena<S> arena(spec.dimension, kBatch);
    polyeval::newton::RefineBatchScratch<S> scratch;
    scratch.reserve(spec.dimension, kBatch, kBatch);
    std::vector<polyeval::newton::BatchPathStatus> status(kBatch);
    aud.begin_epoch();
    polyeval::newton::refine_batch<S>(batch, x, std::span<const C>(ts), kBatch,
                                      nopt, arena, scratch,
                                      std::span<polyeval::newton::BatchPathStatus>(status));
  });
}

std::vector<SweepEntry> run_production_sweep(bool quick) {
  namespace poly = polyeval::poly;
  std::vector<SweepEntry> entries;

  // Scaled-down Table-1 shapes: the access pattern of every kernel is
  // governed by (n, m, k, d) the same way at n=8 as at n=128, and the
  // simulator executes lane-by-lane, so small shapes audit the same
  // code paths in seconds instead of hours.
  struct Shape {
    const char* name;
    poly::SystemSpec spec;
  };
  std::vector<Shape> shapes = {
      {"n8_m8_k4_d2", {.dimension = 8,
                       .monomials_per_polynomial = 8,
                       .variables_per_monomial = 4,
                       .max_exponent = 2,
                       .seed = 20120102}},
  };
  if (!quick)
    shapes.push_back({"n16_m20_k6_d3", {.dimension = 16,
                                        .monomials_per_polynomial = 20,
                                        .variables_per_monomial = 6,
                                        .max_exponent = 3,
                                        .seed = 20120103}});

  std::vector<Geometry> geometries = {
      {"auto", 0, std::nullopt},
      {"b64_soa", 64, polyeval::core::InterchangeLayout::kSoA},
  };
  if (!quick)
    geometries.push_back({"b32_aos", 32, polyeval::core::InterchangeLayout::kAoS});

  for (const auto& shape : shapes) {
    for (const auto& geo : geometries) {
      sweep_precision<double>(entries, "double", shape.spec, shape.name, geo, quick);
      sweep_precision<polyeval::prec::DoubleDouble>(entries, "dd", shape.spec,
                                                    shape.name, geo, quick);
      // qd is ~10x double's cost; one geometry covers its kernels.
      if (geo.block_size == 0)
        sweep_precision<polyeval::prec::QuadDouble>(entries, "qd", shape.spec,
                                                    shape.name, geo, quick);
    }
  }
  return entries;
}

// ---------------------------------------------------------------------------
// Fixture gate
// ---------------------------------------------------------------------------

bool has_finding(const std::vector<Finding>& fs, FindingKind kind,
                 const char* kernel, const char* buffer = nullptr) {
  for (const auto& f : fs) {
    if (f.kind != kind) continue;
    if (f.kernel != kernel) continue;
    if (buffer != nullptr && f.buffer != buffer) continue;
    return true;
  }
  return false;
}

std::vector<FixtureEntry> run_fixture_gate() {
  namespace fixtures = polyeval::audit::fixtures;
  std::vector<FixtureEntry> out;

  const auto run = [&](const char* name, auto&& fixture, auto&& verify) {
    polyeval::simt::Device device;
    KernelAuditor auditor;
    auditor.attach(device);
    fixture(auditor, device);
    FixtureEntry entry;
    entry.name = name;
    entry.findings.assign(auditor.findings().begin(), auditor.findings().end());
    entry.detail = verify(entry.findings);
    entry.passed = entry.detail.empty();
    if (entry.passed) entry.detail = "all expected checkers fired";
    out.push_back(std::move(entry));
    auditor.detach();
  };

  run("stale_slot", fixtures::run_stale_slot, [](const std::vector<Finding>& fs) {
    if (!has_finding(fs, FindingKind::kStaleGlobalRead, "fx_stale_slot", "FxMons"))
      return std::string("expected kStaleGlobalRead on FxMons in fx_stale_slot");
    for (const auto& f : fs)
      if (f.kind == FindingKind::kStaleGlobalRead && f.phase != 1)
        return std::string("stale read attributed to wrong phase");
    return std::string();
  });

  run("uninit_read", fixtures::run_uninit_read, [](const std::vector<Finding>& fs) {
    if (!has_finding(fs, FindingKind::kUninitGlobalRead, "fx_uninit_read", "FxNever"))
      return std::string("expected kUninitGlobalRead on FxNever");
    if (!has_finding(fs, FindingKind::kUninitSharedRead, "fx_uninit_read"))
      return std::string("expected kUninitSharedRead");
    return std::string();
  });

  run("out_of_bounds", fixtures::run_out_of_bounds,
      [](const std::vector<Finding>& fs) {
        std::size_t oob = 0;
        for (const auto& f : fs)
          if (f.kind == FindingKind::kGlobalOutOfBounds && f.kernel == "fx_oob" &&
              f.buffer == "FxSmall")
            ++oob;
        if (oob != 2)
          return std::string("expected 2 kGlobalOutOfBounds on FxSmall, saw ") +
                 std::to_string(oob);
        return std::string();
      });

  run("lane_divergence", fixtures::run_lane_divergence,
      [](const std::vector<Finding>& fs) {
        if (!has_finding(fs, FindingKind::kAccessAfterInactive, "fx_diverge"))
          return std::string("expected kAccessAfterInactive");
        if (!has_finding(fs, FindingKind::kFootprintDivergence, "fx_diverge"))
          return std::string("expected kFootprintDivergence");
        if (!has_finding(fs, FindingKind::kCountDivergence, "fx_diverge"))
          return std::string("expected kCountDivergence");
        return std::string();
      });

  run("ndet_accumulation", fixtures::run_nondeterministic_accumulation,
      [](const std::vector<Finding>& fs) {
        if (!has_finding(fs, FindingKind::kNondeterministicAccumulation,
                         "fx_ndet_accum", "FxAcc"))
          return std::string("expected kNondeterministicAccumulation on FxAcc");
        return std::string();
      });

  return out;
}

// ---------------------------------------------------------------------------

void write_report(const std::string& path, const std::vector<FixtureEntry>& fixtures,
                  const std::vector<SweepEntry>& sweep, bool quick) {
  std::ofstream os(path);
  os << "{\n  \"quick\": " << (quick ? "true" : "false") << ",\n";

  os << "  \"fixtures\": [\n";
  for (std::size_t i = 0; i < fixtures.size(); ++i) {
    const auto& fx = fixtures[i];
    os << "    {\"name\": \"" << fx.name << "\", \"passed\": "
       << (fx.passed ? "true" : "false") << ", \"detail\": \""
       << json_escape(fx.detail) << "\", \"findings\": [\n";
    for (std::size_t j = 0; j < fx.findings.size(); ++j) {
      write_finding(os, fx.findings[j], "      ");
      os << (j + 1 < fx.findings.size() ? ",\n" : "\n");
    }
    os << "    ]}" << (i + 1 < fixtures.size() ? ",\n" : "\n");
  }
  os << "  ],\n";

  std::size_t production_findings = 0;
  os << "  \"production\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& e = sweep[i];
    production_findings += e.findings.size();
    os << "    {\"evaluator\": \"" << e.evaluator << "\", \"precision\": \""
       << e.precision << "\", \"shape\": \"" << e.shape << "\", \"geometry\": \""
       << e.geometry << "\", \"launches\": " << e.launches << ", \"findings\": [\n";
    for (std::size_t j = 0; j < e.findings.size(); ++j) {
      write_finding(os, e.findings[j], "      ");
      os << (j + 1 < e.findings.size() ? ",\n" : "\n");
    }
    os << "    ]}" << (i + 1 < sweep.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"production_findings\": " << production_findings << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool fixtures_only = false;
  bool production_only = false;
  std::string out_path = "AUDIT_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--fixtures-only") == 0) {
      fixtures_only = true;
    } else if (std::strcmp(argv[i], "--production-only") == 0) {
      production_only = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: kernel_audit [--quick] [--fixtures-only] "
                   "[--production-only] [--out FILE]\n";
      return 2;
    }
  }

  std::vector<FixtureEntry> fixtures;
  if (!production_only) fixtures = run_fixture_gate();
  std::vector<SweepEntry> sweep;
  if (!fixtures_only) sweep = run_production_sweep(quick);

  write_report(out_path, fixtures, sweep, quick);

  bool ok = true;
  for (const auto& fx : fixtures) {
    std::cout << "fixture " << fx.name << ": " << (fx.passed ? "PASS" : "FAIL")
              << " (" << fx.detail << ", " << fx.findings.size() << " findings)\n";
    ok = ok && fx.passed;
  }
  std::size_t launches = 0, findings = 0;
  for (const auto& e : sweep) {
    launches += e.launches;
    findings += e.findings.size();
    if (!e.findings.empty()) {
      std::cout << "FINDINGS in " << e.evaluator << "/" << e.precision << "/"
                << e.shape << "/" << e.geometry << ":\n";
      for (const auto& f : e.findings)
        std::cout << "  [" << polyeval::audit::to_string(f.kind) << "] "
                  << f.kernel << " phase " << f.phase << " block " << f.block
                  << " thread " << f.thread << " buffer " << f.buffer << "+"
                  << f.offset << ": " << f.detail << "\n";
      ok = false;
    }
  }
  std::cout << "production sweep: " << sweep.size() << " configs, " << launches
            << " audited launches, " << findings << " findings\n";
  std::cout << "report: " << out_path << "\n";
  if (!ok) {
    std::cout << "kernel_audit: FAIL\n";
    return 1;
  }
  std::cout << "kernel_audit: PASS\n";
  return 0;
}
