#!/usr/bin/env python3
"""Perf-regression gate for the BENCH_*.json artifacts.

Compares every host wall-clock field (key containing "wall_us";
lower is better), every host throughput field (key containing
"per_sec"; HIGHER is better -- this includes the solve service's
sustained "solves_per_sec", bench_service's headline number) and every
classification-quality field
(key containing "solved_frac"; HIGHER is better -- the projective
tracker's classified-endpoint fraction, which must never collapse back
toward the ~0 of the pre-projective tracker) of each current bench
JSON against the committed baseline of the same name, and fails when
any value regressed by more than --max-ratio.  Wall-clock and
throughput numbers move with the runner hardware, so the gate is
deliberately coarse (default 2x): it catches "the hot path grew an
allocation per launch", not 10% noise; solved_frac is deterministic on
a given workload, so any drop at all shows up here long before the 2x
ratio trips: solved_frac fields are held to their own tight
--max-solved-ratio (default 1.01) instead of the coarse wall-clock
ratio.  Autotuner fields (key containing "tuned_speedup") are held to
an absolute floor (--min-tuned-speedup, default 0.9999) instead of a
baseline ratio: the modeled clock is deterministic, so tuned slower
than heuristic is a tuner bug regardless of what the baseline says,
and the floor fires even when no baseline file exists yet.  Other
modeled-clock and speedup fields are left alone -- they have their own
in-bench gates.

Usage:
  scripts/check_bench_regression.py [--baseline-dir bench/baselines]
      [--max-ratio 2.0] BENCH_batch.json BENCH_sharding.json ...
"""

import argparse
import json
import os
import sys


def gated_leaves(node, path=""):
    """Yield (path, value, higher_is_better, is_quality) for every
    numeric leaf whose key mentions wall_us (lower is better), per_sec
    or solved_frac (higher is better; solved_frac is a deterministic
    quality field and gets the tight ratio)."""
    if isinstance(node, dict):
        for key, value in node.items():
            sub = f"{path}.{key}" if path else key
            if isinstance(value, (dict, list)):
                yield from gated_leaves(value, sub)
            elif isinstance(value, (int, float)) and "wall_us" in key:
                yield sub, float(value), False, False
            elif isinstance(value, (int, float)) and "solves_per_sec" in key:
                # The solve service's sustained-throughput headline
                # (bench_service): higher is better, coarse wall ratio.
                yield sub, float(value), True, False
            elif isinstance(value, (int, float)) and "per_sec" in key:
                yield sub, float(value), True, False
            elif isinstance(value, (int, float)) and "solved_frac" in key:
                yield sub, float(value), True, True
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from gated_leaves(value, f"{path}[{i}]")


def tuned_speedup_leaves(node, path=""):
    """Yield (path, value) for every numeric leaf whose key mentions
    tuned_speedup -- the autotuner's modeled heuristic/tuned ratio,
    gated by an absolute floor rather than a baseline."""
    if isinstance(node, dict):
        for key, value in node.items():
            sub = f"{path}.{key}" if path else key
            if isinstance(value, (dict, list)):
                yield from tuned_speedup_leaves(value, sub)
            elif isinstance(value, (int, float)) and "tuned_speedup" in key:
                yield sub, float(value)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from tuned_speedup_leaves(value, f"{path}[{i}]")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="current BENCH_*.json files")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when current/baseline exceeds this")
    parser.add_argument("--max-solved-ratio", type=float, default=1.01,
                        help="tight ratio for solved_frac quality fields "
                             "(deterministic per workload: any real drop "
                             "must fail, not just a 2x collapse)")
    parser.add_argument("--min-tuned-speedup", type=float, default=0.9999,
                        help="absolute floor for tuned_speedup fields: the "
                             "measured autotuner must never be modeled-slower "
                             "than the heuristic it replaces (checked even "
                             "without a baseline)")
    args = parser.parse_args()

    failures = []
    compared = 0
    # Per-file binding metric: the gated field closest to (or furthest
    # past) its limit, as measured by ratio/limit headroom.  Reported on
    # pass AND fail so a green run still says which metric would trip
    # first if it drifted.
    binding = {}

    def consider(name, path, kind, base, value, ratio, limit):
        headroom = ratio / limit
        entry = binding.get(name)
        if entry is None or headroom > entry["headroom"]:
            binding[name] = {"path": path, "kind": kind, "base": base,
                             "value": value, "ratio": ratio, "limit": limit,
                             "headroom": headroom}

    # File-level problems (missing/unreadable/malformed JSON) are their
    # own failure class: report every bad file with a one-line error and
    # exit nonzero instead of dying on the first raw traceback.
    file_errors = []

    def load_json(path, role):
        try:
            with open(path) as f:
                return json.load(f)
        except OSError as e:
            file_errors.append(f"{role} {path}: cannot read ({e.strerror or e})")
        except json.JSONDecodeError as e:
            file_errors.append(f"{role} {path}: malformed JSON ({e})")
        return None

    for current_path in args.files:
        name = os.path.basename(current_path)
        current = load_json(current_path, "bench output")
        if current is None:
            continue

        # Absolute-floor gate: runs on every file, baseline or not.
        for path, value in tuned_speedup_leaves(current):
            compared += 1
            marker = "FAIL" if value < args.min_tuned_speedup else "ok"
            print(f"{marker:4} {name}:{path} [tuned-speedup]: {value:.4f} "
                  f"(floor {args.min_tuned_speedup:.4f})")
            # Floor gate: "cost ratio" is floor/value so >1 means failed.
            consider(name, path, "tuned-speedup", args.min_tuned_speedup,
                     value, args.min_tuned_speedup / value if value > 0.0
                     else float("inf"), 1.0)
            if value < args.min_tuned_speedup:
                failures.append((name, path, value))

        baseline_path = os.path.join(args.baseline_dir, name)
        if not os.path.exists(baseline_path):
            print(f"note: no baseline for {name}, skipping ratio gates "
                  f"(add {baseline_path} to gate it)")
            continue
        baseline = load_json(baseline_path, "baseline")
        if baseline is None:
            continue

        baseline_values = {p: (v, hib, q)
                           for p, v, hib, q in gated_leaves(baseline)}
        for path, value, higher_is_better, is_quality in gated_leaves(current):
            entry = baseline_values.get(path)
            if entry is None:
                continue
            base, _, _ = entry
            if base <= 0.0:
                continue
            compared += 1
            if higher_is_better and value <= 0.0:
                # Throughput (or classification quality) collapsed to
                # nothing: the worst possible regression, not a field
                # to skip.
                print(f"FAIL {name}:{path} [higher-is-better]: {base:.1f} -> "
                      f"{value:.1f} (collapsed to zero)")
                failures.append((name, path, float("inf")))
                continue
            # Normalize so ratio > 1 always means "got worse".
            ratio = base / value if higher_is_better else value / base
            limit = args.max_solved_ratio if is_quality else args.max_ratio
            marker = "FAIL" if ratio > limit else "ok"
            direction = ("quality" if is_quality
                         else "throughput" if higher_is_better else "wall")
            print(f"{marker:4} {name}:{path} [{direction}]: {base:.1f} -> "
                  f"{value:.1f} ({ratio:.2f}x of baseline cost, limit "
                  f"{limit:.2f}x)")
            consider(name, path, direction, base, value, ratio, limit)
            if ratio > limit:
                failures.append((name, path, ratio))

    if binding:
        print("\nbinding metric per file (closest to its limit):")
        for name in sorted(binding):
            b = binding[name]
            print(f"  {name}: {b['path']} [{b['kind']}] baseline "
                  f"{b['base']:.4g} measured {b['value']:.4g} -> "
                  f"{b['ratio']:.3f}x of limit {b['limit']:.2f}x "
                  f"({100.0 * b['headroom']:.0f}% of budget)")

    if compared == 0:
        print("warning: no wall-clock or throughput fields compared; "
              "check the baseline files exist and match the bench output")
    if file_errors:
        print(f"\n{len(file_errors)} file error(s):")
        for err in file_errors:
            print(f"  error: {err}")
        return 1
    if failures:
        print(f"\n{len(failures)} gated metric(s) regressed:")
        for name, path, ratio in failures:
            print(f"  {name}:{path} at {ratio:.4f}")
        return 1
    print(f"\nperf gate passed: {compared} gated fields checked "
          f"(wall/throughput/quality vs baseline, tuned_speedup vs floor)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
