#!/usr/bin/env python3
"""Perf-regression gate for the BENCH_*.json artifacts.

Compares every host wall-clock field (key containing "wall_us") of each
current bench JSON against the committed baseline of the same name and
fails when any value regressed by more than --max-ratio.  Wall-clock
numbers move with the runner hardware, so the gate is deliberately
coarse (default 2x): it catches "the hot path grew an allocation per
launch", not 10% noise.  Modeled-clock and speedup fields are left
alone -- they have their own in-bench gates.

Usage:
  scripts/check_bench_regression.py [--baseline-dir bench/baselines]
      [--max-ratio 2.0] BENCH_batch.json BENCH_sharding.json ...
"""

import argparse
import json
import os
import sys


def wall_clock_leaves(node, path=""):
    """Yield (path, value) for every numeric leaf whose key mentions wall_us."""
    if isinstance(node, dict):
        for key, value in node.items():
            sub = f"{path}.{key}" if path else key
            if isinstance(value, (dict, list)):
                yield from wall_clock_leaves(value, sub)
            elif isinstance(value, (int, float)) and "wall_us" in key:
                yield sub, float(value)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from wall_clock_leaves(value, f"{path}[{i}]")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="current BENCH_*.json files")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when current/baseline exceeds this")
    args = parser.parse_args()

    failures = []
    compared = 0
    for current_path in args.files:
        name = os.path.basename(current_path)
        baseline_path = os.path.join(args.baseline_dir, name)
        if not os.path.exists(baseline_path):
            print(f"note: no baseline for {name}, skipping "
                  f"(add {baseline_path} to gate it)")
            continue
        with open(current_path) as f:
            current = json.load(f)
        with open(baseline_path) as f:
            baseline = json.load(f)

        baseline_values = dict(wall_clock_leaves(baseline))
        for path, value in wall_clock_leaves(current):
            base = baseline_values.get(path)
            if base is None or base <= 0.0:
                continue
            compared += 1
            ratio = value / base
            marker = "FAIL" if ratio > args.max_ratio else "ok"
            print(f"{marker:4} {name}:{path}: {base:.1f} -> {value:.1f} "
                  f"({ratio:.2f}x)")
            if ratio > args.max_ratio:
                failures.append((name, path, ratio))

    if compared == 0:
        print("warning: no wall-clock fields compared; "
              "check the baseline files exist and match the bench output")
    if failures:
        print(f"\n{len(failures)} wall-clock regression(s) above "
              f"{args.max_ratio}x vs the committed baseline:")
        for name, path, ratio in failures:
            print(f"  {name}:{path} regressed {ratio:.2f}x")
        return 1
    print(f"\nperf gate passed: {compared} wall-clock fields within "
          f"{args.max_ratio}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
