#!/usr/bin/env python3
"""Structural validator for the Chrome trace-event JSON exported by
SolveService::export_trace (obs/chrome_trace.cpp).

Checks, in order:
  1. the file is valid JSON with a "traceEvents" array and every event
     carries the trace-event-format required fields (name/ph/pid; X
     events additionally tid/ts/dur with dur >= 0);
  2. the modeled device timeline renders at least --min-tracks device
     engine tracks (thread_name metadata under a device process --
     compute / dma h2d / dma d2h / rounds);
  3. request lifecycle spans (cat "request") and scheduler round spans
     (cat "round") are present;
  4. accounting consistency: the sum of the request spans'
     args.modeled_us (the per-request makespan shares that also land in
     solve::Report::Timing::modeled_us) equals the sum of the engine
     slice durations (compute + both DMA directions, the decomposed
     per-device charges) within --tolerance.  The two are computed by
     different decompositions of the same launch logs, so they agree up
     to float association -- 1% is generous;
  5. slices within one track never overlap (each engine is a serial
     resource on the modeled clock).

Usage:
  scripts/validate_trace.py TRACE_service.json [--min-tracks 3]
      [--tolerance 0.01]
"""

import argparse
import json
import sys

DEVICE_PID_BASE = 10
ENGINE_TIDS = (0, 1, 2)  # compute, dma h2d, dma d2h (3 is the rounds track)


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--min-tracks", type=int, default=3,
                        help="minimum device engine tracks required")
    parser.add_argument("--tolerance", type=float, default=0.01,
                        help="relative tolerance for the modeled-us "
                             "accounting check")
    args = parser.parse_args()

    with open(args.trace) as f:
        doc = json.load(f)

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("no traceEvents array")

    # 1. Per-event structural checks.
    for i, ev in enumerate(events):
        for field in ("name", "ph", "pid"):
            if field not in ev:
                fail(f"event {i} missing '{field}': {ev}")
        if ev["ph"] == "X":
            for field in ("tid", "ts", "dur"):
                if not isinstance(ev.get(field), (int, float)):
                    fail(f"X event {i} missing numeric '{field}': {ev}")
            if ev["dur"] < 0:
                fail(f"X event {i} has negative dur: {ev}")
        elif ev["ph"] != "M":
            fail(f"event {i} has unexpected ph '{ev['ph']}' "
                 f"(exporter only emits X and M)")

    # 2. Device engine tracks from thread_name metadata.
    engine_tracks = [
        (ev["pid"], ev["tid"], ev["args"]["name"]) for ev in events
        if ev["ph"] == "M" and ev["name"] == "thread_name"
        and ev["pid"] >= DEVICE_PID_BASE]
    if len(engine_tracks) < args.min_tracks:
        fail(f"only {len(engine_tracks)} device engine tracks, "
             f"need >= {args.min_tracks}: {engine_tracks}")

    # 3. Request and round spans.
    request_spans = [ev for ev in events
                     if ev["ph"] == "X" and ev.get("cat") == "request"]
    round_spans = [ev for ev in events
                   if ev["ph"] == "X" and ev.get("cat") == "round"]
    if not request_spans:
        fail("no request spans (cat 'request')")
    if not round_spans:
        fail("no scheduler round spans (cat 'round')")

    # 4. Modeled-us accounting: request shares vs engine slices.
    request_modeled = sum(ev.get("args", {}).get("modeled_us", 0.0)
                          for ev in request_spans)
    slice_modeled = sum(ev["dur"] for ev in events
                        if ev["ph"] == "X" and ev["pid"] >= DEVICE_PID_BASE
                        and ev["tid"] in ENGINE_TIDS)
    if request_modeled <= 0.0:
        fail("request spans carry no modeled_us args")
    if slice_modeled <= 0.0:
        fail("device engine tracks carry no slices")
    rel = abs(request_modeled - slice_modeled) / max(request_modeled,
                                                     slice_modeled)
    if rel > args.tolerance:
        fail(f"modeled-us mismatch: request spans sum to "
             f"{request_modeled:.3f} us, engine slices to "
             f"{slice_modeled:.3f} us ({100.0 * rel:.2f}% apart, "
             f"tolerance {100.0 * args.tolerance:.2f}%)")

    # 5. Non-overlap within each track.
    tracks = {}
    for ev in events:
        if ev["ph"] == "X":
            tracks.setdefault((ev["pid"], ev["tid"]), []).append(ev)
    eps = 1e-3  # us; slices meet exactly, allow print/parse rounding
    for (pid, tid), evs in tracks.items():
        evs.sort(key=lambda e: (e["ts"], e["ts"] + e["dur"]))
        for a, b in zip(evs, evs[1:]):
            if b["ts"] < a["ts"] + a["dur"] - eps:
                fail(f"track pid={pid} tid={tid}: '{b['name']}' at "
                     f"{b['ts']:.3f} overlaps '{a['name']}' ending at "
                     f"{a['ts'] + a['dur']:.3f}")

    n_x = sum(1 for ev in events if ev["ph"] == "X")
    print(f"trace ok: {n_x} spans/slices, {len(engine_tracks)} device "
          f"engine tracks, {len(request_spans)} request spans, "
          f"{len(round_spans)} round spans; modeled accounting agrees "
          f"to {100.0 * rel:.3f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
