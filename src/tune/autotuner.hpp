#pragma once

/// \file autotuner.hpp
/// Measured launch-geometry autotuning over the modeled clock.
///
/// The paper hand-picked its launch geometry for one device (B = 32 on
/// a Fermi C2050, section 3.3); our pick_block_size heuristic encodes
/// that choice and its widening rule, but a heuristic is still a guess.
/// The Autotuner replaces the guess with a measurement: for a TuneKey
/// (schedule x system structure x batch shape x scalar width x
/// DeviceSpec geometry), it launches every candidate geometry through a
/// scratch device, scores each by MODELED wall-clock -- the
/// deterministic clock the whole repo's perf claims live on, via
/// estimate_log_us / the stream pipeline's AsyncEngineClocks makespan
/// -- and memoizes the winner in a TuneCache.  pick_block_size is
/// demoted to the cache-miss seed: candidate zero is always the
/// heuristic's choice, so the winner is never modeled-slower than the
/// heuristic, and the decision records both scores.
///
/// The probing is a callback (`probe(candidate) -> optional<ProbeOutcome>`)
/// supplied by the evaluator being tuned, which keeps this header free
/// of evaluator types (no include cycle: evaluators include this file).
/// A probe constructs its evaluator with the candidate geometry pinned
/// and `TuningMode::kHeuristic`, so probing can never recurse into the
/// tuner.  Returning nullopt marks the candidate infeasible (e.g. the
/// batch pipeline's kernel-2 shared budget) -- skipped, not scored.
///
/// Ties on the modeled clock are broken by the memory-behaviour
/// profile: a compute-bound kernel prices AoS and SoA identically, and
/// the ProfileReport's global-transaction total is what picks the
/// layout (fewer transactions wins); remaining ties go to the earlier
/// candidate, so decisions are deterministic for a deterministic
/// candidate order.  Tuning changes timing only -- every candidate's
/// results are bitwise identical by the repo's layout/block-size/
/// stream invariants, pinned in tests/test_tune.cpp.

#include <algorithm>
#include <cstddef>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "simt/stats.hpp"
#include "tune/profile_report.hpp"
#include "tune/tune_cache.hpp"
#include "tune/tune_key.hpp"

namespace polyeval::tune {

/// What one candidate probe measured: the modeled score plus the launch
/// log the profile (tie-breaks, decision note, bench dumps) folds.
struct ProbeOutcome {
  double modeled_us = 0.0;
  simt::LaunchLog log;
};

/// Candidate list with the heuristic seed FIRST (candidate zero is the
/// heuristic_us reference the tuned-vs-heuristic gates divide by),
/// followed by the cross product stream_counts x {AoS, SoA} x blocks,
/// deduplicated against the seed and each other.  Order is
/// deterministic, so tuned decisions are too.
[[nodiscard]] std::vector<TuneCandidate> standard_candidates(
    unsigned seed_block, std::span<const unsigned> blocks,
    std::span<const unsigned> stream_counts);

class Autotuner {
 public:
  Autotuner() = default;
  Autotuner(const Autotuner&) = delete;
  Autotuner& operator=(const Autotuner&) = delete;

  /// The process-wide instance every evaluator's `block_size = 0` path
  /// routes through.  Its cache starts cold; load a persisted cache
  /// explicitly (`global().cache().load(path)`) to warm it -- nothing
  /// reads the working directory behind the caller's back.
  [[nodiscard]] static Autotuner& global();

  /// The decision for `key`: the cache hit, or a fresh measurement over
  /// `candidates` via `probe` (see the file comment for the contract).
  /// Throws std::runtime_error when no candidate is feasible.  Holds the
  /// tuner's lock across the probes, so concurrent first-touch of one
  /// key measures once.
  template <class Probe>
  TuneDecision tune(const TuneKey& key, std::span<const TuneCandidate> candidates,
                    Probe&& probe) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const TuneDecision* hit = cache_.find(key)) {
      ++hits_;
      return *hit;
    }
    ++misses_;

    TuneDecision best;
    ProfileReport best_report;
    bool have_best = false;
    double seed_us = 0.0;
    bool have_seed = false;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const std::optional<ProbeOutcome> outcome = probe(candidates[i]);
      if (!outcome.has_value()) continue;  // infeasible geometry
      ProfileReport report = ProfileReport::from_log(outcome->log);
      if (i == 0) {
        seed_us = outcome->modeled_us;
        have_seed = true;
      }
      // Modeled clock first; on an exact tie the profile decides
      // (fewer global transactions), then the earlier candidate.
      const bool wins =
          !have_best || outcome->modeled_us < best.modeled_us ||
          (outcome->modeled_us == best.modeled_us &&
           report.total_transactions() < best_report.total_transactions());
      if (wins) {
        best.choice = candidates[i];
        best.modeled_us = outcome->modeled_us;
        best_report = std::move(report);
        have_best = true;
      }
    }
    if (!have_best)
      throw std::runtime_error("Autotuner: no feasible candidate for key");
    // The heuristic seed is candidate zero by convention; if the caller
    // passed a list without it (or the seed itself was infeasible), the
    // winner doubles as the reference so speedup() stays meaningful.
    best.heuristic_us = have_seed ? seed_us : best.modeled_us;
    best.note = decision_note(best, best_report);

    cache_.insert(key, best);
    decisions_.push_back({key, best, std::move(best_report)});
    return best;
  }

  [[nodiscard]] TuneCache& cache() noexcept { return cache_; }
  [[nodiscard]] const TuneCache& cache() const noexcept { return cache_; }

  /// The memoized winner's modeled wall-clock for `key`, if a decision
  /// exists -- the measurement the heterogeneity-aware schedulers refine
  /// their clock-x-cores weight estimate with.  Never probes and never
  /// bumps the hit/miss counters: a missing entry means "fall back to
  /// the modeled estimate", not "go measure".
  [[nodiscard]] std::optional<double> cached_modeled_us(const TuneKey& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const TuneDecision* hit = cache_.find(key);
    if (hit == nullptr) return std::nullopt;
    return hit->modeled_us;
  }

  /// Cache-hit/miss counters since construction (test introspection).
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

  /// Human-readable dump of every decision measured by THIS instance
  /// (cache hits and loaded entries carry no profile): the key, the
  /// winner, both scores and the winning probe's folded ProfileReport.
  /// bench_autotune writes this as PROFILE_autotune.txt for CI triage.
  [[nodiscard]] std::string profile_dump() const;

  /// Fold the ProfileReports of measured decisions [from, count) into
  /// `registry` and return the new watermark (the decision count).
  /// Passing the previous return value back makes repeated polls --
  /// SolveService::metrics() calls this on every scrape -- additive
  /// without double-counting.
  std::size_t fold_profiles_into(obs::MetricsRegistry& registry,
                                 std::size_t from = 0) const;

 private:
  struct MeasuredDecision {
    TuneKey key;
    TuneDecision decision;
    ProfileReport report;
  };

  [[nodiscard]] static std::string decision_note(const TuneDecision& decision,
                                                 const ProfileReport& report);

  mutable std::mutex mutex_;
  TuneCache cache_;
  std::vector<MeasuredDecision> decisions_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// Measured throughput weights for a fleet of specs: `make_key(spec)`
/// names each device's kernel, and if EVERY spec has a memoized tuning
/// decision the weights are 1 / measured-modeled-us, normalized so the
/// fastest device weighs 1.0 (the same convention as the registry's
/// modeled weights, so callers can swap one vector for the other).
/// Returns nullopt when any spec is still unprobed -- a half-measured
/// fleet would bias placement toward whichever device happened to probe
/// first, so refinement is all-or-nothing.
template <class MakeKey>
[[nodiscard]] std::optional<std::vector<double>> measured_fleet_weights(
    const Autotuner& tuner, std::span<const simt::DeviceSpec> specs,
    MakeKey&& make_key) {
  std::vector<double> weights(specs.size(), 0.0);
  double max_w = 0.0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::optional<double> us = tuner.cached_modeled_us(make_key(specs[i]));
    if (!us.has_value() || !(*us > 0.0)) return std::nullopt;
    weights[i] = 1.0 / *us;
    max_w = std::max(max_w, weights[i]);
  }
  for (double& w : weights) w /= max_w;
  return weights;
}

}  // namespace polyeval::tune
