#include "tune/tune_cache.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "benchutil/json.hpp"

namespace polyeval::tune {

namespace {

/// Minimal JSON reader for the cache file -- the repo's JsonWriter is
/// write-only, and the cache is the one place a bench/test artifact is
/// read back, so a small hand-rolled recursive-descent parser beats a
/// dependency.  Integers are kept exact in a uint64 (structure hashes
/// exceed double's 53-bit mantissa); anything malformed returns nullopt
/// and the whole load is reported not-ok.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::uint64_t integer = 0;  ///< exact value when the number had no '.'/exponent
  bool is_integer = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  [[nodiscard]] bool parse(JsonValue& out) {
    return parse_value(out) && (skip_ws(), pos_ == text_.size());
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  [[nodiscard]] bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case '/': out += '/'; break;
          default: return false;  // \uXXXX etc.: the writer never emits them
        }
      } else {
        out += c;
      }
    }
    return false;
  }
  [[nodiscard]] bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out.kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return parse_number(out);
  }
  [[nodiscard]] bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool fractional = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        fractional = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    try {
      out.kind = JsonValue::Kind::kNumber;
      out.number = std::stod(token);
      out.is_integer = !fractional;
      if (out.is_integer) out.integer = std::stoull(token);
    } catch (const std::exception&) {
      return false;  // malformed or out-of-range literal
    }
    return true;
  }
  [[nodiscard]] bool parse_array(JsonValue& out) {
    if (!consume('[')) return false;
    out.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue element;
      if (!parse_value(element)) return false;
      out.array.push_back(std::move(element));
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
  [[nodiscard]] bool parse_object(JsonValue& out) {
    if (!consume('{')) return false;
    out.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      std::string key;
      skip_ws();
      if (!parse_string(key) || !consume(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

constexpr std::string_view kSchemaName = "polyeval-tune-cache";

[[nodiscard]] bool read_u32(const JsonValue& obj, std::string_view key, unsigned& out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber || !v->is_integer)
    return false;
  out = static_cast<unsigned>(v->integer);
  return true;
}
[[nodiscard]] bool read_u64(const JsonValue& obj, std::string_view key,
                            std::uint64_t& out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber || !v->is_integer)
    return false;
  out = v->integer;
  return true;
}
[[nodiscard]] bool read_f64(const JsonValue& obj, std::string_view key, double& out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return false;
  out = v->number;
  return true;
}

}  // namespace

const TuneDecision* TuneCache::find(const TuneKey& key) const {
  const auto it = entries_.find(key.structure_hash());
  if (it == entries_.end() || !(it->second.key == key)) return nullptr;
  return &it->second.decision;
}

void TuneCache::insert(const TuneKey& key, const TuneDecision& decision) {
  entries_[key.structure_hash()] = Entry{key, decision};
}

std::vector<std::pair<TuneKey, TuneDecision>> TuneCache::sorted_entries() const {
  std::vector<std::pair<TuneKey, TuneDecision>> out;
  out.reserve(entries_.size());
  for (const auto& [hash, entry] : entries_)
    out.emplace_back(entry.key, entry.decision);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.first.structure_hash() < b.first.structure_hash();
  });
  return out;
}

bool TuneCache::save(const std::string& path) const {
  benchutil::JsonWriter json;
  json.begin_object();
  json.field("schema", kSchemaName);
  json.key("entries");
  json.begin_array();
  for (const auto& [key, decision] : sorted_entries()) {
    json.begin_object()
        .field("hash", key.structure_hash())
        .field("schedule", static_cast<unsigned>(key.schedule))
        .field("n", key.n)
        .field("m", key.m)
        .field("k", key.k)
        .field("d", key.d)
        .field("batch", key.batch)
        .field("chunk", key.chunk)
        .field("scalar_width", key.scalar_width)
        .field("multiprocessors", key.multiprocessors)
        .field("cores_per_sm", key.cores_per_sm)
        .field("core_clock_mhz", key.core_clock_mhz)
        .field("warp_size", key.warp_size)
        .field("max_threads_per_block", key.max_threads_per_block)
        .field("max_blocks_per_sm", key.max_blocks_per_sm)
        .field("max_threads_per_sm", key.max_threads_per_sm)
        .field("shared_memory_per_block", key.shared_memory_per_block)
        .field("shared_banks", key.shared_banks)
        .field("global_transaction_bytes", key.global_transaction_bytes)
        .field("block_size", decision.choice.block_size)
        .field("interchange",
               decision.choice.interchange == core::InterchangeLayout::kSoA
                   ? "soa"
                   : "aos")
        .field("streams", decision.choice.streams)
        .field("modeled_us", decision.modeled_us)
        .field("heuristic_us", decision.heuristic_us)
        .field("note", decision.note)
        .end_object();
  }
  json.end_array();
  json.end_object();
  return json.write_file(path);
}

TuneCache::LoadResult TuneCache::load(const std::string& path) {
  LoadResult result;
  std::ifstream in(path);
  if (!in) return result;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  JsonValue root;
  JsonParser parser(text);
  if (!parser.parse(root) || root.kind != JsonValue::Kind::kObject) return result;
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->string != kSchemaName)
    return result;
  const JsonValue* entries = root.find("entries");
  if (entries == nullptr || entries->kind != JsonValue::Kind::kArray) return result;
  result.ok = true;

  for (const JsonValue& e : entries->array) {
    if (e.kind != JsonValue::Kind::kObject) {
      ++result.rejected;
      continue;
    }
    TuneKey key;
    TuneDecision decision;
    std::uint64_t stored_hash = 0;
    unsigned schedule = 0;
    std::string interchange;
    const JsonValue* layout = e.find("interchange");
    const JsonValue* note = e.find("note");
    const bool fields_ok =
        read_u64(e, "hash", stored_hash) && read_u32(e, "schedule", schedule) &&
        read_u32(e, "n", key.n) && read_u32(e, "m", key.m) &&
        read_u32(e, "k", key.k) && read_u32(e, "d", key.d) &&
        read_u32(e, "batch", key.batch) && read_u32(e, "chunk", key.chunk) &&
        read_u32(e, "scalar_width", key.scalar_width) &&
        read_u32(e, "multiprocessors", key.multiprocessors) &&
        read_u32(e, "cores_per_sm", key.cores_per_sm) &&
        read_f64(e, "core_clock_mhz", key.core_clock_mhz) &&
        read_u32(e, "warp_size", key.warp_size) &&
        read_u32(e, "max_threads_per_block", key.max_threads_per_block) &&
        read_u32(e, "max_blocks_per_sm", key.max_blocks_per_sm) &&
        read_u32(e, "max_threads_per_sm", key.max_threads_per_sm) &&
        read_u64(e, "shared_memory_per_block", key.shared_memory_per_block) &&
        read_u32(e, "shared_banks", key.shared_banks) &&
        read_u32(e, "global_transaction_bytes", key.global_transaction_bytes) &&
        read_u32(e, "block_size", decision.choice.block_size) &&
        read_u32(e, "streams", decision.choice.streams) &&
        read_f64(e, "modeled_us", decision.modeled_us) &&
        read_f64(e, "heuristic_us", decision.heuristic_us) &&
        layout != nullptr && layout->kind == JsonValue::Kind::kString &&
        (layout->string == "aos" || layout->string == "soa");
    if (!fields_ok || schedule > static_cast<unsigned>(TunedSchedule::kPipelined)) {
      ++result.rejected;
      continue;
    }
    key.schedule = static_cast<TunedSchedule>(schedule);
    decision.choice.interchange = layout->string == "soa"
                                      ? core::InterchangeLayout::kSoA
                                      : core::InterchangeLayout::kAoS;
    if (note != nullptr && note->kind == JsonValue::Kind::kString)
      decision.note = note->string;

    // The staleness gate: a hash computed under another schema version
    // (or a hand-edited key) cannot reproduce, so the entry is dropped
    // and its key re-measures on next use.
    if (key.structure_hash() != stored_hash) {
      ++result.rejected;
      continue;
    }
    // In-memory decisions win: never shadow a measurement made this
    // process with a file entry.
    if (entries_.find(stored_hash) == entries_.end())
      entries_[stored_hash] = Entry{key, decision};
    ++result.accepted;
  }
  return result;
}

}  // namespace polyeval::tune
