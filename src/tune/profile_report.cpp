#include "tune/profile_report.hpp"

#include <algorithm>
#include <sstream>

namespace polyeval::tune {

namespace {

void append_ratio(std::ostringstream& out, const char* label, double value) {
  out << label;
  const double rounded = static_cast<double>(static_cast<long long>(value * 100.0 + 0.5)) / 100.0;
  out << rounded;
}

}  // namespace

std::string KernelProfile::diagnosis() const {
  // Thresholds: a coalesced warp request of 16-byte complex doubles
  // needs 4 segments at worst alignment, so > 1.5x the minimum shows as
  // > 1.5 here only after normalization by requests -- we diagnose on
  // the raw per-request count with 2.0 as "scattered" (twice the
  // single-segment ideal) and 1.5x on bank serialization.
  std::ostringstream out;
  bool flagged = false;
  if (load_transactions_per_request() > 2.0) {
    append_ratio(out, "scattered loads (", load_transactions_per_request());
    out << " tx/request)";
    flagged = true;
  }
  if (store_transactions_per_request() > 2.0) {
    if (flagged) out << "; ";
    append_ratio(out, "scattered stores (", store_transactions_per_request());
    out << " tx/request)";
    flagged = true;
  }
  if (shared_serialization() > 1.5) {
    if (flagged) out << "; ";
    append_ratio(out, "shared accesses serialize ", shared_serialization());
    out << "-way on banks";
    flagged = true;
  }
  if (inactive_lanes_per_thread() > 1.0) {
    if (flagged) out << "; ";
    append_ratio(out, "surplus lanes idle (", inactive_lanes_per_thread());
    out << " inactive phases/thread)";
    flagged = true;
  }
  if (waves_max > 1) {
    if (flagged) out << "; ";
    out << waves_max << " waves";
    flagged = true;
  }
  if (!flagged) out << "coalesced, conflict-free, single wave";
  return out.str();
}

ProfileReport ProfileReport::from_log(const simt::LaunchLog& log) {
  ProfileReport report;
  for (const auto& k : log.kernels) {
    auto it = std::find_if(report.kernels.begin(), report.kernels.end(),
                           [&](const KernelProfile& p) { return p.kernel == k.kernel; });
    if (it == report.kernels.end()) {
      report.kernels.push_back(KernelProfile{});
      it = report.kernels.end() - 1;
      it->kernel = k.kernel;
    }
    ++it->launches;
    it->load_requests += k.global_load_requests;
    it->load_transactions += k.global_load_transactions;
    it->store_requests += k.global_store_requests;
    it->store_transactions += k.global_store_transactions;
    it->shared_requests += k.shared_requests;
    it->shared_cycles += k.shared_cycles;
    it->inactive_lane_phases += k.inactive_lane_phases;
    it->threads += k.threads;
    it->waves_max = std::max<std::uint64_t>(it->waves_max, k.waves);
    it->warps_on_busiest_sm_max =
        std::max(it->warps_on_busiest_sm_max, k.warps_on_busiest_sm);
  }
  return report;
}

std::uint64_t ProfileReport::total_transactions() const noexcept {
  std::uint64_t total = 0;
  for (const auto& k : kernels)
    total += k.load_transactions + k.store_transactions;
  return total;
}

void ProfileReport::fold_into(obs::MetricsRegistry& registry) const {
  for (const auto& k : kernels) {
    registry
        .counter("polyeval_profile_launches_total", "kernel", k.kernel,
                 "profiled kernel launches folded into the report")
        .inc(k.launches);
    registry
        .counter("polyeval_profile_load_transactions_total", "kernel",
                 k.kernel, "global-memory load transactions, profiled runs")
        .inc(k.load_transactions);
    registry
        .counter("polyeval_profile_store_transactions_total", "kernel",
                 k.kernel, "global-memory store transactions, profiled runs")
        .inc(k.store_transactions);
    registry
        .gauge("polyeval_profile_load_tx_per_request", "kernel", k.kernel,
               "load transactions per warp request (1.0 = coalesced)")
        .set(k.load_transactions_per_request());
    registry
        .gauge("polyeval_profile_store_tx_per_request", "kernel", k.kernel,
               "store transactions per warp request (1.0 = coalesced)")
        .set(k.store_transactions_per_request());
    registry
        .gauge("polyeval_profile_shared_serialization", "kernel", k.kernel,
               "shared-memory cycles per request (1.0 = conflict-free)")
        .set(k.shared_serialization());
  }
}

std::string ProfileReport::summary() const {
  std::ostringstream out;
  for (const auto& k : kernels) {
    out << k.kernel << " (" << k.launches << " launch"
        << (k.launches == 1 ? "" : "es") << ")\n"
        << "  loads:  " << k.load_requests << " requests, " << k.load_transactions
        << " transactions (" << k.load_transactions_per_request() << " tx/req)\n"
        << "  stores: " << k.store_requests << " requests, " << k.store_transactions
        << " transactions (" << k.store_transactions_per_request() << " tx/req)\n"
        << "  shared: " << k.shared_requests << " requests, " << k.shared_cycles
        << " cycles (x" << k.shared_serialization() << " serialization)\n"
        << "  occupancy: " << k.waves_max << " wave(s) max, "
        << k.warps_on_busiest_sm_max << " warps on busiest SM, "
        << k.inactive_lanes_per_thread() << " inactive phases/thread\n"
        << "  diagnosis: " << k.diagnosis() << "\n";
  }
  return out.str();
}

}  // namespace polyeval::tune
