#pragma once

/// \file profile_report.hpp
/// Memory-behaviour profiling layer over the simulator's per-launch
/// KernelStats -- the cacheSight-style fold: instead of leaving the
/// counters in the launch log for a human to eyeball, fold every launch
/// of a run into one per-kernel record and distil the counters into
/// access-pattern diagnoses ("loads cost 4.0 transactions/request",
/// "shared accesses serialize 3.1-way on banks").  The autotuner
/// (autotuner.hpp) consumes these reports to break modeled-time ties --
/// on a compute-bound kernel AoS and SoA interchange cost the same
/// modeled wall-clock, and the report's transaction counts are what
/// decide the layout -- and the benches dump them human-readable
/// (PROFILE_autotune.txt) for perf triage.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "simt/stats.hpp"

namespace polyeval::tune {

/// One kernel's behaviour folded across every launch of a run.
struct KernelProfile {
  std::string kernel;
  std::uint64_t launches = 0;

  // Summed across launches.
  std::uint64_t load_requests = 0, load_transactions = 0;
  std::uint64_t store_requests = 0, store_transactions = 0;
  std::uint64_t shared_requests = 0, shared_cycles = 0;
  std::uint64_t inactive_lane_phases = 0;
  std::uint64_t threads = 0;

  // Worst case across launches (occupancy shape, not volume).
  std::uint64_t waves_max = 0;
  std::uint64_t warps_on_busiest_sm_max = 0;

  /// Transactions per warp-level load request; 1.0 is perfectly
  /// coalesced, warp_size/elements-per-segment is fully scattered.
  [[nodiscard]] double load_transactions_per_request() const noexcept {
    return load_requests == 0
               ? 0.0
               : static_cast<double>(load_transactions) /
                     static_cast<double>(load_requests);
  }
  [[nodiscard]] double store_transactions_per_request() const noexcept {
    return store_requests == 0
               ? 0.0
               : static_cast<double>(store_transactions) /
                     static_cast<double>(store_requests);
  }
  /// Shared-memory cycles per request; 1.0 is conflict-free, N means
  /// requests serialize N-way on the banks.
  [[nodiscard]] double shared_serialization() const noexcept {
    return shared_requests == 0
               ? 1.0
               : static_cast<double>(shared_cycles) /
                     static_cast<double>(shared_requests);
  }
  /// Lane-phases spent inactive per thread (SIMT divergence /
  /// surplus-lane pressure; > 1 means lanes routinely idle whole phases).
  [[nodiscard]] double inactive_lanes_per_thread() const noexcept {
    return threads == 0 ? 0.0
                        : static_cast<double>(inactive_lane_phases) /
                              static_cast<double>(threads);
  }

  /// One-line access-pattern diagnosis distilled from the ratios --
  /// the report's human face, and the text the autotuner stores in its
  /// decision notes.
  [[nodiscard]] std::string diagnosis() const;
};

/// A whole run's profile: one KernelProfile per distinct kernel name,
/// in first-launch order.
struct ProfileReport {
  std::vector<KernelProfile> kernels;

  /// Fold every launch of `log` into per-kernel records.
  [[nodiscard]] static ProfileReport from_log(const simt::LaunchLog& log);

  /// Total global-memory transactions across every kernel -- the
  /// autotuner's modeled-time tie-breaker (fewer transactions wins when
  /// the clock cannot tell candidates apart).
  [[nodiscard]] std::uint64_t total_transactions() const noexcept;

  /// Human-readable dump: one block per kernel with the folded counters
  /// and the diagnosis line.
  [[nodiscard]] std::string summary() const;

  /// Fold this report into a metrics registry so profiled memory
  /// behaviour lands on the same exposition page as the solve-lifecycle
  /// counters: per-kernel launch/transaction counters
  /// (polyeval_profile_*_total{kernel=...}) and per-request ratio
  /// gauges (polyeval_profile_load_tx_per_request etc.).  Additive for
  /// the counters, last-write-wins for the ratio gauges; call once per
  /// profiled run.
  void fold_into(obs::MetricsRegistry& registry) const;
};

}  // namespace polyeval::tune
