#pragma once

/// \file tune_key.hpp
/// Cache key and decision record of the measured autotuner.
///
/// A TuneKey names everything that changes which launch geometry wins
/// OR what the memoized measurement reads: the evaluator schedule
/// (fused one-block-per-point, the three-kernel batch grid, or the
/// stream-pipelined micro-chunk walk), the system structure
/// (n, m, k, d) -- NOT its coefficients, which cannot move a memory
/// access -- the batch/chunk shape the grid is built from, the scalar
/// width (wider software arithmetic changes both the bytes per element
/// and the issue-cycle balance of the timing model), and the FULL
/// compute identity of the owning DeviceSpec: geometry (SM count,
/// cores per SM, residency limits, shared capacity, warp and segment
/// sizes) AND the shader clock.  The clock cannot change which
/// candidate wins (it scales every candidate equally), but the cached
/// decision's `modeled_us` scales with it -- and the heterogeneous
/// fleet weights divide by exactly that number -- so a half-clock
/// derate of the same geometry must NOT alias the full-clock entry.
/// Two evaluators with equal keys launch statistically identical
/// kernels at the same modeled speed, so one measured decision serves
/// both; anything that would change the statistics or the measurement
/// is IN the key.
///
/// structure_hash() folds the key and a schema version into an FNV-1a
/// hash.  Persisted cache entries carry the hash next to the fields it
/// was computed from; a loader recomputes it and rejects entries whose
/// stored hash no longer matches -- stale files from an older schema
/// (or hand-edited keys) silently fall back to a fresh measurement
/// instead of replaying a decision made for different code.

#include <bit>
#include <cstdint>
#include <string>

#include "core/layout.hpp"
#include "simt/device_spec.hpp"

namespace polyeval::tune {

/// How an evaluator resolves `block_size = 0` (and the other auto
/// geometry knobs).  Results are bitwise identical under either mode --
/// tuning may change timing, never values (pinned in test_tune.cpp).
enum class TuningMode {
  /// Measure candidate geometries through the modeled clock and take
  /// the cached winner (the default).
  kMeasured,
  /// The pre-autotuner escape hatch: pick_block_size (or the paper's
  /// fixed warp block), AoS interchange, two streams.
  kHeuristic,
};

/// Which launch schedule a key describes (part of the key: the same
/// structure wins different geometry under different schedules).
enum class TunedSchedule : unsigned {
  kFused = 0,      ///< FusedGpuEvaluator: grid = batch, one block per point
  kBatch = 1,      ///< BatchGpuEvaluator: three kernels, monomial-strided grid
  kPipelined = 2,  ///< PipelinedFusedEvaluator: micro-chunked stream pipeline
};

/// Bump when the key fields, the candidate set, or the scoring model
/// change shape: every persisted hash goes stale at once and the cache
/// re-measures instead of replaying outdated winners.
inline constexpr std::uint64_t kTuneSchemaVersion = 2;

struct TuneKey {
  TunedSchedule schedule = TunedSchedule::kFused;
  // System structure (poly::UniformStructure fields).
  unsigned n = 0, m = 0, k = 0, d = 0;
  // Launch shape: points per launch; chunk is the pipelined micro-chunk
  // (0 for the single-launch schedules).
  unsigned batch = 0;
  unsigned chunk = 0;
  /// Hardware doubles per real scalar: 1 double, 2 double-double,
  /// 4 quad-double.
  unsigned scalar_width = 1;
  // DeviceSpec compute identity (everything the statistics, the
  // feasibility, or the memoized modeled_us of a candidate can depend
  // on).
  unsigned multiprocessors = 0;
  unsigned cores_per_sm = 0;
  double core_clock_mhz = 0.0;
  unsigned warp_size = 0;
  unsigned max_threads_per_block = 0;
  unsigned max_blocks_per_sm = 0;
  unsigned max_threads_per_sm = 0;
  std::uint64_t shared_memory_per_block = 0;
  unsigned shared_banks = 0;
  unsigned global_transaction_bytes = 0;

  friend bool operator==(const TuneKey&, const TuneKey&) = default;

  /// FNV-1a over the schema version and every key field, in declaration
  /// order.  Deterministic across platforms and runs.
  [[nodiscard]] std::uint64_t structure_hash() const noexcept {
    std::uint64_t h = 14695981039346656037ull;
    const auto mix = [&h](std::uint64_t v) {
      for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (8 * byte)) & 0xFFu;
        h *= 1099511628211ull;
      }
    };
    mix(kTuneSchemaVersion);
    mix(static_cast<std::uint64_t>(schedule));
    mix(n); mix(m); mix(k); mix(d);
    mix(batch); mix(chunk); mix(scalar_width);
    mix(multiprocessors); mix(cores_per_sm);
    mix(std::bit_cast<std::uint64_t>(core_clock_mhz));
    mix(warp_size); mix(max_threads_per_block);
    mix(max_blocks_per_sm); mix(max_threads_per_sm);
    mix(shared_memory_per_block); mix(shared_banks);
    mix(global_transaction_bytes);
    return h;
  }

  /// Key for `system structure s` launched with `batch` points on
  /// `spec` -- the shared builder every evaluator routes through.
  [[nodiscard]] static TuneKey make(TunedSchedule schedule,
                                    const poly::UniformStructure& s, unsigned batch,
                                    unsigned chunk, unsigned scalar_width,
                                    const simt::DeviceSpec& spec) noexcept {
    TuneKey key;
    key.schedule = schedule;
    key.n = s.n; key.m = s.m; key.k = s.k; key.d = s.d;
    key.batch = batch;
    key.chunk = chunk;
    key.scalar_width = scalar_width;
    key.multiprocessors = spec.multiprocessors;
    key.cores_per_sm = spec.cores_per_sm;
    key.core_clock_mhz = spec.core_clock_mhz;
    key.warp_size = spec.warp_size;
    key.max_threads_per_block = spec.max_threads_per_block;
    key.max_blocks_per_sm = spec.max_blocks_per_sm;
    key.max_threads_per_sm = spec.max_threads_per_sm;
    key.shared_memory_per_block = spec.shared_memory_per_block;
    key.shared_banks = spec.shared_banks;
    key.global_transaction_bytes = spec.global_transaction_bytes;
    return key;
  }
};

/// One launch-geometry candidate: the knobs a probe run varies.
struct TuneCandidate {
  unsigned block_size = 32;
  core::InterchangeLayout interchange = core::InterchangeLayout::kAoS;
  /// Pipelined schedule only: 2 (shared copy stream) or 3 (one stream
  /// per DMA direction).  Ignored by the single-launch schedules.
  unsigned streams = 2;

  friend bool operator==(const TuneCandidate&, const TuneCandidate&) = default;
};

/// A memoized winner: the chosen geometry plus the measurements that
/// chose it (the heuristic seed's score rides along so tuned-vs-seed
/// ratios never need a re-measurement).
struct TuneDecision {
  TuneCandidate choice;
  double modeled_us = 0.0;    ///< winner's modeled wall-clock
  double heuristic_us = 0.0;  ///< the heuristic seed candidate's score
  /// One-line memory-behaviour justification distilled from the
  /// winning probe's ProfileReport (human-readable dumps only).
  std::string note;

  /// Modeled speedup of the winner over the heuristic seed; >= 1.0 by
  /// construction (the seed is always candidate zero).
  [[nodiscard]] double speedup() const noexcept {
    return modeled_us > 0.0 ? heuristic_us / modeled_us : 1.0;
  }
};

}  // namespace polyeval::tune
