#include "tune/autotuner.hpp"

#include <algorithm>
#include <sstream>

namespace polyeval::tune {

Autotuner& Autotuner::global() {
  static Autotuner instance;
  return instance;
}

std::vector<TuneCandidate> standard_candidates(unsigned seed_block,
                                               std::span<const unsigned> blocks,
                                               std::span<const unsigned> stream_counts) {
  std::vector<TuneCandidate> out;
  const unsigned first_streams = stream_counts.empty() ? 2 : stream_counts.front();

  TuneCandidate seed;
  seed.block_size = seed_block;
  seed.interchange = core::InterchangeLayout::kAoS;
  seed.streams = first_streams;
  out.push_back(seed);

  const auto push_unique = [&out](const TuneCandidate& cand) {
    if (std::find(out.begin(), out.end(), cand) == out.end()) out.push_back(cand);
  };
  for (const unsigned streams :
       stream_counts.empty() ? std::span<const unsigned>(&first_streams, 1)
                             : stream_counts)
    for (const auto layout :
         {core::InterchangeLayout::kAoS, core::InterchangeLayout::kSoA})
      for (const unsigned block : blocks) {
        TuneCandidate cand;
        cand.block_size = block;
        cand.interchange = layout;
        cand.streams = streams;
        push_unique(cand);
      }
  return out;
}

std::string Autotuner::decision_note(const TuneDecision& decision,
                                     const ProfileReport& report) {
  std::ostringstream out;
  out << "block " << decision.choice.block_size << ", "
      << (decision.choice.interchange == core::InterchangeLayout::kSoA ? "soa"
                                                                       : "aos")
      << ", " << decision.choice.streams << " streams";
  // The dominant memory-behaviour fact of the winning probe, so the
  // cache file explains its own choices.
  for (const auto& k : report.kernels) {
    out << "; " << k.kernel << ": " << k.diagnosis();
    break;  // the first (primary) kernel carries the headline
  }
  return out.str();
}

std::string Autotuner::profile_dump() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "=== Autotuner decisions (" << decisions_.size() << " measured, " << hits_
      << " cache hits, " << misses_ << " misses) ===\n\n";
  for (const auto& d : decisions_) {
    out << "key: schedule " << static_cast<unsigned>(d.key.schedule) << ", n "
        << d.key.n << ", m " << d.key.m << ", k " << d.key.k << ", d " << d.key.d
        << ", batch " << d.key.batch << ", chunk " << d.key.chunk
        << ", scalar width " << d.key.scalar_width << ", " << d.key.multiprocessors
        << " SMs (hash " << d.key.structure_hash() << ")\n"
        << "  choice: " << d.decision.note << "\n"
        << "  modeled " << d.decision.modeled_us << " us vs heuristic "
        << d.decision.heuristic_us << " us (x" << d.decision.speedup() << ")\n"
        << "  winning probe profile:\n";
    std::istringstream profile(d.report.summary());
    for (std::string line; std::getline(profile, line);)
      out << "    " << line << "\n";
    out << "\n";
  }
  return out.str();
}

std::size_t Autotuner::fold_profiles_into(obs::MetricsRegistry& registry,
                                          std::size_t from) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = std::min(from, decisions_.size());
       i < decisions_.size(); ++i)
    decisions_[i].report.fold_into(registry);
  return decisions_.size();
}

}  // namespace polyeval::tune
