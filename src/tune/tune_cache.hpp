#pragma once

/// \file tune_cache.hpp
/// Memoization store of the autotuner: TuneKey -> TuneDecision, in
/// memory, with JSON persistence (the committed copy lives under
/// bench/tune/, see its README).
///
/// Staleness contract: every persisted entry carries the FNV-1a
/// structure hash (tune_key.hpp) next to the key fields it was computed
/// from.  load() re-derives the hash from the parsed fields and REJECTS
/// any entry whose stored hash disagrees -- which is every entry written
/// under an older kTuneSchemaVersion (the version salts the hash) and
/// every hand-edited key.  Rejected entries are counted, not errors:
/// the autotuner simply re-measures, so a stale cache degrades to a
/// cold one, never to wrong geometry.
///
/// Determinism: save() writes entries sorted by structure hash with
/// fixed float formatting, so two caches holding the same decisions
/// serialize byte-identically -- the reproducibility half of the
/// "same key, same winner across two cold runs" acceptance bar.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "tune/tune_key.hpp"

namespace polyeval::tune {

class TuneCache {
 public:
  /// The memoized decision for `key`, or nullptr on a miss.  The
  /// pointer stays valid until the next insert/clear/load.
  [[nodiscard]] const TuneDecision* find(const TuneKey& key) const;

  /// Memoize (or overwrite) the decision for `key`.
  void insert(const TuneKey& key, const TuneDecision& decision);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Serialize every entry to `path` (JSON, hash-sorted, deterministic
  /// bytes).  Returns false on I/O failure.
  bool save(const std::string& path) const;

  struct LoadResult {
    bool ok = false;             ///< file existed and parsed as a tune cache
    std::size_t accepted = 0;    ///< entries whose recomputed hash matched
    std::size_t rejected = 0;    ///< stale / tampered entries dropped
  };

  /// Merge `path` into the cache, rejecting stale entries (see the file
  /// comment).  Existing in-memory entries win over loaded ones: a
  /// decision measured this process is never shadowed by a file.
  LoadResult load(const std::string& path);

  /// Hash-sorted snapshot of the entries (the save order), for dumps.
  [[nodiscard]] std::vector<std::pair<TuneKey, TuneDecision>> sorted_entries() const;

 private:
  struct Entry {
    TuneKey key;
    TuneDecision decision;
  };
  /// Keyed by structure hash; equality of the full key is re-checked on
  /// find so a (vanishingly unlikely) hash collision reads as a miss
  /// rather than the wrong geometry.
  std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace polyeval::tune
