#pragma once

/// \file encoding.hpp
/// Constant-memory encodings of the Positions/Exponents arrays.
///
/// kChar is the paper's preliminary implementation: one unsigned char per
/// position and per exponent, 2*M*k bytes, which caps the experiments at
/// 1536 monomials (2048 no longer fit, section 4).  kPacked4Bit is the
/// "more compact encoding" the paper announces as future work: exponents
/// of at most 16 are packed two per byte, cutting the footprint to
/// 1.5*M*k bytes at the price of decode arithmetic in the kernels.

#include <cstdint>
#include <vector>

#include "core/layout.hpp"

namespace polyeval::core {

enum class ExponentEncoding {
  kChar,       ///< paper's encoding: 8-bit exponent-minus-one (d <= 256)
  kPacked4Bit  ///< future-work encoding: 4-bit exponent-minus-one (d <= 16)
};

/// Bytes of constant memory the encoding needs for M monomials with k
/// variables each (positions + exponents).
[[nodiscard]] std::uint64_t constant_bytes_required(ExponentEncoding enc,
                                                    std::uint64_t total_monomials,
                                                    unsigned k);

/// Largest monomial count M that fits a given constant-memory budget.
[[nodiscard]] std::uint64_t max_monomials_for_budget(ExponentEncoding enc,
                                                     std::uint64_t budget_bytes,
                                                     unsigned k);

/// Encode the exponents array (entries are exponent-minus-one).
/// For kChar this is the identity; for kPacked4Bit two entries share a
/// byte (low nibble first).  Throws std::invalid_argument if an exponent
/// exceeds the encoding's range.
[[nodiscard]] std::vector<unsigned char> encode_exponents(
    ExponentEncoding enc, const std::vector<unsigned char>& exponents_minus_one);

/// Decode one exponent-minus-one from an encoded array.  Device kernels
/// use the same arithmetic on constant-buffer bytes.
[[nodiscard]] inline unsigned decode_exponent(ExponentEncoding enc,
                                              const unsigned char* data,
                                              std::uint64_t index) noexcept {
  if (enc == ExponentEncoding::kChar) return data[index];
  const unsigned char byte = data[index / 2];
  return (index % 2 == 0) ? (byte & 0x0Fu) : (byte >> 4);
}

/// Number of bytes the encoded exponent array occupies.
[[nodiscard]] std::uint64_t encoded_exponent_bytes(ExponentEncoding enc,
                                                   std::uint64_t entries);

}  // namespace polyeval::core
