#pragma once

/// \file sharded_evaluator.hpp
/// Multi-device sharded evaluation: the manager/worker layout the
/// paper's lineage runs across accelerators (Verschelde & Yu's
/// GPU-accelerated Newton, the MPI path trackers it cites), in-process.
///
/// A batch of points is split into contiguous chunks of
/// `Options::chunk_points`.  A manager pool with exactly one
/// participant per shard claims chunks and evaluates them on the
/// participant's own `simt::Device` -- each with its own host worker
/// pool, memory spaces and persistent BlockScratch arenas -- through a
/// per-shard backend evaluator (`FusedGpuEvaluator` by default,
/// `BatchGpuEvaluator` for the three-kernel ablation).  Two schedules:
///
///   * kWorkStealing (default): chunks are claimed from a shared cursor,
///     so a shard that finishes early simply claims more -- the
///     manager/worker dynamic balance of the MPI implementations.  On a
///     heterogeneous fleet the cursor is weight-aware: shard s claims
///     round(weight_s / weight_min) chunks per pull (clamped to [1, 8]),
///     so a 2x-faster card claims two chunks for every one the slow
///     card takes instead of meeting it claim-for-claim.
///   * kStatic: chunk c goes to shard c % shards -- deterministic
///     placement for reproducible per-device logs (scaling benches).
///   * kWeightedStatic: contiguous chunk quotas proportional to each
///     shard's throughput weight (weighted_split), fully deterministic
///     -- the static schedule a mixed fleet wants, where a half-speed
///     device is handed half the chunks up front.
///
/// Weights come from the registry's modeled clock x cores, refined to
/// 1 / measured-kernel-us when the global Autotuner holds a decision
/// for every shard's spec (the fused backend's own construction probes
/// put them there, once per DISTINCT spec since TuneKey carries the
/// full device geometry).
///
/// Determinism and parity: chunk ranges map straight onto slices of the
/// caller's result buffer, so merged values/Jacobians land in
/// point-index order no matter which shard computed them; and each
/// point's arithmetic is independent of its chunk and shard, so results
/// are BITWISE identical across shard counts 1/2/4/8, across all three
/// schedules, and across uniform vs. mixed fleets.
///
/// Zero allocation: every shard's backend owns persistent staging and
/// device buffers sized to the chunk capacity, the constructor
/// deterministically pre-warms every shard with a full-capacity launch
/// (so work stealing can never land a chunk on a cold shard mid-flight),
/// device logs are pre-reserved for the worst-case claim pattern, and
/// the manager pool hands out chunks through the same zero-alloc claim
/// cursor `run_kernel` uses -- steady-state evaluate() never touches
/// the allocator.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "core/fused_evaluator.hpp"
#include "core/weighted_schedule.hpp"
#include "simt/device_registry.hpp"
#include "tune/autotuner.hpp"

namespace polyeval::core {

/// How a ShardedEvaluator places chunks on shards.
enum class ShardSchedule {
  kWorkStealing,    ///< shared claim cursor, weight-aware claim quanta
  kStatic,          ///< chunk c -> shard c % shards, reproducible placement
  kWeightedStatic,  ///< contiguous quotas proportional to throughput weight
};

template <prec::RealScalar S, class Backend = FusedGpuEvaluator<S>>
class ShardedEvaluator {
  using C = cplx::Complex<S>;

 public:
  struct Options {
    unsigned shards = 2;
    /// Device pool threads per shard; with the shard's manager thread
    /// participating in its device's drains, each shard occupies
    /// workers_per_shard + 1 host threads while evaluating.
    unsigned workers_per_shard = 1;
    /// Points per work item; also each shard's device batch capacity.
    /// More chunks than shards is what gives the cursor room to steal.
    unsigned chunk_points = 8;
    ShardSchedule schedule = ShardSchedule::kWorkStealing;
    simt::DeviceSpec spec = simt::DeviceSpec::tesla_c2050();
    /// Heterogeneous fleet: when non-empty, one shard per entry (this
    /// overrides `shards` and `spec`).  Mixed specs flow into the
    /// throughput weights the weighted schedules place by; they never
    /// change results (see the parity note above).
    std::vector<simt::DeviceSpec> specs;
    typename Backend::Options backend{};
  };

  ShardedEvaluator(const poly::PolynomialSystem& system, Options options = {})
      : options_(options),
        registry_(fleet_specs(options), options.workers_per_shard) {
    if (options_.chunk_points == 0)
      throw std::invalid_argument("ShardedEvaluator: zero chunk_points");
    options_.shards = registry_.size();
    structure_ = pack_system(system).structure;
    shard_eval_.reserve(registry_.size());
    for (unsigned i = 0; i < registry_.size(); ++i)
      shard_eval_.push_back(std::make_unique<Backend>(
          registry_.device(i), system, options_.chunk_points, options_.backend));
    if (registry_.size() > 1) manager_.emplace(registry_.size() - 1);
    refresh_weights();
    quota_.reserve(registry_.size());
    starts_.reserve(registry_.size() + 1);

    // Deterministic pre-warm: every shard runs two full-capacity
    // launches so the warm-up, not the steady state, pays every
    // allocation -- even on shards a stealing schedule leaves cold for
    // a while.  Two, not one: the first launch discovers the device's
    // collector shape, the second replays it onto every pool
    // participant's scratch (BlockScratch::warm), after which no claim
    // pattern can land a chunk on a cold participant.
    std::vector<std::vector<C>> warm_points(
        options_.chunk_points, std::vector<C>(dimension(), C{}));
    std::vector<poly::EvalResult<S>> warm_results(options_.chunk_points);
    for (unsigned i = 0; i < registry_.size(); ++i) {
      for (int pass = 0; pass < 2; ++pass)
        shard_eval_[i]->evaluate_range(warm_points, 0, warm_points.size(),
                                       std::span<poly::EvalResult<S>>(warm_results));
      registry_.device(i).clear_log();
    }
  }

  [[nodiscard]] unsigned dimension() const noexcept {
    return shard_eval_.front()->dimension();
  }
  [[nodiscard]] unsigned shard_count() const noexcept { return registry_.size(); }
  [[nodiscard]] const Options& options() const noexcept { return options_; }
  [[nodiscard]] simt::DeviceRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] Backend& shard(unsigned i) { return *shard_eval_[i]; }

  /// The throughput weights the weighted schedules place by (fastest
  /// shard == 1.0): measured when available, modeled otherwise.
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }

  /// Re-derive the placement weights: start from the registry's modeled
  /// clock x cores, then -- for the fused backend, whose construction
  /// probes seed the cache -- replace the estimate with 1 / the
  /// autotuner's measured modeled-us when EVERY shard's spec has a
  /// memoized decision.  Weights shape placement only, so refreshing
  /// between evaluates never perturbs results.
  void refresh_weights() {
    weights_ = registry_.weights();
    if (!registry_.heterogeneous()) return;
    if constexpr (std::is_same_v<Backend, FusedGpuEvaluator<S>>) {
      const unsigned width = static_cast<unsigned>(sizeof(S) / sizeof(double));
      std::vector<simt::DeviceSpec> specs;
      specs.reserve(registry_.size());
      for (unsigned i = 0; i < registry_.size(); ++i)
        specs.push_back(registry_.spec(i));
      const auto measured = tune::measured_fleet_weights(
          tune::Autotuner::global(), std::span<const simt::DeviceSpec>(specs),
          [&](const simt::DeviceSpec& spec) {
            return tune::TuneKey::make(tune::TunedSchedule::kFused, structure_,
                                       options_.chunk_points, 0, width, spec);
          });
      if (measured.has_value()) weights_ = *measured;
    }
  }

  /// Evaluate at any number of points, sharded over the devices; results
  /// are merged into `results` in point order.  Unlike the single-device
  /// evaluators there is no batch-capacity ceiling: the chunk cursor
  /// walks batches of any size through the fixed-capacity shards.
  void evaluate(const std::vector<std::vector<C>>& points,
                std::vector<poly::EvalResult<S>>& results) {
    const std::size_t batch = points.size();
    if (batch == 0) throw std::invalid_argument("ShardedEvaluator: empty batch");
    const unsigned n = dimension();
    for (const auto& p : points)
      if (p.size() != n)
        throw std::invalid_argument("ShardedEvaluator: point has wrong dimension");

    const std::size_t chunk = options_.chunk_points;
    const std::size_t chunks = (batch + chunk - 1) / chunk;
    results.resize(batch);
    for (unsigned i = 0; i < registry_.size(); ++i) {
      registry_.device(i).clear_log();
      // Worst case one shard claims every chunk; reserving for it keeps
      // the log's growth off the steady-state path however claims fall.
      // launches_per_batch is per instance: a pipelined backend issues
      // one launch per micro-chunk, not a pipeline-shape constant.
      registry_.device(i).reserve_log(chunks * shard_eval_[i]->launches_per_batch());
    }

    const std::span<poly::EvalResult<S>> out(results);
    const auto run_chunk = [&](unsigned shard, std::size_t c) {
      const std::size_t first = c * chunk;
      const std::size_t count = std::min(chunk, batch - first);
      shard_eval_[shard]->evaluate_range(points, first, count,
                                         out.subspan(first, count));
    };

    const unsigned shards = registry_.size();
    if (!manager_) {
      for (std::size_t c = 0; c < chunks; ++c) run_chunk(0, c);
    } else if (options_.schedule == ShardSchedule::kWorkStealing) {
      if (!registry_.heterogeneous()) {
        // participant ids are unique per executing thread for the job and
        // range over [0, shards), so each backend has one user at a time.
        manager_->parallel_for_ranges(
            chunks, 1, [&](unsigned participant, std::size_t begin, std::size_t end) {
              for (std::size_t c = begin; c < end; ++c) run_chunk(participant, c);
            });
      } else {
        // Weight-aware stealing: shard s's claim quantum is its weight
        // relative to the slowest shard (a 2x-faster card pulls two
        // chunks per claim), clamped to 8 so no quantum outruns the
        // balance the cursor exists to provide.  The pool only maps
        // participants onto shards here; the chunk cursor is ours.
        std::atomic<std::size_t> cursor{0};
        manager_->parallel_for_ranges(
            shards, 1, [&](unsigned, std::size_t begin, std::size_t end) {
              for (std::size_t s = begin; s < end; ++s) {
                const std::size_t quantum = steal_quantum(static_cast<unsigned>(s));
                for (std::size_t base = cursor.fetch_add(quantum); base < chunks;
                     base = cursor.fetch_add(quantum)) {
                  const std::size_t stop = std::min(base + quantum, chunks);
                  for (std::size_t c = base; c < stop; ++c)
                    run_chunk(static_cast<unsigned>(s), c);
                }
              }
            });
      }
    } else if (options_.schedule == ShardSchedule::kWeightedStatic) {
      // Deterministic proportional placement: shard s owns the
      // contiguous chunk range [starts_[s], starts_[s] + quota_[s]).
      // Member scratch keeps the steady state allocation-free.
      weighted_split_into(chunks, std::span<const double>(weights_), {}, quota_);
      starts_.assign(shards + 1, 0);
      for (unsigned s = 0; s < shards; ++s) starts_[s + 1] = starts_[s] + quota_[s];
      manager_->parallel_for_ranges(
          shards, 1, [&](unsigned, std::size_t begin, std::size_t end) {
            for (std::size_t s = begin; s < end; ++s)
              for (std::size_t c = starts_[s]; c < starts_[s + 1]; ++c)
                run_chunk(static_cast<unsigned>(s), c);
          });
    } else {
      // Static schedule: the claimed index IS the shard id; whichever
      // manager thread claims shard s walks s's strided chunk sequence.
      manager_->parallel_for_ranges(
          shards, 1, [&](unsigned, std::size_t begin, std::size_t end) {
            for (std::size_t s = begin; s < end; ++s)
              for (std::size_t c = s; c < chunks; c += shards)
                run_chunk(static_cast<unsigned>(s), c);
          });
    }

    merge_logs();
  }

  /// Merged launch log of the last evaluate() across every shard device
  /// (kernel entries concatenated shard-major, transfers summed).  For
  /// per-device logs -- modeled multi-device scaling wants the max, not
  /// the sum -- read registry().device(i).log() before the next call.
  [[nodiscard]] const simt::LaunchLog& last_log() const noexcept { return last_log_; }

 private:
  [[nodiscard]] static std::vector<simt::DeviceSpec> fleet_specs(
      const Options& options) {
    if (!options.specs.empty()) return options.specs;
    if (options.shards == 0)
      throw std::invalid_argument("ShardedEvaluator: zero shards");
    return std::vector<simt::DeviceSpec>(options.shards, options.spec);
  }

  /// Chunks shard s claims per steal: its weight over the slowest
  /// shard's, rounded, clamped to [1, 8].  Uniform fleets get 1
  /// everywhere -- the historical claim-for-claim cursor.
  [[nodiscard]] std::size_t steal_quantum(unsigned s) const {
    double w_min = weights_[0];
    for (double w : weights_) w_min = std::min(w_min, w);
    const double ratio = w_min > 0.0 ? weights_[s] / w_min : 1.0;
    const long long q = std::llround(ratio);
    return static_cast<std::size_t>(std::clamp(q, 1ll, 8ll));
  }

  void merge_logs() {
    std::size_t total = 0;
    for (unsigned i = 0; i < registry_.size(); ++i)
      total += registry_.device(i).log().kernels.size();
    last_log_.kernels.clear();
    last_log_.kernels.reserve(total);
    last_log_.transfers = {};
    for (unsigned i = 0; i < registry_.size(); ++i) {
      const auto& log = registry_.device(i).log();
      last_log_.kernels.insert(last_log_.kernels.end(), log.kernels.begin(),
                               log.kernels.end());
      last_log_.transfers.bytes_to_device += log.transfers.bytes_to_device;
      last_log_.transfers.bytes_from_device += log.transfers.bytes_from_device;
      last_log_.transfers.transfers_to_device += log.transfers.transfers_to_device;
      last_log_.transfers.transfers_from_device += log.transfers.transfers_from_device;
    }
  }

  Options options_;
  simt::DeviceRegistry registry_;
  poly::UniformStructure structure_;
  std::vector<double> weights_;  ///< placement weights, fastest == 1.0
  std::vector<std::unique_ptr<Backend>> shard_eval_;
  std::optional<simt::ThreadPool> manager_;  ///< shards - 1 workers + caller
  simt::LaunchLog last_log_;
  std::vector<std::size_t> quota_, starts_;  ///< kWeightedStatic scratch
};

}  // namespace polyeval::core
