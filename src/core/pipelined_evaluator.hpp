#pragma once

/// \file pipelined_evaluator.hpp
/// Double-buffered, stream-pipelined fused evaluation.
///
/// The paper's pipeline pays one PCIe round trip per batch; its
/// follow-ons (Verschelde & Yu's GPU Newton in dd/qd arithmetic,
/// Chen's GPU path tracker) hide that latency behind kernel execution
/// with streams.  This evaluator is that schedule on the simulator's
/// stream/event subsystem (simt/stream.hpp): a batch is split into
/// micro-chunks of `Options::micro_chunk` points and walked through a
/// two-buffer software pipeline on two (or three) streams
///
///     copy stream:    up(0) up(1) dn(0) up(2) dn(1) ... dn(last)
///     compute stream:   k(0)  k(1)  k(2) ...
///
/// so upload(i+1) and download(i-1) ride the DMA engines while
/// compute(i) owns the compute engine.  With `Options::streams == 3`
/// the downloads move to a stream of their own
///
///     up stream:      up(0) up(1) up(2) ...
///     compute stream:   k(0)  k(1)  k(2) ...
///     down stream:        dn(0)  dn(1)  ...
///
/// so dn(c-1) no longer queues behind up(c) on a shared FIFO: each
/// download starts at max(d2h engine free, its kernel done), which on
/// transfer-bound shapes is strictly earlier.  The engines are the same
/// either way (one DMA engine per direction); only the per-stream
/// ordering constraint is relaxed, so results stay bitwise identical.
/// Cross-stream ordering is by
/// events only: compute(i) waits upload(i); upload(i+2) waits
/// compute(i) (X slot reuse); compute(i+2) waits download(i) (output
/// slot reuse) -- the classic double-buffer hazard set.
///
/// The system state (constant tables, folded coefficients, Mons
/// scratch) is the shared detail::FusedSystemState; only the X and
/// Outputs buffers are doubled, with one fused kernel bound to each
/// slot.  Every point's arithmetic is the fused kernel's, unchanged, so
/// results are BITWISE identical to FusedGpuEvaluator (and to the
/// synchronous sharded path) for every scalar type, chunk size and
/// shard count -- the streams reorder *modeled time*, never data.
///
/// Two clocks, as everywhere in this repo: on the HOST wall clock the
/// simulator executes stream commands eagerly, so this evaluator costs
/// what the synchronous micro-chunked path costs (plus timeline
/// bookkeeping); the MODELED device clock is where the overlap shows,
/// and `modeled_pipelined_us()` vs `modeled_synchronous_us()` quantify
/// it (bench_pipeline gates the ratio).
///
/// Zero allocation: staging, device buffers, kernels, streams and
/// events are built in the constructor; steady-state evaluate() touches
/// only pre-sized storage.  The device launch log still grows by one
/// entry per micro-chunk (clear it periodically, as with every
/// evaluator); stream logs/timelines are reset (capacity kept) every
/// call.

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/fused_evaluator.hpp"
#include "simt/stream.hpp"

namespace polyeval::core {

template <prec::RealScalar S>
class PipelinedFusedEvaluator {
  using C = cplx::Complex<S>;

 public:
  struct Options {
    /// Threads per block; 0 = auto: measured tuning, or the
    /// pick_block_size(n, m, k, micro_chunk) seed in kHeuristic mode --
    /// the grid of one launch is the micro-chunk, so under-full grids
    /// widen automatically.
    unsigned block_size = 0;
    /// Points per pipeline stage (upload/compute/download unit); the
    /// batch capacity is walked in ceil(capacity / micro_chunk)
    /// launches.  Clamped to the batch capacity.
    unsigned micro_chunk = 8;
    ExponentEncoding encoding = ExponentEncoding::kChar;
    /// nullopt = auto (tuned, or AoS in kHeuristic mode).
    std::optional<InterchangeLayout> interchange;
    /// Pipeline streams: 2 (shared copy stream) or 3 (dedicated
    /// download stream); 0 = auto (tuned, or 2 in kHeuristic mode).
    /// Bitwise-identical results either way -- only modeled time moves.
    unsigned streams = 0;
    /// Tuned resolution applies only when block_size, interchange and
    /// streams are ALL auto; pinning any one of them pins the others to
    /// their heuristic seeds (a half-pinned key would poison the cache).
    tune::TuningMode tuning = tune::TuningMode::kMeasured;
    bool detect_races = false;
    /// Cost model pricing the modeled stream timeline.
    simt::GpuCostModel cost{};
  };

  PipelinedFusedEvaluator(simt::Device& device, const poly::PolynomialSystem& system,
                          unsigned batch_capacity, Options options = {})
      : device_(device),
        options_(resolve_options(device, system, batch_capacity, options)),
        capacity_(batch_capacity),
        micro_(std::min(options_.micro_chunk, batch_capacity)),
        sys_(device, system, std::max(micro_, 1u), options_.encoding,
             options_.interchange.value_or(InterchangeLayout::kAoS)),
        copy_stream_(device, options_.cost),
        compute_stream_(device, options_.cost),
        down_stream_(device, options_.cost) {
    if (capacity_ == 0)
      throw std::invalid_argument("PipelinedFusedEvaluator: zero batch capacity");
    if (options_.micro_chunk == 0)
      throw std::invalid_argument("PipelinedFusedEvaluator: zero micro_chunk");
    if (options_.streams != 2 && options_.streams != 3)
      throw std::invalid_argument("PipelinedFusedEvaluator: streams must be 0, 2 or 3");
    const auto s = sys_.packed.structure;

    const std::uint64_t outs = sys_.layout.num_outputs();
    for (unsigned b = 0; b < 2; ++b) {
      x_[b] = device_.alloc_global<C>(std::size_t{micro_} * s.n,
                                      b == 0 ? "X[pipe0]" : "X[pipe1]");
      outputs_[b] = device_.alloc_global<C>(std::size_t{micro_} * outs,
                                            b == 0 ? "Outputs[pipe0]" : "Outputs[pipe1]");
      values_[b] = device_.alloc_global<C>(std::size_t{micro_} * s.n,
                                           b == 0 ? "Values[pipe0]" : "Values[pipe1]");
      kernels_[b] = detail::build_fused_kernel<S>(sys_, options_.encoding, x_[b],
                                                  outputs_[b]);
      values_kernels_[b] = detail::build_fused_values_kernel<S>(sys_, options_.encoding,
                                                                x_[b], values_[b]);
      flat_[b].reserve(std::size_t{micro_} * s.n);
      host_outputs_[b].reserve(std::size_t{micro_} * outs);
    }

    // Worst-case command pattern of one full-capacity evaluate call,
    // reserved once so steady-state enqueues stay off the allocator.
    const std::size_t chunks = launches_per_batch();
    copy_stream_.reserve(0, 8 * chunks + 8);
    compute_stream_.reserve(chunks, 8 * chunks + 8);
    down_stream_.reserve(0, 8 * chunks + 8);
  }

  [[nodiscard]] unsigned dimension() const noexcept { return sys_.packed.structure.n; }
  [[nodiscard]] unsigned batch_capacity() const noexcept { return capacity_; }
  [[nodiscard]] unsigned micro_chunk() const noexcept { return micro_; }
  [[nodiscard]] const SystemLayout& layout() const noexcept { return sys_.layout; }
  /// Resolved options: block_size nonzero, interchange engaged, streams
  /// 2 or 3.
  [[nodiscard]] const Options& options() const noexcept { return options_; }
  /// Streams the schedule runs on (2 or 3, resolved).
  [[nodiscard]] unsigned streams() const noexcept { return options_.streams; }

  /// Kernel launches one full-capacity evaluate_range call issues (one
  /// per micro-chunk); shard schedulers pre-size device logs with this.
  [[nodiscard]] unsigned launches_per_batch() const noexcept {
    return (capacity_ + micro_ - 1) / micro_;
  }

  /// Evaluate at points.size() <= batch_capacity() points through the
  /// double-buffered pipeline.
  void evaluate(const std::vector<std::vector<C>>& points,
                std::vector<poly::EvalResult<S>>& results) {
    if (points.empty() || points.size() > capacity_)
      throw std::invalid_argument("PipelinedFusedEvaluator: bad batch size");
    results.resize(points.size());
    evaluate_range(points, 0, points.size(), std::span<poly::EvalResult<S>>(results));
  }

  /// Evaluate the `count` points starting at points[first], writing
  /// out[i] for the i-th point of the range -- the same shard-facing
  /// contract as FusedGpuEvaluator::evaluate_range (bitwise identical
  /// results under any chunking), with the range itself walked through
  /// the two-stream pipeline in micro-chunks.
  void evaluate_range(const std::vector<std::vector<C>>& points, std::size_t first,
                      std::size_t count, std::span<poly::EvalResult<S>> out) {
    validate_range(points, first, count, out.size(), count);

    const std::size_t kernels_before = device_.log().kernels.size();
    const simt::TransferStats transfers_before = device_.log().transfers;

    run_pipeline(points, first, count, kernels_,
                 [&](std::size_t c) { drain_chunk(c, count, out); });

    detail::snapshot_device_log(device_.log(), kernels_before, transfers_before,
                                last_log_);
  }

  /// Values-only counterpart of evaluate_range: f at the `count` points
  /// starting at points[first], walked through the same two-stream
  /// double-buffered schedule with the fused VALUES kernel
  /// (build_fused_values_kernel), out[i*n + q] receiving value q of the
  /// i-th point of the range.  The per-chunk downloads are micro_chunk*n
  /// values instead of micro_chunk*(n^2+n) outputs, so a corrector's
  /// residual probes leave the DMA engines almost idle for the
  /// neighbouring full batches to fill.  Values are bitwise identical to
  /// FusedGpuEvaluator's (full or values-only) for every chunking.
  void evaluate_values_range(const std::vector<std::vector<C>>& points,
                             std::size_t first, std::size_t count, std::span<C> out) {
    validate_range(points, first, count, out.size(),
                   count * sys_.packed.structure.n);

    const std::size_t kernels_before = device_.log().kernels.size();
    const simt::TransferStats transfers_before = device_.log().transfers;

    run_pipeline(points, first, count, values_kernels_,
                 [&](std::size_t c) { drain_values_chunk(c, count, out); });

    detail::snapshot_device_log(device_.log(), kernels_before, transfers_before,
                                last_log_);
  }

  /// Single-point values-only convenience: a batch of one.
  void evaluate_values(std::span<const C> x, std::span<C> values) {
    if (x.size() != sys_.packed.structure.n)
      throw std::invalid_argument("PipelinedFusedEvaluator: point has wrong dimension");
    single_point_.resize(1);
    single_point_[0].assign(x.begin(), x.end());
    evaluate_values_range(single_point_, 0, 1, values);
  }

  /// Single-point convenience (tracker-corrector interface): a batch of
  /// one, i.e. a one-chunk pipeline.
  void evaluate(std::span<const C> x, poly::EvalResult<S>& out) {
    if (x.size() != sys_.packed.structure.n)
      throw std::invalid_argument("PipelinedFusedEvaluator: point has wrong dimension");
    single_point_.resize(1);
    single_point_[0].assign(x.begin(), x.end());
    evaluate(single_point_, single_result_);
    out = single_result_[0];
  }

  [[nodiscard]] poly::EvalResult<S> evaluate(std::span<const C> x) {
    poly::EvalResult<S> out(dimension());
    evaluate(x, out);
    return out;
  }

  // -- modeled-clock introspection (the pipelining claim) ---------------
  /// Modeled makespan of the last evaluate call's stream schedule:
  /// copies overlapping kernels, engines serializing (stream.hpp).
  [[nodiscard]] double modeled_pipelined_us() const noexcept { return makespan_us_; }
  /// What the same micro-chunked work costs on the synchronous
  /// upload-launch-download schedule: every command end to end, no
  /// overlap (the pre-stream evaluators' schedule).
  [[nodiscard]] double modeled_synchronous_us() const {
    return simt::estimate_log_us(last_log_, device_.spec(), options_.cost);
  }
  /// Synchronous / pipelined modeled time; > 1 is hidden latency.
  [[nodiscard]] double modeled_overlap() const {
    return makespan_us_ > 0.0 ? modeled_synchronous_us() / makespan_us_ : 1.0;
  }

  [[nodiscard]] const simt::Stream& copy_stream() const noexcept { return copy_stream_; }
  [[nodiscard]] const simt::Stream& compute_stream() const noexcept {
    return compute_stream_;
  }

  /// Kernel statistics and transfer volumes of the last evaluate call
  /// (all micro-chunks; the union of both streams' logs).
  [[nodiscard]] const simt::LaunchLog& last_log() const noexcept { return last_log_; }

 private:
  /// Resolve the auto knobs (block_size == 0, interchange == nullopt,
  /// streams == 0) before any member consumes them.  Measured mode (all
  /// three auto): probe candidate (block, layout, streams) triples on a
  /// SCRATCH device by running a full-capacity zero-point batch through
  /// a candidate pipeline and scoring its modeled MAKESPAN -- the
  /// quantity streams exist to shrink -- so the tuner sees exactly the
  /// overlap each schedule buys.  Heuristic mode, or any knob pinned:
  /// pick_block_size seed, AoS, 2 streams.  Probes carry kHeuristic and
  /// pinned knobs, so resolution can never recurse.
  [[nodiscard]] static Options resolve_options(simt::Device& device,
                                               const poly::PolynomialSystem& system,
                                               unsigned capacity, Options options) {
    const bool auto_block = options.block_size == 0;
    const bool auto_layout = !options.interchange.has_value();
    const bool auto_streams = options.streams == 0;
    if (capacity == 0 || options.micro_chunk == 0)
      return options;  // the ctor body throws the real error
    const unsigned micro = std::min(options.micro_chunk, capacity);
    const auto st = pack_system(system).structure;
    const unsigned seed =
        pick_block_size(st.n, st.m, st.k, micro, device.spec().multiprocessors);
    if (options.tuning == tune::TuningMode::kHeuristic || !auto_block ||
        !auto_layout || !auto_streams) {
      if (auto_block) options.block_size = seed;
      if (auto_layout) options.interchange = InterchangeLayout::kAoS;
      if (auto_streams) options.streams = 2;
      return options;
    }

    const unsigned width = static_cast<unsigned>(sizeof(S) / sizeof(double));
    const auto key = tune::TuneKey::make(tune::TunedSchedule::kPipelined, st,
                                         capacity, micro, width, device.spec());
    const unsigned blocks[] = {32, 64, 128};
    const unsigned streams[] = {2, 3};
    const auto candidates = tune::standard_candidates(seed, blocks, streams);
    const auto decision = tune::Autotuner::global().tune(
        key, std::span<const tune::TuneCandidate>(candidates),
        [&](const tune::TuneCandidate& cand) -> std::optional<tune::ProbeOutcome> {
          simt::Device probe_device(device.spec());
          Options copt = options;
          copt.block_size = cand.block_size;
          copt.interchange = cand.interchange;
          copt.streams = cand.streams;
          copt.tuning = tune::TuningMode::kHeuristic;
          PipelinedFusedEvaluator probe(probe_device, system, capacity, copt);
          std::vector<std::vector<C>> pts(capacity, std::vector<C>(st.n, C{}));
          std::vector<poly::EvalResult<S>> res;
          probe.evaluate(pts, res);
          tune::ProbeOutcome outcome;
          outcome.modeled_us = probe.modeled_pipelined_us();
          outcome.log = probe.last_log();
          return outcome;
        });
    options.block_size = decision.choice.block_size;
    options.interchange = decision.choice.interchange;
    options.streams = decision.choice.streams;
    return options;
  }

  /// Shared validation of the two range entry points: batch capacity,
  /// range bounds, the caller's output span (sized `out_needed`) and
  /// point dimensions.  Throws before any device work.
  void validate_range(const std::vector<std::vector<C>>& points, std::size_t first,
                      std::size_t count, std::size_t out_size,
                      std::size_t out_needed) const {
    const unsigned s_n = sys_.packed.structure.n;
    if (count == 0 || count > capacity_)
      throw std::invalid_argument("PipelinedFusedEvaluator: bad batch size");
    if (first > points.size() || count > points.size() - first ||
        out_size < out_needed)
      throw std::invalid_argument("PipelinedFusedEvaluator: bad point range");
    for (std::size_t p = first; p < first + count; ++p)
      if (points[p].size() != s_n)
        throw std::invalid_argument(
            "PipelinedFusedEvaluator: point has wrong dimension");
  }

  /// The ONE copy of the two-stream double-buffer schedule, shared by
  /// the full and values-only ranges (they differ only in the kernel
  /// pair and the drain): upload chunk c into slot c&1 behind the slot's
  /// c-2 kernel (X reuse), launch behind the upload and the slot's c-2
  /// download (output reuse), drain chunk c-1 under compute(c), then
  /// drain the tail and record the modeled makespan.
  template <class DrainChunk>
  void run_pipeline(const std::vector<std::vector<C>>& points, std::size_t first,
                    std::size_t count, simt::Kernel (&kernels)[2],
                    DrainChunk&& drain) {
    const unsigned s_n = sys_.packed.structure.n;

    // Fresh modeled timeline for this call (capacities kept).
    copy_stream_.reset();
    compute_stream_.reset();
    down_stream_.reset();
    device_.engine_clocks().reset();
    for (unsigned b = 0; b < 2; ++b) {
      up_done_[b].reset();
      kernel_done_[b].reset();
      down_done_[b].reset();
    }

    const std::size_t chunks = (count + micro_ - 1) / micro_;
    for (std::size_t c = 0; c < chunks; ++c) {
      const unsigned buf = static_cast<unsigned>(c & 1);
      const std::size_t base = c * micro_;
      const std::size_t cnt = std::min<std::size_t>(micro_, count - base);

      // Upload chunk c into X[buf]; the slot is reused from chunk c-2,
      // whose kernel must have consumed it (modeled hazard; host-side
      // the eager order already guarantees it).
      if (c >= 2) copy_stream_.wait(kernel_done_[buf]);
      flat_[buf].resize(cnt * s_n);
      for (std::size_t p = 0; p < cnt; ++p)
        std::copy(points[first + base + p].begin(), points[first + base + p].end(),
                  flat_[buf].begin() + p * s_n);
      copy_stream_.copy_to_device_async(x_[buf], std::span<const C>(flat_[buf]));
      copy_stream_.record(up_done_[buf]);

      // Compute chunk c behind its upload; the output slot is reused
      // from chunk c-2, whose download must have drained it.
      compute_stream_.wait(up_done_[buf]);
      if (c >= 2) compute_stream_.wait(down_done_[buf]);
      simt::LaunchConfig cfg{static_cast<unsigned>(cnt), options_.block_size,
                             sys_.shared_bytes};
      cfg.detect_races = options_.detect_races;
      (void)compute_stream_.launch(kernels[buf], cfg);
      compute_stream_.record(kernel_done_[buf]);

      // Download chunk c-1 under compute(c).
      if (c >= 1) drain(c - 1);
    }
    drain(chunks - 1);

    makespan_us_ = std::max({copy_stream_.modeled_now_us(),
                             compute_stream_.modeled_now_us(),
                             down_stream_.modeled_now_us()});
  }

  /// The stream downloads ride on: the shared copy stream (2-stream
  /// schedule) or the dedicated third stream.
  [[nodiscard]] simt::Stream& download_stream() noexcept {
    return options_.streams == 3 ? down_stream_ : copy_stream_;
  }

  void drain_chunk(std::size_t c, std::size_t count,
                   std::span<poly::EvalResult<S>> out) {
    const std::uint64_t outs = sys_.layout.num_outputs();
    const unsigned buf = static_cast<unsigned>(c & 1);
    const std::size_t base = c * micro_;
    const std::size_t cnt = std::min<std::size_t>(micro_, count - base);

    auto& dn = download_stream();
    dn.wait(kernel_done_[buf]);
    host_outputs_[buf].resize(cnt * outs);
    dn.copy_from_device_async(outputs_[buf], std::span<C>(host_outputs_[buf]));
    dn.record(down_done_[buf]);

    // Host data is ready (eager execution); unpack into the caller's
    // point-order slices, the deterministic-merge contract.
    for (std::size_t p = 0; p < cnt; ++p)
      detail::unpack_outputs<S>(sys_.layout,
                                std::span<const C>(host_outputs_[buf]), p * outs,
                                out[base + p]);
  }

  /// drain_chunk for the values-only pipeline: Values[buf] lands
  /// directly in the caller's point-major span (no unpacking needed).
  void drain_values_chunk(std::size_t c, std::size_t count, std::span<C> out) {
    const unsigned s_n = sys_.packed.structure.n;
    const unsigned buf = static_cast<unsigned>(c & 1);
    const std::size_t base = c * micro_;
    const std::size_t cnt = std::min<std::size_t>(micro_, count - base);

    auto& dn = download_stream();
    dn.wait(kernel_done_[buf]);
    dn.copy_from_device_async(values_[buf], out.subspan(base * s_n, cnt * s_n));
    dn.record(down_done_[buf]);
  }

  simt::Device& device_;
  Options options_;
  unsigned capacity_;
  unsigned micro_;
  detail::FusedSystemState<S> sys_;

  simt::GlobalBuffer<C> x_[2], outputs_[2], values_[2];
  simt::Kernel kernels_[2], values_kernels_[2];
  simt::Stream copy_stream_, compute_stream_, down_stream_;
  simt::Event up_done_[2], kernel_done_[2], down_done_[2];
  std::vector<C> flat_[2];          ///< per-slot upload staging, reused
  std::vector<C> host_outputs_[2];  ///< per-slot download staging, reused
  std::vector<std::vector<C>> single_point_;        ///< single-point staging
  std::vector<poly::EvalResult<S>> single_result_;  ///< single-point staging
  double makespan_us_ = 0.0;
  simt::LaunchLog last_log_;
};

}  // namespace polyeval::core
