#pragma once

/// \file multitenant_evaluator.hpp
/// The solve service's cross-request evaluator: one fused launch serves
/// points belonging to DIFFERENT polynomial systems, as long as every
/// system shares one uniform (n, m, k, d) structure.  Structure
/// uniformity makes the per-tenant table strides identical, so up to
/// `max_tenants` systems' positions/exponents (constant memory) and
/// folded coefficients (global memory) simply concatenate, and a small
/// per-point tenant-id buffer routes each block to its own tables.
/// This is the request-level form of the paper's amortization argument:
/// where the fused kernel amortizes one launch over many points, the
/// multi-tenant kernel amortizes it over many REQUESTS -- the dominant
/// saving is the per-launch overhead (GpuCostModel::launch_overhead_us)
/// that G sequential single-request launches would each pay.
///
/// Bitwise contract: phase 2 repeats build_fused_kernel's (and the
/// values variant's) arithmetic verbatim with a tenant base offset
/// added to every table index -- offsets change WHICH coefficients are
/// read, never the operation order -- and phases 1 and 3 are the exact
/// shared lambdas of fused_evaluator.hpp.  A point evaluated here is
/// bit-identical to the same point through the tenant's own
/// single-tenant FusedGpuEvaluator, which is what lets the service
/// promise every request endpoints bitwise equal to a standalone solve.
///
/// Zero steady-state allocation, as the single-tenant pipeline: tables
/// upload at set_tenant (admission time), per-call staging reuses
/// constructor-sized buffers.  Only ExponentEncoding::kChar is
/// supported -- the nibble packing would halve the per-tenant exponent
/// stride and nothing in the service requests it.

#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/fused_evaluator.hpp"

namespace polyeval::core {

template <prec::RealScalar S>
class MultiTenantFusedEvaluator {
  using C = cplx::Complex<S>;

 public:
  struct Options {
    /// Threads per block; 0 resolves to the pick_block_size heuristic.
    /// The service passes the structure's autotuned winner (resolved
    /// once per SystemCache entry and reused across requests).
    unsigned block_size = 0;
    /// Mons interchange layout; nullopt pins AoS.
    std::optional<InterchangeLayout> interchange;
    bool detect_races = false;
  };

  /// Size the device state for `max_tenants` resident systems of the
  /// given structure and `batch_capacity` simultaneous points.  Tenant
  /// tables start zeroed; set_tenant() installs systems.
  MultiTenantFusedEvaluator(simt::Device& device,
                            const poly::UniformStructure& structure,
                            unsigned max_tenants, unsigned batch_capacity,
                            Options options = {})
      : device_(device),
        layout_(structure),
        max_tenants_(max_tenants),
        capacity_(batch_capacity),
        options_(options) {
    if (max_tenants_ == 0)
      throw std::invalid_argument("MultiTenantFusedEvaluator: zero tenants");
    if (capacity_ == 0)
      throw std::invalid_argument("MultiTenantFusedEvaluator: zero capacity");
    if (options_.block_size == 0)
      options_.block_size = pick_block_size(structure.n, structure.m, structure.k,
                                            capacity_,
                                            device.spec().multiprocessors);
    if (!options_.interchange) options_.interchange = InterchangeLayout::kAoS;

    const std::size_t pos_stride = support_stride();
    const std::size_t coeff_stride = layout_.coeffs_size();
    positions_ = device_.alloc_constant<unsigned char>(
        pos_stride * max_tenants_, "MtPositions");
    exponents_ = device_.alloc_constant<unsigned char>(
        pos_stride * max_tenants_, "MtExponents");
    coeffs_ = device_.alloc_global<C>(coeff_stride * max_tenants_, "MtCoeffs");
    mons_.allocate(device_, std::size_t{capacity_} * layout_.mons_size(),
                   "MtMons[batch]", *options_.interchange);
    mons_.fill_zero(device_);
    x_ = device_.alloc_global<C>(std::size_t{capacity_} * structure.n,
                                 "MtX[batch]");
    outputs_ = device_.alloc_global<C>(
        std::size_t{capacity_} * layout_.num_outputs(), "MtOut[batch]");
    values_ = device_.alloc_global<C>(std::size_t{capacity_} * structure.n,
                                      "MtVals[batch]");
    tenant_ids_ = device_.alloc_global<unsigned>(capacity_, "MtTenants");

    host_positions_.assign(pos_stride * max_tenants_, 0);
    host_exponents_.assign(pos_stride * max_tenants_, 0);
    host_coeffs_.assign(coeff_stride * max_tenants_, C{});
    device_.upload_constant(positions_,
                            std::span<const unsigned char>(host_positions_));
    device_.upload_constant(exponents_,
                            std::span<const unsigned char>(host_exponents_));
    device_.upload(coeffs_, std::span<const C>(host_coeffs_));
    tenant_present_.assign(max_tenants_, 0);

    shared_bytes_ = std::size_t{structure.n} * (1 + structure.d) * sizeof(C);
    kernel_ = build_kernel(/*values_only=*/false);
    values_kernel_ = build_kernel(/*values_only=*/true);

    flat_.reserve(std::size_t{capacity_} * structure.n);
    host_outputs_.reserve(std::size_t{capacity_} * layout_.num_outputs());
    staged_tenants_.resize(capacity_);
  }

  [[nodiscard]] unsigned dimension() const noexcept {
    return layout_.structure().n;
  }
  [[nodiscard]] unsigned batch_capacity() const noexcept { return capacity_; }
  [[nodiscard]] unsigned max_tenants() const noexcept { return max_tenants_; }
  [[nodiscard]] const SystemLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }
  [[nodiscard]] bool tenant_present(unsigned tenant) const {
    return tenant < max_tenants_ && tenant_present_[tenant] != 0;
  }

  /// Install (or replace) tenant `tenant`'s system: pack, fold the
  /// coefficient portions exactly as FusedSystemState does, splice into
  /// the concatenated host mirrors at the tenant's stride and re-upload
  /// the three tables.  An admission-time cost, not a per-round one.
  void set_tenant(unsigned tenant, const poly::PolynomialSystem& system) {
    if (tenant >= max_tenants_)
      throw std::invalid_argument("MultiTenantFusedEvaluator: bad tenant");
    const PackedSystem packed = pack_system(system);
    if (!(packed.structure == layout_.structure()))
      throw std::invalid_argument(
          "MultiTenantFusedEvaluator: tenant structure mismatch");
    const auto s = packed.structure;
    const auto encoded =
        encode_exponents(ExponentEncoding::kChar, packed.exponents);

    const std::size_t pos_stride = support_stride();
    std::copy(packed.positions.begin(), packed.positions.end(),
              host_positions_.begin() + tenant * pos_stride);
    std::copy(encoded.begin(), encoded.end(),
              host_exponents_.begin() + tenant * pos_stride);

    // Exponent factors folded in the working precision, as in
    // FusedSystemState (the one fold, repeated per tenant).
    const std::size_t cbase = std::size_t{tenant} * layout_.coeffs_size();
    for (std::uint64_t t = 0; t < layout_.total_monomials(); ++t) {
      const auto raw =
          C::from_double(packed.coeffs[layout_.coeff_index(s.k, t)]);
      for (unsigned j = 0; j < s.k; ++j) {
        const double a = packed.exponents[layout_.support_index(t, j)] + 1.0;
        host_coeffs_[cbase + layout_.coeff_index(j, t)] =
            raw * prec::ScalarTraits<S>::from_double(a);
      }
      host_coeffs_[cbase + layout_.coeff_index(s.k, t)] = raw;
    }

    device_.upload_constant(positions_,
                            std::span<const unsigned char>(host_positions_));
    device_.upload_constant(exponents_,
                            std::span<const unsigned char>(host_exponents_));
    device_.upload(coeffs_, std::span<const C>(host_coeffs_));
    tenant_present_[tenant] = 1;
  }

  /// Mark a tenant slot free (host bookkeeping only -- the tables stay
  /// until a new tenant overwrites them).
  void clear_tenant(unsigned tenant) {
    if (tenant < max_tenants_) tenant_present_[tenant] = 0;
  }

  /// Per-point tenant routing for the NEXT evaluate call(s): point
  /// `first + i` of the call belongs to tenants[first + i].  The span
  /// must stay valid (and at least first + count long) until the call.
  void bind_tenants(std::span<const unsigned> tenants) { bound_ = tenants; }

  static constexpr unsigned kLaunchesPerBatch = 1;

  /// One upload (points + tenant ids), ONE launch, one download -- the
  /// FusedGpuEvaluator range contract, with each point's tables chosen
  /// by its bound tenant id.
  void evaluate_range(const std::vector<std::vector<C>>& points,
                      std::size_t first, std::size_t count,
                      std::span<poly::EvalResult<S>> out) {
    const unsigned batch = stage_range(points, first, count, out.size(), count);
    launch(kernel_, batch);
    host_outputs_.resize(std::size_t{batch} * layout_.num_outputs());
    device_.download(outputs_, std::span<C>(host_outputs_));
    for (unsigned p = 0; p < batch; ++p)
      detail::unpack_outputs<S>(layout_, std::span<const C>(host_outputs_),
                                std::size_t{p} * layout_.num_outputs(), out[p]);
  }

  /// Values-only counterpart: out[i*n + q] gets value q of point i.
  void evaluate_values_range(const std::vector<std::vector<C>>& points,
                             std::size_t first, std::size_t count,
                             std::span<C> out) {
    const unsigned n = dimension();
    const unsigned batch =
        stage_range(points, first, count, out.size(), count * n);
    launch(values_kernel_, batch);
    device_.download(values_, out.subspan(0, std::size_t{batch} * n));
  }

 private:
  /// Positions/exponents bytes per tenant (kChar: one byte per support
  /// entry for both tables).
  [[nodiscard]] std::size_t support_stride() const {
    return static_cast<std::size_t>(layout_.total_monomials()) *
           layout_.structure().k;
  }

  unsigned stage_range(const std::vector<std::vector<C>>& points,
                       std::size_t first, std::size_t count,
                       std::size_t out_size, std::size_t out_needed) {
    const unsigned n = dimension();
    if (count == 0 || count > capacity_)
      throw std::invalid_argument("MultiTenantFusedEvaluator: bad batch size");
    if (first > points.size() || count > points.size() - first ||
        out_size < out_needed)
      throw std::invalid_argument("MultiTenantFusedEvaluator: bad point range");
    if (bound_.size() < first + count)
      throw std::invalid_argument(
          "MultiTenantFusedEvaluator: bind_tenants span too short");
    const auto batch = static_cast<unsigned>(count);
    for (std::size_t p = first; p < first + count; ++p) {
      if (points[p].size() != n)
        throw std::invalid_argument(
            "MultiTenantFusedEvaluator: point has wrong dimension");
      const unsigned ten = bound_[p];
      if (ten >= max_tenants_ || !tenant_present_[ten])
        throw std::invalid_argument(
            "MultiTenantFusedEvaluator: point bound to absent tenant");
      staged_tenants_[p - first] = ten;
    }
    flat_.resize(std::size_t{batch} * n);
    for (unsigned p = 0; p < batch; ++p)
      std::copy(points[first + p].begin(), points[first + p].end(),
                flat_.begin() + std::size_t{p} * n);
    device_.upload(x_, std::span<const C>(flat_));
    device_.upload(tenant_ids_, std::span<const unsigned>(staged_tenants_.data(),
                                                          batch));
    return batch;
  }

  void launch(const simt::Kernel& kernel, unsigned batch) {
    simt::LaunchConfig cfg{batch, options_.block_size, shared_bytes_};
    cfg.detect_races = options_.detect_races;
    (void)device_.launch(kernel, cfg);
  }

  /// The fused kernel with tenant-offset table reads.  Phases 1 and 3
  /// are the exact shared lambdas of fused_evaluator.hpp; phase 2 is
  /// build_fused_kernel's (or the values variant's) loop with
  /// `tbase`/`cbase` added to every positions/exponents/coeffs index.
  [[nodiscard]] simt::Kernel build_kernel(bool values_only) const {
    const auto s = layout_.structure();
    const unsigned n = s.n, d = s.d, k = s.k, m = s.m;
    const std::uint64_t monomials = layout_.total_monomials();
    const std::uint64_t pos_stride = support_stride();
    const std::uint64_t coeff_stride = layout_.coeffs_size();
    const auto layout = layout_;
    const auto coeffs = coeffs_;
    const auto mons = mons_;
    const auto positions = positions_;
    const auto exponents = exponents_;
    const auto tenants = tenant_ids_;

    const std::size_t svars_off = 0;
    const std::size_t powers_off = std::size_t{n} * sizeof(C);

    simt::Kernel kernel;
    kernel.name = values_only ? "mt_fused_vals" : "mt_fused";
    kernel.phases.push_back(
        detail::make_fused_point_phase<S>(x_, n, d, svars_off, powers_off));

    if (!values_only) {
      kernel.phases.push_back([mons, coeffs, positions, exponents, tenants,
                               layout, n, d, k, monomials, pos_stride,
                               coeff_stride, svars_off,
                               powers_off](simt::ThreadContext& ctx) {
        const std::size_t point = ctx.block_index();
        const std::uint64_t ten = ctx.load(tenants, point);
        const std::uint64_t tbase = ten * pos_stride;
        const std::uint64_t cbase = ten * coeff_stride;
        auto svars = ctx.template shared_array<C>(svars_off, n);
        auto powers =
            ctx.template shared_array<C>(powers_off, std::size_t{n} * d);
        std::array<C, 257> ell;
        std::array<unsigned, 256> pos;
        const std::size_t mons_base = point * layout.mons_size();

        bool worked = false;
        for (std::uint64_t g = ctx.thread_index(); g < monomials;
             g += ctx.block_dim()) {
          worked = true;

          for (unsigned j = 0; j < k; ++j)
            pos[j] = ctx.load_constant(positions,
                                       tbase + layout.support_index(g, j));
          const auto var = [&](unsigned j) { return svars.get(pos[j]); };

          // Common factor from the powers table: k-1 multiplications.
          C cf(S(1.0));
          for (unsigned j = 0; j < k; ++j) {
            const unsigned em1 = ctx.load_constant(
                exponents, tbase + layout.support_index(g, j));
            const C val = powers.get(std::size_t{em1} * n + pos[j]);
            if (j == 0) {
              cf = val;
            } else {
              cf = cf * val;
              ctx.op_cmul();
            }
          }

          // Speelpenning derivatives into L_1..L_k: 3k-6 for k >= 3.
          if (k == 2) {
            ell[0] = var(1);
            ell[1] = var(0);
          } else if (k >= 3) {
            ell[1] = var(0);
            for (unsigned r = 2; r < k; ++r) {
              ell[r] = ell[r - 1] * var(r - 1);
              ctx.op_cmul();
            }
            C q = var(k - 1);
            ell[k - 2] = ell[k - 2] * q;
            ctx.op_cmul();
            for (unsigned r = 1; r + 2 < k; ++r) {
              q = q * var(k - 1 - r);
              ctx.op_cmul();
              ell[k - 2 - r] = ell[k - 2 - r] * q;
              ctx.op_cmul();
            }
            ell[0] = q * var(1);
            ctx.op_cmul();
          }

          // Scale by the in-register common factor (k multiplications;
          // for k == 1 the derivative IS the factor).
          if (k == 1) {
            ell[0] = cf;
          } else {
            for (unsigned j = 0; j < k; ++j) {
              ell[j] = ell[j] * cf;
              ctx.op_cmul();
            }
          }

          // Monomial value from its last derivative (1 multiplication).
          ell[k] = ell[k - 1] * var(k - 1);
          ctx.op_cmul();

          // Coefficient products (k+1 multiplications).
          for (unsigned j = 0; j <= k; ++j) {
            const C c = ctx.load(coeffs, cbase + layout.coeff_index(j, g));
            ell[j] = ell[j] * c;
            ctx.op_cmul();
          }

          // Re-establish the zero padding before the sparse derivative
          // stores: a previous launch may have run a DIFFERENT tenant on
          // this point slot, leaving its derivatives at variable
          // positions this tenant's monomial never writes.  The
          // single-tenant kernel skips this because its positions are
          // identical launch over launch.
          for (unsigned q = 0; q < n; ++q)
            mons.store(ctx, mons_base + layout.mons_deriv_index(g, q), C{});
          mons.store(ctx, mons_base + layout.mons_value_index(g), ell[k]);
          for (unsigned j = 0; j < k; ++j)
            mons.store(ctx, mons_base + layout.mons_deriv_index(g, pos[j]),
                       ell[j]);
        }
        if (!worked) ctx.mark_inactive();
      });
      kernel.phases.push_back(detail::make_fused_summation_phase<S>(
          mons_, outputs_, layout_, m, layout_.num_outputs()));
    } else {
      kernel.phases.push_back([mons, coeffs, positions, exponents, tenants,
                               layout, n, d, k, monomials, pos_stride,
                               coeff_stride, svars_off,
                               powers_off](simt::ThreadContext& ctx) {
        const std::size_t point = ctx.block_index();
        const std::uint64_t ten = ctx.load(tenants, point);
        const std::uint64_t tbase = ten * pos_stride;
        const std::uint64_t cbase = ten * coeff_stride;
        auto svars = ctx.template shared_array<C>(svars_off, n);
        auto powers =
            ctx.template shared_array<C>(powers_off, std::size_t{n} * d);
        std::array<unsigned, 256> pos;
        const std::size_t mons_base = point * layout.mons_size();

        bool worked = false;
        for (std::uint64_t g = ctx.thread_index(); g < monomials;
             g += ctx.block_dim()) {
          worked = true;

          for (unsigned j = 0; j < k; ++j)
            pos[j] = ctx.load_constant(positions,
                                       tbase + layout.support_index(g, j));
          const auto var = [&](unsigned j) { return svars.get(pos[j]); };

          // Common factor: the full kernel's loop, verbatim.
          C cf(S(1.0));
          for (unsigned j = 0; j < k; ++j) {
            const unsigned em1 = ctx.load_constant(
                exponents, tbase + layout.support_index(g, j));
            const C val = powers.get(std::size_t{em1} * n + pos[j]);
            if (j == 0) {
              cf = val;
            } else {
              cf = cf * val;
              ctx.op_cmul();
            }
          }

          // ((var(0)..var(k-2)) * cf) * var(k-1), as the values kernel.
          C p = cf;
          if (k >= 2) {
            p = var(0);
            for (unsigned r = 2; r < k; ++r) {
              p = p * var(r - 1);
              ctx.op_cmul();
            }
            p = p * cf;
            ctx.op_cmul();
          }
          p = p * var(k - 1);
          ctx.op_cmul();

          // Value coefficient (portion k), as in the full kernel.
          p = p * ctx.load(coeffs, cbase + layout.coeff_index(k, g));
          ctx.op_cmul();

          mons.store(ctx, mons_base + layout.mons_value_index(g), p);
        }
        if (!worked) ctx.mark_inactive();
      });
      kernel.phases.push_back(detail::make_fused_summation_phase<S>(
          mons_, values_, layout_, m, n));
    }
    return kernel;
  }

  simt::Device& device_;
  SystemLayout layout_;
  unsigned max_tenants_;
  unsigned capacity_;
  Options options_;
  std::size_t shared_bytes_ = 0;

  simt::ConstantBuffer<unsigned char> positions_, exponents_;
  simt::GlobalBuffer<C> coeffs_;
  InterchangeBuffer<S> mons_;
  simt::GlobalBuffer<C> x_, outputs_, values_;
  simt::GlobalBuffer<unsigned> tenant_ids_;
  simt::Kernel kernel_, values_kernel_;

  std::vector<unsigned char> host_positions_, host_exponents_;
  std::vector<C> host_coeffs_;
  std::vector<unsigned char> tenant_present_;
  std::span<const unsigned> bound_;        ///< per-point tenant routing
  std::vector<unsigned> staged_tenants_;   ///< compacted upload staging
  std::vector<C> flat_;
  std::vector<C> host_outputs_;
};

}  // namespace polyeval::core
