#pragma once

/// \file layout.hpp
/// The device data layouts of the paper (section 3.3):
///
/// * the monomial sequence Sm: monomial t = p*m + j is the j-th monomial
///   of polynomial p;
/// * Positions/Exponents: per monomial, k variable indices and k
///   exponents-minus-one, stored monomial-major in constant memory;
/// * Coeffs: (k+1) portions of n*m coefficients each -- portion j < k
///   holds the derivative coefficients c * a_j (exponent factors folded
///   in at pack time), portion k holds the value coefficients c; inside a
///   portion, Sm order, so warp reads coalesce;
/// * Mons: the second kernel's output, transposed and zero-padded so the
///   third kernel's reads coalesce: term slot j occupies a contiguous
///   group of n^2+n entries (n monomial values, then n entries per
///   variable of derivative values).

#include <cstdint>
#include <vector>

#include "cplx/complex.hpp"
#include "poly/system.hpp"

namespace polyeval::core {

/// How the second kernel's output array is arranged -- the explicit
/// tradeoff of section 3.3.
enum class MonsLayout {
  /// The paper's choice: kernel 3 reads coalesce, kernel 2 writes do not.
  kTransposed,
  /// The rejected alternative (ablation): output-major storage, kernel 2
  /// value writes mostly coalesce, kernel 3 reads stride by m.
  kOutputMajor,
};

/// Element layout of the kernel-to-kernel interchange buffers
/// (CommonFactors, Mons).  The paper stores complex numbers as re/im
/// pairs (AoS); splitting them into two scalar planes (SoA) lets the
/// real and imaginary accumulations of the inner Speelpenning and
/// summation loops vectorize independently, and turns each warp-level
/// complex access into two narrower unit-stride scalar accesses.
/// Numerical results are bitwise identical under either layout.
enum class InterchangeLayout {
  kAoS,  ///< Complex<S> elements, the paper's layout
  kSoA,  ///< two S planes: re at [0, count), im at [count, 2*count)
};

/// Index algebra for a uniform system (n, m, k, d) on the device.
/// All functions are pure; tests verify them in both directions.
class SystemLayout {
 public:
  SystemLayout(poly::UniformStructure s, MonsLayout mons = MonsLayout::kTransposed)
      : s_(s), mons_(mons) {}

  [[nodiscard]] const poly::UniformStructure& structure() const noexcept { return s_; }
  [[nodiscard]] MonsLayout mons_layout() const noexcept { return mons_; }

  /// Total monomials in the system: |Sm| = n*m.
  [[nodiscard]] std::uint64_t total_monomials() const noexcept {
    return std::uint64_t{s_.n} * s_.m;
  }
  /// Monomials plus all their derivatives: n*m*(k+1) (size of Coeffs).
  [[nodiscard]] std::uint64_t coeffs_size() const noexcept {
    return total_monomials() * (s_.k + 1);
  }
  /// Output polynomials of system + Jacobian: n^2 + n.
  [[nodiscard]] std::uint64_t num_outputs() const noexcept {
    return std::uint64_t{s_.n} * s_.n + s_.n;
  }
  /// Size of the zero-padded Mons array: (n^2+n)*m.
  [[nodiscard]] std::uint64_t mons_size() const noexcept {
    return num_outputs() * s_.m;
  }
  /// Entries of Mons that are structural zeros (never written).
  [[nodiscard]] std::uint64_t mons_zero_slots() const noexcept {
    return mons_size() - total_monomials() * (s_.k + 1);
  }

  // -- Sm order ---------------------------------------------------------
  [[nodiscard]] unsigned monomial_poly(std::uint64_t t) const noexcept {
    return static_cast<unsigned>(t / s_.m);
  }
  [[nodiscard]] unsigned monomial_slot(std::uint64_t t) const noexcept {
    return static_cast<unsigned>(t % s_.m);
  }
  [[nodiscard]] std::uint64_t sm_index(unsigned poly, unsigned slot) const noexcept {
    return std::uint64_t{poly} * s_.m + slot;
  }

  // -- Positions / Exponents (monomial-major) ---------------------------
  [[nodiscard]] std::uint64_t support_index(std::uint64_t t, unsigned j) const noexcept {
    return t * s_.k + j;
  }

  // -- Coeffs (portion-major) -------------------------------------------
  /// portion j in [0, k): coefficient of the derivative with respect to
  /// the monomial's j-th variable; portion k: the value coefficient.
  [[nodiscard]] std::uint64_t coeff_index(unsigned portion, std::uint64_t t) const noexcept {
    return std::uint64_t{portion} * total_monomials() + t;
  }

  // -- output vector (kernel 3 results) ----------------------------------
  /// Output index of the value of polynomial p.
  [[nodiscard]] std::uint64_t output_value_index(unsigned poly) const noexcept {
    return poly;
  }
  /// Output index of d f_poly / d x_var.
  [[nodiscard]] std::uint64_t output_deriv_index(unsigned poly, unsigned var) const noexcept {
    return std::uint64_t{s_.n} + std::uint64_t{var} * s_.n + poly;
  }

  // -- Mons -------------------------------------------------------------
  /// Mons entry of term slot j of output `out`.
  [[nodiscard]] std::uint64_t mons_index(std::uint64_t out, unsigned slot) const noexcept {
    return mons_ == MonsLayout::kTransposed
               ? std::uint64_t{slot} * num_outputs() + out
               : out * s_.m + slot;
  }
  /// Mons entry the second kernel writes the *value* of monomial t into.
  [[nodiscard]] std::uint64_t mons_value_index(std::uint64_t t) const noexcept {
    return mons_index(output_value_index(monomial_poly(t)), monomial_slot(t));
  }
  /// Mons entry for the derivative of monomial t with respect to x_var.
  [[nodiscard]] std::uint64_t mons_deriv_index(std::uint64_t t, unsigned var) const noexcept {
    return mons_index(output_deriv_index(monomial_poly(t), var), monomial_slot(t));
  }

 private:
  poly::UniformStructure s_;
  MonsLayout mons_;
};

/// Host-side packed form of a uniform system: the byte arrays destined
/// for constant memory and the coefficient array destined for global
/// memory (as hardware doubles; widened per scalar type on upload).
struct PackedSystem {
  poly::UniformStructure structure;
  /// Variable index of the j-th variable of monomial t at t*k+j.
  std::vector<unsigned char> positions;
  /// Exponent minus one of the j-th variable of monomial t at t*k+j
  /// ("giving us opportunity to work with variables appearing in degrees
  /// up to 255", section 3.1).
  std::vector<unsigned char> exponents;
  /// Portion-major coefficients, derivative portions pre-multiplied by
  /// the exponents.
  std::vector<cplx::Complex<double>> coeffs;
};

/// Pack a uniform system; throws std::invalid_argument if the system is
/// not uniform or exceeds the unsigned-char encoding ranges (n <= 256,
/// d <= 256).
[[nodiscard]] PackedSystem pack_system(const poly::PolynomialSystem& system);

}  // namespace polyeval::core
