#pragma once

/// \file fused_evaluator.hpp
/// Single-launch fused evaluation pipeline.
///
/// The paper's central design argument (section 3.1) is that fusing the
/// powers computation INTO the common-factor kernel beats a separate
/// powers kernel, because the fusion avoids a global-memory round trip.
/// This evaluator applies the same argument one level up and fuses all
/// three kernels into one launch:
///
///   * one thread block owns one evaluation point and loops over all of
///     the point's monomials (a persistent-block schedule, instead of
///     the paper's one-thread-per-monomial grid);
///   * the common factor never travels through global memory -- it is
///     computed from the shared powers table and consumed in the same
///     register in which the Speelpenning derivatives are scaled,
///     eliminating the CommonFactors store+load round trip entirely;
///   * the phase barrier between the monomial loop and the summation
///     loop replaces the kernel-2/kernel-3 launch boundary, so one
///     launch (not three) covers the whole evaluation.
///
/// The cost: a block must cover a whole point, which caps per-point
/// parallelism at one block -- throughput comes from batching points
/// (grid = batch), which is exactly the workload of a path tracker
/// advancing many paths in lockstep.  The three-kernel pipeline stays
/// available (GpuEvaluator / BatchGpuEvaluator) as the ablation
/// baseline.
///
/// Steady-state evaluate() calls perform zero heap allocations: the
/// packed system, kernels, staging vectors and device buffers are all
/// built once in the constructor.  The exception is the Device launch
/// log, which grows by one entry per launch -- long-running callers
/// should clear it periodically (Device::clear_log keeps capacity).

#include <array>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/kernels.hpp"
#include "poly/eval_result.hpp"

namespace polyeval::core {

template <prec::RealScalar S>
class FusedGpuEvaluator {
  using C = cplx::Complex<S>;

 public:
  struct Options {
    unsigned block_size = 32;
    ExponentEncoding encoding = ExponentEncoding::kChar;
    /// Element layout of the Mons interchange buffer (the only
    /// interchange left once the common factor stays in registers).
    InterchangeLayout interchange = InterchangeLayout::kAoS;
    /// The race journals are a debugging aid (the cuda-memcheck
    /// analogue); the production fast path skips the per-access
    /// bookkeeping.  Parity tests run with detection on.
    bool detect_races = false;
  };

  /// Packs the system and sizes the device arrays for `batch_capacity`
  /// simultaneous points.
  FusedGpuEvaluator(simt::Device& device, const poly::PolynomialSystem& system,
                    unsigned batch_capacity, Options options = {})
      : device_(device),
        options_(options),
        capacity_(batch_capacity),
        packed_(pack_system(system)),
        layout_(packed_.structure) {
    if (capacity_ == 0)
      throw std::invalid_argument("FusedGpuEvaluator: zero batch capacity");
    if (options_.block_size == 0)
      throw std::invalid_argument("FusedGpuEvaluator: block size must be positive");
    const auto s = packed_.structure;

    const auto encoded = encode_exponents(options_.encoding, packed_.exponents);
    positions_ =
        device_.alloc_constant<unsigned char>(packed_.positions.size(), "Positions");
    exponents_ = device_.alloc_constant<unsigned char>(encoded.size(), "Exponents");
    device_.upload_constant(positions_,
                            std::span<const unsigned char>(packed_.positions));
    device_.upload_constant(exponents_, std::span<const unsigned char>(encoded));

    x_ = device_.alloc_global<C>(std::size_t{capacity_} * s.n, "X[batch]");
    coeffs_ = device_.alloc_global<C>(layout_.coeffs_size(), "Coeffs");
    mons_.allocate(device_, std::size_t{capacity_} * layout_.mons_size(),
                   "Mons[batch]", options_.interchange);
    outputs_ = device_.alloc_global<C>(std::size_t{capacity_} * layout_.num_outputs(),
                                       "Outputs[batch]");

    // exponent factors folded in the working precision, as in GpuEvaluator
    std::vector<C> coeffs(packed_.coeffs.size());
    for (std::uint64_t t = 0; t < layout_.total_monomials(); ++t) {
      const auto raw = C::from_double(packed_.coeffs[layout_.coeff_index(s.k, t)]);
      for (unsigned j = 0; j < s.k; ++j) {
        const double a = packed_.exponents[layout_.support_index(t, j)] + 1.0;
        coeffs[layout_.coeff_index(j, t)] = raw * prec::ScalarTraits<S>::from_double(a);
      }
      coeffs[layout_.coeff_index(s.k, t)] = raw;
    }
    device_.upload(coeffs_, std::span<const C>(coeffs));
    mons_.fill_zero(device_);

    // Shared memory: the point (n) and the powers table (n*d).  Unlike
    // the paper's kernel 2, the per-thread L_1..L_{k+1} strip lives in
    // registers/local memory: it is thread-private, so shared memory
    // buys it nothing but bank pressure, and keeping it local lifts the
    // shared-capacity ceiling on the block size.
    shared_bytes_ = std::size_t{s.n} * (1 + s.d) * sizeof(C);
    build_kernel();

    flat_.reserve(std::size_t{capacity_} * s.n);
    host_outputs_.reserve(std::size_t{capacity_} * layout_.num_outputs());
  }

  [[nodiscard]] unsigned dimension() const noexcept { return packed_.structure.n; }
  [[nodiscard]] unsigned batch_capacity() const noexcept { return capacity_; }
  [[nodiscard]] const SystemLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Launches issued per evaluate_range call (shard schedulers pre-size
  /// device logs with this).
  static constexpr unsigned kLaunchesPerBatch = 1;

  /// Evaluate at points.size() <= batch_capacity() points with one
  /// upload, ONE launch and one download.
  void evaluate(const std::vector<std::vector<C>>& points,
                std::vector<poly::EvalResult<S>>& results) {
    if (points.empty() || points.size() > capacity_)
      throw std::invalid_argument("FusedGpuEvaluator: bad batch size");
    results.resize(points.size());
    evaluate_range(points, 0, points.size(), std::span<poly::EvalResult<S>>(results));
  }

  /// Evaluate the `count` points starting at points[first], writing
  /// out[i] for the i-th point of the range -- the shard-facing entry
  /// point: a ShardedEvaluator hands each shard contiguous point ranges
  /// and the matching slices of the caller's result buffer, so merged
  /// results land in point-index (deterministic) order no matter which
  /// shard computed them.  One upload, ONE launch, one download; each
  /// point's arithmetic is independent of the range it rode in (one
  /// block per point), so results are bitwise identical under any
  /// chunking.
  void evaluate_range(const std::vector<std::vector<C>>& points, std::size_t first,
                      std::size_t count, std::span<poly::EvalResult<S>> out) {
    const unsigned s_n = packed_.structure.n;
    if (count == 0 || count > capacity_)
      throw std::invalid_argument("FusedGpuEvaluator: bad batch size");
    if (first > points.size() || count > points.size() - first || out.size() < count)
      throw std::invalid_argument("FusedGpuEvaluator: bad point range");
    const auto batch = static_cast<unsigned>(count);
    for (std::size_t p = first; p < first + count; ++p)
      if (points[p].size() != s_n)
        throw std::invalid_argument("FusedGpuEvaluator: point has wrong dimension");

    const std::size_t kernels_before = device_.log().kernels.size();
    const simt::TransferStats transfers_before = device_.log().transfers;

    flat_.resize(std::size_t{batch} * s_n);
    for (unsigned p = 0; p < batch; ++p)
      std::copy(points[first + p].begin(), points[first + p].end(),
                flat_.begin() + std::size_t{p} * s_n);
    device_.upload(x_, std::span<const C>(flat_));

    simt::LaunchConfig cfg{batch, options_.block_size, shared_bytes_};
    cfg.detect_races = options_.detect_races;
    (void)device_.launch(kernel_, cfg);

    host_outputs_.resize(std::size_t{batch} * layout_.num_outputs());
    device_.download(outputs_, std::span<C>(host_outputs_));

    for (unsigned p = 0; p < batch; ++p) {
      out[p].resize(s_n);
      const std::size_t base = std::size_t{p} * layout_.num_outputs();
      for (unsigned q = 0; q < s_n; ++q)
        out[p].values[q] = host_outputs_[base + layout_.output_value_index(q)];
      for (unsigned q = 0; q < s_n; ++q)
        for (unsigned v = 0; v < s_n; ++v)
          out[p].jacobian[std::size_t{q} * s_n + v] =
              host_outputs_[base + layout_.output_deriv_index(q, v)];
    }

    snapshot_log(kernels_before, transfers_before);
  }

  /// Single-point convenience: a batch of one.
  void evaluate(std::span<const C> x, poly::EvalResult<S>& out) {
    if (x.size() != packed_.structure.n)
      throw std::invalid_argument("FusedGpuEvaluator: point has wrong dimension");
    single_point_.resize(1);
    single_point_[0].assign(x.begin(), x.end());
    evaluate(single_point_, single_result_);
    out = single_result_[0];
  }

  [[nodiscard]] poly::EvalResult<S> evaluate(std::span<const C> x) {
    poly::EvalResult<S> out(dimension());
    evaluate(x, out);
    return out;
  }

  /// Kernel statistics and transfer volumes of the last evaluate() call.
  [[nodiscard]] const simt::LaunchLog& last_log() const noexcept { return last_log_; }

 private:
  void build_kernel() {
    const auto s = packed_.structure;
    const unsigned n = s.n, d = s.d, k = s.k, m = s.m;
    const std::uint64_t monomials = layout_.total_monomials();
    const std::uint64_t outs = layout_.num_outputs();
    const auto layout = layout_;
    const auto enc = options_.encoding;
    const auto x = x_;
    const auto coeffs = coeffs_;
    const auto mons = mons_;
    const auto outputs_buf = outputs_;
    const auto positions = positions_;
    const auto exponents = exponents_;

    // Shared layout offsets (bytes).
    const std::size_t svars_off = 0;
    const std::size_t powers_off = std::size_t{n} * sizeof(C);

    const auto decode = [exponents, enc](simt::ThreadContext& ctx,
                                         std::uint64_t index) -> unsigned {
      if (enc == ExponentEncoding::kChar) return ctx.load_constant(exponents, index);
      const unsigned char byte = ctx.load_constant(exponents, index / 2);
      return index % 2 == 0 ? (byte & 0x0Fu) : (byte >> 4u);
    };

    // <= 15 chars: KernelStats copies the name per launch, and an
    // SSO-sized string keeps that copy off the allocator.
    kernel_.name = "fused_eval";
    kernel_.phases = {
        // Phase 1 (kernel 1 stage one, fused): one coalesced read of the
        // point serves both the shared copy of the variables and row one
        // of the powers table.
        [x, n, d, svars_off, powers_off](simt::ThreadContext& ctx) {
          const std::size_t point = ctx.block_index();
          auto svars = ctx.template shared_array<C>(svars_off, n);
          auto powers = ctx.template shared_array<C>(powers_off, std::size_t{n} * d);
          bool worked = false;
          for (unsigned v = ctx.thread_index(); v < n; v += ctx.block_dim()) {
            worked = true;
            const C xv = ctx.load(x, point * n + v);
            svars.set(v, xv);
            powers.set(v, C(S(1.0)));  // row 0: x^0
            if (d >= 2) {
              powers.set(std::size_t{n} + v, xv);
              for (unsigned e = 2; e < d; ++e) {
                const C next = powers.get(std::size_t{e - 1} * n + v) * xv;
                ctx.op_cmul();
                powers.set(std::size_t{e} * n + v, next);
              }
            }
          }
          if (!worked) ctx.mark_inactive();
        },
        // Phase 2 (kernels 1+2 fused): each thread loops over its share
        // of the point's monomials.  The common factor is produced from
        // the shared powers table and consumed in-register -- no global
        // interchange.
        [mons, coeffs, positions, decode, layout, n, d, k, monomials, svars_off,
         powers_off](simt::ThreadContext& ctx) {
          const std::size_t point = ctx.block_index();
          auto svars = ctx.template shared_array<C>(svars_off, n);
          auto powers = ctx.template shared_array<C>(powers_off, std::size_t{n} * d);
          // Thread-private L_1..L_{k+1} strip and position cache
          // (registers/local memory, not shared -- see the
          // shared-memory note in the ctor).  Entries below k are
          // always written before they are read.
          std::array<C, 257> ell;
          std::array<unsigned, 256> pos;
          const std::size_t mons_base = point * layout.mons_size();

          bool worked = false;
          for (std::uint64_t g = ctx.thread_index(); g < monomials;
               g += ctx.block_dim()) {
            worked = true;

            for (unsigned j = 0; j < k; ++j)
              pos[j] = ctx.load_constant(positions, layout.support_index(g, j));
            const auto var = [&](unsigned j) { return svars.get(pos[j]); };

            // Common factor from the powers table: k-1 multiplications.
            C cf(S(1.0));
            for (unsigned j = 0; j < k; ++j) {
              const unsigned em1 = decode(ctx, layout.support_index(g, j));
              const C val = powers.get(std::size_t{em1} * n + pos[j]);
              if (j == 0) {
                cf = val;
              } else {
                cf = cf * val;
                ctx.op_cmul();
              }
            }

            // Speelpenning derivatives into L_1..L_k: 3k-6 for k >= 3.
            if (k == 2) {
              ell[0] = var(1);
              ell[1] = var(0);
            } else if (k >= 3) {
              ell[1] = var(0);
              for (unsigned r = 2; r < k; ++r) {
                ell[r] = ell[r - 1] * var(r - 1);
                ctx.op_cmul();
              }
              C q = var(k - 1);
              ell[k - 2] = ell[k - 2] * q;
              ctx.op_cmul();
              for (unsigned r = 1; r + 2 < k; ++r) {
                q = q * var(k - 1 - r);
                ctx.op_cmul();
                ell[k - 2 - r] = ell[k - 2 - r] * q;
                ctx.op_cmul();
              }
              ell[0] = q * var(1);
              ctx.op_cmul();
            }

            // Scale by the in-register common factor (k multiplications;
            // for k == 1 the derivative IS the factor).
            if (k == 1) {
              ell[0] = cf;
            } else {
              for (unsigned j = 0; j < k; ++j) {
                ell[j] = ell[j] * cf;
                ctx.op_cmul();
              }
            }

            // Monomial value from its last derivative (1 multiplication).
            ell[k] = ell[k - 1] * var(k - 1);
            ctx.op_cmul();

            // Coefficient products (k+1 multiplications).
            for (unsigned j = 0; j <= k; ++j) {
              const C c = ctx.load(coeffs, layout.coeff_index(j, g));
              ell[j] = ell[j] * c;
              ctx.op_cmul();
            }

            mons.store(ctx, mons_base + layout.mons_value_index(g), ell[k]);
            for (unsigned j = 0; j < k; ++j)
              mons.store(ctx, mons_base + layout.mons_deriv_index(g, pos[j]),
                         ell[j]);
          }
          if (!worked) ctx.mark_inactive();
        },
        // Phase 3 (kernel 3, fused behind the block barrier): each
        // thread sums its share of the point's outputs.
        [mons, outputs_buf, layout, m, outs](simt::ThreadContext& ctx) {
          const std::size_t point = ctx.block_index();
          const std::size_t mons_base = point * layout.mons_size();
          bool worked = false;
          for (std::uint64_t out = ctx.thread_index(); out < outs;
               out += ctx.block_dim()) {
            worked = true;
            C sum = mons.load(ctx, mons_base + layout.mons_index(out, 0));
            for (unsigned j = 1; j < m; ++j) {
              sum += mons.load(ctx, mons_base + layout.mons_index(out, j));
              ctx.op_cadd();
            }
            ctx.store(outputs_buf, point * outs + out, sum);
          }
          if (!worked) ctx.mark_inactive();
        },
    };
  }

  /// Record this call's slice of the device log for the timing model.
  void snapshot_log(std::size_t kernels_before, const simt::TransferStats& before) {
    const auto& log = device_.log();
    last_log_.kernels.assign(
        log.kernels.begin() + static_cast<std::ptrdiff_t>(kernels_before),
        log.kernels.end());
    last_log_.transfers.bytes_to_device =
        log.transfers.bytes_to_device - before.bytes_to_device;
    last_log_.transfers.bytes_from_device =
        log.transfers.bytes_from_device - before.bytes_from_device;
    last_log_.transfers.transfers_to_device =
        log.transfers.transfers_to_device - before.transfers_to_device;
    last_log_.transfers.transfers_from_device =
        log.transfers.transfers_from_device - before.transfers_from_device;
  }

  simt::Device& device_;
  Options options_;
  unsigned capacity_;
  PackedSystem packed_;
  SystemLayout layout_;

  simt::GlobalBuffer<C> x_, coeffs_, outputs_;
  InterchangeBuffer<S> mons_;
  simt::ConstantBuffer<unsigned char> positions_, exponents_;
  simt::Kernel kernel_;
  std::size_t shared_bytes_ = 0;
  std::vector<C> flat_;          ///< packed upload staging, reused
  std::vector<C> host_outputs_;  ///< download staging, reused
  std::vector<std::vector<C>> single_point_;        ///< single-point staging
  std::vector<poly::EvalResult<S>> single_result_;  ///< single-point staging
  simt::LaunchLog last_log_;
};

}  // namespace polyeval::core
