#pragma once

/// \file fused_evaluator.hpp
/// Single-launch fused evaluation pipeline.
///
/// The paper's central design argument (section 3.1) is that fusing the
/// powers computation INTO the common-factor kernel beats a separate
/// powers kernel, because the fusion avoids a global-memory round trip.
/// This evaluator applies the same argument one level up and fuses all
/// three kernels into one launch:
///
///   * one thread block owns one evaluation point and loops over all of
///     the point's monomials (a persistent-block schedule, instead of
///     the paper's one-thread-per-monomial grid);
///   * the common factor never travels through global memory -- it is
///     computed from the shared powers table and consumed in the same
///     register in which the Speelpenning derivatives are scaled,
///     eliminating the CommonFactors store+load round trip entirely;
///   * the phase barrier between the monomial loop and the summation
///     loop replaces the kernel-2/kernel-3 launch boundary, so one
///     launch (not three) covers the whole evaluation.
///
/// The cost: a block must cover a whole point, which caps per-point
/// parallelism at one block -- throughput comes from batching points
/// (grid = batch), which is exactly the workload of a path tracker
/// advancing many paths in lockstep.  The three-kernel pipeline stays
/// available (GpuEvaluator / BatchGpuEvaluator) as the ablation
/// baseline.
///
/// The system's device-resident state (constant tables, folded
/// coefficients, Mons scratch) and the kernel construction live in
/// detail::FusedSystemState / detail::build_fused_kernel so the
/// pipelined double-buffered variant (pipelined_evaluator.hpp) can
/// share them while owning two X/Outputs buffer pairs.
///
/// Steady-state evaluate() calls perform zero heap allocations: the
/// packed system, kernels, staging vectors and device buffers are all
/// built once in the constructor.  The exception is the Device launch
/// log, which grows by one entry per launch -- long-running callers
/// should clear it periodically (Device::clear_log keeps capacity).

#include <algorithm>
#include <array>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/kernels.hpp"
#include "poly/eval_result.hpp"
#include "simt/timing.hpp"
#include "tune/autotuner.hpp"

namespace polyeval::core {

/// The fused pipeline's block-geometry HEURISTIC -- since the measured
/// autotuner (tune/autotuner.hpp) landed, this is the cache-miss seed
/// (candidate zero of every tuned sweep) and the
/// `TuningMode::kHeuristic` escape hatch, not the default decision
/// maker.  Choose the block size from the system structure (n, m, k),
/// the batch size and the device's SM count.  One block owns one point,
/// so the grid IS the batch: once the batch covers the SMs, inter-block
/// parallelism hides per-thread serial depth and the narrowest block
/// (one warp) minimizes per-block overhead.  An under-full grid instead
/// widens the block, moving the idle SMs' worth of parallelism inside
/// the point: enough threads that the busier of the two per-point loops
/// (nm monomials in phase 2, n^2+n outputs in phase 3) runs only a few
/// trips per thread -- deep monomials (~5k multiplications each, large
/// k) keep a lane busy across more trips -- but never wider than the
/// narrower loop, whose surplus lanes would idle a whole phase.
[[nodiscard]] constexpr unsigned pick_block_size(unsigned n, unsigned m, unsigned k,
                                                 unsigned batch,
                                                 unsigned sm_count) noexcept {
  constexpr unsigned kWarp = 32;
  constexpr std::uint64_t kMaxBlock = 256;
  if (sm_count == 0) sm_count = 1;
  if (batch >= sm_count) return kWarp;
  const std::uint64_t monomials = std::uint64_t{n} * m;
  const std::uint64_t outputs = std::uint64_t{n} * (n + 1);
  const std::uint64_t trips = k >= 6 ? 8 : 4;
  std::uint64_t threads = (std::max(monomials, outputs) + trips - 1) / trips;
  threads = std::min({threads, std::min(monomials, outputs), kMaxBlock});
  return static_cast<unsigned>((std::max<std::uint64_t>(threads, 1) + kWarp - 1) /
                               kWarp) *
         kWarp;
}

/// The historical 4-argument form, pinned to the paper's C2050 (14
/// SMs).  Callers that know their device pass its SM count instead --
/// the evaluators feed spec().multiprocessors, so a heterogeneous
/// registry no longer tunes every shard for a Fermi.
[[nodiscard]] constexpr unsigned pick_block_size(unsigned n, unsigned m, unsigned k,
                                                 unsigned batch) noexcept {
  return pick_block_size(n, m, k, batch, 14u);  // DeviceSpec::tesla_c2050
}

namespace detail {

/// Device-resident state every fused-pipeline variant shares: the
/// packed system's constant tables, the coefficient portions folded in
/// the working precision, the per-point Mons scratch (written and read
/// inside one launch, so one copy serves any number of in-flight point
/// buffers) and the shared-memory budget.  The X and Outputs buffers
/// stay with the evaluator: the plain evaluator owns one pair, the
/// pipelined evaluator double-buffers two.
template <prec::RealScalar S>
struct FusedSystemState {
  using C = cplx::Complex<S>;

  PackedSystem packed;
  SystemLayout layout;
  simt::ConstantBuffer<unsigned char> positions, exponents;
  simt::GlobalBuffer<C> coeffs;
  InterchangeBuffer<S> mons;
  std::size_t shared_bytes = 0;

  FusedSystemState(simt::Device& device, const poly::PolynomialSystem& system,
                   unsigned batch_capacity, ExponentEncoding encoding,
                   InterchangeLayout interchange)
      : packed(pack_system(system)), layout(packed.structure) {
    const auto s = packed.structure;

    const auto encoded = encode_exponents(encoding, packed.exponents);
    positions =
        device.alloc_constant<unsigned char>(packed.positions.size(), "Positions");
    exponents = device.alloc_constant<unsigned char>(encoded.size(), "Exponents");
    device.upload_constant(positions,
                           std::span<const unsigned char>(packed.positions));
    device.upload_constant(exponents, std::span<const unsigned char>(encoded));

    coeffs = device.alloc_global<C>(layout.coeffs_size(), "Coeffs");
    mons.allocate(device, std::size_t{batch_capacity} * layout.mons_size(),
                  "Mons[batch]", interchange);

    // exponent factors folded in the working precision, as in GpuEvaluator
    std::vector<C> folded(packed.coeffs.size());
    for (std::uint64_t t = 0; t < layout.total_monomials(); ++t) {
      const auto raw = C::from_double(packed.coeffs[layout.coeff_index(s.k, t)]);
      for (unsigned j = 0; j < s.k; ++j) {
        const double a = packed.exponents[layout.support_index(t, j)] + 1.0;
        folded[layout.coeff_index(j, t)] = raw * prec::ScalarTraits<S>::from_double(a);
      }
      folded[layout.coeff_index(s.k, t)] = raw;
    }
    device.upload(coeffs, std::span<const C>(folded));
    mons.fill_zero(device);

    // Shared memory: the point (n) and the powers table (n*d).  Unlike
    // the paper's kernel 2, the per-thread L_1..L_{k+1} strip lives in
    // registers/local memory: it is thread-private, so shared memory
    // buys it nothing but bank pressure, and keeping it local lifts the
    // shared-capacity ceiling on the block size.
    shared_bytes = std::size_t{s.n} * (1 + s.d) * sizeof(C);
  }
};

/// Phase 1 shared by the full and values-only fused kernels: one
/// coalesced read of the block's point serves both the shared copy of
/// the variables and the powers table (row 0 ones, row e holding x^e).
/// One lambda serves both kernels, so the tables the values kernel's
/// bitwise contract depends on cannot drift from the full kernel's.
template <prec::RealScalar S>
[[nodiscard]] auto make_fused_point_phase(simt::GlobalBuffer<cplx::Complex<S>> x,
                                          unsigned n, unsigned d,
                                          std::size_t svars_off,
                                          std::size_t powers_off) {
  using C = cplx::Complex<S>;
  return [x, n, d, svars_off, powers_off](simt::ThreadContext& ctx) {
    const std::size_t point = ctx.block_index();
    auto svars = ctx.template shared_array<C>(svars_off, n);
    auto powers = ctx.template shared_array<C>(powers_off, std::size_t{n} * d);
    bool worked = false;
    for (unsigned v = ctx.thread_index(); v < n; v += ctx.block_dim()) {
      worked = true;
      const C xv = ctx.load(x, point * n + v);
      svars.set(v, xv);
      powers.set(v, C(S(1.0)));  // row 0: x^0
      if (d >= 2) {
        powers.set(std::size_t{n} + v, xv);
        for (unsigned e = 2; e < d; ++e) {
          const C next = powers.get(std::size_t{e - 1} * n + v) * xv;
          ctx.op_cmul();
          powers.set(std::size_t{e} * n + v, next);
        }
      }
    }
    if (!worked) ctx.mark_inactive();
  };
}

/// Summation phase shared by the full and values-only fused kernels
/// (kernel 3 behind the block barrier): each thread sums its share of
/// the point's first `out_count` outputs -- n^2+n for the full kernel,
/// n (the value rows only) for the values kernel -- into
/// out_buf[point * out_count + out].  One lambda, one accumulation
/// order, so the two kernels' sums cannot drift.
template <prec::RealScalar S>
[[nodiscard]] auto make_fused_summation_phase(InterchangeBuffer<S> mons,
                                              simt::GlobalBuffer<cplx::Complex<S>> out_buf,
                                              SystemLayout layout, unsigned m,
                                              std::uint64_t out_count) {
  using C = cplx::Complex<S>;
  return [mons, out_buf, layout, m, out_count](simt::ThreadContext& ctx) {
    const std::size_t point = ctx.block_index();
    const std::size_t mons_base = point * layout.mons_size();
    bool worked = false;
    for (std::uint64_t out = ctx.thread_index(); out < out_count;
         out += ctx.block_dim()) {
      worked = true;
      C sum = mons.load(ctx, mons_base + layout.mons_index(out, 0));
      for (unsigned j = 1; j < m; ++j) {
        sum += mons.load(ctx, mons_base + layout.mons_index(out, j));
        ctx.op_cadd();
      }
      ctx.store(out_buf, point * out_count + out, sum);
    }
    if (!worked) ctx.mark_inactive();
  };
}

/// Build the fused single-launch kernel over the given point/output
/// buffer pair.  The pipelined evaluator calls this twice (one kernel
/// per double-buffer slot); the buffers are cheap handles captured by
/// value in the phase closures.
template <prec::RealScalar S>
[[nodiscard]] simt::Kernel build_fused_kernel(const FusedSystemState<S>& sys,
                                              ExponentEncoding enc,
                                              simt::GlobalBuffer<cplx::Complex<S>> x,
                                              simt::GlobalBuffer<cplx::Complex<S>> outputs_buf) {
  using C = cplx::Complex<S>;
  const auto s = sys.packed.structure;
  const unsigned n = s.n, d = s.d, k = s.k, m = s.m;
  const std::uint64_t monomials = sys.layout.total_monomials();
  const std::uint64_t outs = sys.layout.num_outputs();
  const auto layout = sys.layout;
  const auto coeffs = sys.coeffs;
  const auto mons = sys.mons;
  const auto positions = sys.positions;
  const auto exponents = sys.exponents;

  // Shared layout offsets (bytes).
  const std::size_t svars_off = 0;
  const std::size_t powers_off = std::size_t{n} * sizeof(C);

  const auto decode = [exponents, enc](simt::ThreadContext& ctx,
                                       std::uint64_t index) -> unsigned {
    if (enc == ExponentEncoding::kChar) return ctx.load_constant(exponents, index);
    const unsigned char byte = ctx.load_constant(exponents, index / 2);
    return index % 2 == 0 ? (byte & 0x0Fu) : (byte >> 4u);
  };

  simt::Kernel kernel;
  // <= 15 chars: KernelStats copies the name per launch, and an
  // SSO-sized string keeps that copy off the allocator.
  kernel.name = "fused_eval";
  kernel.phases = {
      // Phase 1 (kernel 1 stage one, fused): the shared point/powers
      // load.
      make_fused_point_phase<S>(x, n, d, svars_off, powers_off),
      // Phase 2 (kernels 1+2 fused): each thread loops over its share
      // of the point's monomials.  The common factor is produced from
      // the shared powers table and consumed in-register -- no global
      // interchange.
      [mons, coeffs, positions, decode, layout, n, d, k, monomials, svars_off,
       powers_off](simt::ThreadContext& ctx) {
        const std::size_t point = ctx.block_index();
        auto svars = ctx.template shared_array<C>(svars_off, n);
        auto powers = ctx.template shared_array<C>(powers_off, std::size_t{n} * d);
        // Thread-private L_1..L_{k+1} strip and position cache
        // (registers/local memory, not shared -- see the
        // shared-memory note in FusedSystemState).  Entries below k
        // are always written before they are read.
        std::array<C, 257> ell;
        std::array<unsigned, 256> pos;
        const std::size_t mons_base = point * layout.mons_size();

        bool worked = false;
        for (std::uint64_t g = ctx.thread_index(); g < monomials;
             g += ctx.block_dim()) {
          worked = true;

          for (unsigned j = 0; j < k; ++j)
            pos[j] = ctx.load_constant(positions, layout.support_index(g, j));
          const auto var = [&](unsigned j) { return svars.get(pos[j]); };

          // Common factor from the powers table: k-1 multiplications.
          C cf(S(1.0));
          for (unsigned j = 0; j < k; ++j) {
            const unsigned em1 = decode(ctx, layout.support_index(g, j));
            const C val = powers.get(std::size_t{em1} * n + pos[j]);
            if (j == 0) {
              cf = val;
            } else {
              cf = cf * val;
              ctx.op_cmul();
            }
          }

          // Speelpenning derivatives into L_1..L_k: 3k-6 for k >= 3.
          if (k == 2) {
            ell[0] = var(1);
            ell[1] = var(0);
          } else if (k >= 3) {
            ell[1] = var(0);
            for (unsigned r = 2; r < k; ++r) {
              ell[r] = ell[r - 1] * var(r - 1);
              ctx.op_cmul();
            }
            C q = var(k - 1);
            ell[k - 2] = ell[k - 2] * q;
            ctx.op_cmul();
            for (unsigned r = 1; r + 2 < k; ++r) {
              q = q * var(k - 1 - r);
              ctx.op_cmul();
              ell[k - 2 - r] = ell[k - 2 - r] * q;
              ctx.op_cmul();
            }
            ell[0] = q * var(1);
            ctx.op_cmul();
          }

          // Scale by the in-register common factor (k multiplications;
          // for k == 1 the derivative IS the factor).
          if (k == 1) {
            ell[0] = cf;
          } else {
            for (unsigned j = 0; j < k; ++j) {
              ell[j] = ell[j] * cf;
              ctx.op_cmul();
            }
          }

          // Monomial value from its last derivative (1 multiplication).
          ell[k] = ell[k - 1] * var(k - 1);
          ctx.op_cmul();

          // Coefficient products (k+1 multiplications).
          for (unsigned j = 0; j <= k; ++j) {
            const C c = ctx.load(coeffs, layout.coeff_index(j, g));
            ell[j] = ell[j] * c;
            ctx.op_cmul();
          }

          mons.store(ctx, mons_base + layout.mons_value_index(g), ell[k]);
          for (unsigned j = 0; j < k; ++j)
            mons.store(ctx, mons_base + layout.mons_deriv_index(g, pos[j]),
                       ell[j]);
        }
        if (!worked) ctx.mark_inactive();
      },
      // Phase 3 (kernel 3, fused behind the block barrier): all n^2+n
      // outputs.
      make_fused_summation_phase<S>(mons, outputs_buf, layout, m, outs),
  };
  return kernel;
}

/// Build the fused VALUES-ONLY kernel over the given point/values buffer
/// pair: one launch computes f(x) for every point of the batch, skipping
/// all Jacobian work -- the residual probes and convergence checks of a
/// tracker corrector, which would otherwise pay for n^2 derivative sums
/// they discard.
///
/// Bitwise contract: every value is computed with EXACTLY the full
/// kernel's operation order -- common factor from the powers table, the
/// forward prefix product var(0)..var(k-2) (the full kernel's L_{k-1}
/// before suffix scaling), then * cf, * var(k-1), * value coefficient --
/// so values-only results equal the values of a full evaluation bit for
/// bit, and a tracker may mix the two paths freely.  Only the value
/// slots of Mons are written; the summation phase reads only the n value
/// rows (outputs [0, n)), never the stale derivative slots.
template <prec::RealScalar S>
[[nodiscard]] simt::Kernel build_fused_values_kernel(
    const FusedSystemState<S>& sys, ExponentEncoding enc,
    simt::GlobalBuffer<cplx::Complex<S>> x,
    simt::GlobalBuffer<cplx::Complex<S>> values_buf) {
  using C = cplx::Complex<S>;
  const auto s = sys.packed.structure;
  const unsigned n = s.n, d = s.d, k = s.k, m = s.m;
  const std::uint64_t monomials = sys.layout.total_monomials();
  const auto layout = sys.layout;
  const auto coeffs = sys.coeffs;
  const auto mons = sys.mons;
  const auto positions = sys.positions;
  const auto exponents = sys.exponents;

  const std::size_t svars_off = 0;
  const std::size_t powers_off = std::size_t{n} * sizeof(C);

  const auto decode = [exponents, enc](simt::ThreadContext& ctx,
                                       std::uint64_t index) -> unsigned {
    if (enc == ExponentEncoding::kChar) return ctx.load_constant(exponents, index);
    const unsigned char byte = ctx.load_constant(exponents, index / 2);
    return index % 2 == 0 ? (byte & 0x0Fu) : (byte >> 4u);
  };

  simt::Kernel kernel;
  kernel.name = "fused_values";
  kernel.phases = {
      // Phase 1: the full kernel's shared point/powers load, the SAME
      // lambda (the common factor still needs the powers table).
      make_fused_point_phase<S>(x, n, d, svars_off, powers_off),
      // Phase 2: one monomial VALUE per loop trip -- 2k multiplications
      // (k-1 for the common factor, k-2 prefix, cf, last variable,
      // coefficient) instead of the full kernel's 5k-4 -- written into
      // the same Mons value slot the full kernel uses.
      [mons, coeffs, positions, decode, layout, n, k, monomials, svars_off,
       powers_off](simt::ThreadContext& ctx) {
        const std::size_t point = ctx.block_index();
        auto svars = ctx.template shared_array<C>(svars_off, n);
        auto powers = ctx.template shared_array<C>(
            powers_off, std::size_t{n} * layout.structure().d);
        std::array<unsigned, 256> pos;
        const std::size_t mons_base = point * layout.mons_size();

        bool worked = false;
        for (std::uint64_t g = ctx.thread_index(); g < monomials;
             g += ctx.block_dim()) {
          worked = true;

          for (unsigned j = 0; j < k; ++j)
            pos[j] = ctx.load_constant(positions, layout.support_index(g, j));
          const auto var = [&](unsigned j) { return svars.get(pos[j]); };

          // Common factor: the full kernel's loop, verbatim.
          C cf(S(1.0));
          for (unsigned j = 0; j < k; ++j) {
            const unsigned em1 = decode(ctx, layout.support_index(g, j));
            const C val = powers.get(std::size_t{em1} * n + pos[j]);
            if (j == 0) {
              cf = val;
            } else {
              cf = cf * val;
              ctx.op_cmul();
            }
          }

          // The full kernel's value: ((var(0)..var(k-2)) * cf) * var(k-1)
          // -- its last Speelpenning derivative scaled by the factor,
          // times the last variable.  k == 1 degenerates to cf * var(0).
          C p = cf;
          if (k >= 2) {
            p = var(0);
            for (unsigned r = 2; r < k; ++r) {
              p = p * var(r - 1);
              ctx.op_cmul();
            }
            p = p * cf;
            ctx.op_cmul();
          }
          p = p * var(k - 1);
          ctx.op_cmul();

          // Value coefficient (portion k), as in the full kernel.
          p = p * ctx.load(coeffs, layout.coeff_index(k, g));
          ctx.op_cmul();

          mons.store(ctx, mons_base + layout.mons_value_index(g), p);
        }
        if (!worked) ctx.mark_inactive();
      },
      // Phase 3: sum only the n value rows (not the n^2 Jacobian rows)
      // -- the SAME summation lambda as the full kernel, truncated.
      make_fused_summation_phase<S>(mons, values_buf, layout, m, n),
  };
  return kernel;
}

}  // namespace detail

template <prec::RealScalar S>
class FusedGpuEvaluator {
  using C = cplx::Complex<S>;

 public:
  struct Options {
    /// Threads per block; 0 (the default) resolves through the measured
    /// autotuner (or, under TuningMode::kHeuristic, to
    /// pick_block_size(n, m, k, batch_capacity, SMs) -- one warp once
    /// the batch fills the SMs, wider blocks for under-full grids).
    unsigned block_size = 0;
    ExponentEncoding encoding = ExponentEncoding::kChar;
    /// Element layout of the Mons interchange buffer (the only
    /// interchange left once the common factor stays in registers);
    /// nullopt (the default) resolves with the block size: measured
    /// tuning picks per workload, the heuristic pins AoS.  Results are
    /// bitwise identical under either layout.
    std::optional<InterchangeLayout> interchange;
    /// How the auto knobs above resolve.  Measured tuning may change
    /// TIMING only -- results are pinned bitwise identical across the
    /// modes (tests/test_tune.cpp).  Tuned resolution applies when both
    /// geometry knobs are auto; pinning either one pins the other to
    /// the heuristic seed (a half-pinned key would poison the cache).
    tune::TuningMode tuning = tune::TuningMode::kMeasured;
    /// The race journals are a debugging aid (the cuda-memcheck
    /// analogue); the production fast path skips the per-access
    /// bookkeeping.  Parity tests run with detection on.
    bool detect_races = false;
  };

  /// Packs the system and sizes the device arrays for `batch_capacity`
  /// simultaneous points.
  FusedGpuEvaluator(simt::Device& device, const poly::PolynomialSystem& system,
                    unsigned batch_capacity, Options options = {})
      : device_(device),
        options_(resolve_options(device, system, batch_capacity, options)),
        capacity_(batch_capacity),
        sys_(device, system, batch_capacity, options_.encoding,
             options_.interchange.value_or(InterchangeLayout::kAoS)) {
    if (capacity_ == 0)
      throw std::invalid_argument("FusedGpuEvaluator: zero batch capacity");
    const auto s = sys_.packed.structure;

    x_ = device_.alloc_global<C>(std::size_t{capacity_} * s.n, "X[batch]");
    outputs_ = device_.alloc_global<C>(std::size_t{capacity_} * sys_.layout.num_outputs(),
                                       "Outputs[batch]");
    values_ = device_.alloc_global<C>(std::size_t{capacity_} * s.n, "Values[batch]");
    kernel_ = detail::build_fused_kernel<S>(sys_, options_.encoding, x_, outputs_);
    values_kernel_ =
        detail::build_fused_values_kernel<S>(sys_, options_.encoding, x_, values_);

    flat_.reserve(std::size_t{capacity_} * s.n);
    host_outputs_.reserve(std::size_t{capacity_} * sys_.layout.num_outputs());
  }

  [[nodiscard]] unsigned dimension() const noexcept { return sys_.packed.structure.n; }
  [[nodiscard]] unsigned batch_capacity() const noexcept { return capacity_; }
  [[nodiscard]] const SystemLayout& layout() const noexcept { return sys_.layout; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Launches issued per evaluate_range call (shard schedulers pre-size
  /// device logs with this).
  static constexpr unsigned kLaunchesPerBatch = 1;
  [[nodiscard]] unsigned launches_per_batch() const noexcept {
    return kLaunchesPerBatch;
  }

  /// Evaluate at points.size() <= batch_capacity() points with one
  /// upload, ONE launch and one download.
  void evaluate(const std::vector<std::vector<C>>& points,
                std::vector<poly::EvalResult<S>>& results) {
    if (points.empty() || points.size() > capacity_)
      throw std::invalid_argument("FusedGpuEvaluator: bad batch size");
    results.resize(points.size());
    evaluate_range(points, 0, points.size(), std::span<poly::EvalResult<S>>(results));
  }

  /// Evaluate the `count` points starting at points[first], writing
  /// out[i] for the i-th point of the range -- the shard-facing entry
  /// point: a ShardedEvaluator hands each shard contiguous point ranges
  /// and the matching slices of the caller's result buffer, so merged
  /// results land in point-index (deterministic) order no matter which
  /// shard computed them.  One upload, ONE launch, one download; each
  /// point's arithmetic is independent of the range it rode in (one
  /// block per point), so results are bitwise identical under any
  /// chunking.
  void evaluate_range(const std::vector<std::vector<C>>& points, std::size_t first,
                      std::size_t count, std::span<poly::EvalResult<S>> out) {
    const std::size_t kernels_before = device_.log().kernels.size();
    const simt::TransferStats transfers_before = device_.log().transfers;
    const unsigned batch = stage_range(points, first, count, out.size(), count);

    simt::LaunchConfig cfg{batch, options_.block_size, sys_.shared_bytes};
    cfg.detect_races = options_.detect_races;
    (void)device_.launch(kernel_, cfg);

    host_outputs_.resize(std::size_t{batch} * sys_.layout.num_outputs());
    device_.download(outputs_, std::span<C>(host_outputs_));

    for (unsigned p = 0; p < batch; ++p)
      detail::unpack_outputs<S>(sys_.layout, std::span<const C>(host_outputs_),
                                std::size_t{p} * sys_.layout.num_outputs(), out[p]);

    detail::snapshot_device_log(device_.log(), kernels_before, transfers_before,
                                last_log_);
  }

  /// Values-only counterpart of evaluate_range: f at the `count` points
  /// starting at points[first] in ONE launch of the fused values kernel,
  /// out[i*n + q] receiving value q of the i-th point of the range.  No
  /// Jacobian work runs and only batch*n values ride the PCIe download
  /// -- the corrector-residual fast path -- while every value is bitwise
  /// identical to a full evaluation's (build_fused_values_kernel).
  void evaluate_values_range(const std::vector<std::vector<C>>& points,
                             std::size_t first, std::size_t count, std::span<C> out) {
    const unsigned s_n = sys_.packed.structure.n;
    const std::size_t kernels_before = device_.log().kernels.size();
    const simt::TransferStats transfers_before = device_.log().transfers;
    const unsigned batch = stage_range(points, first, count, out.size(), count * s_n);

    simt::LaunchConfig cfg{batch, options_.block_size, sys_.shared_bytes};
    cfg.detect_races = options_.detect_races;
    (void)device_.launch(values_kernel_, cfg);

    device_.download(values_, out.subspan(0, std::size_t{batch} * s_n));

    detail::snapshot_device_log(device_.log(), kernels_before, transfers_before,
                                last_log_);
  }

  /// Single-point values-only convenience: a batch of one.
  void evaluate_values(std::span<const C> x, std::span<C> values) {
    if (x.size() != sys_.packed.structure.n)
      throw std::invalid_argument("FusedGpuEvaluator: point has wrong dimension");
    single_point_.resize(1);
    single_point_[0].assign(x.begin(), x.end());
    evaluate_values_range(single_point_, 0, 1, values);
  }

  /// Single-point convenience: a batch of one.
  void evaluate(std::span<const C> x, poly::EvalResult<S>& out) {
    if (x.size() != sys_.packed.structure.n)
      throw std::invalid_argument("FusedGpuEvaluator: point has wrong dimension");
    single_point_.resize(1);
    single_point_[0].assign(x.begin(), x.end());
    evaluate(single_point_, single_result_);
    out = single_result_[0];
  }

  [[nodiscard]] poly::EvalResult<S> evaluate(std::span<const C> x) {
    poly::EvalResult<S> out(dimension());
    evaluate(x, out);
    return out;
  }

  /// Kernel statistics and transfer volumes of the last evaluate() call.
  [[nodiscard]] const simt::LaunchLog& last_log() const noexcept { return last_log_; }

 private:
  /// Resolve the auto geometry knobs (block_size == 0, interchange ==
  /// nullopt) before any member consumes them.  Measured mode (both
  /// knobs auto): route through the global Autotuner -- on a cache miss
  /// each candidate geometry is probed on a SCRATCH device (same spec)
  /// with a full-capacity zero-point batch (values cannot move a memory
  /// access, so zeros measure exactly the steady state's statistics)
  /// and scored by estimate_log_us under the scalar's cost factor.
  /// Heuristic mode, or any knob pinned: the missing knobs take the
  /// pick_block_size seed and AoS.  Candidate probes construct
  /// themselves with kHeuristic and explicit geometry, so resolution
  /// can never recurse.
  [[nodiscard]] static Options resolve_options(simt::Device& device,
                                               const poly::PolynomialSystem& system,
                                               unsigned capacity, Options options) {
    const bool auto_block = options.block_size == 0;
    const bool auto_layout = !options.interchange.has_value();
    if ((!auto_block && !auto_layout) || capacity == 0) {
      if (auto_layout) options.interchange = InterchangeLayout::kAoS;
      return options;
    }
    const auto st = pack_system(system).structure;
    const unsigned sms = device.spec().multiprocessors;
    const unsigned seed = pick_block_size(st.n, st.m, st.k, capacity, sms);
    if (options.tuning == tune::TuningMode::kHeuristic || !auto_block ||
        !auto_layout) {
      if (auto_block) options.block_size = seed;
      if (auto_layout) options.interchange = InterchangeLayout::kAoS;
      return options;
    }

    const unsigned width = static_cast<unsigned>(sizeof(S) / sizeof(double));
    const auto key = tune::TuneKey::make(tune::TunedSchedule::kFused, st, capacity,
                                         0, width, device.spec());
    const unsigned blocks[] = {32, 64, 128, 256};
    const unsigned streams[] = {2};
    const auto candidates = tune::standard_candidates(seed, blocks, streams);
    const auto decision = tune::Autotuner::global().tune(
        key, std::span<const tune::TuneCandidate>(candidates),
        [&](const tune::TuneCandidate& cand) -> std::optional<tune::ProbeOutcome> {
          simt::Device probe_device(device.spec());
          Options copt = options;
          copt.block_size = cand.block_size;
          copt.interchange = cand.interchange;
          copt.tuning = tune::TuningMode::kHeuristic;
          FusedGpuEvaluator probe(probe_device, system, capacity, copt);
          std::vector<std::vector<C>> pts(capacity, std::vector<C>(st.n, C{}));
          std::vector<poly::EvalResult<S>> res(capacity);
          probe.evaluate_range(pts, 0, capacity,
                               std::span<poly::EvalResult<S>>(res));
          simt::GpuCostModel cost;
          cost.scalar_cost_factor = simt::scalar_cost_factor_for_width(width);
          tune::ProbeOutcome outcome;
          outcome.modeled_us =
              simt::estimate_log_us(probe.last_log(), probe_device.spec(), cost);
          outcome.log = probe.last_log();
          return outcome;
        });
    options.block_size = decision.choice.block_size;
    options.interchange = decision.choice.interchange;
    return options;
  }

  /// Shared head of the two range entry points: validate the range
  /// against the batch capacity and the caller's output span (sized
  /// `out_needed`), pack the points into the staging buffer and upload
  /// X.  Throws before any device work; returns the batch size.
  unsigned stage_range(const std::vector<std::vector<C>>& points, std::size_t first,
                       std::size_t count, std::size_t out_size,
                       std::size_t out_needed) {
    const unsigned s_n = sys_.packed.structure.n;
    if (count == 0 || count > capacity_)
      throw std::invalid_argument("FusedGpuEvaluator: bad batch size");
    if (first > points.size() || count > points.size() - first ||
        out_size < out_needed)
      throw std::invalid_argument("FusedGpuEvaluator: bad point range");
    const auto batch = static_cast<unsigned>(count);
    for (std::size_t p = first; p < first + count; ++p)
      if (points[p].size() != s_n)
        throw std::invalid_argument("FusedGpuEvaluator: point has wrong dimension");

    flat_.resize(std::size_t{batch} * s_n);
    for (unsigned p = 0; p < batch; ++p)
      std::copy(points[first + p].begin(), points[first + p].end(),
                flat_.begin() + std::size_t{p} * s_n);
    device_.upload(x_, std::span<const C>(flat_));
    return batch;
  }

  simt::Device& device_;
  Options options_;
  unsigned capacity_;
  detail::FusedSystemState<S> sys_;

  simt::GlobalBuffer<C> x_, outputs_, values_;
  simt::Kernel kernel_, values_kernel_;
  std::vector<C> flat_;          ///< packed upload staging, reused
  std::vector<C> host_outputs_;  ///< download staging, reused
  std::vector<std::vector<C>> single_point_;        ///< single-point staging
  std::vector<poly::EvalResult<S>> single_result_;  ///< single-point staging
  simt::LaunchLog last_log_;
};

}  // namespace polyeval::core
