#include "core/encoding.hpp"

#include <stdexcept>

namespace polyeval::core {

std::uint64_t encoded_exponent_bytes(ExponentEncoding enc, std::uint64_t entries) {
  return enc == ExponentEncoding::kChar ? entries : (entries + 1) / 2;
}

std::uint64_t constant_bytes_required(ExponentEncoding enc,
                                      std::uint64_t total_monomials, unsigned k) {
  const std::uint64_t entries = total_monomials * k;
  return entries /* positions */ + encoded_exponent_bytes(enc, entries);
}

std::uint64_t max_monomials_for_budget(ExponentEncoding enc, std::uint64_t budget_bytes,
                                       unsigned k) {
  // positions: k bytes per monomial; exponents: k or k/2 bytes.
  // Solve per-monomial cost conservatively via direct search on the exact
  // formula (handles the odd-entry rounding of the packed encoding).
  std::uint64_t lo = 0, hi = budget_bytes;  // cost >= 1 byte per monomial
  while (lo < hi) {
    const std::uint64_t mid = (lo + hi + 1) / 2;
    if (constant_bytes_required(enc, mid, k) <= budget_bytes)
      lo = mid;
    else
      hi = mid - 1;
  }
  return lo;
}

std::vector<unsigned char> encode_exponents(
    ExponentEncoding enc, const std::vector<unsigned char>& exponents_minus_one) {
  if (enc == ExponentEncoding::kChar) return exponents_minus_one;
  std::vector<unsigned char> packed((exponents_minus_one.size() + 1) / 2, 0);
  for (std::size_t i = 0; i < exponents_minus_one.size(); ++i) {
    const unsigned char e = exponents_minus_one[i];
    if (e > 0x0F)
      throw std::invalid_argument(
          "encode_exponents: 4-bit packing requires exponents <= 16");
    if (i % 2 == 0)
      packed[i / 2] = static_cast<unsigned char>(packed[i / 2] | e);
    else
      packed[i / 2] = static_cast<unsigned char>(packed[i / 2] | (e << 4));
  }
  return packed;
}

}  // namespace polyeval::core
