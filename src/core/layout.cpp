#include "core/layout.hpp"

#include <stdexcept>

namespace polyeval::core {

PackedSystem pack_system(const poly::PolynomialSystem& system) {
  const auto structure = system.uniform_structure();
  if (!structure)
    throw std::invalid_argument(
        "pack_system: the massively parallel pipeline requires the uniform "
        "(n, m, k, d) structure of section 2");
  const auto s = *structure;
  if (s.n > 256)
    throw std::invalid_argument("pack_system: unsigned char positions require n <= 256");
  if (s.d > 256)
    throw std::invalid_argument("pack_system: unsigned char exponents require d <= 256");

  SystemLayout layout(s);
  PackedSystem packed;
  packed.structure = s;
  packed.positions.resize(layout.total_monomials() * s.k);
  packed.exponents.resize(layout.total_monomials() * s.k);
  packed.coeffs.resize(layout.coeffs_size());

  for (unsigned p = 0; p < s.n; ++p) {
    const auto& monos = system.polynomial(p).monomials();
    for (unsigned j = 0; j < s.m; ++j) {
      const auto t = layout.sm_index(p, j);
      const auto& mono = monos[j];
      const auto& factors = mono.factors();
      for (unsigned v = 0; v < s.k; ++v) {
        packed.positions[layout.support_index(t, v)] =
            static_cast<unsigned char>(factors[v].var);
        packed.exponents[layout.support_index(t, v)] =
            static_cast<unsigned char>(factors[v].exp - 1);
        packed.coeffs[layout.coeff_index(v, t)] =
            mono.coefficient() * static_cast<double>(factors[v].exp);
      }
      packed.coeffs[layout.coeff_index(s.k, t)] = mono.coefficient();
    }
  }
  return packed;
}

}  // namespace polyeval::core
