#pragma once

/// \file weighted_schedule.hpp
/// Deterministic proportional splitting for heterogeneity-aware
/// placement.
///
/// Both weighted schedulers -- ShardedEvaluator's kWeightedStatic chunk
/// quotas and SolveService's slot filling -- need the same primitive:
/// split `total` indivisible work items over shards proportionally to
/// throughput weights, optionally capped per shard, with every tie
/// broken the same way on every run.  Rounding proportional shares is
/// where nondeterminism usually sneaks in; this helper floors every
/// share and hands the remainder out one item at a time to the shard
/// that would finish its grown quota soonest -- argmin of
/// (quota+1)/weight, lowest index on ties -- so equal inputs always
/// produce equal splits and each leftover item lands where it extends
/// the modeled makespan least.
///
/// Placement is the ONLY thing a split changes.  Each work item's
/// arithmetic is identical on every shard, and merges are by item
/// index, so any split -- balanced, weighted, or adversarial -- yields
/// bitwise-identical results; the tests pin this across all three
/// schedules on mixed fleets.

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace polyeval::core {

/// Splits `total` items over `weights.size()` shards proportionally to
/// `weights`, capping shard s at `caps[s]` when `caps` is non-empty.
/// Weights must be positive; caps, when given, must match weights in
/// size.  If the caps sum to less than `total`, every shard is filled
/// to its cap and the remainder is simply not assigned (the caller's
/// queue keeps it) -- the returned quotas never exceed the caps.
/// In-place variant for zero-alloc steady states: `quota` is resized to
/// the shard count (no allocation once its capacity has been paid) and
/// overwritten.
inline void weighted_split_into(std::size_t total, std::span<const double> weights,
                                std::span<const std::size_t> caps,
                                std::vector<std::size_t>& quota) {
  const std::size_t shards = weights.size();
  quota.assign(shards, 0);
  if (shards == 0 || total == 0) return;

  const auto cap = [&](std::size_t s) {
    return caps.empty() ? std::numeric_limits<std::size_t>::max() : caps[s];
  };

  double wsum = 0.0;
  for (double w : weights) wsum += w;

  // Floor of every proportional share, capped.
  std::size_t assigned = 0;
  for (std::size_t s = 0; s < shards && assigned < total; ++s) {
    const double share = static_cast<double>(total) * (weights[s] / wsum);
    std::size_t q = static_cast<std::size_t>(share);  // floor: share >= 0
    q = q < cap(s) ? q : cap(s);
    const std::size_t left = total - assigned;
    q = q < left ? q : left;
    quota[s] = q;
    assigned += q;
  }

  // Flooring strands at most shards-1 items (more under caps): hand the
  // remainder out one at a time to the shard whose grown quota would
  // finish soonest -- argmin (quota+1)/weight with headroom, lowest
  // index on ties.  Handing it to the heaviest shard instead looks
  // natural but overloads the fast device whenever its floored share is
  // already the larger one; minimizing the modeled finish time is what
  // keeps the split makespan-optimal.  Deterministic, and terminates as
  // soon as no shard has headroom.
  while (assigned < total) {
    std::size_t pick = shards;
    double pick_finish = 0.0;
    for (std::size_t s = 0; s < shards; ++s) {
      if (quota[s] >= cap(s)) continue;
      const double finish = static_cast<double>(quota[s] + 1) / weights[s];
      if (pick == shards || finish < pick_finish) {
        pick = s;
        pick_finish = finish;
      }
    }
    if (pick == shards) break;  // every shard at cap; caller keeps the rest
    ++quota[pick];
    ++assigned;
  }
}

[[nodiscard]] inline std::vector<std::size_t> weighted_split(
    std::size_t total, std::span<const double> weights,
    std::span<const std::size_t> caps = {}) {
  std::vector<std::size_t> quota;
  weighted_split_into(total, weights, caps, quota);
  return quota;
}

}  // namespace polyeval::core
