#pragma once

/// \file batch_evaluator.hpp
/// Extension beyond the paper: evaluate ONE system at MANY points per
/// kernel launch.  The kernel-breakdown bench shows ~70-85% of the
/// modeled per-evaluation time is the fixed floor (three launches plus
/// the PCIe round trip); path trackers that can batch predictor points
/// or track many paths in lockstep amortize that floor.  Grids grow by
/// the batch factor: block index = point * blocks_per_point + chunk.

#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/kernels.hpp"
#include "poly/eval_result.hpp"
#include "simt/timing.hpp"
#include "tune/autotuner.hpp"

namespace polyeval::core {

template <prec::RealScalar S>
class BatchGpuEvaluator {
  using C = cplx::Complex<S>;

 public:
  struct Options {
    /// 0 = auto: measured tuning (or the paper's one-warp 32-thread
    /// seed in kHeuristic mode).  Nonzero pins it.
    unsigned block_size = 0;
    ExponentEncoding encoding = ExponentEncoding::kChar;
    /// Element layout of the CommonFactors/Mons interchange buffers;
    /// results are bitwise identical under either (see layout.hpp).
    /// nullopt = auto (tuned, or AoS in kHeuristic mode).
    std::optional<InterchangeLayout> interchange;
    /// Tuned resolution applies only when both geometry knobs are auto;
    /// pinning either one pins the other to the heuristic seed (a
    /// half-pinned key would poison the cache).
    tune::TuningMode tuning = tune::TuningMode::kMeasured;
  };

  /// Packs the system and sizes the device arrays for `batch_capacity`
  /// simultaneous points.
  BatchGpuEvaluator(simt::Device& device, const poly::PolynomialSystem& system,
                    unsigned batch_capacity, Options options = {})
      : device_(device),
        options_(options),
        capacity_(batch_capacity),
        packed_(pack_system(system)),
        layout_(packed_.structure) {
    if (capacity_ == 0)
      throw std::invalid_argument("BatchGpuEvaluator: zero batch capacity");
    resolve_options(system);
    const auto s = packed_.structure;

    const auto encoded = encode_exponents(options_.encoding, packed_.exponents);
    positions_ =
        device_.alloc_constant<unsigned char>(packed_.positions.size(), "Positions");
    exponents_ = device_.alloc_constant<unsigned char>(encoded.size(), "Exponents");
    device_.upload_constant(positions_,
                            std::span<const unsigned char>(packed_.positions));
    device_.upload_constant(exponents_, std::span<const unsigned char>(encoded));

    x_ = device_.alloc_global<C>(std::size_t{capacity_} * s.n, "X[batch]");
    coeffs_ = device_.alloc_global<C>(layout_.coeffs_size(), "Coeffs");
    common_factors_.allocate(device_,
                             std::size_t{capacity_} * layout_.total_monomials(),
                             "CommonFactors[batch]", *options_.interchange);
    mons_.allocate(device_, std::size_t{capacity_} * layout_.mons_size(),
                   "Mons[batch]", *options_.interchange);
    outputs_ = device_.alloc_global<C>(std::size_t{capacity_} * layout_.num_outputs(),
                                       "Outputs[batch]");

    // exponent factors folded in the working precision, as in GpuEvaluator
    std::vector<C> coeffs(packed_.coeffs.size());
    for (std::uint64_t t = 0; t < layout_.total_monomials(); ++t) {
      const auto raw = C::from_double(packed_.coeffs[layout_.coeff_index(s.k, t)]);
      for (unsigned j = 0; j < s.k; ++j) {
        const double a = packed_.exponents[layout_.support_index(t, j)] + 1.0;
        coeffs[layout_.coeff_index(j, t)] = raw * prec::ScalarTraits<S>::from_double(a);
      }
      coeffs[layout_.coeff_index(s.k, t)] = raw;
    }
    device_.upload(coeffs_, std::span<const C>(coeffs));
    mons_.fill_zero(device_);

    // Persistent host-side scratch: steady-state evaluate() calls reuse
    // these and perform zero heap allocations.
    flat_.reserve(std::size_t{capacity_} * s.n);
    host_outputs_.reserve(std::size_t{capacity_} * layout_.num_outputs());

    blocks_per_point_ = static_cast<unsigned>(
        (layout_.total_monomials() + options_.block_size - 1) / options_.block_size);
    out_blocks_per_point_ = static_cast<unsigned>(
        (layout_.num_outputs() + options_.block_size - 1) / options_.block_size);
    build_kernels();
  }

  [[nodiscard]] unsigned dimension() const noexcept { return packed_.structure.n; }
  [[nodiscard]] unsigned batch_capacity() const noexcept { return capacity_; }
  [[nodiscard]] const SystemLayout& layout() const noexcept { return layout_; }
  /// Resolved options: block_size is nonzero and interchange engaged.
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Launches issued per evaluate_range call (shard schedulers pre-size
  /// device logs with this).
  static constexpr unsigned kLaunchesPerBatch = 3;
  [[nodiscard]] unsigned launches_per_batch() const noexcept {
    return kLaunchesPerBatch;
  }

  /// Evaluate at points.size() <= batch_capacity() points with one
  /// upload, three launches and one download.
  void evaluate(const std::vector<std::vector<C>>& points,
                std::vector<poly::EvalResult<S>>& results) {
    if (points.empty() || points.size() > capacity_)
      throw std::invalid_argument("BatchGpuEvaluator: bad batch size");
    results.resize(points.size());
    evaluate_range(points, 0, points.size(), std::span<poly::EvalResult<S>>(results));
  }

  /// Evaluate the `count` points starting at points[first], writing
  /// out[i] for the i-th point of the range: the shard-facing staging
  /// entry a ShardedEvaluator drives (see fused_evaluator.hpp for the
  /// range/merge contract).  Grids cover only the range, so a chunk of
  /// c points costs c * blocks_per_point blocks, and each point's
  /// arithmetic is independent of its chunk -- bitwise identical under
  /// any chunking.
  void evaluate_range(const std::vector<std::vector<C>>& points, std::size_t first,
                      std::size_t count, std::span<poly::EvalResult<S>> out) {
    const unsigned s_n = packed_.structure.n;
    if (count == 0 || count > capacity_)
      throw std::invalid_argument("BatchGpuEvaluator: bad batch size");
    if (first > points.size() || count > points.size() - first || out.size() < count)
      throw std::invalid_argument("BatchGpuEvaluator: bad point range");
    const auto batch = static_cast<unsigned>(count);
    for (std::size_t p = first; p < first + count; ++p)
      if (points[p].size() != s_n)
        throw std::invalid_argument("BatchGpuEvaluator: point has wrong dimension");

    const std::size_t kernels_before = device_.log().kernels.size();
    const simt::TransferStats transfers_before = device_.log().transfers;

    flat_.resize(std::size_t{batch} * s_n);
    for (unsigned p = 0; p < batch; ++p)
      std::copy(points[first + p].begin(), points[first + p].end(),
                flat_.begin() + std::size_t{p} * s_n);
    device_.upload(x_, std::span<const C>(flat_));

    (void)device_.launch(kernel1_,
                         {batch * blocks_per_point_, options_.block_size, shared1_});
    (void)device_.launch(kernel2_,
                         {batch * blocks_per_point_, options_.block_size, shared2_});
    (void)device_.launch(kernel3_,
                         {batch * out_blocks_per_point_, options_.block_size, 0});

    host_outputs_.resize(std::size_t{batch} * layout_.num_outputs());
    device_.download(outputs_, std::span<C>(host_outputs_));

    for (unsigned p = 0; p < batch; ++p)
      detail::unpack_outputs<S>(layout_, std::span<const C>(host_outputs_),
                                std::size_t{p} * layout_.num_outputs(), out[p]);

    detail::snapshot_device_log(device_.log(), kernels_before, transfers_before,
                                last_log_);
  }

  [[nodiscard]] const simt::LaunchLog& last_log() const noexcept { return last_log_; }

 private:
  /// Resolve the auto knobs before any allocation consumes them.  The
  /// heuristic seed is the paper's one-warp block; measured mode probes
  /// block sizes x interchange layouts on a scratch device with a
  /// full-capacity zero-point batch (values cannot move an access
  /// pattern).  Candidates whose kernel-2 shared tile overflows the
  /// per-block limit throw LaunchError and read as infeasible.
  void resolve_options(const poly::PolynomialSystem& system) {
    const bool auto_block = options_.block_size == 0;
    const bool auto_layout = !options_.interchange.has_value();
    if (!auto_block && !auto_layout) return;
    constexpr unsigned kSeedBlock = 32;  // the paper's block size
    if (options_.tuning == tune::TuningMode::kHeuristic || !auto_block ||
        !auto_layout) {
      if (auto_block) options_.block_size = kSeedBlock;
      if (auto_layout) options_.interchange = InterchangeLayout::kAoS;
      return;
    }
    const auto st = packed_.structure;
    const unsigned width = static_cast<unsigned>(sizeof(S) / sizeof(double));
    const auto key = tune::TuneKey::make(tune::TunedSchedule::kBatch, st,
                                         capacity_, 0, width, device_.spec());
    const unsigned blocks[] = {32, 64, 128};
    const unsigned streams[] = {2};
    const auto candidates = tune::standard_candidates(kSeedBlock, blocks, streams);
    const auto decision = tune::Autotuner::global().tune(
        key, std::span<const tune::TuneCandidate>(candidates),
        [&](const tune::TuneCandidate& cand) -> std::optional<tune::ProbeOutcome> {
          simt::Device probe_device(device_.spec());
          Options copt = options_;
          copt.block_size = cand.block_size;
          copt.interchange = cand.interchange;
          copt.tuning = tune::TuningMode::kHeuristic;
          try {
            BatchGpuEvaluator probe(probe_device, system, capacity_, copt);
            std::vector<std::vector<C>> pts(capacity_, std::vector<C>(st.n, C{}));
            std::vector<poly::EvalResult<S>> res(capacity_);
            probe.evaluate_range(pts, 0, capacity_,
                                 std::span<poly::EvalResult<S>>(res));
            simt::GpuCostModel cost;
            cost.scalar_cost_factor = simt::scalar_cost_factor_for_width(width);
            tune::ProbeOutcome outcome;
            outcome.modeled_us = simt::estimate_log_us(probe.last_log(),
                                                       probe_device.spec(), cost);
            outcome.log = probe.last_log();
            return outcome;
          } catch (const simt::LaunchError&) {
            return std::nullopt;  // shared tile scales with block size
          }
        });
    options_.block_size = decision.choice.block_size;
    options_.interchange = decision.choice.interchange;
  }

  void build_kernels() {
    const auto s = packed_.structure;
    const unsigned n = s.n, d = s.d, k = s.k;
    const std::uint64_t monomials = layout_.total_monomials();
    const auto layout = layout_;
    const auto enc = options_.encoding;
    const unsigned bpp = blocks_per_point_;
    const unsigned obpp = out_blocks_per_point_;
    const auto x = x_;
    const auto coeffs = coeffs_;
    const auto cf_buf = common_factors_;
    const auto mons = mons_;
    const auto outputs_buf = outputs_;
    const auto positions = positions_;
    const auto exponents = exponents_;

    shared1_ = std::size_t{n} * d * sizeof(C);
    shared2_ = (std::size_t{n} + std::size_t{options_.block_size} * (k + 1)) * sizeof(C);

    const auto decode = [exponents, enc](simt::ThreadContext& ctx,
                                         std::uint64_t index) -> unsigned {
      if (enc == ExponentEncoding::kChar) return ctx.load_constant(exponents, index);
      const unsigned char byte = ctx.load_constant(exponents, index / 2);
      return index % 2 == 0 ? (byte & 0x0Fu) : (byte >> 4u);
    };

    // Kernel names stay <= 15 chars: KernelStats copies them per launch
    // and SSO-sized strings keep those copies off the allocator (the
    // zero-alloc steady-state guarantee).
    kernel1_.name = "batch_cfactors";
    kernel1_.phases = {
        [x, n, d, bpp](simt::ThreadContext& ctx) {
          const std::size_t point = ctx.block_index() / bpp;
          auto powers = ctx.template shared_array<C>(0, std::size_t{n} * d);
          bool worked = false;
          for (unsigned v = ctx.thread_index(); v < n; v += ctx.block_dim()) {
            worked = true;
            powers.set(v, C(S(1.0)));
            if (d >= 2) {
              const C xv = ctx.load(x, point * n + v);
              powers.set(std::size_t{n} + v, xv);
              for (unsigned e = 2; e < d; ++e) {
                const C next = powers.get(std::size_t{e - 1} * n + v) * xv;
                ctx.op_cmul();
                powers.set(std::size_t{e} * n + v, next);
              }
            }
          }
          if (!worked) ctx.mark_inactive();
        },
        [cf_buf, positions, decode, layout, n, d, k, monomials,
         bpp](simt::ThreadContext& ctx) {
          const std::size_t point = ctx.block_index() / bpp;
          const std::uint64_t g =
              std::uint64_t{ctx.block_index() % bpp} * ctx.block_dim() +
              ctx.thread_index();
          if (g >= monomials) {
            ctx.mark_inactive();
            return;
          }
          auto powers = ctx.template shared_array<C>(0, std::size_t{n} * d);
          C cf(S(1.0));
          for (unsigned j = 0; j < k; ++j) {
            const auto idx = layout.support_index(g, j);
            const unsigned pos = ctx.load_constant(positions, idx);
            const unsigned em1 = decode(ctx, idx);
            const C val = powers.get(std::size_t{em1} * n + pos);
            if (j == 0) {
              cf = val;
            } else {
              cf = cf * val;
              ctx.op_cmul();
            }
          }
          cf_buf.store(ctx, point * monomials + g, cf);
        },
    };

    kernel2_.name = "batch_speel";
    kernel2_.phases = {
        [x, n, bpp](simt::ThreadContext& ctx) {
          const std::size_t point = ctx.block_index() / bpp;
          auto svars = ctx.template shared_array<C>(0, n);
          bool worked = false;
          for (unsigned v = ctx.thread_index(); v < n; v += ctx.block_dim()) {
            worked = true;
            svars.set(v, ctx.load(x, point * n + v));
          }
          if (!worked) ctx.mark_inactive();
        },
        [cf_buf, coeffs, mons, positions, decode, layout, n, k, monomials,
         bpp](simt::ThreadContext& ctx) {
          const std::size_t point = ctx.block_index() / bpp;
          const std::uint64_t g =
              std::uint64_t{ctx.block_index() % bpp} * ctx.block_dim() +
              ctx.thread_index();
          if (g >= monomials) {
            ctx.mark_inactive();
            return;
          }
          auto svars = ctx.template shared_array<C>(0, n);
          auto ell = ctx.template shared_array<C>(
              std::size_t{n} * sizeof(C), std::size_t{ctx.block_dim()} * (k + 1));
          const std::size_t base = std::size_t{ctx.thread_index()} * (k + 1);
          const std::size_t mons_base = point * layout.mons_size();

          std::array<unsigned, 256> pos{};
          for (unsigned j = 0; j < k; ++j)
            pos[j] = ctx.load_constant(positions, layout.support_index(g, j));
          const auto var = [&](unsigned j) { return svars.get(pos[j]); };

          if (k == 2) {
            ell.set(base + 0, var(1));
            ell.set(base + 1, var(0));
          } else if (k >= 3) {
            ell.set(base + 1, var(0));
            for (unsigned r = 2; r < k; ++r) {
              const C fwd = ell.get(base + r - 1) * var(r - 1);
              ctx.op_cmul();
              ell.set(base + r, fwd);
            }
            C q = var(k - 1);
            {
              const C v2 = ell.get(base + k - 2) * q;
              ctx.op_cmul();
              ell.set(base + k - 2, v2);
            }
            for (unsigned r = 1; r + 2 < k; ++r) {
              q = q * var(k - 1 - r);
              ctx.op_cmul();
              const C v2 = ell.get(base + k - 2 - r) * q;
              ctx.op_cmul();
              ell.set(base + k - 2 - r, v2);
            }
            const C first = q * var(1);
            ctx.op_cmul();
            ell.set(base + 0, first);
          }

          const C cf = cf_buf.load(ctx, point * monomials + g);
          if (k == 1) {
            ell.set(base + 0, cf);
          } else {
            for (unsigned j = 0; j < k; ++j) {
              const C v2 = ell.get(base + j) * cf;
              ctx.op_cmul();
              ell.set(base + j, v2);
            }
          }
          {
            const C value = ell.get(base + k - 1) * var(k - 1);
            ctx.op_cmul();
            ell.set(base + k, value);
          }
          for (unsigned j = 0; j <= k; ++j) {
            const C c = ctx.load(coeffs, layout.coeff_index(j, g));
            const C v2 = ell.get(base + j) * c;
            ctx.op_cmul();
            ell.set(base + j, v2);
          }

          mons.store(ctx, mons_base + layout.mons_value_index(g), ell.get(base + k));
          for (unsigned j = 0; j < k; ++j)
            mons.store(ctx, mons_base + layout.mons_deriv_index(g, pos[j]),
                       ell.get(base + j));
        },
    };

    kernel3_.name = "batch_sum";
    const unsigned m = s.m;
    const std::uint64_t outs = layout_.num_outputs();
    kernel3_.phases = {
        [mons, outputs_buf, layout, m, outs, obpp](simt::ThreadContext& ctx) {
          const std::size_t point = ctx.block_index() / obpp;
          const std::uint64_t out =
              std::uint64_t{ctx.block_index() % obpp} * ctx.block_dim() +
              ctx.thread_index();
          if (out >= outs) {
            ctx.mark_inactive();
            return;
          }
          const std::size_t mons_base = point * layout.mons_size();
          C sum = mons.load(ctx, mons_base + layout.mons_index(out, 0));
          for (unsigned j = 1; j < m; ++j) {
            sum += mons.load(ctx, mons_base + layout.mons_index(out, j));
            ctx.op_cadd();
          }
          ctx.store(outputs_buf, point * outs + out, sum);
        },
    };
  }

  simt::Device& device_;
  Options options_;
  unsigned capacity_;
  PackedSystem packed_;
  SystemLayout layout_;

  simt::GlobalBuffer<C> x_, coeffs_, outputs_;
  InterchangeBuffer<S> common_factors_, mons_;
  simt::ConstantBuffer<unsigned char> positions_, exponents_;
  simt::Kernel kernel1_, kernel2_, kernel3_;
  std::size_t shared1_ = 0, shared2_ = 0;
  unsigned blocks_per_point_ = 0, out_blocks_per_point_ = 0;
  std::vector<C> flat_;          ///< packed upload staging, reused
  std::vector<C> host_outputs_;  ///< download staging, reused
  simt::LaunchLog last_log_;
};

}  // namespace polyeval::core
