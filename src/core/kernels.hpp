#pragma once

/// \file kernels.hpp
/// The paper's three kernels, expressed for the SIMT simulator.
///
/// Kernel 1 (section 3.1) -- common factors.  Phase one: the block's
/// threads tabulate powers x_v^0 .. x_v^{d-1} of every variable into the
/// shared Powers array ((e, v) indexing so warp writes spread over
/// banks).  Phase two: one thread per monomial multiplies k precomputed
/// powers into the common factor x_{i1}^{a1-1}...x_{ik}^{ak-1}, writing
/// coalesced to global memory.  Every block recomputes the powers -- the
/// paper argues this beats a separate powers kernel round-tripping
/// through global memory.
///
/// Kernel 2 (section 3.2) -- one thread per monomial evaluates the
/// Speelpenning product's k derivatives in 3k-6 multiplications
/// (forward prefix products in shared locations L, backward suffix
/// product in register Q), multiplies by the common factor (k), recovers
/// the monomial value (1), folds in the coefficients (k+1): 5k-4 total.
/// Writes land scattered in the transposed Mons array -- the price of
/// kernel 3's coalesced reads.
///
/// Kernel 3 (section 3.3) -- one thread per output polynomial (n^2+n of
/// them) adds exactly m terms, structural zeros included, keeping every
/// warp lane on the same path; reads coalesce by construction.

#include <array>
#include <span>

#include "core/encoding.hpp"
#include "core/layout.hpp"
#include "poly/eval_result.hpp"
#include "simt/device.hpp"

namespace polyeval::core {

/// A kernel-to-kernel interchange buffer that can live in either the
/// paper's AoS layout (Complex<S> elements) or the vectorization-friendly
/// SoA layout (a re plane followed by an im plane), selected at
/// allocation time by the layout.hpp-level InterchangeLayout switch.
/// Device-side access goes through load/store so the engine's coalescing
/// instrumentation sees the actual per-layout memory instructions.
template <prec::RealScalar S>
struct InterchangeBuffer {
  using C = cplx::Complex<S>;

  InterchangeLayout layout = InterchangeLayout::kAoS;
  std::size_t count = 0;
  simt::GlobalBuffer<C> aos;
  simt::GlobalBuffer<S> planes;  ///< 2*count scalars when layout == kSoA

  void allocate(simt::Device& device, std::size_t n, std::string name,
                InterchangeLayout lay) {
    layout = lay;
    count = n;
    if (lay == InterchangeLayout::kAoS)
      aos = device.alloc_global<C>(n, std::move(name));
    else
      planes = device.alloc_global<S>(2 * n, std::move(name));
  }

  /// Device-side fill (cudaMemset analogue); used for the structural
  /// zeros of Mons.
  void fill_zero(simt::Device& device) const {
    if (layout == InterchangeLayout::kAoS)
      device.fill(aos, C{});
    else
      device.fill(planes, S(0.0));
  }

  [[nodiscard]] C load(simt::ThreadContext& ctx, std::size_t i) const {
    if (layout == InterchangeLayout::kAoS) return ctx.load(aos, i);
    const S re = ctx.load(planes, i);
    const S im = ctx.load(planes, count + i);
    return C(re, im);
  }

  void store(simt::ThreadContext& ctx, std::size_t i, const C& v) const {
    if (layout == InterchangeLayout::kAoS) {
      ctx.store(aos, i, v);
      return;
    }
    ctx.store(planes, i, v.re());
    ctx.store(planes, count + i, v.im());
  }

  /// Host-side read bypassing instrumentation (tests, debug dumps).
  [[nodiscard]] C host_read(std::size_t i) const {
    if (layout == InterchangeLayout::kAoS) return aos.raw()[i];
    return C(planes.raw()[i], planes.raw()[count + i]);
  }
};

/// Device-resident state of a packed system.
template <prec::RealScalar S>
struct DeviceBuffers {
  using C = cplx::Complex<S>;
  simt::GlobalBuffer<C> x;               ///< the evaluation point (n)
  simt::GlobalBuffer<C> coeffs;          ///< portion-major Coeffs ((k+1)nm)
  InterchangeBuffer<S> common_factors;   ///< kernel 1 -> kernel 2 (nm)
  InterchangeBuffer<S> mons;             ///< kernel 2 -> kernel 3 ((n^2+n)m)
  simt::GlobalBuffer<C> outputs;         ///< kernel 3 results (n^2+n)
  simt::GlobalBuffer<C> powers;          ///< global powers table (n*d), only
                                         ///< for the separate-kernel ablation
  simt::ConstantBuffer<unsigned char> positions;
  simt::ConstantBuffer<unsigned char> exponents;  ///< encoded, see encoding.hpp
};

namespace detail {

/// Exponent-minus-one of support entry `index`, via the constant cache.
template <prec::RealScalar S>
[[nodiscard]] inline unsigned load_exponent(simt::ThreadContext& ctx,
                                            const DeviceBuffers<S>& bufs,
                                            ExponentEncoding enc, std::uint64_t index) {
  if (enc == ExponentEncoding::kChar) return ctx.load_constant(bufs.exponents, index);
  const unsigned char byte = ctx.load_constant(bufs.exponents, index / 2);
  return index % 2 == 0 ? (byte & 0x0Fu) : (byte >> 4u);
}

}  // namespace detail

/// Kernel 1: powers table + common factors.
/// Shared memory: Powers[d rows][n vars] of Complex<S>, row e holding
/// x^e (row 0 is ones so exponent-one factors keep the warp uniform).
template <prec::RealScalar S>
[[nodiscard]] simt::Kernel make_common_factor_kernel(const DeviceBuffers<S>& bufs,
                                                     const SystemLayout& layout,
                                                     ExponentEncoding enc) {
  using C = cplx::Complex<S>;
  const auto s = layout.structure();
  const unsigned n = s.n, d = s.d, k = s.k;
  const std::uint64_t monomials = layout.total_monomials();

  simt::Kernel kernel;
  kernel.name = "common_factors";

  // Phase one: tabulate powers (strided over variables when n exceeds
  // the block size).
  kernel.phases.push_back([bufs, n, d](simt::ThreadContext& ctx) {
    auto powers = ctx.template shared_array<C>(0, std::size_t{n} * d);
    bool worked = false;
    for (unsigned v = ctx.thread_index(); v < n; v += ctx.block_dim()) {
      worked = true;
      powers.set(v, C(S(1.0)));  // row 0: x^0
      if (d >= 2) {
        const C xv = ctx.load(bufs.x, v);
        powers.set(std::size_t{n} + v, xv);
        for (unsigned e = 2; e < d; ++e) {
          const C next = powers.get(std::size_t{e - 1} * n + v) * xv;
          ctx.op_cmul();
          powers.set(std::size_t{e} * n + v, next);
        }
      }
    }
    if (!worked) ctx.mark_inactive();
  });

  // Phase two: one common factor per thread, k-1 multiplications.
  kernel.phases.push_back([bufs, layout, enc, n, d, k, monomials](simt::ThreadContext& ctx) {
    const std::uint64_t g = ctx.global_thread_index();
    if (g >= monomials) {
      ctx.mark_inactive();
      return;
    }
    auto powers = ctx.template shared_array<C>(0, std::size_t{n} * d);
    C cf(S(1.0));
    for (unsigned j = 0; j < k; ++j) {
      const auto idx = layout.support_index(g, j);
      const unsigned pos = ctx.load_constant(bufs.positions, idx);
      const unsigned em1 = detail::load_exponent(ctx, bufs, enc, idx);
      const C val = powers.get(std::size_t{em1} * n + pos);
      if (j == 0) {
        cf = val;
      } else {
        cf = cf * val;
        ctx.op_cmul();
      }
    }
    bufs.common_factors.store(ctx, g, cf);  // coalesced: thread g -> slot g
  });

  return kernel;
}

/// Ablation of section 3.1's design discussion: instead of every block
/// recomputing the powers in shared memory, tabulate them ONCE in a
/// dedicated kernel that writes global memory...
template <prec::RealScalar S>
[[nodiscard]] simt::Kernel make_powers_kernel(const DeviceBuffers<S>& bufs,
                                              const SystemLayout& layout) {
  using C = cplx::Complex<S>;
  const auto s = layout.structure();
  const unsigned n = s.n, d = s.d;

  simt::Kernel kernel;
  kernel.name = "powers_global";
  kernel.phases.push_back([bufs, n, d](simt::ThreadContext& ctx) {
    bool worked = false;
    for (std::size_t v = ctx.global_thread_index(); v < n;
         v += std::size_t{ctx.grid_dim()} * ctx.block_dim()) {
      worked = true;
      ctx.store(bufs.powers, v, C(S(1.0)));  // row 0: x^0, coalesced
      if (d >= 2) {
        const C xv = ctx.load(bufs.x, v);
        ctx.store(bufs.powers, std::size_t{n} + v, xv);
        C cur = xv;
        for (unsigned e = 2; e < d; ++e) {
          cur = cur * xv;
          ctx.op_cmul();
          ctx.store(bufs.powers, std::size_t{e} * n + v, cur);
        }
      }
    }
    if (!worked) ctx.mark_inactive();
  });
  return kernel;
}

/// ...and have the common-factor kernel read the powers back from global
/// memory (scattered within each warp, since lanes index different
/// variables and exponents).  The extra kernel launch plus this traffic
/// is exactly the cost the paper's argument weighs against the per-block
/// recomputation.
template <prec::RealScalar S>
[[nodiscard]] simt::Kernel make_common_factor_from_global_kernel(
    const DeviceBuffers<S>& bufs, const SystemLayout& layout, ExponentEncoding enc) {
  using C = cplx::Complex<S>;
  const auto s = layout.structure();
  const unsigned n = s.n, k = s.k;
  const std::uint64_t monomials = layout.total_monomials();

  simt::Kernel kernel;
  kernel.name = "common_factors_global";
  kernel.phases.push_back([bufs, layout, enc, n, k, monomials](simt::ThreadContext& ctx) {
    const std::uint64_t g = ctx.global_thread_index();
    if (g >= monomials) {
      ctx.mark_inactive();
      return;
    }
    C cf(S(1.0));
    for (unsigned j = 0; j < k; ++j) {
      const auto idx = layout.support_index(g, j);
      const unsigned pos = ctx.load_constant(bufs.positions, idx);
      const unsigned em1 = detail::load_exponent(ctx, bufs, enc, idx);
      const C val = ctx.load(bufs.powers, std::size_t{em1} * n + pos);
      if (j == 0) {
        cf = val;
      } else {
        cf = cf * val;
        ctx.op_cmul();
      }
    }
    bufs.common_factors.store(ctx, g, cf);
  });
  return kernel;
}

/// Kernel 2: Speelpenning evaluation + differentiation + coefficients.
/// Shared memory: the n variable values, then B*(k+1) locations
/// L_1..L_{k+1} (one strip per thread).
template <prec::RealScalar S>
[[nodiscard]] simt::Kernel make_speelpenning_kernel(const DeviceBuffers<S>& bufs,
                                                    const SystemLayout& layout,
                                                    ExponentEncoding enc) {
  using C = cplx::Complex<S>;
  const auto s = layout.structure();
  const unsigned n = s.n, k = s.k;
  const std::uint64_t monomials = layout.total_monomials();

  simt::Kernel kernel;
  kernel.name = "speelpenning";

  // Phase one: cooperative coalesced load of the point into shared
  // memory ("we would need to access global memory only once by all
  // threads of a block simultaneously", section 3.2).
  kernel.phases.push_back([bufs, n](simt::ThreadContext& ctx) {
    auto svars = ctx.template shared_array<C>(0, n);
    bool worked = false;
    for (unsigned v = ctx.thread_index(); v < n; v += ctx.block_dim()) {
      worked = true;
      svars.set(v, ctx.load(bufs.x, v));
    }
    if (!worked) ctx.mark_inactive();
  });

  // Phase two: one monomial per thread, 5k-4 multiplications.
  kernel.phases.push_back([bufs, layout, enc, n, k, monomials](simt::ThreadContext& ctx) {
    const std::uint64_t g = ctx.global_thread_index();
    if (g >= monomials) {
      ctx.mark_inactive();
      return;
    }
    auto svars = ctx.template shared_array<C>(0, n);
    auto ell = ctx.template shared_array<C>(std::size_t{n} * sizeof(C),
                                            std::size_t{ctx.block_dim()} * (k + 1));
    const std::size_t base = std::size_t{ctx.thread_index()} * (k + 1);

    // Cache the k variable positions in registers; one constant read each.
    std::array<unsigned, 256> pos{};
    for (unsigned j = 0; j < k; ++j)
      pos[j] = ctx.load_constant(bufs.positions, layout.support_index(g, j));
    const auto var = [&](unsigned j) { return svars.get(pos[j]); };

    // Derivatives of the Speelpenning product into L_1..L_k (slots
    // base+0 .. base+k-1): 3k-6 multiplications for k >= 3.
    if (k == 2) {
      ell.set(base + 0, var(1));
      ell.set(base + 1, var(0));
    } else if (k >= 3) {
      // forward prefix products: L_{r+1} = L_r * v_r
      ell.set(base + 1, var(0));
      for (unsigned r = 2; r < k; ++r) {
        const C fwd = ell.get(base + r - 1) * var(r - 1);
        ctx.op_cmul();
        ell.set(base + r, fwd);
      }
      // backward suffix product in the register Q
      C q = var(k - 1);
      {
        const C v2 = ell.get(base + k - 2) * q;
        ctx.op_cmul();
        ell.set(base + k - 2, v2);
      }
      for (unsigned r = 1; r + 2 < k; ++r) {
        q = q * var(k - 1 - r);
        ctx.op_cmul();
        const C v2 = ell.get(base + k - 2 - r) * q;
        ctx.op_cmul();
        ell.set(base + k - 2 - r, v2);
      }
      const C first = q * var(1);
      ctx.op_cmul();
      ell.set(base + 0, first);
    }

    // Monomial derivatives: common factor times product derivatives
    // (k multiplications; for k == 1 the derivative IS the factor).
    const C cf = bufs.common_factors.load(ctx, g);
    if (k == 1) {
      ell.set(base + 0, cf);
    } else {
      for (unsigned j = 0; j < k; ++j) {
        const C v2 = ell.get(base + j) * cf;
        ctx.op_cmul();
        ell.set(base + j, v2);
      }
    }

    // Monomial value from its last derivative (1 multiplication).
    {
      const C value = ell.get(base + k - 1) * var(k - 1);
      ctx.op_cmul();
      ell.set(base + k, value);
    }

    // Coefficient products (k+1 multiplications); derivative portions
    // carry the folded exponent factors.
    for (unsigned j = 0; j <= k; ++j) {
      const C c = ctx.load(bufs.coeffs, layout.coeff_index(j, g));
      const C v2 = ell.get(base + j) * c;
      ctx.op_cmul();
      ell.set(base + j, v2);
    }

    // Output: scattered writes into the transposed Mons array (the
    // paper's accepted tradeoff; coalesced under kOutputMajor ablation
    // only for the value row).
    bufs.mons.store(ctx, layout.mons_value_index(g), ell.get(base + k));
    for (unsigned j = 0; j < k; ++j)
      bufs.mons.store(ctx, layout.mons_deriv_index(g, pos[j]), ell.get(base + j));
  });

  return kernel;
}

/// Values-only variant of kernel 2: when a tracker only needs h(x, t)
/// (step-acceptance residuals, bisection probes), the Jacobian work can
/// be skipped.  One thread per monomial computes
/// coeff * common_factor * x_{i1}...x_{ik} in k+1 multiplications and
/// writes the value slot of Mons; the derivative slots keep whatever the
/// last full evaluation left there, so this kernel pairs with the
/// values-only summation below, which reads only the value rows.
template <prec::RealScalar S>
[[nodiscard]] simt::Kernel make_values_kernel(const DeviceBuffers<S>& bufs,
                                              const SystemLayout& layout) {
  using C = cplx::Complex<S>;
  const auto s = layout.structure();
  const unsigned n = s.n, k = s.k;
  const std::uint64_t monomials = layout.total_monomials();

  simt::Kernel kernel;
  kernel.name = "values_only";
  kernel.phases.push_back([bufs, n](simt::ThreadContext& ctx) {
    auto svars = ctx.template shared_array<C>(0, n);
    bool worked = false;
    for (unsigned v = ctx.thread_index(); v < n; v += ctx.block_dim()) {
      worked = true;
      svars.set(v, ctx.load(bufs.x, v));
    }
    if (!worked) ctx.mark_inactive();
  });
  kernel.phases.push_back([bufs, layout, n, k, monomials](simt::ThreadContext& ctx) {
    const std::uint64_t g = ctx.global_thread_index();
    if (g >= monomials) {
      ctx.mark_inactive();
      return;
    }
    auto svars = ctx.template shared_array<C>(0, n);
    // Speelpenning product (no derivatives): k-1 multiplications.
    C product = svars.get(ctx.load_constant(bufs.positions, layout.support_index(g, 0)));
    for (unsigned j = 1; j < k; ++j) {
      product =
          product *
          svars.get(ctx.load_constant(bufs.positions, layout.support_index(g, j)));
      ctx.op_cmul();
    }
    // times the common factor and the value coefficient: 2 more.
    product = product * bufs.common_factors.load(ctx, g);
    ctx.op_cmul();
    product = product * ctx.load(bufs.coeffs, layout.coeff_index(k, g));
    ctx.op_cmul();
    bufs.mons.store(ctx, layout.mons_value_index(g), product);
  });
  return kernel;
}

/// Values-only summation: only the n system polynomials (not the n^2
/// Jacobian rows) are accumulated.
template <prec::RealScalar S>
[[nodiscard]] simt::Kernel make_values_summation_kernel(const DeviceBuffers<S>& bufs,
                                                        const SystemLayout& layout) {
  using C = cplx::Complex<S>;
  const unsigned m = layout.structure().m;
  const unsigned n = layout.structure().n;

  simt::Kernel kernel;
  kernel.name = "values_summation";
  kernel.phases.push_back([bufs, layout, m, n](simt::ThreadContext& ctx) {
    const std::uint64_t out = ctx.global_thread_index();
    if (out >= n) {
      ctx.mark_inactive();
      return;
    }
    C sum = bufs.mons.load(ctx, layout.mons_index(out, 0));
    for (unsigned j = 1; j < m; ++j) {
      sum += bufs.mons.load(ctx, layout.mons_index(out, j));
      ctx.op_cadd();
    }
    ctx.store(bufs.outputs, out, sum);
  });
  return kernel;
}

/// Kernel 3: one thread per output polynomial sums exactly m terms.
template <prec::RealScalar S>
[[nodiscard]] simt::Kernel make_summation_kernel(const DeviceBuffers<S>& bufs,
                                                 const SystemLayout& layout) {
  using C = cplx::Complex<S>;
  const unsigned m = layout.structure().m;
  const std::uint64_t outputs = layout.num_outputs();

  simt::Kernel kernel;
  kernel.name = "summation";
  kernel.phases.push_back([bufs, layout, m, outputs](simt::ThreadContext& ctx) {
    const std::uint64_t out = ctx.global_thread_index();
    if (out >= outputs) {
      ctx.mark_inactive();
      return;
    }
    C sum = bufs.mons.load(ctx, layout.mons_index(out, 0));
    for (unsigned j = 1; j < m; ++j) {
      sum += bufs.mons.load(ctx, layout.mons_index(out, j));
      ctx.op_cadd();
    }
    ctx.store(bufs.outputs, out, sum);
  });
  return kernel;
}

namespace detail {

/// Unpack one point's device output vector (values then Jacobian
/// columns, layout.hpp order) into an EvalResult -- the host half of
/// the download shared by every evaluator variant.
template <prec::RealScalar S>
void unpack_outputs(const SystemLayout& layout,
                    std::span<const cplx::Complex<S>> host_outputs,
                    std::size_t base, poly::EvalResult<S>& out) {
  const unsigned n = layout.structure().n;
  out.resize(n);
  for (unsigned q = 0; q < n; ++q)
    out.values[q] = host_outputs[base + layout.output_value_index(q)];
  for (unsigned q = 0; q < n; ++q)
    for (unsigned v = 0; v < n; ++v)
      out.jacobian[std::size_t{q} * n + v] =
          host_outputs[base + layout.output_deriv_index(q, v)];
}

/// Record one call's slice of the device log (kernels appended since
/// `kernels_before`, transfers accumulated since `before`) into
/// `last_log` for the timing model -- every evaluator's last_log()
/// bookkeeping, in one place.
inline void snapshot_device_log(const simt::LaunchLog& log, std::size_t kernels_before,
                                const simt::TransferStats& before,
                                simt::LaunchLog& last_log) {
  last_log.kernels.assign(
      log.kernels.begin() + static_cast<std::ptrdiff_t>(kernels_before),
      log.kernels.end());
  last_log.transfers.bytes_to_device =
      log.transfers.bytes_to_device - before.bytes_to_device;
  last_log.transfers.bytes_from_device =
      log.transfers.bytes_from_device - before.bytes_from_device;
  last_log.transfers.transfers_to_device =
      log.transfers.transfers_to_device - before.transfers_to_device;
  last_log.transfers.transfers_from_device =
      log.transfers.transfers_from_device - before.transfers_from_device;
}

}  // namespace detail

}  // namespace polyeval::core
