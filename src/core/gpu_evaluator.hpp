#pragma once

/// \file gpu_evaluator.hpp
/// Host-side orchestration of the three-kernel pipeline: packs the
/// system, holds the device-resident state for the lifetime of a path
/// tracking run (coefficients, encodings and the zero padding of Mons are
/// uploaded exactly once), and per evaluation uploads the point, launches
/// the kernels and downloads values + Jacobian.

#include <span>
#include <stdexcept>
#include <vector>

#include "core/kernels.hpp"
#include "poly/eval_result.hpp"

namespace polyeval::core {

template <prec::RealScalar S>
class GpuEvaluator {
  using C = cplx::Complex<S>;

 public:
  /// Section 3.1's design alternative for the powers table.
  enum class PowersStrategy {
    /// The paper's choice: every block recomputes the powers into its
    /// shared memory inside the common-factor kernel.
    kPerBlockShared,
    /// The rejected alternative: a dedicated kernel tabulates the powers
    /// once into global memory; the common-factor kernel reads them back
    /// (one extra launch, scattered global reads).
    kSeparateKernel,
  };

  struct Options {
    unsigned block_size = 32;  ///< the paper uses the warp size
    ExponentEncoding encoding = ExponentEncoding::kChar;
    MonsLayout mons_layout = MonsLayout::kTransposed;
    PowersStrategy powers = PowersStrategy::kPerBlockShared;
    /// Element layout of the CommonFactors/Mons interchange buffers;
    /// results are bitwise identical under either (see layout.hpp).
    InterchangeLayout interchange = InterchangeLayout::kAoS;
  };

  /// Packs and uploads the system.  Throws std::invalid_argument for
  /// non-uniform systems and simt::ConstantMemoryOverflow when the
  /// encoded supports exceed the 64 KB budget (the paper's 2048-monomial
  /// failure).
  GpuEvaluator(simt::Device& device, const poly::PolynomialSystem& system,
               Options options = {})
      : device_(device),
        options_(options),
        packed_(pack_system(system)),
        layout_(packed_.structure, options.mons_layout) {
    const auto s = packed_.structure;
    if (options_.block_size == 0)
      throw std::invalid_argument("GpuEvaluator: block size must be positive");

    const auto encoded = encode_exponents(options_.encoding, packed_.exponents);

    bufs_.positions =
        device_.alloc_constant<unsigned char>(packed_.positions.size(), "Positions");
    bufs_.exponents = device_.alloc_constant<unsigned char>(encoded.size(), "Exponents");
    device_.upload_constant(bufs_.positions,
                            std::span<const unsigned char>(packed_.positions));
    device_.upload_constant(bufs_.exponents, std::span<const unsigned char>(encoded));

    bufs_.x = device_.alloc_global<C>(s.n, "X");
    bufs_.coeffs = device_.alloc_global<C>(layout_.coeffs_size(), "Coeffs");
    bufs_.common_factors.allocate(device_, layout_.total_monomials(), "CommonFactors",
                                  options_.interchange);
    bufs_.mons.allocate(device_, layout_.mons_size(), "Mons", options_.interchange);
    bufs_.outputs = device_.alloc_global<C>(layout_.num_outputs(), "Outputs");

    // Coefficients widen to the working precision once, then live in
    // global memory for the whole run.  The derivative portions fold the
    // exponent factors IN the working precision (folding in double first
    // would cap extended-precision Jacobian accuracy at ~1e-16).
    std::vector<C> coeffs(packed_.coeffs.size());
    for (std::uint64_t t = 0; t < layout_.total_monomials(); ++t) {
      const auto raw = C::from_double(packed_.coeffs[layout_.coeff_index(s.k, t)]);
      for (unsigned j = 0; j < s.k; ++j) {
        const double a = packed_.exponents[layout_.support_index(t, j)] + 1.0;
        coeffs[layout_.coeff_index(j, t)] =
            raw * prec::ScalarTraits<S>::from_double(a);
      }
      coeffs[layout_.coeff_index(s.k, t)] = raw;
    }
    device_.upload(bufs_.coeffs, std::span<const C>(coeffs));

    // The structural zeros of Mons are set once and never written again.
    bufs_.mons.fill_zero(device_);

    const auto blocks_for = [&](std::uint64_t work) {
      return static_cast<unsigned>((work + options_.block_size - 1) / options_.block_size);
    };

    if (options_.powers == PowersStrategy::kSeparateKernel) {
      bufs_.powers = device_.alloc_global<C>(std::size_t{s.n} * s.d, "Powers");
      kernel0_ = make_powers_kernel<S>(bufs_, layout_);
      cfg0_ = {blocks_for(s.n), options_.block_size, 0};
      kernel1_ = make_common_factor_from_global_kernel<S>(bufs_, layout_,
                                                          options_.encoding);
      cfg1_ = {blocks_for(layout_.total_monomials()), options_.block_size, 0};
    } else {
      kernel1_ = make_common_factor_kernel<S>(bufs_, layout_, options_.encoding);
      cfg1_ = {blocks_for(layout_.total_monomials()), options_.block_size,
               std::size_t{s.n} * s.d * sizeof(C)};
    }
    kernel2_ = make_speelpenning_kernel<S>(bufs_, layout_, options_.encoding);
    kernel3_ = make_summation_kernel<S>(bufs_, layout_);
    values_kernel_ = make_values_kernel<S>(bufs_, layout_);
    values_sum_kernel_ = make_values_summation_kernel<S>(bufs_, layout_);

    cfg2_ = {blocks_for(layout_.total_monomials()), options_.block_size,
             (std::size_t{s.n} + std::size_t{options_.block_size} * (s.k + 1)) * sizeof(C)};
    cfg3_ = {blocks_for(layout_.num_outputs()), options_.block_size, 0};
    cfg_values_ = {blocks_for(layout_.total_monomials()), options_.block_size,
                   std::size_t{s.n} * sizeof(C)};
    cfg_values_sum_ = {blocks_for(s.n), options_.block_size, 0};

    host_outputs_.resize(layout_.num_outputs());
  }

  [[nodiscard]] const SystemLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] const PackedSystem& packed() const noexcept { return packed_; }
  [[nodiscard]] unsigned dimension() const noexcept { return packed_.structure.n; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Evaluate values and Jacobian at x (x.size() == dimension()).
  void evaluate(std::span<const C> x, poly::EvalResult<S>& out) {
    if (x.size() != packed_.structure.n)
      throw std::invalid_argument("GpuEvaluator: point has wrong dimension");

    const std::size_t kernels_before = device_.log().kernels.size();
    const simt::TransferStats transfers_before = device_.log().transfers;

    device_.upload(bufs_.x, x);
    if (options_.powers == PowersStrategy::kSeparateKernel)
      (void)device_.launch(kernel0_, cfg0_);
    (void)device_.launch(kernel1_, cfg1_);
    (void)device_.launch(kernel2_, cfg2_);
    (void)device_.launch(kernel3_, cfg3_);
    device_.download(bufs_.outputs, std::span<C>(host_outputs_));

    const unsigned n = packed_.structure.n;
    out.resize(n);
    for (unsigned p = 0; p < n; ++p)
      out.values[p] = host_outputs_[layout_.output_value_index(p)];
    for (unsigned p = 0; p < n; ++p)
      for (unsigned v = 0; v < n; ++v)
        out.jacobian[std::size_t{p} * n + v] =
            host_outputs_[layout_.output_deriv_index(p, v)];

    snapshot_log(kernels_before, transfers_before);
  }

  [[nodiscard]] poly::EvalResult<S> evaluate(std::span<const C> x) {
    poly::EvalResult<S> out(dimension());
    evaluate(x, out);
    return out;
  }

  /// Values-only evaluation f(x) (no Jacobian): the common-factor kernel,
  /// a k+1-multiplication product kernel and an n-output summation --
  /// for residual probes that do not need derivatives.
  void evaluate_values(std::span<const C> x, std::span<C> values) {
    if (x.size() != packed_.structure.n || values.size() != packed_.structure.n)
      throw std::invalid_argument("GpuEvaluator: wrong dimension");

    const std::size_t kernels_before = device_.log().kernels.size();
    const simt::TransferStats transfers_before = device_.log().transfers;

    device_.upload(bufs_.x, x);
    if (options_.powers == PowersStrategy::kSeparateKernel)
      (void)device_.launch(kernel0_, cfg0_);
    (void)device_.launch(kernel1_, cfg1_);
    (void)device_.launch(values_kernel_, cfg_values_);
    (void)device_.launch(values_sum_kernel_, cfg_values_sum_);
    device_.download(bufs_.outputs, values);  // only the first n entries
    snapshot_log(kernels_before, transfers_before);
  }

  /// Kernel statistics and transfer volumes of the last evaluate() call,
  /// the input of simt::estimate_log_us.
  [[nodiscard]] const simt::LaunchLog& last_log() const noexcept { return last_log_; }

  /// Direct read of the device-side Mons array (tests use this to verify
  /// the zero slots and the transposed ordering).
  [[nodiscard]] std::vector<C> debug_mons() const {
    std::vector<C> host(layout_.mons_size());
    for (std::size_t i = 0; i < host.size(); ++i) host[i] = bufs_.mons.host_read(i);
    return host;
  }

 private:
  /// Record this call's slice of the device log for the timing model.
  void snapshot_log(std::size_t kernels_before, const simt::TransferStats& before) {
    const auto& log = device_.log();
    last_log_.kernels.assign(
        log.kernels.begin() + static_cast<std::ptrdiff_t>(kernels_before),
        log.kernels.end());
    last_log_.transfers.bytes_to_device =
        log.transfers.bytes_to_device - before.bytes_to_device;
    last_log_.transfers.bytes_from_device =
        log.transfers.bytes_from_device - before.bytes_from_device;
    last_log_.transfers.transfers_to_device =
        log.transfers.transfers_to_device - before.transfers_to_device;
    last_log_.transfers.transfers_from_device =
        log.transfers.transfers_from_device - before.transfers_from_device;
  }

  simt::Device& device_;
  Options options_;
  PackedSystem packed_;
  SystemLayout layout_;
  DeviceBuffers<S> bufs_;
  simt::Kernel kernel0_, kernel1_, kernel2_, kernel3_;
  simt::Kernel values_kernel_, values_sum_kernel_;
  simt::LaunchConfig cfg0_, cfg1_, cfg2_, cfg3_, cfg_values_, cfg_values_sum_;
  std::vector<C> host_outputs_;
  simt::LaunchLog last_log_;
};

}  // namespace polyeval::core
