#include "audit/kernel_auditor.hpp"

#include <algorithm>

#include "simt/device.hpp"

namespace polyeval::audit {

const char* to_string(FindingKind kind) noexcept {
  switch (kind) {
    case FindingKind::kUninitGlobalRead: return "uninit-global-read";
    case FindingKind::kStaleGlobalRead: return "stale-global-read";
    case FindingKind::kUninitSharedRead: return "uninit-shared-read";
    case FindingKind::kGlobalOutOfBounds: return "global-out-of-bounds";
    case FindingKind::kSharedOutOfBounds: return "shared-out-of-bounds";
    case FindingKind::kConstantOutOfBounds: return "constant-out-of-bounds";
    case FindingKind::kAccessAfterInactive: return "access-after-inactive";
    case FindingKind::kFootprintDivergence: return "footprint-divergence";
    case FindingKind::kCountDivergence: return "count-divergence";
    case FindingKind::kNondeterministicAccumulation:
      return "nondeterministic-accumulation";
  }
  return "unknown";
}

namespace {
const char* class_name(unsigned cls) noexcept {
  switch (cls) {
    case 0: return "global-load";
    case 1: return "global-store";
    case 2: return "shared";
    default: return "constant";
  }
}
}  // namespace

void KernelAuditor::attach(simt::Device& device) {
  device_ = &device;
  memory_ = &device.global_memory();
  device.set_audit(this);
}

void KernelAuditor::detach() {
  if (device_ != nullptr) device_->set_audit(nullptr);
  device_ = nullptr;
  memory_ = nullptr;
}

void KernelAuditor::begin_launch(std::string_view kernel, unsigned grid_blocks,
                                 unsigned block_threads, std::size_t shared_bytes) {
  (void)grid_blocks;
  kernel_.assign(kernel);
  block_threads_ = block_threads;
  shared_bytes_ = shared_bytes;
  ++launches_;
  ++launch_index_;
  const std::size_t shared_words = (shared_bytes + 3) / 4;
  if (shared_written_.size() < shared_words) shared_written_.resize(shared_words, 0);
  ++shared_stamp_;  // every block of the new launch starts unwritten
  warp_ = WarpState{};
  read_log_.clear();
}

void KernelAuditor::end_launch() {
  flush_warp();
  warp_.valid = false;
}

void KernelAuditor::ensure_site(const simt::AuditSite& site) {
  if (warp_.valid && site.block == warp_.block && site.phase == warp_.phase &&
      site.warp == warp_.warp)
    return;
  const bool new_block = !warp_.valid || site.block != warp_.block;
  const bool new_phase = new_block || site.phase != warp_.phase;
  flush_warp();
  // The engine runs audited launches serially: blocks ascending, phases
  // in order within a block.  A block transition invalidates the shared
  // write stamps (the arena is re-zeroed per block); a phase transition
  // retires the determinism read set (phases are barriers).
  if (new_block) ++shared_stamp_;
  if (new_phase) read_log_.clear();
  warp_.valid = true;
  warp_.block = site.block;
  warp_.phase = site.phase;
  warp_.warp = site.warp;
}

void KernelAuditor::flush_warp() {
  if (!warp_.valid) return;
  if (options_.synccheck) {
    // Lockstep lint: in every production loop shape (strided
    // `for (i = thread; i < n; i += block_dim)` and
    // one-element-per-thread with a trailing inactive tail), per-class
    // access counts never increase with lane index.  A lane doing MORE
    // work than a lower lane breaks the coalescing model the warp
    // grouping assumes.
    for (unsigned cls = 0; cls < kClassCount; ++cls) {
      for (unsigned lane = 1; lane < kMaxLanes; ++lane) {
        if (warp_.counts[cls][lane - 1] < warp_.counts[cls][lane]) {
          const simt::AuditSite site{warp_.block, warp_.phase, warp_.warp, lane,
                                     warp_.lane_thread[lane]};
          report(FindingKind::kCountDivergence, site, 0, {}, 0, {},
                 std::string(class_name(cls)) + " count rises from " +
                     std::to_string(warp_.counts[cls][lane - 1]) + " (lane " +
                     std::to_string(lane - 1) + ") to " +
                     std::to_string(warp_.counts[cls][lane]) + " (lane " +
                     std::to_string(lane) + ")");
          break;  // one finding per class per warp-phase
        }
      }
    }
  }
  for (auto& counts : warp_.counts) counts.fill(0);
  for (auto& fp : warp_.footprint) fp.clear();
  warp_.inactive.fill(false);
  warp_.valid = false;
}

void KernelAuditor::sync_record(unsigned cls, const simt::AuditSite& site,
                                std::size_t bytes) {
  if (!options_.synccheck || site.lane >= kMaxLanes) return;
  warp_.lane_thread[site.lane] = site.thread;
  if (warp_.inactive[site.lane])
    report(FindingKind::kAccessAfterInactive, site, 0, {}, 0, {},
           std::string(class_name(cls)) +
               " issued after the lane declared itself inactive");
  const std::uint32_t ordinal = warp_.counts[cls][site.lane]++;
  auto& fp = warp_.footprint[cls];
  if (ordinal >= fp.size()) fp.resize(ordinal + 1, 0);
  if (fp[ordinal] == 0) {
    fp[ordinal] = static_cast<std::uint32_t>(bytes);
  } else if (fp[ordinal] != bytes) {
    report(FindingKind::kFootprintDivergence, site, 0, {}, 0, {},
           std::string(class_name(cls)) + " ordinal " + std::to_string(ordinal) +
               " is " + std::to_string(bytes) + " bytes here but " +
               std::to_string(fp[ordinal]) + " bytes on an earlier lane");
  }
}

void KernelAuditor::report(FindingKind kind, const simt::AuditSite& site,
                           std::uint64_t address, std::string buffer,
                           std::size_t offset, std::string provenance,
                           std::string detail) {
  ++total_findings_;
  if (findings_.size() >= options_.max_findings) return;
  findings_.push_back({kind, kernel_, site.phase, site.block, site.warp, site.lane,
                       site.thread, address, std::move(buffer), offset,
                       std::move(provenance), std::move(detail)});
}

std::string KernelAuditor::describe(const WordShadow& shadow) const {
  switch (shadow.origin) {
    case kHost:
      return "host-initialized";
    case kDevice: {
      std::string s = "device-written (launch " + std::to_string(shadow.launch) +
                      ", phase " + std::to_string(shadow.phase) + ", thread " +
                      std::to_string(shadow.thread) + ", epoch " +
                      std::to_string(shadow.epoch);
      if (shadow.epoch != epoch_)
        s += "; stale: current epoch is " + std::to_string(epoch_);
      return s + ")";
    }
    default:
      return "never written";
  }
}

std::vector<KernelAuditor::WordShadow>* KernelAuditor::shadow_of(
    std::uint64_t address, const simt::detail::Allocation** alloc_out) {
  if (address >= cached_base_ && address < cached_end_ && cached_shadow_ != nullptr) {
    *alloc_out = cached_alloc_;
    return cached_shadow_;
  }
  if (memory_ == nullptr) return nullptr;
  const simt::detail::Allocation* alloc = memory_->find(address);
  if (alloc == nullptr) return nullptr;
  auto [it, inserted] = shadows_.try_emplace(alloc->address);
  if (inserted) it->second.resize((alloc->bytes + 3) / 4);
  cached_base_ = alloc->address;
  cached_end_ = alloc->address + alloc->bytes;
  cached_shadow_ = &it->second;
  cached_alloc_ = alloc;
  *alloc_out = alloc;
  return cached_shadow_;
}

bool KernelAuditor::on_global_load(const simt::AuditSite& site, std::uint64_t address,
                                   std::size_t bytes, std::uint64_t buffer_address,
                                   std::size_t buffer_bytes) {
  ensure_site(site);
  sync_record(kClsLoad, site, bytes);
  if (options_.oob &&
      (address < buffer_address || address + bytes > buffer_address + buffer_bytes)) {
    // Name the buffer the access was issued THROUGH: the overrun address
    // itself may be unmapped or inside an unrelated neighbour.
    const simt::detail::Allocation* owner =
        memory_ != nullptr ? memory_->find(buffer_address) : nullptr;
    report(FindingKind::kGlobalOutOfBounds, site, address,
           owner != nullptr ? owner->name : "<unmapped>", address - buffer_address,
           {},
           "load of " + std::to_string(bytes) + " bytes at offset " +
               std::to_string(address - buffer_address) + " past a " +
               std::to_string(buffer_bytes) + "-byte buffer");
    return false;  // never touch host memory past the allocation
  }
  const simt::detail::Allocation* alloc = nullptr;
  auto* shadow = shadow_of(address, &alloc);
  if (shadow == nullptr || shadow->empty()) return true;
  const std::uint64_t first = (address - alloc->address) >> 2;
  const std::uint64_t last = std::min<std::uint64_t>(
      (address - alloc->address + bytes - 1) >> 2, shadow->size() - 1);
  if (options_.initcheck) {
    for (std::uint64_t w = first; w <= last; ++w) {
      const WordShadow& ws = (*shadow)[w];
      if (ws.origin == kNever) {
        report(FindingKind::kUninitGlobalRead, site, address, alloc->name,
               static_cast<std::size_t>(w) * 4, describe(ws),
               "read of a word no host transfer or kernel ever wrote");
        return false;  // the backing storage is uninitialized heap
      }
      if (ws.origin == kDevice && ws.epoch != epoch_) {
        report(FindingKind::kStaleGlobalRead, site, address, alloc->name,
               static_cast<std::size_t>(w) * 4, describe(ws),
               "read of a device-written word from a previous epoch "
               "(stale-slot bug class)");
        break;  // stale data is valid memory: allow, once per access
      }
    }
  }
  if (options_.determinism) {
    const std::uint64_t thread = global_thread(site);
    for (std::uint64_t w = first; w <= last; ++w)
      read_log_.insert(read_key((alloc->address >> 2) + w, thread));
  }
  return true;
}

bool KernelAuditor::on_global_store(const simt::AuditSite& site, std::uint64_t address,
                                    std::size_t bytes, std::uint64_t buffer_address,
                                    std::size_t buffer_bytes) {
  ensure_site(site);
  sync_record(kClsStore, site, bytes);
  if (options_.oob &&
      (address < buffer_address || address + bytes > buffer_address + buffer_bytes)) {
    const simt::detail::Allocation* owner =
        memory_ != nullptr ? memory_->find(buffer_address) : nullptr;
    report(FindingKind::kGlobalOutOfBounds, site, address,
           owner != nullptr ? owner->name : "<unmapped>", address - buffer_address,
           {},
           "store of " + std::to_string(bytes) + " bytes at offset " +
               std::to_string(address - buffer_address) + " past a " +
               std::to_string(buffer_bytes) + "-byte buffer");
    return false;
  }
  const simt::detail::Allocation* alloc = nullptr;
  auto* shadow = shadow_of(address, &alloc);
  if (shadow == nullptr || shadow->empty()) return true;
  const std::uint64_t first = (address - alloc->address) >> 2;
  const std::uint64_t last = std::min<std::uint64_t>(
      (address - alloc->address + bytes - 1) >> 2, shadow->size() - 1);
  const std::uint64_t thread = global_thread(site);
  if (options_.determinism) {
    for (std::uint64_t w = first; w <= last; ++w) {
      const WordShadow& ws = (*shadow)[w];
      // Read-modify-write accumulation: someone else wrote this word
      // earlier in the same epoch (across a phase or launch barrier),
      // and this thread read it in the current phase before storing.
      // Barriers order the accesses here, but on real hardware the
      // accumulation order across threads is not fixed -- the pattern
      // that silently breaks bitwise parity.
      if (ws.origin == kDevice && ws.epoch == epoch_ && ws.thread != thread &&
          (ws.launch != launch_index_ || ws.phase != site.phase) &&
          read_log_.count(read_key((alloc->address >> 2) + w, thread)) > 0) {
        report(FindingKind::kNondeterministicAccumulation, site, address,
               alloc->name, static_cast<std::size_t>(w) * 4, describe(ws),
               "read-modify-write of a word another thread wrote across a "
               "barrier: accumulation order is not deterministic on hardware");
        break;
      }
    }
  }
  for (std::uint64_t w = first; w <= last; ++w) {
    WordShadow& ws = (*shadow)[w];
    ws.origin = kDevice;
    ws.phase = static_cast<std::uint16_t>(site.phase);
    ws.launch = launch_index_;
    ws.epoch = epoch_;
    ws.thread = thread;
  }
  return true;
}

bool KernelAuditor::on_shared_access(const simt::AuditSite& site,
                                     std::size_t byte_offset, std::size_t bytes,
                                     bool is_write) {
  ensure_site(site);
  sync_record(kClsShared, site, bytes);
  if (options_.oob && byte_offset + bytes > shared_bytes_) {
    report(FindingKind::kSharedOutOfBounds, site, byte_offset, "<shared>",
           byte_offset, {},
           (is_write ? std::string("store") : std::string("load")) + " of " +
               std::to_string(bytes) + " bytes at offset " +
               std::to_string(byte_offset) + " past the block's " +
               std::to_string(shared_bytes_) + "-byte shared allocation");
    return false;
  }
  if (shared_written_.empty()) return true;
  const std::size_t first = byte_offset >> 2;
  const std::size_t last =
      std::min((byte_offset + bytes - 1) >> 2, shared_written_.size() - 1);
  if (first > last) return true;
  if (is_write) {
    for (std::size_t w = first; w <= last; ++w) shared_written_[w] = shared_stamp_;
  } else if (options_.initcheck) {
    for (std::size_t w = first; w <= last; ++w) {
      if (shared_written_[w] != shared_stamp_) {
        report(FindingKind::kUninitSharedRead, site, byte_offset, "<shared>",
               byte_offset, "not written in this block",
               "read of a shared word before any thread of the block wrote "
               "it (shared memory is uninitialized on real hardware)");
        break;  // the simulator zeroes the arena, so reading is defined
      }
    }
  }
  return true;
}

bool KernelAuditor::on_constant_load(const simt::AuditSite& site,
                                     std::string_view buffer, std::size_t byte_offset,
                                     std::size_t bytes, std::size_t buffer_bytes) {
  ensure_site(site);
  sync_record(kClsConst, site, bytes);
  if (options_.oob && byte_offset + bytes > buffer_bytes) {
    report(FindingKind::kConstantOutOfBounds, site, byte_offset, std::string(buffer),
           byte_offset, {},
           "load of " + std::to_string(bytes) + " bytes at offset " +
               std::to_string(byte_offset) + " past a " +
               std::to_string(buffer_bytes) + "-byte constant buffer");
    return false;
  }
  return true;
}

void KernelAuditor::on_inactive(const simt::AuditSite& site) {
  ensure_site(site);
  if (site.lane >= kMaxLanes) return;
  warp_.inactive[site.lane] = true;
  warp_.lane_thread[site.lane] = site.thread;
}

void KernelAuditor::on_host_write(std::uint64_t address, std::size_t bytes) {
  if (bytes == 0) return;
  const simt::detail::Allocation* alloc = nullptr;
  auto* shadow = shadow_of(address, &alloc);
  if (shadow == nullptr || shadow->empty()) return;
  const std::uint64_t first = (address - alloc->address) >> 2;
  const std::uint64_t last =
      std::min<std::uint64_t>((address - alloc->address + bytes - 1) >> 2,
                              shadow->size() - 1);
  for (std::uint64_t w = first; w <= last; ++w) {
    WordShadow& ws = (*shadow)[w];
    ws.origin = kHost;  // durable: host initialization survives epochs
  }
}

void KernelAuditor::on_memory_reset() {
  shadows_.clear();
  cached_base_ = cached_end_ = 0;
  cached_shadow_ = nullptr;
  cached_alloc_ = nullptr;
}

}  // namespace polyeval::audit
