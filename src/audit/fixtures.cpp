#include "audit/fixtures.hpp"

#include "simt/device.hpp"

namespace polyeval::audit::fixtures {

void run_stale_slot(KernelAuditor& auditor, simt::Device& device) {
  // A miniature multi-tenant slot: mons[0] is the value word, mons[1..n]
  // the derivative words, zero-filled once at "construction".  Each
  // tenant's kernel writes only its own sparse support and then reads
  // the whole slot -- the exact shape that shipped the cross-tenant
  // Jacobian contamination before the per-launch re-zero was added.
  constexpr unsigned n = 2;
  auto mons = device.alloc_global<double>(1 + n, "FxMons");
  auto out = device.alloc_global<double>(1 + n, "FxOut");
  device.fill(mons, 0.0);  // construction-time zero fill: host provenance
  device.fill(out, 0.0);

  const auto make_tenant = [&](unsigned support) {
    simt::Kernel k;
    k.name = "fx_stale_slot";
    k.phases.push_back([mons, support](simt::ThreadContext& ctx) {
      ctx.store(mons, 0, 3.0);            // the value word
      ctx.store(mons, 1 + support, 2.0);  // this tenant's only derivative
    });
    k.phases.push_back([mons, out](simt::ThreadContext& ctx) {
      for (std::size_t q = 0; q < 1 + n; ++q) ctx.store(out, q, ctx.load(mons, q));
    });
    return k;
  };

  simt::LaunchConfig cfg;
  cfg.grid_blocks = 1;
  cfg.block_threads = 1;
  auditor.begin_epoch();
  (void)device.launch(make_tenant(0), cfg);  // tenant A: clean
  auditor.begin_epoch();
  (void)device.launch(make_tenant(1), cfg);  // tenant B: reads A's stale word
}

void run_uninit_read(KernelAuditor& auditor, simt::Device& device) {
  auto never_written = device.alloc_global<double>(4, "FxNever");  // no fill
  auto out = device.alloc_global<double>(4, "FxUninitOut");
  device.fill(out, 0.0);

  simt::Kernel k;
  k.name = "fx_uninit_read";
  k.phases.push_back([never_written, out](simt::ThreadContext& ctx) {
    ctx.store(out, 0, ctx.load(never_written, 2));  // squashed to 0.0
    auto tile = ctx.shared_array<double>(0, 4);
    ctx.store(out, 1, tile.get(2));  // shared word nobody wrote this block
  });

  simt::LaunchConfig cfg;
  cfg.grid_blocks = 1;
  cfg.block_threads = 1;
  cfg.shared_bytes = 4 * sizeof(double);
  auditor.begin_epoch();
  (void)device.launch(k, cfg);
}

void run_out_of_bounds(KernelAuditor& auditor, simt::Device& device) {
  auto small = device.alloc_global<double>(4, "FxSmall");
  device.fill(small, 1.0);

  simt::Kernel k;
  k.name = "fx_oob";
  k.phases.push_back([small](simt::ThreadContext& ctx) {
    // Both past the 32-byte extent; the squash is what keeps these off
    // the allocation's (unpadded) backing storage.
    ctx.store(small, 6, 9.0);
    (void)ctx.load(small, 5);
  });

  simt::LaunchConfig cfg;
  cfg.grid_blocks = 1;
  cfg.block_threads = 1;
  auditor.begin_epoch();
  (void)device.launch(k, cfg);
}

void run_lane_divergence(KernelAuditor& auditor, simt::Device& device) {
  auto wide = device.alloc_global<double>(8, "FxWide");
  auto narrow = device.alloc_global<float>(8, "FxNarrow");
  device.fill(wide, 1.0);
  device.fill(narrow, 1.0f);

  simt::Kernel k;
  k.name = "fx_diverge";
  k.phases.push_back([wide, narrow](simt::ThreadContext& ctx) {
    switch (ctx.thread_index()) {
      case 0:
        (void)ctx.load(wide, 0);
        ctx.mark_inactive();
        (void)ctx.load(wide, 1);  // access after declaring inactive
        break;
      case 1:
        (void)ctx.load(narrow, 0);  // 4 bytes where lane 0 loaded 8
        break;
      case 2:
        (void)ctx.load(wide, 2);  // two loads where lane 1 made one
        (void)ctx.load(wide, 3);
        break;
      default:
        ctx.mark_inactive();
        break;
    }
  });

  simt::LaunchConfig cfg;
  cfg.grid_blocks = 1;
  cfg.block_threads = 4;
  auditor.begin_epoch();
  (void)device.launch(k, cfg);
}

void run_nondeterministic_accumulation(KernelAuditor& auditor,
                                       simt::Device& device) {
  auto acc = device.alloc_global<double>(1, "FxAcc");
  device.fill(acc, 0.0);

  simt::Kernel k;
  k.name = "fx_ndet_accum";
  // Block 0 seeds the accumulator in phase 0; block 1 folds its
  // contribution in phase 1 by read-modify-write.  The phase barrier
  // orders the simulator's accesses, but real hardware does not fix
  // the accumulation order across blocks.
  k.phases.push_back([acc](simt::ThreadContext& ctx) {
    if (ctx.block_index() == 0)
      ctx.store(acc, 0, 1.0);
    else
      ctx.mark_inactive();
  });
  k.phases.push_back([acc](simt::ThreadContext& ctx) {
    if (ctx.block_index() == 1)
      ctx.store(acc, 0, ctx.load(acc, 0) + 1.0);
    else
      ctx.mark_inactive();
  });

  simt::LaunchConfig cfg;
  cfg.grid_blocks = 2;
  cfg.block_threads = 1;
  // The launch-wide race journal conservatively flags any cross-thread
  // double write; disable it so the lint (a finding, not a throw) is
  // what diagnoses the pattern.
  cfg.detect_races = false;
  auditor.begin_epoch();
  (void)device.launch(k, cfg);
}

}  // namespace polyeval::audit::fixtures
