#pragma once

/// \file kernel_auditor.hpp
/// The kernel access auditor: a memcheck-grade analysis pass over any
/// simt::Kernel, implemented as an AccessAudit the engine drives.
///
/// Four checkers run per launch:
///
///  * **initcheck** -- a read of a global word that was never written
///    (neither by the host nor by a kernel) is flagged and squashed;
///    a read of a word whose latest write came from a *previous epoch*
///    (see begin_epoch) is flagged as stale but allowed, reproducing
///    the PR-7 stale-tenant-slot bug class where sparse derivative
///    stores relied on construction-time zero fill.  Shared-memory
///    reads are checked against the writes of the current block.
///  * **OOB check** -- every access is resolved against the extent of
///    the buffer it was issued through; an overrun is flagged and
///    squashed *before* the simulator touches host memory, even when
///    it would land inside a neighbouring allocation.
///  * **synccheck** -- per warp-phase, lanes must behave like lockstep
///    SIMT: no accesses after mark_inactive, byte footprints agree per
///    access ordinal, and per-class access counts are monotonically
///    non-increasing in lane order (the shape of every strided and
///    one-element-per-thread loop in this codebase).
///  * **determinism lint** -- a store to a word that another thread
///    wrote earlier in the same epoch (earlier phase or launch), after
///    the storing thread read that word in the current phase, is
///    read-modify-write accumulation whose order real hardware does
///    not fix: the pattern that silently breaks bitwise parity.
///
/// Provenance: the auditor watches Device::upload / Device::fill / h2d
/// stream copies (host-initialized, durable across epochs) and every
/// kernel store (device-written, stamped with launch/phase/thread and
/// the current epoch).  Call begin_epoch() at each logical evaluation
/// boundary so cross-evaluation staleness is visible; attach() the
/// auditor *before* constructing evaluators so construction-time
/// uploads and fills register as host initialization.
///
/// Usage:
///   audit::KernelAuditor auditor;
///   auditor.attach(device);            // before building evaluators
///   core::FusedGpuEvaluator<double> ev(device, sys, batch);
///   auditor.begin_epoch();
///   ev.evaluate(points, results);      // runs serially, audited
///   for (const auto& f : auditor.findings()) ...

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "simt/audit_hook.hpp"
#include "simt/memory.hpp"

namespace polyeval::simt {
class Device;
class GlobalMemory;
}  // namespace polyeval::simt

namespace polyeval::audit {

enum class FindingKind {
  kUninitGlobalRead,   ///< read of a global word nobody ever wrote
  kStaleGlobalRead,    ///< read of a device-written word from a previous epoch
  kUninitSharedRead,   ///< read of a shared word not written in this block
  kGlobalOutOfBounds,  ///< access outside the originating buffer's extent
  kSharedOutOfBounds,  ///< access outside the block's shared allocation
  kConstantOutOfBounds,        ///< access outside the constant buffer
  kAccessAfterInactive,        ///< a lane kept issuing accesses after mark_inactive
  kFootprintDivergence,        ///< lanes disagree on an access ordinal's byte size
  kCountDivergence,            ///< per-class access counts increase with lane index
  kNondeterministicAccumulation,  ///< cross-thread RMW accumulation over a barrier
};

[[nodiscard]] const char* to_string(FindingKind kind) noexcept;

/// One checker hit, with enough provenance to act on without a debugger.
struct Finding {
  FindingKind kind = FindingKind::kUninitGlobalRead;
  std::string kernel;
  unsigned phase = 0;
  unsigned block = 0;
  unsigned warp = 0;
  unsigned lane = 0;
  unsigned thread = 0;        ///< thread index within the block
  std::uint64_t address = 0;  ///< device address (global) or byte offset
  std::string buffer;         ///< owning allocation name, or "<shared>" etc.
  std::size_t offset = 0;     ///< byte offset within `buffer`
  std::string provenance;     ///< who last initialized the word, if anyone
  std::string detail;         ///< human-readable one-liner
};

struct AuditOptions {
  bool initcheck = true;
  bool oob = true;
  bool synccheck = true;
  bool determinism = true;
  /// Findings beyond this count are tallied but not recorded.
  std::size_t max_findings = 256;
};

class KernelAuditor final : public simt::AccessAudit {
 public:
  explicit KernelAuditor(AuditOptions options = {}) : options_(options) {}

  /// Attach to a device: every subsequent launch is audited and every
  /// host-side write is registered as provenance.
  void attach(simt::Device& device);
  void detach();

  /// Start a new logical evaluation: device writes from before this
  /// point become *stale* for initcheck (host writes stay valid).
  void begin_epoch() noexcept { ++epoch_; }

  [[nodiscard]] const std::vector<Finding>& findings() const noexcept {
    return findings_;
  }
  /// Total findings including those dropped past max_findings.
  [[nodiscard]] std::size_t total_findings() const noexcept { return total_findings_; }
  [[nodiscard]] std::size_t launches_audited() const noexcept { return launches_; }
  void clear_findings() {
    findings_.clear();
    total_findings_ = 0;
  }

  // -- AccessAudit ------------------------------------------------------
  void begin_launch(std::string_view kernel, unsigned grid_blocks,
                    unsigned block_threads, std::size_t shared_bytes) override;
  void end_launch() override;
  bool on_global_load(const simt::AuditSite& site, std::uint64_t address,
                      std::size_t bytes, std::uint64_t buffer_address,
                      std::size_t buffer_bytes) override;
  bool on_global_store(const simt::AuditSite& site, std::uint64_t address,
                       std::size_t bytes, std::uint64_t buffer_address,
                       std::size_t buffer_bytes) override;
  bool on_shared_access(const simt::AuditSite& site, std::size_t byte_offset,
                        std::size_t bytes, bool is_write) override;
  bool on_constant_load(const simt::AuditSite& site, std::string_view buffer,
                        std::size_t byte_offset, std::size_t bytes,
                        std::size_t buffer_bytes) override;
  void on_inactive(const simt::AuditSite& site) override;
  void on_host_write(std::uint64_t address, std::size_t bytes) override;
  void on_memory_reset() override;

 private:
  /// Per-4-byte-word provenance of a global allocation.
  struct WordShadow {
    std::uint8_t origin = 0;   // kNever / kHost / kDevice
    std::uint16_t phase = 0;   // of the latest device write
    std::uint32_t launch = 0;  // of the latest device write
    std::uint64_t epoch = 0;   // of the latest device write
    std::uint64_t thread = 0;  // global thread index of the latest device write
  };
  static constexpr std::uint8_t kNever = 0;
  static constexpr std::uint8_t kHost = 1;
  static constexpr std::uint8_t kDevice = 2;

  /// Access classes tracked separately by synccheck.
  enum : unsigned { kClsLoad = 0, kClsStore, kClsShared, kClsConst, kClassCount };
  static constexpr unsigned kMaxLanes = 64;

  /// Synccheck state of the warp-phase currently executing.  Audited
  /// launches are serial, so one live warp state suffices.
  struct WarpState {
    bool valid = false;
    unsigned block = 0, phase = 0, warp = 0;
    std::array<std::array<std::uint32_t, kMaxLanes>, kClassCount> counts{};
    std::array<std::vector<std::uint32_t>, kClassCount> footprint;
    std::array<bool, kMaxLanes> inactive{};
    std::array<unsigned, kMaxLanes> lane_thread{};
  };

  void ensure_site(const simt::AuditSite& site);
  void flush_warp();
  void sync_record(unsigned cls, const simt::AuditSite& site, std::size_t bytes);
  void report(FindingKind kind, const simt::AuditSite& site, std::uint64_t address,
              std::string buffer, std::size_t offset, std::string provenance,
              std::string detail);
  [[nodiscard]] std::string describe(const WordShadow& shadow) const;
  [[nodiscard]] std::uint64_t global_thread(const simt::AuditSite& site) const noexcept {
    return static_cast<std::uint64_t>(site.block) * block_threads_ + site.thread;
  }
  [[nodiscard]] static std::uint64_t read_key(std::uint64_t word,
                                              std::uint64_t thread) noexcept {
    return (word << 20) | (thread & 0xFFFFFu);
  }
  /// Shadow table of the allocation owning `address` (created lazily);
  /// nullptr when the address is unmapped.
  std::vector<WordShadow>* shadow_of(std::uint64_t address,
                                     const simt::detail::Allocation** alloc_out);

  AuditOptions options_;
  simt::Device* device_ = nullptr;
  const simt::GlobalMemory* memory_ = nullptr;

  std::vector<Finding> findings_;
  std::size_t total_findings_ = 0;

  // launch state
  std::string kernel_;
  unsigned block_threads_ = 0;
  std::size_t shared_bytes_ = 0;
  std::size_t launches_ = 0;
  std::uint32_t launch_index_ = 0;
  std::uint64_t epoch_ = 1;

  // global shadows, keyed by allocation base address
  std::unordered_map<std::uint64_t, std::vector<WordShadow>> shadows_;
  std::uint64_t cached_base_ = 0, cached_end_ = 0;
  std::vector<WordShadow>* cached_shadow_ = nullptr;
  const simt::detail::Allocation* cached_alloc_ = nullptr;

  // per-block shared-write stamps (word written iff stamp matches)
  std::vector<std::uint64_t> shared_written_;
  std::uint64_t shared_stamp_ = 0;

  // per-phase (word, thread) read set for the determinism lint
  std::unordered_set<std::uint64_t> read_log_;

  WarpState warp_;
};

}  // namespace polyeval::audit
