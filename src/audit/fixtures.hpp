#pragma once

/// \file fixtures.hpp
/// Seeded-violation kernels that prove each auditor checker fires.
///
/// Every fixture allocates its own buffers on the given device and
/// launches one or two small kernels that commit exactly one hazard
/// class; the auditor must already be attached to the device.  The
/// fixtures are shared by test_audit and the kernel_audit CLI (which
/// gates in CI that every checker still fires before trusting a clean
/// production sweep).  Use a scratch device: fixture allocations are
/// never freed individually.

#include "audit/kernel_auditor.hpp"

namespace polyeval::simt {
class Device;
}

namespace polyeval::audit::fixtures {

/// The resurrected PR-7 bug: a multi-tenant-style slot whose sparse
/// derivative stores rely on construction-time zero fill.  Tenant A
/// writes support {0}, tenant B writes support {1}; without the
/// per-launch re-zero, B's read phase sees A's word from the previous
/// epoch.  Expects one kStaleGlobalRead against buffer "FxMons".
void run_stale_slot(KernelAuditor& auditor, simt::Device& device);

/// Reads a global word no transfer or kernel ever wrote, and a shared
/// word before any thread of the block wrote it.  Expects
/// kUninitGlobalRead (squashed) and kUninitSharedRead.
void run_uninit_read(KernelAuditor& auditor, simt::Device& device);

/// Stores and loads past a 4-element buffer's extent.  Expects two
/// kGlobalOutOfBounds findings, both squashed before the simulator
/// touches host memory past the allocation's storage.
void run_out_of_bounds(KernelAuditor& auditor, simt::Device& device);

/// Breaks warp lockstep three ways: a lane accessing after
/// mark_inactive, lanes disagreeing on an access ordinal's byte size,
/// and a higher lane issuing more accesses than a lower one.  Expects
/// kAccessAfterInactive, kFootprintDivergence and kCountDivergence.
void run_lane_divergence(KernelAuditor& auditor, simt::Device& device);

/// Cross-block read-modify-write accumulation into one address over a
/// phase boundary -- ordered by barriers here, unordered on real
/// hardware.  Expects kNondeterministicAccumulation.  Launched with
/// detect_races off: the launch-wide race journal conservatively flags
/// the cross-phase double write, which is exactly the pattern this
/// lint exists to diagnose rather than throw on.
void run_nondeterministic_accumulation(KernelAuditor& auditor,
                                       simt::Device& device);

}  // namespace polyeval::audit::fixtures
