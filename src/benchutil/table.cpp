#include "benchutil/table.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace polyeval::benchutil {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_seconds_paper_style(double seconds) {
  if (seconds < 60.0) return format_fixed(seconds, 3) + " sec";
  const int minutes = static_cast<int>(seconds / 60.0);
  const double rest = seconds - 60.0 * minutes;
  return std::to_string(minutes) + "min " + format_fixed(rest, 1) + " sec";
}

std::string format_speedup(double speedup) { return format_fixed(speedup, 2); }

}  // namespace polyeval::benchutil
