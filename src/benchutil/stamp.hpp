#pragma once

/// \file stamp.hpp
/// Provenance stamp for the BENCH_*.json artifacts: every emitted file
/// carries a "meta" object with the bench JSON schema version and the
/// git commit it was built from, so a downloaded artifact (or a stale
/// committed baseline) identifies itself without archaeology.  The
/// stamp adds no gated leaves -- check_bench_regression.py keys on
/// wall_us / per_sec / solved_frac / tuned_speedup substrings, none of
/// which appear here -- so stamped files compare cleanly against
/// pre-stamp baselines.

#include <string>

namespace polyeval::benchutil {

class JsonWriter;

/// Bumped when the shape of any BENCH_*.json changes incompatibly
/// (field renames, moved sections).  Additive fields do not bump it.
inline constexpr unsigned kBenchSchemaVersion = 1;

/// The commit the binary was built from: $GITHUB_SHA when CI exports
/// it, else `git rev-parse HEAD` from the current directory, else
/// "unknown".  Resolved once per process (the answer cannot change
/// mid-run).
[[nodiscard]] const std::string& git_sha();

/// Write `"meta": {"schema_version": ..., "git_sha": ...}` into an
/// open JSON object.  Call once, right after begin_object() of the
/// document root.
void emit_stamp(JsonWriter& json);

}  // namespace polyeval::benchutil
