#pragma once

/// \file table.hpp
/// Console table rendering for the benchmark harnesses: aligned columns,
/// a header rule, and helpers for formatting times the way the paper
/// prints them (e.g. "2min 39.3sec").

#include <string>
#include <vector>

namespace polyeval::benchutil {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Render with every column padded to its widest cell.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-decimal formatting ("14.514").
[[nodiscard]] std::string format_fixed(double value, int decimals);

/// Seconds in the paper's style: "14.514 sec" or "2min 39.3 sec".
[[nodiscard]] std::string format_seconds_paper_style(double seconds);

/// Speedup with two decimals ("10.44").
[[nodiscard]] std::string format_speedup(double speedup);

}  // namespace polyeval::benchutil
