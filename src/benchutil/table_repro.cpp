#include "benchutil/table_repro.hpp"

#include <iostream>

#include "ad/cpu_evaluator.hpp"
#include "benchutil/table.hpp"
#include "benchutil/timer.hpp"
#include "core/gpu_evaluator.hpp"
#include "poly/random_system.hpp"
#include "simt/timing.hpp"

namespace polyeval::benchutil {

TableRepro reproduce_table(const PaperWorkload& workload) {
  using C = cplx::Complex<double>;
  const simt::DeviceSpec dspec;
  const simt::GpuCostModel gmodel;
  const simt::CpuCostModel cmodel;
  const double evals = static_cast<double>(workload.evaluations);

  TableRepro out;
  out.workload = workload;

  for (const auto& paper_row : workload.rows) {
    TableReproRow row;
    row.monomials = paper_row.total_monomials;
    row.paper_gpu_s = paper_row.gpu_seconds;
    row.paper_cpu_s = paper_row.cpu_seconds;
    row.paper_speedup = paper_row.speedup;

    poly::SystemSpec spec;
    spec.dimension = workload.dimension;
    spec.monomials_per_polynomial = paper_row.total_monomials / workload.dimension;
    spec.variables_per_monomial = workload.variables_per_monomial;
    spec.max_exponent = workload.max_exponent;
    spec.seed = 20120102 + paper_row.total_monomials;
    const auto system = poly::make_random_system(spec);
    const auto x = poly::make_random_point<double>(spec.dimension, 31);

    // --- instrumented pipeline run + timing model ---
    simt::Device device;
    core::GpuEvaluator<double>::Options opts;
    opts.block_size = workload.block_size;
    core::GpuEvaluator<double> gpu(device, system, opts);
    poly::EvalResult<double> result(spec.dimension);
    gpu.evaluate(std::span<const C>(x), result);
    row.model_gpu_s =
        simt::estimate_log_us(gpu.last_log(), dspec, gmodel) * evals * 1e-6;

    ad::CpuEvaluator<double> cpu(system);
    cpu.evaluate(std::span<const C>(x), result);
    const auto& ops = cpu.last_op_counts();
    row.model_cpu_s =
        simt::estimate_cpu_us(ops.complex_mul, ops.complex_add, cmodel) * evals * 1e-6;
    row.model_speedup = row.model_cpu_s / row.model_gpu_s;

    // --- host measurements (real computations, scaled) ---
    row.host_cpu_s =
        time_per_call([&] { cpu.evaluate(std::span<const C>(x), result); }, 0.2) * evals;
    row.host_sim_s =
        time_per_call([&] { gpu.evaluate(std::span<const C>(x), result); }, 0.2) * evals;

    out.rows.push_back(row);
  }
  return out;
}

void print_table_repro(const TableRepro& repro, std::string_view title) {
  std::cout << title << "\n"
            << "100,000 evaluations of a system and its Jacobian, dimension "
            << repro.workload.dimension << ", " << repro.workload.variables_per_monomial
            << " variables per monomial, exponents at most "
            << repro.workload.max_exponent << ", block size "
            << repro.workload.block_size << ".\n\n";

  Table table({"#monomials", "paper GPU", "paper CPU", "paper sp", "model GPU",
               "model CPU", "model sp", "host CPU (meas.)", "host sim (meas.)"});
  for (const auto& r : repro.rows) {
    table.add_row({std::to_string(r.monomials),
                   format_seconds_paper_style(r.paper_gpu_s),
                   format_seconds_paper_style(r.paper_cpu_s),
                   format_speedup(r.paper_speedup),
                   format_seconds_paper_style(r.model_gpu_s),
                   format_seconds_paper_style(r.model_cpu_s),
                   format_speedup(r.model_speedup),
                   format_seconds_paper_style(r.host_cpu_s),
                   format_seconds_paper_style(r.host_sim_s)});
  }
  std::cout << table.to_string() << "\n";
  std::cout
      << "model: analytic Tesla C2050 / Xeon X5690 cost model fed by simulator\n"
      << "       statistics (see src/simt/timing.cpp for the constants);\n"
      << "host CPU: the sequential reference evaluator measured on this machine;\n"
      << "host sim: the *functional simulator* measured on this machine -- it\n"
      << "          executes and instruments every thread, so it is NOT a GPU\n"
      << "          time; it scales with total work, not with parallelism.\n\n";

  // Shape checks the reproduction must satisfy (also asserted in tests).
  const auto& first = repro.rows.front();
  const auto& last = repro.rows.back();
  std::cout << "shape check: model GPU growth " << format_fixed(last.model_gpu_s / first.model_gpu_s, 2)
            << "x for " << format_fixed(double(last.monomials) / first.monomials, 2)
            << "x monomials (paper: "
            << format_fixed(last.paper_gpu_s / first.paper_gpu_s, 2) << "x); "
            << "speedup rises " << format_speedup(first.model_speedup) << " -> "
            << format_speedup(last.model_speedup) << " (paper: "
            << format_speedup(first.paper_speedup) << " -> "
            << format_speedup(last.paper_speedup) << ")\n";
}

}  // namespace polyeval::benchutil
