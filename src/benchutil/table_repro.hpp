#pragma once

/// \file table_repro.hpp
/// The harness that regenerates the paper's Tables 1 and 2: for each
/// row it builds the workload, runs the instrumented pipeline once on
/// the simulator, prices it with the timing model (Tesla C2050 + Xeon
/// X5690 constants), and also *measures* the real computation on this
/// host (CPU reference evaluator wall clock, simulator wall clock),
/// scaled to the paper's 100,000 evaluations.

#include <string_view>

#include "benchutil/paper_data.hpp"

namespace polyeval::benchutil {

struct TableReproRow {
  unsigned monomials = 0;
  // published
  double paper_gpu_s = 0, paper_cpu_s = 0, paper_speedup = 0;
  // timing model for the paper's hardware
  double model_gpu_s = 0, model_cpu_s = 0, model_speedup = 0;
  // measured on this host (scaled to the full evaluation count)
  double host_cpu_s = 0;  ///< sequential reference evaluator
  double host_sim_s = 0;  ///< functional simulator (NOT a GPU: for scale only)
};

struct TableRepro {
  PaperWorkload workload;
  std::vector<TableReproRow> rows;
};

/// Run the full reproduction of one paper table.
[[nodiscard]] TableRepro reproduce_table(const PaperWorkload& workload);

/// Print in the paper's format plus the reproduction columns.
void print_table_repro(const TableRepro& repro, std::string_view title);

}  // namespace polyeval::benchutil
