#include "benchutil/paper_data.hpp"

namespace polyeval::benchutil {

PaperWorkload paper_table1() {
  PaperWorkload w;
  w.variables_per_monomial = 9;
  w.max_exponent = 2;
  // "Wall clock times and speedups for 100,000 evaluations of a
  //  polynomial system and its Jacobian matrix of dimension 32.  Each
  //  monomial has 9 variables occurring with nonzero power of at most 2."
  w.rows = {
      {704, 14.514, 110.9, 7.60},
      {1024, 15.265, 159.3, 10.44},
      {1536, 17.000, 238.7, 14.04},
  };
  return w;
}

PaperWorkload paper_table2() {
  PaperWorkload w;
  w.variables_per_monomial = 16;
  w.max_exponent = 10;
  // "Each monomial has 16 variables occurring with nonzero power of at
  //  most 10."
  w.rows = {
      {704, 19.068, 196.9, 10.33},
      {1024, 20.800, 283.3, 13.62},
      {1536, 21.763, 425.8, 19.56},
  };
  return w;
}

}  // namespace polyeval::benchutil
