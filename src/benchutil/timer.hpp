#pragma once

/// \file timer.hpp
/// Wall-clock measurement helpers for the benchmark harnesses.

#include <chrono>

namespace polyeval::benchutil {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds since construction or the last reset.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Run fn repeatedly until at least min_seconds elapsed (at least once);
/// returns the average seconds per call.
template <class Fn>
[[nodiscard]] double time_per_call(Fn&& fn, double min_seconds = 0.05) {
  Timer total;
  std::size_t calls = 0;
  do {
    fn();
    ++calls;
  } while (total.seconds() < min_seconds);
  return total.seconds() / static_cast<double>(calls);
}

}  // namespace polyeval::benchutil
