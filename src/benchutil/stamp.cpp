#include "benchutil/stamp.hpp"

#include <cstdio>
#include <cstdlib>

#include "benchutil/json.hpp"

namespace polyeval::benchutil {

namespace {

std::string resolve_git_sha() {
  if (const char* env = std::getenv("GITHUB_SHA"); env != nullptr && *env)
    return env;
  // Fallback for local runs: ask git.  Swallow every failure mode
  // (no git, not a repo) into "unknown" -- provenance is best-effort,
  // never a reason for a bench to fail.
  std::string sha;
  if (FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[128];
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      for (const char* p = buf; *p != '\0' && *p != '\n'; ++p) sha += *p;
    }
    ::pclose(pipe);
  }
  // A full SHA is 40 hex chars; anything shorter is git noise.
  if (sha.size() < 7) sha = "unknown";
  return sha;
}

}  // namespace

const std::string& git_sha() {
  static const std::string sha = resolve_git_sha();
  return sha;
}

void emit_stamp(JsonWriter& json) {
  json.key("meta");
  json.begin_object()
      .field("schema_version", kBenchSchemaVersion)
      .field("git_sha", git_sha())
      .end_object();
}

}  // namespace polyeval::benchutil
