#pragma once

/// \file json.hpp
/// Minimal streaming JSON writer for the benchmark harnesses: benches
/// emit machine-readable BENCH_*.json files next to their tables so the
/// perf trajectory can be tracked across PRs without parsing prose.

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace polyeval::benchutil {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    separate();
    out_ << '{';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_object() {
    out_ << '}';
    stack_.pop_back();
    mark_value();
    return *this;
  }
  JsonWriter& begin_array() {
    separate();
    out_ << '[';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_array() {
    out_ << ']';
    stack_.pop_back();
    mark_value();
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    separate();
    write_string(k);
    out_ << ':';
    after_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    separate();
    write_string(v);
    mark_value();
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v) {
    separate();
    std::ostringstream tmp;
    tmp.precision(12);
    tmp << v;
    out_ << tmp.str();
    mark_value();
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    separate();
    out_ << v;
    mark_value();
    return *this;
  }
  JsonWriter& value(unsigned v) { return value(std::uint64_t{v}); }
  JsonWriter& value(bool v) {
    separate();
    out_ << (v ? "true" : "false");
    mark_value();
    return *this;
  }

  template <class V>
  JsonWriter& field(std::string_view k, V&& v) {
    key(k);
    return value(std::forward<V>(v));
  }

  [[nodiscard]] std::string str() const { return out_.str(); }

  /// Write the document to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << out_.str() << '\n';
    return static_cast<bool>(out);
  }

 private:
  void separate() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!stack_.empty() && stack_.back()) out_ << ',';
  }
  void mark_value() {
    if (!stack_.empty()) stack_.back() = true;
  }
  void write_string(std::string_view s) {
    out_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\n': out_ << "\\n"; break;
        case '\t': out_ << "\\t"; break;
        default: out_ << c;
      }
    }
    out_ << '"';
  }

  std::ostringstream out_;
  std::vector<bool> stack_;  ///< per nesting level: "a value was emitted"
  bool after_key_ = false;
};

}  // namespace polyeval::benchutil
