#pragma once

/// \file paper_data.hpp
/// The published numbers of the paper's evaluation section, kept in one
/// place so benchmarks and EXPERIMENTS.md compare against the same data.

#include <cstdint>
#include <vector>

namespace polyeval::benchutil {

/// One row of Table 1 or Table 2: 100,000 evaluations of a dimension-32
/// system and its Jacobian.
struct PaperRow {
  unsigned total_monomials;  ///< #monomials (n * m)
  double gpu_seconds;        ///< Tesla C2050
  double cpu_seconds;        ///< 1 CPU core
  double speedup;
};

/// Workload parameters shared by both tables.
struct PaperWorkload {
  unsigned dimension = 32;       ///< n
  unsigned block_size = 32;      ///< threads per block
  unsigned variables_per_monomial;  ///< k
  unsigned max_exponent;            ///< d
  std::uint64_t evaluations = 100000;
  std::vector<PaperRow> rows;
};

/// Table 1: k = 9 variables per monomial, exponents at most 2.
[[nodiscard]] PaperWorkload paper_table1();

/// Table 2: k = 16 variables per monomial, exponents at most 10.
[[nodiscard]] PaperWorkload paper_table2();

}  // namespace polyeval::benchutil
