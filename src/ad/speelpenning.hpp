#pragma once

/// \file speelpenning.hpp
/// The example of Speelpenning (Griewank & Walther): evaluate the product
/// P = v_0 v_1 ... v_{k-1} together with ALL partial derivatives
/// dP/dv_j = prod_{l != j} v_l in 3k-6 multiplications (k >= 3) by one
/// forward sweep of prefix products and one backward sweep of suffix
/// products.  This is the heart of the paper's second kernel.

#include <span>

#include "ad/op_count.hpp"

namespace polyeval::ad {

/// Computes derivs[j] = prod_{l != j} v[l] for all j.
///
/// Works over any ring value type (Complex<double>, Complex<DoubleDouble>,
/// ...).  Requires derivs.size() == v.size() >= 1.  Returns the number of
/// multiplications performed, which tests pin to formulas::speelpenning_mults.
template <class C>
std::uint64_t speelpenning_gradient(std::span<const C> v, std::span<C> derivs) {
  const std::size_t k = v.size();
  if (k == 1) {
    derivs[0] = C(1.0);
    return 0;
  }
  if (k == 2) {
    derivs[0] = v[1];
    derivs[1] = v[0];
    return 0;
  }

  // Forward sweep: derivs[r] = v[0] * ... * v[r-1] for r = 1..k-1
  // (k-2 multiplications; derivs[k-1] is already dP/dv_{k-1}).
  derivs[1] = v[0];
  for (std::size_t r = 2; r < k; ++r) derivs[r] = derivs[r - 1] * v[r - 1];

  // Backward sweep: Q accumulates the suffix product v[k-1] ... v[j+1],
  // turning each stored prefix into the full all-but-one product.
  C q = v[k - 1];
  derivs[k - 2] = derivs[k - 2] * q;  // 1 multiplication
  for (std::size_t r = 1; r + 2 < k; ++r) {  // k-3 steps of 2 multiplications
    q = q * v[k - 1 - r];
    derivs[k - 2 - r] = derivs[k - 2 - r] * q;
  }
  derivs[0] = q * v[1];  // 1 multiplication

  return formulas::speelpenning_mults(static_cast<unsigned>(k));
}

/// Reference implementation: k separate all-but-one products, k(k-2)+...
/// multiplications.  Exists purely as an independent oracle for tests and
/// the ablation benchmark.
template <class C>
std::uint64_t speelpenning_gradient_naive(std::span<const C> v, std::span<C> derivs) {
  const std::size_t k = v.size();
  std::uint64_t mults = 0;
  for (std::size_t j = 0; j < k; ++j) {
    C p(1.0);
    bool first = true;
    for (std::size_t l = 0; l < k; ++l) {
      if (l == j) continue;
      if (first) {
        p = v[l];
        first = false;
      } else {
        p = p * v[l];
        ++mults;
      }
    }
    derivs[j] = p;
  }
  return mults;
}

}  // namespace polyeval::ad
