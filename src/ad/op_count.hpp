#pragma once

/// \file op_count.hpp
/// Operation accounting for the evaluation pipeline, plus the paper's
/// closed-form multiplication counts (sections 3.1-3.2), which the tests
/// verify against the instrumented implementations.

#include <cstdint>

namespace polyeval::ad {

/// Complex-arithmetic operation tallies.  The paper's cost model counts
/// "complex double multiplications"; additions are tracked for the
/// summation kernel.
struct OpCounts {
  std::uint64_t complex_mul = 0;
  std::uint64_t complex_add = 0;

  OpCounts& operator+=(const OpCounts& o) noexcept {
    complex_mul += o.complex_mul;
    complex_add += o.complex_add;
    return *this;
  }
  friend OpCounts operator+(OpCounts a, const OpCounts& b) noexcept { return a += b; }
  friend bool operator==(const OpCounts&, const OpCounts&) = default;
};

namespace formulas {

/// Multiplications to form all k partial derivatives of a Speelpenning
/// product x_{i1}...x_{ik} with the forward/backward scheme: 3k-6 for
/// k >= 3 (section 3.2); k <= 2 needs none (derivatives are copies).
[[nodiscard]] constexpr std::uint64_t speelpenning_mults(unsigned k) noexcept {
  return k >= 3 ? 3ull * k - 6ull : 0ull;
}

/// Multiplications per monomial thread in the second kernel: derivatives
/// (3k-6), k common-factor products, 1 for the monomial value, k+1
/// coefficient products = 5k-4 for k >= 2 (section 3.2).  For k == 1 the
/// derivative is the common factor itself: 1 value product + 2
/// coefficient products.
[[nodiscard]] constexpr std::uint64_t kernel2_mults(unsigned k) noexcept {
  return k >= 2 ? 5ull * k - 4ull : 3ull;
}

/// Multiplications per monomial in the first kernel's second stage: a
/// common factor is a product of k precomputed powers.
[[nodiscard]] constexpr std::uint64_t common_factor_mults(unsigned k) noexcept {
  return k >= 1 ? k - 1ull : 0ull;
}

/// Multiplications to tabulate powers 2..d-1 of one variable (stage one
/// of the first kernel): d-2 when d >= 3, otherwise none.
[[nodiscard]] constexpr std::uint64_t power_table_mults(unsigned d) noexcept {
  return d >= 3 ? d - 2ull : 0ull;
}

/// Total multiplications for one full evaluation of a uniform system
/// (n, m, k, d) and its Jacobian, powers tabulated once (CPU reference).
[[nodiscard]] constexpr std::uint64_t evaluation_mults(unsigned n, unsigned m, unsigned k,
                                                       unsigned d) noexcept {
  const std::uint64_t monomials = static_cast<std::uint64_t>(n) * m;
  return n * power_table_mults(d) + monomials * common_factor_mults(k) +
         monomials * kernel2_mults(k);
}

/// Additions for the summation stage when zero terms are skipped (CPU):
/// each monomial contributes one addition to its polynomial and k
/// additions to Jacobian entries.
[[nodiscard]] constexpr std::uint64_t evaluation_adds_cpu(unsigned n, unsigned m,
                                                          unsigned k) noexcept {
  return static_cast<std::uint64_t>(n) * m * (k + 1ull);
}

/// Additions in the third kernel (GPU): every one of the n^2+n output
/// polynomials sums exactly m terms, zeros included (section 3.3) --
/// m-1 complex additions once the first term seeds the accumulator.
[[nodiscard]] constexpr std::uint64_t evaluation_adds_gpu(unsigned n, unsigned m) noexcept {
  return (static_cast<std::uint64_t>(n) * n + n) * (m - 1ull);
}

}  // namespace formulas
}  // namespace polyeval::ad
