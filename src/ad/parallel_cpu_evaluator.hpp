#pragma once

/// \file parallel_cpu_evaluator.hpp
/// Multicore evaluation on the host: the paper's own predecessor system
/// (Verschelde & Yoffe, PASCO 2010: "quality up" on multicore
/// workstations, reference [40]) distributed polynomials over worker
/// threads.  Each polynomial's value and Jacobian row are owned by
/// exactly one worker, so no synchronization is needed beyond the
/// parallel-for barrier, and results are deterministic.

#include "ad/cpu_evaluator.hpp"
#include "simt/thread_pool.hpp"

namespace polyeval::ad {

template <prec::RealScalar S>
class ParallelCpuEvaluator {
  using C = cplx::Complex<S>;

 public:
  /// workers == 0 selects the hardware concurrency.
  explicit ParallelCpuEvaluator(const poly::PolynomialSystem& system,
                                unsigned workers = 0)
      : n_(system.dimension()), pool_(workers) {
    polys_.reserve(n_);
    for (unsigned p = 0; p < n_; ++p) {
      PackedPolynomial pp;
      for (const auto& mono : system.polynomial(p).monomials()) {
        PackedMonomial pm;
        pm.coeff = C::from_double(mono.coefficient());
        for (const auto& f : mono.factors()) {
          pm.vars.push_back(f.var);
          pm.exps.push_back(f.exp);
          pm.deriv_coeffs.push_back(
              C::from_double(mono.coefficient()) *
              prec::ScalarTraits<S>::from_double(static_cast<double>(f.exp)));
          max_exp_ = std::max(max_exp_, f.exp);
        }
        pp.monomials.push_back(std::move(pm));
      }
      polys_.push_back(std::move(pp));
    }
  }

  [[nodiscard]] unsigned dimension() const noexcept { return n_; }
  [[nodiscard]] unsigned workers() const noexcept { return pool_.worker_count(); }

  void evaluate(std::span<const C> x, poly::EvalResult<S>& out) {
    out.resize(n_);

    // Shared read-only powers table (row e holds x^e), built once.
    const unsigned d = std::max(max_exp_, 1u);
    powers_.assign(std::size_t{d} * n_, C(S(1.0)));
    if (d >= 2) {
      for (unsigned v = 0; v < n_; ++v) powers_[n_ + v] = x[v];
      for (unsigned e = 2; e < d; ++e)
        for (unsigned v = 0; v < n_; ++v)
          powers_[std::size_t{e} * n_ + v] = powers_[std::size_t{e - 1} * n_ + v] * x[v];
    }

    // One worker per polynomial: disjoint output rows.
    pool_.parallel_for(n_, [&](std::size_t p) { evaluate_polynomial(p, x, out); });
  }

  [[nodiscard]] poly::EvalResult<S> evaluate(std::span<const C> x) {
    poly::EvalResult<S> out(n_);
    evaluate(x, out);
    return out;
  }

 private:
  struct PackedMonomial {
    C coeff;
    std::vector<unsigned> vars;
    std::vector<unsigned> exps;
    std::vector<C> deriv_coeffs;
  };
  struct PackedPolynomial {
    std::vector<PackedMonomial> monomials;
  };

  void evaluate_polynomial(std::size_t p, std::span<const C> x,
                           poly::EvalResult<S>& out) const {
    std::vector<C> gathered, derivs;
    for (const auto& pm : polys_[p].monomials) {
      const std::size_t k = pm.vars.size();
      if (k == 0) {
        out.values[p] += pm.coeff;
        continue;
      }
      C cf = powers_[std::size_t{pm.exps[0] - 1} * n_ + pm.vars[0]];
      for (std::size_t j = 1; j < k; ++j)
        cf = cf * powers_[std::size_t{pm.exps[j] - 1} * n_ + pm.vars[j]];

      gathered.resize(k);
      derivs.resize(k);
      for (std::size_t j = 0; j < k; ++j) gathered[j] = x[pm.vars[j]];
      (void)speelpenning_gradient(std::span<const C>(gathered), std::span<C>(derivs));

      if (k == 1) {
        derivs[0] = cf;
      } else {
        for (std::size_t j = 0; j < k; ++j) derivs[j] = derivs[j] * cf;
      }
      const C value = derivs[k - 1] * gathered[k - 1];

      out.values[p] += value * pm.coeff;
      for (std::size_t j = 0; j < k; ++j)
        out.jacobian[p * n_ + pm.vars[j]] += derivs[j] * pm.deriv_coeffs[j];
    }
  }

  unsigned n_;
  unsigned max_exp_ = 1;
  std::vector<PackedPolynomial> polys_;
  std::vector<C> powers_;
  simt::ThreadPool pool_;
};

}  // namespace polyeval::ad
