#pragma once

/// \file cpu_evaluator.hpp
/// Sequential reference evaluator: the "1 CPU core" baseline of the
/// paper's tables.  Uses exactly the same three-stage algorithm as the
/// GPU pipeline (powers table -> common factors -> Speelpenning products
/// with coefficient folding -> summation), so results agree bit-for-bit
/// in the same precision, while multiplication counts follow the paper's
/// closed forms.
///
/// Unlike the GPU pipeline it accepts non-uniform systems (per-monomial
/// support sizes may differ), which the homotopy substrate needs.

#include <algorithm>
#include <span>
#include <vector>

#include "ad/op_count.hpp"
#include "ad/speelpenning.hpp"
#include "poly/eval_result.hpp"
#include "poly/system.hpp"

namespace polyeval::ad {

template <prec::RealScalar S>
class CpuEvaluator {
  using C = cplx::Complex<S>;

 public:
  explicit CpuEvaluator(const poly::PolynomialSystem& system) : n_(system.dimension()) {
    for (unsigned p = 0; p < n_; ++p) {
      for (const auto& mono : system.polynomial(p).monomials()) {
        PackedMonomial pm;
        pm.poly = p;
        pm.coeff = C::from_double(mono.coefficient());
        for (const auto& f : mono.factors()) {
          pm.vars.push_back(f.var);
          pm.exps.push_back(f.exp);
          // exponent factor folded in the working precision (exact for
          // double, full-accuracy for dd/qd)
          pm.deriv_coeffs.push_back(
              C::from_double(mono.coefficient()) *
              prec::ScalarTraits<S>::from_double(static_cast<double>(f.exp)));
          max_exp_ = std::max(max_exp_, f.exp);
          max_k_ = std::max<std::size_t>(max_k_, pm.vars.size());
        }
        monomials_.push_back(std::move(pm));
      }
    }
  }

  [[nodiscard]] unsigned dimension() const noexcept { return n_; }

  /// Evaluate values and Jacobian at x; out is resized to dimension().
  void evaluate(std::span<const C> x, poly::EvalResult<S>& out) const {
    out.resize(n_);
    last_ops_ = {};
    fill_powers(x);

    gathered_.resize(max_k_);
    derivs_.resize(max_k_);

    for (const auto& pm : monomials_) {
      const std::size_t k = pm.vars.size();
      if (k == 0) {  // constant monomial: contributes only to the value
        out.values[pm.poly] += pm.coeff;
        ++last_ops_.complex_add;
        continue;
      }

      // Stage one, part two: the common factor prod x_{ij}^{a_ij - 1}.
      const C cf = common_factor(pm);

      // Stage two: Speelpenning product derivatives.
      for (std::size_t j = 0; j < k; ++j) gathered_[j] = x[pm.vars[j]];
      const auto v = std::span<const C>(gathered_.data(), k);
      const auto g = std::span<C>(derivs_.data(), k);
      last_ops_.complex_mul += speelpenning_gradient(v, g);

      // Monomial derivatives: common factor times Speelpenning derivatives.
      if (k == 1) {
        derivs_[0] = cf;  // dP/dv = 1: the derivative is the factor itself
      } else {
        for (std::size_t j = 0; j < k; ++j) {
          derivs_[j] = derivs_[j] * cf;
          ++last_ops_.complex_mul;
        }
      }
      // Monomial value from its last derivative.
      const C value = derivs_[k - 1] * gathered_[k - 1];
      ++last_ops_.complex_mul;

      // Stage three (fused on CPU): coefficient products and summation,
      // skipping the structural zeros a GPU thread would add.
      out.values[pm.poly] += value * pm.coeff;
      ++last_ops_.complex_mul;
      ++last_ops_.complex_add;
      for (std::size_t j = 0; j < k; ++j) {
        out.jacobian[static_cast<std::size_t>(pm.poly) * n_ + pm.vars[j]] +=
            derivs_[j] * pm.deriv_coeffs[j];
        ++last_ops_.complex_mul;
        ++last_ops_.complex_add;
      }
    }
  }

  [[nodiscard]] poly::EvalResult<S> evaluate(std::span<const C> x) const {
    poly::EvalResult<S> out(n_);
    evaluate(x, out);
    return out;
  }

  /// Values only, no derivative work: f_p(x) into values[p] -- the CPU
  /// half of a tracker's residual probes.  Every value repeats the full
  /// evaluate()'s arithmetic operation for operation (powers table,
  /// common factor, the forward prefix v_0..v_{k-2} that evaluate()
  /// holds in derivs[k-1], then * cf, * v_{k-1}, * coefficient, summed
  /// in monomial order), so results are BITWISE equal to
  /// evaluate().values.
  void evaluate_values(std::span<const C> x, std::span<C> values) const {
    if (values.size() < n_)
      throw std::invalid_argument("CpuEvaluator: values span too small");
    std::fill_n(values.begin(), n_, C{});
    last_ops_ = {};
    fill_powers(x);

    for (const auto& pm : monomials_) {
      const std::size_t k = pm.vars.size();
      if (k == 0) {
        values[pm.poly] += pm.coeff;
        ++last_ops_.complex_add;
        continue;
      }

      const C cf = common_factor(pm);

      // evaluate()'s value: ((v_0..v_{k-2}) * cf) * v_{k-1}; k == 1
      // degenerates to cf * v_0 (the derivative IS the factor).
      C p = cf;
      if (k >= 2) {
        p = x[pm.vars[0]];
        for (std::size_t j = 2; j < k; ++j) {
          p = p * x[pm.vars[j - 1]];
          ++last_ops_.complex_mul;
        }
        p = p * cf;
        ++last_ops_.complex_mul;
      }
      const C value = p * x[pm.vars[k - 1]];
      ++last_ops_.complex_mul;

      values[pm.poly] += value * pm.coeff;
      ++last_ops_.complex_mul;
      ++last_ops_.complex_add;
    }
  }

  /// Operation tallies of the most recent evaluate() call.
  [[nodiscard]] const OpCounts& last_op_counts() const noexcept { return last_ops_; }

 private:
  struct PackedMonomial {
    unsigned poly = 0;
    C coeff;
    std::vector<unsigned> vars;
    std::vector<unsigned> exps;
    std::vector<C> deriv_coeffs;
  };

  /// Stage one, part one: tabulate powers 0..d-1 of every variable
  /// (row 0 = ones, row 1 = the variable, as in the shared-memory
  /// Powers array of the first kernel).  The ONE copy shared by
  /// evaluate() and evaluate_values(), so the values-only path's
  /// bitwise contract holds by construction.
  void fill_powers(std::span<const C> x) const {
    const unsigned d = std::max(max_exp_, 1u);
    powers_.assign(static_cast<std::size_t>(d) * n_, C(S(1.0)));
    if (d >= 2) {
      for (unsigned v = 0; v < n_; ++v) powers_[n_ + v] = x[v];
      for (unsigned e = 2; e < d; ++e) {
        for (unsigned v = 0; v < n_; ++v) {
          powers_[static_cast<std::size_t>(e) * n_ + v] =
              powers_[static_cast<std::size_t>(e - 1) * n_ + v] * x[v];
          ++last_ops_.complex_mul;
        }
      }
    }
  }

  /// The common factor prod x_{ij}^{a_ij - 1} from the powers table --
  /// the matching shared copy of stage one, part two.
  [[nodiscard]] C common_factor(const PackedMonomial& pm) const {
    const std::size_t k = pm.vars.size();
    C cf = powers_[static_cast<std::size_t>(pm.exps[0] - 1) * n_ + pm.vars[0]];
    for (std::size_t j = 1; j < k; ++j) {
      cf = cf * powers_[static_cast<std::size_t>(pm.exps[j] - 1) * n_ + pm.vars[j]];
      ++last_ops_.complex_mul;
    }
    return cf;
  }

  unsigned n_;
  unsigned max_exp_ = 1;
  std::size_t max_k_ = 1;
  std::vector<PackedMonomial> monomials_;
  mutable std::vector<C> powers_;
  mutable std::vector<C> gathered_;
  mutable std::vector<C> derivs_;
  mutable OpCounts last_ops_;
};

}  // namespace polyeval::ad
