#pragma once

/// \file complex.hpp
/// Complex numbers over an arbitrary real scalar (double, DoubleDouble,
/// QuadDouble).  std::complex only guarantees behaviour for the three
/// built-in floating types, so the multiprecision pipeline uses this type.
///
/// Multiplication is the textbook 4M+2A form -- the operation the paper's
/// cost model counts ("complex double multiplications").

#include <iosfwd>
#include <sstream>

#include "prec/random.hpp"
#include "prec/scalar_traits.hpp"

namespace polyeval::cplx {

using prec::RealScalar;
using prec::ScalarTraits;

template <RealScalar T>
class Complex {
 public:
  constexpr Complex() noexcept = default;
  constexpr Complex(T re) noexcept : re_(re) {}  // NOLINT(google-explicit-constructor)
  constexpr Complex(T re, T im) noexcept : re_(re), im_(im) {}

  [[nodiscard]] constexpr const T& re() const noexcept { return re_; }
  [[nodiscard]] constexpr const T& im() const noexcept { return im_; }

  /// Truncate both parts to hardware doubles.
  [[nodiscard]] Complex<double> to_double() const noexcept {
    return {ScalarTraits<T>::to_double(re_), ScalarTraits<T>::to_double(im_)};
  }

  /// Widen a double-precision complex into this scalar type.
  [[nodiscard]] static Complex from_double(const Complex<double>& z) noexcept {
    return {ScalarTraits<T>::from_double(z.re()), ScalarTraits<T>::from_double(z.im())};
  }

  Complex& operator+=(const Complex& b) noexcept { return *this = *this + b; }
  Complex& operator-=(const Complex& b) noexcept { return *this = *this - b; }
  Complex& operator*=(const Complex& b) noexcept { return *this = *this * b; }
  Complex& operator/=(const Complex& b) noexcept { return *this = *this / b; }

  friend Complex operator-(const Complex& a) noexcept { return {-a.re_, -a.im_}; }
  friend Complex operator+(const Complex& a, const Complex& b) noexcept {
    return {a.re_ + b.re_, a.im_ + b.im_};
  }
  friend Complex operator-(const Complex& a, const Complex& b) noexcept {
    return {a.re_ - b.re_, a.im_ - b.im_};
  }
  friend Complex operator*(const Complex& a, const Complex& b) noexcept {
    return {a.re_ * b.re_ - a.im_ * b.im_, a.re_ * b.im_ + a.im_ * b.re_};
  }

  /// Smith's algorithm: scales by the dominant component to avoid
  /// overflow/underflow of the naive quotient.
  friend Complex operator/(const Complex& a, const Complex& b) noexcept {
    if (ScalarTraits<T>::abs(b.re_) >= ScalarTraits<T>::abs(b.im_)) {
      const T r = b.im_ / b.re_;
      const T den = b.re_ + r * b.im_;
      return {(a.re_ + a.im_ * r) / den, (a.im_ - a.re_ * r) / den};
    }
    const T r = b.re_ / b.im_;
    const T den = b.im_ + r * b.re_;
    return {(a.re_ * r + a.im_) / den, (a.im_ * r - a.re_) / den};
  }

  friend Complex operator*(const Complex& a, const T& s) noexcept {
    return {a.re_ * s, a.im_ * s};
  }
  friend Complex operator*(const T& s, const Complex& a) noexcept { return a * s; }

  friend bool operator==(const Complex& a, const Complex& b) noexcept {
    return a.re_ == b.re_ && a.im_ == b.im_;
  }

 private:
  T re_{};
  T im_{};
};

/// |z|^2 = re^2 + im^2 (no square root; preferred for comparisons).
template <RealScalar T>
[[nodiscard]] T norm_sqr(const Complex<T>& z) noexcept {
  return z.re() * z.re() + z.im() * z.im();
}

/// Euclidean modulus.
template <RealScalar T>
[[nodiscard]] T abs(const Complex<T>& z) noexcept {
  return ScalarTraits<T>::sqrt(norm_sqr(z));
}

/// 1-norm |re| + |im|: a cheap magnitude for pivot selection.
template <RealScalar T>
[[nodiscard]] T norm1(const Complex<T>& z) noexcept {
  return ScalarTraits<T>::abs(z.re()) + ScalarTraits<T>::abs(z.im());
}

template <RealScalar T>
[[nodiscard]] Complex<T> conj(const Complex<T>& z) noexcept {
  return {z.re(), -z.im()};
}

/// Maximum componentwise distance, as a hardware double (test helper).
template <RealScalar T>
[[nodiscard]] double max_abs_diff(const Complex<T>& a, const Complex<T>& b) noexcept {
  const double dr = ScalarTraits<T>::to_double(ScalarTraits<T>::abs(a.re() - b.re()));
  const double di = ScalarTraits<T>::to_double(ScalarTraits<T>::abs(a.im() - b.im()));
  return dr > di ? dr : di;
}

template <RealScalar T>
std::ostream& operator<<(std::ostream& os, const Complex<T>& z) {
  std::ostringstream tmp;
  tmp << "(" << z.re() << (z.im() < T(0.0) ? " - " : " + ")
      << ScalarTraits<T>::abs(z.im()) << "*i)";
  return os << tmp.str();
}

/// Random complex numbers with both parts uniform in [-1, 1].
template <RealScalar T>
class UniformComplex {
 public:
  explicit UniformComplex(std::uint64_t seed) : real_(seed), imag_(seed ^ 0x9e3779b97f4a7c15ull) {}
  Complex<T> operator()() { return {real_(), imag_()}; }

 private:
  prec::UniformScalar<T> real_;
  prec::UniformScalar<T> imag_;
};

}  // namespace polyeval::cplx
