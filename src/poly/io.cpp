#include "poly/io.hpp"

#include <cctype>
#include <charconv>
#include <sstream>

namespace polyeval::poly {

namespace {

std::string format_real(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string format_coefficient(const cplx::Complex<double>& c) {
  if (c.im() == 0.0) return format_real(c.re());
  std::string out = "(";
  out += format_real(c.re());
  out += ',';
  out += format_real(c.im());
  out += ')';
  return out;
}

/// Minimal recursive-descent parser over a string_view.
class Parser {
 public:
  Parser(std::string_view text, unsigned num_vars) : text_(text), num_vars_(num_vars) {}

  [[nodiscard]] Polynomial parse_one_polynomial() {
    auto poly = parse_terms();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing input after polynomial");
    return poly;
  }

  [[nodiscard]] PolynomialSystem parse_whole_system() {
    // First pass: split on ';' to learn the dimension.
    std::vector<std::string_view> chunks;
    std::size_t start = 0;
    for (std::size_t i = 0; i < text_.size(); ++i) {
      if (text_[i] == ';') {
        chunks.push_back(text_.substr(start, i - start));
        start = i + 1;
      }
    }
    const auto rest = text_.substr(start);
    if (rest.find_first_not_of(" \t\r\n") != std::string_view::npos)
      fail("input after the last ';'");
    if (chunks.empty()) fail("no polynomial found (missing ';'?)");

    const auto n = static_cast<unsigned>(chunks.size());
    std::vector<Polynomial> polys;
    polys.reserve(n);
    std::size_t offset = 0;
    for (const auto chunk : chunks) {
      Parser sub(chunk, n);
      sub.base_offset_ = offset;
      polys.push_back(sub.parse_terms_to_end());
      offset += chunk.size() + 1;
    }
    return PolynomialSystem(std::move(polys));
  }

 private:
  [[nodiscard]] Polynomial parse_terms_to_end() {
    auto poly = parse_terms();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing input after polynomial");
    return poly;
  }

  [[nodiscard]] Polynomial parse_terms() {
    std::vector<Monomial> monomials;
    skip_ws();
    if (pos_ == text_.size()) fail("empty polynomial");
    bool negate = false;
    if (peek() == '+' || peek() == '-') negate = (take() == '-');
    monomials.push_back(parse_term(negate));
    for (;;) {
      skip_ws();
      if (pos_ == text_.size()) break;
      const char c = peek();
      if (c != '+' && c != '-') break;
      ++pos_;
      monomials.push_back(parse_term(c == '-'));
    }
    return Polynomial(num_vars_, std::move(monomials));
  }

  [[nodiscard]] Monomial parse_term(bool negate) {
    skip_ws();
    cplx::Complex<double> coeff{1.0, 0.0};
    bool have_coeff = false;

    if (pos_ < text_.size() && (peek() == '(' || std::isdigit(uc(peek())) ||
                                peek() == '.' || peek() == '+' || peek() == '-')) {
      coeff = parse_coefficient();
      have_coeff = true;
    }

    std::vector<VarPower> factors;
    for (;;) {
      skip_ws();
      if (have_coeff || !factors.empty()) {
        // factors after the first element need a '*'
        if (pos_ < text_.size() && peek() == '*') {
          ++pos_;
          skip_ws();
        } else {
          break;
        }
      }
      if (pos_ >= text_.size() || peek() != 'x') {
        if (have_coeff || !factors.empty()) fail("expected variable after '*'");
        fail("expected coefficient or variable");
      }
      factors.push_back(parse_var_power());
      have_coeff = false;  // only relevant before the first factor
    }

    if (negate) coeff = cplx::Complex<double>{-coeff.re(), -coeff.im()};
    return Monomial(coeff, std::move(factors));
  }

  [[nodiscard]] cplx::Complex<double> parse_coefficient() {
    if (peek() == '(') {
      ++pos_;
      const double re = parse_real();
      skip_ws();
      if (pos_ >= text_.size() || take() != ',') fail("expected ',' in complex literal");
      const double im = parse_real();
      skip_ws();
      if (pos_ >= text_.size() || take() != ')') fail("expected ')' in complex literal");
      return {re, im};
    }
    return {parse_real(), 0.0};
  }

  [[nodiscard]] double parse_real() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (peek() == '+' || peek() == '-')) ++pos_;
    bool any = false;
    while (pos_ < text_.size() && (std::isdigit(uc(peek())) || peek() == '.')) {
      ++pos_;
      any = true;
    }
    if (pos_ < text_.size() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (peek() == '+' || peek() == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(uc(peek()))) ++pos_;
    }
    if (!any) fail("expected number");
    double value = 0.0;
    const auto* begin = text_.data() + start;
    const auto* end = text_.data() + pos_;
    const auto result = std::from_chars(begin, end, value);
    if (result.ec != std::errc() || result.ptr != end) fail("malformed number");
    return value;
  }

  [[nodiscard]] VarPower parse_var_power() {
    ++pos_;  // consume 'x'
    if (pos_ >= text_.size() || !std::isdigit(uc(peek())))
      fail("expected variable index after 'x'");
    unsigned var = 0;
    while (pos_ < text_.size() && std::isdigit(uc(peek())))
      var = var * 10 + static_cast<unsigned>(take() - '0');
    if (var >= num_vars_)
      fail("variable x" + std::to_string(var) + " out of range (dimension " +
           std::to_string(num_vars_) + ")");
    unsigned exp = 1;
    skip_ws();
    if (pos_ < text_.size() && peek() == '^') {
      ++pos_;
      skip_ws();
      if (pos_ >= text_.size() || !std::isdigit(uc(peek())))
        fail("expected exponent after '^'");
      exp = 0;
      while (pos_ < text_.size() && std::isdigit(uc(peek())))
        exp = exp * 10 + static_cast<unsigned>(take() - '0');
      if (exp == 0) fail("exponent must be >= 1");
    }
    return {var, exp};
  }

  static unsigned char uc(char c) { return static_cast<unsigned char>(c); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  char take() { return text_[pos_++]; }
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(uc(text_[pos_]))) ++pos_;
  }
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, base_offset_ + pos_);
  }

  std::string_view text_;
  unsigned num_vars_;
  std::size_t pos_ = 0;
  std::size_t base_offset_ = 0;
};

}  // namespace

std::string format(const Monomial& monomial) {
  std::string out = format_coefficient(monomial.coefficient());
  for (const auto& f : monomial.factors()) {
    out += "*x";
    out += std::to_string(f.var);
    if (f.exp > 1) {
      out += '^';
      out += std::to_string(f.exp);
    }
  }
  return out;
}

std::string format(const Polynomial& polynomial) {
  if (polynomial.monomials().empty()) return "0";
  std::string out;
  for (std::size_t i = 0; i < polynomial.monomials().size(); ++i) {
    const auto& mono = polynomial.monomials()[i];
    // pull a pure-real negative sign out of the coefficient so the
    // rendering re-parses ("a - 2*x0", never "a + -2*x0")
    const bool pull_sign = mono.coefficient().im() == 0.0 && mono.coefficient().re() < 0.0;
    if (i == 0) {
      if (pull_sign) out += "-";
    } else {
      out += pull_sign ? " - " : " + ";
    }
    out += format(pull_sign ? Monomial(-mono.coefficient(), mono.factors()) : mono);
  }
  return out;
}

std::string format(const PolynomialSystem& system) {
  std::string out;
  for (const auto& p : system.polynomials()) {
    out += format(p);
    out += ";\n";
  }
  return out;
}

Polynomial parse_polynomial(std::string_view text, unsigned num_vars) {
  Parser parser(text, num_vars);
  return parser.parse_one_polynomial();
}

PolynomialSystem parse_system(std::string_view text) {
  Parser parser(text, 0);
  return parser.parse_whole_system();
}

}  // namespace polyeval::poly
