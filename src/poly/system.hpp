#pragma once

/// \file system.hpp
/// Square polynomial systems f : C^n -> C^n and the *uniform structure*
/// (n, m, k, d) the paper's massively parallel pipeline requires: every
/// polynomial has exactly m monomials, every monomial exactly k distinct
/// variables, each with exponent in [1, d].

#include <optional>
#include <vector>

#include "poly/polynomial.hpp"

namespace polyeval::poly {

/// The regularity assumptions of the paper's section 2.
struct UniformStructure {
  unsigned n = 0;  ///< dimension: number of variables == number of polynomials
  unsigned m = 0;  ///< monomials per polynomial
  unsigned k = 0;  ///< distinct variables per monomial
  unsigned d = 0;  ///< maximal exponent of any variable

  /// Total number of monomials in the system (the tables' #monomials).
  [[nodiscard]] unsigned total_monomials() const noexcept { return n * m; }
  friend bool operator==(const UniformStructure&, const UniformStructure&) = default;
};

class PolynomialSystem {
 public:
  /// Square system: one polynomial per variable.
  explicit PolynomialSystem(std::vector<Polynomial> polynomials);

  [[nodiscard]] unsigned dimension() const noexcept {
    return static_cast<unsigned>(polynomials_.size());
  }
  [[nodiscard]] const std::vector<Polynomial>& polynomials() const noexcept {
    return polynomials_;
  }
  [[nodiscard]] const Polynomial& polynomial(unsigned i) const {
    return polynomials_.at(i);
  }

  /// Detect the paper's uniform structure; nullopt if the system is
  /// irregular (then only the CPU evaluators apply).
  [[nodiscard]] std::optional<UniformStructure> uniform_structure() const noexcept;

  /// Total degrees of the polynomials (Bezout bound factors).
  [[nodiscard]] std::vector<unsigned> degrees() const;

  /// Naive full evaluation: values and Jacobian by per-monomial powering.
  /// Independent oracle for every other evaluator in the repository.
  template <prec::RealScalar T>
  void evaluate_naive(std::span<const cplx::Complex<T>> x,
                      std::span<cplx::Complex<T>> values,
                      std::span<cplx::Complex<T>> jacobian_row_major) const {
    const unsigned n = dimension();
    for (unsigned p = 0; p < n; ++p) {
      values[p] = polynomials_[p].evaluate(x);
      for (unsigned v = 0; v < n; ++v)
        jacobian_row_major[p * n + v] = polynomials_[p].evaluate_derivative(x, v);
    }
  }

 private:
  std::vector<Polynomial> polynomials_;
};

}  // namespace polyeval::poly
