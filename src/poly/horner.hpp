#pragma once

/// \file horner.hpp
/// Nested multivariate Horner forms -- the evaluation scheme the paper
/// recommends for DENSE polynomials (section 2, citing Kojima 2008) in
/// contrast to its own sparse pipeline.
///
/// A polynomial is rewritten recursively in its topmost variable,
///   p = sum_e q_e(x_0..x_{v-1}) * x_v^e,
/// and evaluated by Horner's rule with gap powers for missing exponents:
///   p = ((q_{e1} x^{e1-e2} + q_{e2}) x^{e2-e3} + ...) x^{e_last}.
/// For a dense univariate polynomial this is the classic d-multiplication
/// optimum; for very sparse high-degree polynomials the paper's
/// common-factor + Speelpenning pipeline wins -- the crossover is
/// measured in bench_horner.

#include <cstdint>
#include <span>
#include <vector>

#include "poly/eval_result.hpp"
#include "poly/system.hpp"

namespace polyeval::poly {

class HornerPolynomial {
 public:
  /// Build the nested form; ties are recursively split on the largest
  /// variable index present.
  explicit HornerPolynomial(const Polynomial& polynomial);

  [[nodiscard]] unsigned num_vars() const noexcept { return num_vars_; }

  /// Multiplications one evaluation performs (value only) -- compared by
  /// the benches against the sparse pipeline's (k+1)m + powers cost.
  [[nodiscard]] std::uint64_t value_multiplications() const noexcept { return mults_; }

  /// Evaluate the value.
  template <prec::RealScalar S>
  [[nodiscard]] cplx::Complex<S> evaluate(std::span<const cplx::Complex<S>> x) const {
    return eval_node<S>(root_, x);
  }

  /// Evaluate the partial derivative with respect to x_var (by the
  /// recursive differentiation rule; a reference implementation, not the
  /// paper's AD scheme).
  template <prec::RealScalar S>
  [[nodiscard]] cplx::Complex<S> evaluate_derivative(
      std::span<const cplx::Complex<S>> x, unsigned var) const {
    return eval_derivative<S>(root_, x, var);
  }

 private:
  using NodeId = std::uint32_t;
  static constexpr NodeId kNone = 0xffffffffu;

  struct Term {
    unsigned exp;   ///< exponent of the node's variable (descending)
    NodeId child;   ///< coefficient polynomial in lower variables
  };
  struct Node {
    bool leaf = true;
    /// Leaf coefficients are kept unsummed: merging them in hardware
    /// doubles would perturb the polynomial below the extended
    /// precisions, so the sum happens in the working scalar at
    /// evaluation time.
    std::vector<cplx::Complex<double>> constants;
    unsigned var = 0;         ///< for interior nodes
    std::vector<Term> terms;  ///< exponents strictly descending
  };

  /// Working form during construction: coefficient + sparse support.
  struct FlatMonomial {
    cplx::Complex<double> coeff;
    std::vector<VarPower> factors;
  };

  NodeId build(std::vector<FlatMonomial> monomials);

  template <prec::RealScalar S>
  cplx::Complex<S> power(const cplx::Complex<S>& base, unsigned e) const {
    auto r = base;
    for (unsigned i = 1; i < e; ++i) r *= base;
    return r;
  }

  template <prec::RealScalar S>
  cplx::Complex<S> eval_node(NodeId id, std::span<const cplx::Complex<S>> x) const {
    const Node& node = nodes_[id];
    if (node.leaf) {
      cplx::Complex<S> sum{};
      for (const auto& c : node.constants) sum += cplx::Complex<S>::from_double(c);
      return sum;
    }
    const auto& xv = x[node.var];
    auto acc = eval_node<S>(node.terms.front().child, x);
    for (std::size_t i = 1; i < node.terms.size(); ++i) {
      const unsigned gap = node.terms[i - 1].exp - node.terms[i].exp;
      acc = acc * power(xv, gap) + eval_node<S>(node.terms[i].child, x);
    }
    if (const unsigned tail = node.terms.back().exp; tail > 0)
      acc = acc * power(xv, tail);
    return acc;
  }

  template <prec::RealScalar S>
  cplx::Complex<S> eval_derivative(NodeId id, std::span<const cplx::Complex<S>> x,
                                   unsigned var) const {
    const Node& node = nodes_[id];
    if (node.leaf) return {};
    const auto& xv = x[node.var];
    if (node.var == var) {
      // d/dx_v sum_e q_e x_v^e = sum_e e q_e x_v^{e-1}
      cplx::Complex<S> sum{};
      for (const auto& term : node.terms) {
        if (term.exp == 0) continue;
        auto piece = eval_node<S>(term.child, x) *
                     cplx::Complex<S>(prec::ScalarTraits<S>::from_double(
                         static_cast<double>(term.exp)));
        if (term.exp > 1) piece *= power(xv, term.exp - 1);
        sum += piece;
      }
      return sum;
    }
    if (node.var < var) return {};  // var does not occur below this node
    cplx::Complex<S> sum{};
    for (const auto& term : node.terms) {
      auto piece = eval_derivative<S>(term.child, x, var);
      if (term.exp > 0) piece *= power(xv, term.exp);
      sum += piece;
    }
    return sum;
  }

  unsigned num_vars_;
  std::vector<Node> nodes_;
  NodeId root_ = kNone;
  std::uint64_t mults_ = 0;
};

/// Horner forms for a whole system; the dense-evaluation baseline.
class HornerSystem {
 public:
  explicit HornerSystem(const PolynomialSystem& system) : n_(system.dimension()) {
    polys_.reserve(n_);
    for (const auto& p : system.polynomials()) polys_.emplace_back(p);
  }

  [[nodiscard]] unsigned dimension() const noexcept { return n_; }

  [[nodiscard]] std::uint64_t value_multiplications() const noexcept {
    std::uint64_t total = 0;
    for (const auto& p : polys_) total += p.value_multiplications();
    return total;
  }

  template <prec::RealScalar S>
  void evaluate(std::span<const cplx::Complex<S>> x, EvalResult<S>& out) const {
    out.resize(n_);
    for (unsigned p = 0; p < n_; ++p) {
      out.values[p] = polys_[p].evaluate<S>(x);
      for (unsigned v = 0; v < n_; ++v)
        out.jacobian[std::size_t{p} * n_ + v] = polys_[p].evaluate_derivative<S>(x, v);
    }
  }

 private:
  unsigned n_;
  std::vector<HornerPolynomial> polys_;
};

}  // namespace polyeval::poly
