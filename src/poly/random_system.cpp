#include "poly/random_system.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace polyeval::poly {

PolynomialSystem make_random_system(const SystemSpec& spec) {
  const unsigned n = spec.dimension;
  const unsigned m = spec.monomials_per_polynomial;
  const unsigned k = spec.variables_per_monomial;
  const unsigned d = spec.max_exponent;
  if (n == 0 || m == 0 || k == 0 || d == 0)
    throw std::invalid_argument("SystemSpec: all parameters must be positive");
  if (k > n)
    throw std::invalid_argument("SystemSpec: more variables per monomial than dimension");

  std::mt19937_64 rng(spec.seed);
  std::uniform_real_distribution<double> coeff(-1.0, 1.0);
  std::uniform_real_distribution<double> angle(0.0, 6.283185307179586);
  std::uniform_int_distribution<unsigned> expo(1, d);

  std::vector<unsigned> all_vars(n);
  std::iota(all_vars.begin(), all_vars.end(), 0u);

  std::vector<Polynomial> polys;
  polys.reserve(n);
  for (unsigned p = 0; p < n; ++p) {
    std::vector<Monomial> monos;
    monos.reserve(m);
    bool realized_d = false;
    for (unsigned j = 0; j < m; ++j) {
      // Sample k distinct variables: partial Fisher-Yates on all_vars.
      for (unsigned i = 0; i < k; ++i) {
        std::uniform_int_distribution<unsigned> pick(i, n - 1);
        std::swap(all_vars[i], all_vars[pick(rng)]);
      }
      std::vector<VarPower> factors;
      factors.reserve(k);
      for (unsigned i = 0; i < k; ++i) {
        unsigned e = expo(rng);
        // Force the last monomial to realize the maximal exponent so the
        // generated system's uniform_structure() reports exactly d.
        if (!realized_d && j + 1 == m && i + 1 == k) e = d;
        if (e == d) realized_d = true;
        factors.push_back({all_vars[i], e});
      }
      cplx::Complex<double> c;
      if (spec.unit_coefficients) {
        const double a = angle(rng);
        c = {std::cos(a), std::sin(a)};
      } else {
        c = {coeff(rng), coeff(rng)};
        if (c == cplx::Complex<double>{}) c = {1.0, 0.0};
      }
      monos.emplace_back(c, std::move(factors));
    }
    polys.emplace_back(n, std::move(monos));
  }
  return PolynomialSystem(std::move(polys));
}

RootedSystem make_random_system_with_root(const SystemSpec& spec) {
  if (spec.monomials_per_polynomial < 2)
    throw std::invalid_argument(
        "make_random_system_with_root: need at least 2 monomials per polynomial");
  const auto base = make_random_system(spec);
  auto root =
      make_random_point<double>(spec.dimension, spec.seed ^ 0xd1b54a32d192ed03ull);
  const std::span<const cplx::Complex<double>> root_view(root);

  std::vector<Polynomial> polys;
  polys.reserve(spec.dimension);
  for (const auto& p : base.polynomials()) {
    std::vector<Monomial> monos = p.monomials();
    cplx::Complex<double> partial{};
    for (unsigned j = 0; j + 1 < monos.size(); ++j)
      partial += monos[j].evaluate(root_view);
    // bare value of the last monomial (coefficient divided out)
    const auto& last = monos.back();
    const auto bare = last.evaluate(root_view) / last.coefficient();
    monos.back() = Monomial(-partial / bare, last.factors());
    polys.emplace_back(spec.dimension, std::move(monos));
  }
  return {PolynomialSystem(std::move(polys)), std::move(root)};
}

}  // namespace polyeval::poly
