#pragma once

/// \file io.hpp
/// Human-readable text form for polynomials and systems, in the spirit
/// of PHCpack input files:
///
///   (1.5,-2)*x0^2*x1 + 3*x2 - x0*x1;
///   x1^3 - 1;
///
/// One polynomial per ';'.  Coefficients are real literals or complex
/// "(re,im)" pairs; variables are x0..x{n-1}; '^' takes a positive
/// integer exponent; '*' separates factors.  A square system's dimension
/// is the number of polynomials.

#include <stdexcept>
#include <string>
#include <string_view>

#include "poly/system.hpp"

namespace polyeval::poly {

/// Syntax errors carry a byte offset into the input.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " (at offset " + std::to_string(offset) + ")"),
        offset_(offset) {}
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// Render a monomial ("(re,im)*x0^2*x3"; pure-real coefficients print
/// without the tuple).
[[nodiscard]] std::string format(const Monomial& monomial);

/// Render a polynomial ("a*x0 + b*x1^2 - ...").
[[nodiscard]] std::string format(const Polynomial& polynomial);

/// Render a system, one polynomial per line, ';'-terminated.
[[nodiscard]] std::string format(const PolynomialSystem& system);

/// Parse one polynomial over num_vars variables (no trailing ';').
[[nodiscard]] Polynomial parse_polynomial(std::string_view text, unsigned num_vars);

/// Parse a square system: one polynomial per ';', dimension = number of
/// polynomials, every variable index below the dimension.
[[nodiscard]] PolynomialSystem parse_system(std::string_view text);

}  // namespace polyeval::poly
