#include "poly/system.hpp"

#include <stdexcept>

namespace polyeval::poly {

PolynomialSystem::PolynomialSystem(std::vector<Polynomial> polynomials)
    : polynomials_(std::move(polynomials)) {
  if (polynomials_.empty())
    throw std::invalid_argument("PolynomialSystem: empty system");
  const unsigned n = dimension();
  for (const auto& p : polynomials_) {
    if (p.num_vars() != n)
      throw std::invalid_argument(
          "PolynomialSystem: square systems need num_vars == num_polynomials");
  }
}

std::optional<UniformStructure> PolynomialSystem::uniform_structure() const noexcept {
  UniformStructure s;
  s.n = dimension();
  s.m = polynomials_.front().num_monomials();
  s.k = 0;
  s.d = 0;
  bool first = true;
  for (const auto& p : polynomials_) {
    if (p.num_monomials() != s.m) return std::nullopt;
    for (const auto& mono : p.monomials()) {
      if (first) {
        s.k = mono.support_size();
        first = false;
      } else if (mono.support_size() != s.k) {
        return std::nullopt;
      }
      for (const auto& f : mono.factors()) s.d = std::max(s.d, f.exp);
    }
  }
  if (s.m == 0 || s.k == 0) return std::nullopt;
  return s;
}

std::vector<unsigned> PolynomialSystem::degrees() const {
  std::vector<unsigned> d;
  d.reserve(polynomials_.size());
  for (const auto& p : polynomials_) d.push_back(p.degree());
  return d;
}

}  // namespace polyeval::poly
