#pragma once

/// \file random_system.hpp
/// Seeded generator for the paper's benchmark workloads: random sparse
/// systems with the uniform structure (n, m, k, d) of section 2
/// ("randomly generated polynomial systems of dimension 32", section 5).

#include <cstdint>
#include <random>

#include "poly/system.hpp"

namespace polyeval::poly {

/// Workload description, mirroring the paper's benchmark parameters.
struct SystemSpec {
  unsigned dimension = 32;               ///< n
  unsigned monomials_per_polynomial = 32;  ///< m
  unsigned variables_per_monomial = 9;   ///< k
  unsigned max_exponent = 2;             ///< d
  std::uint64_t seed = 20120102;         ///< deterministic workloads
  bool unit_coefficients = false;        ///< |c| = 1 (homotopy convention)

  [[nodiscard]] UniformStructure structure() const noexcept {
    return {dimension, monomials_per_polynomial, variables_per_monomial, max_exponent};
  }
};

/// Build a random system obeying the spec exactly: every monomial gets k
/// distinct variables (uniform without replacement) with exponents uniform
/// in [1, d]; at least one variable per polynomial receives exponent d so
/// the realized structure matches the requested d.
[[nodiscard]] PolynomialSystem make_random_system(const SystemSpec& spec);

/// A uniform random system together with a point that solves it: the
/// last monomial coefficient of every polynomial is chosen so the
/// polynomial vanishes at the (randomly drawn) root.  The root is
/// generically regular and well conditioned, which makes these systems
/// the right fixture for Newton / quality-up experiments.
struct RootedSystem {
  PolynomialSystem system;
  std::vector<cplx::Complex<double>> root;
};

/// Requires monomials_per_polynomial >= 2 (one coefficient per
/// polynomial is determined by the root).
[[nodiscard]] RootedSystem make_random_system_with_root(const SystemSpec& spec);

/// Random evaluation point with coordinates near the unit circle, the
/// regime path trackers operate in.
template <prec::RealScalar T>
[[nodiscard]] std::vector<cplx::Complex<T>> make_random_point(unsigned dimension,
                                                              std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> angle(0.0, 6.283185307179586);
  std::uniform_real_distribution<double> radius(0.7, 1.3);
  std::vector<cplx::Complex<T>> x;
  x.reserve(dimension);
  for (unsigned i = 0; i < dimension; ++i) {
    const double r = radius(rng);
    const double a = angle(rng);
    x.push_back(cplx::Complex<T>::from_double({r * std::cos(a), r * std::sin(a)}));
  }
  return x;
}

}  // namespace polyeval::poly
