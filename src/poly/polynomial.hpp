#pragma once

/// \file polynomial.hpp
/// Sparse polynomials in n variables as sums of monomials, plus a builder
/// that merges duplicate supports.

#include <map>
#include <span>
#include <vector>

#include "poly/monomial.hpp"

namespace polyeval::poly {

class Polynomial {
 public:
  Polynomial(unsigned num_vars, std::vector<Monomial> monomials);

  [[nodiscard]] unsigned num_vars() const noexcept { return num_vars_; }
  [[nodiscard]] const std::vector<Monomial>& monomials() const noexcept {
    return monomials_;
  }
  [[nodiscard]] unsigned num_monomials() const noexcept {
    return static_cast<unsigned>(monomials_.size());
  }
  /// Total degree of the polynomial (max over monomials).
  [[nodiscard]] unsigned degree() const noexcept;

  /// Naive evaluation (test oracle).
  template <prec::RealScalar T>
  [[nodiscard]] cplx::Complex<T> evaluate(std::span<const cplx::Complex<T>> x) const {
    cplx::Complex<T> sum{};
    for (const auto& mono : monomials_) sum += mono.evaluate(x);
    return sum;
  }

  /// Naive partial derivative (test oracle).
  template <prec::RealScalar T>
  [[nodiscard]] cplx::Complex<T> evaluate_derivative(std::span<const cplx::Complex<T>> x,
                                                     unsigned var) const {
    cplx::Complex<T> sum{};
    for (const auto& mono : monomials_) sum += mono.evaluate_derivative(x, var);
    return sum;
  }

 private:
  unsigned num_vars_;
  std::vector<Monomial> monomials_;
};

/// Accumulates terms keyed by their exponent vector, merging coefficients
/// of equal supports; used by the classic system families.
class PolynomialBuilder {
 public:
  explicit PolynomialBuilder(unsigned num_vars) : num_vars_(num_vars) {}

  /// Add c * prod x_i^{exps[i]}; exps has one entry per variable.
  PolynomialBuilder& add_term(cplx::Complex<double> c, const std::vector<unsigned>& exps);

  /// Add a constant term.
  PolynomialBuilder& add_constant(cplx::Complex<double> c);

  [[nodiscard]] Polynomial build() const;

 private:
  unsigned num_vars_;
  std::map<std::vector<unsigned>, cplx::Complex<double>> terms_;
};

}  // namespace polyeval::poly
