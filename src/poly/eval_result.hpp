#pragma once

/// \file eval_result.hpp
/// Container for the output of one system evaluation: the n values
/// f(x) and the n x n Jacobian matrix Jf(x), row-major.

#include <vector>

#include "cplx/complex.hpp"

namespace polyeval::poly {

template <prec::RealScalar T>
struct EvalResult {
  std::vector<cplx::Complex<T>> values;    ///< f_p(x), p = 0..n-1
  std::vector<cplx::Complex<T>> jacobian;  ///< J[p*n + v] = df_p/dx_v

  explicit EvalResult(unsigned n = 0) { resize(n); }

  void resize(unsigned n) {
    values.assign(n, {});
    jacobian.assign(static_cast<std::size_t>(n) * n, {});
  }

  [[nodiscard]] unsigned dimension() const noexcept {
    return static_cast<unsigned>(values.size());
  }

  [[nodiscard]] const cplx::Complex<T>& jac(unsigned p, unsigned v) const {
    return jacobian[static_cast<std::size_t>(p) * dimension() + v];
  }
};

/// Largest componentwise discrepancy between two results (test helper).
template <prec::RealScalar T>
[[nodiscard]] double max_abs_diff(const EvalResult<T>& a, const EvalResult<T>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.values.size(); ++i)
    worst = std::max(worst, cplx::max_abs_diff(a.values[i], b.values[i]));
  for (std::size_t i = 0; i < a.jacobian.size(); ++i)
    worst = std::max(worst, cplx::max_abs_diff(a.jacobian[i], b.jacobian[i]));
  return worst;
}

}  // namespace polyeval::poly
