#include "poly/families.hpp"

#include <cstdlib>
#include <stdexcept>

namespace polyeval::poly {

PolynomialSystem cyclic(unsigned n) {
  if (n < 2) throw std::invalid_argument("cyclic: need n >= 2");
  std::vector<Polynomial> polys;
  polys.reserve(n);
  for (unsigned l = 0; l + 1 < n; ++l) {
    PolynomialBuilder b(n);
    for (unsigned i = 0; i < n; ++i) {
      std::vector<unsigned> exps(n, 0);
      for (unsigned j = 0; j <= l; ++j) ++exps[(i + j) % n];
      b.add_term({1.0, 0.0}, exps);
    }
    polys.push_back(b.build());
  }
  PolynomialBuilder last(n);
  last.add_term({1.0, 0.0}, std::vector<unsigned>(n, 1));
  last.add_constant({-1.0, 0.0});
  polys.push_back(last.build());
  return PolynomialSystem(std::move(polys));
}

PolynomialSystem katsura(unsigned n) {
  if (n < 1) throw std::invalid_argument("katsura: need n >= 1");
  const unsigned dim = n + 1;  // variables u_0 .. u_n
  const auto clamp = [n](int l) -> unsigned {
    const unsigned a = static_cast<unsigned>(std::abs(l));
    return a > n ? n : a;  // indices |l| <= n by construction
  };
  std::vector<Polynomial> polys;
  polys.reserve(dim);
  for (unsigned m = 0; m < n; ++m) {
    PolynomialBuilder b(dim);
    for (int l = -static_cast<int>(n); l <= static_cast<int>(n); ++l) {
      const unsigned u = clamp(l);
      const unsigned v = clamp(static_cast<int>(m) - l);
      std::vector<unsigned> exps(dim, 0);
      ++exps[u];
      ++exps[v];
      b.add_term({1.0, 0.0}, exps);
    }
    std::vector<unsigned> lin(dim, 0);
    lin[m] = 1;
    b.add_term({-1.0, 0.0}, lin);
    polys.push_back(b.build());
  }
  PolynomialBuilder norm(dim);
  {
    std::vector<unsigned> lin(dim, 0);
    lin[0] = 1;
    norm.add_term({1.0, 0.0}, lin);
  }
  for (unsigned l = 1; l <= n; ++l) {
    std::vector<unsigned> lin(dim, 0);
    lin[l] = 1;
    norm.add_term({2.0, 0.0}, lin);
  }
  norm.add_constant({-1.0, 0.0});
  polys.push_back(norm.build());
  return PolynomialSystem(std::move(polys));
}

PolynomialSystem noon(unsigned n) {
  if (n < 2) throw std::invalid_argument("noon: need n >= 2");
  std::vector<Polynomial> polys;
  polys.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    PolynomialBuilder b(n);
    for (unsigned j = 0; j < n; ++j) {
      if (j == i) continue;
      std::vector<unsigned> exps(n, 0);
      exps[i] = 1;
      exps[j] = 2;
      b.add_term({1.0, 0.0}, exps);
    }
    std::vector<unsigned> lin(n, 0);
    lin[i] = 1;
    b.add_term({-1.1, 0.0}, lin);
    b.add_constant({1.0, 0.0});
    polys.push_back(b.build());
  }
  return PolynomialSystem(std::move(polys));
}

}  // namespace polyeval::poly
