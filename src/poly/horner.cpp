#include "poly/horner.hpp"

#include <algorithm>
#include <map>

namespace polyeval::poly {

HornerPolynomial::HornerPolynomial(const Polynomial& polynomial)
    : num_vars_(polynomial.num_vars()) {
  std::vector<FlatMonomial> flat;
  flat.reserve(polynomial.monomials().size());
  for (const auto& mono : polynomial.monomials())
    flat.push_back({mono.coefficient(), mono.factors()});
  if (flat.empty()) flat.push_back({{0.0, 0.0}, {}});
  root_ = build(std::move(flat));

  // Count the value-evaluation multiplications once: walk the tree.
  // Each interior node with terms e1 > e2 > ... > eL costs
  // sum of gap powers (gap multiplications each... a gap g costs g
  // multiplications: one to apply, g-1 to form the power) plus L-1
  // Horner additions (not counted) plus the tail power.
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.leaf) continue;
    for (std::size_t i = 1; i < node.terms.size(); ++i)
      mults_ += node.terms[i - 1].exp - node.terms[i].exp;  // gap power apply
    mults_ += node.terms.back().exp;                        // tail power
    for (const auto& term : node.terms) stack.push_back(term.child);
  }
}

HornerPolynomial::NodeId HornerPolynomial::build(std::vector<FlatMonomial> monomials) {
  // constant node?
  const bool all_constant = std::all_of(
      monomials.begin(), monomials.end(),
      [](const FlatMonomial& m) { return m.factors.empty(); });
  if (all_constant) {
    Node node;
    node.leaf = true;
    node.constants.reserve(monomials.size());
    for (const auto& m : monomials) node.constants.push_back(m.coeff);
    nodes_.push_back(std::move(node));
    return static_cast<NodeId>(nodes_.size() - 1);
  }

  // split on the largest variable present
  unsigned top = 0;
  for (const auto& m : monomials)
    for (const auto& f : m.factors) top = std::max(top, f.var);

  std::map<unsigned, std::vector<FlatMonomial>, std::greater<>> groups;
  for (auto& m : monomials) {
    unsigned exp = 0;
    auto& factors = m.factors;
    const auto it =
        std::find_if(factors.begin(), factors.end(),
                     [top](const VarPower& f) { return f.var == top; });
    if (it != factors.end()) {
      exp = it->exp;
      factors.erase(it);
    }
    groups[exp].push_back(std::move(m));
  }

  Node node;
  node.leaf = false;
  node.var = top;
  node.terms.reserve(groups.size());
  for (auto& [exp, group] : groups)
    node.terms.push_back({exp, build(std::move(group))});
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

}  // namespace polyeval::poly
