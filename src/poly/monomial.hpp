#pragma once

/// \file monomial.hpp
/// Sparse monomials c * x_{i1}^{a1} ... x_{ik}^{ak} with a sorted support
/// of distinct variables, every exponent >= 1.  This is the (C, A) tuple
/// representation of the paper's problem statement (equation (1)).

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "cplx/complex.hpp"

namespace polyeval::poly {

/// One variable-power factor x_{var}^{exp} of a monomial; exp >= 1.
struct VarPower {
  unsigned var = 0;
  unsigned exp = 1;
  friend bool operator==(const VarPower&, const VarPower&) = default;
};

/// A coefficient together with its support.  Coefficients are stored in
/// hardware doubles (systems are *given* in double precision; extended
/// precision enters through the evaluation point), matching the paper's
/// path-tracking setting.
class Monomial {
 public:
  Monomial(cplx::Complex<double> coefficient, std::vector<VarPower> factors);

  [[nodiscard]] const cplx::Complex<double>& coefficient() const noexcept {
    return coefficient_;
  }
  [[nodiscard]] const std::vector<VarPower>& factors() const noexcept { return factors_; }

  /// Number of distinct variables (the paper's k).
  [[nodiscard]] unsigned support_size() const noexcept {
    return static_cast<unsigned>(factors_.size());
  }
  /// Largest exponent of any variable (bounded by the paper's d).
  [[nodiscard]] unsigned max_exponent() const noexcept;
  /// Sum of all exponents.
  [[nodiscard]] unsigned total_degree() const noexcept;
  /// Smallest dimension n for which this monomial is well formed.
  [[nodiscard]] unsigned min_dimension() const noexcept;

  /// True if x_{var} appears in the support.
  [[nodiscard]] bool contains(unsigned var) const noexcept;
  /// Exponent of x_{var}, 0 if absent.
  [[nodiscard]] unsigned exponent_of(unsigned var) const noexcept;

  /// Naive evaluation by repeated multiplication -- the independent test
  /// oracle against the common-factor / Speelpenning pipeline.
  template <prec::RealScalar T>
  [[nodiscard]] cplx::Complex<T> evaluate(std::span<const cplx::Complex<T>> x) const {
    auto value = cplx::Complex<T>::from_double(coefficient_);
    for (const auto& f : factors_) {
      for (unsigned e = 0; e < f.exp; ++e) value *= x[f.var];
    }
    return value;
  }

  /// Naive partial derivative with respect to x_{var} (0 if absent).
  /// The exponent factor is folded in the working precision, so extended
  /// precisions keep their full accuracy in Jacobian entries.
  template <prec::RealScalar T>
  [[nodiscard]] cplx::Complex<T> evaluate_derivative(std::span<const cplx::Complex<T>> x,
                                                     unsigned var) const {
    const unsigned a = exponent_of(var);
    if (a == 0) return {};
    auto value = cplx::Complex<T>::from_double(coefficient_) *
                 prec::ScalarTraits<T>::from_double(static_cast<double>(a));
    for (const auto& f : factors_) {
      const unsigned e = f.var == var ? f.exp - 1 : f.exp;
      for (unsigned i = 0; i < e; ++i) value *= x[f.var];
    }
    return value;
  }

  friend bool operator==(const Monomial&, const Monomial&) = default;

 private:
  cplx::Complex<double> coefficient_;
  std::vector<VarPower> factors_;
};

}  // namespace polyeval::poly
