#include "poly/polynomial.hpp"

#include <algorithm>

namespace polyeval::poly {

Monomial::Monomial(cplx::Complex<double> coefficient, std::vector<VarPower> factors)
    : coefficient_(coefficient), factors_(std::move(factors)) {
  std::sort(factors_.begin(), factors_.end(),
            [](const VarPower& a, const VarPower& b) { return a.var < b.var; });
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    if (factors_[i].exp == 0)
      throw std::invalid_argument("Monomial: exponent must be >= 1");
    if (i > 0 && factors_[i].var == factors_[i - 1].var)
      throw std::invalid_argument("Monomial: duplicate variable in support");
  }
}

unsigned Monomial::max_exponent() const noexcept {
  unsigned m = 0;
  for (const auto& f : factors_) m = std::max(m, f.exp);
  return m;
}

unsigned Monomial::total_degree() const noexcept {
  unsigned t = 0;
  for (const auto& f : factors_) t += f.exp;
  return t;
}

unsigned Monomial::min_dimension() const noexcept {
  return factors_.empty() ? 0 : factors_.back().var + 1;
}

bool Monomial::contains(unsigned var) const noexcept { return exponent_of(var) != 0; }

unsigned Monomial::exponent_of(unsigned var) const noexcept {
  for (const auto& f : factors_) {
    if (f.var == var) return f.exp;
    if (f.var > var) break;
  }
  return 0;
}

Polynomial::Polynomial(unsigned num_vars, std::vector<Monomial> monomials)
    : num_vars_(num_vars), monomials_(std::move(monomials)) {
  for (const auto& mono : monomials_) {
    if (mono.min_dimension() > num_vars_)
      throw std::invalid_argument("Polynomial: monomial variable out of range");
  }
}

unsigned Polynomial::degree() const noexcept {
  unsigned d = 0;
  for (const auto& mono : monomials_) d = std::max(d, mono.total_degree());
  return d;
}

PolynomialBuilder& PolynomialBuilder::add_term(cplx::Complex<double> c,
                                               const std::vector<unsigned>& exps) {
  if (exps.size() != num_vars_)
    throw std::invalid_argument("PolynomialBuilder: exponent vector has wrong length");
  auto [it, inserted] = terms_.try_emplace(exps, c);
  if (!inserted) it->second += c;
  return *this;
}

PolynomialBuilder& PolynomialBuilder::add_constant(cplx::Complex<double> c) {
  return add_term(c, std::vector<unsigned>(num_vars_, 0));
}

Polynomial PolynomialBuilder::build() const {
  std::vector<Monomial> monos;
  monos.reserve(terms_.size());
  for (const auto& [exps, coeff] : terms_) {
    if (coeff == cplx::Complex<double>{}) continue;  // exact cancellation
    std::vector<VarPower> factors;
    for (unsigned v = 0; v < num_vars_; ++v) {
      if (exps[v] > 0) factors.push_back({v, exps[v]});
    }
    monos.emplace_back(coeff, std::move(factors));
  }
  return {num_vars_, std::move(monos)};
}

}  // namespace polyeval::poly
