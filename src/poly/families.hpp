#pragma once

/// \file families.hpp
/// Classic polynomial-system benchmark families from the homotopy
/// continuation literature (the application domain motivating the paper).
/// These systems are *not* uniform in the (n, m, k, d) sense, so they
/// exercise the general CPU evaluators and the path tracker.

#include "poly/system.hpp"

namespace polyeval::poly {

/// cyclic n-roots: f_l = sum_i prod_{j=i..i+l} x_{j mod n} for l = 0..n-2,
/// and f_{n-1} = x_0 x_1 ... x_{n-1} - 1.
[[nodiscard]] PolynomialSystem cyclic(unsigned n);

/// Katsura-n (magnetism): n+1 variables u_0..u_n.
/// For m = 0..n-1: sum_{l=-n..n} u_{|l|} u_{|m-l|} = u_m  (indices clamped
/// to [0, n]), plus the normalization u_0 + 2 sum_{l=1..n} u_l = 1.
[[nodiscard]] PolynomialSystem katsura(unsigned n);

/// Noonburg neural-network system:
/// f_i = x_i * sum_{j != i} x_j^2 - 1.1 x_i + 1.
[[nodiscard]] PolynomialSystem noon(unsigned n);

}  // namespace polyeval::poly
