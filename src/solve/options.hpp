#pragma once

/// \file options.hpp
/// The ONE composable option surface of the solver stack.  Every knob
/// that used to live scattered across `homotopy::ShardedSolveOptions`,
/// the evaluator geometry pins (`block_size`, interchange layout,
/// stream count), `tune::TuningMode`, `TrackGeometry`, `ShardTrackMode`
/// and `ShardEvalBackend` now has exactly one spelling here, grouped
/// into nested Tracking / Tuning / Sharding sections with validated
/// defaults.  The old spellings remain as thin deprecated aliases (see
/// the bottom of this header and `homotopy::ShardedSolveOptions`) for
/// one release so existing code compiles unchanged; new code should
/// construct a `solve::Options` and hand it to the service or the
/// one-shot entry points.

#include <cstdint>
#include <stdexcept>

#include "homotopy/shard_options.hpp"
#include "homotopy/tracker.hpp"
#include "tune/tune_key.hpp"

namespace polyeval::solve {

/// Canonical spellings of the mode enums.  These alias the existing
/// homotopy/tune types rather than redefining them, so the two
/// surfaces interconvert without casts while the legacy names decay.
using Geometry = homotopy::TrackGeometry;
using TrackMode = homotopy::ShardTrackMode;
using EvalBackend = homotopy::ShardEvalBackend;
using TuningMode = tune::TuningMode;

struct Options {
  /// Path-tracking section: the predictor-corrector/step-control knobs
  /// plus the coordinate geometry they run in.
  struct Tracking {
    homotopy::TrackOptions track;
    Geometry geometry = Geometry::kProjective;
    /// Seed of the random patch hyperplane (projective geometry).
    std::uint64_t patch_seed = 20120717;
    /// Lockstep by default; per-path kept for parity testing.
    TrackMode mode = TrackMode::kLockstep;

    friend bool operator==(const Tracking&, const Tracking&) = default;
  };

  /// Evaluator-geometry section: how auto knobs resolve and which pins
  /// override them.  Results are bitwise independent of every field.
  struct Tuning {
    TuningMode mode = TuningMode::kMeasured;
    unsigned block_size = 0;  ///< 0 = resolve via `mode`
    bool detect_races = false;

    friend bool operator==(const Tuning&, const Tuning&) = default;
  };

  /// Fleet-placement section: shard fan-out and batching capacities.
  struct Sharding {
    unsigned shards = 2;
    unsigned workers_per_shard = 1;  ///< device pool threads per shard
    unsigned chunk_paths = 2;        ///< paths per claim (per-path mode)
    std::uint64_t max_paths = 0;     ///< 0 = all Bezout paths
    EvalBackend backend = EvalBackend::kFused;
    /// Lockstep device batch capacity: live-set launches are chunked to
    /// this many points (also the per-shard evaluator's buffer size).
    unsigned lockstep_batch = 64;

    friend bool operator==(const Sharding&, const Sharding&) = default;
  };

  Tracking tracking;
  Tuning tuning;
  Sharding sharding;
  std::uint64_t gamma_seed = 20120102;

  friend bool operator==(const Options&, const Options&) = default;

  /// Throws std::invalid_argument on nonsense combinations; returns
  /// *this so call sites can validate inline.
  const Options& validate() const {
    if (sharding.shards == 0)
      throw std::invalid_argument("solve::Options: shards must be >= 1");
    if (sharding.workers_per_shard == 0)
      throw std::invalid_argument(
          "solve::Options: workers_per_shard must be >= 1");
    if (sharding.lockstep_batch == 0)
      throw std::invalid_argument(
          "solve::Options: lockstep_batch must be >= 1");
    if (sharding.chunk_paths == 0)
      throw std::invalid_argument("solve::Options: chunk_paths must be >= 1");
    const auto& t = tracking.track;
    if (!(t.initial_step > 0.0) || !(t.min_step > 0.0) ||
        !(t.max_step >= t.initial_step))
      throw std::invalid_argument("solve::Options: bad step bounds");
    if (!(t.step_growth >= 1.0) || !(t.step_shrink > 0.0) ||
        !(t.step_shrink < 1.0))
      throw std::invalid_argument("solve::Options: bad step growth/shrink");
    if (t.corrector_iterations == 0 || t.max_steps == 0)
      throw std::invalid_argument("solve::Options: bad iteration budgets");
    return *this;
  }

  /// Bridge to the legacy spelling (kept while callers migrate).
  [[nodiscard]] homotopy::ShardedSolveOptions to_sharded() const {
    homotopy::ShardedSolveOptions o;
    o.track = tracking.track;
    o.gamma_seed = gamma_seed;
    o.shards = sharding.shards;
    o.workers_per_shard = sharding.workers_per_shard;
    o.chunk_paths = sharding.chunk_paths;
    o.max_paths = sharding.max_paths;
    o.block_size = tuning.block_size;
    o.tuning = tuning.mode;
    o.detect_races = tuning.detect_races;
    o.backend = sharding.backend;
    o.mode = tracking.mode;
    o.geometry = tracking.geometry;
    o.patch_seed = tracking.patch_seed;
    o.lockstep_batch = sharding.lockstep_batch;
    return o;
  }

  /// Bridge from the legacy spelling.
  [[nodiscard]] static Options from_sharded(
      const homotopy::ShardedSolveOptions& o) {
    Options n;
    n.tracking.track = o.track;
    n.tracking.geometry = o.geometry;
    n.tracking.patch_seed = o.patch_seed;
    n.tracking.mode = o.mode;
    n.tuning.mode = o.tuning;
    n.tuning.block_size = o.block_size;
    n.tuning.detect_races = o.detect_races;
    n.sharding.shards = o.shards;
    n.sharding.workers_per_shard = o.workers_per_shard;
    n.sharding.chunk_paths = o.chunk_paths;
    n.sharding.max_paths = o.max_paths;
    n.sharding.backend = o.backend;
    n.sharding.lockstep_batch = o.lockstep_batch;
    n.gamma_seed = o.gamma_seed;
    return n;
  }
};

/// Deprecated aliases of the old scattered spellings, kept one release
/// so `using namespace` call sites compile unchanged while migrating.
using TrackGeometry [[deprecated("use solve::Geometry")]] =
    homotopy::TrackGeometry;
using ShardTrackMode [[deprecated("use solve::TrackMode")]] =
    homotopy::ShardTrackMode;
using ShardEvalBackend [[deprecated("use solve::EvalBackend")]] =
    homotopy::ShardEvalBackend;
using ShardedSolveOptions [[deprecated("use solve::Options")]] =
    homotopy::ShardedSolveOptions;

}  // namespace polyeval::solve
