#pragma once

/// \file report.hpp
/// The versioned result surface shared by the solve service and the
/// one-shot path: `homotopy::SolveSummary` (paths + two counters) is
/// promoted to a `solve::Report` with per-status counts (including
/// kCancelled), winding and residual extremes, and a timing breakdown
/// (queue wait, tracking, modeled device time).  `kVersion` bumps
/// whenever a field changes meaning so persisted dumps stay
/// interpretable.

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "homotopy/solver.hpp"
#include "homotopy/tracker.hpp"

namespace polyeval::solve {

/// Per-status path counts, indexed by PathStatus.
struct StatusCounts {
  static constexpr std::size_t kStatuses = 5;
  std::array<std::uint64_t, kStatuses> counts{};

  [[nodiscard]] std::uint64_t& operator[](homotopy::PathStatus s) {
    return counts[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::uint64_t operator[](homotopy::PathStatus s) const {
    return counts[static_cast<std::size_t>(s)];
  }
};

template <prec::RealScalar S>
struct Report {
  /// Bumped when any field changes meaning.
  static constexpr unsigned kVersion = 1;

  std::vector<homotopy::TrackResult<S>> paths;
  std::uint64_t attempted = 0;
  StatusCounts by_status;          ///< per-PathStatus endpoint counts
  unsigned max_winding = 0;        ///< largest endgame winding observed
  double max_final_residual = 0.0; ///< worst endpoint residual
  std::uint64_t total_steps = 0;   ///< accepted steps across all paths
  std::uint64_t total_rejections = 0;

  /// Timing breakdown.  Wall fields are host clock; modeled_us is the
  /// device cost model's makespan share for this request (the solve
  /// service's scheduling currency).
  struct Timing {
    double queue_wall_us = 0.0;  ///< submit -> first path adopted
    double track_wall_us = 0.0;  ///< first adoption -> last retirement
    double total_wall_us = 0.0;  ///< submit -> report finalized
    double modeled_us = 0.0;     ///< modeled device time attributed
    std::uint64_t rounds = 0;    ///< lockstep rounds this request rode in
  } timing;

  [[nodiscard]] std::uint64_t successes() const {
    return by_status[homotopy::PathStatus::kConverged];
  }
  [[nodiscard]] std::uint64_t at_infinity() const {
    return by_status[homotopy::PathStatus::kAtInfinity];
  }
  [[nodiscard]] std::uint64_t cancelled() const {
    return by_status[homotopy::PathStatus::kCancelled];
  }
  /// Paths with a classified endpoint (the solved_frac numerator).
  [[nodiscard]] std::uint64_t classified() const {
    return successes() + at_infinity();
  }

  /// Tally the count/extreme fields from `paths` (idempotent).
  void retally() {
    by_status = {};
    max_winding = 0;
    max_final_residual = 0.0;
    total_steps = 0;
    total_rejections = 0;
    attempted = paths.size();
    for (const auto& p : paths) {
      ++by_status[p.status];
      max_winding = std::max(max_winding, p.winding);
      max_final_residual = std::max(max_final_residual, p.final_residual);
      total_steps += p.steps;
      total_rejections += p.rejections;
    }
  }

  /// The legacy summary view (solver.hpp consumers).
  [[nodiscard]] homotopy::SolveSummary<S> to_summary() const {
    homotopy::SolveSummary<S> s;
    s.paths = paths;
    s.attempted = attempted;
    s.successes = successes();
    s.at_infinity = at_infinity();
    return s;
  }
};

/// Promote a legacy summary (one-shot solver output) to a Report.
template <prec::RealScalar S>
[[nodiscard]] Report<S> make_report(const homotopy::SolveSummary<S>& summary) {
  Report<S> r;
  r.paths = summary.paths;
  r.retally();
  return r;
}

}  // namespace polyeval::solve
