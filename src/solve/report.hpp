#pragma once

/// \file report.hpp
/// The versioned result surface shared by the solve service and the
/// one-shot path: `homotopy::SolveSummary` (paths + two counters) is
/// promoted to a `solve::Report` with per-status counts (including
/// kCancelled), winding and residual extremes, and a timing breakdown
/// (queue wait, tracking, modeled device time).  `kVersion` bumps
/// whenever a field changes meaning so persisted dumps stay
/// interpretable.

#include <algorithm>
#include <array>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "homotopy/solver.hpp"
#include "homotopy/tracker.hpp"

namespace polyeval::solve {

/// Per-status path counts, indexed by PathStatus.
struct StatusCounts {
  static constexpr std::size_t kStatuses = 5;
  std::array<std::uint64_t, kStatuses> counts{};

  [[nodiscard]] std::uint64_t& operator[](homotopy::PathStatus s) {
    return counts[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::uint64_t operator[](homotopy::PathStatus s) const {
    return counts[static_cast<std::size_t>(s)];
  }
};

template <prec::RealScalar S>
struct Report {
  /// Bumped when any field changes meaning.  v2: added the scheduling
  /// metrics snapshot (`metrics`).
  static constexpr unsigned kVersion = 2;

  std::vector<homotopy::TrackResult<S>> paths;
  std::uint64_t attempted = 0;
  StatusCounts by_status;          ///< per-PathStatus endpoint counts
  unsigned max_winding = 0;        ///< largest endgame winding observed
  double max_final_residual = 0.0; ///< worst endpoint residual
  std::uint64_t total_steps = 0;   ///< accepted steps across all paths
  std::uint64_t total_rejections = 0;

  /// Timing breakdown.  Wall fields are host clock; modeled_us is the
  /// device cost model's makespan share for this request (the solve
  /// service's scheduling currency).
  struct Timing {
    double queue_wall_us = 0.0;  ///< submit -> first path adopted
    double track_wall_us = 0.0;  ///< first adoption -> last retirement
    double total_wall_us = 0.0;  ///< submit -> report finalized
    double modeled_us = 0.0;     ///< modeled device time attributed
    std::uint64_t rounds = 0;    ///< lockstep rounds this request rode in
  } timing;

  /// Per-request scheduling metrics, filled by the solve service (zero
  /// on the one-shot path): what cross-request batching and the work
  /// stealer actually did to THIS request -- the per-request view of
  /// the registry-level counters SolveService::metrics() aggregates.
  struct Metrics {
    std::uint64_t shared_rounds = 0;  ///< rounds ridden with >= 2 tenants
    unsigned peak_tenants = 0;        ///< most co-tenants in one round
    std::uint64_t steals = 0;         ///< times a path moved shards
    std::uint64_t queue_pulls = 0;    ///< paths pulled from pending to slots
  } metrics;

  [[nodiscard]] std::uint64_t successes() const {
    return by_status[homotopy::PathStatus::kConverged];
  }
  [[nodiscard]] std::uint64_t at_infinity() const {
    return by_status[homotopy::PathStatus::kAtInfinity];
  }
  [[nodiscard]] std::uint64_t cancelled() const {
    return by_status[homotopy::PathStatus::kCancelled];
  }
  /// Paths with a classified endpoint (the solved_frac numerator).
  [[nodiscard]] std::uint64_t classified() const {
    return successes() + at_infinity();
  }

  /// Tally the count/extreme fields from `paths` (idempotent).
  void retally() {
    by_status = {};
    max_winding = 0;
    max_final_residual = 0.0;
    total_steps = 0;
    total_rejections = 0;
    attempted = paths.size();
    for (const auto& p : paths) {
      ++by_status[p.status];
      max_winding = std::max(max_winding, p.winding);
      max_final_residual = std::max(max_final_residual, p.final_residual);
      total_steps += p.steps;
      total_rejections += p.rejections;
    }
  }

  /// Human-readable rendering: version, per-status counts, extremes,
  /// the FULL timing breakdown (every Timing field prints, zero or
  /// not -- a zero queue wait is information, not noise) and the
  /// scheduling metrics.  Pinned in test_solve_api.
  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    os << "solve report v" << kVersion << ": " << attempted << " paths";
    for (std::size_t s = 0; s < StatusCounts::kStatuses; ++s)
      os << (s == 0 ? " (" : ", ")
         << homotopy::to_string(static_cast<homotopy::PathStatus>(s)) << "="
         << by_status.counts[s];
    os << ")\n";
    os << "  extremes: max_winding=" << max_winding
       << " max_final_residual=" << max_final_residual
       << " steps=" << total_steps << " rejections=" << total_rejections
       << "\n";
    os << "  timing: queue_wall_us=" << timing.queue_wall_us
       << " track_wall_us=" << timing.track_wall_us
       << " total_wall_us=" << timing.total_wall_us
       << " modeled_us=" << timing.modeled_us << " rounds=" << timing.rounds
       << "\n";
    os << "  scheduling: shared_rounds=" << metrics.shared_rounds
       << " peak_tenants=" << metrics.peak_tenants
       << " steals=" << metrics.steals
       << " queue_pulls=" << metrics.queue_pulls << "\n";
    return os.str();
  }

  /// The legacy summary view (solver.hpp consumers).
  [[nodiscard]] homotopy::SolveSummary<S> to_summary() const {
    homotopy::SolveSummary<S> s;
    s.paths = paths;
    s.attempted = attempted;
    s.successes = successes();
    s.at_infinity = at_infinity();
    return s;
  }
};

/// Promote a legacy summary (one-shot solver output) to a Report.
template <prec::RealScalar S>
[[nodiscard]] Report<S> make_report(const homotopy::SolveSummary<S>& summary) {
  Report<S> r;
  r.paths = summary.paths;
  r.retally();
  return r;
}

}  // namespace polyeval::solve
