#pragma once

/// \file solve_service.hpp
/// The persistent solve front end: a SolveService accepts concurrent
/// SolveRequests, multiplexes their paths onto one DeviceRegistry, and
/// hands each client a SolveTicket for progress polling, cooperative
/// cancellation and the final versioned Report.
///
/// Scheduling model.  Requests whose systems share one uniform
/// (n, m, k, d) structure AND whose tracking/tuning options compare
/// equal land in one *group*; a group owns, per device shard, a
/// multi-tenant fused evaluator (one launch serves points of several
/// requests), a slot-aware batched homotopy and a BatchPathTracker.
/// Each service tick runs one lockstep round on every shard with live
/// paths -- shards advance in parallel (their devices are independent)
/// -- then a single coordinator phase drains retired slots into
/// reports, applies cancellations and deadlines, pulls queued paths
/// into freed slots, steals live paths from a loaded shard when a
/// sibling idles (path state is just (x, t, step, streak), and a
/// path's trajectory is schedule-independent, so coalescing, pulling
/// and stealing all preserve bitwise parity with a standalone solve),
/// and admits queued requests as tenant slots free up.
///
/// Heterogeneous fleets.  Config::specs builds a mixed-device registry;
/// every placement decision is then throughput-weighted: freed slots
/// fill the shard with the lowest live/weight ratio, stealing equalizes
/// live/weight instead of raw live counts (a 2x card carries twice the
/// paths), and per-shard evaluators pin the geometry the autotuner
/// resolved for THEIR spec (SystemCache keeps one geometry per distinct
/// spec).  Weights shape placement only -- a path's trajectory is
/// schedule-independent -- so mixed fleets keep bitwise parity with
/// uniform ones.
///
/// Fairness.  Config::fairness = 0 keeps FIFO slot filling (a huge
/// request's queued paths all start before a later small request's).
/// A nonzero value is a deficit-round-robin quantum: each fill pass
/// grants every active request `fairness` more path-credits and takes
/// slots round-robin, so small requests reach slots -- and retire --
/// while a huge neighbour is still draining.  Placement-only, same
/// parity argument.
///
/// Modeled accounting.  Every device's launch log is priced with the
/// GpuCostModel after each round (rounds clear the log on entry, so
/// charging is per round); a tick costs the MAX over devices -- shards
/// run concurrently -- and the service clock is the sum of tick costs.
/// Cross-request batching wins on this clock because merged rounds
/// amortize the fixed launch overhead that per-request rounds would
/// each pay (bench_service gates the claim).
///
/// Admission control: a bounded submit queue, a per-request path
/// budget, and an AdmissionVerdict returned synchronously on submit.

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "audit/kernel_auditor.hpp"
#include "homotopy/batch_tracker.hpp"
#include "homotopy/homogenize.hpp"
#include "homotopy/solver.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "poly/random_system.hpp"
#include "service/multitenant_homotopy.hpp"
#include "service/request.hpp"
#include "service/system_cache.hpp"
#include "simt/device_registry.hpp"
#include "simt/timing.hpp"
#include "solve/options.hpp"
#include "solve/report.hpp"
#include "tune/autotuner.hpp"

namespace polyeval::service {

/// Aggregate service counters (one snapshot under the service lock).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_budget = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled_requests = 0;  ///< completed by cancel/deadline
  std::uint64_t ticks = 0;
  std::uint64_t shard_rounds = 0;       ///< lockstep rounds run, all shards
  std::uint64_t coalesced_rounds = 0;   ///< rounds carrying >= 2 requests
  unsigned max_tenants_in_round = 0;    ///< most requests in one round
  std::uint64_t live_steals = 0;        ///< paths moved between shards
  std::uint64_t weighted_steals = 0;    ///< of those, on a mixed fleet
  std::uint64_t queue_pulls = 0;        ///< pending paths pulled into slots
  double total_modeled_us = 0.0;        ///< the service's modeled clock
  /// Modeled µs each device spent busy (its summed per-tick charges;
  /// busy / total_modeled_us is the device's utilization).
  std::vector<double> device_busy_us;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// New SystemCache entries whose first launch ran under the kernel
  /// auditor (Config::audit_new_systems), and the findings they raised.
  std::uint64_t audited_systems = 0;
  std::uint64_t audit_findings = 0;
  /// Most kernel launches one device log held at a settle fold: the
  /// steady-state capacity the per-tick clear_log keeps warm.
  std::uint64_t log_kernel_watermark = 0;
};

template <prec::RealScalar S>
class SolveService {
  using C = cplx::Complex<S>;
  using State = detail::RequestState<S>;
  using Clock = std::chrono::steady_clock;

 public:
  struct Config {
    unsigned shards = 2;
    unsigned workers_per_shard = 1;
    simt::DeviceSpec spec = simt::DeviceSpec::tesla_c2050();
    /// Heterogeneous fleet: when non-empty, one device shard per entry
    /// (overrides `shards` and `spec`).  Placement goes throughput-
    /// weighted; results stay bitwise identical to a uniform fleet.
    std::vector<simt::DeviceSpec> specs;
    /// Deficit-round-robin quantum (paths) for filling freed slots;
    /// 0 = FIFO.  See the fairness note in the file comment.
    std::uint64_t fairness = 0;
    /// Device evaluator batch capacity (points per launch).
    unsigned lockstep_batch = 64;
    /// Tracker slots per shard: the most live paths one shard carries.
    std::size_t slots_per_shard = 64;
    /// Resident requests per structure group (device table capacity).
    unsigned max_tenants = 8;
    /// Bounded submit queue (admitted-but-not-yet-active requests).
    std::size_t max_queued = 64;
    /// Per-request path budget (admission control).
    std::uint64_t max_paths_per_request = 4096;
    /// Spawn a background thread that ticks whenever work is pending;
    /// submit/poll/cancel stay safe to call from client threads.
    bool async = false;
    /// Injectable SystemCache hash (tests force collisions).
    typename SystemCache<S>::Hasher hasher = {};
    simt::GpuCostModel cost = {};
    /// Run the first launch of each newly cached SystemCache entry
    /// under audit::KernelAuditor on a scratch device (initcheck, OOB,
    /// synccheck, determinism).  An admission-time one-off per distinct
    /// system; steady-state launches stay uninstrumented and findings
    /// are advisory (counted in ServiceStats / metrics, never thrown).
    bool audit_new_systems = false;
    /// Lifecycle tracing depth (obs::Tracer).  kOff -- the default --
    /// records nothing and adds no allocations or launches; the
    /// metrics registry is always on (its steady-state cost is relaxed
    /// atomic adds).  Any level preserves bitwise endpoints: tracing
    /// only reads the launch logs the scheduler already prices.
    obs::TraceLevel trace = obs::TraceLevel::kOff;
  };

  explicit SolveService(Config config = {})
      : config_(validate_config(std::move(config))),
        registry_(fleet_specs(config_), config_.workers_per_shard),
        cache_(config_.hasher),
        tracer_(config_.trace) {
    config_.shards = registry_.size();
    if (registry_.size() > 1)
      pool_.emplace(registry_.size() - 1);
    device_charge_.assign(registry_.size(), 0.0);
    device_busy_us_.assign(registry_.size(), 0.0);
    device_log_watermark_.assign(registry_.size(), 0);
    fleet_spec_list_ = registry_spec_list();
    tracer_.set_devices(registry_.size());
    tracker_metrics_ = obs::TrackerMetrics::from_registry(metrics_);
    resolve_instruments();
    if (config_.async)
      worker_ = std::thread([this] { async_loop(); });
  }

  ~SolveService() {
    if (worker_.joinable()) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
      }
      cv_.notify_all();
      worker_.join();
    }
  }

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Admit or reject `request`.  Always returns a ticket; check
  /// verdict() (a rejected ticket is immediately done with no report).
  SolveTicket<S> submit(SolveRequest<S> request) {
    auto state = std::make_shared<State>(std::move(request));

    std::lock_guard<std::mutex> lk(mu_);
    state->id = ++next_id_;
    ++stats_.submitted;
    inst_.submitted->inc();

    QueuedItem item;
    item.state = state;
    item.submitted_at = Clock::now();
    const AdmissionVerdict verdict = screen(*state, item);
    state->verdict = verdict;
    if (verdict != AdmissionVerdict::kAdmitted) {
      reject_counter(verdict);
      state->status.store(RequestStatus::kRejected, std::memory_order_release);
      return SolveTicket<S>(state);
    }
    ++stats_.admitted;
    inst_.admitted->inc();
    state->paths_total.store(item.paths, std::memory_order_relaxed);
    item.span = tracer_.begin_span("queued", "queue", state->id,
                                   stats_.total_modeled_us,
                                   obs::TraceLevel::kRequests);
    queued_.push_back(std::move(item));
    cv_.notify_all();
    return SolveTicket<S>(state);
  }

  /// One scheduler tick (sync mode); returns whether work remains.
  bool step() {
    std::lock_guard<std::mutex> lk(mu_);
    return step_locked();
  }

  /// Tick until every admitted request has completed (sync mode).
  void drain() {
    while (step()) {
    }
  }

  /// Block until no queued or active work remains (async mode; returns
  /// immediately in sync mode once drained manually).
  void wait_idle() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !work_remaining_locked(); });
  }

  [[nodiscard]] ServiceStats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    ServiceStats s = stats_;
    s.device_busy_us = device_busy_us_;
    s.cache_hits = cache_.hits();
    s.cache_misses = cache_.misses();
    return s;
  }

  /// The placement weights the service schedules by (by device index,
  /// fastest == 1.0; all 1.0 on a uniform fleet).
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return registry_.weights();
  }

  /// The service's metrics registry, gauges refreshed under the lock
  /// (queue depth, active requests, SystemCache and TuneCache hit
  /// counts).  The returned reference is stable for the service's
  /// lifetime; expose with `service.metrics().expose(os)`.
  [[nodiscard]] const obs::MetricsRegistry& metrics() {
    std::lock_guard<std::mutex> lk(mu_);
    inst_.queue_depth->set(static_cast<double>(queued_.size()));
    std::size_t active = 0;
    for_each_group([&](auto& g) { active += g.active.size(); });
    inst_.active_requests->set(static_cast<double>(active));
    inst_.cache_hits->set(static_cast<double>(cache_.hits()));
    inst_.cache_misses->set(static_cast<double>(cache_.misses()));
    inst_.tune_hits->set(
        static_cast<double>(tune::Autotuner::global().hits()));
    inst_.tune_misses->set(
        static_cast<double>(tune::Autotuner::global().misses()));
    // Per-device utilization: the fraction of the service's modeled
    // clock this device was busy for.  A weighted scheduler's goal is
    // every device near 1.0; an unweighted one idles the fast card.
    for (unsigned d = 0; d < registry_.size(); ++d)
      inst_.device_util[d]->set(stats_.total_modeled_us > 0.0
                                    ? device_busy_us_[d] /
                                          stats_.total_modeled_us
                                    : 0.0);
    // Newly measured tune decisions since the last scrape fold their
    // memory-behaviour profiles in (watermark keeps polling additive).
    tune_fold_from_ = tune::Autotuner::global().fold_profiles_into(
        metrics_, tune_fold_from_);
    return metrics_;
  }

  /// Write the recorded lifecycle trace as Chrome trace-event JSON
  /// (load in https://ui.perfetto.dev or chrome://tracing).  Empty but
  /// valid when Config::trace is kOff.  Call between ticks (after
  /// drain / wait_idle); takes the service lock.
  void export_trace(std::ostream& os) const {
    std::lock_guard<std::mutex> lk(mu_);
    obs::write_chrome_trace(os, tracer_);
  }

  /// The raw tracer (tests inspect spans/slices).  Read-only; callers
  /// must be quiesced (no concurrent ticks), as with export_trace.
  [[nodiscard]] const obs::Tracer& tracer() const noexcept { return tracer_; }

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  // ----- internal request bookkeeping -------------------------------

  struct RunInfo {
    std::shared_ptr<State> state;
    unsigned tenant = 0;
    std::vector<std::vector<C>> points;  ///< tracker-dimension starts
    std::uint64_t total = 0;
    std::uint64_t retired = 0;
    std::uint64_t ticks_tracking = 0;
    bool cancelling = false;
    double admit_modeled_us = 0.0;
    double modeled_us = 0.0;
    Clock::time_point submitted_at, activated_at;
    /// Per-request scheduling metrics (solve::Report::Metrics source).
    std::uint64_t shared_rounds = 0;
    unsigned peak_tenants = 0;
    std::uint64_t steals = 0;
    std::uint64_t queue_pulls = 0;
    std::size_t span = obs::Tracer::npos;  ///< tracking span handle
    /// Paths admitted but not yet in a tracker slot, in path order.
    /// Per-run (not one group-wide deque) so the fairness scheduler can
    /// interleave requests; FIFO mode walks runs in activation order,
    /// which reproduces the old group-wide queue exactly.
    std::deque<std::uint64_t> pending_paths;
    std::uint64_t deficit = 0;  ///< DRR credit (fairness mode only)
  };

  struct QueuedItem {
    std::shared_ptr<State> state;
    std::shared_ptr<const typename SystemCache<S>::Entry> entry;
    std::uint64_t paths = 0;
    Clock::time_point submitted_at;
    std::size_t span = obs::Tracer::npos;  ///< queue span handle
  };

  /// Coalescing key: requests share a group's rounds only when ALL of
  /// this compares equal (the structure hash of the SystemCache is just
  /// a bucket; grouping uses full equality here).
  struct GroupKey {
    poly::UniformStructure structure;
    solve::Options::Tracking tracking;
    solve::Options::Tuning tuning;

    friend bool operator==(const GroupKey&, const GroupKey&) = default;
  };

  template <class Homo>
  struct Group {
    static constexpr bool kProjective =
        std::is_same_v<Homo, MultiTenantProjectiveHomotopy<S>>;

    struct Shard {
      simt::Device& dev;
      unsigned device_index;
      core::MultiTenantFusedEvaluator<S> eval;
      Homo homo;
      homotopy::BatchPathTracker<S, Homo> tracker;
      struct Owner {
        RunInfo* run = nullptr;
        std::uint64_t path = 0;
      };
      std::vector<Owner> owners;  ///< by slot; run == nullptr -> free
      std::vector<std::size_t> free_slots;
      std::size_t live = 0;
      bool rounded = false;  ///< ran a round this tick

      Shard(simt::Device& d, unsigned dev_index,
            const poly::UniformStructure& st, unsigned max_tenants,
            unsigned capacity,
            typename core::MultiTenantFusedEvaluator<S>::Options eopts,
            const homotopy::TrackOptions& topts, std::size_t slots)
          : dev(d),
            device_index(dev_index),
            eval(d, st, max_tenants, capacity, eopts),
            homo(eval, slots),
            tracker(d, homo, topts, slots) {
        owners.resize(slots);
        free_slots.reserve(slots);
        for (std::size_t i = slots; i-- > 0;) free_slots.push_back(i);
      }
    };

    GroupKey key;
    std::vector<cplx::Complex<double>> patch_d;  ///< projective only
    std::vector<C> patch_s;
    std::vector<std::unique_ptr<Shard>> shards;
    /// Placement weights by shard index (fastest == 1.0): measured via
    /// the TuneCache when every spec has a decision for this structure,
    /// modeled clock x cores otherwise.
    std::vector<double> weights;
    std::vector<unsigned> free_tenants;
    std::vector<std::unique_ptr<RunInfo>> active;
    std::size_t rr_cursor = 0;  ///< fairness rotation over active runs

    [[nodiscard]] bool has_pending() const {
      for (const auto& run : active)
        if (!run->pending_paths.empty()) return true;
      return false;
    }
  };

  using ProjGroup = Group<MultiTenantProjectiveHomotopy<S>>;
  using AffGroup = Group<MultiTenantAffineHomotopy<S>>;

  // ----- admission --------------------------------------------------

  static Config validate_config(Config c) {
    if ((c.shards == 0 && c.specs.empty()) || c.lockstep_batch == 0 ||
        c.slots_per_shard == 0 || c.max_tenants == 0)
      throw std::invalid_argument("SolveService: bad config");
    return c;
  }

  [[nodiscard]] static std::vector<simt::DeviceSpec> fleet_specs(
      const Config& c) {
    if (!c.specs.empty()) return c.specs;
    return std::vector<simt::DeviceSpec>(c.shards, c.spec);
  }

  /// The fleet's distinct spec list for SystemCache lookups (dedup is
  /// the cache's job; this just snapshots the registry order).
  [[nodiscard]] std::vector<simt::DeviceSpec> registry_spec_list() const {
    std::vector<simt::DeviceSpec> specs;
    specs.reserve(registry_.size());
    for (unsigned i = 0; i < registry_.size(); ++i)
      specs.push_back(registry_.spec(i));
    return specs;
  }

  /// Pre-activation screening under the lock: validates options,
  /// resolves the system cache entry (packing + total-degree start +
  /// tuned geometry, shared across requests), counts paths, and applies
  /// the queue and path budgets.
  AdmissionVerdict screen(State& state, QueuedItem& item) {
    const auto& req = state.request;
    try {
      req.options.validate();
    } catch (const std::invalid_argument&) {
      return AdmissionVerdict::kInvalid;
    }
    // The service IS the fused lockstep engine; other modes stay on the
    // one-shot sharded API.
    if (req.options.tracking.mode != solve::TrackMode::kLockstep ||
        req.options.sharding.backend != solve::EvalBackend::kFused)
      return AdmissionVerdict::kInvalid;
    const std::size_t misses_before = cache_.misses();
    try {
      item.entry = cache_.lookup(
          req.target, config_.lockstep_batch, req.options.tuning.mode,
          std::span<const simt::DeviceSpec>(fleet_spec_list_));
    } catch (const std::exception&) {
      return AdmissionVerdict::kInvalid;  // non-uniform / degenerate system
    }
    if (config_.audit_new_systems && cache_.misses() != misses_before)
      audit_new_entry(*item.entry);
    const unsigned n = req.target.dimension();
    if (req.start) {
      if (req.start->system.degrees() != req.target.degrees())
        return AdmissionVerdict::kInvalid;
      for (const auto& r : req.start->roots)
        if (r.size() != n) return AdmissionVerdict::kInvalid;
      item.paths = req.start->roots.size();
    } else {
      std::uint64_t paths = item.entry->start.num_paths();
      if (req.options.sharding.max_paths > 0)
        paths = std::min(paths, req.options.sharding.max_paths);
      else if (item.entry->start.num_paths_saturated())
        return AdmissionVerdict::kInvalid;
      item.paths = paths;
    }
    if (item.paths > config_.max_paths_per_request)
      return AdmissionVerdict::kPathBudgetExceeded;
    if (queued_.size() >= config_.max_queued)
      return AdmissionVerdict::kQueueFull;
    return AdmissionVerdict::kAdmitted;
  }

  /// One audited launch of the production fused kernel for a system the
  /// cache has never seen, on a scratch device with the entry's tuned
  /// geometry pinned.  Advisory: findings land in stats and metrics,
  /// and no failure here may reject the request.
  void audit_new_entry(const typename SystemCache<S>::Entry& entry) {
    try {
      simt::Device probe(fleet_spec_list_.empty() ? config_.spec
                                                  : fleet_spec_list_[0]);
      audit::KernelAuditor auditor;
      auditor.attach(probe);
      typename core::FusedGpuEvaluator<S>::Options opts;
      if (const auto* geom = entry.geometry_for(probe.spec())) {
        opts.block_size = geom->block;
        opts.interchange = geom->interchange;
      }
      opts.tuning = tune::TuningMode::kHeuristic;
      core::FusedGpuEvaluator<S> ev(probe, entry.system, /*batch_capacity=*/1,
                                    opts);
      std::vector<std::vector<C>> points{
          poly::make_random_point<S>(ev.dimension(), 0x5eedu)};
      std::vector<poly::EvalResult<S>> out(1, poly::EvalResult<S>(ev.dimension()));
      auditor.begin_epoch();
      ev.evaluate_range(points, 0, 1, std::span<poly::EvalResult<S>>(out));
      ++stats_.audited_systems;
      stats_.audit_findings += auditor.total_findings();
      inst_.audited_systems->inc();
      inst_.audit_findings->inc(auditor.total_findings());
      auditor.detach();
    } catch (const std::exception&) {
      // Advisory pass: a scratch-device failure must not affect admission.
    }
  }

  void reject_counter(AdmissionVerdict v) {
    switch (v) {
      case AdmissionVerdict::kQueueFull:
        ++stats_.rejected_queue_full;
        inst_.rejected_queue_full->inc();
        break;
      case AdmissionVerdict::kPathBudgetExceeded:
        ++stats_.rejected_budget;
        inst_.rejected_budget->inc();
        break;
      default:
        ++stats_.rejected_invalid;
        inst_.rejected_invalid->inc();
        break;
    }
  }

  // ----- the tick ---------------------------------------------------

  bool step_locked() {
    ++stats_.ticks;
    inst_.ticks->inc();
    const std::size_t tick_span =
        tracer_.begin_span("tick", "round", stats_.ticks,
                           stats_.total_modeled_us, obs::TraceLevel::kRounds);
    activate_queued();
    process_cancellations();
    for_each_group([&](auto& g) { fill_slots(g); });
    for_each_group([&](auto& g) { steal(g); });
    run_rounds();
    settle_tick();
    for_each_group([&](auto& g) { drain_retirements(g); });
    for_each_group([&](auto& g) { finalize_done(g); });
    tracer_.end_span(tick_span, stats_.total_modeled_us);
    const bool more = work_remaining_locked();
    cv_.notify_all();
    return more;
  }

  template <class Fn>
  void for_each_group(Fn&& fn) {
    for (auto& g : proj_groups_) fn(*g);
    for (auto& g : aff_groups_) fn(*g);
  }

  [[nodiscard]] bool work_remaining_locked() const {
    if (!queued_.empty()) return true;
    for (const auto& g : proj_groups_)
      if (!g->active.empty()) return true;
    for (const auto& g : aff_groups_)
      if (!g->active.empty()) return true;
    return false;
  }

  /// Pull queued requests whose group has a free tenant slot; requests
  /// blocked on a saturated group keep their queue position while later
  /// requests of other groups overtake (documented backpressure rule).
  void activate_queued() {
    for (auto it = queued_.begin(); it != queued_.end();) {
      if (it->state->cancel_requested.load(std::memory_order_acquire)) {
        finalize_cancelled_in_queue(*it);
        it = queued_.erase(it);
        continue;
      }
      const bool activated =
          it->state->request.options.tracking.geometry ==
                  solve::Geometry::kProjective
              ? try_activate(proj_groups_, *it)
              : try_activate(aff_groups_, *it);
      it = activated ? queued_.erase(it) : std::next(it);
    }
  }

  template <class GroupVec>
  bool try_activate(GroupVec& groups, QueuedItem& item) {
    auto& req = item.state->request;
    GroupKey key{item.entry->packed.structure, req.options.tracking,
                 req.options.tuning};
    auto* group = find_or_create(groups, key, *item.entry);
    if (group->free_tenants.empty()) return false;  // stays queued
    const unsigned tenant = group->free_tenants.back();
    group->free_tenants.pop_back();

    const auto gamma = req.start ? req.start->gamma
                                 : homotopy::random_gamma(req.options.gamma_seed);
    const poly::PolynomialSystem& start_system =
        req.start ? req.start->system : item.entry->start.system();
    install_tenant(*group, tenant, req.target, start_system, gamma);

    auto run = std::make_unique<RunInfo>();
    run->state = item.state;
    run->tenant = tenant;
    run->total = item.paths;
    run->submitted_at = item.submitted_at;
    run->activated_at = Clock::now();
    run->admit_modeled_us = stats_.total_modeled_us;
    inst_.queue_wall_us->observe(
        std::chrono::duration<double, std::micro>(run->activated_at -
                                                  run->submitted_at)
            .count());
    tracer_.end_span(item.span, stats_.total_modeled_us);
    run->span = tracer_.begin_span("track", "request", item.state->id,
                                   stats_.total_modeled_us,
                                   obs::TraceLevel::kRequests);
    run->points.reserve(item.paths);
    for (std::uint64_t p = 0; p < item.paths; ++p)
      run->points.push_back(start_point(*group, req, *item.entry, p));
    run->state->report.paths.resize(item.paths);

    item.state->status.store(RequestStatus::kTracking,
                             std::memory_order_release);
    RunInfo* raw = run.get();
    group->active.push_back(std::move(run));
    for (std::uint64_t p = 0; p < item.paths; ++p)
      raw->pending_paths.push_back(p);
    return true;
  }

  template <class GroupVec>
  auto* find_or_create(GroupVec& groups, const GroupKey& key,
                       const typename SystemCache<S>::Entry& entry) {
    for (auto& g : groups)
      if (g->key == key) return g.get();
    using G = typename GroupVec::value_type::element_type;
    auto group = std::make_unique<G>();
    group->key = key;
    if constexpr (G::kProjective) {
      group->patch_d = homotopy::random_patch(key.structure.n + 1,
                                              key.tracking.patch_seed);
      group->patch_s.reserve(group->patch_d.size());
      for (const auto& c : group->patch_d)
        group->patch_s.push_back(C::from_double(c));
    }
    group->shards.reserve(registry_.size());
    for (unsigned i = 0; i < registry_.size(); ++i) {
      // Each shard pins the geometry the cache resolved for ITS spec --
      // a mixed fleet no longer inherits shard 0's winner.  A pinned
      // block size wins over the cache's tuned geometry, as in the
      // single-tenant resolution rules.
      const auto* geom = entry.geometry_for(registry_.spec(i));
      typename core::MultiTenantFusedEvaluator<S>::Options eopts;
      eopts.block_size = key.tuning.block_size != 0
                             ? key.tuning.block_size
                             : (geom != nullptr ? geom->block : 0);
      if (geom != nullptr) eopts.interchange = geom->interchange;
      eopts.detect_races = key.tuning.detect_races;
      group->shards.push_back(std::make_unique<typename G::Shard>(
          registry_.device(i), i, key.structure, config_.max_tenants,
          config_.lockstep_batch, eopts, key.tracking.track,
          config_.slots_per_shard));
    }
    // Placement weights for this group's structure: the cache's per-spec
    // probes seeded the TuneCache, so a fully probed fleet gets measured
    // 1/us weights; otherwise (heuristic tuning) the modeled estimate.
    group->weights = registry_.weights();
    if (registry_.heterogeneous()) {
      const unsigned width = static_cast<unsigned>(sizeof(S) / sizeof(double));
      const auto measured = tune::measured_fleet_weights(
          tune::Autotuner::global(),
          std::span<const simt::DeviceSpec>(fleet_spec_list_),
          [&](const simt::DeviceSpec& spec) {
            return tune::TuneKey::make(tune::TunedSchedule::kFused,
                                       key.structure, config_.lockstep_batch,
                                       0, width, spec);
          });
      if (measured.has_value()) group->weights = *measured;
    }
    group->free_tenants.reserve(config_.max_tenants);
    for (unsigned t = config_.max_tenants; t-- > 0;)
      group->free_tenants.push_back(t);
    // Every shard tracker feeds the one service-wide TrackerMetrics:
    // the counters are aggregates and the adds are atomic, so parallel
    // shard rounds compose.
    for (auto& shard : group->shards)
      shard->tracker.set_metrics(&tracker_metrics_);
    groups.push_back(std::move(group));
    return groups.back().get();
  }

  /// Register the tenant's tables on EVERY shard of the group, so path
  /// trajectories are shard-independent and stealing stays parity-safe.
  template <class G>
  void install_tenant(G& group, unsigned tenant,
                      const poly::PolynomialSystem& target,
                      const poly::PolynomialSystem& start_system,
                      cplx::Complex<double> gamma) {
    for (auto& shard : group.shards) {
      if constexpr (G::kProjective)
        shard->homo.set_tenant(tenant, target, start_system, gamma,
                               std::span<const cplx::Complex<double>>(
                                   group.patch_d));
      else
        shard->homo.set_tenant(tenant, target, start_system, gamma);
    }
  }

  template <class G>
  std::vector<C> start_point(const G& group, const SolveRequest<S>& req,
                             const typename SystemCache<S>::Entry& entry,
                             std::uint64_t path) const {
    std::vector<C> affine;
    if (req.start) {
      affine = req.start->roots[path];
    } else {
      const auto root_d = entry.start.start_root(path);
      affine.reserve(root_d.size());
      for (const auto& z : root_d) affine.push_back(C::from_double(z));
    }
    if constexpr (G::kProjective)
      return homotopy::embed_in_patch<S>(std::span<const C>(affine),
                                         std::span<const C>(group.patch_s));
    else
      return affine;
  }

  void finalize_cancelled_in_queue(QueuedItem& item) {
    auto& report = item.state->report;
    report.paths.assign(item.paths, homotopy::TrackResult<S>{});
    for (auto& p : report.paths) p.status = homotopy::PathStatus::kCancelled;
    report.retally();
    item.state->paths_retired.store(item.paths, std::memory_order_relaxed);
    item.state->status.store(RequestStatus::kDone, std::memory_order_release);
    ++stats_.completed;
    ++stats_.cancelled_requests;
    inst_.completed->inc();
    inst_.cancelled->inc();
    tracer_.end_span(item.span, stats_.total_modeled_us);
  }

  /// Flag cancelled / over-budget / past-deadline requests: live slots
  /// get tracker.cancel (retired as kCancelled at the next round's
  /// consume point, costing no launches) and unstarted paths are
  /// synthesized as kCancelled right here.
  void process_cancellations() {
    for_each_group([&](auto& g) {
      for (auto& run : g.active) {
        if (run->cancelling) continue;
        const auto& req = run->state->request;
        const bool wants =
            run->state->cancel_requested.load(std::memory_order_acquire) ||
            (req.round_budget > 0 &&
             run->ticks_tracking >= req.round_budget) ||
            (req.modeled_deadline_us > 0.0 &&
             stats_.total_modeled_us - run->admit_modeled_us >=
                 req.modeled_deadline_us);
        if (!wants) continue;
        run->cancelling = true;
        // Unstarted paths never launch: synthesize their retirement.
        for (const std::uint64_t path : run->pending_paths) {
          auto& res = run->state->report.paths[path];
          res.status = homotopy::PathStatus::kCancelled;
          res.solution = run->points[path];
          ++run->retired;
          run->state->paths_retired.fetch_add(1, std::memory_order_relaxed);
        }
        run->pending_paths.clear();
        for (auto& shard : g.shards)
          for (std::size_t slot = 0; slot < shard->owners.size(); ++slot)
            if (shard->owners[slot].run == run.get())
              shard->tracker.cancel(slot);
      }
    });
  }

  /// The shard the next pulled path should land on.  Uniform fleets
  /// keep the historical greedy fill (first shard with a free slot, so
  /// shard 0 packs before shard 1 touches work); mixed fleets pick the
  /// free-slotted shard with the lowest occupancy-per-weight, so a 2x
  /// device ends up carrying twice the live paths.
  template <class G>
  [[nodiscard]] auto* pick_fill_shard(G& g) {
    using Shard = typename G::Shard;
    if (!registry_.heterogeneous()) {
      for (auto& s : g.shards)
        if (!s->free_slots.empty()) return s.get();
      return static_cast<Shard*>(nullptr);
    }
    Shard* best = nullptr;
    double best_score = 0.0;
    for (unsigned i = 0; i < g.shards.size(); ++i) {
      auto& s = g.shards[i];
      if (s->free_slots.empty()) continue;
      const double score =
          static_cast<double>(s->live + 1) / g.weights[i];
      if (best == nullptr || score < best_score) {
        best = s.get();
        best_score = score;
      }
    }
    return best;
  }

  /// Move up to `limit` of `run`'s pending paths into free tracker
  /// slots; returns how many were placed.
  template <class G>
  std::uint64_t place_pending(G& g, RunInfo& run, std::uint64_t limit) {
    std::uint64_t placed = 0;
    while (placed < limit && !run.pending_paths.empty()) {
      auto* shard = pick_fill_shard(g);
      if (shard == nullptr) break;  // no free slot anywhere
      const std::uint64_t path = run.pending_paths.front();
      run.pending_paths.pop_front();
      const std::size_t slot = shard->free_slots.back();
      shard->free_slots.pop_back();
      shard->homo.assign_slot(slot, run.tenant);
      shard->tracker.adopt(slot, std::span<const C>(run.points[path]));
      shard->owners[slot] = {&run, path};
      ++shard->live;
      ++stats_.queue_pulls;
      inst_.queue_pulls->inc();
      ++run.queue_pulls;
      ++placed;
    }
    return placed;
  }

  template <class G>
  void fill_slots(G& g) {
    if (g.active.empty()) return;
    if (config_.fairness == 0) {
      // FIFO: drain runs in activation order -- byte-for-byte the old
      // group-wide pending queue's fill order.
      for (auto& run : g.active)
        place_pending(g, *run, std::numeric_limits<std::uint64_t>::max());
      return;
    }
    // Deficit round robin: every pass grants each backlogged run
    // `fairness` more path-credits and takes slots in rotation (the
    // cursor persists across ticks, so no run is always first).  Credit
    // resets once a run's backlog clears -- no banking while idle.
    g.rr_cursor %= g.active.size();
    bool progress = true;
    while (progress && g.has_pending()) {
      progress = false;
      for (std::size_t i = 0; i < g.active.size(); ++i) {
        RunInfo& run = *g.active[(g.rr_cursor + i) % g.active.size()];
        if (run.pending_paths.empty()) {
          run.deficit = 0;
          continue;
        }
        run.deficit += config_.fairness;
        const std::uint64_t placed = place_pending(g, run, run.deficit);
        run.deficit -= placed;
        if (placed > 0) progress = true;
      }
      g.rr_cursor = (g.rr_cursor + 1) % g.active.size();
    }
  }

  /// Between rounds, rebalance a group whose pending queue is dry: move
  /// plain tracking paths (donate/adopt) from the most loaded shard to
  /// an early-retired one.  Endgame paths are pinned to their shard.
  /// Loads compare per unit of throughput weight -- on a uniform fleet
  /// that reduces exactly to the historical raw-count rule (move while
  /// idle + 2 <= busy), on a mixed fleet a slow shard counts as "busy"
  /// with fewer paths.  Termination: each move strictly decreases
  /// sum(live^2 / weight), so the loop cannot ping-pong.
  template <class G>
  void steal(G& g) {
    if (g.has_pending() || g.shards.size() < 2) return;
    std::vector<C> x(g.shards.front()->tracker.dimension());
    const auto load = [&](const auto& s, unsigned i) {
      return static_cast<double>(s.live) / g.weights[i];
    };
    for (;;) {
      unsigned busy_i = 0, idle_i = 0;
      for (unsigned i = 0; i < g.shards.size(); ++i) {
        auto& s = g.shards[i];
        if (load(*s, i) > load(*g.shards[busy_i], busy_i)) busy_i = i;
        if (load(*s, i) < load(*g.shards[idle_i], idle_i) &&
            !s->free_slots.empty())
          idle_i = i;
      }
      auto* busy = g.shards[busy_i].get();
      auto* idle = g.shards[idle_i].get();
      // Move only while it helps: after the move the receiver must not
      // be loaded past the donor (the weighted form of idle+2 <= busy).
      if (static_cast<double>(idle->live + 1) * g.weights[busy_i] >
              static_cast<double>(busy->live - 1) * g.weights[idle_i] ||
          idle->free_slots.empty() || busy == idle)
        return;
      std::size_t donor = busy->owners.size();
      for (std::size_t slot = 0; slot < busy->owners.size(); ++slot)
        if (busy->owners[slot].run != nullptr &&
            busy->tracker.donatable(slot)) {
          donor = slot;
          break;
        }
      if (donor == busy->owners.size()) return;  // all endgame-pinned
      const auto owner = busy->owners[donor];
      const auto ctl = busy->tracker.donate(donor, std::span<C>(x));
      busy->owners[donor] = {};
      busy->free_slots.push_back(donor);
      --busy->live;
      const std::size_t slot = idle->free_slots.back();
      idle->free_slots.pop_back();
      idle->homo.assign_slot(slot, owner.run->tenant);
      idle->tracker.adopt(slot, std::span<const C>(x), ctl);
      idle->owners[slot] = owner;
      ++idle->live;
      ++stats_.live_steals;
      inst_.steals->inc();
      ++owner.run->steals;
      if (registry_.heterogeneous()) {
        ++stats_.weighted_steals;
        inst_.weighted_steals->inc();
      }
    }
  }

  /// Run one lockstep round on every shard with live paths, devices in
  /// parallel (each shard's device is independent; groups sharing a
  /// device run serially on its thread).  Charges the cost model per
  /// round -- rounds clear the device log on entry -- and picks up
  /// admission-upload traffic before the first round of the tick.
  void run_rounds() {
    std::fill(device_charge_.begin(), device_charge_.end(), 0.0);
    const auto device_tick = [&](std::size_t d) {
      auto& dev = registry_.device(static_cast<unsigned>(d));
      double& charge = device_charge_[d];
      // Price the device log, fold its per-kernel stats into the
      // registry and (when tracing) lay its slices on the device's
      // engine tracks, then clear it.  The CHARGE stays the one
      // estimate_log_us call -- bit-identical to the untraced
      // schedule; the slice decomposition (per-direction DMA +
      // per-kernel compute, summing to the same total up to float
      // association) feeds only telemetry.
      const auto settle = [&] {
        const simt::LaunchLog& log = dev.log();
        if (log.kernels.empty() && log.transfers.transfers_to_device == 0 &&
            log.transfers.transfers_from_device == 0)
          return;  // nothing happened; skip the walk and keep the log warm
        const bool rounds_trace = tracer_.enabled(obs::TraceLevel::kRounds);
        const bool full_trace = tracer_.enabled(obs::TraceLevel::kFull);
        double cursor = stats_.total_modeled_us + charge;
        const double h2d = simt::estimate_h2d_us(log.transfers, config_.cost);
        const double d2h = simt::estimate_d2h_us(log.transfers, config_.cost);
        if (rounds_trace && h2d > 0.0)
          tracer_.add_device_slice(d, obs::Tracer::DeviceSlice::kDmaH2D,
                                   "h2d", cursor, cursor + h2d,
                                   log.transfers.bytes_to_device);
        cursor += h2d;
        if (rounds_trace && d2h > 0.0)
          tracer_.add_device_slice(d, obs::Tracer::DeviceSlice::kDmaD2H,
                                   "d2h", cursor, cursor + d2h,
                                   log.transfers.bytes_from_device);
        cursor += d2h;
        inst_.dma_h2d_bytes->inc(log.transfers.bytes_to_device);
        inst_.dma_d2h_bytes->inc(log.transfers.bytes_from_device);
        const double compute_start = cursor;
        for (const simt::KernelStats& k : log.kernels) {
          const double kus = simt::estimate_kernel_us(k, dev.spec(),
                                                      config_.cost);
          metrics_.counter("polyeval_kernel_launches_total", "kernel",
                           k.kernel)
              .inc();
          metrics_
              .float_counter("polyeval_kernel_modeled_us_total", "kernel",
                             k.kernel)
              .add(kus);
          if (full_trace)
            tracer_.add_device_slice(d, obs::Tracer::DeviceSlice::kCompute,
                                     k.kernel, cursor, cursor + kus, 0);
          cursor += kus;
        }
        if (rounds_trace && !full_trace && cursor > compute_start)
          tracer_.add_device_slice(d, obs::Tracer::DeviceSlice::kCompute,
                                   "compute", compute_start, cursor, 0);
        charge += simt::estimate_log_us(log, dev.spec(), config_.cost);
        // Watermark BEFORE the clear: clear_log keeps the vectors'
        // capacity, so the high-water mark is exactly the steady-state
        // memory the log pins (test_service_steady_state.cpp holds the
        // service to zero allocations once this plateaus).
        device_log_watermark_[d] =
            std::max(device_log_watermark_[d], log.kernels.size());
        dev.clear_log();
      };
      settle();  // tenant installs / evaluator builds since last tick
      const auto round_shard = [&](auto& g) {
        auto& shard = *g.shards[d];
        shard.rounded = false;
        if (shard.live == 0) return;
        const double round_start = stats_.total_modeled_us + charge;
        shard.tracker.round();
        shard.rounded = true;
        settle();
        if (tracer_.enabled(obs::TraceLevel::kRounds))
          tracer_.add_device_slice(d, obs::Tracer::DeviceSlice::kRound,
                                   "shard round", round_start,
                                   stats_.total_modeled_us + charge, 0);
      };
      for (auto& g : proj_groups_) round_shard(*g);
      for (auto& g : aff_groups_) round_shard(*g);
    };
    if (pool_ && registry_.size() > 1) {
      pool_->parallel_for(registry_.size(), device_tick);
    } else {
      for (std::size_t d = 0; d < registry_.size(); ++d) device_tick(d);
    }
  }

  /// Coordinator bookkeeping after the parallel rounds: the tick's
  /// modeled cost (max over devices -- they ran concurrently), its
  /// per-request attribution (a device's charge splits equally over the
  /// requests riding it this tick), and the coalescing counters.
  void settle_tick() {
    double tick_cost = 0.0;
    for (const double c : device_charge_) tick_cost = std::max(tick_cost, c);
    stats_.total_modeled_us += tick_cost;
    inst_.modeled_us->add(tick_cost);
    for (unsigned d = 0; d < registry_.size(); ++d) {
      device_busy_us_[d] += device_charge_[d];
      inst_.device_busy_us[d]->add(device_charge_[d]);
      // Fold the per-device log watermarks (written on the pool threads,
      // ordered by the parallel_for join) into the service-wide stat.
      stats_.log_kernel_watermark =
          std::max<std::uint64_t>(stats_.log_kernel_watermark,
                                  device_log_watermark_[d]);
    }
    inst_.log_watermark->set(static_cast<double>(stats_.log_kernel_watermark));

    for (unsigned d = 0; d < registry_.size(); ++d) {
      scratch_device_runs_.clear();
      for_each_group([&](auto& g) {
        auto& shard = *g.shards[d];
        if (!shard.rounded) return;
        ++stats_.shard_rounds;
        inst_.shard_rounds->inc();
        scratch_round_runs_.clear();
        for (const auto& owner : shard.owners) {
          if (owner.run == nullptr) continue;
          if (std::find(scratch_round_runs_.begin(), scratch_round_runs_.end(),
                        static_cast<void*>(owner.run)) ==
              scratch_round_runs_.end())
            scratch_round_runs_.push_back(owner.run);
        }
        const auto tenants_here =
            static_cast<unsigned>(scratch_round_runs_.size());
        if (tenants_here >= 2) {
          ++stats_.coalesced_rounds;
          inst_.coalesced_rounds->inc();
        }
        stats_.max_tenants_in_round =
            std::max(stats_.max_tenants_in_round, tenants_here);
        for (void* rp : scratch_round_runs_) {
          auto* run = static_cast<RunInfo*>(rp);
          run->state->rounds.fetch_add(1, std::memory_order_relaxed);
          if (tenants_here >= 2) ++run->shared_rounds;
          run->peak_tenants = std::max(run->peak_tenants, tenants_here);
          if (std::find(scratch_device_runs_.begin(),
                        scratch_device_runs_.end(),
                        rp) == scratch_device_runs_.end())
            scratch_device_runs_.push_back(rp);
        }
      });
      if (!scratch_device_runs_.empty()) {
        const double share =
            device_charge_[d] / static_cast<double>(scratch_device_runs_.size());
        for (void* rp : scratch_device_runs_)
          static_cast<RunInfo*>(rp)->modeled_us += share;
      }
    }

    for_each_group([&](auto& g) {
      for (auto& run : g.active) ++run->ticks_tracking;
    });
  }

  template <class G>
  void drain_retirements(G& g) {
    for (auto& shard : g.shards) {
      if (shard->live == 0) continue;
      for (std::size_t slot = 0; slot < shard->owners.size(); ++slot) {
        auto& owner = shard->owners[slot];
        if (owner.run == nullptr || !shard->tracker.retired(slot)) continue;
        RunInfo& run = *owner.run;
        run.state->report.paths[owner.path] = shard->tracker.result(slot);
        ++run.retired;
        run.state->paths_retired.fetch_add(1, std::memory_order_relaxed);
        owner = {};
        shard->free_slots.push_back(slot);
        --shard->live;
      }
    }
  }

  template <class G>
  void finalize_done(G& g) {
    for (auto it = g.active.begin(); it != g.active.end();) {
      RunInfo& run = **it;
      if (run.retired < run.total) {
        ++it;
        continue;
      }
      auto& report = run.state->report;
      report.retally();
      const auto now = Clock::now();
      const auto us = [](auto dt) {
        return std::chrono::duration<double, std::micro>(dt).count();
      };
      report.timing.queue_wall_us = us(run.activated_at - run.submitted_at);
      report.timing.track_wall_us = us(now - run.activated_at);
      report.timing.total_wall_us = us(now - run.submitted_at);
      report.timing.modeled_us = run.modeled_us;
      report.timing.rounds =
          run.state->rounds.load(std::memory_order_relaxed);
      report.metrics.shared_rounds = run.shared_rounds;
      report.metrics.peak_tenants = run.peak_tenants;
      report.metrics.steals = run.steals;
      report.metrics.queue_pulls = run.queue_pulls;
      // The span's modeled_us arg is the SAME value the report carries,
      // so the trace and the report agree exactly (validate_trace.py
      // checks the sum against the engine slices).
      tracer_.span_args(run.span, report.timing.modeled_us, run.total,
                        report.timing.rounds);
      tracer_.end_span(run.span, stats_.total_modeled_us);
      run.state->status.store(RequestStatus::kDone, std::memory_order_release);
      ++stats_.completed;
      inst_.completed->inc();
      if (run.cancelling) {
        ++stats_.cancelled_requests;
        inst_.cancelled->inc();
      }
      g.free_tenants.push_back(run.tenant);
      for (auto& shard : g.shards) shard->homo.clear_tenant(run.tenant);
      it = g.active.erase(it);
    }
  }

  // ----- observability ----------------------------------------------

  /// Pre-resolved registry handles for the service-level metrics (the
  /// tracker and Newton layers resolve theirs via obs::TrackerMetrics;
  /// per-kernel families are resolved lazily in settle by name).
  struct Instruments {
    obs::Counter* submitted = nullptr;
    obs::Counter* admitted = nullptr;
    obs::Counter* rejected_queue_full = nullptr;
    obs::Counter* rejected_budget = nullptr;
    obs::Counter* rejected_invalid = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* ticks = nullptr;
    obs::Counter* shard_rounds = nullptr;
    obs::Counter* coalesced_rounds = nullptr;
    obs::Counter* steals = nullptr;
    obs::Counter* weighted_steals = nullptr;
    obs::Counter* queue_pulls = nullptr;
    obs::Counter* dma_h2d_bytes = nullptr;
    obs::Counter* dma_d2h_bytes = nullptr;
    obs::FloatCounter* modeled_us = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* active_requests = nullptr;
    obs::Gauge* cache_hits = nullptr;
    obs::Gauge* cache_misses = nullptr;
    obs::Gauge* tune_hits = nullptr;
    obs::Gauge* tune_misses = nullptr;
    obs::Counter* audited_systems = nullptr;
    obs::Counter* audit_findings = nullptr;
    obs::Gauge* log_watermark = nullptr;
    obs::Histogram* queue_wall_us = nullptr;
    /// Per device index: modeled busy µs and utilization fraction.
    std::vector<obs::FloatCounter*> device_busy_us;
    std::vector<obs::Gauge*> device_util;
  };

  void resolve_instruments() {
    auto& r = metrics_;
    inst_.submitted = &r.counter("polyeval_requests_submitted_total",
                                 "solve requests submitted");
    inst_.admitted = &r.counter("polyeval_requests_admitted_total",
                                "solve requests admitted");
    inst_.rejected_queue_full =
        &r.counter("polyeval_requests_rejected_total", "reason", "queue_full",
                   "solve requests rejected, by admission verdict");
    inst_.rejected_budget = &r.counter("polyeval_requests_rejected_total",
                                       "reason", "path_budget_exceeded");
    inst_.rejected_invalid =
        &r.counter("polyeval_requests_rejected_total", "reason", "invalid");
    inst_.completed = &r.counter("polyeval_requests_completed_total",
                                 "solve requests completed");
    inst_.cancelled = &r.counter("polyeval_requests_cancelled_total",
                                 "requests completed by cancel/deadline");
    inst_.ticks =
        &r.counter("polyeval_service_ticks_total", "scheduler ticks");
    inst_.shard_rounds = &r.counter("polyeval_shard_rounds_total",
                                    "lockstep rounds run, all shards");
    inst_.coalesced_rounds =
        &r.counter("polyeval_coalesced_rounds_total",
                   "rounds carrying >= 2 requests in one launch");
    inst_.steals = &r.counter("polyeval_live_steals_total",
                              "live paths moved between shards");
    inst_.weighted_steals =
        &r.counter("polyeval_weighted_steals_total",
                   "live steals placed by throughput weight (mixed fleet)");
    inst_.queue_pulls = &r.counter("polyeval_queue_pulls_total",
                                   "pending paths pulled into slots");
    inst_.dma_h2d_bytes = &r.counter("polyeval_dma_bytes_total", "direction",
                                     "h2d", "modeled DMA payload bytes");
    inst_.dma_d2h_bytes =
        &r.counter("polyeval_dma_bytes_total", "direction", "d2h");
    inst_.modeled_us = &r.float_counter("polyeval_modeled_us_total",
                                        "the service's modeled clock");
    inst_.queue_depth = &r.gauge("polyeval_service_queue_depth",
                                 "admitted-but-not-active requests");
    inst_.active_requests =
        &r.gauge("polyeval_service_active_requests", "requests in tracking");
    inst_.cache_hits =
        &r.gauge("polyeval_system_cache_hits", "SystemCache lookup hits");
    inst_.cache_misses =
        &r.gauge("polyeval_system_cache_misses", "SystemCache lookup misses");
    inst_.tune_hits =
        &r.gauge("polyeval_tune_cache_hits", "global TuneCache hits");
    inst_.tune_misses =
        &r.gauge("polyeval_tune_cache_misses", "global TuneCache misses");
    inst_.audited_systems =
        &r.counter("polyeval_audited_systems_total",
                   "new SystemCache entries audited at admission");
    inst_.audit_findings =
        &r.counter("polyeval_audit_findings_total",
                   "kernel auditor findings across admission audits");
    inst_.log_watermark =
        &r.gauge("polyeval_device_log_kernel_watermark",
                 "most kernel launches one device log held at a settle");
    static constexpr std::array<double, 6> kQueueBounds = {
        100.0, 1e3, 1e4, 1e5, 1e6, 1e7};
    inst_.queue_wall_us =
        &r.histogram("polyeval_request_queue_wall_us", kQueueBounds,
                     "host µs a request waited before activation");
    inst_.device_busy_us.reserve(registry_.size());
    inst_.device_util.reserve(registry_.size());
    for (unsigned d = 0; d < registry_.size(); ++d) {
      const std::string label = std::to_string(d);
      inst_.device_busy_us.push_back(
          &r.float_counter("polyeval_device_busy_us_total", "device", label,
                           "modeled µs each device spent busy"));
      inst_.device_util.push_back(
          &r.gauge("polyeval_device_utilization", "device", label,
                   "busy fraction of the service's modeled clock"));
    }
  }

  // ----- async mode -------------------------------------------------

  void async_loop() {
    std::unique_lock<std::mutex> lk(mu_);
    while (!stop_) {
      if (work_remaining_locked()) {
        step_locked();
      } else {
        cv_.wait(lk, [&] { return stop_ || work_remaining_locked(); });
      }
    }
  }

  // ----- members ----------------------------------------------------

  Config config_;
  simt::DeviceRegistry registry_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread worker_;
  std::optional<simt::ThreadPool> pool_;

  SystemCache<S> cache_;
  std::deque<QueuedItem> queued_;
  std::vector<std::unique_ptr<ProjGroup>> proj_groups_;
  std::vector<std::unique_ptr<AffGroup>> aff_groups_;

  std::vector<double> device_charge_;
  std::vector<double> device_busy_us_;  ///< summed charges per device
  /// Per-device log high-water marks (kernels per settle); each element
  /// is only touched by its device's tick thread, folded in settle_tick.
  std::vector<std::size_t> device_log_watermark_;
  std::vector<simt::DeviceSpec> fleet_spec_list_;  ///< registry order
  std::vector<void*> scratch_device_runs_, scratch_round_runs_;
  ServiceStats stats_;
  std::uint64_t next_id_ = 0;

  // Observability.  Registration happens once in the constructor
  // (resolve_instruments / TrackerMetrics::from_registry); every
  // steady-state observation goes through a pre-resolved pointer and
  // never allocates.  tracer_ is declared after config_: its
  // constructor reads config_.trace.
  obs::MetricsRegistry metrics_;
  obs::TrackerMetrics tracker_metrics_;
  Instruments inst_;
  obs::Tracer tracer_;
  std::size_t tune_fold_from_ = 0;  ///< Autotuner profile-fold watermark
};

}  // namespace polyeval::service
